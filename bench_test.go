// Benchmarks, one per table/figure of the reproduced evaluation (DESIGN.md
// experiment index). Each benchmark runs a reduced-scale variant of its
// experiment's workload so `go test -bench=.` finishes in minutes; the
// full-scale numbers come from `go run ./cmd/dophy-bench`.
//
// Fixed seeds keep the work per iteration identical across runs, so ns/op
// is comparable between machines and commits. Every benchmark calls
// b.ReportAllocs() so allocs/op regressions in the simulator hot paths are
// visible without -benchmem.
//
// CI note: these benchmarks are compiled (but skipped) by plain `go test`;
// a smoke run uses `-bench=BenchmarkT4EndToEnd -benchtime=1x`. None of them
// need a testing.Short() guard because they do no work unless -bench selects
// them.
package dophy

import (
	"testing"

	"dophy/internal/experiment"
)

// benchScenario is the reduced workload shared by the per-experiment
// benchmarks: 25 nodes, one epoch.
func benchScenario(seed uint64) experiment.Scenario {
	sc := experiment.DefaultScenario()
	sc.Seed = seed
	sc.Topo = experiment.GridSpec(5)
	sc.Epochs = 1
	sc.EpochLen = 150
	return sc
}

// BenchmarkT1NetworkSize exercises the encoding-overhead workload: a full
// simulated epoch with all five recording schemes attached (table T1).
func BenchmarkT1NetworkSize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := benchScenario(1)
		res := experiment.Run(sc)
		if res.MeanBitsPerPacket(experiment.SchemeDophy) <= 0 {
			b.Fatal("no overhead measured")
		}
	}
}

// BenchmarkF1PathLength exercises the deep-network workload behind the
// overhead-vs-path-length figure (F1): a corridor forces long paths.
func BenchmarkF1PathLength(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := benchScenario(2)
		sc.Topo = experiment.TopoSpec{Kind: experiment.TopoChain, N: 15, Spacing: 10, Range: 11}
		res := experiment.Run(sc)
		if len(res.Epochs[0].PerPacket) == 0 {
			b.Fatal("no packets")
		}
	}
}

// BenchmarkF2TrafficVolume exercises the accuracy-vs-traffic workload (F2):
// estimation epochs at high generation rate.
func BenchmarkF2TrafficVolume(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := benchScenario(3)
		sc.Collect.GenPeriod = 2
		res := experiment.Run(sc)
		if res.MeanAccuracy(experiment.SchemeDophy).Links == 0 {
			b.Fatal("nothing estimated")
		}
	}
}

// BenchmarkF3RoutingDynamics exercises the churn workload (F3): forced
// parent randomisation on every beacon cycle.
func BenchmarkF3RoutingDynamics(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := benchScenario(4)
		sc.Routing.RandomizeParentProb = 0.3
		res := experiment.Run(sc)
		if res.ParentChangesPerNodePerEpoch <= 0 {
			b.Fatal("no churn")
		}
	}
}

// BenchmarkF4LossLevels exercises the uniform-loss workload (F4).
func BenchmarkF4LossLevels(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := benchScenario(5)
		sc.Radio = experiment.RadioSpec{Kind: experiment.RadioUniformLoss, UniformLoss: 0.2}
		experiment.Run(sc)
	}
}

// BenchmarkF5ErrorCDF exercises the error-distribution workload (F5):
// scoring every scheme against ground truth.
func BenchmarkF5ErrorCDF(b *testing.B) {
	b.ReportAllocs()
	sc := benchScenario(6)
	res := experiment.Run(sc)
	eo := res.Epochs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range []string{experiment.SchemeDophy, experiment.SchemeMINC, experiment.SchemeLSQ} {
			experiment.Score(eo.Schemes[s], eo.Truth, sc.MinTruthAttempts)
		}
	}
}

// BenchmarkT2Aggregation exercises the aggregation-threshold workload (T2):
// Dophy with and without symbol aggregation over the same epoch.
func BenchmarkT2Aggregation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := benchScenario(7)
		sc.Dophy.AggThreshold = 2
		experiment.Run(sc)
	}
}

// BenchmarkT3ModelUpdate exercises the drifting-model workload (T3):
// random-walk link dynamics with per-epoch model updates.
func BenchmarkT3ModelUpdate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := benchScenario(8)
		sc.Radio = experiment.RadioSpec{Kind: experiment.RadioRandomWalk, WalkStep: 0.3, WalkEvery: 5}
		sc.Dophy.UpdateEvery = 1
		sc.Epochs = 2
		experiment.Run(sc)
	}
}

// BenchmarkF6Validation exercises the analytic-validation workload (F6): a
// high-rate single-hop chain.
func BenchmarkF6Validation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := benchScenario(9)
		sc.Topo = experiment.TopoSpec{Kind: experiment.TopoChain, N: 2, Spacing: 10, Range: 11}
		sc.Radio = experiment.RadioSpec{Kind: experiment.RadioUniformLoss, UniformLoss: 0.3}
		sc.Collect.GenPeriod = 0.5
		experiment.Run(sc)
	}
}

// BenchmarkT4EndToEnd is the throughput experiment itself (T4): one full
// mid-size epoch, reported as ns/op so sim-seconds-per-wall-second can be
// derived.
func BenchmarkT4EndToEnd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := benchScenario(10)
		sc.Topo = experiment.GridSpec(7)
		experiment.Run(sc)
	}
}

// BenchmarkPublicAPIEpoch measures the facade: one epoch through the public
// Simulation type, the path example code takes.
func BenchmarkPublicAPIEpoch(b *testing.B) {
	b.ReportAllocs()
	sim, err := NewSimulation(Options{GridSide: 5, Seed: 11, EpochSeconds: 100})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := sim.RunEpoch(); rep.DecodeErrors != 0 {
			b.Fatal("decode errors")
		}
	}
}

// BenchmarkT5HopModels exercises the hop-identity model extension (T5).
func BenchmarkT5HopModels(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := benchScenario(12)
		sc.Dophy.HopModelUpdateEvery = 1
		sc.Dophy.HopModelTotal = 256
		experiment.Run(sc)
	}
}

// BenchmarkT6RetryBudget exercises the retry-budget workload (T6) at the
// low-budget end where drops dominate.
func BenchmarkT6RetryBudget(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := benchScenario(13)
		sc.Mac.MaxRetx = 1
		experiment.Run(sc)
	}
}

// BenchmarkF7NodeFailures exercises the crash/recover workload (F7).
func BenchmarkF7NodeFailures(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := benchScenario(14)
		sc.Radio.FailMTBF = 120
		sc.Radio.FailMTTR = 30
		experiment.Run(sc)
	}
}

// BenchmarkF8BurstyLosses exercises the Gilbert-Elliott workload (F8).
func BenchmarkF8BurstyLosses(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := benchScenario(15)
		sc.Radio = experiment.RadioSpec{
			Kind: experiment.RadioGilbertElliott, MeanGood: 60, MeanBad: 15, BadFactor: 0.3,
		}
		experiment.Run(sc)
	}
}

// BenchmarkSweepRunAll measures the parallel sweep engine end to end: four
// independent scenario points fanned across the experiment worker pool. On a
// multi-core machine wall-clock per op approaches the slowest single point;
// with -cpu 1 (or one core) it degrades gracefully to the sequential sum.
func BenchmarkSweepRunAll(b *testing.B) {
	b.ReportAllocs()
	scs := make([]experiment.Scenario, 4)
	for i := range scs {
		sc := benchScenario(uint64(20 + i))
		sc.Radio = experiment.RadioSpec{
			Kind: experiment.RadioUniformLoss, UniformLoss: 0.05 * float64(i+1),
		}
		scs[i] = sc
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiment.RunAll(scs)
		if len(res) != len(scs) {
			b.Fatal("missing results")
		}
	}
}

// BenchmarkSweepReplicates measures the multi-seed replicate path: the same
// scenario across four seed streams with mean/CI aggregation.
func BenchmarkSweepReplicates(b *testing.B) {
	b.ReportAllocs()
	sc := benchScenario(30)
	seeds := experiment.Seeds(30, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := experiment.RunReplicates(sc, seeds)
		if mean, _ := rep.MeanAccuracyCI(experiment.SchemeDophy); mean <= 0 {
			b.Fatal("no accuracy signal")
		}
	}
}
