// Package dophy is the public API of this repository: a full reproduction
// of "Fine-Grained Loss Tomography in Dynamic Sensor Networks" (Cao, Gao,
// Dong, Bu — ICPP 2015).
//
// Dophy infers per-link, per-transmission loss ratios in wireless sensor
// networks whose routing paths change continuously. It rides on the
// retransmissions that collection protocols already perform: every hop's
// retransmission count is arithmetic-coded into the data packet for a
// fraction of a bit, and the sink runs a censored truncated-geometric
// maximum-likelihood estimator per link. Two optimisations — symbol
// aggregation and periodic probability-model updates — keep the in-packet
// overhead near the entropy of the count distribution.
//
// This package wraps the full simulation stack (discrete-event engine,
// radio models, ARQ MAC, CTP-like dynamic routing, data collection) behind
// a small surface:
//
//	sim, err := dophy.NewSimulation(dophy.Options{GridSide: 7, Seed: 1})
//	if err != nil { ... }
//	report := sim.RunEpoch()
//	for link, est := range report.Estimates {
//	    fmt.Printf("%v: loss %.3f (true %.3f)\n", link, est.Loss, report.TrueLoss[link])
//	}
//
// The internal packages contain the complete machinery; see DESIGN.md for
// the system inventory and EXPERIMENTS.md for the reproduced evaluation.
package dophy

import (
	"errors"
	"fmt"
	"math"

	"dophy/internal/experiment"
	"dophy/internal/sim"
	"dophy/internal/stats"
	"dophy/internal/topo"
)

// NodeID identifies a node; the sink is node 0.
type NodeID = topo.NodeID

// Link is a directed link between adjacent nodes.
type Link = topo.Link

// Dynamics selects how link qualities evolve during a simulation.
type Dynamics int

const (
	// DynamicsStatic keeps link qualities fixed.
	DynamicsStatic Dynamics = iota
	// DynamicsDrift lets link qualities wander (random walk), driving
	// routing churn the way slowly changing environments do.
	DynamicsDrift
	// DynamicsBursty applies two-state Gilbert-Elliott loss bursts.
	DynamicsBursty
)

// Options configures a simulated deployment. The zero value is usable:
// defaults are filled in by NewSimulation.
type Options struct {
	// GridSide: nodes are placed on a GridSide x GridSide jittered grid
	// (default 7, i.e. 49 nodes). Mutually exclusive with Nodes.
	GridSide int
	// Nodes > 0 places nodes uniformly at random instead of on a grid.
	Nodes int
	// Seed makes the whole run reproducible (default 1).
	Seed uint64
	// Dynamics selects link-quality evolution (default DynamicsStatic).
	Dynamics Dynamics
	// UniformLoss > 0 forces every link to that loss ratio (handy for
	// validation); 0 uses the realistic distance+shadowing model.
	UniformLoss float64
	// MaxRetx is the MAC retransmission budget per hop (default 7).
	MaxRetx int
	// GenPeriodSeconds is the per-node data generation interval (default 5).
	GenPeriodSeconds float64
	// EpochSeconds is the estimation epoch length (default 300).
	EpochSeconds float64
	// AggThreshold is Dophy optimisation 1 (default 3; 0 disables).
	AggThreshold int
	// UpdateEvery is Dophy optimisation 2's period in epochs (default 1;
	// 0 disables model updates).
	UpdateEvery int
	// ParentChurn forces extra routing dynamics: probability per beacon of
	// re-picking a random admissible parent (default 0).
	ParentChurn float64
	// CompareBaselines also runs the traditional tomography baselines each
	// epoch and reports their accuracy.
	CompareBaselines bool
	// QueueCap > 0 bounds each relay's forwarding queue, modelling
	// congestion: overloaded relays drop packets (visible in DeliveryRatio
	// but never in Dophy's link estimates). 0 disables contention modelling.
	QueueCap int
	// FailureMTBF > 0 makes nodes crash (radio silent) and recover with the
	// given mean time between failures; FailureMTTR is the mean outage
	// (default 60s). The sink never fails.
	FailureMTBF float64
	FailureMTTR float64
}

// LinkEstimate is Dophy's per-link output.
type LinkEstimate struct {
	// Loss is the estimated per-transmission loss ratio in [0,1].
	Loss float64
	// StdErr is the observed-information standard error (0 if degenerate).
	StdErr float64
	// Samples is the number of retransmission-count observations.
	Samples int64
}

// Report is one epoch's results.
type Report struct {
	Epoch int
	// Estimates holds Dophy's per-link loss estimates.
	Estimates map[Link]LinkEstimate
	// TrueLoss holds the simulator's ground truth for every link that
	// carried enough data traffic to score.
	TrueLoss map[Link]float64
	// MAE is the mean absolute error of Estimates against TrueLoss over
	// the scored links (NaN when nothing could be scored).
	MAE float64
	// Coverage is the fraction of truth-active links Dophy estimated.
	Coverage float64
	// BytesPerPacket is the mean in-packet annotation+header cost.
	BytesPerPacket float64
	// DisseminationBytes is the model-update flood cost this epoch.
	DisseminationBytes float64
	// DeliveryRatio is the network's end-to-end delivery ratio.
	DeliveryRatio float64
	// ParentChangesPerNode measures routing dynamics during the epoch.
	ParentChangesPerNode float64
	// DecodeErrors counts annotation decode failures (must be 0).
	DecodeErrors int64
	// BaselineMAE holds the traditional baselines' accuracy when
	// Options.CompareBaselines was set (keys "minc" and "lsq").
	BaselineMAE map[string]float64
}

// TopologyInfo summarises the simulated deployment.
type TopologyInfo struct {
	Nodes     int
	Links     int
	AvgDegree float64
	AvgHops   float64
	MaxHops   int
}

// Simulation is a running deployment.
type Simulation struct {
	session  *experiment.Session
	scenario experiment.Scenario
	compare  bool
}

// NewSimulation validates options, builds the network and runs the routing
// warmup so the first epoch starts with an operational collection tree.
func NewSimulation(opt Options) (*Simulation, error) {
	if opt.GridSide != 0 && opt.Nodes != 0 {
		return nil, errors.New("dophy: GridSide and Nodes are mutually exclusive")
	}
	if opt.GridSide < 0 || opt.Nodes < 0 || opt.MaxRetx < 0 {
		return nil, errors.New("dophy: negative option")
	}
	if opt.UniformLoss < 0 || opt.UniformLoss >= 1 {
		if opt.UniformLoss != 0 {
			return nil, fmt.Errorf("dophy: UniformLoss %v outside [0,1)", opt.UniformLoss)
		}
	}
	if opt.ParentChurn < 0 || opt.ParentChurn > 1 {
		return nil, fmt.Errorf("dophy: ParentChurn %v outside [0,1]", opt.ParentChurn)
	}

	sc := experiment.DefaultScenario()
	sc.Name = "api"
	if opt.Seed != 0 {
		sc.Seed = opt.Seed
	}
	switch {
	case opt.Nodes > 0:
		if opt.Nodes < 2 {
			return nil, errors.New("dophy: need at least 2 nodes")
		}
		// Field sized for ~10 expected neighbours per node, which keeps
		// random placements connected at typical seeds.
		side := math.Sqrt(float64(opt.Nodes)) * 8
		sc.Topo = experiment.TopoSpec{
			Kind: experiment.TopoUniform, N: opt.Nodes,
			Width: side, Height: side, Range: 14,
		}
	case opt.GridSide > 0:
		if opt.GridSide < 2 {
			return nil, errors.New("dophy: grid side must be >= 2")
		}
		sc.Topo = experiment.GridSpec(opt.GridSide)
	}
	switch opt.Dynamics {
	case DynamicsStatic:
		if opt.UniformLoss > 0 {
			sc.Radio = experiment.RadioSpec{Kind: experiment.RadioUniformLoss, UniformLoss: opt.UniformLoss}
		}
	case DynamicsDrift:
		sc.Radio = experiment.RadioSpec{Kind: experiment.RadioRandomWalk, WalkStep: 0.3, WalkEvery: 5}
	case DynamicsBursty:
		sc.Radio = experiment.RadioSpec{Kind: experiment.RadioGilbertElliott, MeanGood: 60, MeanBad: 20, BadFactor: 0.3}
	default:
		return nil, fmt.Errorf("dophy: unknown dynamics %d", opt.Dynamics)
	}
	if opt.Dynamics != DynamicsStatic && opt.UniformLoss > 0 {
		return nil, errors.New("dophy: UniformLoss requires DynamicsStatic")
	}
	if opt.QueueCap < 0 {
		return nil, errors.New("dophy: QueueCap must be >= 0")
	}
	sc.Collect.QueueCap = opt.QueueCap
	if opt.FailureMTBF < 0 || opt.FailureMTTR < 0 {
		return nil, errors.New("dophy: failure times must be >= 0")
	}
	if opt.FailureMTBF > 0 {
		sc.Radio.FailMTBF = sim.Time(opt.FailureMTBF)
		mttr := opt.FailureMTTR
		if mttr == 0 {
			mttr = 60
		}
		sc.Radio.FailMTTR = sim.Time(mttr)
	}
	if opt.MaxRetx > 0 {
		sc.Mac.MaxRetx = opt.MaxRetx
	}
	if opt.GenPeriodSeconds > 0 {
		sc.Collect.GenPeriod = sim.Time(opt.GenPeriodSeconds)
	}
	if opt.EpochSeconds > 0 {
		sc.EpochLen = sim.Time(opt.EpochSeconds)
	}
	if opt.AggThreshold > 0 {
		sc.Dophy.AggThreshold = opt.AggThreshold
	}
	sc.Dophy.UpdateEvery = opt.UpdateEvery
	if opt.UpdateEvery == 0 {
		sc.Dophy.UpdateEvery = 1
	}
	sc.Routing.RandomizeParentProb = opt.ParentChurn

	s := &Simulation{scenario: sc, compare: opt.CompareBaselines}
	// Random placements occasionally come out partitioned; deterministically
	// probe a few derived seeds so every (Options, Seed) pair still maps to
	// exactly one connected deployment.
	base := sc.Seed
	for attempt := 0; attempt < 10; attempt++ {
		sc.Seed = base + uint64(attempt)*0x9e3779b97f4a7c15
		s.scenario = sc
		s.session = experiment.NewSession(sc)
		if s.session.Topology().Connected() {
			return s, nil
		}
	}
	return nil, errors.New("dophy: could not generate a connected topology; increase density")
}

// Topology describes the simulated deployment.
func (s *Simulation) Topology() TopologyInfo {
	sum := s.session.Topology().Summary()
	return TopologyInfo{
		Nodes:     sum.Nodes,
		Links:     sum.Links,
		AvgDegree: sum.AvgDegree,
		AvgHops:   sum.AvgHops,
		MaxHops:   sum.MaxHops,
	}
}

// RunEpoch advances the network one epoch and returns Dophy's estimates
// with ground truth attached.
func (s *Simulation) RunEpoch() *Report {
	eo := s.session.RunEpoch()
	se := eo.Schemes[experiment.SchemeDophy]
	rep := &Report{
		Epoch:                eo.Epoch,
		Estimates:            make(map[Link]LinkEstimate, len(se.Loss)),
		TrueLoss:             make(map[Link]float64),
		DeliveryRatio:        eo.Truth.DeliveryRatio(),
		DecodeErrors:         se.DecodeErrors,
		BytesPerPacket:       se.BitsPerPacket() / 8,
		DisseminationBytes:   float64(se.ExtraBits) / 8,
		ParentChangesPerNode: float64(eo.Truth.ParentChanges) / math.Max(1, float64(s.session.Topology().N()-1)),
	}
	min := s.scenario.MinTruthAttempts
	for _, l := range eo.Truth.ActiveLinks(min) {
		if loss, ok := eo.Truth.Link(l).Loss(min); ok {
			rep.TrueLoss[l] = loss
		}
	}
	// Table order is ascending (From, To), so the float accumulation below
	// is deterministic without sorting.
	var est, tru []float64
	for i := topo.LinkIdx(0); i < se.Table.Count(); i++ {
		loss := se.Loss[i]
		if math.IsNaN(loss) {
			continue
		}
		l := se.Table.Link(i)
		rep.Estimates[l] = LinkEstimate{Loss: loss, StdErr: se.StdErr[i], Samples: se.Samples[i]}
		if t, ok := rep.TrueLoss[l]; ok {
			est = append(est, loss)
			tru = append(tru, t)
		}
	}
	if len(rep.TrueLoss) > 0 {
		rep.Coverage = float64(len(est)) / float64(len(rep.TrueLoss))
	}
	if len(est) > 0 {
		rep.MAE = stats.MAE(est, tru)
	} else {
		rep.MAE = math.NaN()
	}
	if s.compare {
		rep.BaselineMAE = map[string]float64{}
		for _, name := range []string{experiment.SchemeMINC, experiment.SchemeLSQ} {
			acc := experiment.Score(eo.Schemes[name], eo.Truth, min)
			rep.BaselineMAE[name] = acc.MAE
		}
	}
	return rep
}
