package dophy

import (
	"math"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	sim, err := NewSimulation(Options{GridSide: 5, Seed: 1, EpochSeconds: 200})
	if err != nil {
		t.Fatal(err)
	}
	info := sim.Topology()
	if info.Nodes != 25 || info.AvgHops <= 0 {
		t.Fatalf("topology = %+v", info)
	}
	rep := sim.RunEpoch()
	if rep.Epoch != 1 {
		t.Fatalf("epoch = %d", rep.Epoch)
	}
	if len(rep.Estimates) == 0 || len(rep.TrueLoss) == 0 {
		t.Fatal("no estimates or truth")
	}
	if rep.DecodeErrors != 0 {
		t.Fatalf("decode errors: %d", rep.DecodeErrors)
	}
	if math.IsNaN(rep.MAE) || rep.MAE > 0.1 {
		t.Fatalf("MAE = %v", rep.MAE)
	}
	if rep.BytesPerPacket <= 0 || rep.BytesPerPacket > 20 {
		t.Fatalf("bytes/packet = %v", rep.BytesPerPacket)
	}
	if rep.DeliveryRatio < 0.9 {
		t.Fatalf("delivery ratio = %v", rep.DeliveryRatio)
	}
	// Second epoch advances.
	rep2 := sim.RunEpoch()
	if rep2.Epoch != 2 {
		t.Fatalf("second epoch = %d", rep2.Epoch)
	}
}

func TestUniformLossRecovered(t *testing.T) {
	sim, err := NewSimulation(Options{GridSide: 4, Seed: 2, UniformLoss: 0.2, EpochSeconds: 400, GenPeriodSeconds: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep := sim.RunEpoch()
	for l, est := range rep.Estimates {
		if est.Samples < 20 {
			continue
		}
		if math.Abs(est.Loss-0.2) > 0.08 {
			t.Errorf("link %v: loss %.3f (n=%d), want ~0.2", l, est.Loss, est.Samples)
		}
	}
}

func TestCompareBaselines(t *testing.T) {
	sim, err := NewSimulation(Options{GridSide: 5, Seed: 3, CompareBaselines: true, EpochSeconds: 250})
	if err != nil {
		t.Fatal(err)
	}
	rep := sim.RunEpoch()
	if len(rep.BaselineMAE) != 2 {
		t.Fatalf("baselines = %v", rep.BaselineMAE)
	}
	for name, mae := range rep.BaselineMAE {
		if math.IsNaN(mae) {
			t.Fatalf("%s produced NaN", name)
		}
		if mae < rep.MAE {
			t.Fatalf("%s (%.4f) beat dophy (%.4f) — paper claim violated", name, mae, rep.MAE)
		}
	}
}

func TestParentChurnIncreasesDynamics(t *testing.T) {
	calm, err := NewSimulation(Options{GridSide: 5, Seed: 4, EpochSeconds: 300})
	if err != nil {
		t.Fatal(err)
	}
	churny, err := NewSimulation(Options{GridSide: 5, Seed: 4, ParentChurn: 0.5, EpochSeconds: 300})
	if err != nil {
		t.Fatal(err)
	}
	c1 := calm.RunEpoch().ParentChangesPerNode
	c2 := churny.RunEpoch().ParentChangesPerNode
	if c2 <= c1 {
		t.Fatalf("churn option ineffective: %v vs %v", c1, c2)
	}
}

func TestDynamicsVariants(t *testing.T) {
	for _, d := range []Dynamics{DynamicsStatic, DynamicsDrift, DynamicsBursty} {
		sim, err := NewSimulation(Options{GridSide: 4, Seed: 5, Dynamics: d, EpochSeconds: 150})
		if err != nil {
			t.Fatalf("dynamics %d: %v", d, err)
		}
		rep := sim.RunEpoch()
		if rep.DecodeErrors != 0 {
			t.Fatalf("dynamics %d: decode errors", d)
		}
	}
}

func TestUniformNodesPlacement(t *testing.T) {
	sim, err := NewSimulation(Options{Nodes: 40, Seed: 8, EpochSeconds: 150})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Topology().Nodes != 40 {
		t.Fatalf("nodes = %d", sim.Topology().Nodes)
	}
}

func TestOptionValidation(t *testing.T) {
	cases := map[string]Options{
		"both layouts":  {GridSide: 5, Nodes: 10},
		"negative":      {GridSide: -1},
		"loss too big":  {UniformLoss: 1.5},
		"churn range":   {ParentChurn: 2},
		"tiny grid":     {GridSide: 1},
		"one node":      {Nodes: 1},
		"bad dynamics":  {Dynamics: Dynamics(42)},
		"drift uniform": {Dynamics: DynamicsDrift, UniformLoss: 0.2},
	}
	for name, opt := range cases {
		if _, err := NewSimulation(opt); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	mk := func() *Report {
		sim, err := NewSimulation(Options{GridSide: 4, Seed: 9, EpochSeconds: 150})
		if err != nil {
			t.Fatal(err)
		}
		return sim.RunEpoch()
	}
	a, b := mk(), mk()
	if a.MAE != b.MAE || a.BytesPerPacket != b.BytesPerPacket || len(a.Estimates) != len(b.Estimates) {
		t.Fatal("same options+seed produced different results")
	}
}

func TestQueueCapOption(t *testing.T) {
	// Heavy load with tiny queues must show up as lost delivery while the
	// loss estimates stay sound.
	sim, err := NewSimulation(Options{
		GridSide: 5, Seed: 21, EpochSeconds: 200,
		GenPeriodSeconds: 0.5, QueueCap: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := sim.RunEpoch()
	if rep.DeliveryRatio > 0.9 {
		t.Fatalf("overload did not reduce delivery: %v", rep.DeliveryRatio)
	}
	if rep.DecodeErrors != 0 {
		t.Fatal("decode errors under congestion")
	}
	if math.IsNaN(rep.MAE) || rep.MAE > 0.12 {
		t.Fatalf("congestion corrupted link estimates: MAE=%v", rep.MAE)
	}
}

func TestFailureOptions(t *testing.T) {
	calm, err := NewSimulation(Options{GridSide: 5, Seed: 22, EpochSeconds: 300})
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := NewSimulation(Options{GridSide: 5, Seed: 22, EpochSeconds: 300, FailureMTBF: 200, FailureMTTR: 50})
	if err != nil {
		t.Fatal(err)
	}
	c := calm.RunEpoch()
	f := faulty.RunEpoch()
	if f.DeliveryRatio >= c.DeliveryRatio {
		t.Fatalf("failures did not reduce delivery: %v vs %v", f.DeliveryRatio, c.DeliveryRatio)
	}
	if f.DecodeErrors != 0 {
		t.Fatal("decode errors under failures")
	}
}

func TestNegativeOptionValidation(t *testing.T) {
	for name, opt := range map[string]Options{
		"neg queue": {GridSide: 4, QueueCap: -1},
		"neg mtbf":  {GridSide: 4, FailureMTBF: -1},
	} {
		if _, err := NewSimulation(opt); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
