module dophy

go 1.22
