module dophy

go 1.22

// Pin the exact toolchain so CI (go-version-file: go.mod) and local
// builds compile with the same compiler; bump deliberately, not via
// whatever setup-go resolves "1.22" to this week.
toolchain go1.24.0
