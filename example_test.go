package dophy_test

import (
	"fmt"
	"math"
	"sort"

	"dophy"
)

// Example shows the minimal flow: build a deployment, run one estimation
// epoch, inspect the result.
func Example() {
	sim, err := dophy.NewSimulation(dophy.Options{
		GridSide:     4,
		Seed:         1,
		UniformLoss:  0.2, // every link at exactly 20% loss
		EpochSeconds: 400,
	})
	if err != nil {
		panic(err)
	}
	report := sim.RunEpoch()
	// With uniform 20% loss the estimates concentrate around 0.2.
	var sum float64
	var n int
	for _, est := range report.Estimates {
		if est.Samples >= 50 {
			sum += est.Loss
			n++
		}
	}
	fmt.Printf("links estimated: %v\n", n > 5)
	fmt.Printf("mean estimate near 0.2: %v\n", math.Abs(sum/float64(n)-0.2) < 0.05)
	fmt.Printf("decode errors: %d\n", report.DecodeErrors)
	// Output:
	// links estimated: true
	// mean estimate near 0.2: true
	// decode errors: 0
}

// ExampleSimulation_RunEpoch demonstrates epoch-over-epoch operation with
// the baseline comparison enabled.
func ExampleSimulation_RunEpoch() {
	sim, err := dophy.NewSimulation(dophy.Options{
		GridSide:         4,
		Seed:             3,
		EpochSeconds:     250,
		CompareBaselines: true,
	})
	if err != nil {
		panic(err)
	}
	for epoch := 0; epoch < 2; epoch++ {
		rep := sim.RunEpoch()
		better := rep.MAE < rep.BaselineMAE["minc"] && rep.MAE < rep.BaselineMAE["lsq"]
		fmt.Printf("epoch %d: dophy more accurate than both baselines: %v\n", rep.Epoch, better)
	}
	// Output:
	// epoch 1: dophy more accurate than both baselines: true
	// epoch 2: dophy more accurate than both baselines: true
}

// ExampleReport_worstLinks shows turning a report into an operator-facing
// ranking of problem links.
func ExampleReport_worstLinks() {
	sim, err := dophy.NewSimulation(dophy.Options{GridSide: 4, Seed: 5, EpochSeconds: 300})
	if err != nil {
		panic(err)
	}
	rep := sim.RunEpoch()
	type entry struct {
		link dophy.Link
		loss float64
	}
	var entries []entry
	for l, est := range rep.Estimates {
		entries = append(entries, entry{l, est.Loss})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].loss != entries[j].loss {
			return entries[i].loss > entries[j].loss
		}
		return entries[i].link.From < entries[j].link.From
	})
	fmt.Printf("ranked %v links, worst first: %v\n",
		len(entries) > 0, entries[0].loss >= entries[len(entries)-1].loss)
	// Output:
	// ranked true links, worst first: true
}
