// Adaptive-model scenario: Dophy optimisation 2 in action.
//
// Link qualities drift over time (random walk), so the global distribution
// of retransmission counts moves away from whatever probability model the
// encoders use. A stale model pays cross-entropy above the true entropy on
// every hop record; periodic model updates claw that back at the price of
// flooding a quantised frequency table. This example sweeps the update
// period and prints the total overhead — the same trade-off as
// `dophy-bench -exp T3`.
//
// Run with:
//
//	go run ./examples/adaptivemodel
package main

import (
	"fmt"

	"dophy/internal/experiment"
)

func main() {
	fmt.Println("model update period vs total overhead under link drift")
	fmt.Printf("%-13s %-12s %-13s %-12s\n",
		"update-every", "annot-B/pkt", "dissem-B/pkt", "total-B/pkt")

	type result struct {
		ue    int
		total float64
	}
	var best result
	for _, ue := range []int{0, 1, 2, 4, 8} {
		sc := experiment.DefaultScenario()
		sc.Seed = 33
		sc.Radio = experiment.RadioSpec{
			Kind:      experiment.RadioRandomWalk,
			WalkStep:  0.35,
			WalkEvery: 5,
		}
		sc.Dophy.UpdateEvery = ue
		sc.Epochs = 8
		sc.EpochLen = 200
		res := experiment.Run(sc)
		annot := res.MeanBitsPerPacket(experiment.SchemeDophy) / 8
		total := res.TotalBitsPerPacket(experiment.SchemeDophy) / 8
		fmt.Printf("%-13d %-12.3f %-13.3f %-12.3f\n", ue, annot, total-annot, total)
		if best.total == 0 || total < best.total {
			best = result{ue, total}
		}
	}
	fmt.Printf("\nminimum total overhead at update-every=%d: the sweet spot where\n", best.ue)
	fmt.Println("in-packet savings from a fresh model outweigh dissemination cost.")
}
