// Dynamic-routing scenario: the experiment that motivates the paper.
//
// We sweep forced parent churn from "quasi-static" to "a third of all
// beacons trigger a parent change" and watch what happens to Dophy versus
// the traditional static-path tomography baselines (tree-EM "minc" and
// log-linear least squares "lsq"). Dophy attributes retransmission counts
// to links directly, so path churn barely moves it; the baselines attribute
// end-to-end loss to an assumed static tree and suffer.
//
// Run with:
//
//	go run ./examples/dynamicrouting
package main

import (
	"fmt"
	"log"

	"dophy"
)

func main() {
	fmt.Println("accuracy under routing dynamics (3 epochs each, 49 nodes)")
	fmt.Printf("%-8s  %-12s  %-10s  %-10s  %-10s\n",
		"churn", "chg/node/ep", "dophy-MAE", "minc-MAE", "lsq-MAE")

	for _, churn := range []float64{0, 0.1, 0.3, 0.5} {
		sim, err := dophy.NewSimulation(dophy.Options{
			GridSide:         7,
			Seed:             7,
			ParentChurn:      churn,
			EpochSeconds:     300,
			CompareBaselines: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		var dMAE, mMAE, lMAE, chg float64
		const epochs = 3
		for e := 0; e < epochs; e++ {
			rep := sim.RunEpoch()
			dMAE += rep.MAE / epochs
			mMAE += rep.BaselineMAE["minc"] / epochs
			lMAE += rep.BaselineMAE["lsq"] / epochs
			chg += rep.ParentChangesPerNode / epochs
		}
		fmt.Printf("%-8.2f  %-12.1f  %-10.4f  %-10.4f  %-10.4f\n", churn, chg, dMAE, mMAE, lMAE)
	}

	fmt.Println("\nDophy's error stays flat at every churn level and is an order")
	fmt.Println("of magnitude below the baselines: retransmission counts name the")
	fmt.Println("lossy link per packet, so path churn cannot smear the attribution,")
	fmt.Println("and ARQ cannot hide fine-grained loss from it the way it hides")
	fmt.Println("loss from end-to-end delivery ratios. (For the isolated dynamics")
	fmt.Println("effect with baselines at their best, see `dophy-bench -exp F3`.)")
}
