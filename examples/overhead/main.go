// Encoding-overhead scenario: how many bytes does each recording scheme add
// to a data packet, as the network (and therefore path length) grows?
//
// This example drives the internal experiment harness directly — the same
// machinery behind `dophy-bench -exp T1` — so all schemes observe identical
// packet realisations.
//
// Run with:
//
//	go run ./examples/overhead
package main

import (
	"fmt"

	"dophy/internal/experiment"
)

func main() {
	fmt.Println("per-packet annotation cost by scheme (bytes)")
	fmt.Printf("%-7s %-9s %-8s %-9s %-9s %-8s\n",
		"nodes", "avg-hops", "dophy", "huffman", "compact", "raw")

	for _, side := range []int{5, 7, 10, 14} {
		sc := experiment.DefaultScenario()
		sc.Seed = 21 + uint64(side)
		sc.Topo = experiment.GridSpec(side)
		sc.Epochs = 2
		sc.EpochLen = 200
		res := experiment.Run(sc)
		fmt.Printf("%-7d %-9.1f %-8.2f %-9.2f %-9.2f %-8.2f\n",
			side*side,
			res.Topology.Summary().AvgHops,
			res.MeanBitsPerPacket(experiment.SchemeDophy)/8,
			res.MeanBitsPerPacket(experiment.SchemeHuffman)/8,
			res.MeanBitsPerPacket(experiment.SchemeCompact)/8,
			res.MeanBitsPerPacket(experiment.SchemeRaw)/8,
		)
	}

	fmt.Println("\nall schemes carry identical information (hop identity +")
	fmt.Println("retransmission count per hop) and achieve identical accuracy;")
	fmt.Println("arithmetic coding pays a fraction of a bit per hop record,")
	fmt.Println("below the 1-bit floor any prefix code (huffman) must pay.")
}
