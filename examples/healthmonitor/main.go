// Health-monitor scenario: what a network operator actually runs.
//
// Each epoch, Dophy's per-link estimates (with observed-information
// confidence intervals) feed a simple alerting policy: flag a link as
// DEGRADED when its 95% lower confidence bound exceeds a loss threshold —
// i.e. we are statistically confident it is bad, not just unlucky this
// epoch. The example prints the alert log and then checks it against the
// simulator's ground truth.
//
// Run with:
//
//	go run ./examples/healthmonitor
package main

import (
	"fmt"
	"log"
	"sort"

	"dophy"
)

const lossThreshold = 0.35 // alert when confidently above this

func main() {
	sim, err := dophy.NewSimulation(dophy.Options{
		GridSide:     6,
		Seed:         14,
		EpochSeconds: 300,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monitoring %d nodes; alert threshold: %.0f%% loss (95%% confidence)\n\n",
		sim.Topology().Nodes, lossThreshold*100)

	type alert struct {
		link  dophy.Link
		est   dophy.LinkEstimate
		truth float64
		hasT  bool
	}
	var alerts []alert
	for epoch := 0; epoch < 3; epoch++ {
		rep := sim.RunEpoch()
		links := make([]dophy.Link, 0, len(rep.Estimates))
		for l := range rep.Estimates {
			links = append(links, l)
		}
		sort.Slice(links, func(i, j int) bool {
			a, b := links[i], links[j]
			if a.From != b.From {
				return a.From < b.From
			}
			return a.To < b.To
		})
		for _, l := range links {
			est := rep.Estimates[l]
			if est.StdErr == 0 || est.Samples < 30 {
				continue // not enough evidence either way
			}
			lower := est.Loss - 1.96*est.StdErr
			if lower > lossThreshold {
				truth, ok := rep.TrueLoss[l]
				alerts = append(alerts, alert{l, est, truth, ok})
			}
		}
	}
	// Stable ordering: worst first, then by link so equal losses (and the
	// alert log as a whole) print identically on every run.
	sort.Slice(alerts, func(i, j int) bool {
		a, b := alerts[i], alerts[j]
		if a.est.Loss != b.est.Loss {
			return a.est.Loss > b.est.Loss
		}
		if a.link.From != b.link.From {
			return a.link.From < b.link.From
		}
		return a.link.To < b.link.To
	})

	fmt.Printf("%-10s  %-18s  %-8s  %s\n", "link", "estimate (95% CI)", "true", "samples")
	truePositives := 0
	for _, a := range alerts {
		truth := "  -"
		if a.hasT {
			truth = fmt.Sprintf("%.3f", a.truth)
			if a.truth > lossThreshold*0.85 {
				truePositives++
			}
		}
		fmt.Printf("%-10s  %.3f (±%.3f)      %-8s  %d\n",
			a.link, a.est.Loss, 1.96*a.est.StdErr, truth, a.est.Samples)
	}
	if len(alerts) == 0 {
		fmt.Println("(no links confidently above threshold)")
		return
	}
	fmt.Printf("\n%d alerts, %d verified against ground truth as genuinely degraded\n",
		len(alerts), truePositives)
	fmt.Println("confidence gating keeps noisy low-sample links from paging anyone.")
}
