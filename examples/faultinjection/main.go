// Fault-injection scenario: nodes crash and recover while the network runs.
//
// A failed node's radio goes silent; the routing protocol discovers the
// hole through missed beacons and failed transmissions and re-homes entire
// subtrees — the most violent form of "dynamic sensor network". This
// example sweeps the failure rate and shows Dophy keeps estimating the
// links that are up while the static-path baselines smear loss across their
// stale trees. (Same machinery as `dophy-bench -exp F7`.)
//
// Run with:
//
//	go run ./examples/faultinjection
package main

import (
	"fmt"

	"dophy/internal/experiment"
)

func main() {
	fmt.Println("node failures: MTTR fixed at 60s, failure rate sweeps")
	fmt.Printf("%-9s  %-9s  %-12s  %-10s  %-10s\n",
		"MTBF(s)", "delivery", "churn/node", "dophy-MAE", "minc-MAE")

	for _, mtbf := range []float64{0, 1200, 600, 300} {
		sc := experiment.DefaultScenario()
		sc.Seed = 19
		if mtbf > 0 {
			sc.Radio.FailMTBF = experimentTime(mtbf)
			sc.Radio.FailMTTR = 60
		}
		sc.EpochLen = 400
		sc.Epochs = 3
		res := experiment.Run(sc)
		var delivery, churn float64
		for _, eo := range res.Epochs {
			delivery += eo.Truth.DeliveryRatio() / float64(len(res.Epochs))
			churn += float64(eo.Truth.ParentChanges) / float64(len(res.Epochs))
		}
		churn /= float64(res.Topology.N() - 1)
		label := "none"
		if mtbf > 0 {
			label = fmt.Sprintf("%.0f", mtbf)
		}
		fmt.Printf("%-9s  %-9.4f  %-12.1f  %-10.4f  %-10.4f\n",
			label, delivery,
			churn,
			res.MeanAccuracy(experiment.SchemeDophy).MAE,
			res.MeanAccuracy(experiment.SchemeMINC).MAE)
	}

	fmt.Println("\neven at MTBF 300s (a node fails every five minutes on average),")
	fmt.Println("Dophy's per-link error stays several times below the tree baseline:")
	fmt.Println("retransmission counts keep naming the surviving links precisely.")
}

// experimentTime adapts a float64 to the scenario's duration type.
func experimentTime(v float64) (out experiment.Duration) { return experiment.Duration(v) }
