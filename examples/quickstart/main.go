// Quickstart: build a small dynamic sensor network, run one estimation
// epoch, and compare Dophy's per-link loss estimates with the simulator's
// ground truth.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"dophy"
)

func main() {
	// 25 nodes on a jittered grid, realistic mixed-quality links, default
	// CTP-like dynamic routing underneath.
	sim, err := dophy.NewSimulation(dophy.Options{
		GridSide:     5,
		Seed:         42,
		EpochSeconds: 300,
	})
	if err != nil {
		log.Fatal(err)
	}

	info := sim.Topology()
	fmt.Printf("deployment: %d nodes, avg %.1f hops to the sink\n\n", info.Nodes, info.AvgHops)

	report := sim.RunEpoch()
	fmt.Printf("epoch %d: delivery ratio %.3f, annotation cost %.2f bytes/packet\n",
		report.Epoch, report.DeliveryRatio, report.BytesPerPacket)
	fmt.Printf("estimated %d links, mean absolute error vs ground truth: %.4f\n\n",
		len(report.Estimates), report.MAE)

	// Show the ten worst links — the actionable output a network operator
	// would look at.
	type row struct {
		link dophy.Link
		est  dophy.LinkEstimate
	}
	links := make([]dophy.Link, 0, len(report.Estimates))
	for l := range report.Estimates {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool {
		a, b := links[i], links[j]
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	rows := make([]row, 0, len(links))
	for _, l := range links {
		rows = append(rows, row{l, report.Estimates[l]})
	}
	// Worst first, link order breaking ties so the top-10 cut is stable.
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.est.Loss != b.est.Loss {
			return a.est.Loss > b.est.Loss
		}
		if a.link.From != b.link.From {
			return a.link.From < b.link.From
		}
		return a.link.To < b.link.To
	})
	if len(rows) > 10 {
		rows = rows[:10]
	}
	fmt.Println("worst links by estimated per-transmission loss:")
	fmt.Printf("%-10s %-10s %-10s %-8s\n", "link", "estimated", "true", "samples")
	for _, r := range rows {
		truth := "-"
		if tv, ok := report.TrueLoss[r.link]; ok {
			truth = fmt.Sprintf("%.3f", tv)
		}
		fmt.Printf("%-10s %-10.3f %-10s %-8d\n", r.link, r.est.Loss, truth, r.est.Samples)
	}
}
