// Quickstart: build a small dynamic sensor network, run one estimation
// epoch, and compare Dophy's per-link loss estimates with the simulator's
// ground truth.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"dophy"
)

func main() {
	// 25 nodes on a jittered grid, realistic mixed-quality links, default
	// CTP-like dynamic routing underneath.
	sim, err := dophy.NewSimulation(dophy.Options{
		GridSide:     5,
		Seed:         42,
		EpochSeconds: 300,
	})
	if err != nil {
		log.Fatal(err)
	}

	info := sim.Topology()
	fmt.Printf("deployment: %d nodes, avg %.1f hops to the sink\n\n", info.Nodes, info.AvgHops)

	report := sim.RunEpoch()
	fmt.Printf("epoch %d: delivery ratio %.3f, annotation cost %.2f bytes/packet\n",
		report.Epoch, report.DeliveryRatio, report.BytesPerPacket)
	fmt.Printf("estimated %d links, mean absolute error vs ground truth: %.4f\n\n",
		len(report.Estimates), report.MAE)

	// Show the ten worst links — the actionable output a network operator
	// would look at.
	type row struct {
		link dophy.Link
		est  dophy.LinkEstimate
	}
	var rows []row
	for l, e := range report.Estimates {
		rows = append(rows, row{l, e})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].est.Loss > rows[j].est.Loss })
	if len(rows) > 10 {
		rows = rows[:10]
	}
	fmt.Println("worst links by estimated per-transmission loss:")
	fmt.Printf("%-10s %-10s %-10s %-8s\n", "link", "estimated", "true", "samples")
	for _, r := range rows {
		truth := "-"
		if tv, ok := report.TrueLoss[r.link]; ok {
			truth = fmt.Sprintf("%.3f", tv)
		}
		fmt.Printf("%-10s %-10.3f %-10s %-8d\n", r.link, r.est.Loss, truth, r.est.Samples)
	}
}
