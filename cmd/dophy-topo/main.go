// dophy-topo generates and inspects the topologies the simulator uses:
// node counts, degrees, hop depths and connectivity, for each generator at
// a given seed. Useful when picking scenario parameters.
//
// Usage:
//
//	dophy-topo                       # summarise the standard layouts
//	dophy-topo -kind grid -side 12
//	dophy-topo -kind uniform -n 200 -width 120 -height 120 -range 14
//	dophy-topo -kind corridor -n 60 -width 300 -height 15 -range 20
//	dophy-topo -degrees              # include a degree histogram
package main

import (
	"flag"
	"fmt"
	"os"

	"dophy/internal/rng"
	"dophy/internal/topo"
)

func main() {
	var (
		kind    = flag.String("kind", "", "grid | uniform | corridor | chain (empty: tour of defaults)")
		side    = flag.Int("side", 10, "grid side")
		n       = flag.Int("n", 100, "node count for uniform/corridor/chain")
		width   = flag.Float64("width", 100, "field width (uniform/corridor)")
		height  = flag.Float64("height", 100, "field height (uniform/corridor)")
		spacing = flag.Float64("spacing", 10, "grid/chain spacing")
		jitter  = flag.Float64("jitter", 1.5, "grid placement jitter")
		rrange  = flag.Float64("range", 14, "communication range")
		seed    = flag.Uint64("seed", 1, "placement seed")
		degrees = flag.Bool("degrees", false, "print degree histogram")
	)
	flag.Parse()

	build := func(kind string) *topo.Topology {
		r := rng.New(*seed)
		switch kind {
		case "grid":
			return topo.Grid(*side, *spacing, *jitter, *rrange, r)
		case "uniform":
			return topo.Uniform(*n, *width, *height, *rrange, r)
		case "corridor":
			return topo.Corridor(*n, *width, *height, *rrange, r)
		case "chain":
			return topo.Chain(*n, *spacing, *rrange)
		}
		fmt.Fprintf(os.Stderr, "dophy-topo: unknown kind %q\n", kind)
		os.Exit(2)
		return nil
	}

	kinds := []string{"grid", "uniform", "corridor", "chain"}
	if *kind != "" {
		kinds = []string{*kind}
	}
	for _, k := range kinds {
		t := build(k)
		s := t.Summary()
		fmt.Printf("%-9s nodes=%-5d links=%-6d degree=%d..%d (avg %.1f)  hops avg=%.1f max=%d  connected=%v\n",
			k, s.Nodes, s.Links, s.MinDegree, s.MaxDegree, s.AvgDegree, s.AvgHops, s.MaxHops, s.Connected)
		if *degrees {
			hist := map[int]int{}
			maxDeg := 0
			for i := 0; i < t.N(); i++ {
				d := len(t.Neighbors(topo.NodeID(i)))
				hist[d]++
				if d > maxDeg {
					maxDeg = d
				}
			}
			for d := 0; d <= maxDeg; d++ {
				if hist[d] == 0 {
					continue
				}
				fmt.Printf("  degree %2d: %4d nodes\n", d, hist[d])
			}
		}
	}
}
