package main

import (
	"strings"
	"testing"
)

func report(ids ...string) *benchReport {
	rep := &benchReport{Seed: 7, Parallel: 1, GoVersion: "go-test"}
	for _, id := range ids {
		rep.Experiments = append(rep.Experiments, benchExperiment{
			ID: id, WallS: 1.0, Runs: 10, Mallocs: 1000,
		})
	}
	return rep
}

func TestCompareReportsFullCoverage(t *testing.T) {
	var buf strings.Builder
	old, cur := report("T1", "T2"), report("T1", "T2")
	if !compareReports(&buf, old, cur, 0.15, 0.10, 0.20, 0.25, 0.30, true) {
		t.Fatalf("identical reports must pass -require-all:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "not run") {
		t.Fatalf("full coverage must not report missing experiments:\n%s", buf.String())
	}
}

func TestCompareReportsListsNotRun(t *testing.T) {
	var buf strings.Builder
	old, cur := report("T1", "T2", "T4"), report("T1")
	if !compareReports(&buf, old, cur, 0.15, 0.10, 0.20, 0.25, 0.30, false) {
		t.Fatalf("partial rerun without -require-all must pass:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "baseline experiments not run: T2, T4") {
		t.Fatalf("missing coverage summary:\n%s", buf.String())
	}
}

func TestCompareReportsRequireAllFails(t *testing.T) {
	var buf strings.Builder
	old, cur := report("T1", "T2"), report("T2")
	if compareReports(&buf, old, cur, 0.15, 0.10, 0.20, 0.25, 0.30, true) {
		t.Fatalf("-require-all must fail on a partial rerun:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "FAIL (-require-all)") {
		t.Fatalf("missing -require-all verdict:\n%s", buf.String())
	}
}

func TestCompareReportsWallRegression(t *testing.T) {
	var buf strings.Builder
	old, cur := report("T1"), report("T1")
	cur.Experiments[0].WallS = 2.0
	if compareReports(&buf, old, cur, 0.15, 0.10, 0.20, 0.25, 0.30, false) {
		t.Fatalf("doubled wall-clock must fail:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "WALL REGRESSION") {
		t.Fatalf("missing wall verdict:\n%s", buf.String())
	}
}

func TestCompareReportsAllocRegression(t *testing.T) {
	var buf strings.Builder
	old, cur := report("T1"), report("T1")
	cur.Experiments[0].Mallocs = 2000
	if compareReports(&buf, old, cur, 0.15, 0.10, 0.20, 0.25, 0.30, false) {
		t.Fatalf("doubled allocs/run must fail:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "ALLOC REGRESSION") {
		t.Fatalf("missing alloc verdict:\n%s", buf.String())
	}
}

func TestCompareReportsEventsPerSecRegression(t *testing.T) {
	var buf strings.Builder
	old, cur := report("S0"), report("S0")
	old.Experiments[0].EventsPS = 1e6
	cur.Experiments[0].EventsPS = 0.7e6 // -30% against a 20% tolerance
	if compareReports(&buf, old, cur, 0.15, 0.10, 0.20, 0.25, 0.30, false) {
		t.Fatalf("30%% events/sec drop must fail a 20%% gate:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "EVENTS/SEC REGRESSION") {
		t.Fatalf("missing events/sec verdict:\n%s", buf.String())
	}
}

func TestCompareReportsEventsPerSecTolerance(t *testing.T) {
	var buf strings.Builder
	old, cur := report("S0"), report("S0")
	old.Experiments[0].EventsPS = 1e6
	cur.Experiments[0].EventsPS = 0.9e6 // -10%: inside the tunable gate
	if !compareReports(&buf, old, cur, 0.15, 0.10, 0.20, 0.25, 0.30, false) {
		t.Fatalf("10%% events/sec drop must pass a 20%% gate:\n%s", buf.String())
	}
	// Tighten the tolerance and the same drop must fail.
	buf.Reset()
	if compareReports(&buf, old, cur, 0.15, 0.10, 0.05, 0.25, 0.30, false) {
		t.Fatalf("10%% events/sec drop must fail a 5%% gate:\n%s", buf.String())
	}
}

func TestCompareReportsEventsPerSecSkipsOldBaselines(t *testing.T) {
	var buf strings.Builder
	old, cur := report("T1"), report("T1")
	cur.Experiments[0].EventsPS = 1e6 // baseline has no event metering
	if !compareReports(&buf, old, cur, 0.15, 0.10, 0.20, 0.25, 0.30, false) {
		t.Fatalf("baselines without events/sec must not gate:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "EVENTS/SEC REGRESSION") {
		t.Fatalf("unexpected events/sec verdict:\n%s", buf.String())
	}
}

func TestCompareReportsEstimationRegression(t *testing.T) {
	var buf strings.Builder
	old, cur := report("T1"), report("T1")
	old.Experiments[0].EstS = 0.2
	cur.Experiments[0].EstS = 0.4 // +100% against a 25% tolerance
	if compareReports(&buf, old, cur, 0.15, 0.10, 0.20, 0.25, 0.30, false) {
		t.Fatalf("doubled estimation time must fail a 25%% gate:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "ESTIMATION REGRESSION") {
		t.Fatalf("missing estimation verdict:\n%s", buf.String())
	}
}

func TestCompareReportsEstimationTolerance(t *testing.T) {
	var buf strings.Builder
	old, cur := report("T1"), report("T1")
	old.Experiments[0].EstS = 0.2
	cur.Experiments[0].EstS = 0.23 // +15%: inside the default gate
	if !compareReports(&buf, old, cur, 0.15, 0.10, 0.20, 0.25, 0.30, false) {
		t.Fatalf("15%% estimation growth must pass a 25%% gate:\n%s", buf.String())
	}
	// Tighten the tolerance and the same growth must fail.
	buf.Reset()
	if compareReports(&buf, old, cur, 0.15, 0.10, 0.20, 0.10, 0.30, false) {
		t.Fatalf("15%% estimation growth must fail a 10%% gate:\n%s", buf.String())
	}
}

func TestCompareReportsEstimationSkipsOldBaselines(t *testing.T) {
	var buf strings.Builder
	old, cur := report("T1"), report("T1")
	cur.Experiments[0].EstS = 1.0 // baseline predates estimation metering
	if !compareReports(&buf, old, cur, 0.15, 0.10, 0.20, 0.25, 0.30, false) {
		t.Fatalf("baselines without estimation_seconds must not gate:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "ESTIMATION REGRESSION") {
		t.Fatalf("unexpected estimation verdict:\n%s", buf.String())
	}
}

func TestCompareReportsEstimationNoiseFloor(t *testing.T) {
	var buf strings.Builder
	old, cur := report("T1"), report("T1")
	old.Experiments[0].EstS = 0.01 // under minCompareEstS
	cur.Experiments[0].EstS = 0.04 // 4x, but both within noise
	if !compareReports(&buf, old, cur, 0.15, 0.10, 0.20, 0.25, 0.30, false) {
		t.Fatalf("sub-noise-floor experiments must not gate on estimation:\n%s", buf.String())
	}
}

func TestCompareReportsEventsPerSecNoiseFloor(t *testing.T) {
	var buf strings.Builder
	old, cur := report("T1"), report("T1")
	old.Experiments[0].WallS = 0.05 // under minCompareWallS
	old.Experiments[0].EventsPS = 1e6
	cur.Experiments[0].EventsPS = 0.1e6
	if !compareReports(&buf, old, cur, 0.15, 0.10, 0.20, 0.25, 0.30, false) {
		t.Fatalf("sub-noise-floor experiments must not gate on events/sec:\n%s", buf.String())
	}
}
