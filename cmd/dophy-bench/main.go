// dophy-bench regenerates every table and figure of the reproduced
// evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for the
// recorded results).
//
// Usage:
//
//	dophy-bench                 # run all experiments, aligned text output
//	dophy-bench -exp T1,F3      # run a subset
//	dophy-bench -csv            # CSV output instead of aligned text
//	dophy-bench -seed 42        # change the base seed
//	dophy-bench -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"dophy/internal/experiment"
)

func main() {
	var (
		expFlag  = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		csvFlag  = flag.Bool("csv", false, "emit CSV instead of aligned text")
		seedFlag = flag.Uint64("seed", 7, "base seed for all experiments")
		listFlag = flag.Bool("list", false, "list experiment ids and exit")
		parallel = flag.Int("parallel", runtime.NumCPU(), "experiments to run concurrently (1 = sequential)")
	)
	flag.Parse()

	registry := experiment.All()
	if *listFlag {
		for _, r := range registry {
			fmt.Printf("%-4s %s\n", r.ID, r.Title)
		}
		return
	}

	want := map[string]bool{}
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
		for id := range want {
			if !knownID(registry, id) {
				fmt.Fprintf(os.Stderr, "dophy-bench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
		}
	}

	var selected []experiment.Runner
	for _, r := range registry {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		selected = append(selected, r)
	}

	// Experiments are fully independent and deterministic (each run derives
	// all randomness from its own seed), so they parallelise trivially.
	// Results are printed in registry order regardless of completion order.
	workers := *parallel
	if workers < 1 {
		workers = 1
	}
	type outcome struct {
		table   *experiment.Table
		elapsed time.Duration
	}
	results := make([]outcome, len(selected))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, r := range selected {
		wg.Add(1)
		go func(i int, r experiment.Runner) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			results[i] = outcome{table: r.Run(*seedFlag), elapsed: time.Since(start)}
		}(i, r)
	}
	wg.Wait()

	for i, res := range results {
		if *csvFlag {
			fmt.Printf("# %s: %s\n%s\n", res.table.ID, res.table.Title, res.table.CSV())
		} else {
			fmt.Println(res.table.Format())
			fmt.Printf("[%s completed in %.1fs]\n\n", selected[i].ID, res.elapsed.Seconds())
		}
	}
}

func knownID(rs []experiment.Runner, id string) bool {
	for _, r := range rs {
		if r.ID == id {
			return true
		}
	}
	return false
}
