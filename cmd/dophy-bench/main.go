// dophy-bench regenerates every table and figure of the reproduced
// evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for the
// recorded results).
//
// Usage:
//
//	dophy-bench                 # run all experiments, aligned text output
//	dophy-bench -exp T1,F3      # run a subset
//	dophy-bench -csv            # CSV output instead of aligned text
//	dophy-bench -json           # machine-readable benchmark report
//	dophy-bench -seed 42        # change the base seed
//	dophy-bench -workers 4      # cap the scenario-sweep worker pool
//	dophy-bench -list           # list experiment ids
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"dophy/internal/experiment"
)

// benchReport is the -json output: one record per experiment plus a summary,
// so successive runs can be diffed (BENCH_*.json) to track perf regressions.
type benchReport struct {
	Seed        uint64            `json:"seed"`
	Parallel    int               `json:"parallel"`
	Workers     int               `json:"sweep_workers"`
	NumCPU      int               `json:"num_cpu"`
	GoVersion   string            `json:"go_version"`
	Experiments []benchExperiment `json:"experiments"`
	TotalWallS  float64           `json:"total_wall_seconds"`
	TotalEvents uint64            `json:"total_sim_events"`
	AllocBytes  uint64            `json:"total_alloc_bytes"`
	Mallocs     uint64            `json:"mallocs"`
}

type benchExperiment struct {
	ID        string  `json:"id"`
	Title     string  `json:"title"`
	WallS     float64 `json:"wall_seconds"`
	Runs      int     `json:"sim_runs"`
	SimEvents uint64  `json:"sim_events"`
	EventsPS  float64 `json:"sim_events_per_second"`
	Rows      int     `json:"rows"`
}

func main() {
	var (
		expFlag  = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		csvFlag  = flag.Bool("csv", false, "emit CSV instead of aligned text")
		jsonFlag = flag.Bool("json", false, "emit a machine-readable benchmark report (suppresses tables)")
		seedFlag = flag.Uint64("seed", 7, "base seed for all experiments")
		listFlag = flag.Bool("list", false, "list experiment ids and exit")
		parallel = flag.Int("parallel", runtime.NumCPU(), "experiments to run concurrently (1 = sequential)")
		workers  = flag.Int("workers", 0, "scenario-sweep worker pool size (0 = NumCPU)")
	)
	flag.Parse()

	experiment.SetWorkers(*workers)

	registry := experiment.All()
	if *listFlag {
		for _, r := range registry {
			fmt.Printf("%-4s %s\n", r.ID, r.Title)
		}
		return
	}

	want := map[string]bool{}
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
		for id := range want {
			if !knownID(registry, id) {
				fmt.Fprintf(os.Stderr, "dophy-bench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
		}
	}

	var selected []experiment.Runner
	for _, r := range registry {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		selected = append(selected, r)
	}

	var memBefore runtime.MemStats
	if *jsonFlag {
		runtime.GC()
		runtime.ReadMemStats(&memBefore)
	}
	wallStart := time.Now()

	// Experiments are fully independent and deterministic (each run derives
	// all randomness from its own seed), so they parallelise trivially; each
	// experiment additionally sweeps its own scenario points through the
	// shared experiment.Workers() pool. Results are printed in registry
	// order regardless of completion order.
	expWorkers := *parallel
	if expWorkers < 1 {
		expWorkers = 1
	}
	type outcome struct {
		table   *experiment.Table
		elapsed time.Duration
	}
	results := make([]outcome, len(selected))
	sem := make(chan struct{}, expWorkers)
	var wg sync.WaitGroup
	for i, r := range selected {
		wg.Add(1)
		go func(i int, r experiment.Runner) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			results[i] = outcome{table: r.Run(*seedFlag), elapsed: time.Since(start)}
		}(i, r)
	}
	wg.Wait()
	totalWall := time.Since(wallStart)

	if *jsonFlag {
		rep := benchReport{
			Seed:       *seedFlag,
			Parallel:   expWorkers,
			Workers:    experiment.Workers(),
			NumCPU:     runtime.NumCPU(),
			GoVersion:  runtime.Version(),
			TotalWallS: totalWall.Seconds(),
		}
		for i, res := range results {
			eps := 0.0
			if s := res.elapsed.Seconds(); s > 0 {
				eps = float64(res.table.SimEvents) / s
			}
			rep.Experiments = append(rep.Experiments, benchExperiment{
				ID:        selected[i].ID,
				Title:     res.table.Title,
				WallS:     res.elapsed.Seconds(),
				Runs:      res.table.Runs,
				SimEvents: res.table.SimEvents,
				EventsPS:  eps,
				Rows:      len(res.table.Rows),
			})
			rep.TotalEvents += res.table.SimEvents
		}
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		rep.AllocBytes = memAfter.TotalAlloc - memBefore.TotalAlloc
		rep.Mallocs = memAfter.Mallocs - memBefore.Mallocs
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "dophy-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	for i, res := range results {
		if *csvFlag {
			fmt.Printf("# %s: %s\n%s\n", res.table.ID, res.table.Title, res.table.CSV())
		} else {
			fmt.Println(res.table.Format())
			fmt.Printf("[%s completed in %.1fs]\n\n", selected[i].ID, res.elapsed.Seconds())
		}
	}
}

func knownID(rs []experiment.Runner, id string) bool {
	for _, r := range rs {
		if r.ID == id {
			return true
		}
	}
	return false
}
