// dophy-bench regenerates every table and figure of the reproduced
// evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for the
// recorded results).
//
// Usage:
//
//	dophy-bench                 # run all experiments, aligned text output
//	dophy-bench -exp T1,F3      # run a subset
//	dophy-bench -csv            # CSV output instead of aligned text
//	dophy-bench -json           # machine-readable benchmark report
//	dophy-bench -seed 42        # change the base seed
//	dophy-bench -workers 4      # cap the scenario-sweep worker pool
//	dophy-bench -list           # list experiment ids
//	dophy-bench -exp S0 -shards 4
//	                            # scale-tier experiment on the sharded engine
//	dophy-bench -pipeline       # overlap epoch simulation with estimation
//	dophy-bench -incremental    # dirty-link incremental MINC/LSQ re-estimation
//	dophy-bench -compare BENCH_linux-amd64.json
//	                            # rerun and exit nonzero on a perf regression
//	                            # (>15% wall-clock, >10% allocs/op, >20%
//	                            # events/sec or >25% estimation-stage seconds
//	                            # per experiment; tune with -max-wall-regress /
//	                            # -max-allocs-regress / -max-eventsps-regress /
//	                            # -max-est-regress; allocs gate needs
//	                            # -parallel 1 baselines on both sides)
//
//dophy:concurrency-boundary -- experiment-level fan-out; each worker runs an independent scenario and results are keyed by experiment id
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"dophy/internal/experiment"
)

// benchReport is the -json output: one record per experiment plus a summary,
// so successive runs can be diffed (BENCH_*.json) to track perf regressions.
type benchReport struct {
	Seed     uint64 `json:"seed"`
	Parallel int    `json:"parallel"`
	Workers  int    `json:"sweep_workers"`
	// Shards is the shard count scale-tier experiments ran with (-shards);
	// omitted (1) for unsharded runs and pre-shard report formats.
	Shards      int               `json:"shards,omitempty"`
	NumCPU      int               `json:"num_cpu"`
	GoVersion   string            `json:"go_version"`
	Experiments []benchExperiment `json:"experiments"`
	TotalWallS  float64           `json:"total_wall_seconds"`
	// TotalEstS is the estimation-stage wall time (MINC + LSQ inference)
	// summed over all experiments — the slice of TotalWallS the incremental
	// estimators attack. Omitted in pre-estimation report formats.
	TotalEstS   float64 `json:"total_estimation_seconds,omitempty"`
	TotalEvents uint64  `json:"total_sim_events"`
	AllocBytes  uint64  `json:"total_alloc_bytes"`
	Mallocs     uint64  `json:"mallocs"`
	// PeakRSSKB is the process's peak resident set size (VmHWM) after all
	// experiments finished; 0 where /proc is unavailable.
	PeakRSSKB uint64 `json:"peak_rss_kb,omitempty"`
}

type benchExperiment struct {
	ID    string  `json:"id"`
	Title string  `json:"title"`
	WallS float64 `json:"wall_seconds"`
	// EstS splits the estimation-stage time (MINC + LSQ inference) out of
	// WallS: wall-clock regressions in the estimators stay visible even in
	// experiments the simulation dominates. Omitted (0) for experiments
	// that never run the inference estimators and in older reports.
	EstS      float64 `json:"estimation_seconds,omitempty"`
	Runs      int     `json:"sim_runs"`
	SimEvents uint64  `json:"sim_events"`
	EventsPS  float64 `json:"sim_events_per_second"`
	Rows      int     `json:"rows"`
	// Mallocs is the experiment's own allocation count. Only attributable
	// when experiments run sequentially, so it is recorded at -parallel 1
	// and omitted otherwise (older reports lack it entirely).
	Mallocs uint64 `json:"mallocs,omitempty"`
	// PeakRSSKB is the process peak RSS sampled when this experiment
	// finished. The high-water mark is process-wide and monotone, so the
	// per-experiment numbers attribute memory growth only at -parallel 1.
	PeakRSSKB uint64 `json:"peak_rss_kb,omitempty"`
}

// readPeakRSSKB reads the process's peak resident set size (VmHWM, in KiB)
// from /proc/self/status. Returns 0 where the field is unavailable.
func readPeakRSSKB() uint64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb
	}
	return 0
}

func main() {
	var (
		expFlag     = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		csvFlag     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		jsonFlag    = flag.Bool("json", false, "emit a machine-readable benchmark report (suppresses tables)")
		seedFlag    = flag.Uint64("seed", 7, "base seed for all experiments")
		listFlag    = flag.Bool("list", false, "list experiment ids and exit")
		parallel    = flag.Int("parallel", runtime.NumCPU(), "experiments to run concurrently (1 = sequential)")
		workers     = flag.Int("workers", 0, "scenario-sweep worker pool size (0 = NumCPU)")
		shards      = flag.Int("shards", 1, "shard count for scale-tier experiments (S*); other tiers ignore it")
		compare     = flag.String("compare", "", "previous -json report to diff against; exits nonzero on regression")
		maxWall     = flag.Float64("max-wall-regress", 0.15, "per-experiment wall-clock regression tolerance for -compare")
		maxAlloc    = flag.Float64("max-allocs-regress", 0.10, "per-experiment allocs-per-run regression tolerance for -compare")
		maxEPS      = flag.Float64("max-eventsps-regress", 0.20, "per-experiment events/sec regression tolerance for -compare")
		maxEst      = flag.Float64("max-est-regress", 0.25, "per-experiment estimation-stage seconds regression tolerance for -compare")
		maxRSS      = flag.Float64("max-rss-regress", 0.30, "whole-run peak-RSS regression tolerance for -compare")
		requireAll  = flag.Bool("require-all", false, "fail -compare when any baseline experiment was not rerun")
		pipeline    = flag.Bool("pipeline", false, "overlap each epoch's simulation with the previous epoch's estimation")
		incremental = flag.Bool("incremental", false, "incremental MINC/LSQ re-estimation seeded by dirty-link tracking")
	)
	flag.Parse()

	experiment.SetWorkers(*workers)
	experiment.SetShards(*shards)
	experiment.SetPipelined(*pipeline)
	experiment.SetIncremental(*incremental)

	// Scale tiers (S*) are opt-in: a bare run covers All() — the tables and
	// figures the goldens and the seed-7 CSV pin down — while -exp may name
	// tiers from either registry.
	registry := experiment.All()
	scaleRegistry := experiment.Scale()
	if *listFlag {
		for _, r := range registry {
			fmt.Printf("%-4s %s\n", r.ID, r.Title)
		}
		for _, r := range scaleRegistry {
			fmt.Printf("%-4s %s (scale tier; opt-in via -exp, honours -shards)\n", r.ID, r.Title)
		}
		return
	}

	combined := append(append([]experiment.Runner{}, registry...), scaleRegistry...)
	want := map[string]bool{}
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.ToUpper(strings.TrimSpace(id))
			if !knownID(combined, id) {
				fmt.Fprintf(os.Stderr, "dophy-bench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			want[id] = true
		}
	}

	var selected []experiment.Runner
	for _, r := range combined {
		if len(want) == 0 {
			if knownID(scaleRegistry, r.ID) {
				continue // scale tiers run only when explicitly selected
			}
		} else if !want[r.ID] {
			continue
		}
		selected = append(selected, r)
	}

	var memBefore runtime.MemStats
	if *jsonFlag || *compare != "" {
		runtime.GC()
		runtime.ReadMemStats(&memBefore)
	}
	wallStart := time.Now()

	// Experiments are fully independent and deterministic (each run derives
	// all randomness from its own seed), so they parallelise trivially; each
	// experiment additionally sweeps its own scenario points through the
	// shared experiment.Workers() pool. Results are printed in registry
	// order regardless of completion order.
	expWorkers := *parallel
	if expWorkers < 1 {
		expWorkers = 1
	}
	type outcome struct {
		table     *experiment.Table
		elapsed   time.Duration
		mallocs   uint64
		peakRSSKB uint64
	}
	results := make([]outcome, len(selected))
	sem := make(chan struct{}, expWorkers)
	var wg sync.WaitGroup
	for i, r := range selected {
		wg.Add(1)
		go func(i int, r experiment.Runner) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			// Per-experiment allocation counts are only attributable when
			// experiments run one at a time.
			var before runtime.MemStats
			if expWorkers == 1 {
				runtime.ReadMemStats(&before)
			}
			start := time.Now()
			results[i] = outcome{table: r.Run(*seedFlag), elapsed: time.Since(start)}
			results[i].peakRSSKB = readPeakRSSKB()
			if expWorkers == 1 {
				var after runtime.MemStats
				runtime.ReadMemStats(&after)
				results[i].mallocs = after.Mallocs - before.Mallocs
			}
		}(i, r)
	}
	wg.Wait()
	totalWall := time.Since(wallStart)

	if *jsonFlag || *compare != "" {
		repShards := experiment.Shards()
		if repShards == 1 {
			repShards = 0 // omitempty: unsharded runs match pre-shard reports
		}
		rep := benchReport{
			Seed:       *seedFlag,
			Parallel:   expWorkers,
			Workers:    experiment.Workers(),
			Shards:     repShards,
			NumCPU:     runtime.NumCPU(),
			GoVersion:  runtime.Version(),
			TotalWallS: totalWall.Seconds(),
		}
		for i, res := range results {
			eps := 0.0
			if s := res.elapsed.Seconds(); s > 0 {
				eps = float64(res.table.SimEvents) / s
			}
			rep.Experiments = append(rep.Experiments, benchExperiment{
				ID:        selected[i].ID,
				Title:     res.table.Title,
				WallS:     res.elapsed.Seconds(),
				EstS:      res.table.EstSeconds,
				Runs:      res.table.Runs,
				SimEvents: res.table.SimEvents,
				EventsPS:  eps,
				Rows:      len(res.table.Rows),
				Mallocs:   res.mallocs,
				PeakRSSKB: res.peakRSSKB,
			})
			rep.TotalEvents += res.table.SimEvents
			rep.TotalEstS += res.table.EstSeconds
		}
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		rep.AllocBytes = memAfter.TotalAlloc - memBefore.TotalAlloc
		rep.Mallocs = memAfter.Mallocs - memBefore.Mallocs
		rep.PeakRSSKB = readPeakRSSKB()
		if *jsonFlag {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				fmt.Fprintf(os.Stderr, "dophy-bench: %v\n", err)
				os.Exit(1)
			}
		}
		if *compare != "" {
			old, err := loadReport(*compare)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dophy-bench: -compare: %v\n", err)
				os.Exit(2)
			}
			if !compareReports(os.Stderr, old, &rep, *maxWall, *maxAlloc, *maxEPS, *maxEst, *maxRSS, *requireAll) {
				os.Exit(1)
			}
		}
		return
	}

	for i, res := range results {
		if *csvFlag {
			fmt.Printf("# %s: %s\n%s\n", res.table.ID, res.table.Title, res.table.CSV())
		} else {
			fmt.Println(res.table.Format())
			fmt.Printf("[%s completed in %.1fs]\n\n", selected[i].ID, res.elapsed.Seconds())
		}
	}
}

func loadReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// minCompareWallS filters out timing noise: experiments faster than this in
// the baseline are never failed on wall-clock (a 30ms run jittering to 40ms
// is not a regression worth gating on).
const minCompareWallS = 0.25

// minCompareEstS is the estimation-stage noise floor: the inference stage
// is a fraction of an experiment's wall time, so it gets its own (smaller)
// floor rather than inheriting minCompareWallS.
const minCompareEstS = 0.05

// compareReports diffs the fresh report against a baseline, experiment by
// experiment (matched on ID), and reports whether the run is within the
// given tolerances. Fields the baseline lacks — per-experiment mallocs from
// pre-compare report formats, or experiments that are new — are skipped
// rather than failed, so old BENCH_*.json files stay usable. Baseline
// experiments absent from the fresh run are always listed; with requireAll
// they fail the comparison, so a partial -exp rerun cannot masquerade as a
// full regression gate.
func compareReports(out io.Writer, old, cur *benchReport, maxWall, maxAlloc, maxEPS, maxEst, maxRSS float64, requireAll bool) bool {
	byID := map[string]*benchExperiment{}
	for i := range old.Experiments {
		byID[old.Experiments[i].ID] = &old.Experiments[i]
	}
	ok := true
	fmt.Fprintf(out, "dophy-bench: comparing against baseline (seed %d, %s, parallel %d)\n",
		old.Seed, old.GoVersion, old.Parallel)
	for i := range cur.Experiments {
		ne := &cur.Experiments[i]
		oe := byID[ne.ID]
		if oe == nil {
			fmt.Fprintf(out, "  %-4s new experiment, no baseline — skipped\n", ne.ID)
			continue
		}
		verdict := "ok"
		if oe.WallS >= minCompareWallS {
			if rel := ne.WallS/oe.WallS - 1; rel > maxWall {
				verdict = fmt.Sprintf("WALL REGRESSION (+%.1f%% > %.0f%%)", 100*rel, 100*maxWall)
				ok = false
			}
		}
		// Throughput gates on simulator events per second — the metric the
		// sharded engine exists to raise — under the same noise floor as
		// wall-clock. Both sides must have event metering (older formats and
		// zero-event experiments are skipped).
		if oe.WallS >= minCompareWallS && oe.EventsPS > 0 && ne.EventsPS > 0 {
			if rel := 1 - ne.EventsPS/oe.EventsPS; rel > maxEPS {
				verdict = fmt.Sprintf("EVENTS/SEC REGRESSION (-%.1f%% > %.0f%%)", 100*rel, 100*maxEPS)
				ok = false
			}
		}
		// The estimation stage gets its own gate with its own noise floor:
		// inference is milliseconds inside multi-second experiments, so an
		// estimator regression that matters (the incremental path falling
		// back to full re-solves, say) would vanish inside the wall-clock
		// tolerance. Skipped when either report lacks the field.
		if oe.EstS >= minCompareEstS && ne.EstS > 0 {
			if rel := ne.EstS/oe.EstS - 1; rel > maxEst {
				verdict = fmt.Sprintf("ESTIMATION REGRESSION (+%.1f%% > %.0f%%)", 100*rel, 100*maxEst)
				ok = false
			}
		}
		// Allocs are compared per simulation run so baselines taken with a
		// different -exp subset or run count still line up.
		if oe.Mallocs > 0 && ne.Mallocs > 0 && oe.Runs > 0 && ne.Runs > 0 {
			oa := float64(oe.Mallocs) / float64(oe.Runs)
			na := float64(ne.Mallocs) / float64(ne.Runs)
			if rel := na/oa - 1; rel > maxAlloc {
				verdict = fmt.Sprintf("ALLOC REGRESSION (+%.1f%% > %.0f%%)", 100*rel, 100*maxAlloc)
				ok = false
			}
		}
		wallDelta := 0.0
		if oe.WallS > 0 {
			wallDelta = 100 * (ne.WallS/oe.WallS - 1)
		}
		fmt.Fprintf(out, "  %-4s wall %6.2fs -> %6.2fs (%+6.1f%%)  %s\n",
			ne.ID, oe.WallS, ne.WallS, wallDelta, verdict)
	}
	reran := map[string]bool{}
	for i := range cur.Experiments {
		reran[cur.Experiments[i].ID] = true
	}
	var notRun []string
	for i := range old.Experiments {
		if !reran[old.Experiments[i].ID] {
			notRun = append(notRun, old.Experiments[i].ID)
		}
	}
	if len(notRun) > 0 {
		verdict := "comparison covers the rerun subset only"
		if requireAll {
			verdict = "FAIL (-require-all)"
			ok = false
		}
		fmt.Fprintf(out, "  baseline experiments not run: %s — %s\n",
			strings.Join(notRun, ", "), verdict)
	}
	if cur.Parallel != 1 || old.Parallel != 1 {
		fmt.Fprintf(out, "  note: per-experiment allocs only gate at -parallel 1 on both sides\n")
	}
	// Peak RSS gates the whole run: the high-water mark is process-wide, so
	// per-experiment samples are informational only. Skipped when either
	// report lacks the field (pre-RSS formats, or /proc unavailable).
	if old.PeakRSSKB > 0 && cur.PeakRSSKB > 0 {
		rel := float64(cur.PeakRSSKB)/float64(old.PeakRSSKB) - 1
		verdict := "ok"
		if rel > maxRSS {
			verdict = fmt.Sprintf("RSS REGRESSION (+%.1f%% > %.0f%%)", 100*rel, 100*maxRSS)
			ok = false
		}
		fmt.Fprintf(out, "  peak RSS %d KiB -> %d KiB (%+.1f%%)  %s\n",
			old.PeakRSSKB, cur.PeakRSSKB, 100*rel, verdict)
	}
	if ok {
		fmt.Fprintf(out, "dophy-bench: no regressions beyond tolerances (wall %.0f%%, allocs %.0f%%, events/sec %.0f%%, estimation %.0f%%)\n",
			100*maxWall, 100*maxAlloc, 100*maxEPS, 100*maxEst)
	} else {
		fmt.Fprintf(out, "dophy-bench: REGRESSION detected\n")
	}
	return ok
}

func knownID(rs []experiment.Runner, id string) bool {
	for _, r := range rs {
		if r.ID == id {
			return true
		}
	}
	return false
}
