// dophy-sim runs a single simulated deployment and prints per-epoch
// summaries plus the final per-link estimates against ground truth. It is
// the quickest way to watch Dophy work.
//
// Usage examples:
//
//	dophy-sim                          # 49-node grid, 3 epochs
//	dophy-sim -grid 10 -epochs 5       # 100 nodes
//	dophy-sim -nodes 60 -dynamics drift
//	dophy-sim -churn 0.3 -baselines    # heavy path dynamics, compare schemes
//	dophy-sim -links                   # dump per-link estimates
//	dophy-sim -json -links             # machine-readable epochs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"dophy"
)

func main() {
	var (
		grid      = flag.Int("grid", 7, "grid side (nodes = side^2); 0 to use -nodes")
		nodes     = flag.Int("nodes", 0, "uniform random placement with this many nodes")
		seed      = flag.Uint64("seed", 1, "scenario seed")
		epochs    = flag.Int("epochs", 3, "estimation epochs to run")
		epochLen  = flag.Float64("epoch-seconds", 300, "epoch length in simulated seconds")
		genPeriod = flag.Float64("gen-period", 5, "per-node data generation period (s)")
		maxRetx   = flag.Int("max-retx", 7, "MAC retransmission budget")
		agg       = flag.Int("agg", 3, "symbol aggregation threshold (0 = off)")
		update    = flag.Int("update-every", 1, "model update period in epochs")
		churn     = flag.Float64("churn", 0, "forced parent churn probability per beacon")
		dynamics  = flag.String("dynamics", "static", "link dynamics: static | drift | bursty")
		uniform   = flag.Float64("uniform-loss", 0, "force identical loss on all links (0 = realistic)")
		baselines = flag.Bool("baselines", false, "also run traditional tomography baselines")
		links     = flag.Bool("links", false, "print per-link estimates for the final epoch")
		jsonOut   = flag.Bool("json", false, "emit one JSON object per epoch instead of text")
	)
	flag.Parse()

	opt := dophy.Options{
		Seed:             *seed,
		MaxRetx:          *maxRetx,
		GenPeriodSeconds: *genPeriod,
		EpochSeconds:     *epochLen,
		AggThreshold:     *agg,
		UpdateEvery:      *update,
		ParentChurn:      *churn,
		UniformLoss:      *uniform,
		CompareBaselines: *baselines,
	}
	if *nodes > 0 {
		opt.Nodes = *nodes
	} else {
		opt.GridSide = *grid
	}
	switch *dynamics {
	case "static":
		opt.Dynamics = dophy.DynamicsStatic
	case "drift":
		opt.Dynamics = dophy.DynamicsDrift
	case "bursty":
		opt.Dynamics = dophy.DynamicsBursty
	default:
		fmt.Fprintf(os.Stderr, "dophy-sim: unknown dynamics %q\n", *dynamics)
		os.Exit(2)
	}

	sim, err := dophy.NewSimulation(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dophy-sim:", err)
		os.Exit(1)
	}
	info := sim.Topology()
	if *jsonOut {
		runJSON(sim, *epochs, *links)
		return
	}
	fmt.Printf("topology: %d nodes, %d directed links, avg degree %.1f, avg hops %.1f (max %d)\n\n",
		info.Nodes, info.Links, info.AvgDegree, info.AvgHops, info.MaxHops)

	fmt.Printf("%-6s  %-9s  %-9s  %-9s  %-10s  %-10s\n",
		"epoch", "MAE", "coverage", "bytes/pkt", "delivery", "churn/node")
	var last *dophy.Report
	for e := 0; e < *epochs; e++ {
		rep := sim.RunEpoch()
		last = rep
		fmt.Printf("%-6d  %-9.4f  %-9.2f  %-9.2f  %-10.4f  %-10.2f\n",
			rep.Epoch, rep.MAE, rep.Coverage, rep.BytesPerPacket, rep.DeliveryRatio, rep.ParentChangesPerNode)
		if rep.DecodeErrors > 0 {
			fmt.Fprintf(os.Stderr, "dophy-sim: %d decode errors!\n", rep.DecodeErrors)
		}
		if *baselines {
			for _, name := range []string{"minc", "lsq"} {
				fmt.Printf("        baseline %-5s MAE %.4f\n", name, rep.BaselineMAE[name])
			}
		}
	}

	if *links && last != nil {
		fmt.Println("\nper-link estimates (final epoch):")
		var ls []dophy.Link
		for l := range last.Estimates {
			ls = append(ls, l)
		}
		sort.Slice(ls, func(i, j int) bool {
			if ls[i].From != ls[j].From {
				return ls[i].From < ls[j].From
			}
			return ls[i].To < ls[j].To
		})
		fmt.Printf("%-10s  %-9s  %-9s  %-8s  %s\n", "link", "est-loss", "true", "stderr", "samples")
		for _, l := range ls {
			est := last.Estimates[l]
			truth, ok := last.TrueLoss[l]
			truthStr := "   -"
			if ok {
				truthStr = fmt.Sprintf("%.4f", truth)
			}
			fmt.Printf("%-10s  %-9.4f  %-9s  %-8.4f  %d\n", l, est.Loss, truthStr, est.StdErr, est.Samples)
		}
	}
}

// epochJSON is the stable machine-readable per-epoch shape.
type epochJSON struct {
	Epoch          int                 `json:"epoch"`
	MAE            float64             `json:"mae"`
	Coverage       float64             `json:"coverage"`
	BytesPerPacket float64             `json:"bytes_per_packet"`
	DeliveryRatio  float64             `json:"delivery_ratio"`
	ParentChanges  float64             `json:"parent_changes_per_node"`
	DecodeErrors   int64               `json:"decode_errors"`
	BaselineMAE    map[string]float64  `json:"baseline_mae,omitempty"`
	Links          map[string]linkJSON `json:"links,omitempty"`
}

type linkJSON struct {
	Loss    float64  `json:"loss"`
	StdErr  float64  `json:"stderr"`
	Samples int64    `json:"samples"`
	True    *float64 `json:"true,omitempty"`
}

// runJSON emits one JSON object per epoch on stdout.
func runJSON(sim *dophy.Simulation, epochs int, withLinks bool) {
	enc := json.NewEncoder(os.Stdout)
	for e := 0; e < epochs; e++ {
		rep := sim.RunEpoch()
		mae := rep.MAE
		if math.IsNaN(mae) {
			mae = -1 // JSON has no NaN; -1 marks "nothing scored this epoch"
		}
		out := epochJSON{
			Epoch:          rep.Epoch,
			MAE:            mae,
			Coverage:       rep.Coverage,
			BytesPerPacket: rep.BytesPerPacket,
			DeliveryRatio:  rep.DeliveryRatio,
			ParentChanges:  rep.ParentChangesPerNode,
			DecodeErrors:   rep.DecodeErrors,
		}
		if len(rep.BaselineMAE) > 0 {
			out.BaselineMAE = make(map[string]float64, len(rep.BaselineMAE))
			for k, v := range rep.BaselineMAE {
				if math.IsNaN(v) {
					v = -1
				}
				out.BaselineMAE[k] = v
			}
		}
		if withLinks {
			out.Links = make(map[string]linkJSON, len(rep.Estimates))
			for l, est := range rep.Estimates {
				lj := linkJSON{Loss: est.Loss, StdErr: est.StdErr, Samples: est.Samples}
				if tv, ok := rep.TrueLoss[l]; ok {
					tvCopy := tv
					lj.True = &tvCopy
				}
				out.Links[l.String()] = lj
			}
		}
		if err := enc.Encode(out); err != nil {
			fatalErr(err)
		}
	}
}

func fatalErr(err error) {
	fmt.Fprintln(os.Stderr, "dophy-sim:", err)
	os.Exit(1)
}
