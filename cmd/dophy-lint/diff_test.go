package main

import (
	"bytes"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"dophy/internal/lint"
)

// TestFilterToFiles pins the -diff narrowing contract: a diagnostic
// survives exactly when its file, made root-relative and slash-separated,
// is in the changed set; anything outside the root is dropped.
func TestFilterToFiles(t *testing.T) {
	root := t.TempDir()
	mk := func(rel string, line int) lint.Diagnostic {
		return lint.Diagnostic{
			Pos:  token.Position{Filename: filepath.Join(root, filepath.FromSlash(rel)), Line: line},
			Rule: "readonly",
			Msg:  rel,
		}
	}
	diags := []lint.Diagnostic{
		mk("internal/a/a.go", 1),
		mk("internal/b/b.go", 2),
		mk("internal/a/a.go", 3),
		{Pos: token.Position{Filename: filepath.Join(t.TempDir(), "c.go"), Line: 4}, Rule: "effects", Msg: "outside root"},
	}
	got := filterToFiles(diags, root, map[string]bool{"internal/a/a.go": true})
	if len(got) != 2 {
		t.Fatalf("filterToFiles kept %d diagnostics, want 2: %v", len(got), got)
	}
	for _, d := range got {
		if d.Msg != "internal/a/a.go" {
			t.Errorf("kept diagnostic from %s, want only internal/a/a.go", d.Msg)
		}
	}
}

// TestFilterToFilesEmptySet pins the no-changes case: a clean diff keeps
// nothing, so `-diff` against an identical ref exits 0 even on a tree with
// violations elsewhere.
func TestFilterToFilesEmptySet(t *testing.T) {
	root := t.TempDir()
	diags := []lint.Diagnostic{
		{Pos: token.Position{Filename: filepath.Join(root, "a.go"), Line: 1}, Rule: "readonly"},
	}
	if got := filterToFiles(diags, root, map[string]bool{}); len(got) != 0 {
		t.Fatalf("empty changed set kept %d diagnostics, want 0", len(got))
	}
}

// TestChangedFiles exercises the git plumbing against a scratch
// repository: a committed-then-modified file and an untracked file are
// both in the set; an unchanged file is not.
func TestChangedFiles(t *testing.T) {
	if _, err := exec.LookPath("git"); err != nil {
		t.Skip("git not available")
	}
	root := t.TempDir()
	git := func(args ...string) {
		t.Helper()
		cmd := exec.Command("git", append([]string{
			"-C", root,
			"-c", "user.name=test",
			"-c", "user.email=test@example.invalid",
		}, args...)...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("git %v: %v\n%s", args, err, stderr.String())
		}
	}
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	git("init", "-q")
	write("steady.go", "package a\n")
	write("pkg/edited.go", "package pkg\n")
	git("add", ".")
	git("commit", "-q", "-m", "seed")
	write("pkg/edited.go", "package pkg\n\nconst V = 1\n")
	write("pkg/fresh.go", "package pkg\n\nconst W = 2\n")

	files, err := changedFiles(root, "HEAD")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pkg/edited.go", "pkg/fresh.go"} {
		if !files[want] {
			t.Errorf("changedFiles missing %s; got %v", want, files)
		}
	}
	if files["steady.go"] {
		t.Errorf("changedFiles includes unchanged steady.go: %v", files)
	}

	if _, err := changedFiles(root, "no-such-ref"); err == nil {
		t.Error("changedFiles accepted a bogus ref; want the git error surfaced")
	}
}
