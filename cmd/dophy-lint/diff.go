// -diff support: restrict *reporting* to the files changed relative to a
// git ref while keeping the whole-module analysis (cross-package rules —
// poolescape, the effect propagation, hotpathalloc chains — need every
// package loaded to be sound; only the final report is narrowed).
package main

import (
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"

	"dophy/internal/lint"
)

// changedFiles returns the set of root-relative slash-separated paths that
// differ from ref — tracked changes via git diff plus untracked files (a
// brand-new file has diagnostics worth seeing even before its first add).
func changedFiles(root, ref string) (map[string]bool, error) {
	files := map[string]bool{}
	tracked, err := gitLines(root, "diff", "--name-only", "-z", ref, "--")
	if err != nil {
		return nil, err
	}
	untracked, err := gitLines(root, "ls-files", "--others", "--exclude-standard", "-z")
	if err != nil {
		return nil, err
	}
	for _, f := range tracked {
		files[f] = true
	}
	for _, f := range untracked {
		files[f] = true
	}
	return files, nil
}

// gitLines runs one git subcommand in root and splits its NUL-separated
// output (-z mode: immune to quoting and unusual filenames).
func gitLines(root string, args ...string) ([]string, error) {
	cmd := exec.Command("git", append([]string{"-C", root}, args...)...)
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			return nil, fmt.Errorf("git %s: %s", args[0], strings.TrimSpace(string(ee.Stderr)))
		}
		return nil, fmt.Errorf("git %s: %v", args[0], err)
	}
	var lines []string
	for _, b := range bytes.Split(out, []byte{0}) {
		if len(b) > 0 {
			lines = append(lines, string(b))
		}
	}
	return lines, nil
}

// filterToFiles keeps the diagnostics whose file, made root-relative and
// slash-separated, is in files. Diagnostics outside the root (or with no
// relative form) cannot be in a diff of the root and are dropped. The input
// slice is reused in place.
func filterToFiles(diags []lint.Diagnostic, root string, files map[string]bool) []lint.Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil || strings.HasPrefix(rel, "..") {
			continue
		}
		if files[filepath.ToSlash(rel)] {
			kept = append(kept, d)
		}
	}
	return kept
}
