package main

import (
	"bytes"
	"flag"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"dophy/internal/lint"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata goldens instead of comparing")

// goldenDiags is a fixed slice exercising every jsonDiag field, including
// the empty-message and column-zero edges the encoder must not drop.
func goldenDiags() []lint.Diagnostic {
	return []lint.Diagnostic{
		{
			Pos:  token.Position{Filename: "internal/core/dophy.go", Line: 492, Column: 14},
			Rule: "valrange",
			Msg:  "decay factor passed to Obs.Decay is a boundary input (config/flag) not validated against [0, 1]",
		},
		{
			Pos:  token.Position{Filename: "internal/lint/taint.go", Line: 150, Column: 3},
			Rule: "exhaustive",
			Msg:  "switch over EdgeKind misses EdgeExternal; name every member or waive the default with //dophy:allow exhaustive",
		},
		{
			Pos:  token.Position{Filename: "internal/topo/table.go", Line: 7},
			Rule: "idxdomain",
			Msg:  `message with "quotes" & <angle brackets> survives encoding`,
		},
		{
			Pos:  token.Position{Filename: "internal/sim/shard/shard.go", Line: 118, Column: 9},
			Rule: "ownercross",
			Msg:  "shard-owned field subs must be accessed through a typed element index (topo.ShardID or topo.NodeID) in window code",
		},
		{
			Pos:  token.Position{Filename: "internal/experiment/shardsession.go", Line: 105, Column: 2},
			Rule: "sendown",
			Msg:  "c is used after its ownership was transferred away (//dophy:transfers on line 104): the sender must not touch a sent value",
		},
		{
			Pos:  token.Position{Filename: "internal/sim/shard/shard.go", Line: 203, Column: 1},
			Rule: "barrierorder",
			Msg:  "//dophy:barrier function deliver is reachable from window code: a barrier cannot run inside the window it closes",
		},
		{
			Pos:  token.Position{Filename: "internal/mat/mat.go", Line: 360, Column: 9},
			Rule: "lifecycle",
			Msg:  `s.SolveWarm called in state "new"; the //dophy:states contract of NNLSSolver allows here: Solve`,
		},
		{
			Pos:  token.Position{Filename: "internal/experiment/pipeline.go", Line: 96, Column: 53},
			Rule: "borrowspan",
			Msg:  "loss was borrowed from b.lsqEst's scratch (line 96) but Estimate was called on line 99, invalidating it; read it before the next Estimate or copy it out",
		},
		{
			Pos:  token.Position{Filename: "internal/tomo/lsq/lsq.go", Line: 122, Column: 3},
			Rule: "readonly",
			Msg:  `write to est.colOf[...] mutates parameter "lt" of internal/tomo/lsq.NewEstimator, annotated //dophy:readonly (write chain: internal/tomo/lsq.NewEstimator)`,
		},
		{
			Pos:  token.Position{Filename: "internal/experiment/pipeline.go", Line: 107, Column: 2},
			Rule: "effects",
			Msg:  "write to eo.Schemes[...] mutates c, received from a channel whose element carries //dophy:owner immutable fields; received values are frozen (write chain: internal/experiment.estLoop -> internal/experiment.(*estBank).estimate)",
		},
	}
}

// TestEmitJSONGolden locks the -json output schema byte-for-byte. CI
// tooling parses this array, so any drift (field names, indentation,
// HTML escaping) must be a deliberate, reviewed change: run
// `go test ./cmd/dophy-lint -run Golden -update` and commit the diff.
func TestEmitJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := emitJSON(&buf, goldenDiags()); err != nil {
		t.Fatalf("emitJSON: %v", err)
	}

	golden := filepath.Join("testdata", "json.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create it): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-json output drifted from %s\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

// TestSelectRules pins the -rule flag contract: empty spec means no
// filtering, known names build the filter set, and an unknown name is the
// error that makes main exit 2.
func TestSelectRules(t *testing.T) {
	if f, err := selectRules(""); err != nil || f != nil {
		t.Fatalf("selectRules(\"\") = %v, %v; want nil, nil", f, err)
	}
	f, err := selectRules("lifecycle, borrowspan")
	if err != nil {
		t.Fatalf("selectRules known rules: %v", err)
	}
	if len(f) != 2 || !f["lifecycle"] || !f["borrowspan"] {
		t.Fatalf("selectRules filter = %v, want lifecycle+borrowspan", f)
	}
	if _, err := selectRules("lifecycle,nosuchrule"); err == nil {
		t.Fatal("selectRules accepted unknown rule nosuchrule")
	} else if want := `unknown rule "nosuchrule"`; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("selectRules error %q, want substring %q", err, want)
	}
	if _, err := selectRules(" , ,"); err == nil {
		t.Fatal("selectRules accepted a spec naming no rules")
	}
}

// TestRunExitCodes pins the run() seam's exit contract: 2 for usage and
// load errors (the paths main used to os.Exit from), 1 for violations,
// 0 for inventory modes, which return before linting.
func TestRunExitCodes(t *testing.T) {
	fixture := filepath.Join("..", "..", "internal", "lint", "testdata", "src")
	cases := []struct {
		name      string
		args      []string
		want      int
		errSubstr string
	}{
		{
			name:      "root without go.mod",
			args:      []string{"-root", t.TempDir()},
			want:      2,
			errSubstr: "dophy-lint:",
		},
		{
			name:      "unknown rule",
			args:      []string{"-root", fixture, "-rule", "nosuchrule"},
			want:      2,
			errSubstr: `unknown rule "nosuchrule"`,
		},
		{
			name: "unknown flag",
			args: []string{"-nosuchflag"},
			want: 2,
		},
		{
			name:      "bogus diff ref",
			args:      []string{"-root", t.TempDir(), "-diff", "no-such-ref"},
			want:      2,
			errSubstr: "dophy-lint:",
		},
		{
			name:      "violations in the fixture module",
			args:      []string{"-root", fixture},
			want:      1,
			errSubstr: "violation(s)",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.args, &stdout, &stderr); got != tc.want {
				t.Fatalf("run(%v) = %d, want %d\nstderr: %s", tc.args, got, tc.want, stderr.String())
			}
			if tc.errSubstr != "" && !bytes.Contains(stderr.Bytes(), []byte(tc.errSubstr)) {
				t.Errorf("stderr %q missing %q", stderr.String(), tc.errSubstr)
			}
		})
	}
}

// TestRunEffectsInventory smoke-tests the -effects mode against the
// fixture module: exit 0 (inventory modes do not lint) and one line per
// contract annotation, including the field-level transfers entries.
func TestRunEffectsInventory(t *testing.T) {
	fixture := filepath.Join("..", "..", "internal", "lint", "testdata", "src")
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-root", fixture, "-effects"}, &stdout, &stderr); got != 0 {
		t.Fatalf("run -effects = %d, want 0\nstderr: %s", got, stderr.String())
	}
	for _, want := range []string{"readonly(vals)", "effects(noglobals)", "transfers(field)"} {
		if !bytes.Contains(stdout.Bytes(), []byte(want)) {
			t.Errorf("-effects inventory missing %q:\n%s", want, stdout.String())
		}
	}
}

// TestEmitJSONEmpty pins the no-violations case to a JSON array, not
// null: consumers index into the result without a nil check.
func TestEmitJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := emitJSON(&buf, nil); err != nil {
		t.Fatalf("emitJSON: %v", err)
	}
	if got := buf.String(); got != "[]\n" {
		t.Errorf("empty diagnostics encode as %q, want %q", got, "[]\n")
	}
}
