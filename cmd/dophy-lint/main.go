// Command dophy-lint statically enforces the repo's determinism and
// ownership invariants (see DESIGN.md, "Determinism & invariants").
//
// Usage:
//
//	go run ./cmd/dophy-lint ./...
//
// It loads every package in the module twice — once with the default tag
// set and once with the dophy_invariants tag, so both variants of the
// build-gated files are linted — and exits nonzero if any rule fires.
// Individual sites can be waived with a justified pragma:
//
//	//dophy:allow <rule> -- <why this site is legitimately exempt>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dophy/internal/lint"
)

func main() {
	verbose := flag.Bool("v", false, "also print type-checker errors (analysis is best-effort despite them)")
	root := flag.String("root", "", "module root to lint (default: walk up from cwd to go.mod)")
	flag.Parse()

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dophy-lint:", err)
			os.Exit(2)
		}
	}
	// Non-flag args are accepted for familiarity (./...) but the engine
	// always lints the whole module; anything narrower would miss
	// cross-package rules like poolescape.
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(os.Stderr, "dophy-lint: ignoring %q (whole-module analysis only)\n", arg)
		}
	}

	seen := map[string]bool{}
	var diags []lint.Diagnostic
	for _, tags := range [][]string{nil, {"dophy_invariants"}} {
		mod, err := lint.Load(dir, lint.LoadConfig{Tags: tags})
		if err != nil {
			fmt.Fprintln(os.Stderr, "dophy-lint:", err)
			os.Exit(2)
		}
		if *verbose {
			for _, pkg := range mod.Packages {
				for _, terr := range pkg.TypeErrors {
					fmt.Fprintf(os.Stderr, "dophy-lint: typecheck [%s]: %v\n", strings.Join(tags, ","), terr)
				}
			}
		}
		for _, d := range mod.Run(lint.AllRules()) {
			if key := d.String(); !seen[key] {
				seen[key] = true
				diags = append(diags, d)
			}
		}
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dophy-lint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the enclosing go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
