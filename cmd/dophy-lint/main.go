// Command dophy-lint statically enforces the repo's determinism and
// ownership invariants (see DESIGN.md, "Determinism & invariants" and
// "Static allocation discipline & determinism taint").
//
// Usage:
//
//	go run ./cmd/dophy-lint ./...
//
// It loads every package in the module twice — once with the default tag
// set and once with the dophy_invariants tag, so both variants of the
// build-gated files are linted — and exits nonzero if any rule fires.
// Regular diagnostics are unioned across the passes; stale-waiver
// diagnostics are intersected (a pragma is only stale if it suppresses
// nothing under *every* tag set). Individual sites can be waived with a
// justified pragma:
//
//	//dophy:allow <rule> -- <why this site is legitimately exempt>
//
// Output modes: the default is file:line:col text; -json emits a JSON
// array of diagnostics; -github emits GitHub Actions workflow annotations
// (::error file=...) so violations surface inline on pull requests.
// -hotpaths prints the //dophy:hotpath inventory instead of linting;
// -write-inventory regenerates the committed hotpath-inventory.txt from the
// same data, so CI can fail when the golden drifts from the annotations.
// -effects prints the write-effect contract inventory (//dophy:readonly,
// //dophy:effects, field-level //dophy:transfers) the same way.
// -rule <name,...> restricts reporting to the named rules (the full
// catalogue still runs, so waiver bookkeeping is unchanged; pragma-hygiene
// diagnostics appear only on unfiltered runs). Unknown names exit 2.
// -diff <git-ref> keeps the whole-module analysis (cross-package rules need
// it) but reports only diagnostics in files changed relative to the ref,
// plus untracked files — the pre-push subset of a full run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dophy/internal/lint"
)

// tagSets are the build-tag combinations every pass runs under.
var tagSets = [][]string{nil, {"dophy_invariants"}}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command behind a testable seam: flags in, exit code
// out, all output on the two writers. Exit codes: 0 clean, 1 violations,
// 2 usage or load errors.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dophy-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	verbose := fs.Bool("v", false, "also print type-checker errors (analysis is best-effort despite them)")
	root := fs.String("root", "", "module root to lint (default: walk up from cwd to go.mod)")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	github := fs.Bool("github", false, "emit GitHub Actions ::error annotations alongside the text output")
	hotpaths := fs.Bool("hotpaths", false, "print the //dophy:hotpath function inventory and exit")
	effects := fs.Bool("effects", false, "print the //dophy:readonly///dophy:effects contract inventory and exit")
	writeInventory := fs.Bool("write-inventory", false, "rewrite hotpath-inventory.txt at the module root and exit")
	ruleSpec := fs.String("rule", "", "comma-separated rule names to run (default: all rules)")
	diffRef := fs.String("diff", "", "report only diagnostics in files changed relative to this git ref (plus untracked files)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	ruleFilter, err := selectRules(*ruleSpec)
	if err != nil {
		fmt.Fprintln(stderr, "dophy-lint:", err)
		return 2
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(stderr, "dophy-lint:", err)
			return 2
		}
	}
	// Non-flag args are accepted for familiarity (./...) but the engine
	// always lints the whole module; anything narrower would miss
	// cross-package rules like poolescape.
	for _, arg := range fs.Args() {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(stderr, "dophy-lint: ignoring %q (whole-module analysis only)\n", arg)
		}
	}

	var changed map[string]bool
	if *diffRef != "" {
		changed, err = changedFiles(dir, *diffRef)
		if err != nil {
			fmt.Fprintln(stderr, "dophy-lint:", err)
			return 2
		}
	}

	if *hotpaths || *effects {
		inv := lint.Inventory
		if *effects {
			inv = lint.EffectsInventory
		}
		lines, err := inventoryLines(dir, inv)
		if err != nil {
			fmt.Fprintln(stderr, "dophy-lint:", err)
			return 2
		}
		for _, line := range lines {
			fmt.Fprintln(stdout, line)
		}
		return 0
	}
	if *writeInventory {
		path := filepath.Join(dir, "hotpath-inventory.txt")
		lines, err := inventoryLines(dir, lint.Inventory)
		if err != nil {
			fmt.Fprintln(stderr, "dophy-lint:", err)
			return 2
		}
		var buf strings.Builder
		for _, line := range lines {
			buf.WriteString(line)
			buf.WriteByte('\n')
		}
		if err := os.WriteFile(path, []byte(buf.String()), 0o644); err != nil {
			fmt.Fprintln(stderr, "dophy-lint:", err)
			return 2
		}
		return 0
	}

	seen := map[string]bool{}
	var diags []lint.Diagnostic
	// stale waivers must be unused under every tag set before they are
	// reported: a pragma can legitimately suppress a diagnostic that only
	// exists in the dophy_invariants build (or only in the default one).
	// staleCandidates starts as the first pass's stale list and is filtered
	// down to the intersection by each later pass.
	var staleCandidates []lint.Diagnostic
	for pass, tags := range tagSets {
		mod, err := lint.Load(dir, lint.LoadConfig{Tags: tags})
		if err != nil {
			fmt.Fprintln(stderr, "dophy-lint:", err)
			return 2
		}
		if *verbose {
			for _, pkg := range mod.Packages {
				for _, terr := range pkg.TypeErrors {
					fmt.Fprintf(stderr, "dophy-lint: typecheck [%s]: %v\n", strings.Join(tags, ","), terr)
				}
			}
		}
		regular, stale := mod.RunDetail(lint.AllRules())
		for _, d := range regular {
			if key := d.String(); !seen[key] {
				seen[key] = true
				diags = append(diags, d)
			}
		}
		if pass == 0 {
			staleCandidates = stale
			continue
		}
		inPass := map[string]bool{}
		for _, d := range stale {
			inPass[d.String()] = true
		}
		kept := staleCandidates[:0]
		for _, d := range staleCandidates {
			if inPass[d.String()] {
				kept = append(kept, d)
			}
		}
		staleCandidates = kept
	}
	for _, d := range staleCandidates {
		if key := d.String(); !seen[key] {
			seen[key] = true
			diags = append(diags, d)
		}
	}
	if ruleFilter != nil {
		kept := diags[:0]
		for _, d := range diags {
			if ruleFilter[d.Rule] {
				kept = append(kept, d)
			}
		}
		diags = kept
	}
	if changed != nil {
		diags = filterToFiles(diags, dir, changed)
	}
	lint.SortDiagnostics(diags)

	switch {
	case *jsonOut:
		if err := emitJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "dophy-lint:", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if *github {
		for _, d := range diags {
			emitGitHub(stdout, dir, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "dophy-lint: %d violation(s)\n", len(diags))
		return 1
	}
	return 0
}

// selectRules parses the -rule flag: a comma-separated list of rule names
// to report. An empty spec means no filtering (nil map). The engine always
// runs the full catalogue so waiver bookkeeping stays consistent; the
// filter only restricts which diagnostics are reported, and pragma-hygiene
// diagnostics (malformed or stale waivers) appear only on unfiltered runs.
func selectRules(spec string) (map[string]bool, error) {
	if spec == "" {
		return nil, nil
	}
	known := map[string]bool{}
	for _, r := range lint.AllRules() {
		known[r.Name()] = true
	}
	filter := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !known[name] {
			names := make([]string, 0, len(known))
			for n := range known {
				names = append(names, n)
			}
			sort.Strings(names)
			return nil, fmt.Errorf("unknown rule %q; known rules: %s", name, strings.Join(names, ", "))
		}
		filter[name] = true
	}
	if len(filter) == 0 {
		return nil, fmt.Errorf("-rule %q names no rules", spec)
	}
	return filter, nil
}

// jsonDiag is the stable JSON shape of one diagnostic.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// emitJSON writes the diagnostics as an indented JSON array. The shape is
// locked by the golden in testdata/json.golden: CI consumers parse it, so
// field renames are breaking changes.
func emitJSON(w io.Writer, diags []lint.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Rule:    d.Rule,
			Message: d.Msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// emitGitHub prints one GitHub Actions workflow annotation. File paths are
// made repo-relative so the annotation attaches to the diff view.
func emitGitHub(w io.Writer, root string, d lint.Diagnostic) {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	// Messages must have %, CR and LF escaped per the workflow-command spec.
	msg := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A").Replace(
		fmt.Sprintf("%s: %s", d.Rule, d.Msg))
	fmt.Fprintf(w, "::error file=%s,line=%d,col=%d::%s\n", file, d.Pos.Line, d.Pos.Column, msg)
}

// inventoryLines returns the union of an annotation inventory over every
// tag set, one entry per line, sorted. With lint.Inventory it is the source
// of the committed hotpath-inventory.txt golden (-hotpaths prints it,
// -write-inventory rewrites the file); with lint.EffectsInventory it backs
// -effects.
func inventoryLines(dir string, inv func(*lint.Module) []string) ([]string, error) {
	seen := map[string]bool{}
	var all []string
	for _, tags := range tagSets {
		mod, err := lint.Load(dir, lint.LoadConfig{Tags: tags})
		if err != nil {
			return nil, err
		}
		for _, line := range inv(mod) {
			if !seen[line] {
				seen[line] = true
				all = append(all, line)
			}
		}
	}
	// Each inventory is sorted per pass; the union of two sorted lists needs
	// one more sort to interleave tag-gated entries correctly.
	sort.Strings(all)
	return all, nil
}

// findModuleRoot walks up from the working directory to the enclosing go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
