// dophy-trace exports a simulation run's packet journeys as JSON lines, or
// analyses a previously exported trace: it replays the journeys through the
// Dophy sink engine and prints per-link estimates without re-simulating.
//
// Usage:
//
//	dophy-trace -export trace.jsonl -grid 7 -seconds 600   # simulate & dump
//	dophy-trace -export - | head                           # dump to stdout
//	dophy-trace -analyze trace.jsonl -grid 7               # replay & estimate
//
// The -grid/-seed options of -analyze must match the exporting run: the
// decoder needs the topology's neighbour tables.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"dophy/internal/collect"
	"dophy/internal/core"
	"dophy/internal/experiment"
	"dophy/internal/journal"
	"dophy/internal/rng"
	"dophy/internal/sim"
	"dophy/internal/topo"
)

func main() {
	var (
		export  = flag.String("export", "", "simulate and write journeys to this file ('-' = stdout)")
		analyze = flag.String("analyze", "", "replay journeys from this file through the Dophy sink")
		grid    = flag.Int("grid", 7, "grid side of the (shared) topology")
		seed    = flag.Uint64("seed", 1, "scenario / topology seed")
		seconds = flag.Float64("seconds", 600, "simulated seconds to export")
	)
	flag.Parse()

	switch {
	case *export != "" && *analyze != "":
		fatal("use either -export or -analyze, not both")
	case *export != "":
		if err := doExport(*export, *grid, *seed, *seconds); err != nil {
			fatal(err)
		}
	case *analyze != "":
		if err := doAnalyze(*analyze, *grid, *seed); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, "dophy-trace:", v)
	os.Exit(1)
}

// buildTopo reproduces the topology an exporting run used, so an analyzing
// run decodes against identical neighbour tables.
func buildTopo(grid int, seed uint64) *topo.Topology {
	sc := experiment.DefaultScenario()
	sc.Seed = seed
	sc.Topo = experiment.GridSpec(grid)
	return sc.Topo.Build(rng.New(seed).Split())
}

func doExport(path string, grid int, seed uint64, seconds float64) error {
	var out io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	w := journal.NewWriter(out)

	sc := experiment.DefaultScenario()
	sc.Seed = seed
	sc.Topo = experiment.GridSpec(grid)
	sc.EpochLen = sim.Time(seconds)
	sc.Epochs = 1
	sess := experiment.NewSession(sc)
	var writeErr error
	sess.SubscribeJourneys(func(j *collect.PacketJourney) {
		if writeErr == nil {
			writeErr = w.Write(j)
		}
	})
	sess.RunEpoch()
	if writeErr != nil {
		return writeErr
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dophy-trace: exported %d journeys\n", w.Count())
	return nil
}

func doAnalyze(path string, grid int, seed uint64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	tp := buildTopo(grid, seed)
	d := core.New(tp, core.DefaultConfig())
	r := journal.NewReader(f)
	var journeys, delivered int64
	for {
		j, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		journeys++
		if j.Delivered {
			delivered++
		}
		d.OnJourney(j)
	}
	rep := d.EndEpoch()
	fmt.Printf("replayed %d journeys (%d delivered); decode errors: %d\n",
		journeys, delivered, rep.DecodeErrors)
	fmt.Printf("annotation: %.2f bytes/packet\n\n", rep.Overhead.BytesPerPacket())
	links := rep.SortedLinks()
	fmt.Printf("%-10s  %-9s  %-8s  %s\n", "link", "est-loss", "stderr", "samples")
	for _, l := range links {
		est, _ := rep.At(l)
		fmt.Printf("%-10s  %-9.4f  %-8.4f  %d\n", l, est.Loss, est.StdErr, est.Samples)
	}
	lossOf := func(l topo.Link) float64 {
		est, _ := rep.At(l)
		return est.Loss
	}
	sort.Slice(links, func(i, j int) bool { return lossOf(links[i]) > lossOf(links[j]) })
	if len(links) > 0 {
		worst := links[0]
		fmt.Printf("\nworst link: %s at %.3f loss\n", worst, lossOf(worst))
	}
	return nil
}
