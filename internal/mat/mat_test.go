package mat

import (
	"math"
	"testing"
	"testing/quick"

	"dophy/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMulVec(t *testing.T) {
	a := NewDense(2, 3)
	// [1 2 3; 4 5 6]
	vals := [][]float64{{1, 2, 3}, {4, 5, 6}}
	for i := range vals {
		for j := range vals[i] {
			a.Set(i, j, vals[i][j])
		}
	}
	got := a.MulVec([]float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v", got)
	}
	gotT := a.TMulVec([]float64{1, 1})
	want := []float64{5, 7, 9}
	for i := range want {
		if gotT[i] != want[i] {
			t.Fatalf("TMulVec = %v", gotT)
		}
	}
}

func TestGram(t *testing.T) {
	a := NewDense(3, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 2)
	a.Set(2, 0, 3)
	a.Set(2, 1, 1)
	g := a.Gram()
	// A^T A = [[10, 3], [3, 5]]
	want := [][]float64{{10, 3}, {3, 5}}
	for i := range want {
		for j := range want[i] {
			if g.At(i, j) != want[i][j] {
				t.Fatalf("Gram = [[%v %v][%v %v]]", g.At(0, 0), g.At(0, 1), g.At(1, 0), g.At(1, 1))
			}
		}
	}
}

func TestSolveSPDKnown(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := SolveSPD(a, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Verify A x = b.
	b := a.MulVec(x)
	if !almostEq(b[0], 1, 1e-12) || !almostEq(b[1], 2, 1e-12) {
		t.Fatalf("residual: Ax = %v", b)
	}
}

func TestSolveSPDRejectsIndefinite(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 1) // eigenvalues 3, -1
	if _, err := SolveSPD(a, []float64{1, 1}); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
}

func TestRidgeLeastSquaresRecovers(t *testing.T) {
	// Overdetermined consistent system.
	r := rng.New(1)
	const rows, cols = 40, 5
	a := NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			a.Set(i, j, r.Normal(0, 1))
		}
	}
	truth := []float64{1, -2, 3, 0.5, -0.25}
	b := a.MulVec(truth)
	x, err := RidgeLeastSquares(a, b, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if !almostEq(x[i], truth[i], 1e-5) {
			t.Fatalf("x = %v, want %v", x, truth)
		}
	}
}

func TestRidgeRequiresPositive(t *testing.T) {
	a := NewDense(1, 1)
	if _, err := RidgeLeastSquares(a, []float64{1}, 0); err == nil {
		t.Fatal("zero ridge accepted")
	}
}

func TestRidgeHandlesRankDeficient(t *testing.T) {
	// Two identical columns: classic rank deficiency.
	a := NewDense(3, 2)
	for i := 0; i < 3; i++ {
		a.Set(i, 0, float64(i+1))
		a.Set(i, 1, float64(i+1))
	}
	b := []float64{2, 4, 6}
	x, err := RidgeLeastSquares(a, b, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Ridge splits the weight evenly: x0 + x1 ~= 2... actually columns sum,
	// so x0 + x1 ~ 1 each scaled: verify the fit instead.
	fit := a.MulVec(x)
	for i := range b {
		if !almostEq(fit[i], b[i], 1e-3) {
			t.Fatalf("fit = %v, want %v", fit, b)
		}
	}
}

func TestNNLSNonNegative(t *testing.T) {
	r := rng.New(2)
	const rows, cols = 30, 6
	a := NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			a.Set(i, j, math.Abs(r.Normal(0, 1)))
		}
	}
	truth := []float64{0.5, 0, 1.5, 0, 0.1, 2}
	b := a.MulVec(truth)
	x := NNLS(a, b, 5000, 1e-12)
	for i, v := range x {
		if v < 0 {
			t.Fatalf("NNLS produced negative x[%d] = %v", i, v)
		}
		if !almostEq(v, truth[i], 0.02) {
			t.Fatalf("x = %v, want %v", x, truth)
		}
	}
}

func TestNNLSClampsInfeasible(t *testing.T) {
	// b pulls x negative; NNLS must return 0 (the constrained optimum).
	a := NewDense(2, 1)
	a.Set(0, 0, 1)
	a.Set(1, 0, 1)
	x := NNLS(a, []float64{-3, -5}, 1000, 1e-12)
	if x[0] != 0 {
		t.Fatalf("x = %v, want [0]", x)
	}
}

func TestNNLSZeroMatrix(t *testing.T) {
	a := NewDense(2, 2)
	x := NNLS(a, []float64{1, 2}, 100, 1e-12)
	if x[0] != 0 || x[1] != 0 {
		t.Fatalf("zero matrix NNLS = %v", x)
	}
}

func TestDotNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2 wrong")
	}
}

func TestDimensionPanics(t *testing.T) {
	a := NewDense(2, 3)
	for name, fn := range map[string]func(){
		"mulvec":  func() { a.MulVec([]float64{1}) },
		"tmulvec": func() { a.TMulVec([]float64{1}) },
		"dot":     func() { Dot([]float64{1}, []float64{1, 2}) },
		"negdim":  func() { NewDense(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: SolveSPD residual is tiny for random SPD systems.
func TestQuickSPDResidual(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(8) + 1
		// SPD via B^T B + I.
		b := NewDense(n+2, n)
		for i := 0; i < n+2; i++ {
			for j := 0; j < n; j++ {
				b.Set(i, j, r.Normal(0, 1))
			}
		}
		a := b.Gram()
		for i := 0; i < n; i++ {
			a.Add(i, i, 1)
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = r.Normal(0, 2)
		}
		x, err := SolveSPD(a, rhs)
		if err != nil {
			return false
		}
		res := a.MulVec(x)
		for i := range rhs {
			if !almostEq(res[i], rhs[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSolveSPD50(b *testing.B) {
	r := rng.New(1)
	const n = 50
	base := NewDense(n+5, n)
	for i := 0; i < n+5; i++ {
		for j := 0; j < n; j++ {
			base.Set(i, j, r.Normal(0, 1))
		}
	}
	a := base.Gram()
	for i := 0; i < n; i++ {
		a.Add(i, i, 1)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveSPD(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

// randIncidence fills an rows x cols 0/1 matrix with density p.
func randIncidence(r *rng.Source, rows, cols int, p float64) *Dense {
	m := NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if r.Bool(p) {
				m.Set(i, j, 1)
			}
		}
	}
	return m
}

func TestGramUpdateRowsMatchesRebuild(t *testing.T) {
	r := rng.New(7)
	const rows, cols = 30, 12
	old := randIncidence(r, rows, cols, 0.3)
	cur := NewDense(rows, cols)
	copy(cur.data, old.data)

	// Mutate 4 rows.
	changed := []int{2, 7, 7, 19, 28}
	sub := NewDense(0, cols)
	add := NewDense(0, cols)
	seen := map[int]bool{}
	for _, i := range changed {
		if seen[i] {
			continue
		}
		seen[i] = true
		sub.Rows++
		sub.data = append(sub.data, old.data[i*cols:(i+1)*cols]...)
		for j := 0; j < cols; j++ {
			v := 0.0
			if r.Bool(0.3) {
				v = 1
			}
			cur.Set(i, j, v)
		}
		add.Rows++
		add.data = append(add.data, cur.data[i*cols:(i+1)*cols]...)
	}

	var g Dense
	old.GramInto(&g)
	g.GramUpdateRows(sub, add)

	var want Dense
	cur.GramInto(&want)
	for i := range want.data {
		if g.data[i] != want.data[i] {
			t.Fatalf("gram[%d] = %v, want %v (must be bitwise for 0/1 rows)", i, g.data[i], want.data[i])
		}
	}
}

func TestGramUpdateRowsEmptyIsNoop(t *testing.T) {
	r := rng.New(8)
	a := randIncidence(r, 10, 6, 0.4)
	var g, want Dense
	a.GramInto(&g)
	a.GramInto(&want)
	g.GramUpdateRows(NewDense(0, 6), NewDense(0, 6))
	for i := range want.data {
		if g.data[i] != want.data[i] {
			t.Fatal("empty update changed the Gram matrix")
		}
	}
}

func TestSolveWarmColdMatchesSolve(t *testing.T) {
	r := rng.New(9)
	a := randIncidence(r, 40, 15, 0.25)
	b := make([]float64, 40)
	for i := range b {
		b[i] = r.Range(0, 2)
	}
	var s1, s2 NNLSSolver
	x1 := s1.Solve(a, b, 500, 1e-12)

	var g Dense
	a.GramInto(&g)
	atb := make([]float64, 15)
	a.TMulVecTo(atb, b)
	x2 := s2.SolveWarm(&g, atb, nil, 500, 1e-12)
	for j := range x1 {
		if x1[j] != x2[j] {
			t.Fatalf("x[%d]: Solve %v vs cold SolveWarm %v (must be bitwise)", j, x1[j], x2[j])
		}
	}
}

func TestSolveWarmFromSeedConverges(t *testing.T) {
	r := rng.New(10)
	a := randIncidence(r, 50, 12, 0.3)
	b := make([]float64, 50)
	for i := range b {
		b[i] = r.Range(0.1, 1)
	}
	var cold NNLSSolver
	want := append([]float64(nil), cold.Solve(a, b, 20000, 1e-14)...)

	// Seed with a perturbed copy of the solution: the warm solve must come
	// back to the same optimum.
	seed := make([]float64, len(want))
	for j := range seed {
		seed[j] = want[j] + r.Range(0, 0.05)
	}
	var g Dense
	a.GramInto(&g)
	atb := make([]float64, a.Cols)
	a.TMulVecTo(atb, b)
	var warm NNLSSolver
	got := warm.SolveWarm(&g, atb, seed, 20000, 1e-14)
	for j := range want {
		if !almostEq(got[j], want[j], 1e-6) {
			t.Fatalf("x[%d]: warm %v vs cold %v", j, got[j], want[j])
		}
	}
}

func TestSolveWarmZeroGramKeepsSeed(t *testing.T) {
	var s NNLSSolver
	g := NewDense(3, 3)
	got := s.SolveWarm(g, []float64{0, 0, 0}, []float64{1, 2, 3}, 10, 1e-9)
	for j, v := range []float64{1, 2, 3} {
		if got[j] != v {
			t.Fatalf("zero-Gram warm solve moved the seed: %v", got)
		}
	}
}

// FuzzGramUpdateRows differentially checks rank-k Gram updates against a
// full rebuild on 0/1 incidence matrices, where both must agree bitwise.
func FuzzGramUpdateRows(f *testing.F) {
	f.Add(uint64(1), uint8(10), uint8(5), uint8(2))
	f.Add(uint64(42), uint8(1), uint8(1), uint8(1))
	f.Add(uint64(7), uint8(30), uint8(9), uint8(30))
	f.Fuzz(func(t *testing.T, seed uint64, nrows, ncols, nchanged uint8) {
		rows := int(nrows)%32 + 1
		cols := int(ncols)%16 + 1
		k := int(nchanged) % (rows + 1)
		r := rng.New(seed)
		old := randIncidence(r, rows, cols, 0.35)
		cur := NewDense(rows, cols)
		copy(cur.data, old.data)
		sub := NewDense(0, cols)
		add := NewDense(0, cols)
		for _, i := range r.Perm(rows)[:k] {
			sub.Rows++
			sub.data = append(sub.data, old.data[i*cols:(i+1)*cols]...)
			for j := 0; j < cols; j++ {
				v := 0.0
				if r.Bool(0.35) {
					v = 1
				}
				cur.Set(i, j, v)
			}
			add.Rows++
			add.data = append(add.data, cur.data[i*cols:(i+1)*cols]...)
		}
		var g, want Dense
		old.GramInto(&g)
		g.GramUpdateRows(sub, add)
		cur.GramInto(&want)
		for i := range want.data {
			if g.data[i] != want.data[i] {
				t.Fatalf("gram[%d] = %v, want %v (seed=%d rows=%d cols=%d k=%d)", i, g.data[i], want.data[i], seed, rows, cols, k)
			}
		}
	})
}
