// Package mat is a small dense linear-algebra kit: exactly the operations
// the least-squares tomography baseline needs (normal equations with ridge
// regularisation, Cholesky solve, and projected-gradient non-negative least
// squares), implemented from scratch on float64 slices.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	data       []float64
}

// NewDense allocates a zero matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic("mat: negative dimensions")
	}
	return &Dense{Rows: rows, Cols: cols, data: make([]float64, rows*cols)}
}

// Reshape reconfigures m to rows x cols with every element zero, reusing
// the backing slice when it has capacity — the allocation-free counterpart
// of NewDense for solver scratch that is resized every epoch.
func (m *Dense) Reshape(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic("mat: negative dimensions")
	}
	n := rows * cols
	if cap(m.data) < n {
		//dophy:allow hotpathalloc -- scratch grows to the problem's high-water mark, then is reused
		m.data = make([]float64, n)
	} else {
		m.data = m.data[:n]
		clear(m.data)
	}
	m.Rows, m.Cols = rows, cols
}

// growFloats returns s with length n and every element zero, reusing the
// backing array when it is large enough.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		//dophy:allow hotpathalloc -- scratch grows to the problem's high-water mark, then is reused
		return make([]float64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.Cols+j] = v }

// Add increments element (i, j).
func (m *Dense) Add(i, j int, v float64) { m.data[i*m.Cols+j] += v }

// MulVec returns A*x.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %d vs %d", len(x), m.Cols))
	}
	out := make([]float64, m.Rows)
	m.MulVecTo(out, x)
	return out
}

// MulVecTo computes A*x into dst, which must have length Rows. It lets
// iterative solvers reuse one gradient buffer instead of allocating per
// step.
func (m *Dense) MulVecTo(dst, x []float64) {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("mat: MulVecTo dimension mismatch %d vs %d", len(x), m.Cols))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("mat: MulVecTo dst length %d, want %d", len(dst), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, a := range row {
			s += a * x[j]
		}
		dst[i] = s
	}
}

// TMulVec returns A^T * y.
func (m *Dense) TMulVec(y []float64) []float64 {
	out := make([]float64, m.Cols)
	m.TMulVecTo(out, y)
	return out
}

// TMulVecTo computes A^T * y into dst, which must have length Cols and be
// zeroed by the caller — the allocation-free variant of TMulVec.
func (m *Dense) TMulVecTo(dst, y []float64) {
	if len(y) != m.Rows {
		panic(fmt.Sprintf("mat: TMulVecTo dimension mismatch %d vs %d", len(y), m.Rows))
	}
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("mat: TMulVecTo dst length %d, want %d", len(dst), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.data[i*m.Cols : (i+1)*m.Cols]
		yi := y[i]
		if yi == 0 {
			continue
		}
		for j, a := range row {
			dst[j] += a * yi
		}
	}
}

// Gram returns A^T A (Cols x Cols, symmetric positive semidefinite).
func (m *Dense) Gram() *Dense {
	g := NewDense(m.Cols, m.Cols)
	m.gramInto(g)
	return g
}

// GramInto computes A^T A into g, reshaping it to Cols x Cols and reusing
// its backing storage.
func (m *Dense) GramInto(g *Dense) {
	g.Reshape(m.Cols, m.Cols)
	m.gramInto(g)
}

func (m *Dense) gramInto(g *Dense) {
	for i := 0; i < m.Rows; i++ {
		row := m.data[i*m.Cols : (i+1)*m.Cols]
		for a := 0; a < m.Cols; a++ {
			ra := row[a]
			if ra == 0 {
				continue
			}
			for b := a; b < m.Cols; b++ {
				g.data[a*m.Cols+b] += ra * row[b]
			}
		}
	}
	// Mirror the upper triangle.
	for a := 0; a < m.Cols; a++ {
		for b := a + 1; b < m.Cols; b++ {
			g.data[b*m.Cols+a] = g.data[a*m.Cols+b]
		}
	}
}

// GramUpdateRows applies a rank-k update to g = A^T A in place for a
// change to k rows of A: every row of sub has its outer-product
// contribution subtracted (the rows' old contents) and every row of add
// has its contribution added (their new contents). sub and add must have
// g.Cols columns; either may have zero rows. For the 0/1 incidence
// matrices tomography builds, every Gram entry is an exact small integer,
// so the updated Gram is bitwise-identical to one rebuilt from scratch.
//
//dophy:hotpath
func (g *Dense) GramUpdateRows(sub, add *Dense) {
	if g.Rows != g.Cols {
		panic(fmt.Sprintf("mat: GramUpdateRows on non-square %dx%d", g.Rows, g.Cols))
	}
	if sub.Cols != g.Cols || add.Cols != g.Cols {
		panic(fmt.Sprintf("mat: GramUpdateRows column mismatch %d/%d vs %d", sub.Cols, add.Cols, g.Cols))
	}
	g.gramRankUpdate(sub, -1)
	g.gramRankUpdate(add, +1)
	// Mirror the upper triangle, matching gramInto's final layout pass.
	for a := 0; a < g.Cols; a++ {
		for b := a + 1; b < g.Cols; b++ {
			g.data[b*g.Cols+a] = g.data[a*g.Cols+b]
		}
	}
}

// gramRankUpdate accumulates sign * (rows^T rows) into g's upper triangle,
// mirroring gramInto's traversal so skip-zero behaviour matches.
func (g *Dense) gramRankUpdate(rows *Dense, sign float64) {
	n := g.Cols
	for i := 0; i < rows.Rows; i++ {
		row := rows.data[i*n : (i+1)*n]
		for a := 0; a < n; a++ {
			ra := row[a]
			if ra == 0 {
				continue
			}
			for b := a; b < n; b++ {
				g.data[a*n+b] += sign * (ra * row[b])
			}
		}
	}
}

// ErrNotSPD reports a Cholesky failure (matrix not positive definite).
var ErrNotSPD = errors.New("mat: matrix not symmetric positive definite")

// SPDSolver solves symmetric positive-definite systems repeatedly, reusing
// its factorisation scratch across Solve calls — the allocation-free
// counterpart of SolveSPD for per-epoch callers. The zero value is ready
// to use.
type SPDSolver struct {
	l, y, x []float64
}

// Solve solves A x = b by Cholesky decomposition without modifying A. The
// returned slice aliases the solver's scratch and is valid until the next
// Solve call. The arithmetic matches SolveSPD exactly.
//
//dophy:returns borrowed(recv) -- the result aliases s.x until the next Solve
//dophy:invalidates
//dophy:hotpath
func (s *SPDSolver) Solve(a *Dense, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		panic("mat: SPDSolver dimension mismatch")
	}
	// L lower-triangular with A = L L^T.
	s.l = growFloats(s.l, n*n)
	l := s.l
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotSPD
				}
				l[i*n+i] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	// Forward solve L y = b.
	s.y = growFloats(s.y, n)
	y := s.y
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i*n+k] * y[k]
		}
		y[i] = sum / l[i*n+i]
	}
	// Back solve L^T x = y.
	s.x = growFloats(s.x, n)
	x := s.x
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k*n+i] * x[k]
		}
		x[i] = sum / l[i*n+i]
	}
	return x, nil
}

// SolveSPD solves A x = b for symmetric positive-definite A by Cholesky
// decomposition. A is not modified.
func SolveSPD(a *Dense, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		panic("mat: SolveSPD dimension mismatch")
	}
	// L lower-triangular with A = L L^T.
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotSPD
				}
				l[i*n+i] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	// Forward solve L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i*n+k] * y[k]
		}
		y[i] = sum / l[i*n+i]
	}
	// Back solve L^T x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k*n+i] * x[k]
		}
		x[i] = sum / l[i*n+i]
	}
	return x, nil
}

// RidgeLeastSquares solves min ||A x - b||^2 + ridge ||x||^2 via the normal
// equations. ridge > 0 guarantees solvability even for rank-deficient A.
func RidgeLeastSquares(a *Dense, b []float64, ridge float64) ([]float64, error) {
	if ridge <= 0 {
		return nil, errors.New("mat: ridge must be positive")
	}
	g := a.Gram()
	for i := 0; i < g.Rows; i++ {
		g.Add(i, i, ridge)
	}
	return SolveSPD(g, a.TMulVec(b))
}

// NNLS solves min ||A x - b||^2 subject to x >= 0 by projected gradient
// descent with a step from the Gram matrix's row-sum bound. It converges
// linearly and is robust on the small ill-conditioned systems tomography
// produces. iters bounds the work; tol stops early on stagnation. The
// caller owns the returned slice; per-epoch callers should hold an
// NNLSSolver instead and reuse its scratch.
func NNLS(a *Dense, b []float64, iters int, tol float64) []float64 {
	var s NNLSSolver
	//dophy:allow borrowspan -- the solver is function-local; its scratch dies with it, so the caller owns the slice
	return s.Solve(a, b, iters, tol)
}

// NNLSSolver runs NNLS repeatedly over same-shaped or differently-shaped
// systems, reusing its Gram matrix and vector scratch across Solve calls.
// The zero value is ready to use; a warm start is only meaningful once a
// full solve has populated the carried active set.
//
//dophy:states new: Solve -> solved; solved: Solve|SolveWarm -> solved
type NNLSSolver struct {
	g    Dense
	x    []float64
	atb  []float64
	grad []float64

	// Warm-start scratch: the active set carried across epochs and the
	// Cholesky workspace for the Newton correction on its complement.
	free []int
	gff  Dense
	bf   []float64
	spd  SPDSolver
}

// Solve is NNLS with reusable scratch. The returned slice aliases the
// solver's scratch and is valid until the next Solve call.
//
//dophy:returns borrowed(recv) -- the result aliases s.x until the next solve
//dophy:invalidates
func (s *NNLSSolver) Solve(a *Dense, b []float64, iters int, tol float64) []float64 {
	a.GramInto(&s.g)
	s.atb = growFloats(s.atb, a.Cols)
	a.TMulVecTo(s.atb, b)
	return s.SolveWarm(&s.g, s.atb, nil, iters, tol)
}

// SolveWarm runs the projected-gradient NNLS iteration over a
// caller-assembled system: g must be A^T A (square, Cols x Cols) and atb
// must be A^T b. A non-nil x0 seeds the iteration — the warm start an
// incremental caller uses to resume from the previous epoch's solution.
// The seed's zero pattern is treated as the carried-over active set: a
// Newton correction solves the system exactly on the free (positive)
// coordinates by Cholesky before the projected-gradient polish, so when
// the active set is stable across epochs the polish stagnates almost
// immediately. A nil x0 starts from zero with no correction, making
// SolveWarm over a freshly assembled system bitwise-identical to Solve.
// The returned slice aliases the solver's scratch and is valid until the
// next solve.
//
//dophy:returns borrowed(recv) -- the result aliases s.x until the next solve
//dophy:invalidates
//dophy:hotpath
func (s *NNLSSolver) SolveWarm(g *Dense, atb, x0 []float64, iters int, tol float64) []float64 {
	if g.Rows != g.Cols || len(atb) != g.Cols {
		panic(fmt.Sprintf("mat: SolveWarm dimension mismatch %dx%d vs %d", g.Rows, g.Cols, len(atb)))
	}
	if x0 != nil && len(x0) != g.Cols {
		panic(fmt.Sprintf("mat: SolveWarm x0 length %d, want %d", len(x0), g.Cols))
	}
	// Lipschitz bound: max row sum of |G| >= spectral norm.
	lip := 0.0
	for i := 0; i < g.Rows; i++ {
		sum := 0.0
		for j := 0; j < g.Cols; j++ {
			sum += math.Abs(g.At(i, j))
		}
		if sum > lip {
			lip = sum
		}
	}
	s.x = growFloats(s.x, g.Cols)
	x := s.x
	if x0 != nil {
		copy(x, x0)
		s.newtonCorrect(g, atb, x)
	}
	if lip == 0 {
		return x // A is zero: any x is optimal, keep the seed
	}
	step := 1 / lip
	s.grad = growFloats(s.grad, g.Rows)
	grad := s.grad
	for it := 0; it < iters; it++ {
		// grad = G x - A^T b
		g.MulVecTo(grad, x)
		moved := 0.0
		for j := range x {
			nx := x[j] - step*(grad[j]-atb[j])
			if nx < 0 {
				nx = 0
			}
			moved += math.Abs(nx - x[j])
			x[j] = nx
		}
		if moved < tol {
			break
		}
	}
	return x
}

// newtonCorrect is the active-set phase of a warm start: taking x's
// positive coordinates as the initial free set F, it solves G_FF z =
// atb_F by Cholesky, clamps non-positive components out of F, and then
// checks the KKT conditions on the active (zero) coordinates — any with a
// strictly descending reduced gradient re-enters F and the block is
// re-solved. The loop is bounded: each round is one Cholesky solve, far
// cheaper than the thousands of projected-gradient iterations it takes a
// coordinate to enter the support from zero. When the rounds reach a KKT
// point — the common case when the active set moved by a handful of
// coordinates between epochs — the caller's polish stops at its first
// stagnation check. The correction is best-effort: on a non-SPD free
// block or when the round budget runs out, x is left at the last
// feasible iterate and the polish runs from there unaided.
//
//dophy:hotpath
func (s *NNLSSolver) newtonCorrect(g *Dense, atb, x []float64) {
	s.free = s.free[:0]
	for j := range x {
		if x[j] > 0 {
			s.free = append(s.free, j)
		}
	}
	const maxRounds = 16
	for round := 0; round < maxRounds; round++ {
		// Solve the free block, dropping clamped coordinates until the
		// block's solution is strictly positive (inner clamp loop).
		for inner := 0; inner < maxRounds && len(s.free) > 0; inner++ {
			nf := len(s.free)
			s.gff.Reshape(nf, nf)
			s.bf = growFloats(s.bf, nf)
			for a, ja := range s.free {
				for b, jb := range s.free {
					s.gff.Set(a, b, g.At(ja, jb))
				}
				s.bf[a] = atb[ja]
			}
			z, err := s.spd.Solve(&s.gff, s.bf)
			if err != nil {
				return
			}
			kept := s.free[:0]
			clamped := false
			for i, j := range s.free {
				if z[i] > 0 {
					x[j] = z[i]
					kept = append(kept, j)
				} else {
					x[j] = 0
					clamped = true
				}
			}
			s.free = kept
			if !clamped {
				break
			}
		}
		// KKT check: an active coordinate with a strictly descending
		// reduced gradient (atb_j - (Gx)_j > 0) must join the free set.
		s.grad = growFloats(s.grad, g.Rows)
		g.MulVecTo(s.grad, x)
		entered := false
		for j := range x {
			if x[j] > 0 {
				continue
			}
			if w := atb[j] - s.grad[j]; w > 1e-12*(1+math.Abs(atb[j])) {
				s.free = append(s.free, j)
				entered = true
			}
		}
		if !entered {
			return
		}
	}
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm.
func Norm2(a []float64) float64 { return math.Sqrt(Dot(a, a)) }
