// Package mat is a small dense linear-algebra kit: exactly the operations
// the least-squares tomography baseline needs (normal equations with ridge
// regularisation, Cholesky solve, and projected-gradient non-negative least
// squares), implemented from scratch on float64 slices.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	data       []float64
}

// NewDense allocates a zero matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic("mat: negative dimensions")
	}
	return &Dense{Rows: rows, Cols: cols, data: make([]float64, rows*cols)}
}

// Reshape reconfigures m to rows x cols with every element zero, reusing
// the backing slice when it has capacity — the allocation-free counterpart
// of NewDense for solver scratch that is resized every epoch.
func (m *Dense) Reshape(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic("mat: negative dimensions")
	}
	n := rows * cols
	if cap(m.data) < n {
		//dophy:allow hotpathalloc -- scratch grows to the problem's high-water mark, then is reused
		m.data = make([]float64, n)
	} else {
		m.data = m.data[:n]
		clear(m.data)
	}
	m.Rows, m.Cols = rows, cols
}

// growFloats returns s with length n and every element zero, reusing the
// backing array when it is large enough.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		//dophy:allow hotpathalloc -- scratch grows to the problem's high-water mark, then is reused
		return make([]float64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.Cols+j] = v }

// Add increments element (i, j).
func (m *Dense) Add(i, j int, v float64) { m.data[i*m.Cols+j] += v }

// MulVec returns A*x.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %d vs %d", len(x), m.Cols))
	}
	out := make([]float64, m.Rows)
	m.MulVecTo(out, x)
	return out
}

// MulVecTo computes A*x into dst, which must have length Rows. It lets
// iterative solvers reuse one gradient buffer instead of allocating per
// step.
func (m *Dense) MulVecTo(dst, x []float64) {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("mat: MulVecTo dimension mismatch %d vs %d", len(x), m.Cols))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("mat: MulVecTo dst length %d, want %d", len(dst), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, a := range row {
			s += a * x[j]
		}
		dst[i] = s
	}
}

// TMulVec returns A^T * y.
func (m *Dense) TMulVec(y []float64) []float64 {
	out := make([]float64, m.Cols)
	m.TMulVecTo(out, y)
	return out
}

// TMulVecTo computes A^T * y into dst, which must have length Cols and be
// zeroed by the caller — the allocation-free variant of TMulVec.
func (m *Dense) TMulVecTo(dst, y []float64) {
	if len(y) != m.Rows {
		panic(fmt.Sprintf("mat: TMulVecTo dimension mismatch %d vs %d", len(y), m.Rows))
	}
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("mat: TMulVecTo dst length %d, want %d", len(dst), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.data[i*m.Cols : (i+1)*m.Cols]
		yi := y[i]
		if yi == 0 {
			continue
		}
		for j, a := range row {
			dst[j] += a * yi
		}
	}
}

// Gram returns A^T A (Cols x Cols, symmetric positive semidefinite).
func (m *Dense) Gram() *Dense {
	g := NewDense(m.Cols, m.Cols)
	m.gramInto(g)
	return g
}

// GramInto computes A^T A into g, reshaping it to Cols x Cols and reusing
// its backing storage.
func (m *Dense) GramInto(g *Dense) {
	g.Reshape(m.Cols, m.Cols)
	m.gramInto(g)
}

func (m *Dense) gramInto(g *Dense) {
	for i := 0; i < m.Rows; i++ {
		row := m.data[i*m.Cols : (i+1)*m.Cols]
		for a := 0; a < m.Cols; a++ {
			ra := row[a]
			if ra == 0 {
				continue
			}
			for b := a; b < m.Cols; b++ {
				g.data[a*m.Cols+b] += ra * row[b]
			}
		}
	}
	// Mirror the upper triangle.
	for a := 0; a < m.Cols; a++ {
		for b := a + 1; b < m.Cols; b++ {
			g.data[b*m.Cols+a] = g.data[a*m.Cols+b]
		}
	}
}

// ErrNotSPD reports a Cholesky failure (matrix not positive definite).
var ErrNotSPD = errors.New("mat: matrix not symmetric positive definite")

// SolveSPD solves A x = b for symmetric positive-definite A by Cholesky
// decomposition. A is not modified.
func SolveSPD(a *Dense, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		panic("mat: SolveSPD dimension mismatch")
	}
	// L lower-triangular with A = L L^T.
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotSPD
				}
				l[i*n+i] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	// Forward solve L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i*n+k] * y[k]
		}
		y[i] = sum / l[i*n+i]
	}
	// Back solve L^T x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k*n+i] * x[k]
		}
		x[i] = sum / l[i*n+i]
	}
	return x, nil
}

// RidgeLeastSquares solves min ||A x - b||^2 + ridge ||x||^2 via the normal
// equations. ridge > 0 guarantees solvability even for rank-deficient A.
func RidgeLeastSquares(a *Dense, b []float64, ridge float64) ([]float64, error) {
	if ridge <= 0 {
		return nil, errors.New("mat: ridge must be positive")
	}
	g := a.Gram()
	for i := 0; i < g.Rows; i++ {
		g.Add(i, i, ridge)
	}
	return SolveSPD(g, a.TMulVec(b))
}

// NNLS solves min ||A x - b||^2 subject to x >= 0 by projected gradient
// descent with a step from the Gram matrix's row-sum bound. It converges
// linearly and is robust on the small ill-conditioned systems tomography
// produces. iters bounds the work; tol stops early on stagnation. The
// caller owns the returned slice; per-epoch callers should hold an
// NNLSSolver instead and reuse its scratch.
func NNLS(a *Dense, b []float64, iters int, tol float64) []float64 {
	var s NNLSSolver
	return s.Solve(a, b, iters, tol)
}

// NNLSSolver runs NNLS repeatedly over same-shaped or differently-shaped
// systems, reusing its Gram matrix and vector scratch across Solve calls.
// The zero value is ready to use.
type NNLSSolver struct {
	g    Dense
	x    []float64
	atb  []float64
	grad []float64
}

// Solve is NNLS with reusable scratch. The returned slice aliases the
// solver's scratch and is valid until the next Solve call.
func (s *NNLSSolver) Solve(a *Dense, b []float64, iters int, tol float64) []float64 {
	a.GramInto(&s.g)
	g := &s.g
	// Lipschitz bound: max row sum of |G| >= spectral norm.
	lip := 0.0
	for i := 0; i < g.Rows; i++ {
		sum := 0.0
		for j := 0; j < g.Cols; j++ {
			sum += math.Abs(g.At(i, j))
		}
		if sum > lip {
			lip = sum
		}
	}
	s.x = growFloats(s.x, a.Cols)
	x := s.x
	if lip == 0 {
		return x // A is zero: x = 0 is optimal
	}
	step := 1 / lip
	s.atb = growFloats(s.atb, a.Cols)
	a.TMulVecTo(s.atb, b)
	atb := s.atb
	s.grad = growFloats(s.grad, g.Rows)
	grad := s.grad
	for it := 0; it < iters; it++ {
		// grad = G x - A^T b
		g.MulVecTo(grad, x)
		moved := 0.0
		for j := range x {
			nx := x[j] - step*(grad[j]-atb[j])
			if nx < 0 {
				nx = 0
			}
			moved += math.Abs(nx - x[j])
			x[j] = nx
		}
		if moved < tol {
			break
		}
	}
	return x
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm.
func Norm2(a []float64) float64 { return math.Sqrt(Dot(a, a)) }
