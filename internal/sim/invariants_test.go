//go:build dophy_invariants

package sim

import (
	"testing"
)

// TestDoubleCancelUnderInvariants is the regression test for idempotent
// Cancel: double-cancelling the same event while the free-list auditor is
// armed must neither panic nor corrupt the list.
func TestDoubleCancelUnderInvariants(t *testing.T) {
	e := New()
	fired := 0
	ev := e.Schedule(1, func() { t.Fatal("cancelled event fired") })
	e.Schedule(2, func() { fired++ })
	e.Cancel(ev)
	e.Cancel(ev) // second cancel: guarded no-op, auditor must stay silent
	e.RunAll()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	// Drain through several reuse cycles; a double-recycled event would
	// trip the auditor's double-free panic here.
	for i := 0; i < 100; i++ {
		ev := e.After(1, func() {})
		if i%3 == 0 {
			e.Cancel(ev)
		}
		e.RunAll()
	}
}

// TestDoubleRecyclePanics verifies the auditor catches an engine-level
// double free (recycling the same event twice).
func TestDoubleRecyclePanics(t *testing.T) {
	e := New()
	ev := e.Schedule(1, func() {})
	e.Cancel(ev) // pops and recycles ev
	defer func() {
		if recover() == nil {
			t.Fatal("second recycle of the same event did not panic")
		}
	}()
	e.recycle(ev)
}

// TestRecycleWhileQueuedPanics verifies the auditor rejects recycling an
// event that is still pending on the heap.
func TestRecycleWhileQueuedPanics(t *testing.T) {
	e := New()
	ev := e.Schedule(1, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("recycling a queued event did not panic")
		}
	}()
	e.recycle(ev)
}

// TestHeapAuditCatchesCorruption corrupts the heap directly and checks the
// audit trips on the next mutation.
func TestHeapAuditCatchesCorruption(t *testing.T) {
	e := New()
	for i := 10; i > 0; i-- {
		e.Schedule(Time(i), func() {})
	}
	// Swap two entries without fixing indices: both the order and the
	// index audit must notice.
	e.queue[0], e.queue[1] = e.queue[1], e.queue[0]
	defer func() {
		if recover() == nil {
			t.Fatal("heap audit missed a corrupted queue")
		}
	}()
	e.Schedule(100, func() {})
}

// TestInvariantsSurviveMixedWorkload runs a scheduling-heavy workload with
// cancels and nested scheduling so every audit path executes repeatedly
// (including the full-scan every 64 mutations).
func TestInvariantsSurviveMixedWorkload(t *testing.T) {
	e := New()
	var pending []*Event
	for i := 0; i < 500; i++ {
		i := i
		ev := e.Schedule(Time(i%37), func() {
			if i%5 == 0 {
				e.After(Time(i%11), func() {})
			}
		})
		if i%7 == 0 {
			pending = append(pending, ev)
		}
		if len(pending) > 3 {
			e.Cancel(pending[0])
			pending = pending[1:]
		}
	}
	e.RunAll()
	if e.Pending() != 0 {
		t.Fatalf("queue not drained: %d pending", e.Pending())
	}
}
