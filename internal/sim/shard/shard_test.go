package shard

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"dophy/internal/rng"
	"dophy/internal/sim"
	"dophy/internal/topo"
)

// runWorkload drives a synthetic message-passing workload over n nodes
// partitioned into k contiguous shards and returns one execution log per
// node. Every node draws only from its own rng.Derive stream and logs only
// on its owner shard, so the logs are a full observable trace: if they are
// identical across shard counts, the executions were equivalent.
func runWorkload(t *testing.T, seed uint64, n, k int, until sim.Time) []string {
	t.Helper()
	const lookahead = sim.Time(0.05)
	owner := make([]topo.ShardID, n)
	for i := range owner {
		owner[i] = topo.ShardID(i * k / n)
	}
	e := New(Config{Shards: k, Lookahead: lookahead, Nodes: n})
	defer e.Close()

	logs := make([]strings.Builder, n)
	streams := rng.NewStreams(seed, n)
	var tick func(id topo.NodeID) sim.Handler
	tick = func(id topo.NodeID) sim.Handler {
		return func() {
			sub := e.Sub(owner[id])
			now := sub.Now()
			u := streams[id].Float64()
			fmt.Fprintf(&logs[id], "tick id=%d t=%.9f u=%.9f\n", id, now, u)
			if next := now + 0.02 + sim.Time(u)*0.2; next < until {
				sub.Schedule(next, tick(id))
			}
			if u < 0.6 { // message a pseudo-random peer with latency >= lookahead
				peer := topo.NodeID(streams[id].Intn(n))
				at := now + lookahead + sim.Time(streams[id].Float64())*0.1
				e.Send(owner[id], at, id, owner[peer], func() {
					v := streams[peer].Float64()
					fmt.Fprintf(&logs[peer], "recv id=%d from=%d t=%.9f v=%.9f\n",
						peer, id, e.Sub(owner[peer]).Now(), v)
				})
			}
		}
	}
	for i := 0; i < n; i++ {
		e.Sub(owner[i]).Schedule(sim.Time(i)*0.001, tick(topo.NodeID(i)))
	}
	// Split the run to exercise repeated Run calls against the same engine.
	e.Run(until / 2)
	e.Run(until)

	out := make([]string, n)
	for i := range logs {
		out[i] = logs[i].String()
	}
	return out
}

func TestDeterministicAcrossShardCounts(t *testing.T) {
	const n = 12
	ref := runWorkload(t, 77, n, 1, 30)
	events := 0
	for _, l := range ref {
		events += strings.Count(l, "\n")
	}
	if events < 1000 {
		t.Fatalf("workload too small to be meaningful: %d log lines", events)
	}
	for _, k := range []int{2, 3, 4, 8} {
		got := runWorkload(t, 77, n, k, 30)
		for id := range ref {
			if got[id] != ref[id] {
				t.Fatalf("k=%d: node %d log differs from unsharded run", k, id)
			}
		}
	}
}

func TestSendDeliversAtExactTime(t *testing.T) {
	e := New(Config{Shards: 2, Lookahead: 1, Nodes: 4})
	defer e.Close()
	var remote, local sim.Time
	e.Sub(0).Schedule(0.5, func() {
		e.Send(0, e.Sub(0).Now()+1, 0, 1, func() {
			remote = e.Sub(1).Now()
		})
		// Same-shard send short-circuits but must still honour the time.
		e.Send(0, 2.25, 0, 0, func() {
			local = e.Sub(0).Now()
		})
	})
	e.Run(10)
	if remote != 1.5 || local != 2.25 {
		t.Fatalf("arrivals remote=%v local=%v, want 1.5 and 2.25", remote, local)
	}
	if e.Exchanged() != 1 {
		t.Fatalf("Exchanged = %d, want 1 (same-shard send must not hit the outbox)", e.Exchanged())
	}
}

func TestLookaheadViolationPanics(t *testing.T) {
	e := New(Config{Shards: 2, Lookahead: 1, Nodes: 2})
	defer e.Close()
	e.Sub(0).Schedule(0.5, func() {
		// Arrival inside the current window: conservative contract broken.
		e.Send(0, e.Sub(0).Now()+0.1, 0, 1, func() {})
	})
	defer func() {
		if recover() == nil {
			t.Fatal("lookahead violation did not panic")
		}
	}()
	e.Run(10)
}

func TestIdleGapsSkipWindows(t *testing.T) {
	e := New(Config{Shards: 2, Lookahead: 0.01, Nodes: 2})
	defer e.Close()
	fired := 0
	e.Sub(0).Schedule(0, func() { fired++ })
	e.Sub(1).Schedule(500, func() { fired++ })
	e.Sub(0).Schedule(1000, func() { fired++ })
	e.Run(2000)
	if fired != 3 {
		t.Fatalf("fired %d events, want 3", fired)
	}
	if w := e.Windows(); w > 6 {
		t.Fatalf("executed %d windows for 3 isolated events — idle gaps not skipped", w)
	}
	for s := topo.ShardID(0); s < 2; s++ {
		if now := e.Sub(s).Now(); now != 2000 {
			t.Fatalf("shard %d clock = %v, want 2000", s, now)
		}
	}
}

func TestSingleShardIsPlainRun(t *testing.T) {
	e := New(Config{Shards: 1, Nodes: 1})
	defer e.Close()
	var at []sim.Time
	e.Sub(0).Schedule(1, func() { at = append(at, e.Sub(0).Now()) })
	// Plain Run semantics: an event at exactly the horizon executes.
	e.Sub(0).Schedule(5, func() { at = append(at, e.Sub(0).Now()) })
	e.Run(5)
	if len(at) != 2 || at[0] != 1 || at[1] != 5 {
		t.Fatalf("events ran at %v, want [1 5]", at)
	}
	if e.Windows() != 0 {
		t.Fatalf("single-shard run counted %d windows, want 0", e.Windows())
	}
}

func TestProcessedSumsShards(t *testing.T) {
	e := New(Config{Shards: 2, Lookahead: 0.5, Nodes: 2})
	defer e.Close()
	for i := 0; i < 5; i++ {
		e.Sub(0).Schedule(sim.Time(i)+0.1, func() {})
		e.Sub(1).Schedule(sim.Time(i)+0.2, func() {})
	}
	e.Run(sim.Time(math.Inf(1)))
	if got := e.Processed(); got != 10 {
		t.Fatalf("Processed = %d, want 10", got)
	}
}

// FuzzMergeKeyTotalOrder pins the barrier merge key (arrival time, origin
// node, per-origin seq) as a total order over any outbox content: sorting
// any shard-grouped concatenation of the same message multiset yields one
// merged order, so the delivery schedule is independent of the shard count
// and of the order outboxes are drained. A regression here would silently
// break TestShardedByteDeterminism on barrier-heavy workloads.
func FuzzMergeKeyTotalOrder(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{1, 1, 1, 1, 1, 1})
	f.Add([]byte{9, 0, 9, 0, 7, 7, 7, 2, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode a message multiset: coarse timestamps force (at) ties, and
		// per-origin counters mirror how Send stamps seqs, so the full
		// (at, origin, seq) key is unique by construction.
		var msgs []msg
		seqs := map[topo.NodeID]uint64{}
		for i := 0; i+1 < len(data); i += 2 {
			origin := topo.NodeID(data[i] % 7)
			at := sim.Time(data[i+1]%5) / 4
			msgs = append(msgs, msg{at: at, origin: origin, seq: seqs[origin]})
			seqs[origin]++
		}

		// merge mimics deliver: group each message into its origin's outbox
		// under a k-shard owner map, concatenate the outboxes in shard
		// order, and sort by the merge key.
		merge := func(k int) []msg {
			out := make([][]msg, k)
			for _, mm := range msgs {
				s := int(mm.origin) % k
				out[s] = append(out[s], mm)
			}
			var m []msg
			for s := range out {
				m = append(m, out[s]...)
			}
			sort.Slice(m, func(i, j int) bool { return m[i].before(m[j]) })
			return m
		}

		want := merge(1)
		for i := 1; i < len(want); i++ {
			if !want[i-1].before(want[i]) || want[i].before(want[i-1]) {
				t.Fatalf("merge order not strict at %d: %+v vs %+v", i, want[i-1], want[i])
			}
		}
		for _, k := range []int{2, 3, 4, 5} {
			got := merge(k)
			for i := range want {
				if got[i].at != want[i].at || got[i].origin != want[i].origin || got[i].seq != want[i].seq {
					t.Fatalf("k=%d: merge order diverges at %d: got %+v want %+v", k, i, got[i], want[i])
				}
			}
		}
	})
}
