// Package shard runs one simulation across several cores with conservative
// lookahead, without giving up byte-determinism.
//
// The topology is partitioned spatially (topo.Partition) and each shard
// owns a private sim.Engine — its own heap, free list and clock — plus the
// state of its nodes. Shards execute windows of virtual time in parallel:
// a window starting at the earliest pending event time t runs every shard
// with RunBefore(t+L), where the lookahead L is the minimum latency of any
// cross-shard interaction. Because nothing a shard does inside the window
// can affect another shard before t+L, the windows are causally closed and
// the parallel execution is equivalent to the sequential one.
//
// Cross-shard interactions are not applied directly: the sending shard
// appends a message to its private outbox via Send, and at the window
// barrier the coordinator merges all outboxes, sorts them by
// (arrival time, origin node, per-origin sequence) and schedules them on
// the destination shards. The sort key is a pure function of the
// simulation's behaviour — shard numbering never enters it — so the merge
// order, and with it the entire run, is identical at any shard count.
// Per-node RNG streams (rng.Derive) complete the argument: no draw order
// depends on how nodes interleave across shards.
//
// Concurrency is confined to this package: the coordinator hands a window
// horizon to each worker over a channel and waits for all of them before
// touching any shard state (both directions establish happens-before), and
// with one shard the engine degenerates to a plain inline Run with zero
// goroutines and zero barriers. The boundary pragma below declares exactly
// this to dophy-lint, which proves the sharing discipline via the
// //dophy:owner annotations on Engine's fields and the
// ownercross/sendown/barrierorder contract rules; everything outside it
// stays sequential.
//
//dophy:concurrency-boundary -- conservative-lookahead worker per shard; all cross-shard traffic flows through the outbox merge at window barriers
package shard

import (
	"fmt"
	"math"
	"sort"

	"dophy/internal/sim"
	"dophy/internal/topo"
)

// Config sizes a sharded engine.
type Config struct {
	// Shards is the number of partitions (and worker goroutines). 1 means
	// a plain sequential run.
	Shards int
	// Lookahead is the window length L: a strict lower bound on the
	// latency of every cross-shard message. Send enforces it.
	Lookahead sim.Time
	// Nodes is the node count of the topology; Send keys per-origin
	// sequence counters by NodeID.
	Nodes int
}

// msg is one cross-shard interaction, parked in an outbox until the next
// barrier.
type msg struct {
	at     sim.Time
	origin topo.NodeID // node whose handler produced the message
	seq    uint64      // per-origin counter; breaks (at, origin) ties
	dst    topo.ShardID
	fn     sim.Handler
}

// before is the barrier merge order: (arrival time, origin node, per-origin
// seq), a pure function of simulation behaviour — shard numbering never
// enters it, so the merge is a total order identical at any shard count.
// FuzzMergeKeyTotalOrder pins exactly that property.
func (a msg) before(b msg) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.origin != b.origin {
		return a.origin < b.origin
	}
	return a.seq < b.seq
}

// Engine coordinates the per-shard sub-engines.
type Engine struct {
	cfg       Config          //dophy:owner immutable -- sizing, fixed at New
	subs      []*sim.Engine   //dophy:owner shard -- each shard runs its own engine inside windows
	outbox    [][]msg         //dophy:owner shard -- indexed by source shard; written only by that shard's worker inside a window
	seqs      []uint64        //dophy:owner shard -- per-origin message counters; touched only by the origin's owner shard
	merged    []msg           //dophy:owner engine -- barrier merge scratch
	windowEnd sim.Time        //dophy:owner window -- horizon of the window in flight; set before workers start
	windows   uint64          //dophy:owner engine
	exchanged uint64          //dophy:owner engine
	barrier   func()          //dophy:owner engine
	started   bool            //dophy:owner engine
	closed    bool            //dophy:owner engine
	start     []chan sim.Time //dophy:owner immutable -- channel fabric, fixed at New
	done      chan struct{}   //dophy:owner immutable
}

// New returns an engine with cfg.Shards empty sub-engines, clocks at zero.
// Callers that started worker goroutines by running with more than one
// shard must Close the engine when done.
func New(cfg Config) *Engine {
	if cfg.Shards < 1 {
		panic(fmt.Sprintf("shard: %d shards", cfg.Shards))
	}
	if cfg.Shards > 1 && !(cfg.Lookahead > 0) {
		panic(fmt.Sprintf("shard: lookahead %v must be positive", cfg.Lookahead))
	}
	e := &Engine{
		cfg:    cfg,
		subs:   make([]*sim.Engine, cfg.Shards),
		outbox: make([][]msg, cfg.Shards),
		seqs:   make([]uint64, cfg.Nodes),
		start:  make([]chan sim.Time, cfg.Shards),
		done:   make(chan struct{}, cfg.Shards),
	}
	for i := range e.subs {
		e.subs[i] = sim.New()
		e.start[i] = make(chan sim.Time, 1)
	}
	return e
}

// Shards returns the configured shard count.
func (e *Engine) Shards() int { return e.cfg.Shards }

// Sub returns shard s's engine. Handlers owned by shard s must schedule
// local work exclusively through it.
//
//dophy:window
func (e *Engine) Sub(s topo.ShardID) *sim.Engine { return e.subs[s] }

// Windows returns the number of parallel windows executed so far.
func (e *Engine) Windows() uint64 { return e.windows }

// Exchanged returns the number of cross-shard messages delivered so far.
func (e *Engine) Exchanged() uint64 { return e.exchanged }

// Processed sums the events executed by all shards. It reads every shard's
// event counter, so it may only run with the workers parked.
//
//dophy:barrier
func (e *Engine) Processed() uint64 {
	var total uint64
	for _, s := range e.subs {
		total += s.Processed()
	}
	return total
}

// Send parks a cross-shard interaction: fn will run on shard dst's engine
// at absolute time at. It must be called from a handler executing on shard
// src (the caller guarantees origin is owned by src), with at no earlier
// than the current window's horizon — the conservative-lookahead contract.
// Violating it panics, like scheduling in the past does on a plain engine.
//
// Same-shard sends short-circuit to a direct Schedule; the outbox and the
// barrier merge exist only for genuinely cross-shard traffic.
//
//dophy:hotpath
//dophy:window
func (e *Engine) Send(src topo.ShardID, at sim.Time, origin topo.NodeID, dst topo.ShardID, fn sim.Handler) {
	if src == dst {
		e.subs[src].Schedule(at, fn)
		return
	}
	if at < e.windowEnd {
		panic(fmt.Sprintf("shard: cross-shard send at %v inside window ending %v violates lookahead %v",
			at, e.windowEnd, e.cfg.Lookahead))
	}
	seq := e.seqs[origin]
	e.seqs[origin] = seq + 1
	//dophy:transfers -- fn crosses the shard boundary at the next barrier merge
	e.outbox[src] = append(e.outbox[src], msg{at: at, origin: origin, seq: seq, dst: dst, fn: fn})
}

// OnBarrier registers fn to run on the coordinator after every window's
// cross-shard messages have been delivered. All workers are parked at the
// barrier while fn runs, so it may freely inspect and drain state the
// shards produced during the window (journey buffers, counters). With one
// shard Run never executes windows, so fn never fires — single-shard
// callers drain state after Run returns instead.
func (e *Engine) OnBarrier(fn func()) { e.barrier = fn }

// Run executes events until every shard's clock reaches until (exclusive of
// events at exactly until, which stay queued for the next call). With one
// shard it degenerates to the sub-engine's plain sequential Run.
//
//dophy:barrier
func (e *Engine) Run(until sim.Time) sim.Time {
	if e.cfg.Shards == 1 {
		return e.subs[0].Run(until)
	}
	e.ensureWorkers()
	for {
		next := sim.Time(math.Inf(1))
		for _, s := range e.subs {
			if t := s.NextAt(); t < next {
				next = t
			}
		}
		if next >= until {
			break
		}
		end := next + e.cfg.Lookahead
		if end > until {
			end = until
		}
		e.runWindow(end)
		e.deliver()
		if e.barrier != nil {
			e.barrier()
		}
	}
	// No shard has work before until; advance every clock to the horizon so
	// successive calls observe monotone time.
	e.windowEnd = until
	for _, s := range e.subs {
		s.RunBefore(until)
	}
	return until
}

// ensureWorkers lazily starts one goroutine per shard beyond the first;
// shard 0 always runs on the caller's goroutine.
func (e *Engine) ensureWorkers() {
	if e.started {
		return
	}
	e.started = true
	for i := 1; i < e.cfg.Shards; i++ {
		go e.worker(topo.ShardID(i))
	}
}

// worker is shard i's goroutine body. It only ever touches shard i's
// engine, projected through the typed index — the shape ownercross proves.
func (e *Engine) worker(i topo.ShardID) {
	for end := range e.start[i] {
		e.subs[i].RunBefore(end)
		e.done <- struct{}{}
	}
}

// runWindow executes one causally closed window [windowEnd', end) on all
// shards in parallel. The start sends publish windowEnd and all prior
// barrier state to the workers; the done receives publish every shard's
// heap and outbox back to the coordinator.
//
//dophy:barrier
func (e *Engine) runWindow(end sim.Time) {
	e.windowEnd = end
	e.windows++
	for i := 1; i < e.cfg.Shards; i++ {
		e.start[i] <- end
	}
	e.subs[0].RunBefore(end)
	for i := 1; i < e.cfg.Shards; i++ {
		<-e.done
	}
}

// deliver merges every shard's outbox in msg.before order — a key
// independent of the shard count — and schedules the messages on their
// destination shards.
//
//dophy:barrier
func (e *Engine) deliver() {
	m := e.merged[:0]
	for s := range e.outbox {
		m = append(m, e.outbox[s]...)
		e.outbox[s] = e.outbox[s][:0]
	}
	if len(m) > 1 {
		sort.Slice(m, func(i, j int) bool { return m[i].before(m[j]) })
	}
	for i := range m {
		e.subs[m[i].dst].Schedule(m[i].at, m[i].fn)
		m[i].fn = nil // release the closure for GC; merged is reused
	}
	e.exchanged += uint64(len(m))
	e.merged = m[:0]
}

// Close stops the worker goroutines. The engine must not be Run again.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	if !e.started {
		return
	}
	for i := 1; i < e.cfg.Shards; i++ {
		close(e.start[i])
	}
}
