package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var got []Time
	for _, at := range []Time{5, 1, 3, 2, 4} {
		at := at
		e.Schedule(at, func() { got = append(got, at) })
	}
	e.RunAll()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("ran %d events, want 5", len(got))
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1, func() { got = append(got, i) })
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := New()
	e.Schedule(2.5, func() {
		if e.Now() != 2.5 {
			t.Errorf("Now() = %v inside event at 2.5", e.Now())
		}
	})
	end := e.RunAll()
	if end != 2.5 {
		t.Fatalf("RunAll returned %v, want 2.5", end)
	}
}

func TestAfter(t *testing.T) {
	e := New()
	var at Time
	e.Schedule(1, func() {
		e.After(0.5, func() { at = e.Now() })
	})
	e.RunAll()
	if at != 1.5 {
		t.Fatalf("After fired at %v, want 1.5", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(5, func() {})
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(1, func() {})
}

func TestNilHandlerPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler did not panic")
		}
	}()
	e.Schedule(1, nil)
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	e.Cancel(ev)
	e.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelRemovesFromQueueEagerly(t *testing.T) {
	e := New()
	keep := e.Schedule(1, func() {})
	drop := e.Schedule(2, func() {})
	e.Cancel(drop)
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d after cancel, want 1 (eager removal)", e.Pending())
	}
	e.Cancel(drop) // second cancel of a dead event: no-op
	if e.Pending() != 1 {
		t.Fatalf("double cancel disturbed the queue: Pending() = %d", e.Pending())
	}
	_ = keep
	e.RunAll()
	if e.Processed() != 1 {
		t.Fatalf("Processed() = %d, want 1", e.Processed())
	}
}

func TestCancelMidHeapKeepsOrder(t *testing.T) {
	e := New()
	var got []Time
	evs := make([]*Event, 0, 10)
	for i := 1; i <= 10; i++ {
		at := Time(i)
		evs = append(evs, e.Schedule(at, func() { got = append(got, at) }))
	}
	// Cancel from the middle of the heap; remaining events must still fire
	// in time order.
	e.Cancel(evs[4])
	e.Cancel(evs[7])
	e.RunAll()
	if len(got) != 8 {
		t.Fatalf("fired %d events, want 8", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events out of order after mid-heap cancel: %v", got)
	}
	for _, at := range got {
		if at == 5 || at == 8 {
			t.Fatalf("cancelled event at %v fired", at)
		}
	}
}

func TestEventRecycling(t *testing.T) {
	e := New()
	first := e.Schedule(1, func() {})
	e.RunAll()
	second := e.Schedule(2, func() {})
	if first != second {
		t.Fatal("fired event was not recycled by the next Schedule")
	}
	e.RunAll()

	cancelled := e.Schedule(3, func() {})
	e.Cancel(cancelled)
	reused := e.Schedule(4, func() {})
	if cancelled != reused {
		t.Fatal("cancelled event was not recycled by the next Schedule")
	}
	if reused.Cancelled() {
		t.Fatal("recycled event still marked cancelled")
	}
	fired := false
	reused.fn = func() { fired = true }
	e.RunAll()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

func TestScheduleSteadyStateAllocs(t *testing.T) {
	if InvariantsEnabled {
		t.Skip("dophy_invariants build trades allocation-freedom for checking")
	}
	e := New()
	// Warm the free list and the heap's backing array.
	for i := 0; i < 64; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.RunAll()
	base := e.Now()
	allocs := testing.AllocsPerRun(100, func() {
		base++
		e.Schedule(base, func() {})
		e.RunAll()
	})
	// One closure allocation per iteration is inherent to the func literal
	// above; the Event itself must come from the free list.
	if allocs > 1 {
		t.Fatalf("schedule/run cycle allocates %.1f objects, want <= 1", allocs)
	}
}

func TestCancelTwiceIsNoOp(t *testing.T) {
	e := New()
	fired := false
	keep := e.Schedule(2, func() { fired = true })
	victim := e.Schedule(1, func() { t.Fatal("cancelled event fired") })
	e.Cancel(victim)
	e.Cancel(victim) // double cancel: must not touch the free list again
	e.RunAll()
	if !fired {
		t.Fatal("surviving event did not fire")
	}
	_ = keep
	// The free list must hold exactly two distinct events (victim + keep);
	// a corrupted list would hand the same pointer out twice.
	a := e.Schedule(3, func() {})
	b := e.Schedule(4, func() {})
	if a == b {
		t.Fatal("free list corrupted: two live events share one pointer")
	}
	e.RunAll()
}

func TestCancelForeignEventIgnored(t *testing.T) {
	e1, e2 := New(), New()
	fired := false
	ev := e1.Schedule(1, func() { fired = true })
	e2.Cancel(ev) // wrong engine: must be a no-op
	e1.RunAll()
	if !fired {
		t.Fatal("event was cancelled by a foreign engine")
	}
}

func TestRunHorizon(t *testing.T) {
	e := New()
	var fired []Time
	for _, at := range []Time{1, 2, 3} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	end := e.Run(2)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 1 and 2", fired)
	}
	if end != 2 {
		t.Fatalf("Run(2) returned %v", end)
	}
	// Remaining event still fires on a later run.
	e.RunAll()
	if len(fired) != 3 {
		t.Fatalf("event after horizon lost: %v", fired)
	}
}

func TestStop(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.RunAll()
	if count != 3 {
		t.Fatalf("ran %d events after Stop at 3", count)
	}
	if !e.Stopped() {
		t.Fatal("Stopped() = false")
	}
}

func TestProcessedCount(t *testing.T) {
	e := New()
	for i := 0; i < 7; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.RunAll()
	if e.Processed() != 7 {
		t.Fatalf("Processed() = %d, want 7", e.Processed())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := New()
	var order []string
	e.Schedule(1, func() {
		order = append(order, "a")
		e.Schedule(1.5, func() { order = append(order, "nested") })
	})
	e.Schedule(2, func() { order = append(order, "b") })
	e.RunAll()
	want := []string{"a", "nested", "b"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTicker(t *testing.T) {
	e := New()
	var times []Time
	var ticks []int
	stop := e.Ticker(0.5, 1, func(tick int) {
		times = append(times, e.Now())
		ticks = append(ticks, tick)
	})
	e.Run(3.6)
	stop()
	e.RunAll()
	want := []Time{0.5, 1.5, 2.5, 3.5}
	if len(times) != len(want) {
		t.Fatalf("ticker fired at %v, want %v", times, want)
	}
	for i := range want {
		if math.Abs(float64(times[i]-want[i])) > 1e-9 || ticks[i] != i {
			t.Fatalf("tick %d at %v, want index %d at %v", ticks[i], times[i], i, want[i])
		}
	}
}

func TestTickerStopPreventsFutureTicks(t *testing.T) {
	e := New()
	count := 0
	var stop func()
	stop = e.Ticker(1, 1, func(int) {
		count++
		if count == 2 {
			stop()
		}
	})
	e.Run(10)
	if count != 2 {
		t.Fatalf("ticker fired %d times after stop at 2", count)
	}
}

func TestTickerStopCancelsQueuedEvent(t *testing.T) {
	e := New()
	stop := e.Ticker(1, 1, func(int) {})
	e.Run(2.5)
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d mid-ticker, want 1", e.Pending())
	}
	stop()
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after stop, want 0 (next tick not cancelled)", e.Pending())
	}
	stop() // idempotent
	before := e.Processed()
	e.RunAll()
	if e.Processed() != before {
		t.Fatal("stopped ticker still processed events")
	}
}

func TestTickerBadPeriodPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("zero period did not panic")
		}
	}()
	e.Ticker(0, 0, func(int) {})
}

// Property: for any batch of event times, execution order is a sorted,
// complete permutation of the schedule.
func TestQuickOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		e := New()
		var got []Time
		for _, r := range raw {
			at := Time(r) / 16
			e.Schedule(at, func() { got = append(got, at) })
		}
		e.RunAll()
		if len(got) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New()
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(j%97), func() {})
		}
		e.RunAll()
	}
}

func TestNextAtEmptyQueue(t *testing.T) {
	e := New()
	if got := e.NextAt(); !math.IsInf(float64(got), 1) {
		t.Fatalf("NextAt on empty queue = %v, want +Inf", got)
	}
}

func TestNextAtTracksHead(t *testing.T) {
	e := New()
	e.Schedule(5, func() {})
	if got := e.NextAt(); got != 5 {
		t.Fatalf("NextAt = %v, want 5", got)
	}
	e.Schedule(2, func() {})
	if got := e.NextAt(); got != 2 {
		t.Fatalf("NextAt after earlier schedule = %v, want 2", got)
	}
}

func TestNextAtCancelReschedule(t *testing.T) {
	e := New()
	first := e.Schedule(1, func() {})
	e.Schedule(3, func() {})
	e.Cancel(first)
	if got := e.NextAt(); got != 3 {
		t.Fatalf("NextAt after cancelling head = %v, want 3", got)
	}
	// The cancelled event's struct is recycled; a new schedule must surface
	// at the head with its new time, not any stale one.
	e.Schedule(2, func() {})
	if got := e.NextAt(); got != 2 {
		t.Fatalf("NextAt after reschedule = %v, want 2", got)
	}
	e.Cancel(e.Schedule(0.5, func() {}))
	if got := e.NextAt(); got != 2 {
		t.Fatalf("NextAt after schedule+cancel = %v, want 2", got)
	}
	e.RunAll()
	if got := e.NextAt(); !math.IsInf(float64(got), 1) {
		t.Fatalf("NextAt after drain = %v, want +Inf", got)
	}
}

func TestRunBeforeExcludesHorizon(t *testing.T) {
	e := New()
	var got []Time
	for _, at := range []Time{1, 2, 3, 4} {
		at := at
		e.Schedule(at, func() { got = append(got, at) })
	}
	end := e.RunBefore(3)
	if end != 3 {
		t.Fatalf("RunBefore returned %v, want 3", end)
	}
	if e.Now() != 3 {
		t.Fatalf("Now after RunBefore = %v, want 3", e.Now())
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("RunBefore(3) ran %v, want [1 2]", got)
	}
	// An event at exactly the horizon stays queued for the next window.
	if at := e.NextAt(); at != 3 {
		t.Fatalf("NextAt after window = %v, want 3", at)
	}
	e.RunBefore(Time(math.Inf(1)))
	if len(got) != 4 {
		t.Fatalf("second window ran %d events total, want 4", len(got))
	}
}

func TestRunBeforeAdvancesClockWhenIdle(t *testing.T) {
	e := New()
	e.RunBefore(7)
	if e.Now() != 7 {
		t.Fatalf("Now after idle RunBefore = %v, want 7", e.Now())
	}
	// Scheduling before the advanced clock must panic like any past schedule.
	defer func() {
		if recover() == nil {
			t.Fatal("schedule before advanced horizon did not panic")
		}
	}()
	e.Schedule(6, func() {})
}

func TestRunBeforeCancelRescheduleInsideWindow(t *testing.T) {
	e := New()
	var fired []string
	var late *Event
	e.Schedule(1, func() {
		// Cancel an event inside the window and replace it beyond the horizon.
		e.Cancel(late)
		e.Schedule(10, func() { fired = append(fired, "late") })
		fired = append(fired, "first")
	})
	late = e.Schedule(2, func() { fired = append(fired, "dead") })
	e.RunBefore(5)
	if len(fired) != 1 || fired[0] != "first" {
		t.Fatalf("window ran %v, want [first]", fired)
	}
	if at := e.NextAt(); at != 10 {
		t.Fatalf("NextAt = %v, want 10", at)
	}
	e.RunAll()
	if len(fired) != 2 || fired[1] != "late" {
		t.Fatalf("drain ran %v, want [first late]", fired)
	}
}
