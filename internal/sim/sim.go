// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine is deliberately minimal: a virtual clock, a binary-heap event
// queue with stable FIFO tie-breaking at equal timestamps, and cancellable
// timers. All higher layers (radio, MAC, routing, collection) schedule work
// exclusively through an *Engine, so a whole network run is a single
// sequential event loop — reproducible for a given seed and immune to data
// races by construction.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is virtual simulation time in seconds.
type Time float64

// Handler is a unit of scheduled work. It runs at its scheduled time with
// the engine's clock already advanced.
type Handler func()

// Event is a scheduled handler. Exported fields are read-only for callers;
// use Engine.Cancel to revoke one.
type Event struct {
	at      Time
	seq     uint64 // FIFO tie-break among equal timestamps
	fn      Handler
	index   int // heap index, -1 once popped or cancelled
	cancel  bool
	engine  *Engine
	comment string
}

// At returns the event's scheduled time.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether the event has been cancelled.
func (e *Event) Cancelled() bool { return e.cancel }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine owns the virtual clock and event queue.
type Engine struct {
	now       Time
	seq       uint64
	queue     eventHeap
	processed uint64
	stopped   bool
}

// New returns an engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events still queued (including cancelled
// ones not yet reaped).
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule runs fn at absolute time at. Scheduling in the past (before Now)
// panics: it is always a logic bug upstream, never a recoverable condition.
func (e *Engine) Schedule(at Time, fn Handler) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule with nil handler")
	}
	ev := &Event{at: at, seq: e.seq, fn: fn, engine: e}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After runs fn after delay d from the current time.
func (e *Engine) After(d Time, fn Handler) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.Schedule(e.now+d, fn)
}

// Cancel marks an event so it will be skipped when it reaches the head of
// the queue. Cancelling an already-fired or already-cancelled event is a
// no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.engine != e {
		return
	}
	ev.cancel = true
}

// Stop halts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Run executes events until the queue drains, Stop is called, or the clock
// would pass until (exclusive upper bound; use math.Inf(1) for "no limit").
// It returns the time at which it stopped.
func (e *Engine) Run(until Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > until {
			// Leave the event queued; advance clock to the horizon so
			// successive Run calls observe monotone time.
			e.now = until
			return e.now
		}
		heap.Pop(&e.queue)
		if next.cancel {
			continue
		}
		e.now = next.at
		e.processed++
		next.fn()
	}
	return e.now
}

// RunAll executes events until the queue drains or Stop is called.
func (e *Engine) RunAll() Time {
	return e.Run(Time(math.Inf(1)))
}

// Ticker repeatedly schedules fn every period, starting at the current time
// plus phase. It returns a stop function. fn receives the tick index,
// starting at 0. A non-positive period panics.
func (e *Engine) Ticker(phase, period Time, fn func(tick int)) (stop func()) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: ticker period %v must be positive", period))
	}
	stopped := false
	tick := 0
	var schedule func()
	schedule = func() {
		e.After(phaseOrPeriod(tick, phase, period), func() {
			if stopped {
				return
			}
			i := tick
			tick++
			schedule()
			fn(i)
		})
	}
	schedule()
	return func() { stopped = true }
}

func phaseOrPeriod(tick int, phase, period Time) Time {
	if tick == 0 {
		return phase
	}
	return period
}
