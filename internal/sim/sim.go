// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine is deliberately minimal: a virtual clock, a binary-heap event
// queue with stable FIFO tie-breaking at equal timestamps, and cancellable
// timers. All higher layers (radio, MAC, routing, collection) schedule work
// exclusively through an *Engine, so a whole network run is a single
// sequential event loop — reproducible for a given seed and immune to data
// races by construction.
//
// Event recycling. Schedule draws Event structs from a per-engine free list
// and returns them to it once they fire or are cancelled, so steady-state
// scheduling performs no heap allocation. The corollary is an ownership
// rule: an *Event is live from Schedule until its handler runs or Cancel
// removes it, and must not be retained or queried after that — the engine
// may already have reused it for a later Schedule.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is virtual simulation time in seconds.
type Time float64

// Handler is a unit of scheduled work. It runs at its scheduled time with
// the engine's clock already advanced.
type Handler func()

// Event is a scheduled handler. Exported methods are read-only for callers;
// use Engine.Cancel to revoke one. Pointers are only valid while the event
// is pending (see the package comment on recycling) — the single-state
// contract below documents that a held event supports only the two
// read-only probes, never a state change.
//
//dophy:states live: At|Cancelled -> live
type Event struct {
	at     Time
	seq    uint64 // FIFO tie-break among equal timestamps
	fn     Handler
	index  int // heap index, -1 once popped or cancelled
	cancel bool
	engine *Engine
}

// At returns the event's scheduled time.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether the event has been cancelled.
func (e *Event) Cancelled() bool { return e.cancel }

type eventHeap []*Event

// The heap methods are annotated individually: container/heap invokes them
// through an interface the call-graph engine cannot see from heap.Push/Pop
// call sites, so the annotation is what puts them under hotpathalloc.

//dophy:hotpath
func (h eventHeap) Len() int { return len(h) }

//dophy:hotpath
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

//dophy:hotpath
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

//dophy:hotpath
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

//dophy:hotpath
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine owns the virtual clock and event queue. It is strictly
// single-consumer — every Schedule and Run mutates the heap — so under the
// sharded coordinator each instance is confined to the shard that drives
// it, which the annotation makes checkable.
//
//dophy:owner shard
type Engine struct {
	// inv carries the build-tag-gated runtime invariant checks; in the
	// default build it is a zero-size no-op (see invariants_off.go). Kept
	// first so the zero-size variant costs no trailing padding.
	inv       engineInvariants
	now       Time
	seq       uint64
	queue     eventHeap
	free      []*Event // recycled events awaiting reuse
	processed uint64
	stopped   bool
}

// New returns an engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events still queued. Cancelled events are
// removed from the queue immediately, so they never inflate this count.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule runs fn at absolute time at. Scheduling in the past (before Now)
// panics: it is always a logic bug upstream, never a recoverable condition.
//
//dophy:hotpath
func (e *Engine) Schedule(at Time, fn Handler) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule with nil handler")
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		e.inv.onReuse(e, ev)
		ev.at, ev.seq, ev.fn, ev.cancel = at, e.seq, fn, false
	} else {
		//dophy:allow hotpathalloc -- free-list miss path: allocates only until the pool warms up
		ev = &Event{at: at, seq: e.seq, fn: fn, engine: e}
	}
	e.seq++
	heap.Push(&e.queue, ev)
	e.inv.checkHeap(e)
	return ev
}

// recycle returns a dead event (fired or cancelled) to the free list.
//
//dophy:hotpath
func (e *Engine) recycle(ev *Event) {
	e.inv.onRecycle(e, ev)
	ev.fn = nil // release the closure for GC
	e.free = append(e.free, ev)
}

// After runs fn after delay d from the current time.
//
//dophy:hotpath
func (e *Engine) After(d Time, fn Handler) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.Schedule(e.now+d, fn)
}

// Cancel removes a pending event from the queue immediately. Cancelling an
// already-fired or already-cancelled event is a no-op. The pointer must not
// be used after Cancel returns: the engine recycles cancelled events.
//
//dophy:hotpath
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.engine != e || ev.cancel || ev.index < 0 {
		return
	}
	e.inv.onCancel(e, ev)
	ev.cancel = true
	heap.Remove(&e.queue, ev.index)
	e.inv.checkHeap(e)
	e.recycle(ev)
}

// Stop halts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Run executes events until the queue drains, Stop is called, or the clock
// would pass until (exclusive upper bound; use math.Inf(1) for "no limit").
// It returns the time at which it stopped.
//
//dophy:hotpath
func (e *Engine) Run(until Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > until {
			// Leave the event queued; advance clock to the horizon so
			// successive Run calls observe monotone time.
			e.now = until
			return e.now
		}
		heap.Pop(&e.queue)
		e.inv.checkHeap(e)
		if next.cancel {
			// Unreachable under eager Cancel removal; kept as a guard.
			e.recycle(next)
			continue
		}
		e.now = next.at
		e.processed++
		//dophy:allow hotpathalloc -- event dispatch: handlers are closures vetted at their creation sites, which live in annotated hot paths
		next.fn()
		e.recycle(next)
	}
	return e.now
}

// RunAll executes events until the queue drains or Stop is called.
func (e *Engine) RunAll() Time {
	return e.Run(Time(math.Inf(1)))
}

// NextAt returns the scheduled time of the earliest pending event, or +Inf
// when the queue is empty. Cancelled events are removed eagerly, so they
// never shadow the true head. The shard barrier uses this to compute safe
// lookahead horizons without popping.
//
//dophy:hotpath
func (e *Engine) NextAt() Time {
	if len(e.queue) == 0 {
		return Time(math.Inf(1))
	}
	return e.queue[0].at
}

// RunBefore executes events strictly before horizon, then advances the
// clock to horizon so successive windows observe monotone time. Events at
// exactly horizon stay queued — the conservative-lookahead contract is that
// a window [start, horizon) owns only the events inside it, while arrivals
// injected at the barrier land at or after horizon. It returns the time at
// which it stopped (horizon, unless Stop was called).
//
//dophy:hotpath
func (e *Engine) RunBefore(horizon Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at >= horizon {
			break
		}
		heap.Pop(&e.queue)
		e.inv.checkHeap(e)
		if next.cancel {
			// Unreachable under eager Cancel removal; kept as a guard.
			e.recycle(next)
			continue
		}
		e.now = next.at
		e.processed++
		//dophy:allow hotpathalloc -- event dispatch: handlers are closures vetted at their creation sites, which live in annotated hot paths
		next.fn()
		e.recycle(next)
	}
	if !e.stopped && e.now < horizon {
		e.now = horizon
	}
	return e.now
}

// Ticker repeatedly schedules fn every period, starting at the current time
// plus phase. It returns a stop function. fn receives the tick index,
// starting at 0. Calling stop cancels the already-scheduled next event, so
// a stopped ticker leaves nothing in the queue. A non-positive period
// panics.
func (e *Engine) Ticker(phase, period Time, fn func(tick int)) (stop func()) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: ticker period %v must be positive", period))
	}
	stopped := false
	tick := 0
	var next *Event
	var schedule func()
	schedule = func() {
		next = e.After(phaseOrPeriod(tick, phase, period), func() {
			i := tick
			tick++
			schedule()
			fn(i)
		})
	}
	schedule()
	return func() {
		if stopped {
			return
		}
		stopped = true
		e.Cancel(next)
		next = nil
	}
}

func phaseOrPeriod(tick int, phase, period Time) Time {
	if tick == 0 {
		return phase
	}
	return period
}
