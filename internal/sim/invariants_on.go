//go:build dophy_invariants

package sim

import "fmt"

// InvariantsEnabled reports whether this binary carries the runtime
// invariant checks.
const InvariantsEnabled = true

// engineInvariants tracks free-list membership and audits the event heap.
// Violations panic: every one is an engine or ownership bug, and the
// dophy_invariants build exists to fail loudly in tests, not to recover.
type engineInvariants struct {
	inFree    map[*Event]bool
	mutations uint64
}

// onReuse fires when Schedule pulls an event off the free list.
func (iv *engineInvariants) onReuse(e *Engine, ev *Event) {
	if !iv.inFree[ev] {
		panic("sim: invariant violated: reused event was not on the free list")
	}
	delete(iv.inFree, ev)
}

// onRecycle fires when a dead event returns to the free list; a second
// recycle of the same pointer is a double free.
func (iv *engineInvariants) onRecycle(e *Engine, ev *Event) {
	if iv.inFree == nil {
		//dophy:allow hotpathalloc -- one-time lazy init per engine; amortised to zero over a run
		iv.inFree = make(map[*Event]bool)
	}
	if iv.inFree[ev] {
		panic("sim: invariant violated: event recycled twice (double free)")
	}
	if ev.index >= 0 {
		panic("sim: invariant violated: recycling an event still on the heap")
	}
	iv.inFree[ev] = true
}

// onCancel fires after Cancel's idempotency guards accept the event.
func (iv *engineInvariants) onCancel(e *Engine, ev *Event) {
	if iv.inFree[ev] {
		panic("sim: invariant violated: Cancel reached an event on the free list")
	}
	if ev.index < 0 || ev.index >= len(e.queue) || e.queue[ev.index] != ev {
		panic("sim: invariant violated: cancelled event's heap index is stale")
	}
}

// checkHeap audits the queue after each push/pop/remove: the first levels
// (where pops happen) on every mutation, the whole heap plus the free list
// every 64th, keeping the tagged build usable on million-event runs.
func (iv *engineInvariants) checkHeap(e *Engine) {
	iv.mutations++
	limit := len(e.queue)
	full := iv.mutations%64 == 0
	if !full && limit > 16 {
		limit = 16
	}
	for i := 1; i < limit; i++ {
		parent := (i - 1) / 2
		if e.queue.Less(i, parent) {
			panic(fmt.Sprintf("sim: invariant violated: heap order broken at index %d (at=%v seq=%d above at=%v seq=%d)",
				i, e.queue[parent].at, e.queue[parent].seq, e.queue[i].at, e.queue[i].seq))
		}
		if e.queue[i].index != i {
			panic(fmt.Sprintf("sim: invariant violated: heap index desync at %d (recorded %d)", i, e.queue[i].index))
		}
	}
	if full {
		for i, ev := range e.queue {
			if ev.index != i {
				panic(fmt.Sprintf("sim: invariant violated: heap index desync at %d (recorded %d)", i, ev.index))
			}
			if iv.inFree[ev] {
				panic(fmt.Sprintf("sim: invariant violated: queued event at index %d is also on the free list", i))
			}
		}
	}
}
