//go:build !dophy_invariants

package sim

// InvariantsEnabled reports whether this binary carries the runtime
// invariant checks (build with -tags dophy_invariants to turn them on).
const InvariantsEnabled = false

// engineInvariants is the no-op variant: zero-size, empty methods, so the
// default build's hot paths compile to exactly the pre-hook code.
type engineInvariants struct{}

func (engineInvariants) onReuse(*Engine, *Event)   {}
func (engineInvariants) onRecycle(*Engine, *Event) {}
func (engineInvariants) onCancel(*Engine, *Event)  {}
func (engineInvariants) checkHeap(*Engine)         {}
