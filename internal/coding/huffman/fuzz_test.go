package huffman

import (
	"bytes"
	"testing"

	"dophy/internal/coding/bitio"
)

// fuzzStream interprets fuzz data as (alphabet size, frequency table,
// symbol stream): byte 0 picks n in [1,16], the next n bytes give strictly
// positive frequencies, and the rest are symbols mod n.
func fuzzStream(data []byte) ([]uint32, []int, bool) {
	if len(data) < 2 {
		return nil, nil, false
	}
	n := 1 + int(data[0])%16
	if len(data) < 1+n {
		return nil, nil, false
	}
	freq := make([]uint32, n)
	for i := 0; i < n; i++ {
		freq[i] = 1 + uint32(data[1+i])
	}
	rest := data[1+n:]
	syms := make([]int, len(rest))
	for i, b := range rest {
		syms[i] = int(b) % n
	}
	return freq, syms, true
}

// retxSeed mirrors the arith fuzz seeds: a zero-skewed geometric frequency
// table (the shape real per-hop retransmission counts have) followed by a
// symbol stream.
func retxSeed(n int, pattern []byte) []byte {
	seed := []byte{byte(n - 1)}
	w := byte(200)
	for i := 0; i < n; i++ {
		seed = append(seed, w)
		w /= 2
	}
	return append(seed, pattern...)
}

func FuzzHuffmanRoundtrip(f *testing.F) {
	// Typical epoch stream: mostly first-attempt deliveries.
	f.Add(retxSeed(8, []byte{0, 0, 0, 0, 1, 0, 0, 2, 0, 0, 0, 0, 0, 3, 0, 0, 1, 0}))
	// Bursty link: clustered retries.
	f.Add(retxSeed(8, []byte{0, 0, 5, 6, 7, 7, 4, 0, 0, 1}))
	// All-clean epoch.
	f.Add(retxSeed(4, bytes.Repeat([]byte{0}, 64)))
	// Single-symbol alphabet (degenerate 1-bit code).
	f.Add(retxSeed(1, []byte{0, 0, 0, 0}))
	// Flat worst case for a prefix code.
	f.Add(retxSeed(16, []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}))

	f.Fuzz(func(t *testing.T, data []byte) {
		freq, syms, ok := fuzzStream(data)
		if !ok {
			t.Skip()
		}
		code := Build(freq)
		w := bitio.NewWriter()
		wantBits := 0
		for _, s := range syms {
			wantBits += code.Encode(w, s)
		}
		if w.Bits() != wantBits {
			t.Fatalf("writer holds %d bits, Encode reported %d", w.Bits(), wantBits)
		}
		r := bitio.NewReader(w.Bytes())
		for i, want := range syms {
			got, err := code.Decode(r)
			if err != nil {
				t.Fatalf("symbol %d: %v", i, err)
			}
			if got != want {
				t.Fatalf("symbol %d: decoded %d, want %d", i, got, want)
			}
		}
	})
}
