package huffman

import (
	"math"
	"testing"
	"testing/quick"

	"dophy/internal/coding/bitio"
	"dophy/internal/coding/model"
	"dophy/internal/rng"
)

func TestRoundTrip(t *testing.T) {
	c := Build([]uint32{50, 30, 15, 5})
	syms := []int{0, 1, 2, 3, 0, 0, 1, 3, 2, 0}
	w := bitio.NewWriter()
	for _, s := range syms {
		c.Encode(w, s)
	}
	r := bitio.NewReader(w.Bytes())
	for i, want := range syms {
		got, err := c.Decode(r)
		if err != nil || got != want {
			t.Fatalf("decode %d = %d (%v), want %d", i, got, err, want)
		}
	}
}

func TestKraftInequality(t *testing.T) {
	c := Build([]uint32{907, 50, 25, 10, 5, 2, 1})
	sum := 0.0
	for s := 0; s < 7; s++ {
		sum += math.Pow(2, -float64(c.Length(s)))
	}
	if sum > 1+1e-12 {
		t.Fatalf("Kraft sum = %v > 1: not a prefix code", sum)
	}
}

func TestOptimalForDyadic(t *testing.T) {
	// Dyadic distribution: Huffman achieves entropy exactly.
	freq := []uint32{8, 4, 2, 1, 1}
	c := Build(freq)
	want := []int{1, 2, 3, 4, 4}
	for s, w := range want {
		if c.Length(s) != w {
			t.Fatalf("length(%d) = %d, want %d", s, c.Length(s), w)
		}
	}
}

func TestAtLeastOneBitPerSymbol(t *testing.T) {
	// The structural disadvantage vs arithmetic coding: even a 99.9%
	// symbol costs a full bit.
	c := Build([]uint32{9990, 5, 3, 2})
	if c.Length(0) != 1 {
		t.Fatalf("dominant symbol length = %d, want 1", c.Length(0))
	}
	counts := []uint64{9990, 5, 3, 2}
	if got := c.ExpectedLength(counts); got < 1 {
		t.Fatalf("expected length %v < 1 bit, impossible for a prefix code", got)
	}
	h := model.Entropy([]uint32{9990, 5, 3, 2})
	if h >= 1 {
		t.Fatalf("test premise broken: entropy %v >= 1", h)
	}
}

func TestSingleSymbol(t *testing.T) {
	c := Build([]uint32{42})
	if c.Length(0) != 1 {
		t.Fatalf("unary alphabet length = %d", c.Length(0))
	}
	w := bitio.NewWriter()
	c.Encode(w, 0)
	r := bitio.NewReader(w.Bytes())
	if got, err := c.Decode(r); err != nil || got != 0 {
		t.Fatalf("unary roundtrip = %d, %v", got, err)
	}
}

func TestExpectedLengthNearEntropy(t *testing.T) {
	freq := []uint32{400, 300, 200, 100}
	c := Build(freq)
	counts := make([]uint64, len(freq))
	for i, f := range freq {
		counts[i] = uint64(f)
	}
	el := c.ExpectedLength(counts)
	h := model.Entropy(freq)
	if el < h || el > h+1 {
		t.Fatalf("expected length %v outside [H, H+1) = [%v, %v)", el, h, h+1)
	}
}

func TestDeterministicBuild(t *testing.T) {
	a := Build([]uint32{5, 5, 5, 5})
	b := Build([]uint32{5, 5, 5, 5})
	for s := 0; s < 4; s++ {
		if a.Length(s) != b.Length(s) {
			t.Fatal("nondeterministic code lengths")
		}
	}
}

func TestValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty": func() { Build(nil) },
		"zero":  func() { Build([]uint32{1, 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: random alphabets and streams roundtrip exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed uint64, alphaRaw, lenRaw uint8) bool {
		r := rng.New(seed)
		nsym := int(alphaRaw)%30 + 1
		freq := make([]uint32, nsym)
		for i := range freq {
			freq[i] = uint32(r.Intn(500) + 1)
		}
		c := Build(freq)
		n := int(lenRaw) % 100
		syms := make([]int, n)
		w := bitio.NewWriter()
		for i := range syms {
			syms[i] = r.Intn(nsym)
			c.Encode(w, syms[i])
		}
		rd := bitio.NewReader(w.Bytes())
		for _, want := range syms {
			got, err := c.Decode(rd)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	c := Build([]uint32{900, 60, 25, 10, 5})
	w := bitio.NewWriter()
	for i := 0; i < b.N; i++ {
		c.Encode(w, i%5)
	}
}

func TestDecodeRobustOnGarbage(t *testing.T) {
	c := Build([]uint32{900, 60, 25, 10, 5})
	r := rng.New(99)
	for trial := 0; trial < 2000; trial++ {
		n := r.Intn(16)
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(r.Intn(256))
		}
		rd := bitio.NewReader(data)
		for k := 0; k < 40; k++ {
			sym, err := c.Decode(rd)
			if err != nil {
				break
			}
			if sym < 0 || sym > 4 {
				t.Fatalf("invalid symbol %d from garbage", sym)
			}
		}
	}
}
