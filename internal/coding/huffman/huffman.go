// Package huffman implements canonical Huffman coding over the same
// frequency tables as the arithmetic coder. It exists as the ablation
// baseline for Dophy's encoding choice: a prefix code spends at least one
// bit per symbol, while the arithmetic coder spends the entropy — which is
// far below one bit when most hops need zero retransmissions.
package huffman

import (
	"container/heap"
	"errors"
	"sort"

	"dophy/internal/coding/bitio"
)

// Code is a built Huffman code for a fixed alphabet.
type Code struct {
	lengths []int    // code length per symbol
	codes   []uint32 // canonical code bits per symbol (MSB-aligned to length)
	// decoding tables (canonical): firstCode[len], firstIndex[len], symbols
	// ordered by (length, symbol).
	maxLen     int
	firstCode  []uint32
	firstIndex []int
	symOrder   []int
}

// Build constructs a canonical Huffman code from frequencies (each >= 1).
//
//dophy:readonly freq -- callers keep accumulating into the histogram after building a code from it
func Build(freq []uint32) *Code {
	n := len(freq)
	if n == 0 {
		panic("huffman: empty alphabet")
	}
	lengths := make([]int, n)
	if n == 1 {
		lengths[0] = 1
	} else {
		lengths = codeLengths(freq)
	}
	return fromLengths(lengths)
}

type hnode struct {
	weight uint64
	sym    int // -1 for internal
	left   *hnode
	right  *hnode
	order  int // tie-break for determinism
}

type hheap []*hnode

func (h hheap) Len() int { return len(h) }
func (h hheap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	return h[i].order < h[j].order
}
func (h hheap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *hheap) Push(x any)   { *h = append(*h, x.(*hnode)) }
func (h *hheap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

func codeLengths(freq []uint32) []int {
	var h hheap
	order := 0
	for sym, f := range freq {
		if f == 0 {
			panic("huffman: zero frequency")
		}
		h = append(h, &hnode{weight: uint64(f), sym: sym, order: order})
		order++
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*hnode)
		b := heap.Pop(&h).(*hnode)
		heap.Push(&h, &hnode{weight: a.weight + b.weight, sym: -1, left: a, right: b, order: order})
		order++
	}
	root := h[0]
	lengths := make([]int, len(freq))
	var walk func(n *hnode, depth int)
	walk = func(n *hnode, depth int) {
		if n.sym >= 0 {
			if depth == 0 {
				depth = 1
			}
			lengths[n.sym] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return lengths
}

// fromLengths assigns canonical codes from lengths.
func fromLengths(lengths []int) *Code {
	n := len(lengths)
	c := &Code{lengths: lengths, codes: make([]uint32, n)}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if lengths[order[a]] != lengths[order[b]] {
			return lengths[order[a]] < lengths[order[b]]
		}
		return order[a] < order[b]
	})
	for _, l := range lengths {
		if l > c.maxLen {
			c.maxLen = l
		}
	}
	c.firstCode = make([]uint32, c.maxLen+2)
	c.firstIndex = make([]int, c.maxLen+2)
	c.symOrder = order
	var code uint32
	idx := 0
	for length := 1; length <= c.maxLen; length++ {
		c.firstCode[length] = code
		c.firstIndex[length] = idx
		for idx < n && lengths[order[idx]] == length {
			c.codes[order[idx]] = code
			code++
			idx++
		}
		code <<= 1
	}
	return c
}

// Length returns the code length of sym in bits.
func (c *Code) Length(sym int) int { return c.lengths[sym] }

// Encode appends sym's codeword to w and returns its bit length.
func (c *Code) Encode(w *bitio.Writer, sym int) int {
	l := c.lengths[sym]
	w.WriteBits(uint64(c.codes[sym]), l)
	return l
}

// ErrCorrupt reports an undecodable bit pattern.
var ErrCorrupt = errors.New("huffman: corrupt stream")

// Decode reads one symbol from r.
func (c *Code) Decode(r *bitio.Reader) (int, error) {
	var code uint32
	for length := 1; length <= c.maxLen; length++ {
		code = code<<1 | uint32(r.ReadBit())
		// Count of codes at this length:
		next := c.firstIndex[length+1]
		if length == c.maxLen {
			next = len(c.symOrder)
		}
		count := next - c.firstIndex[length]
		if count > 0 && code >= c.firstCode[length] && code < c.firstCode[length]+uint32(count) {
			return c.symOrder[c.firstIndex[length]+int(code-c.firstCode[length])], nil
		}
	}
	return 0, ErrCorrupt
}

// ExpectedLength returns the mean code length in bits under the given
// distribution (counts).
func (c *Code) ExpectedLength(counts []uint64) float64 {
	var total, bits float64
	for sym, n := range counts {
		total += float64(n)
		bits += float64(n) * float64(c.lengths[sym])
	}
	if total == 0 {
		return 0
	}
	return bits / total
}
