package arith

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dophy/internal/coding/bitio"
)

// This file makes the encoder suspendable: a packet travelling hop by hop
// carries the emitted annotation bits plus the coder registers, and each
// forwarder resumes encoding where the previous hop stopped. The serialised
// register state is the constant in-flight overhead Dophy pays per packet
// (StateBytes), dropped once the sink finalises the stream.

// State is a suspended encoder: registers plus the partially-filled output
// byte. The completed output bytes travel separately (they are the
// annotation field itself).
type State struct {
	Low     uint32
	High    uint32
	Pending uint16
	// PartialBits is how many bits of Partial are valid (0..7).
	PartialBits uint8
	Partial     byte
}

// StateBytes is the serialised size of State: the per-packet in-flight
// overhead of distributed encoding (4+4+2+1+1).
const StateBytes = 12

// Marshal packs the state into exactly StateBytes bytes.
func (s State) Marshal() []byte {
	out := make([]byte, StateBytes)
	binary.BigEndian.PutUint32(out[0:], s.Low)
	binary.BigEndian.PutUint32(out[4:], s.High)
	binary.BigEndian.PutUint16(out[8:], s.Pending)
	out[10] = s.PartialBits
	out[11] = s.Partial
	return out
}

// UnmarshalState parses a buffer produced by Marshal.
func UnmarshalState(b []byte) (State, error) {
	if len(b) != StateBytes {
		return State{}, fmt.Errorf("arith: state is %d bytes, want %d", len(b), StateBytes)
	}
	s := State{
		Low:         binary.BigEndian.Uint32(b[0:]),
		High:        binary.BigEndian.Uint32(b[4:]),
		Pending:     binary.BigEndian.Uint16(b[8:]),
		PartialBits: b[10],
		Partial:     b[11],
	}
	if s.PartialBits > 7 {
		return State{}, errors.New("arith: partial bit count out of range")
	}
	return s, nil
}

// Suspend captures the encoder's registers and the writer's partial byte.
// The encoder must not be used afterwards until resumed.
func (e *Encoder) Suspend(w *bitio.Writer) State {
	if e.done {
		panic("arith: Suspend after Finish")
	}
	partial, nBits := w.Partial()
	if e.pending > int(^uint16(0)) {
		// 65k pending bits would need a stream of astronomically skewed
		// symbols; treat as corruption rather than silently truncating.
		panic("arith: pending bit count overflows state encoding")
	}
	return State{
		Low:         uint32(e.low),
		High:        uint32(e.high),
		Pending:     uint16(e.pending),
		PartialBits: uint8(nBits),
		Partial:     partial,
	}
}

// Resume reconstructs an encoder (and its writer) from a suspended state
// and the completed annotation bytes emitted so far.
func Resume(s State, completed []byte) (*Encoder, *bitio.Writer) {
	w := bitio.NewWriterFrom(completed, s.Partial, int(s.PartialBits))
	e := NewEncoder(w)
	e.low = uint64(s.Low)
	e.high = uint64(s.High)
	e.pending = int(s.Pending)
	return e, w
}
