package arith

import (
	"bytes"
	"testing"

	"dophy/internal/coding/model"
)

// fuzzStream interprets fuzz data as (alphabet size, frequency table,
// symbol stream): byte 0 picks n in [2,16], the next n bytes give strictly
// positive model frequencies, and the rest are symbols mod n.
func fuzzStream(data []byte) (*model.Static, []int, bool) {
	if len(data) < 3 {
		return nil, nil, false
	}
	n := 2 + int(data[0])%15
	if len(data) < 1+n {
		return nil, nil, false
	}
	freq := make([]uint32, n)
	for i := 0; i < n; i++ {
		freq[i] = 1 + uint32(data[1+i])
	}
	rest := data[1+n:]
	syms := make([]int, len(rest))
	for i, b := range rest {
		syms[i] = int(b) % n
	}
	return model.NewStatic(freq), syms, true
}

// retxSeed builds a seed corpus entry shaped like a real retransmission-
// count stream: a heavily zero-skewed model and a symbol stream where most
// hops deliver on the first attempt, a few need one or two retries, and a
// rare burst hits the tail.
func retxSeed(n int, pattern []byte) []byte {
	seed := []byte{byte(n - 2)} // decodes back to alphabet size n
	// Geometric-ish frequency table: 200, 100, 50, ...
	w := byte(200)
	for i := 0; i < n; i++ {
		seed = append(seed, w)
		w /= 2
	}
	return append(seed, pattern...)
}

func FuzzArithRoundtrip(f *testing.F) {
	// Typical epoch: ~85% zero-retransmission hops, occasional retries.
	f.Add(retxSeed(4, []byte{0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 2, 0, 0, 1, 0, 0, 0, 0, 0, 0}))
	// Bursty link: a clustered run of high counts mid-stream.
	f.Add(retxSeed(8, []byte{0, 0, 0, 5, 6, 7, 7, 4, 0, 0, 0, 0, 1, 0, 0, 0}))
	// Degenerate: every hop clean (the common steady-state epoch).
	f.Add(retxSeed(3, bytes.Repeat([]byte{0}, 64)))
	// Adversarial-ish: max-count tail symbols only.
	f.Add(retxSeed(16, bytes.Repeat([]byte{15}, 32)))
	// Empty symbol stream: encoder must still produce a decodable tail.
	f.Add(retxSeed(5, nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, syms, ok := fuzzStream(data)
		if !ok {
			t.Skip()
		}
		encoded, bits := EncodeAll(m, syms)
		if got, want := len(encoded), (bits+7)/8; got != want {
			t.Fatalf("EncodeAll returned %d bytes for %d bits", got, want)
		}
		decoded, err := DecodeAll(m, encoded, len(syms))
		if err != nil {
			t.Fatalf("DecodeAll(%d symbols): %v", len(syms), err)
		}
		if len(decoded) != len(syms) {
			t.Fatalf("decoded %d symbols, want %d", len(decoded), len(syms))
		}
		for i := range syms {
			if decoded[i] != syms[i] {
				t.Fatalf("symbol %d: decoded %d, want %d", i, decoded[i], syms[i])
			}
		}
	})
}
