package arith

import (
	"math"
	"testing"
	"testing/quick"

	"dophy/internal/coding/bitio"
	"dophy/internal/coding/model"
	"dophy/internal/rng"
)

func TestRoundTripStatic(t *testing.T) {
	m := model.NewStatic([]uint32{80, 10, 5, 3, 2})
	syms := []int{0, 0, 0, 1, 0, 2, 0, 0, 4, 3, 0, 0, 1, 0}
	data, bits := EncodeAll(m, syms)
	if bits <= 0 || len(data) == 0 {
		t.Fatalf("empty encoding: %d bits", bits)
	}
	got, err := DecodeAll(m, data, len(syms))
	if err != nil {
		t.Fatal(err)
	}
	for i := range syms {
		if got[i] != syms[i] {
			t.Fatalf("decode mismatch at %d: %v vs %v", i, got, syms)
		}
	}
}

func TestRoundTripAdaptive(t *testing.T) {
	syms := make([]int, 500)
	r := rng.New(1)
	for i := range syms {
		syms[i] = r.Geometric(0.6)
		if syms[i] > 7 {
			syms[i] = 7
		}
	}
	enc := model.NewAdaptive(8, 16, 1<<14)
	data, _ := EncodeAll(enc, syms)
	dec := model.NewAdaptive(8, 16, 1<<14)
	got, err := DecodeAll(dec, data, len(syms))
	if err != nil {
		t.Fatal(err)
	}
	for i := range syms {
		if got[i] != syms[i] {
			t.Fatalf("adaptive mismatch at %d", i)
		}
	}
}

func TestCompressionApproachesEntropy(t *testing.T) {
	// Skewed distribution: entropy well below 1 bit/symbol.
	freq := []uint32{900, 60, 25, 10, 5}
	m := model.NewStatic(freq)
	r := rng.New(2)
	const n = 20000
	syms := make([]int, n)
	counts := make([]uint64, len(freq))
	// Draw symbols from the model's own distribution.
	total := uint32(0)
	for _, f := range freq {
		total += f
	}
	for i := range syms {
		v := uint32(r.Intn(int(total)))
		s, _, _, _ := m.Find(v)
		syms[i] = s
		counts[s]++
	}
	_, bits := EncodeAll(m, syms)
	perSym := float64(bits) / n
	h := model.Entropy(freq)
	if perSym > h*1.05+0.01 {
		t.Fatalf("%.4f bits/sym vs entropy %.4f — coder too far from optimal", perSym, h)
	}
	if perSym < h*0.9 {
		t.Fatalf("%.4f bits/sym below entropy %.4f — impossible, coder broken", perSym, h)
	}
}

func TestSubBitPerSymbol(t *testing.T) {
	// The Dophy headline effect: near-certain symbol codes at << 1 bit.
	m := model.NewStatic([]uint32{990, 5, 3, 2})
	syms := make([]int, 1000) // all zeros
	_, bits := EncodeAll(m, syms)
	perSym := float64(bits) / 1000
	if perSym > 0.1 {
		t.Fatalf("all-zero stream cost %.3f bits/sym, want << 1", perSym)
	}
}

func TestEmptyStream(t *testing.T) {
	m := model.Uniform(4)
	data, bits := EncodeAll(m, nil)
	if bits == 0 && len(data) != 0 {
		t.Fatalf("inconsistent empty encode: %d bits, %d bytes", bits, len(data))
	}
	got, err := DecodeAll(m, data, 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty decode = %v, %v", got, err)
	}
}

func TestSingleSymbolAlphabetUnsupportedTotal(t *testing.T) {
	// A 1-symbol alphabet still roundtrips (0 information).
	m := model.Uniform(1)
	data, _ := EncodeAll(m, []int{0, 0, 0})
	got, err := DecodeAll(m, data, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range got {
		if s != 0 {
			t.Fatal("nonzero symbol from unary alphabet")
		}
	}
}

func TestEncodeAfterFinishPanics(t *testing.T) {
	w := bitio.NewWriter()
	e := NewEncoder(w)
	m := model.Uniform(2)
	e.Encode(m, 1)
	e.Finish()
	defer func() {
		if recover() == nil {
			t.Fatal("Encode after Finish did not panic")
		}
	}()
	e.Encode(m, 0)
}

func TestFinishIdempotent(t *testing.T) {
	w := bitio.NewWriter()
	e := NewEncoder(w)
	e.Encode(model.Uniform(2), 1)
	e.Finish()
	bits := w.Bits()
	e.Finish()
	if w.Bits() != bits {
		t.Fatal("second Finish emitted bits")
	}
}

func TestInterleavedModels(t *testing.T) {
	// Dophy encodes hop-id and retx-count symbols with different models in
	// one stream; verify interleaving works.
	hops := model.Uniform(6)
	counts := model.NewStatic([]uint32{70, 20, 10})
	w := bitio.NewWriter()
	e := NewEncoder(w)
	seq := []struct {
		m   Model
		sym int
	}{
		{hops, 3}, {counts, 0}, {hops, 5}, {counts, 2}, {hops, 0}, {counts, 1},
	}
	for _, s := range seq {
		e.Encode(s.m, s.sym)
	}
	e.Finish()
	d := NewDecoder(bitio.NewReader(w.Bytes()))
	for i, s := range seq {
		got, err := d.Decode(s.m)
		if err != nil || got != s.sym {
			t.Fatalf("interleaved decode %d = %d (%v), want %d", i, got, err, s.sym)
		}
	}
}

// Property: random symbol streams over random alphabets roundtrip exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed uint64, alphaRaw, lenRaw uint8) bool {
		r := rng.New(seed)
		nsym := int(alphaRaw)%20 + 2
		freq := make([]uint32, nsym)
		for i := range freq {
			freq[i] = uint32(r.Intn(1000) + 1)
		}
		m := model.NewStatic(freq)
		n := int(lenRaw)%200 + 1
		syms := make([]int, n)
		for i := range syms {
			syms[i] = r.Intn(nsym)
		}
		data, _ := EncodeAll(m, syms)
		got, err := DecodeAll(m, data, n)
		if err != nil {
			return false
		}
		for i := range syms {
			if got[i] != syms[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: adaptive encoder/decoder stay in sync on random streams.
func TestQuickAdaptiveSync(t *testing.T) {
	f := func(seed uint64, lenRaw uint8) bool {
		r := rng.New(seed)
		n := int(lenRaw)%300 + 1
		syms := make([]int, n)
		for i := range syms {
			syms[i] = r.Intn(10)
		}
		data, _ := EncodeAll(model.NewAdaptive(10, 8, 4096), syms)
		got, err := DecodeAll(model.NewAdaptive(10, 8, 4096), data, n)
		if err != nil {
			return false
		}
		for i := range syms {
			if got[i] != syms[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBitCountScalesWithSurprise(t *testing.T) {
	m := model.NewStatic([]uint32{99, 1})
	_, cheap := EncodeAll(m, []int{0, 0, 0, 0, 0, 0, 0, 0})
	_, dear := EncodeAll(m, []int{1, 1, 1, 1, 1, 1, 1, 1})
	if dear <= cheap {
		t.Fatalf("rare symbols (%d bits) not dearer than common (%d bits)", dear, cheap)
	}
	wantDear := 8 * math.Log2(100)
	if float64(dear) < wantDear*0.8 {
		t.Fatalf("rare symbol cost %d bits, want >= ~%.1f", dear, wantDear)
	}
}

func BenchmarkEncodeSkewed(b *testing.B) {
	m := model.NewStatic([]uint32{900, 60, 25, 10, 5})
	syms := make([]int, 1000)
	r := rng.New(3)
	for i := range syms {
		if r.Bool(0.1) {
			syms[i] = r.Intn(5)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeAll(m, syms)
	}
	b.SetBytes(int64(len(syms)))
}

func BenchmarkDecodeSkewed(b *testing.B) {
	m := model.NewStatic([]uint32{900, 60, 25, 10, 5})
	syms := make([]int, 1000)
	r := rng.New(3)
	for i := range syms {
		if r.Bool(0.1) {
			syms[i] = r.Intn(5)
		}
	}
	data, _ := EncodeAll(m, syms)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeAll(m, data, len(syms)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(syms)))
}

func TestSuspendResumeMatchesBatch(t *testing.T) {
	// Encoding symbols with a suspend/resume cycle between every symbol
	// must produce exactly the batch bitstream.
	m := model.NewStatic([]uint32{70, 20, 7, 3})
	r := rng.New(17)
	syms := make([]int, 300)
	for i := range syms {
		syms[i] = r.Intn(4)
	}
	wantData, wantBits := EncodeAll(m, syms)

	// Distributed: marshal the state after every symbol, as each hop would.
	w := bitio.NewWriter()
	e := NewEncoder(w)
	completed := []byte(nil)
	var st State
	for i, s := range syms {
		if i > 0 {
			raw := st.Marshal()
			st2, err := UnmarshalState(raw)
			if err != nil {
				t.Fatal(err)
			}
			e, w = Resume(st2, completed)
		}
		e.Encode(m, s)
		st = e.Suspend(w)
		completed = w.Completed()
	}
	e, w = Resume(st, completed)
	e.Finish()
	gotData, gotBits := w.Bytes(), w.Bits()
	if gotBits != wantBits {
		t.Fatalf("bit counts differ: distributed %d vs batch %d", gotBits, wantBits)
	}
	for i := range wantData {
		if gotData[i] != wantData[i] {
			t.Fatalf("bitstreams differ at byte %d", i)
		}
	}
	// And it must decode.
	got, err := DecodeAll(m, gotData, len(syms))
	if err != nil {
		t.Fatal(err)
	}
	for i := range syms {
		if got[i] != syms[i] {
			t.Fatalf("decode mismatch at %d", i)
		}
	}
}

func TestStateMarshalRoundTrip(t *testing.T) {
	s := State{Low: 0x12345678, High: 0x9abcdef0, Pending: 513, PartialBits: 5, Partial: 0xa8}
	got, err := UnmarshalState(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("roundtrip = %+v, want %+v", got, s)
	}
}

func TestStateUnmarshalValidation(t *testing.T) {
	if _, err := UnmarshalState(make([]byte, 5)); err == nil {
		t.Fatal("short state accepted")
	}
	bad := State{PartialBits: 3}.Marshal()
	bad[10] = 9 // invalid partial count
	if _, err := UnmarshalState(bad); err == nil {
		t.Fatal("bad partial count accepted")
	}
}

func TestSuspendAfterFinishPanics(t *testing.T) {
	w := bitio.NewWriter()
	e := NewEncoder(w)
	e.Encode(model.Uniform(2), 1)
	e.Finish()
	defer func() {
		if recover() == nil {
			t.Fatal("Suspend after Finish did not panic")
		}
	}()
	e.Suspend(w)
}

func TestDecodeRobustOnGarbage(t *testing.T) {
	// Arithmetic decoding of arbitrary bytes always yields valid symbols
	// (every code value maps to some interval) and never panics.
	m := model.NewStatic([]uint32{907, 50, 25, 10, 5, 2, 1})
	r := rng.New(123)
	for trial := 0; trial < 2000; trial++ {
		n := r.Intn(20)
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(r.Intn(256))
		}
		d := NewDecoder(bitio.NewReader(data))
		for k := 0; k < 50; k++ {
			sym, err := d.Decode(m)
			if err != nil {
				break
			}
			if sym < 0 || sym >= m.NumSymbols() {
				t.Fatalf("invalid symbol %d from garbage", sym)
			}
		}
	}
}
