// Package arith implements an integer arithmetic coder (Witten–Neal–Cleary
// style with 32-bit registers) over pluggable frequency models.
//
// This is the compression engine behind Dophy's in-packet encoding of
// retransmission counts: with a shared static model whose mass concentrates
// on "zero retransmissions", each hop record costs a fraction of a bit —
// below what any prefix code (e.g. Huffman) can achieve, which is exactly
// the ablation T1/T2 in DESIGN.md measures.
package arith

import (
	"errors"

	"dophy/internal/coding/bitio"
)

// Model supplies cumulative frequencies for coding. Implementations must
// guarantee: every symbol has frequency >= 1, and Total() <= MaxTotal.
type Model interface {
	// NumSymbols returns the alphabet size.
	NumSymbols() int
	// Range returns the cumulative interval [low, high) of sym and the
	// current total. 0 <= low < high <= total.
	Range(sym int) (low, high, total uint32)
	// Find returns the symbol whose interval contains the cumulative value
	// v in [0, total), along with its interval.
	Find(v uint32) (sym int, low, high, total uint32)
	// Update adapts the model after coding sym. Static models no-op.
	// Encoder and decoder call it identically, keeping them in sync.
	Update(sym int)
}

// MaxTotal bounds model totals so the 64-bit range arithmetic cannot
// overflow or starve intervals.
const MaxTotal = 1 << 24

const (
	codeBits = 32
	topBit   = uint64(1) << (codeBits - 1) // "half"
	quarter  = topBit >> 1
	mask     = (uint64(1) << codeBits) - 1
)

// Encoder writes arithmetic-coded symbols to a bit writer.
type Encoder struct {
	low     uint64
	high    uint64
	pending int
	w       *bitio.Writer
	done    bool
}

// NewEncoder returns an encoder emitting to w.
func NewEncoder(w *bitio.Writer) *Encoder {
	//dophy:allow hotpathalloc -- one encoder per packet in flight is the modeled in-packet state; steady paths use Reset
	return &Encoder{high: mask, w: w}
}

// Reset rewinds the encoder to its initial state, emitting to w — the
// allocation-free equivalent of NewEncoder for reusable scratch encoders.
func (e *Encoder) Reset(w *bitio.Writer) {
	e.low, e.high, e.pending, e.done = 0, mask, 0, false
	e.w = w
}

func (e *Encoder) emit(bit int) {
	e.w.WriteBit(bit)
	for ; e.pending > 0; e.pending-- {
		e.w.WriteBit(1 - bit)
	}
}

// Encode codes one symbol under m and updates m.
//
//dophy:hotpath
func (e *Encoder) Encode(m Model, sym int) {
	if e.done {
		panic("arith: Encode after Finish")
	}
	lo, hi, total := m.Range(sym)
	if total == 0 || lo >= hi || uint64(total) > MaxTotal {
		panic("arith: invalid model interval")
	}
	span := e.high - e.low + 1
	e.high = e.low + span*uint64(hi)/uint64(total) - 1
	e.low = e.low + span*uint64(lo)/uint64(total)
	for {
		switch {
		case e.high < topBit:
			e.emit(0)
		case e.low >= topBit:
			e.emit(1)
			e.low -= topBit
			e.high -= topBit
		case e.low >= quarter && e.high < topBit+quarter:
			e.pending++
			e.low -= quarter
			e.high -= quarter
		default:
			m.Update(sym)
			return
		}
		e.low = (e.low << 1) & mask
		e.high = ((e.high << 1) | 1) & mask
	}
}

// Finish flushes the final disambiguation bits. The encoder cannot be used
// afterwards.
//
//dophy:hotpath
func (e *Encoder) Finish() {
	if e.done {
		return
	}
	e.done = true
	e.pending++
	if e.low < quarter {
		e.emit(0)
	} else {
		e.emit(1)
	}
}

// Decoder reads arithmetic-coded symbols from a bit reader.
type Decoder struct {
	low   uint64
	high  uint64
	value uint64
	r     *bitio.Reader
}

// NewDecoder returns a decoder consuming from r.
func NewDecoder(r *bitio.Reader) *Decoder {
	d := &Decoder{}
	d.Reset(r)
	return d
}

// Reset re-primes the decoder from the start of r — the allocation-free
// equivalent of NewDecoder for reusable scratch decoders.
func (d *Decoder) Reset(r *bitio.Reader) {
	d.low, d.high, d.value, d.r = 0, mask, 0, r
	for i := 0; i < codeBits; i++ {
		d.value = d.value<<1 | uint64(r.ReadBit())
	}
}

// ErrCorrupt reports an undecodable stream (model/stream mismatch).
var ErrCorrupt = errors.New("arith: corrupt stream")

// Decode extracts one symbol under m and updates m.
//
//dophy:hotpath
func (d *Decoder) Decode(m Model) (int, error) {
	span := d.high - d.low + 1
	_, _, total := m.Range(0)
	if total == 0 {
		return 0, ErrCorrupt
	}
	cum := ((d.value-d.low+1)*uint64(total) - 1) / span
	if cum >= uint64(total) {
		return 0, ErrCorrupt
	}
	sym, lo, hi, _ := m.Find(uint32(cum))
	d.high = d.low + span*uint64(hi)/uint64(total) - 1
	d.low = d.low + span*uint64(lo)/uint64(total)
	for {
		switch {
		case d.high < topBit:
			// nothing
		case d.low >= topBit:
			d.low -= topBit
			d.high -= topBit
			d.value -= topBit
		case d.low >= quarter && d.high < topBit+quarter:
			d.low -= quarter
			d.high -= quarter
			d.value -= quarter
		default:
			m.Update(sym)
			return sym, nil
		}
		d.low = (d.low << 1) & mask
		d.high = ((d.high << 1) | 1) & mask
		d.value = (d.value<<1 | uint64(d.r.ReadBit())) & mask
	}
}

// EncodeAll codes symbols with fresh encoder state and returns the bytes and
// exact bit count. The model is updated along the way (pass a static model
// or a fresh adaptive clone depending on the protocol).
func EncodeAll(m Model, symbols []int) (data []byte, bits int) {
	w := bitio.NewWriter()
	e := NewEncoder(w)
	for _, s := range symbols {
		e.Encode(m, s)
	}
	e.Finish()
	return w.Bytes(), w.Bits()
}

// DecodeAll decodes exactly n symbols from data.
func DecodeAll(m Model, data []byte, n int) ([]int, error) {
	d := NewDecoder(bitio.NewReader(data))
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		s, err := d.Decode(m)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
