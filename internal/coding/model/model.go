// Package model provides the frequency models driving the arithmetic coder:
// static tables (shared between encoder nodes and the sink decoder),
// adaptive tables, symbol aggregation (Dophy optimisation 1) and
// quantisation + serialisation of tables for periodic dissemination (Dophy
// optimisation 2), plus entropy utilities used to reason about overhead.
package model

import (
	"fmt"
	"math"
	"sort"
)

// Static is an immutable frequency table implementing arith.Model.
type Static struct {
	freq []uint32
	cum  []uint32 // cum[i] = sum of freq[:i]; len = n+1
}

// NewStatic builds a static model. Every frequency must be >= 1 so that all
// symbols stay codable; the total must fit the coder's MaxTotal (callers
// use Quantize to guarantee this).
func NewStatic(freq []uint32) *Static {
	if len(freq) == 0 {
		panic("model: empty frequency table")
	}
	cum := make([]uint32, len(freq)+1)
	for i, f := range freq {
		if f == 0 {
			panic(fmt.Sprintf("model: symbol %d has zero frequency", i))
		}
		cum[i+1] = cum[i] + f
	}
	cp := make([]uint32, len(freq))
	copy(cp, freq)
	return &Static{freq: cp, cum: cum}
}

// Uniform returns a static model with equal mass on n symbols.
func Uniform(n int) *Static {
	if n < 1 {
		panic("model: uniform model needs n >= 1")
	}
	freq := make([]uint32, n)
	for i := range freq {
		freq[i] = 1
	}
	return NewStatic(freq)
}

// NumSymbols implements arith.Model.
func (s *Static) NumSymbols() int { return len(s.freq) }

// Range implements arith.Model.
func (s *Static) Range(sym int) (low, high, total uint32) {
	return s.cum[sym], s.cum[sym+1], s.cum[len(s.freq)]
}

// Find implements arith.Model via binary search. Open-coded rather than
// sort.Search: the predicate closure would allocate on every decoded
// symbol.
func (s *Static) Find(v uint32) (sym int, low, high, total uint32) {
	i := findCum(s.cum, len(s.freq), v)
	return i, s.cum[i], s.cum[i+1], s.cum[len(s.freq)]
}

// findCum returns the smallest i in [0, n) with cum[i+1] > v, assuming
// cum is non-decreasing with cum[n] > v (total mass exceeds any code
// value the caller probes).
func findCum(cum []uint32, n int, v uint32) int {
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cum[mid+1] > v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Update implements arith.Model (no-op for static tables).
func (s *Static) Update(int) {}

// Freqs returns a copy of the table.
func (s *Static) Freqs() []uint32 {
	out := make([]uint32, len(s.freq))
	copy(out, s.freq)
	return out
}

// Adaptive is a frequency table that learns as symbols are coded. Encoder
// and decoder must perform identical Update sequences to stay in sync.
type Adaptive struct {
	freq      []uint32
	cum       []uint32
	total     uint32
	increment uint32
	limit     uint32
	dirty     bool
}

// NewAdaptive starts from a uniform table over n symbols. increment is the
// mass added per observation; the table halves when the total exceeds limit
// (keeping every symbol codable).
func NewAdaptive(n int, increment, limit uint32) *Adaptive {
	if n < 1 {
		panic("model: adaptive model needs n >= 1")
	}
	if increment == 0 || limit < uint32(n)*2 {
		panic("model: bad adaptive parameters")
	}
	a := &Adaptive{
		freq:      make([]uint32, n),
		cum:       make([]uint32, n+1),
		increment: increment,
		limit:     limit,
	}
	for i := range a.freq {
		a.freq[i] = 1
	}
	a.rebuild()
	return a
}

func (a *Adaptive) rebuild() {
	for i, f := range a.freq {
		a.cum[i+1] = a.cum[i] + f
	}
	a.total = a.cum[len(a.freq)]
	a.dirty = false
}

// NumSymbols implements arith.Model.
func (a *Adaptive) NumSymbols() int { return len(a.freq) }

// Range implements arith.Model.
func (a *Adaptive) Range(sym int) (low, high, total uint32) {
	if a.dirty {
		a.rebuild()
	}
	return a.cum[sym], a.cum[sym+1], a.cum[len(a.freq)]
}

// Find implements arith.Model. Open-coded binary search for the same
// reason as Static.Find.
func (a *Adaptive) Find(v uint32) (sym int, low, high, total uint32) {
	if a.dirty {
		a.rebuild()
	}
	i := findCum(a.cum, len(a.freq), v)
	return i, a.cum[i], a.cum[i+1], a.cum[len(a.freq)]
}

// Update implements arith.Model: add mass to sym, rescaling at the limit.
func (a *Adaptive) Update(sym int) {
	a.freq[sym] += a.increment
	a.total += a.increment
	a.dirty = true
	if a.total > a.limit {
		a.total = 0
		for i := range a.freq {
			a.freq[i] = (a.freq[i] + 1) / 2
			if a.freq[i] == 0 {
				a.freq[i] = 1
			}
			a.total += a.freq[i]
		}
	}
}

// Aggregator implements Dophy optimisation 1: retransmission counts at or
// above Threshold collapse into one tail symbol. A packet's exact count is
// then censored, which the estimator accounts for.
type Aggregator struct {
	// Threshold is the first aggregated count; counts 0..Threshold-1 keep
	// dedicated symbols. Threshold <= 0 means no aggregation.
	Threshold int
	// MaxCount is the largest possible raw count (MAC attempts - 1).
	MaxCount int
}

// NumSymbols returns the size of the aggregated alphabet.
func (g Aggregator) NumSymbols() int {
	if g.Threshold <= 0 || g.Threshold > g.MaxCount {
		return g.MaxCount + 1
	}
	return g.Threshold + 1
}

// Map converts a raw retransmission count to a symbol.
func (g Aggregator) Map(count int) int {
	if count < 0 || count > g.MaxCount {
		panic(fmt.Sprintf("model: count %d outside [0,%d]", count, g.MaxCount))
	}
	if g.Threshold <= 0 || g.Threshold > g.MaxCount {
		return count
	}
	if count >= g.Threshold {
		return g.Threshold
	}
	return count
}

// IsTail reports whether sym is the aggregated (censored) tail symbol.
func (g Aggregator) IsTail(sym int) bool {
	return g.Threshold > 0 && g.Threshold <= g.MaxCount && sym == g.Threshold
}

// Quantize converts observed symbol counts into a frequency table with the
// given total mass (>= alphabet size), every entry >= 1 — the shape required
// by the coder and compact to disseminate. Largest-remainder apportionment
// keeps the quantised distribution close to the empirical one.
func Quantize(counts []uint64, total uint32) []uint32 {
	n := len(counts)
	if n == 0 {
		panic("model: quantize of empty counts")
	}
	if total < uint32(n) {
		panic("model: total below alphabet size")
	}
	var sum uint64
	for _, c := range counts {
		sum += c
	}
	out := make([]uint32, n)
	if sum == 0 {
		// No observations: uniform.
		base := total / uint32(n)
		rem := total % uint32(n)
		for i := range out {
			out[i] = base
			if uint32(i) < rem {
				out[i]++
			}
		}
		return out
	}
	// Reserve 1 per symbol, apportion the rest proportionally.
	spare := total - uint32(n)
	type frac struct {
		idx int
		rem float64
	}
	fracs := make([]frac, n)
	var used uint32
	for i, c := range counts {
		exact := float64(c) / float64(sum) * float64(spare)
		fl := uint32(exact)
		out[i] = 1 + fl
		used += fl
		fracs[i] = frac{i, exact - float64(fl)}
	}
	sort.Slice(fracs, func(a, b int) bool {
		if fracs[a].rem != fracs[b].rem {
			return fracs[a].rem > fracs[b].rem
		}
		return fracs[a].idx < fracs[b].idx
	})
	for k := uint32(0); k < spare-used; k++ {
		out[fracs[k%uint32(n)].idx]++
	}
	return out
}

// TableBits is the dissemination cost of one quantised table in bits:
// each frequency is sent as a fixed-width field sized for the total.
func TableBits(n int, total uint32) int {
	width := 1
	for (uint32(1) << width) < total {
		width++
	}
	return n * width
}

// Serialize packs a frequency table into bytes (fixed width per entry).
func Serialize(freq []uint32, total uint32) []byte {
	width := 1
	for (uint32(1) << width) < total {
		width++
	}
	bits := len(freq) * width
	out := make([]byte, (bits+7)/8)
	pos := 0
	for _, f := range freq {
		for i := width - 1; i >= 0; i-- {
			if f>>uint(i)&1 == 1 {
				out[pos>>3] |= 1 << uint(7-pos&7)
			}
			pos++
		}
	}
	return out
}

// Deserialize unpacks n frequencies serialised with Serialize.
func Deserialize(data []byte, n int, total uint32) ([]uint32, error) {
	width := 1
	for (uint32(1) << width) < total {
		width++
	}
	if len(data)*8 < n*width {
		return nil, fmt.Errorf("model: table data too short: %d bytes for %d x %d bits", len(data), n, width)
	}
	out := make([]uint32, n)
	pos := 0
	for i := range out {
		var v uint32
		for b := 0; b < width; b++ {
			v = v<<1 | uint32(data[pos>>3]>>uint(7-pos&7)&1)
			pos++
		}
		out[i] = v
	}
	return out, nil
}

// Entropy returns the Shannon entropy (bits/symbol) of the distribution
// induced by freq.
func Entropy(freq []uint32) float64 {
	var total float64
	for _, f := range freq {
		total += float64(f)
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, f := range freq {
		if f == 0 {
			continue
		}
		p := float64(f) / total
		h -= p * math.Log2(p)
	}
	return h
}

// CrossEntropy returns the expected bits/symbol when data distributed as p
// (counts) is coded with a model shaped like q (freqs). This is the exact
// asymptotic in-packet cost of coding with a stale model — the quantity
// Dophy's periodic model update (optimisation 2) minimises.
func CrossEntropy(p []uint64, q []uint32) float64 {
	if len(p) != len(q) {
		panic("model: cross-entropy length mismatch")
	}
	var pt float64
	for _, c := range p {
		pt += float64(c)
	}
	var qt float64
	for _, f := range q {
		qt += float64(f)
	}
	if pt == 0 || qt == 0 {
		return 0
	}
	h := 0.0
	for i := range p {
		if p[i] == 0 {
			continue
		}
		pi := float64(p[i]) / pt
		qi := float64(q[i]) / qt
		h -= pi * math.Log2(qi)
	}
	return h
}
