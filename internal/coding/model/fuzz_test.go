package model

import (
	"encoding/binary"
	"testing"
)

// refFindCum is the obviously-correct linear scan findCum replaces: the
// smallest i in [0, n) with cum[i+1] > v. It shares findCum's contract
// that cum[n] > v, so the loop always returns.
func refFindCum(cum []uint32, n int, v uint32) int {
	for i := 0; i < n; i++ {
		if cum[i+1] > v {
			return i
		}
	}
	panic("refFindCum: cum[n] <= v violates the findCum contract")
}

// fuzzCum decodes fuzz data as (alphabet size, frequency table, probe
// value): byte 0 picks n in [1,32], the next n bytes give strictly
// positive frequencies, and the final 4 bytes select v below the total
// mass — the same contract Find is called under by the decoder.
func fuzzCum(data []byte) (cum []uint32, n int, v uint32, ok bool) {
	if len(data) < 6 {
		return nil, 0, 0, false
	}
	n = 1 + int(data[0])%32
	if len(data) < 1+n+4 {
		return nil, 0, 0, false
	}
	cum = make([]uint32, n+1)
	for i := 0; i < n; i++ {
		cum[i+1] = cum[i] + 1 + uint32(data[1+i])
	}
	v = binary.LittleEndian.Uint32(data[1+n:]) % cum[n]
	return cum, n, v, true
}

func FuzzFindCum(f *testing.F) {
	// Single symbol: every probe must land on 0.
	f.Add([]byte{0, 9, 0, 0, 0, 0})
	// Uniform table, probe in the middle of the range.
	f.Add([]byte{7, 1, 1, 1, 1, 1, 1, 1, 1, 3, 0, 0, 0})
	// Skewed table shaped like a retransmission-count model.
	f.Add([]byte{3, 200, 40, 8, 2, 0xff, 0xff, 0xff, 0xff})
	// Probe at the very top of the mass (v = total-1 after mod).
	f.Add([]byte{1, 1, 1, 0xfe, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		cum, n, v, ok := fuzzCum(data)
		if !ok {
			t.Skip()
		}
		got := findCum(cum, n, v)
		want := refFindCum(cum, n, v)
		if got != want {
			t.Fatalf("findCum(n=%d, v=%d) = %d, want %d (cum=%v)", n, v, got, want, cum)
		}
		// The returned bucket must actually bracket v, independent of the
		// reference: cum[i] <= v < cum[i+1].
		if cum[got] > v || v >= cum[got+1] {
			t.Fatalf("findCum(n=%d, v=%d) = %d does not bracket v: cum[%d]=%d cum[%d]=%d",
				n, v, got, got, cum[got], got+1, cum[got+1])
		}
	})
}
