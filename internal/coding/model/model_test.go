package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStaticRanges(t *testing.T) {
	s := NewStatic([]uint32{3, 5, 2})
	cases := []struct{ sym, lo, hi int }{{0, 0, 3}, {1, 3, 8}, {2, 8, 10}}
	for _, c := range cases {
		lo, hi, total := s.Range(c.sym)
		if int(lo) != c.lo || int(hi) != c.hi || total != 10 {
			t.Fatalf("Range(%d) = %d,%d,%d", c.sym, lo, hi, total)
		}
	}
}

func TestStaticFindInverseOfRange(t *testing.T) {
	s := NewStatic([]uint32{3, 5, 2})
	for v := uint32(0); v < 10; v++ {
		sym, lo, hi, _ := s.Find(v)
		if v < lo || v >= hi {
			t.Fatalf("Find(%d) interval [%d,%d) does not contain it", v, lo, hi)
		}
		wantSym := 0
		switch {
		case v >= 8:
			wantSym = 2
		case v >= 3:
			wantSym = 1
		}
		if sym != wantSym {
			t.Fatalf("Find(%d) = %d, want %d", v, sym, wantSym)
		}
	}
}

func TestStaticValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":     func() { NewStatic(nil) },
		"zero freq": func() { NewStatic([]uint32{1, 0, 2}) },
		"uniform 0": func() { Uniform(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestUniform(t *testing.T) {
	u := Uniform(4)
	for s := 0; s < 4; s++ {
		lo, hi, total := u.Range(s)
		if hi-lo != 1 || total != 4 {
			t.Fatalf("Uniform Range(%d) = %d,%d,%d", s, lo, hi, total)
		}
	}
}

func TestFreqsCopies(t *testing.T) {
	s := NewStatic([]uint32{1, 2})
	f := s.Freqs()
	f[0] = 99
	if lo, hi, _ := s.Range(0); hi-lo != 1 {
		t.Fatal("Freqs exposed internal state")
	}
}

func TestAdaptiveLearns(t *testing.T) {
	a := NewAdaptive(4, 10, 1<<16)
	lo0, hi0, tot0 := a.Range(2)
	w0 := float64(hi0-lo0) / float64(tot0)
	for i := 0; i < 50; i++ {
		a.Update(2)
	}
	lo1, hi1, tot1 := a.Range(2)
	w1 := float64(hi1-lo1) / float64(tot1)
	if w1 <= w0*2 {
		t.Fatalf("adaptive weight did not grow: %v -> %v", w0, w1)
	}
}

func TestAdaptiveRescaleKeepsSymbolsCodable(t *testing.T) {
	a := NewAdaptive(3, 100, 250) // rescales constantly
	for i := 0; i < 1000; i++ {
		a.Update(0)
	}
	for s := 0; s < 3; s++ {
		lo, hi, _ := a.Range(s)
		if hi <= lo {
			t.Fatalf("symbol %d lost its interval after rescales", s)
		}
	}
	_, _, total := a.Range(0)
	if total > 250+100 {
		t.Fatalf("total %d exceeded limit", total)
	}
}

func TestAdaptiveValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"n=0":        func() { NewAdaptive(0, 1, 100) },
		"inc=0":      func() { NewAdaptive(4, 0, 100) },
		"tiny limit": func() { NewAdaptive(4, 1, 7) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAggregatorMapping(t *testing.T) {
	g := Aggregator{Threshold: 3, MaxCount: 7}
	if g.NumSymbols() != 4 {
		t.Fatalf("NumSymbols = %d", g.NumSymbols())
	}
	wants := map[int]int{0: 0, 1: 1, 2: 2, 3: 3, 4: 3, 7: 3}
	for count, want := range wants {
		if got := g.Map(count); got != want {
			t.Fatalf("Map(%d) = %d, want %d", count, got, want)
		}
	}
	if !g.IsTail(3) || g.IsTail(2) {
		t.Fatal("IsTail wrong")
	}
}

func TestAggregatorDisabled(t *testing.T) {
	g := Aggregator{Threshold: 0, MaxCount: 7}
	if g.NumSymbols() != 8 {
		t.Fatalf("NumSymbols = %d", g.NumSymbols())
	}
	for c := 0; c <= 7; c++ {
		if g.Map(c) != c {
			t.Fatal("identity mapping broken")
		}
	}
	if g.IsTail(7) {
		t.Fatal("disabled aggregator has no tail")
	}
	// Threshold beyond MaxCount also disables.
	g2 := Aggregator{Threshold: 9, MaxCount: 7}
	if g2.NumSymbols() != 8 || g2.IsTail(7) {
		t.Fatal("out-of-range threshold should disable aggregation")
	}
}

func TestAggregatorPanicsOutOfRange(t *testing.T) {
	g := Aggregator{Threshold: 2, MaxCount: 7}
	for _, c := range []int{-1, 8} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Map(%d) did not panic", c)
				}
			}()
			g.Map(c)
		}()
	}
}

func TestQuantizeSumsToTotal(t *testing.T) {
	q := Quantize([]uint64{100, 10, 1, 0}, 256)
	var sum uint32
	for _, f := range q {
		if f == 0 {
			t.Fatalf("quantized zero frequency: %v", q)
		}
		sum += f
	}
	if sum != 256 {
		t.Fatalf("quantized total = %d, want 256", sum)
	}
	if q[0] < q[1] || q[1] < q[2] {
		t.Fatalf("quantization lost ordering: %v", q)
	}
}

func TestQuantizeEmptyCountsUniform(t *testing.T) {
	q := Quantize([]uint64{0, 0, 0}, 10)
	if q[0]+q[1]+q[2] != 10 {
		t.Fatalf("total = %v", q)
	}
	for _, f := range q {
		if f < 3 || f > 4 {
			t.Fatalf("non-uniform fallback: %v", q)
		}
	}
}

func TestQuantizePreservesDistribution(t *testing.T) {
	counts := []uint64{800, 150, 40, 10}
	q := Quantize(counts, 1024)
	var total uint32
	for _, f := range q {
		total += f
	}
	for i := range counts {
		want := float64(counts[i]) / 1000
		got := float64(q[i]) / float64(total)
		if math.Abs(want-got) > 0.01 {
			t.Fatalf("symbol %d: quantized %v vs true %v", i, got, want)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	freq := []uint32{100, 50, 25, 12, 69}
	const total = 256
	data := Serialize(freq, total)
	got, err := Deserialize(data, len(freq), total)
	if err != nil {
		t.Fatal(err)
	}
	for i := range freq {
		if got[i] != freq[i] {
			t.Fatalf("roundtrip = %v, want %v", got, freq)
		}
	}
}

func TestDeserializeShortData(t *testing.T) {
	if _, err := Deserialize([]byte{0x01}, 5, 256); err == nil {
		t.Fatal("short data accepted")
	}
}

func TestTableBitsMatchesSerialize(t *testing.T) {
	freq := []uint32{1, 2, 3, 250}
	const total = 256
	bits := TableBits(len(freq), total)
	data := Serialize(freq, total)
	if (bits+7)/8 != len(data) {
		t.Fatalf("TableBits %d inconsistent with %d bytes", bits, len(data))
	}
}

func TestEntropy(t *testing.T) {
	if h := Entropy([]uint32{1, 1}); math.Abs(h-1) > 1e-12 {
		t.Fatalf("fair coin entropy = %v", h)
	}
	if h := Entropy([]uint32{1, 1, 1, 1}); math.Abs(h-2) > 1e-12 {
		t.Fatalf("4-uniform entropy = %v", h)
	}
	if h := Entropy([]uint32{100}); h != 0 {
		t.Fatalf("deterministic entropy = %v", h)
	}
}

func TestCrossEntropyAtLeastEntropy(t *testing.T) {
	p := []uint64{90, 7, 3}
	matched := Quantize(p, 1<<16)
	hMatched := CrossEntropy(p, matched)
	stale := []uint32{1, 1, 1} // uniform (wrong) model
	hStale := CrossEntropy(p, stale)
	if hStale <= hMatched {
		t.Fatalf("stale model (%v bits) not worse than matched (%v bits)", hStale, hMatched)
	}
}

// Property: quantize always sums to total with all entries >= 1.
func TestQuickQuantize(t *testing.T) {
	f := func(raw []uint16, totRaw uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		counts := make([]uint64, len(raw))
		for i, v := range raw {
			counts[i] = uint64(v)
		}
		total := uint32(totRaw) + uint32(len(raw)) // ensure >= n
		q := Quantize(counts, total)
		var sum uint32
		for _, f := range q {
			if f == 0 {
				return false
			}
			sum += f
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
