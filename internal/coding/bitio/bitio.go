// Package bitio provides MSB-first bit-level readers and writers over byte
// slices, the transport for the arithmetic coder's output.
package bitio

// Writer accumulates bits MSB-first into a growing byte slice.
type Writer struct {
	buf  []byte
	cur  byte
	nCur int // bits currently buffered in cur
	bits int // total bits written
}

// NewWriter returns an empty writer.
//
//dophy:allow hotpathalloc -- one writer per packet in flight is the modeled in-packet state; steady paths use Reset
func NewWriter() *Writer { return &Writer{} }

// Reset empties the writer for reuse, keeping the backing buffer so
// steady-state encoding performs no allocation.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.nCur, w.bits = 0, 0, 0
}

// WriteBit appends a single bit (any non-zero b counts as 1).
//
//dophy:hotpath
func (w *Writer) WriteBit(b int) {
	w.cur <<= 1
	if b != 0 {
		w.cur |= 1
	}
	w.nCur++
	w.bits++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

// WriteBits appends the low n bits of v, most significant first. n must be
// in [0, 64].
//
//dophy:hotpath
func (w *Writer) WriteBits(v uint64, n int) {
	if n < 0 || n > 64 {
		panic("bitio: WriteBits width out of range")
	}
	for i := n - 1; i >= 0; i-- {
		w.WriteBit(int(v >> uint(i) & 1))
	}
}

// Bits returns the number of bits written so far.
func (w *Writer) Bits() int { return w.bits }

// Partial returns the partially-filled trailing byte and how many of its
// low-order-written bits are valid (0..7). Completed() returns the full
// bytes. Together they allow a writer to be suspended and resumed.
func (w *Writer) Partial() (b byte, n int) { return w.cur, w.nCur }

// Completed returns the fully-written bytes (without the partial byte).
// The returned slice is a copy.
func (w *Writer) Completed() []byte {
	//dophy:allow hotpathalloc -- the copy is the in-packet payload snapshot carried between hops; it is the modeled artifact
	out := make([]byte, len(w.buf))
	copy(out, w.buf)
	return out
}

// NewWriterFrom reconstructs a writer from completed bytes plus a partial
// byte holding n valid bits — the inverse of Completed/Partial.
func NewWriterFrom(completed []byte, partial byte, n int) *Writer {
	if n < 0 || n > 7 {
		panic("bitio: partial bit count out of range")
	}
	//dophy:allow hotpathalloc -- resuming a suspended in-packet stream needs its own backing buffer (the stream is per packet)
	w := &Writer{
		buf:  append([]byte(nil), completed...),
		cur:  partial,
		nCur: n,
		bits: len(completed)*8 + n,
	}
	return w
}

// Bytes returns the written bits padded with zeros to a byte boundary. The
// writer remains usable; Bytes may be called repeatedly.
func (w *Writer) Bytes() []byte {
	return w.AppendBytes(nil)
}

// AppendBytes appends the written bits, zero-padded to a byte boundary, to
// dst and returns the extended slice — the allocation-free variant of Bytes
// for callers that own a scratch buffer.
func (w *Writer) AppendBytes(dst []byte) []byte {
	dst = append(dst, w.buf...)
	if w.nCur > 0 {
		dst = append(dst, w.cur<<uint(8-w.nCur))
	}
	return dst
}

// Reader consumes bits MSB-first from a byte slice. Reads past the end
// return zero bits, which is exactly the convention the arithmetic decoder
// needs to flush its final symbols.
type Reader struct {
	buf  []byte
	pos  int // bit position
	over int // bits read past the end
}

// NewReader wraps buf (not copied).
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Reset points the reader at buf (not copied) and rewinds it, for reuse
// without allocation.
func (r *Reader) Reset(buf []byte) {
	r.buf = buf
	r.pos, r.over = 0, 0
}

// ReadBit returns the next bit, or 0 once the input is exhausted.
//
//dophy:hotpath
func (r *Reader) ReadBit() int {
	byteIdx := r.pos >> 3
	if byteIdx >= len(r.buf) {
		r.over++
		r.pos++
		return 0
	}
	bit := int(r.buf[byteIdx]>>uint(7-r.pos&7)) & 1
	r.pos++
	return bit
}

// ReadBits returns the next n bits as the low bits of a uint64, MSB-first.
//
//dophy:hotpath
func (r *Reader) ReadBits(n int) uint64 {
	if n < 0 || n > 64 {
		panic("bitio: ReadBits width out of range")
	}
	var v uint64
	for i := 0; i < n; i++ {
		v = v<<1 | uint64(r.ReadBit())
	}
	return v
}

// BitsRead returns how many bits have been consumed (including synthetic
// zero bits past the end).
func (r *Reader) BitsRead() int { return r.pos }

// Overrun returns how many bits were read past the end of the buffer.
func (r *Reader) Overrun() int { return r.over }
