package bitio

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestWriteReadBits(t *testing.T) {
	w := NewWriter()
	w.WriteBit(1)
	w.WriteBit(0)
	w.WriteBit(1)
	w.WriteBits(0b1101, 4)
	if w.Bits() != 7 {
		t.Fatalf("Bits() = %d", w.Bits())
	}
	r := NewReader(w.Bytes())
	got := r.ReadBits(7)
	if got != 0b1011101 {
		t.Fatalf("roundtrip = %07b", got)
	}
}

func TestBytesPadding(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b101, 3)
	b := w.Bytes()
	if len(b) != 1 || b[0] != 0b10100000 {
		t.Fatalf("padded bytes = %08b", b)
	}
}

func TestBytesIdempotent(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xAB, 8)
	w.WriteBits(0b11, 2)
	b1 := w.Bytes()
	b2 := w.Bytes()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("Bytes not idempotent: %x vs %x", b1, b2)
	}
	// Writer must remain usable.
	w.WriteBits(0b101010, 6)
	r := NewReader(w.Bytes())
	if r.ReadBits(8) != 0xAB || r.ReadBits(2) != 0b11 || r.ReadBits(6) != 0b101010 {
		t.Fatal("continued writing after Bytes corrupted stream")
	}
}

func TestReaderOverrun(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if r.ReadBits(8) != 0xFF {
		t.Fatal("first byte wrong")
	}
	for i := 0; i < 5; i++ {
		if r.ReadBit() != 0 {
			t.Fatal("overrun bits must be zero")
		}
	}
	if r.Overrun() != 5 {
		t.Fatalf("Overrun() = %d", r.Overrun())
	}
	if r.BitsRead() != 13 {
		t.Fatalf("BitsRead() = %d", r.BitsRead())
	}
}

func TestWidthValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"write 65": func() { NewWriter().WriteBits(0, 65) },
		"read -1":  func() { NewReader(nil).ReadBits(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestZeroWidthNoop(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xFFFF, 0)
	if w.Bits() != 0 {
		t.Fatal("zero-width write emitted bits")
	}
	r := NewReader(nil)
	if r.ReadBits(0) != 0 {
		t.Fatal("zero-width read returned data")
	}
}

// Property: any sequence of (value, width) writes reads back identically.
func TestQuickRoundTrip(t *testing.T) {
	f := func(vals []uint64, widths []uint8) bool {
		n := len(vals)
		if len(widths) < n {
			n = len(widths)
		}
		w := NewWriter()
		type item struct {
			v     uint64
			width int
		}
		var items []item
		for i := 0; i < n; i++ {
			width := int(widths[i]) % 65
			v := vals[i]
			if width < 64 {
				v &= (1 << uint(width)) - 1
			}
			items = append(items, item{v, width})
			w.WriteBits(v, width)
		}
		r := NewReader(w.Bytes())
		for _, it := range items {
			if r.ReadBits(it.width) != it.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteBit(b *testing.B) {
	w := NewWriter()
	for i := 0; i < b.N; i++ {
		w.WriteBit(i & 1)
	}
}

func BenchmarkReadBit(b *testing.B) {
	buf := make([]byte, 1<<16)
	for i := range buf {
		buf[i] = byte(i)
	}
	r := NewReader(buf)
	for i := 0; i < b.N; i++ {
		if r.BitsRead() >= len(buf)*8 {
			r = NewReader(buf)
		}
		r.ReadBit()
	}
}

func TestWriterSuspendResume(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b1011, 4)
	w.WriteBits(0xDE, 8) // 12 bits: one complete byte + 4-bit partial
	partial, n := w.Partial()
	completed := w.Completed()
	if len(completed) != 1 || n != 4 {
		t.Fatalf("completed=%d bytes partial=%d bits", len(completed), n)
	}
	w2 := NewWriterFrom(completed, partial, n)
	if w2.Bits() != 12 {
		t.Fatalf("resumed bits = %d", w2.Bits())
	}
	w2.WriteBits(0b0110, 4)
	r := NewReader(w2.Bytes())
	if r.ReadBits(4) != 0b1011 || r.ReadBits(8) != 0xDE || r.ReadBits(4) != 0b0110 {
		t.Fatal("suspend/resume corrupted the stream")
	}
}

func TestNewWriterFromValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("partial count 8 accepted")
		}
	}()
	NewWriterFrom(nil, 0, 8)
}

func TestCompletedCopies(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xAB, 8)
	c := w.Completed()
	c[0] = 0
	if w.Bytes()[0] != 0xAB {
		t.Fatal("Completed aliased internal buffer")
	}
}
