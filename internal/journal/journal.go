// Package journal serialises packet journeys and epoch summaries to
// JSON-lines streams, so simulation runs can be exported for offline
// analysis (cmd/dophy-trace) and replayed into tomography schemes without
// re-running the simulator.
package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"dophy/internal/collect"
	"dophy/internal/sim"
	"dophy/internal/topo"
)

// Record is the JSON shape of one packet journey. Field names are stable:
// external tooling may rely on them.
type Record struct {
	Origin    int     `json:"origin"`
	Seq       int64   `json:"seq"`
	Generated float64 `json:"generated"`
	Completed float64 `json:"completed"`
	Delivered bool    `json:"delivered"`
	Drop      string  `json:"drop,omitempty"`
	Hops      []Hop   `json:"hops,omitempty"`
}

// Hop is one forwarding step in a Record.
type Hop struct {
	From     int `json:"from"`
	To       int `json:"to"`
	Attempts int `json:"attempts"`
	Observed int `json:"observed"`
}

// FromJourney converts a simulator journey to its JSON shape.
func FromJourney(j *collect.PacketJourney) Record {
	r := Record{
		Origin:    int(j.Origin),
		Seq:       j.Seq,
		Generated: float64(j.Generated),
		Completed: float64(j.Completed),
		Delivered: j.Delivered,
	}
	if !j.Delivered {
		r.Drop = j.Drop.String()
	}
	for _, h := range j.Hops {
		r.Hops = append(r.Hops, Hop{
			From:     int(h.Link.From),
			To:       int(h.Link.To),
			Attempts: h.Attempts,
			Observed: h.Observed,
		})
	}
	return r
}

// ToJourney converts a Record back into a simulator journey.
func (r Record) ToJourney() (*collect.PacketJourney, error) {
	if r.Origin < 0 {
		return nil, fmt.Errorf("journal: negative origin %d", r.Origin)
	}
	j := &collect.PacketJourney{
		Origin:    topo.NodeID(r.Origin),
		Seq:       r.Seq,
		Generated: sim.Time(r.Generated),
		Completed: sim.Time(r.Completed),
		Delivered: r.Delivered,
	}
	if !r.Delivered {
		switch r.Drop {
		case "retries":
			j.Drop = collect.DropRetries
		case "no-route":
			j.Drop = collect.DropNoRoute
		case "ttl":
			j.Drop = collect.DropTTL
		default:
			return nil, fmt.Errorf("journal: unknown drop reason %q", r.Drop)
		}
	}
	for i, h := range r.Hops {
		if h.Attempts < 1 || h.Observed < 1 || h.Observed > h.Attempts {
			return nil, fmt.Errorf("journal: hop %d has invalid attempts=%d observed=%d", i, h.Attempts, h.Observed)
		}
		if h.From < 0 || h.To < 0 {
			return nil, fmt.Errorf("journal: hop %d has negative node id", i)
		}
		j.Hops = append(j.Hops, collect.Hop{
			Link:     topo.Link{From: topo.NodeID(h.From), To: topo.NodeID(h.To)},
			Attempts: h.Attempts,
			Observed: h.Observed,
		})
	}
	return j, nil
}

// Writer streams journeys as JSON lines.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
	n   int64
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Write emits one journey.
func (w *Writer) Write(j *collect.PacketJourney) error {
	w.n++
	return w.enc.Encode(FromJourney(j))
}

// Count returns the number of journeys written.
func (w *Writer) Count() int64 { return w.n }

// Flush drains buffered output.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader streams journeys back from a JSON-lines stream.
type Reader struct {
	dec  *json.Decoder
	line int
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{dec: json.NewDecoder(bufio.NewReader(r))}
}

// Read returns the next journey, or io.EOF at the end of the stream.
func (r *Reader) Read() (*collect.PacketJourney, error) {
	var rec Record
	if err := r.dec.Decode(&rec); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("journal: record %d: %w", r.line+1, err)
	}
	r.line++
	j, err := rec.ToJourney()
	if err != nil {
		return nil, fmt.Errorf("journal: record %d: %w", r.line, err)
	}
	return j, nil
}
