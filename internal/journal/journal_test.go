package journal

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"dophy/internal/collect"
	"dophy/internal/rng"
	"dophy/internal/topo"
)

func sampleJourney() *collect.PacketJourney {
	return &collect.PacketJourney{
		Origin:    5,
		Seq:       42,
		Generated: 10.5,
		Completed: 10.75,
		Delivered: true,
		Hops: []collect.Hop{
			{Link: topo.Link{From: 5, To: 3}, Attempts: 2, Observed: 2},
			{Link: topo.Link{From: 3, To: 0}, Attempts: 1, Observed: 1},
		},
	}
}

func TestRoundTripDelivered(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	orig := sampleJourney()
	if err := w.Write(orig); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	got, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Origin != orig.Origin || got.Seq != orig.Seq || !got.Delivered {
		t.Fatalf("roundtrip = %+v", got)
	}
	if len(got.Hops) != 2 || got.Hops[0] != orig.Hops[0] || got.Hops[1] != orig.Hops[1] {
		t.Fatalf("hops = %+v", got.Hops)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestRoundTripDropReasons(t *testing.T) {
	for _, reason := range []collect.DropReason{collect.DropRetries, collect.DropNoRoute, collect.DropTTL} {
		j := sampleJourney()
		j.Delivered = false
		j.Drop = reason
		j.Hops = nil
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(j); err != nil {
			t.Fatal(err)
		}
		w.Flush()
		got, err := NewReader(&buf).Read()
		if err != nil {
			t.Fatal(err)
		}
		if got.Delivered || got.Drop != reason {
			t.Fatalf("drop %v roundtripped to %v", reason, got.Drop)
		}
	}
}

func TestMultipleRecords(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	const n = 50
	for i := 0; i < n; i++ {
		j := sampleJourney()
		j.Seq = int64(i)
		if err := w.Write(j); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != n {
		t.Fatalf("count = %d", w.Count())
	}
	w.Flush()
	r := NewReader(&buf)
	for i := 0; i < n; i++ {
		got, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		if got.Seq != int64(i) {
			t.Fatalf("record %d has seq %d", i, got.Seq)
		}
	}
}

func TestRejectBadRecords(t *testing.T) {
	cases := map[string]string{
		"bad drop":      `{"origin":1,"seq":1,"delivered":false,"drop":"martians"}`,
		"neg origin":    `{"origin":-1,"seq":1,"delivered":true}`,
		"zero attempts": `{"origin":1,"seq":1,"delivered":true,"hops":[{"from":1,"to":0,"attempts":0,"observed":0}]}`,
		"obs>attempts":  `{"origin":1,"seq":1,"delivered":true,"hops":[{"from":1,"to":0,"attempts":1,"observed":2}]}`,
		"neg node":      `{"origin":1,"seq":1,"delivered":true,"hops":[{"from":-3,"to":0,"attempts":1,"observed":1}]}`,
		"not json":      `this is not json`,
	}
	for name, line := range cases {
		r := NewReader(strings.NewReader(line + "\n"))
		if _, err := r.Read(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestJSONFieldStability(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(sampleJourney())
	w.Flush()
	line := buf.String()
	for _, field := range []string{`"origin"`, `"seq"`, `"generated"`, `"completed"`, `"delivered"`, `"hops"`, `"from"`, `"to"`, `"attempts"`, `"observed"`} {
		if !strings.Contains(line, field) {
			t.Fatalf("field %s missing from %s", field, line)
		}
	}
}

// Property: random valid journeys survive a write/read cycle intact.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		j := &collect.PacketJourney{
			Origin:    topo.NodeID(r.Intn(100)),
			Seq:       int64(r.Intn(1 << 20)),
			Generated: 1,
			Completed: 2,
			Delivered: r.Bool(0.8),
		}
		if !j.Delivered {
			j.Drop = []collect.DropReason{collect.DropRetries, collect.DropNoRoute, collect.DropTTL}[r.Intn(3)]
		}
		hops := r.Intn(6)
		for i := 0; i < hops; i++ {
			att := r.Intn(8) + 1
			obs := r.Intn(att) + 1
			j.Hops = append(j.Hops, collect.Hop{
				Link:     topo.Link{From: topo.NodeID(r.Intn(100)), To: topo.NodeID(r.Intn(100))},
				Attempts: att,
				Observed: obs,
			})
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if w.Write(j) != nil || w.Flush() != nil {
			return false
		}
		got, err := NewReader(&buf).Read()
		if err != nil {
			return false
		}
		if got.Origin != j.Origin || got.Seq != j.Seq || got.Delivered != j.Delivered || len(got.Hops) != len(j.Hops) {
			return false
		}
		for i := range j.Hops {
			if got.Hops[i] != j.Hops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
