//go:build dophy_invariants

package collect

import (
	"fmt"

	"dophy/internal/topo"
)

// netInvariants audits every completed journey: the hop chain must be
// connected from the origin, each hop's receiver-observed first-delivery
// attempt must lie within the sender's ground-truth attempt count, and a
// delivered packet must end at the sink. These are the preconditions every
// tomography scheme decodes under; a violation here means estimator error
// is being measured against corrupt ground truth.
type netInvariants struct{}

func (netInvariants) onFinish(n *Network, j *PacketJourney) {
	at := j.Origin
	for i, h := range j.Hops {
		if h.Link.From != at {
			panic(fmt.Sprintf("collect: invariant violated: journey %d/%d hop %d starts at %v, previous hop ended at %v",
				j.Origin, j.Seq, i, h.Link.From, at))
		}
		if h.Attempts < 1 {
			panic(fmt.Sprintf("collect: invariant violated: journey %d/%d hop %d has %d attempts",
				j.Origin, j.Seq, i, h.Attempts))
		}
		if h.Observed < 1 || h.Observed > h.Attempts {
			panic(fmt.Sprintf("collect: invariant violated: journey %d/%d hop %d observed attempt %d outside [1,%d]",
				j.Origin, j.Seq, i, h.Observed, h.Attempts))
		}
		at = h.Link.To
	}
	if j.Delivered && at != topo.Sink {
		panic(fmt.Sprintf("collect: invariant violated: delivered journey %d/%d ends at %v, not the sink",
			j.Origin, j.Seq, at))
	}
	if j.Completed < j.Generated {
		panic(fmt.Sprintf("collect: invariant violated: journey %d/%d completed at %v before generation at %v",
			j.Origin, j.Seq, j.Completed, j.Generated))
	}
}

// onRelease audits the bounded-queue accounting after node at finishes a
// transmission: a node left idle with queued packets would never drain.
func (netInvariants) onRelease(n *Network, at topo.NodeID) {
	if n.cfg.QueueCap == 0 {
		return
	}
	if len(n.queues[at]) > 0 && !n.busy[at] {
		panic(fmt.Sprintf("collect: invariant violated: node %d idle with %d queued packets", at, len(n.queues[at])))
	}
}
