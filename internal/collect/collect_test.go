package collect

import (
	"testing"

	"dophy/internal/mac"
	"dophy/internal/radio"
	"dophy/internal/rng"
	"dophy/internal/routing"
	"dophy/internal/sim"
	"dophy/internal/topo"
	"dophy/internal/trace"
)

// fixedRouter routes along an explicit parent table; -1 means no route.
type fixedRouter struct {
	parents []topo.NodeID
}

func (f *fixedRouter) Parent(id topo.NodeID) (topo.NodeID, bool) {
	p := f.parents[id]
	return p, p >= 0
}
func (f *fixedRouter) OnDataResult(from, to topo.NodeID, res mac.Result) {}

func chainNetwork(t *testing.T, n int, loss float64, parents []topo.NodeID) (*Network, *sim.Engine, *trace.Recorder) {
	t.Helper()
	tp := topo.Chain(n, 10, 10.5)
	eng := sim.New()
	model := radio.NewStaticUniformLoss(tp, loss)
	rec := trace.NewRecorder(tp.LinkTable())
	arq := mac.New(mac.DefaultConfig(), model, rng.New(3), rec)
	if parents == nil {
		parents = make([]topo.NodeID, n)
		parents[0] = -1
		for i := 1; i < n; i++ {
			parents[i] = topo.NodeID(i - 1)
		}
	}
	nw := New(DefaultConfig(), eng, tp, arq, &fixedRouter{parents}, rng.New(4), rec)
	return nw, eng, rec
}

func TestLosslessChainDelivery(t *testing.T) {
	nw, eng, rec := chainNetwork(t, 4, 0, nil)
	var journeys []*PacketJourney
	nw.Subscribe(func(j *PacketJourney) { journeys = append(journeys, j) })
	nw.Start()
	eng.Run(100)
	if len(journeys) == 0 {
		t.Fatal("no journeys completed")
	}
	for _, j := range journeys {
		if !j.Delivered {
			t.Fatalf("lossless journey dropped: %+v", j)
		}
		// Path length must equal origin's hop distance.
		if len(j.Hops) != int(j.Origin) {
			t.Fatalf("origin %d has %d hops", j.Origin, len(j.Hops))
		}
		// Hops must walk the chain to the sink with single attempts.
		for hi, h := range j.Hops {
			wantFrom := j.Origin - topo.NodeID(hi)
			if h.Link.From != wantFrom || h.Link.To != wantFrom-1 {
				t.Fatalf("hop %d link %v, origin %d", hi, h.Link, j.Origin)
			}
			if h.Attempts != 1 || h.Observed != 1 {
				t.Fatalf("lossless hop used %d attempts", h.Attempts)
			}
		}
		if j.Completed < j.Generated {
			t.Fatalf("journey completed before generation: %+v", j)
		}
	}
	if rec.Generated == 0 || rec.Delivered != rec.Generated-int64(pendingInFlight(journeys, rec)) {
		// All completed journeys delivered; in-flight ones are neither.
		if rec.Delivered == 0 {
			t.Fatal("trace recorded no deliveries")
		}
	}
}

// pendingInFlight counts generated packets that had not completed by the
// time the engine stopped.
func pendingInFlight(journeys []*PacketJourney, rec *trace.Recorder) int64 {
	return rec.Generated - int64(len(journeys))
}

func TestLossyChainDropsRecorded(t *testing.T) {
	tp := topo.Chain(3, 10, 10.5)
	eng := sim.New()
	model := radio.NewStaticUniformLoss(tp, 0.7) // brutal links
	rec := trace.NewRecorder(tp.LinkTable())
	arq := mac.New(mac.Config{MaxRetx: 1}, model, rng.New(5), rec)
	parents := []topo.NodeID{-1, 0, 1}
	nw := New(DefaultConfig(), eng, tp, arq, &fixedRouter{parents}, rng.New(6), rec)
	drops := 0
	nw.Subscribe(func(j *PacketJourney) {
		if !j.Delivered {
			if j.Drop != DropRetries {
				t.Errorf("unexpected drop reason %v", j.Drop)
			}
			drops++
		}
	})
	nw.Start()
	eng.Run(500)
	if drops == 0 {
		t.Fatal("no retry drops on a 70%-loss chain")
	}
	if rec.Dropped == 0 {
		t.Fatal("trace did not record drops")
	}
}

func TestNoRouteDrop(t *testing.T) {
	// Node 2 routes to node 1 which has no parent.
	nw, eng, _ := chainNetwork(t, 3, 0, []topo.NodeID{-1, -1, 1})
	var reasons []DropReason
	nw.Subscribe(func(j *PacketJourney) {
		if j.Origin == 2 {
			reasons = append(reasons, j.Drop)
		}
	})
	nw.Start()
	eng.Run(50)
	if len(reasons) == 0 {
		t.Fatal("no journeys from node 2")
	}
	for _, r := range reasons {
		if r != DropNoRoute {
			t.Fatalf("drop reason = %v, want no-route", r)
		}
	}
}

func TestTTLDropOnRoutingLoop(t *testing.T) {
	// 1 -> 2 -> 1 loop.
	nw, eng, _ := chainNetwork(t, 3, 0, []topo.NodeID{-1, 2, 1})
	sawTTL := false
	nw.Subscribe(func(j *PacketJourney) {
		if j.Drop == DropTTL {
			sawTTL = true
			if len(j.Hops) != DefaultConfig().TTL {
				t.Errorf("TTL drop after %d hops, want %d", len(j.Hops), DefaultConfig().TTL)
			}
		}
	})
	nw.Start()
	eng.Run(100)
	if !sawTTL {
		t.Fatal("routing loop never hit TTL")
	}
}

func TestObservedMatchesAttemptsWithoutAckLoss(t *testing.T) {
	tp := topo.Chain(4, 10, 10.5)
	eng := sim.New()
	model := radio.NewStaticUniformLoss(tp, 0.4)
	rec := trace.NewRecorder(tp.LinkTable())
	arq := mac.New(mac.Config{MaxRetx: 7}, model, rng.New(7), rec)
	parents := []topo.NodeID{-1, 0, 1, 2}
	nw := New(DefaultConfig(), eng, tp, arq, &fixedRouter{parents}, rng.New(8), rec)
	nw.Subscribe(func(j *PacketJourney) {
		for _, h := range j.Hops {
			if h.Observed != h.Attempts {
				t.Errorf("observed %d != attempts %d without ack loss", h.Observed, h.Attempts)
			}
			if h.Observed < 1 || h.Observed > 8 {
				t.Errorf("observed out of range: %d", h.Observed)
			}
		}
	})
	nw.Start()
	eng.Run(300)
}

func TestGenerationRate(t *testing.T) {
	nw, eng, rec := chainNetwork(t, 5, 0, nil)
	nw.Start()
	eng.Run(1000)
	// 4 sources, period ~10s, 1000s => ~400 packets (+/- jitter).
	if rec.Generated < 350 || rec.Generated > 460 {
		t.Fatalf("generated %d packets, want ~400", rec.Generated)
	}
}

func TestEndToEndWithRealRouting(t *testing.T) {
	tp := topo.Grid(4, 10, 1, 14, rng.New(9))
	if !tp.Connected() {
		t.Fatal("grid disconnected")
	}
	eng := sim.New()
	model := radio.NewStatic(tp, radio.DefaultBase(), 10)
	rec := trace.NewRecorder(tp.LinkTable())
	root := rng.New(11)
	arq := mac.New(mac.DefaultConfig(), model, root.Split(), rec)
	proto := routing.New(routing.DefaultConfig(), eng, tp, model, root.Split(), rec)
	nw := New(DefaultConfig(), eng, tp, arq, proto, root.Split(), rec)
	delivered := 0
	nw.Subscribe(func(j *PacketJourney) {
		if j.Delivered {
			delivered++
			last := j.Hops[len(j.Hops)-1]
			if last.Link.To != topo.Sink {
				t.Errorf("delivered journey does not end at sink: %v", last.Link)
			}
		}
	})
	proto.Start()
	eng.Run(60) // routing warmup
	nw.Start()
	eng.Run(600)
	if delivered < 100 {
		t.Fatalf("only %d deliveries in 540s with 15 sources", delivered)
	}
	ratio := rec.Cut().DeliveryRatio()
	if ratio < 0.9 {
		t.Fatalf("delivery ratio %v too low for ARQ collection", ratio)
	}
}

func TestConfigValidation(t *testing.T) {
	tp := topo.Chain(2, 10, 10.5)
	model := radio.NewStaticUniformLoss(tp, 0)
	arq := mac.New(mac.DefaultConfig(), model, rng.New(1), nil)
	for name, cfg := range map[string]Config{
		"zero period": {GenPeriod: 0, TTL: 4},
		"zero ttl":    {GenPeriod: 1, TTL: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			New(cfg, sim.New(), tp, arq, &fixedRouter{[]topo.NodeID{-1, 0}}, rng.New(2), nil)
		}()
	}
}

func TestStartTwicePanics(t *testing.T) {
	nw, _, _ := chainNetwork(t, 2, 0, nil)
	nw.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("second Start did not panic")
		}
	}()
	nw.Start()
}

func TestQueueingSerialisesNode(t *testing.T) {
	// With QueueCap set, a relay can only serve one packet at a time; at a
	// generation rate far above the service rate, its queue must overflow.
	tp := topo.Chain(3, 10, 10.5)
	eng := sim.New()
	model := radio.NewStaticUniformLoss(tp, 0)
	rec := trace.NewRecorder(tp.LinkTable())
	arq := mac.New(mac.DefaultConfig(), model, rng.New(31), rec)
	parents := []topo.NodeID{-1, 0, 1}
	cfg := Config{GenPeriod: 0.05, GenJitter: 0, TxTime: 0.05, HopDelay: 0.01, TTL: 16, QueueCap: 2}
	nw := New(cfg, eng, tp, arq, &fixedRouter{parents}, rng.New(32), rec)
	queueDrops := 0
	nw.Subscribe(func(j *PacketJourney) {
		if j.Drop == DropQueue {
			queueDrops++
		}
	})
	nw.Start()
	eng.Run(50)
	if queueDrops == 0 || nw.QueueDrops == 0 {
		t.Fatalf("overloaded relay never overflowed (drops=%d counter=%d)", queueDrops, nw.QueueDrops)
	}
}

func TestQueueingStillDeliversUnderLightLoad(t *testing.T) {
	tp := topo.Chain(4, 10, 10.5)
	eng := sim.New()
	model := radio.NewStaticUniformLoss(tp, 0)
	rec := trace.NewRecorder(tp.LinkTable())
	arq := mac.New(mac.DefaultConfig(), model, rng.New(33), rec)
	cfg := DefaultConfig()
	cfg.QueueCap = 8
	parents := []topo.NodeID{-1, 0, 1, 2}
	nw := New(cfg, eng, tp, arq, &fixedRouter{parents}, rng.New(34), rec)
	delivered, dropped := 0, 0
	nw.Subscribe(func(j *PacketJourney) {
		if j.Delivered {
			delivered++
		} else {
			dropped++
		}
	})
	nw.Start()
	eng.Run(500)
	if delivered == 0 {
		t.Fatal("no deliveries with queueing enabled")
	}
	if dropped != 0 {
		t.Fatalf("%d drops under light load on lossless links", dropped)
	}
	if nw.QueueDrops != 0 {
		t.Fatalf("queue drops under light load: %d", nw.QueueDrops)
	}
}

func TestQueueDrainOrder(t *testing.T) {
	// Packets queued at a busy relay must come out FIFO and all deliver.
	tp := topo.Chain(3, 10, 10.5)
	eng := sim.New()
	model := radio.NewStaticUniformLoss(tp, 0)
	arq := mac.New(mac.DefaultConfig(), model, rng.New(35), nil)
	cfg := Config{GenPeriod: 1000, GenJitter: 0, TxTime: 0.2, HopDelay: 0.01, TTL: 16, QueueCap: 10}
	parents := []topo.NodeID{-1, 0, 1}
	nw := New(cfg, eng, tp, arq, &fixedRouter{parents}, rng.New(36), nil)
	var order []int64
	nw.Subscribe(func(j *PacketJourney) {
		if j.Delivered && j.Origin == 2 {
			order = append(order, j.Seq)
		}
	})
	// Inject five packets at node 2 back-to-back, bypassing generation.
	for i := int64(1); i <= 5; i++ {
		j := &PacketJourney{Origin: 2, Seq: i, Generated: eng.Now()}
		nw.forward(2, j)
	}
	eng.Run(100)
	if len(order) != 5 {
		t.Fatalf("delivered %d of 5 queued packets", len(order))
	}
	for i := range order {
		if order[i] != int64(i+1) {
			t.Fatalf("non-FIFO drain: %v", order)
		}
	}
}

func TestNegativeQueueCapPanics(t *testing.T) {
	tp := topo.Chain(2, 10, 10.5)
	model := radio.NewStaticUniformLoss(tp, 0)
	arq := mac.New(mac.DefaultConfig(), model, rng.New(1), nil)
	cfg := DefaultConfig()
	cfg.QueueCap = -1
	defer func() {
		if recover() == nil {
			t.Fatal("negative QueueCap accepted")
		}
	}()
	New(cfg, sim.New(), tp, arq, &fixedRouter{[]topo.NodeID{-1, 0}}, rng.New(2), nil)
}
