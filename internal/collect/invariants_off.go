//go:build !dophy_invariants

package collect

import "dophy/internal/topo"

// netInvariants is the no-op variant; see invariants_on.go for the checks.
type netInvariants struct{}

func (netInvariants) onFinish(*Network, *PacketJourney) {}
func (netInvariants) onRelease(*Network, topo.NodeID)   {}
