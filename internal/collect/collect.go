// Package collect is the data-collection application layer: every node
// periodically generates a reading and forwards it hop by hop toward the
// sink over the dynamic routing protocol, using ARQ at each hop.
//
// Its product is the stream of PacketJourney records — the per-packet ground
// truth (who forwarded it, over which links, with how many transmission
// attempts, whether it arrived). Tomography schemes subscribe to journeys:
// at each hop they see exactly the information a real in-packet annotation
// would carry (receiver-observed first-delivery attempt indices), and at the
// sink they decode and estimate. Keeping the schemes out of the forwarding
// loop lets several schemes observe the *same* packet realisations, which is
// how the harness compares them fairly.
package collect

import (
	"dophy/internal/mac"
	"dophy/internal/rng"
	"dophy/internal/routing"
	"dophy/internal/sim"
	"dophy/internal/topo"
	"dophy/internal/trace"
)

// Hop records one completed forwarding step of a packet.
type Hop struct {
	Link topo.Link
	// Attempts is the total number of transmissions the sender made
	// (ground truth; inflated by lost ACKs).
	Attempts int
	// Observed is the attempt index of the first frame the receiver got —
	// the value an in-packet annotation scheme records for this hop.
	Observed int
}

// DropReason says why a packet failed to reach the sink.
type DropReason int

const (
	NotDropped  DropReason = iota
	DropRetries            // ARQ budget exhausted
	DropNoRoute            // forwarder had no parent
	DropTTL                // too many hops (transient routing loop)
	DropQueue              // forwarder's queue overflowed (congestion)
)

func (d DropReason) String() string {
	switch d {
	case NotDropped:
		return "delivered"
	case DropRetries:
		return "retries"
	case DropNoRoute:
		return "no-route"
	case DropTTL:
		return "ttl"
	case DropQueue:
		return "queue"
	}
	return "unknown"
}

// PacketJourney is the full ground-truth record of one data packet.
type PacketJourney struct {
	Origin    topo.NodeID
	Seq       int64
	Generated sim.Time
	Completed sim.Time
	Hops      []Hop
	Delivered bool
	Drop      DropReason
}

// Sink consumers receive every completed journey (delivered or dropped).
type JourneyFunc func(*PacketJourney)

// Annotator hooks the forwarding path itself: the distributed view, where
// per-packet state is built hop by hop exactly as mote firmware would.
// OnGenerate runs at the origin before the first transmission; OnHop runs
// at each hop's receiver immediately after a successful ARQ exchange (the
// moment the receiver appends its record); OnDeliver runs when the packet
// reaches the sink. Dropped packets simply never reach OnDeliver — any
// per-packet state the annotator holds for them must be reclaimed via
// OnDrop.
type Annotator interface {
	OnGenerate(j *PacketJourney)
	OnHop(j *PacketJourney, h Hop)
	OnDeliver(j *PacketJourney)
	OnDrop(j *PacketJourney)
}

// Config parameterises the application.
type Config struct {
	GenPeriod sim.Time // per-node data generation interval
	GenJitter float64  // uniform +/- fraction of the period
	TxTime    sim.Time // time per radio transmission (serialisation + backoff)
	HopDelay  sim.Time // per-hop processing/queueing delay
	TTL       int      // max hops before a packet is declared looping
	// QueueCap bounds each node's forwarding queue: while a node is mid-
	// transmission further packets wait, and arrivals beyond QueueCap are
	// dropped (DropQueue). 0 models an unbounded, zero-contention node —
	// the abstraction most tomography evaluations use.
	QueueCap int
}

// DefaultConfig matches typical low-rate collection workloads.
func DefaultConfig() Config {
	return Config{GenPeriod: 10, GenJitter: 0.25, TxTime: 0.01, HopDelay: 0.02, TTL: 64}
}

// Router is the slice of the routing protocol the data plane needs.
// *routing.Protocol implements it; tests substitute fixed or looping tables.
type Router interface {
	Parent(id topo.NodeID) (topo.NodeID, bool)
	OnDataResult(from, to topo.NodeID, res mac.Result)
}

var _ Router = (*routing.Protocol)(nil)

// Fabric transports a packet to its next-hop node when that node may be
// owned by another shard. DeliverData is called on the sending node's shard
// at transmission time; the fabric must invoke Arrive on the destination's
// owning Network instance at the arrival time 'at' (which transmit
// guarantees is at least HopDelay+TxTime in the future — the latency floor
// the shard engine's lookahead is derived from). Sink deliveries never
// reach the fabric: the final hop completes on the sender's shard.
type Fabric interface {
	DeliverData(from, to topo.NodeID, at sim.Time, j *PacketJourney)
}

// ShardHooks configures a Network instance for the sharded engine. All
// fields may be zero for a plain sequential instance.
type ShardHooks struct {
	Owned   []bool        // nodes this instance owns; nil = all
	PerNode []*rng.Source // per-node RNG streams, indexed by NodeID
	Fabric  Fabric        // cross-node packet transport
}

// Network wires the layers together for one simulated deployment.
type Network struct {
	// inv carries the build-tag-gated journey/queue audits; a zero-size
	// no-op in the default build (see invariants_off.go).
	inv        netInvariants
	cfg        Config
	eng        *sim.Engine
	tp         *topo.Topology
	arq        *mac.ARQ
	proto      Router
	rec        *trace.Recorder
	r          jitterSource
	perNode    []*rng.Source
	owned      []bool
	fab        Fabric
	nextSeq    []int64
	subs       []JourneyFunc
	annotators []Annotator
	started    bool
	// genFns holds one prebuilt generation handler per node, so periodic
	// rescheduling does not allocate a fresh closure every packet.
	genFns []sim.Handler
	// contFree pools hop continuations (see hopCont): each carrier owns a
	// single prebuilt handler, so the per-hop forwarding path performs no
	// closure allocation in steady state.
	contFree []*hopCont
	// Per-node forwarding queues (QueueCap > 0 only).
	busy   []bool
	queues [][]*PacketJourney
	// QueueDrops counts congestion losses for reporting.
	QueueDrops int64
}

// jitterSource is the tiny slice of rng.Source the network needs; taking an
// interface keeps the dependency direction clean and tests simple.
type jitterSource interface {
	Float64() float64
	Range(lo, hi float64) float64
}

// New wires a network. rec may be nil.
func New(cfg Config, eng *sim.Engine, tp *topo.Topology, arq *mac.ARQ, proto Router, r jitterSource, rec *trace.Recorder) *Network {
	return NewSharded(cfg, eng, tp, arq, proto, r, rec, ShardHooks{})
}

// NewSharded wires a network instance for one shard of a partitioned
// simulation: generation runs only for owned nodes, jitter draws come from
// per-node streams, and packets leaving the shard travel over the fabric.
// With zero hooks it is exactly New.
func NewSharded(cfg Config, eng *sim.Engine, tp *topo.Topology, arq *mac.ARQ, proto Router, r jitterSource, rec *trace.Recorder, hooks ShardHooks) *Network {
	if cfg.GenPeriod <= 0 {
		panic("collect: generation period must be positive")
	}
	if cfg.TTL < 1 {
		panic("collect: TTL must be >= 1")
	}
	if cfg.QueueCap < 0 {
		panic("collect: QueueCap must be >= 0")
	}
	n := &Network{
		cfg:     cfg,
		eng:     eng,
		tp:      tp,
		arq:     arq,
		proto:   proto,
		rec:     rec,
		r:       r,
		perNode: hooks.PerNode,
		owned:   hooks.Owned,
		fab:     hooks.Fabric,
		nextSeq: make([]int64, tp.N()),
	}
	if cfg.QueueCap > 0 {
		n.busy = make([]bool, tp.N())
		n.queues = make([][]*PacketJourney, tp.N())
	}
	return n
}

// owns reports whether this instance runs id's generation process.
func (n *Network) owns(id topo.NodeID) bool { return n.owned == nil || n.owned[id] }

// rng returns the jitter stream for id's draws: the node's own stream in
// sharded mode, the shared network stream otherwise.
//
//dophy:hotpath
func (n *Network) rng(id topo.NodeID) jitterSource {
	if n.perNode != nil {
		return n.perNode[id]
	}
	return n.r
}

// Subscribe registers fn to receive every completed journey.
func (n *Network) Subscribe(fn JourneyFunc) { n.subs = append(n.subs, fn) }

// AttachAnnotator registers a hop-by-hop annotator. Call before Start.
func (n *Network) AttachAnnotator(a Annotator) { n.annotators = append(n.annotators, a) }

// Start schedules the per-node generation processes (sink generates
// nothing). Call once, after routing.Start.
func (n *Network) Start() {
	if n.started {
		panic("collect: Start called twice")
	}
	n.started = true
	n.genFns = make([]sim.Handler, n.tp.N())
	for i := 1; i < n.tp.N(); i++ {
		id := topo.NodeID(i)
		if !n.owns(id) {
			continue
		}
		n.genFns[i] = func() { n.generate(id) }
		first := sim.Time(n.rng(id).Float64()) * n.cfg.GenPeriod
		n.eng.Schedule(n.eng.Now()+first, n.genFns[i])
	}
}

func (n *Network) jitteredPeriod(id topo.NodeID) sim.Time {
	j := n.cfg.GenJitter
	return n.cfg.GenPeriod * sim.Time(1+n.rng(id).Range(-j, j))
}

// generate creates one packet at id and starts forwarding it.
//
//dophy:hotpath
func (n *Network) generate(id topo.NodeID) {
	n.nextSeq[id]++
	// Pre-size Hops past the typical path depth with retries: the append in
	// transmit regrows for every journey that outgrows the capacity, and at
	// cap 8 roughly a third of the journeys on a grid topology did.
	//dophy:allow hotpathalloc -- the journey record is the pipeline's product: one allocation per generated packet, owned by the sink
	j := &PacketJourney{Origin: id, Seq: n.nextSeq[id], Generated: n.eng.Now(), Hops: make([]Hop, 0, 16)}
	if n.rec != nil {
		n.rec.Generated++
	}
	for _, a := range n.annotators {
		a.OnGenerate(j)
	}
	n.forward(id, j)
	n.eng.After(n.jitteredPeriod(id), n.genFns[id])
}

// Arrive admits a packet delivered over the fabric to owned node 'to' —
// the cross-shard counterpart of the local post-hop continuation. It must
// run on this instance's engine at the packet's arrival time.
//
//dophy:hotpath
func (n *Network) Arrive(to topo.NodeID, j *PacketJourney) {
	n.forward(to, j)
}

// forward admits j to node at: directly when contention is unmodelled or
// the node is idle, otherwise through the node's bounded queue.
//
//dophy:hotpath
func (n *Network) forward(at topo.NodeID, j *PacketJourney) {
	if n.cfg.QueueCap == 0 {
		n.transmit(at, j)
		return
	}
	if n.busy[at] {
		if len(n.queues[at]) >= n.cfg.QueueCap {
			n.QueueDrops++
			n.finish(j, DropQueue)
			return
		}
		n.queues[at] = append(n.queues[at], j)
		return
	}
	n.busy[at] = true
	n.transmit(at, j)
}

// release marks node at idle and starts its next queued packet, if any.
//
//dophy:hotpath
func (n *Network) release(at topo.NodeID) {
	if n.cfg.QueueCap == 0 {
		return
	}
	if len(n.queues[at]) > 0 {
		next := n.queues[at][0]
		n.queues[at] = n.queues[at][1:]
		n.transmit(at, next)
		n.inv.onRelease(n, at)
		return
	}
	n.busy[at] = false
	n.inv.onRelease(n, at)
}

// hopCont is a pooled continuation for the post-hop delay: it stands in for
// the closure transmit would otherwise allocate per hop. Each carrier is
// created once with a single prebuilt handler bound to itself and returns
// to the network's pool when it runs.
type hopCont struct {
	n      *Network
	at     topo.NodeID
	parent topo.NodeID
	j      *PacketJourney // nil for release-only continuations (drop path)
	fn     sim.Handler
}

// cont draws a carrier from the pool (or mints one) and arms it.
//
//dophy:hotpath
func (n *Network) cont(at, parent topo.NodeID, j *PacketJourney) *hopCont {
	var c *hopCont
	if k := len(n.contFree); k > 0 {
		c = n.contFree[k-1]
		n.contFree[k-1] = nil
		n.contFree = n.contFree[:k-1]
	} else {
		//dophy:allow hotpathalloc -- continuation-pool miss path: allocates only until the pool warms up
		c = &hopCont{n: n}
		c.fn = c.run
	}
	c.at, c.parent, c.j = at, parent, j
	return c
}

// run fires the continuation and recycles the carrier.
//
//dophy:hotpath
func (c *hopCont) run() {
	n, at, parent, j := c.n, c.at, c.parent, c.j
	c.j = nil
	n.contFree = append(n.contFree, c)
	n.release(at)
	if j == nil {
		return
	}
	if parent == topo.Sink {
		n.finish(j, NotDropped)
		return
	}
	n.forward(parent, j)
}

// transmit performs one hop of j from node at, then schedules the next.
//
//dophy:hotpath
func (n *Network) transmit(at topo.NodeID, j *PacketJourney) {
	if len(j.Hops) >= n.cfg.TTL {
		n.release(at)
		n.finish(j, DropTTL)
		return
	}
	parent, ok := n.proto.Parent(at)
	if !ok {
		n.release(at)
		n.finish(j, DropNoRoute)
		return
	}
	link := topo.Link{From: at, To: parent}
	res := n.arq.Send(link, n.eng.Now())
	n.proto.OnDataResult(at, parent, res)
	delay := n.cfg.HopDelay + n.cfg.TxTime*sim.Time(res.Attempts)
	if !res.Delivered {
		n.eng.After(delay, n.cont(at, 0, nil).fn)
		n.finish(j, DropRetries)
		return
	}
	hop := Hop{Link: link, Attempts: res.Attempts, Observed: res.FirstDelivered}
	j.Hops = append(j.Hops, hop)
	for _, a := range n.annotators {
		a.OnHop(j, hop)
	}
	if n.fab != nil && parent != topo.Sink {
		// Sharded path: release this node locally when the hop completes and
		// hand the packet to the fabric, which lands it on the parent's owner
		// at the same absolute time the local continuation would have run.
		// Sink deliveries stay on the local continuation so the journey
		// finishes on the forwarder's shard either way.
		n.eng.After(delay, n.cont(at, 0, nil).fn)
		n.fab.DeliverData(at, parent, n.eng.Now()+delay, j)
		return
	}
	n.eng.After(delay, n.cont(at, parent, j).fn)
}

// finish completes a journey and notifies subscribers.
//
//dophy:hotpath
func (n *Network) finish(j *PacketJourney, reason DropReason) {
	j.Completed = n.eng.Now()
	j.Drop = reason
	j.Delivered = reason == NotDropped
	n.inv.onFinish(n, j)
	if n.rec != nil {
		if j.Delivered {
			n.rec.Delivered++
		} else {
			n.rec.Dropped++
		}
	}
	for _, a := range n.annotators {
		if j.Delivered {
			a.OnDeliver(j)
		} else {
			a.OnDrop(j)
		}
	}
	for _, fn := range n.subs {
		//dophy:allow hotpathalloc -- subscriber dispatch: sinks register once at setup and their journey handlers are annotated hot paths themselves
		fn(j)
	}
}
