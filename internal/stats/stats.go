// Package stats provides the error metrics and summaries the experiment
// harness reports: absolute/relative error aggregates, quantiles, empirical
// CDFs and binomial confidence intervals — hand-rolled on sorted slices.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary aggregates a sample of float64 values.
type Summary struct {
	N             int
	Mean          float64
	Std           float64
	Min, Max      float64
	P50, P90, P95 float64
}

// Summarize computes a Summary (zero value for an empty sample).
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	sum, sumSq := 0.0, 0.0
	for _, x := range sorted {
		sum += x
		sumSq += x * x
	}
	s.Mean = sum / float64(s.N)
	variance := sumSq/float64(s.N) - s.Mean*s.Mean
	if variance > 0 {
		s.Std = math.Sqrt(variance)
	}
	s.Min, s.Max = sorted[0], sorted[s.N-1]
	s.P50 = Quantile(sorted, 0.5)
	s.P90 = Quantile(sorted, 0.9)
	s.P95 = Quantile(sorted, 0.95)
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f std=%.4f p50=%.4f p90=%.4f max=%.4f",
		s.N, s.Mean, s.Std, s.P50, s.P90, s.Max)
}

// Quantile returns the q-quantile (0<=q<=1) of an already-sorted sample by
// linear interpolation. Panics on empty input.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		panic("stats: quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// MAE returns the mean absolute error between two equal-length vectors.
func MAE(est, truth []float64) float64 {
	if len(est) != len(truth) {
		panic("stats: MAE length mismatch")
	}
	if len(est) == 0 {
		return 0
	}
	s := 0.0
	for i := range est {
		s += math.Abs(est[i] - truth[i])
	}
	return s / float64(len(est))
}

// RMSE returns the root mean squared error.
func RMSE(est, truth []float64) float64 {
	if len(est) != len(truth) {
		panic("stats: RMSE length mismatch")
	}
	if len(est) == 0 {
		return 0
	}
	s := 0.0
	for i := range est {
		d := est[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(est)))
}

// MaxAbsErr returns the largest absolute error.
func MaxAbsErr(est, truth []float64) float64 {
	if len(est) != len(truth) {
		panic("stats: MaxAbsErr length mismatch")
	}
	m := 0.0
	for i := range est {
		if d := math.Abs(est[i] - truth[i]); d > m {
			m = d
		}
	}
	return m
}

// CDF returns (x, F(x)) points of the empirical CDF of xs evaluated at each
// distinct sample value.
func CDF(xs []float64) (x, f []float64) {
	if len(xs) == 0 {
		return nil, nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	for i := 0; i < len(sorted); i++ {
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue // emit each distinct value once, at its last index
		}
		x = append(x, sorted[i])
		f = append(f, float64(i+1)/n)
	}
	return x, f
}

// Wilson returns the Wilson score interval for k successes in n trials at
// ~95% confidence (z = 1.96).
func Wilson(k, n int64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.96
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
