package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{0, 10, 20, 30, 40}
	cases := map[float64]float64{0: 0, 0.25: 10, 0.5: 20, 0.75: 30, 1: 40, 0.125: 5}
	for q, want := range cases {
		if got := Quantile(sorted, q); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
}

func TestQuantileSingleton(t *testing.T) {
	if Quantile([]float64{7}, 0.5) != 7 {
		t.Fatal("singleton quantile wrong")
	}
}

func TestQuantileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestErrors(t *testing.T) {
	est := []float64{1, 2, 3}
	truth := []float64{1.5, 2, 2}
	if got := MAE(est, truth); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("MAE = %v", got)
	}
	wantRMSE := math.Sqrt((0.25 + 0 + 1) / 3)
	if got := RMSE(est, truth); math.Abs(got-wantRMSE) > 1e-12 {
		t.Fatalf("RMSE = %v", got)
	}
	if got := MaxAbsErr(est, truth); got != 1 {
		t.Fatalf("MaxAbsErr = %v", got)
	}
}

func TestErrorsEmpty(t *testing.T) {
	if MAE(nil, nil) != 0 || RMSE(nil, nil) != 0 || MaxAbsErr(nil, nil) != 0 {
		t.Fatal("empty errors nonzero")
	}
}

func TestErrorsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MAE([]float64{1}, []float64{1, 2})
}

func TestCDF(t *testing.T) {
	x, f := CDF([]float64{3, 1, 2, 2})
	wantX := []float64{1, 2, 3}
	wantF := []float64{0.25, 0.75, 1}
	if len(x) != 3 {
		t.Fatalf("CDF x = %v", x)
	}
	for i := range wantX {
		if x[i] != wantX[i] || math.Abs(f[i]-wantF[i]) > 1e-12 {
			t.Fatalf("CDF = %v %v", x, f)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	x, f := CDF(nil)
	if x != nil || f != nil {
		t.Fatal("empty CDF nonempty")
	}
}

func TestWilson(t *testing.T) {
	lo, hi := Wilson(50, 100)
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("interval [%v, %v] excludes p-hat", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Fatalf("interval too wide: [%v, %v]", lo, hi)
	}
	// Degenerate cases clamp to [0,1].
	lo0, hi0 := Wilson(0, 10)
	if lo0 != 0 || hi0 <= 0 {
		t.Fatalf("zero successes: [%v, %v]", lo0, hi0)
	}
	loN, hiN := Wilson(10, 10)
	if hiN != 1 || loN >= 1 {
		t.Fatalf("all successes: [%v, %v]", loN, hiN)
	}
	loE, hiE := Wilson(0, 0)
	if loE != 0 || hiE != 1 {
		t.Fatalf("no trials: [%v, %v]", loE, hiE)
	}
}

func TestWilsonShrinksWithN(t *testing.T) {
	lo1, hi1 := Wilson(5, 10)
	lo2, hi2 := Wilson(500, 1000)
	if (hi2 - lo2) >= (hi1 - lo1) {
		t.Fatal("interval did not shrink with sample size")
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 || Mean(nil) != 0 {
		t.Fatal("Mean wrong")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
			v := Quantile(xs, q)
			if v < prev || v < xs[0] || v > xs[len(xs)-1] {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
