// Package trace records ground truth while a simulation runs.
//
// Tomography schemes are scored against what the network actually did, not
// against the radio model's nominal parameters: the Recorder accumulates
// per-link transmission attempts and successes (the empirical per-attempt
// loss each estimator is trying to recover), plus delivery and routing-churn
// counters. Epoch boundaries snapshot and reset the counters so each
// estimation round is scored against its own window.
package trace

import (
	"sort"

	"dophy/internal/topo"
)

// LinkCounts accumulates per-attempt outcomes on one directed link. Data
// and beacon transmissions are both Bernoulli trials of the same link, so
// both feed the empirical loss; DataAttempts additionally marks which links
// actually carried data (the links tomography schemes can say anything
// about).
type LinkCounts struct {
	Attempts     int64 // individual radio transmissions (data + beacons)
	Successes    int64 // transmissions that were received
	DataAttempts int64 // data-packet transmissions only
}

// Loss returns the empirical per-attempt loss ratio and whether enough
// attempts were observed to call it meaningful.
func (c LinkCounts) Loss(minAttempts int64) (float64, bool) {
	if c.Attempts < minAttempts || c.Attempts == 0 {
		return 0, false
	}
	return 1 - float64(c.Successes)/float64(c.Attempts), true
}

// Recorder accumulates ground truth for the current epoch.
type Recorder struct {
	links         map[topo.Link]*LinkCounts
	Generated     int64 // data packets created at origins
	Delivered     int64 // data packets that reached the sink
	Dropped       int64 // data packets dropped after retry exhaustion
	ParentChanges int64 // routing parent switches
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{links: make(map[topo.Link]*LinkCounts)}
}

// Attempt records one data-packet transmission on l and its outcome.
func (r *Recorder) Attempt(l topo.Link, received bool) {
	c := r.counts(l)
	c.Attempts++
	c.DataAttempts++
	if received {
		c.Successes++
	}
}

// Beacon records one beacon transmission on l and its outcome. Beacons
// sharpen the empirical loss ground truth without marking the link as
// data-active.
func (r *Recorder) Beacon(l topo.Link, received bool) {
	c := r.counts(l)
	c.Attempts++
	if received {
		c.Successes++
	}
}

func (r *Recorder) counts(l topo.Link) *LinkCounts {
	c := r.links[l]
	if c == nil {
		c = &LinkCounts{}
		r.links[l] = c
	}
	return c
}

// Link returns the accumulated counts for l (zero value if untouched).
func (r *Recorder) Link(l topo.Link) LinkCounts {
	if c := r.links[l]; c != nil {
		return *c
	}
	return LinkCounts{}
}

// Epoch is an immutable snapshot of one epoch's ground truth.
type Epoch struct {
	Links         map[topo.Link]LinkCounts
	Generated     int64
	Delivered     int64
	Dropped       int64
	ParentChanges int64
}

// ActiveLinks returns the links with at least minAttempts *data* attempts,
// in a deterministic order — the links a tomography scheme could plausibly
// estimate.
func (e *Epoch) ActiveLinks(minAttempts int64) []topo.Link {
	var out []topo.Link
	for l, c := range e.Links {
		if c.DataAttempts >= minAttempts {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// DeliveryRatio returns delivered/generated for the epoch (1 if nothing was
// generated).
func (e *Epoch) DeliveryRatio() float64 {
	if e.Generated == 0 {
		return 1
	}
	return float64(e.Delivered) / float64(e.Generated)
}

// Cut snapshots the current counters into an Epoch and resets the recorder
// for the next one.
func (r *Recorder) Cut() *Epoch {
	e := &Epoch{
		Links:         make(map[topo.Link]LinkCounts, len(r.links)),
		Generated:     r.Generated,
		Delivered:     r.Delivered,
		Dropped:       r.Dropped,
		ParentChanges: r.ParentChanges,
	}
	for l, c := range r.links {
		e.Links[l] = *c
	}
	r.links = make(map[topo.Link]*LinkCounts)
	r.Generated, r.Delivered, r.Dropped, r.ParentChanges = 0, 0, 0, 0
	return e
}
