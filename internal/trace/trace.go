// Package trace records ground truth while a simulation runs.
//
// Tomography schemes are scored against what the network actually did, not
// against the radio model's nominal parameters: the Recorder accumulates
// per-link transmission attempts and successes (the empirical per-attempt
// loss each estimator is trying to recover), plus delivery and routing-churn
// counters. Epoch boundaries snapshot and reset the counters so each
// estimation round is scored against its own window.
//
// Per-link state is a dense slice indexed by the topology's LinkTable; the
// map-shaped view survives only in the Link accessor for callers that hold
// a topo.Link.
package trace

import (
	"fmt"
	"math/bits"

	"dophy/internal/topo"
)

// LinkCounts accumulates per-attempt outcomes on one directed link. Data
// and beacon transmissions are both Bernoulli trials of the same link, so
// both feed the empirical loss; DataAttempts additionally marks which links
// actually carried data (the links tomography schemes can say anything
// about).
type LinkCounts struct {
	Attempts     int64 // individual radio transmissions (data + beacons)
	Successes    int64 // transmissions that were received
	DataAttempts int64 // data-packet transmissions only
}

// Loss returns the empirical per-attempt loss ratio and whether enough
// attempts were observed to call it meaningful.
func (c LinkCounts) Loss(minAttempts int64) (float64, bool) {
	if c.Attempts < minAttempts || c.Attempts == 0 {
		return 0, false
	}
	return 1 - float64(c.Successes)/float64(c.Attempts), true
}

// Recorder accumulates ground truth for the current epoch.
type Recorder struct {
	lt            *topo.LinkTable
	counts        []LinkCounts // indexed by lt
	prev          []LinkCounts // counts of the previous cut, kept for dirty diffing
	Generated     int64        // data packets created at origins
	Delivered     int64        // data packets that reached the sink
	Dropped       int64        // data packets dropped after retry exhaustion
	ParentChanges int64        // routing parent switches
}

// NewRecorder returns an empty recorder over the given link table.
func NewRecorder(lt *topo.LinkTable) *Recorder {
	return &Recorder{
		lt:     lt,
		counts: make([]LinkCounts, lt.Len()),
		prev:   make([]LinkCounts, lt.Len()),
	}
}

// Attempt records one data-packet transmission on l and its outcome.
//
//dophy:hotpath
func (r *Recorder) Attempt(l topo.Link, received bool) {
	c := r.at(l)
	c.Attempts++
	c.DataAttempts++
	if received {
		c.Successes++
	}
}

// Beacon records one beacon transmission on l and its outcome. Beacons
// sharpen the empirical loss ground truth without marking the link as
// data-active.
//
//dophy:hotpath
func (r *Recorder) Beacon(l topo.Link, received bool) {
	c := r.at(l)
	c.Attempts++
	if received {
		c.Successes++
	}
}

// at returns the live accumulator for l. The pointer aliases r.counts and
// only counts recorded before the next Cut are visible through it.
//
//dophy:returns borrowed(recv) -- the pointer aliases r.counts, which the next Cut zeroes
func (r *Recorder) at(l topo.Link) *LinkCounts {
	i := r.lt.Index(l)
	if i < 0 {
		panic(fmt.Sprintf("trace: %v is not a link of the topology", l))
	}
	return &r.counts[i]
}

// Link returns the accumulated counts for l (zero value if untouched or not
// a topology link).
//
//dophy:readonly recv -- point queries must not disturb the accumulating counts
func (r *Recorder) Link(l topo.Link) LinkCounts {
	if i := r.lt.Index(l); i >= 0 {
		return r.counts[i]
	}
	return LinkCounts{}
}

// Epoch is an immutable snapshot of one epoch's ground truth. Counts is
// dense, indexed by Table.
type Epoch struct {
	Table         *topo.LinkTable
	Counts        []LinkCounts
	Generated     int64
	Delivered     int64
	Dropped       int64
	ParentChanges int64
	// dirty is a dense bitmap over Table indices: bit i is set when link
	// i's counts differ from the previous cut of the same recorder(s). A
	// nil bitmap means no previous cut is known and every link must be
	// treated as dirty.
	dirty []uint64
}

// Link returns the counts for l (zero value if untouched or unknown).
//
//dophy:readonly recv -- epochs are immutable snapshots once cut
func (e *Epoch) Link(l topo.Link) LinkCounts {
	if e.Table == nil {
		return LinkCounts{}
	}
	if i := e.Table.Index(l); i >= 0 {
		return e.Counts[i]
	}
	return LinkCounts{}
}

// ActiveLinks returns the links with at least minAttempts *data* attempts,
// in canonical table order — the links a tomography scheme could plausibly
// estimate.
//
//dophy:readonly recv -- epochs are immutable snapshots once cut
func (e *Epoch) ActiveLinks(minAttempts int64) []topo.Link {
	return e.AppendActiveLinks(minAttempts, nil)
}

// AppendActiveLinks is the append-into variant of ActiveLinks for per-epoch
// hot paths: it extends buf (typically a reused scratch slice reset to
// length zero) instead of allocating a fresh slice each call.
//
//dophy:readonly recv -- epochs are immutable snapshots once cut; only buf's appended tail is written
func (e *Epoch) AppendActiveLinks(minAttempts int64, buf []topo.Link) []topo.Link {
	for i := topo.LinkIdx(0); i < e.Table.Count(); i++ {
		if e.Counts[i].DataAttempts >= minAttempts && e.Counts[i].Attempts > 0 {
			buf = append(buf, e.Table.Link(i))
		}
	}
	return buf
}

// ActiveLinkCount counts the links ActiveLinks would return without
// materialising them — for per-epoch scoring that only needs the total.
//
//dophy:readonly recv -- epochs are immutable snapshots once cut
func (e *Epoch) ActiveLinkCount(minAttempts int64) int {
	n := 0
	for i := topo.LinkIdx(0); i < e.Table.Count(); i++ {
		if e.Counts[i].DataAttempts >= minAttempts && e.Counts[i].Attempts > 0 {
			n++
		}
	}
	return n
}

// LinkDirty reports whether link i's counts changed relative to the
// previous cut. Without a previous cut every link reports dirty.
//
//dophy:readonly recv -- epochs are immutable snapshots once cut
func (e *Epoch) LinkDirty(i topo.LinkIdx) bool {
	if e.dirty == nil {
		return true
	}
	return e.dirty[uint(i)>>6]&(1<<(uint(i)&63)) != 0
}

// DirtyCount returns how many links changed since the previous cut.
//
//dophy:readonly recv -- epochs are immutable snapshots once cut
func (e *Epoch) DirtyCount() int {
	if e.dirty == nil {
		return len(e.Counts)
	}
	n := 0
	for _, w := range e.dirty {
		n += bits.OnesCount64(w)
	}
	return n
}

// DirtyLinks returns the indices of the links whose counts changed since
// the previous cut, in canonical table order. It allocates; incremental
// consumers on hot paths should query LinkDirty against the bitmap
// instead.
//
//dophy:readonly recv -- epochs are immutable snapshots once cut
func (e *Epoch) DirtyLinks() []topo.LinkIdx {
	out := make([]topo.LinkIdx, 0, e.DirtyCount())
	for i := topo.LinkIdx(0); int(i) < len(e.Counts); i++ {
		if e.LinkDirty(i) {
			out = append(out, i)
		}
	}
	return out
}

// DeliveryRatio returns delivered/generated for the epoch (1 if nothing was
// generated).
//
//dophy:readonly recv -- epochs are immutable snapshots once cut
func (e *Epoch) DeliveryRatio() float64 {
	if e.Generated == 0 {
		return 1
	}
	return float64(e.Delivered) / float64(e.Generated)
}

// CutMerged snapshots and resets several recorders into one combined
// Epoch. The sharded engine gives each shard a private recorder (so the
// hot-path counters never cross goroutines); every counter is a plain sum,
// so the merge is independent of shard count and order. All recorders must
// share the same link table.
func CutMerged(recs []*Recorder) *Epoch {
	if len(recs) == 0 {
		panic("trace: CutMerged needs at least one recorder")
	}
	e := recs[0].Cut()
	for _, r := range recs[1:] {
		if r.lt != e.Table {
			panic("trace: CutMerged recorders disagree on the link table")
		}
		part := r.Cut()
		for i := range e.Counts {
			e.Counts[i].Attempts += part.Counts[i].Attempts
			e.Counts[i].Successes += part.Counts[i].Successes
			e.Counts[i].DataAttempts += part.Counts[i].DataAttempts
		}
		// The merged counts are per-shard sums, so a link is unchanged
		// exactly when every shard's contribution is unchanged: OR-ing the
		// per-shard bitmaps is sound for any partition and exact when each
		// link is recorded by a single shard (sender-side recording).
		for i := range e.dirty {
			e.dirty[i] |= part.dirty[i]
		}
		e.Generated += part.Generated
		e.Delivered += part.Delivered
		e.Dropped += part.Dropped
		e.ParentChanges += part.ParentChanges
	}
	return e
}

// Cut snapshots the current counters into an Epoch and zeroes the recorder
// in place for the next one. The dirty bitmap is diffed against the
// previous cut's counts here, while both windows are still at hand — the
// snapshot and the bitmap are the only per-epoch allocations.
//
//dophy:invalidates
func (r *Recorder) Cut() *Epoch {
	e := &Epoch{
		Table:         r.lt,
		Counts:        make([]LinkCounts, len(r.counts)),
		Generated:     r.Generated,
		Delivered:     r.Delivered,
		Dropped:       r.Dropped,
		ParentChanges: r.ParentChanges,
		dirty:         make([]uint64, (len(r.counts)+63)/64),
	}
	copy(e.Counts, r.counts)
	for i := range r.counts {
		if r.counts[i] != r.prev[i] {
			e.dirty[uint(i)>>6] |= 1 << (uint(i) & 63)
		}
	}
	copy(r.prev, r.counts)
	clear(r.counts)
	r.Generated, r.Delivered, r.Dropped, r.ParentChanges = 0, 0, 0, 0
	return e
}
