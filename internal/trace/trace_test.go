package trace

import (
	"math"
	"testing"

	"dophy/internal/topo"
)

// testTable builds a 4-node chain: links 0<->1, 1<->2, 2<->3.
func testTable(t *testing.T) *topo.LinkTable {
	t.Helper()
	return topo.Chain(4, 10, 10.5).LinkTable()
}

var l12 = topo.Link{From: 1, To: 2}
var l21 = topo.Link{From: 2, To: 1}

func TestAttemptAccumulates(t *testing.T) {
	r := NewRecorder(testTable(t))
	r.Attempt(l12, true)
	r.Attempt(l12, false)
	r.Attempt(l12, true)
	c := r.Link(l12)
	if c.Attempts != 3 || c.Successes != 2 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestDirectionsSeparate(t *testing.T) {
	r := NewRecorder(testTable(t))
	r.Attempt(l12, true)
	r.Attempt(l21, false)
	if r.Link(l12).Successes != 1 || r.Link(l21).Successes != 0 {
		t.Fatal("directions conflated")
	}
}

func TestUntouchedLinkZero(t *testing.T) {
	r := NewRecorder(testTable(t))
	if c := r.Link(l12); c.Attempts != 0 || c.Successes != 0 {
		t.Fatalf("untouched link = %+v", c)
	}
}

func TestNonTopologyLinkPanics(t *testing.T) {
	r := NewRecorder(testTable(t))
	defer func() {
		if recover() == nil {
			t.Fatal("recording a non-topology link did not panic")
		}
	}()
	r.Attempt(topo.Link{From: 0, To: 3}, true)
}

func TestLossComputation(t *testing.T) {
	c := LinkCounts{Attempts: 10, Successes: 7}
	loss, ok := c.Loss(5)
	if !ok || math.Abs(loss-0.3) > 1e-12 {
		t.Fatalf("loss = %v ok=%v", loss, ok)
	}
	if _, ok := c.Loss(11); ok {
		t.Fatal("loss reported ok below minAttempts")
	}
	if _, ok := (LinkCounts{}).Loss(0); ok {
		t.Fatal("zero attempts reported ok")
	}
}

func TestCutSnapshotsAndResets(t *testing.T) {
	r := NewRecorder(testTable(t))
	r.Attempt(l12, true)
	r.Generated, r.Delivered, r.Dropped, r.ParentChanges = 5, 4, 1, 2
	e := r.Cut()
	if e.Generated != 5 || e.Delivered != 4 || e.Dropped != 1 || e.ParentChanges != 2 {
		t.Fatalf("epoch = %+v", e)
	}
	if e.Link(l12).Attempts != 1 {
		t.Fatal("epoch missing link counts")
	}
	// Recorder must now be clean.
	if r.Generated != 0 || r.Link(l12).Attempts != 0 {
		t.Fatal("Cut did not reset the recorder")
	}
	// Epoch must be immune to further recording.
	r.Attempt(l12, true)
	if e.Link(l12).Attempts != 1 {
		t.Fatal("epoch snapshot aliases live counters")
	}
}

func TestActiveLinksDeterministicOrder(t *testing.T) {
	// Star-ish layout: 0 adjacent to 1,2,3; 1 adjacent to 2 as well.
	tp := topo.FromPoints([]topo.Point{{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 0, Y: 5}, {X: -5, Y: 0}}, 7.1)
	r := NewRecorder(tp.LinkTable())
	links := []topo.Link{{From: 3, To: 0}, {From: 1, To: 2}, {From: 1, To: 0}, {From: 2, To: 0}}
	for _, l := range links {
		r.Attempt(l, true)
		r.Attempt(l, true)
	}
	r.Attempt(topo.Link{From: 2, To: 1}, true) // only one attempt
	e := r.Cut()
	got := e.ActiveLinks(2)
	want := []topo.Link{{From: 1, To: 0}, {From: 1, To: 2}, {From: 2, To: 0}, {From: 3, To: 0}}
	if len(got) != len(want) {
		t.Fatalf("active links = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("active links = %v, want %v", got, want)
		}
	}
}

func TestDeliveryRatio(t *testing.T) {
	e := &Epoch{Generated: 10, Delivered: 9}
	if e.DeliveryRatio() != 0.9 {
		t.Fatalf("ratio = %v", e.DeliveryRatio())
	}
	empty := &Epoch{}
	if empty.DeliveryRatio() != 1 {
		t.Fatalf("empty epoch ratio = %v", empty.DeliveryRatio())
	}
}

func TestBeaconVsDataAttempts(t *testing.T) {
	r := NewRecorder(testTable(t))
	r.Attempt(l12, true)
	r.Beacon(l12, false)
	r.Beacon(l12, true)
	c := r.Link(l12)
	if c.Attempts != 3 || c.Successes != 2 || c.DataAttempts != 1 {
		t.Fatalf("counts = %+v", c)
	}
	e := r.Cut()
	// Beacon-only links are not data-active.
	r2 := NewRecorder(testTable(t))
	r2.Beacon(l21, true)
	r2.Beacon(l21, true)
	e2 := r2.Cut()
	if len(e2.ActiveLinks(1)) != 0 {
		t.Fatal("beacon-only link reported data-active")
	}
	if len(e.ActiveLinks(1)) != 1 {
		t.Fatal("data link not reported active")
	}
}
