package trace

import (
	"math"
	"testing"

	"dophy/internal/topo"
)

// testTable builds a 4-node chain: links 0<->1, 1<->2, 2<->3.
func testTable(t *testing.T) *topo.LinkTable {
	t.Helper()
	return topo.Chain(4, 10, 10.5).LinkTable()
}

var l12 = topo.Link{From: 1, To: 2}
var l21 = topo.Link{From: 2, To: 1}

func TestAttemptAccumulates(t *testing.T) {
	r := NewRecorder(testTable(t))
	r.Attempt(l12, true)
	r.Attempt(l12, false)
	r.Attempt(l12, true)
	c := r.Link(l12)
	if c.Attempts != 3 || c.Successes != 2 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestDirectionsSeparate(t *testing.T) {
	r := NewRecorder(testTable(t))
	r.Attempt(l12, true)
	r.Attempt(l21, false)
	if r.Link(l12).Successes != 1 || r.Link(l21).Successes != 0 {
		t.Fatal("directions conflated")
	}
}

func TestUntouchedLinkZero(t *testing.T) {
	r := NewRecorder(testTable(t))
	if c := r.Link(l12); c.Attempts != 0 || c.Successes != 0 {
		t.Fatalf("untouched link = %+v", c)
	}
}

func TestNonTopologyLinkPanics(t *testing.T) {
	r := NewRecorder(testTable(t))
	defer func() {
		if recover() == nil {
			t.Fatal("recording a non-topology link did not panic")
		}
	}()
	r.Attempt(topo.Link{From: 0, To: 3}, true)
}

func TestLossComputation(t *testing.T) {
	c := LinkCounts{Attempts: 10, Successes: 7}
	loss, ok := c.Loss(5)
	if !ok || math.Abs(loss-0.3) > 1e-12 {
		t.Fatalf("loss = %v ok=%v", loss, ok)
	}
	if _, ok := c.Loss(11); ok {
		t.Fatal("loss reported ok below minAttempts")
	}
	if _, ok := (LinkCounts{}).Loss(0); ok {
		t.Fatal("zero attempts reported ok")
	}
}

func TestCutSnapshotsAndResets(t *testing.T) {
	r := NewRecorder(testTable(t))
	r.Attempt(l12, true)
	r.Generated, r.Delivered, r.Dropped, r.ParentChanges = 5, 4, 1, 2
	e := r.Cut()
	if e.Generated != 5 || e.Delivered != 4 || e.Dropped != 1 || e.ParentChanges != 2 {
		t.Fatalf("epoch = %+v", e)
	}
	if e.Link(l12).Attempts != 1 {
		t.Fatal("epoch missing link counts")
	}
	// Recorder must now be clean.
	if r.Generated != 0 || r.Link(l12).Attempts != 0 {
		t.Fatal("Cut did not reset the recorder")
	}
	// Epoch must be immune to further recording.
	r.Attempt(l12, true)
	if e.Link(l12).Attempts != 1 {
		t.Fatal("epoch snapshot aliases live counters")
	}
}

func TestActiveLinksDeterministicOrder(t *testing.T) {
	// Star-ish layout: 0 adjacent to 1,2,3; 1 adjacent to 2 as well.
	tp := topo.FromPoints([]topo.Point{{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 0, Y: 5}, {X: -5, Y: 0}}, 7.1)
	r := NewRecorder(tp.LinkTable())
	links := []topo.Link{{From: 3, To: 0}, {From: 1, To: 2}, {From: 1, To: 0}, {From: 2, To: 0}}
	for _, l := range links {
		r.Attempt(l, true)
		r.Attempt(l, true)
	}
	r.Attempt(topo.Link{From: 2, To: 1}, true) // only one attempt
	e := r.Cut()
	got := e.ActiveLinks(2)
	want := []topo.Link{{From: 1, To: 0}, {From: 1, To: 2}, {From: 2, To: 0}, {From: 3, To: 0}}
	if len(got) != len(want) {
		t.Fatalf("active links = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("active links = %v, want %v", got, want)
		}
	}
}

func TestDeliveryRatio(t *testing.T) {
	e := &Epoch{Generated: 10, Delivered: 9}
	if e.DeliveryRatio() != 0.9 {
		t.Fatalf("ratio = %v", e.DeliveryRatio())
	}
	empty := &Epoch{}
	if empty.DeliveryRatio() != 1 {
		t.Fatalf("empty epoch ratio = %v", empty.DeliveryRatio())
	}
}

func TestBeaconVsDataAttempts(t *testing.T) {
	r := NewRecorder(testTable(t))
	r.Attempt(l12, true)
	r.Beacon(l12, false)
	r.Beacon(l12, true)
	c := r.Link(l12)
	if c.Attempts != 3 || c.Successes != 2 || c.DataAttempts != 1 {
		t.Fatalf("counts = %+v", c)
	}
	e := r.Cut()
	// Beacon-only links are not data-active.
	r2 := NewRecorder(testTable(t))
	r2.Beacon(l21, true)
	r2.Beacon(l21, true)
	e2 := r2.Cut()
	if len(e2.ActiveLinks(1)) != 0 {
		t.Fatal("beacon-only link reported data-active")
	}
	if len(e.ActiveLinks(1)) != 1 {
		t.Fatal("data link not reported active")
	}
}

func TestDirtyLinksAcrossCuts(t *testing.T) {
	lt := testTable(t)
	r := NewRecorder(lt)
	i12 := lt.Index(l12)
	i21 := lt.Index(l21)

	// First cut: no previous window, so exactly the touched links are dirty
	// (untouched links are zero in both windows).
	r.Attempt(l12, true)
	e1 := r.Cut()
	if !e1.LinkDirty(i12) || e1.LinkDirty(i21) {
		t.Fatalf("first cut dirty = %v", e1.DirtyLinks())
	}
	if got := e1.DirtyLinks(); len(got) != 1 || got[0] != i12 {
		t.Fatalf("DirtyLinks = %v, want [%d]", got, i12)
	}
	if e1.DirtyCount() != 1 {
		t.Fatalf("DirtyCount = %d", e1.DirtyCount())
	}

	// Second epoch repeats the first exactly: nothing is dirty.
	r.Attempt(l12, true)
	e2 := r.Cut()
	if e2.DirtyCount() != 0 {
		t.Fatalf("identical epoch dirty = %v", e2.DirtyLinks())
	}

	// Third epoch changes l12's outcome mix and touches l21.
	r.Attempt(l12, false)
	r.Attempt(l21, true)
	e3 := r.Cut()
	if !e3.LinkDirty(i12) || !e3.LinkDirty(i21) || e3.DirtyCount() != 2 {
		t.Fatalf("third cut dirty = %v", e3.DirtyLinks())
	}

	// Fourth epoch is silent: the previously-active links went quiet, which
	// is itself a change.
	e4 := r.Cut()
	if !e4.LinkDirty(i12) || !e4.LinkDirty(i21) {
		t.Fatalf("quiet epoch dirty = %v", e4.DirtyLinks())
	}
	e5 := r.Cut()
	if e5.DirtyCount() != 0 {
		t.Fatalf("steady quiet epoch dirty = %v", e5.DirtyLinks())
	}
}

func TestDirtyNilBitmapConservative(t *testing.T) {
	lt := testTable(t)
	e := &Epoch{Table: lt, Counts: make([]LinkCounts, lt.Len())}
	if !e.LinkDirty(0) || e.DirtyCount() != len(e.Counts) {
		t.Fatal("hand-built epoch without a bitmap must report all links dirty")
	}
	if got := e.DirtyLinks(); len(got) != len(e.Counts) {
		t.Fatalf("DirtyLinks = %d entries, want %d", len(got), len(e.Counts))
	}
}

func TestCutMergedDirtyUnion(t *testing.T) {
	lt := testTable(t)
	ra, rb := NewRecorder(lt), NewRecorder(lt)
	ra.Attempt(l12, true)
	rb.Attempt(l21, false)
	e := CutMerged([]*Recorder{ra, rb})
	if !e.LinkDirty(lt.Index(l12)) || !e.LinkDirty(lt.Index(l21)) {
		t.Fatalf("merged dirty = %v", e.DirtyLinks())
	}
	if e.DirtyCount() != 2 {
		t.Fatalf("merged DirtyCount = %d", e.DirtyCount())
	}
	// A second identical round is clean in both shards, hence clean merged.
	ra.Attempt(l12, true)
	rb.Attempt(l21, false)
	if e := CutMerged([]*Recorder{ra, rb}); e.DirtyCount() != 0 {
		t.Fatalf("identical merged round dirty = %v", e.DirtyLinks())
	}
}

func TestAppendActiveLinksMatchesActiveLinks(t *testing.T) {
	lt := testTable(t)
	r := NewRecorder(lt)
	r.Attempt(l12, true)
	r.Attempt(l21, false)
	e := r.Cut()
	want := e.ActiveLinks(1)
	buf := make([]topo.Link, 0, 8)
	buf = append(buf, topo.Link{From: 3, To: 2}) // pre-existing content survives
	got := e.AppendActiveLinks(1, buf)
	if len(got) != 1+len(want) {
		t.Fatalf("appended %d links, want %d", len(got)-1, len(want))
	}
	for i, l := range want {
		if got[i+1] != l {
			t.Fatalf("AppendActiveLinks = %v, want prefix+%v", got, want)
		}
	}
}
