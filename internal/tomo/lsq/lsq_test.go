package lsq

import (
	"math"
	"testing"

	"dophy/internal/tomo/epochobs"
	"dophy/internal/tomo/geomle"
	"dophy/internal/topo"
)

// chainTable is the link table of an n-node chain matching chainEpoch's
// tree.
func chainTable(nodes int) *topo.LinkTable {
	return topo.Chain(nodes, 10, 10.5).LinkTable()
}

// starTable covers the tree {-1,0,1,1}: 1 adjacent to the sink, 2 and 3
// adjacent to 1.
func starTable() *topo.LinkTable {
	return topo.FromPoints([]topo.Point{{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 5, Y: 5}, {X: 5, Y: -5}}, 5.5).LinkTable()
}

// toMap converts a dense estimate vector to the map shape the assertions
// index by, dropping NaN (not-estimated) entries.
func toMap(lt *topo.LinkTable, est []float64) map[topo.Link]float64 {
	out := map[topo.Link]float64{}
	for i, v := range est {
		if !math.IsNaN(v) {
			out[lt.Link(topo.LinkIdx(i))] = v
		}
	}
	return out
}

// chainEpoch builds an epoch over the tree 3->2->1->0 where every node sent
// n packets and per-hop drop probabilities are given (index i = link from
// node i+1... see below).
func chainEpoch(n int64, drops []float64) *epochobs.Epoch {
	// drops[i] is the drop probability of link (i+1) -> i for i=0..len-1.
	nodes := len(drops) + 1
	e := &epochobs.Epoch{
		Delivered: make([]int64, nodes),
		Expected:  make([]int64, nodes),
		Tree:      make([]topo.NodeID, nodes),
	}
	e.Tree[0] = -1
	for i := 1; i < nodes; i++ {
		e.Tree[i] = topo.NodeID(i - 1)
		deliver := 1.0
		for j := 0; j < i; j++ {
			deliver *= 1 - drops[j]
		}
		e.Expected[i] = n
		e.Delivered[i] = int64(math.Round(float64(n) * deliver))
	}
	return e
}

func TestRecoversChainDrops(t *testing.T) {
	drops := []float64{0.02, 0.05, 0.1}
	e := chainEpoch(100000, drops)
	cfg := DefaultConfig()
	lt := chainTable(4)
	got := toMap(lt, NewEstimator(lt, cfg).Estimate(e))
	if len(got) != 3 {
		t.Fatalf("estimated %d links", len(got))
	}
	for i, d := range drops {
		l := topo.Link{From: topo.NodeID(i + 1), To: topo.NodeID(i)}
		wantLoss := geomle.LossFromDrop(d, cfg.MaxAttempts)
		if math.Abs(got[l]-wantLoss) > 0.02 {
			t.Fatalf("link %v loss = %v, want ~%v", l, got[l], wantLoss)
		}
	}
}

func TestPerfectDeliveryZeroLoss(t *testing.T) {
	e := chainEpoch(1000, []float64{0, 0})
	lt := chainTable(3)
	got := toMap(lt, NewEstimator(lt, DefaultConfig()).Estimate(e))
	for l, loss := range got {
		if loss > 0.01 {
			t.Fatalf("lossless link %v estimated at %v", l, loss)
		}
	}
}

func TestSkipsUnderSampledOrigins(t *testing.T) {
	e := chainEpoch(2, []float64{0.1}) // below MinExpected
	lt := chainTable(2)
	got := toMap(lt, NewEstimator(lt, DefaultConfig()).Estimate(e))
	if len(got) != 0 {
		t.Fatalf("under-sampled epoch produced estimates: %v", got)
	}
}

func TestSkipsUnroutedOrigins(t *testing.T) {
	e := chainEpoch(1000, []float64{0.1, 0.1})
	e.Tree[1] = -1 // break the shared tail; origins 1 and 2 lose their paths
	lt := chainTable(3)
	got := toMap(lt, NewEstimator(lt, DefaultConfig()).Estimate(e))
	if len(got) != 0 {
		t.Fatalf("unroutable origins produced estimates: %v", got)
	}
}

func TestZeroDeliveryClamped(t *testing.T) {
	e := chainEpoch(100, []float64{0.5})
	e.Delivered[1] = 0 // nothing arrived
	lt := chainTable(2)
	got := toMap(lt, NewEstimator(lt, DefaultConfig()).Estimate(e))
	l := topo.Link{From: 1, To: 0}
	if got[l] <= 0 || got[l] > 1 || math.IsInf(got[l], 0) || math.IsNaN(got[l]) {
		t.Fatalf("zero-delivery estimate = %v", got[l])
	}
}

func TestEmptyEpoch(t *testing.T) {
	e := &epochobs.Epoch{Delivered: make([]int64, 3), Expected: make([]int64, 3), Tree: []topo.NodeID{-1, -1, -1}}
	lt := chainTable(3)
	if got := toMap(lt, NewEstimator(lt, DefaultConfig()).Estimate(e)); len(got) != 0 {
		t.Fatalf("empty epoch gave %v", got)
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MaxAttempts 0 accepted")
		}
	}()
	NewEstimator(chainTable(2), Config{MaxAttempts: 0})
}

func TestEstimatorReuseAcrossEpochs(t *testing.T) {
	// The same estimator must give identical answers on repeated epochs —
	// scratch reuse must not leak state across calls.
	lt := chainTable(4)
	est := NewEstimator(lt, DefaultConfig())
	// Estimate returns borrowed scratch: copy out before the next call.
	first := append([]float64(nil), est.Estimate(chainEpoch(100000, []float64{0.02, 0.05, 0.1}))...)
	est.Estimate(chainEpoch(1000, []float64{0, 0, 0})) // interleaved epoch
	again := est.Estimate(chainEpoch(100000, []float64{0.02, 0.05, 0.1}))
	for i := range first {
		a, b := first[i], again[i]
		if math.IsNaN(a) != math.IsNaN(b) || (!math.IsNaN(a) && a != b) {
			t.Fatalf("link %v: %v then %v across reuse", lt.Link(topo.LinkIdx(i)), a, b)
		}
	}
}

func TestBranchyTree(t *testing.T) {
	// Star over a shared trunk: 2->1->0, 3->1->0. Trunk link 1->0 shared.
	e := &epochobs.Epoch{
		Delivered: make([]int64, 4),
		Expected:  make([]int64, 4),
		Tree:      []topo.NodeID{-1, 0, 1, 1},
	}
	const n = 50000
	dTrunk, d2, d3 := 0.04, 0.1, 0.02
	e.Expected[1], e.Delivered[1] = n, int64(math.Round(n*(1-dTrunk)))
	e.Expected[2], e.Delivered[2] = n, int64(math.Round(n*(1-d2)*(1-dTrunk)))
	e.Expected[3], e.Delivered[3] = n, int64(math.Round(n*(1-d3)*(1-dTrunk)))
	cfg := DefaultConfig()
	lt := starTable()
	got := toMap(lt, NewEstimator(lt, cfg).Estimate(e))
	check := func(l topo.Link, drop float64) {
		want := geomle.LossFromDrop(drop, cfg.MaxAttempts)
		if math.Abs(got[l]-want) > 0.03 {
			t.Fatalf("link %v = %v, want ~%v (full: %v)", l, got[l], want, got)
		}
	}
	check(topo.Link{From: 1, To: 0}, dTrunk)
	check(topo.Link{From: 2, To: 1}, d2)
	check(topo.Link{From: 3, To: 1}, d3)
}
