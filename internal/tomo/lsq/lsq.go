// Package lsq is the linear least-squares loss-tomography baseline: the
// classic static-path method that writes each source's end-to-end delivery
// ratio as the product of per-link (per-hop, post-ARQ) success
// probabilities, takes logs, and solves the resulting linear system over the
// assumed routing tree with non-negativity constraints.
//
// Its two structural weaknesses are exactly what the paper exploits:
//
//  1. It sees only end-to-end delivery, and with ARQ almost everything is
//     delivered, so per-hop drop probabilities are tiny and the implied
//     per-attempt loss is poorly identified.
//  2. It assumes the epoch's paths were static; under dynamic parent
//     selection the attribution of loss to links smears.
package lsq

import (
	"math"

	"dophy/internal/mat"
	"dophy/internal/tomo/epochobs"
	"dophy/internal/tomo/geomle"
	"dophy/internal/topo"
)

// Config tunes the baseline.
type Config struct {
	// MaxAttempts is the MAC budget, used to convert per-hop drop
	// probability into per-attempt loss for comparison with Dophy.
	MaxAttempts int
	// MinExpected skips origins with fewer expected packets in the epoch.
	MinExpected int64
	// Iters/Tol drive the NNLS solver.
	Iters int
	Tol   float64
}

// DefaultConfig returns solver settings adequate for network-sized systems.
func DefaultConfig() Config {
	return Config{MaxAttempts: 8, MinExpected: 5, Iters: 4000, Tol: 1e-10}
}

// Estimate runs the baseline over one epoch of sink observations and
// returns per-link per-attempt loss estimates for every link on a usable
// path.
func Estimate(e *epochobs.Epoch, cfg Config) map[topo.Link]float64 {
	if cfg.MaxAttempts < 1 {
		panic("lsq: MaxAttempts must be >= 1")
	}
	// Gather usable origins and the link set their tree paths cover.
	type row struct {
		links []topo.Link
		b     float64
	}
	var rows []row
	linkIdx := make(map[topo.Link]int)
	var links []topo.Link
	for origin := range e.Delivered {
		id := topo.NodeID(origin)
		if id == topo.Sink {
			continue
		}
		n := e.Expected[origin]
		if n < cfg.MinExpected {
			continue
		}
		path, ok := e.PathToSink(id)
		if !ok {
			continue
		}
		dr := float64(e.Delivered[origin]) / float64(n)
		if dr <= 0 {
			// Nothing arrived: unbounded loss; clamp to a small ratio so
			// the log stays finite (one phantom delivery).
			dr = 0.5 / float64(n)
		}
		if dr > 1 {
			dr = 1
		}
		rows = append(rows, row{links: path, b: -math.Log(dr)})
		for _, l := range path {
			if _, seen := linkIdx[l]; !seen {
				linkIdx[l] = len(links)
				links = append(links, l)
			}
		}
	}
	if len(rows) == 0 || len(links) == 0 {
		return map[topo.Link]float64{}
	}
	a := mat.NewDense(len(rows), len(links))
	b := make([]float64, len(rows))
	for i, r := range rows {
		b[i] = r.b
		for _, l := range r.links {
			a.Set(i, linkIdx[l], 1)
		}
	}
	x := mat.NNLS(a, b, cfg.Iters, cfg.Tol)
	out := make(map[topo.Link]float64, len(links))
	for l, j := range linkIdx {
		drop := 1 - math.Exp(-x[j]) // per-hop post-ARQ drop probability
		out[l] = geomle.LossFromDrop(drop, cfg.MaxAttempts)
	}
	return out
}
