// Package lsq is the linear least-squares loss-tomography baseline: the
// classic static-path method that writes each source's end-to-end delivery
// ratio as the product of per-link (per-hop, post-ARQ) success
// probabilities, takes logs, and solves the resulting linear system over the
// assumed routing tree with non-negativity constraints.
//
// Its two structural weaknesses are exactly what the paper exploits:
//
//  1. It sees only end-to-end delivery, and with ARQ almost everything is
//     delivered, so per-hop drop probabilities are tiny and the implied
//     per-attempt loss is poorly identified.
//  2. It assumes the epoch's paths were static; under dynamic parent
//     selection the attribution of loss to links smears.
package lsq

import (
	"math"

	"dophy/internal/mat"
	"dophy/internal/tomo/epochobs"
	"dophy/internal/tomo/geomle"
	"dophy/internal/topo"
)

// Config tunes the baseline.
type Config struct {
	// MaxAttempts is the MAC budget, used to convert per-hop drop
	// probability into per-attempt loss for comparison with Dophy.
	MaxAttempts int
	// MinExpected skips origins with fewer expected packets in the epoch.
	MinExpected int64
	// Iters/Tol drive the NNLS solver.
	Iters int
	Tol   float64
}

// DefaultConfig returns solver settings adequate for network-sized systems.
func DefaultConfig() Config {
	return Config{MaxAttempts: 8, MinExpected: 5, Iters: 4000, Tol: 1e-10}
}

// Estimator solves the baseline for successive epochs of one topology,
// reusing its row/column scratch, system matrix, and NNLS workspace across
// calls. Only the returned estimate vector is allocated per epoch.
type Estimator struct {
	cfg Config
	lt  *topo.LinkTable

	a    mat.Dense      // system matrix scratch, reshaped per epoch
	nnls mat.NNLSSolver // solver scratch

	// colOf maps table index -> compact solver column (-1 = not on any
	// usable path this epoch); cols is the inverse, in first-encounter
	// order over origins — the column order the NNLS solve has always used.
	colOf    []int32        // indexed by topo.LinkIdx; holds compact columns
	cols     []topo.LinkIdx // compact column -> table index
	pathBuf  []topo.LinkIdx // all rows' link indices, flattened
	rowStart []int32        // pathBuf offset per row, plus a final sentinel
	b        []float64
}

// NewEstimator validates the configuration and binds it to a link table.
func NewEstimator(lt *topo.LinkTable, cfg Config) *Estimator {
	if cfg.MaxAttempts < 1 {
		panic("lsq: MaxAttempts must be >= 1")
	}
	est := &Estimator{cfg: cfg, lt: lt, colOf: make([]int32, lt.Len())}
	for i := range est.colOf {
		est.colOf[i] = -1
	}
	return est
}

// Estimate runs the baseline over one epoch of sink observations. The
// result is dense, indexed by the link table; NaN marks links not on any
// usable path. The caller owns the returned slice.
//
//dophy:hotpath
func (est *Estimator) Estimate(e *epochobs.Epoch) []float64 {
	cfg := est.cfg
	for _, c := range est.cols {
		est.colOf[c] = -1
	}
	est.cols = est.cols[:0]
	est.pathBuf = est.pathBuf[:0]
	est.rowStart = est.rowStart[:0]
	est.b = est.b[:0]

	// Gather usable origins and the link set their tree paths cover.
	for origin := range e.Delivered {
		id := topo.NodeID(origin)
		if id == topo.Sink {
			continue
		}
		n := e.Expected[origin]
		if n < cfg.MinExpected {
			continue
		}
		mark := len(est.pathBuf)
		buf, ok := e.AppendPathIndices(est.lt, id, est.pathBuf)
		est.pathBuf = buf
		if !ok {
			continue
		}
		dr := float64(e.Delivered[origin]) / float64(n)
		if dr <= 0 {
			// Nothing arrived: unbounded loss; clamp to a small ratio so
			// the log stays finite (one phantom delivery).
			dr = 0.5 / float64(n)
		}
		if dr > 1 {
			dr = 1
		}
		est.rowStart = append(est.rowStart, int32(mark))
		est.b = append(est.b, -math.Log(dr))
		for _, li := range est.pathBuf[mark:] {
			if est.colOf[li] < 0 {
				est.colOf[li] = int32(len(est.cols))
				est.cols = append(est.cols, li)
			}
		}
	}
	est.rowStart = append(est.rowStart, int32(len(est.pathBuf)))

	//dophy:allow hotpathalloc -- the dense estimate vector is the epoch's product; the caller owns it
	out := make([]float64, est.lt.Len())
	for i := range out {
		out[i] = math.NaN()
	}
	rows := len(est.b)
	if rows == 0 || len(est.cols) == 0 {
		return out
	}
	est.a.Reshape(rows, len(est.cols))
	a := &est.a
	for i := 0; i < rows; i++ {
		for _, li := range est.pathBuf[est.rowStart[i]:est.rowStart[i+1]] {
			a.Set(i, int(est.colOf[li]), 1)
		}
	}
	x := est.nnls.Solve(a, est.b, cfg.Iters, cfg.Tol)
	for j, li := range est.cols {
		drop := 1 - math.Exp(-x[j]) // per-hop post-ARQ drop probability
		out[li] = geomle.LossFromDrop(drop, cfg.MaxAttempts)
	}
	return out
}
