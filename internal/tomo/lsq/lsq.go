// Package lsq is the linear least-squares loss-tomography baseline: the
// classic static-path method that writes each source's end-to-end delivery
// ratio as the product of per-link (per-hop, post-ARQ) success
// probabilities, takes logs, and solves the resulting linear system over the
// assumed routing tree with non-negativity constraints.
//
// Its two structural weaknesses are exactly what the paper exploits:
//
//  1. It sees only end-to-end delivery, and with ARQ almost everything is
//     delivered, so per-hop drop probabilities are tiny and the implied
//     per-attempt loss is poorly identified.
//  2. It assumes the epoch's paths were static; under dynamic parent
//     selection the attribution of loss to links smears.
package lsq

import (
	"math"

	"dophy/internal/mat"
	"dophy/internal/tomo/epochobs"
	"dophy/internal/tomo/geomle"
	"dophy/internal/topo"
)

// Config tunes the baseline.
type Config struct {
	// MaxAttempts is the MAC budget, used to convert per-hop drop
	// probability into per-attempt loss for comparison with Dophy.
	MaxAttempts int
	// MinExpected skips origins with fewer expected packets in the epoch.
	MinExpected int64
	// Iters/Tol drive the NNLS solver.
	Iters int
	Tol   float64
	// DirtyThreshold enables incremental re-estimation when positive: an
	// epoch whose dirty-row fraction is at or below the threshold reuses
	// the previous epoch's Gram matrix (rank-k updated) and warm-starts
	// the NNLS solve from the previous solution; above it the estimator
	// falls back to the bitwise-exact from-scratch solve. Zero (the
	// default) keeps the historical always-from-scratch behaviour.
	DirtyThreshold float64
}

// DefaultDirtyThreshold is the dirty-row fraction above which incremental
// mode falls back to a full solve: past roughly a quarter of the rows the
// rank-k update and the longer warm iteration stop paying for themselves.
const DefaultDirtyThreshold = 0.25

// DefaultConfig returns solver settings adequate for network-sized systems.
func DefaultConfig() Config {
	return Config{MaxAttempts: 8, MinExpected: 5, Iters: 4000, Tol: 1e-10}
}

// Estimator solves the baseline for successive epochs of one topology,
// reusing its row/column scratch, system matrix, NNLS workspace and the
// estimate vector itself across calls: Estimate returns a borrowed view of
// estimator-owned scratch, rewritten by the next call.
//
//dophy:states new: Estimate -> estimated; estimated: Estimate|LastStats -> estimated
type Estimator struct {
	cfg Config
	lt  *topo.LinkTable

	a    mat.Dense      // system matrix scratch, reshaped per epoch
	nnls mat.NNLSSolver // solver scratch

	// colOf maps table index -> compact solver column (-1 = not on any
	// usable path this epoch); cols is the inverse, in first-encounter
	// order over origins — the column order the NNLS solve has always used.
	colOf     []int32        // indexed by topo.LinkIdx; holds compact columns
	cols      []topo.LinkIdx // compact column -> table index
	pathBuf   []topo.LinkIdx // all rows' link indices, flattened
	rowStart  []int32        // pathBuf offset per row, plus a final sentinel
	b         []float64
	rowOrigin []int32   // origin node per row, for matching rows across epochs
	out       []float64 // the returned estimate: borrowed scratch, rewritten per call

	// Incremental state (maintained only when cfg.DirtyThreshold > 0): the
	// previous epoch's rows, assembled system and solution, so a
	// mostly-clean epoch can rank-k-update the Gram matrix and warm-start
	// from xPrev instead of re-solving from scratch.
	haveState     bool
	prevCols      []topo.LinkIdx
	prevPathBuf   []topo.LinkIdx
	prevRowStart  []int32
	prevB         []float64
	prevRowOrigin []int32
	gram          mat.Dense
	atb           []float64
	xPrev         []float64
	outPrev       []float64
	subRows       mat.Dense // rank-k update scratch: old contents of dirty rows
	addRows       mat.Dense // rank-k update scratch: new contents of dirty rows
	subSrc        []int32   // previous-row indices leaving the Gram matrix
	addSrc        []int32   // current-row indices entering the Gram matrix
	stats         Stats
}

// Stats describes which path the last Estimate call took.
type Stats struct {
	// Mode is "off" (DirtyThreshold disabled), "full" (from-scratch
	// solve), "warm" (rank-k Gram update + warm-started solve) or "copy"
	// (zero dirty rows: previous output returned verbatim).
	Mode      string
	DirtyRows int // dirty rows detected (matched-and-changed + added + removed)
	Rows      int // rows in the current system
}

// LastStats reports how the most recent Estimate call was solved.
func (est *Estimator) LastStats() Stats { return est.stats }

// NewEstimator validates the configuration and binds it to a link table.
//
//dophy:readonly lt -- the table is shared with every other estimator and the recorder
func NewEstimator(lt *topo.LinkTable, cfg Config) *Estimator {
	if cfg.MaxAttempts < 1 {
		panic("lsq: MaxAttempts must be >= 1")
	}
	est := &Estimator{cfg: cfg, lt: lt, colOf: make([]int32, lt.Len())}
	for i := range est.colOf {
		//dophy:allow readonly -- colOf is fresh make scratch; the flow-insensitive lattice taints est with lt only because the literal above stores the pointer
		est.colOf[i] = -1
	}
	return est
}

// Estimate runs the baseline over one epoch of sink observations. The
// result is dense, indexed by the link table; NaN marks links not on any
// usable path. The returned slice aliases the estimator's scratch and is
// valid until the next Estimate call; retaining it across epochs requires
// copying it out.
//
//dophy:returns borrowed(recv) -- the result aliases est.out until the next Estimate
//dophy:invalidates
//dophy:hotpath
//dophy:readonly e -- the epoch is the pipeline's shared input; estimators may only read it
//dophy:effects noglobals -- estimation runs concurrently with the simulator under RunPipelined
func (est *Estimator) Estimate(e *epochobs.Epoch) []float64 {
	cfg := est.cfg
	for _, c := range est.cols {
		est.colOf[c] = -1
	}
	est.cols = est.cols[:0]
	est.pathBuf = est.pathBuf[:0]
	est.rowStart = est.rowStart[:0]
	est.b = est.b[:0]
	est.rowOrigin = est.rowOrigin[:0]

	// Gather usable origins and the link set their tree paths cover.
	for origin := range e.Delivered {
		id := topo.NodeID(origin)
		if id == topo.Sink {
			continue
		}
		n := e.Expected[origin]
		if n < cfg.MinExpected {
			continue
		}
		mark := len(est.pathBuf)
		buf, ok := e.AppendPathIndices(est.lt, id, est.pathBuf)
		est.pathBuf = buf
		if !ok {
			continue
		}
		dr := float64(e.Delivered[origin]) / float64(n)
		if dr <= 0 {
			// Nothing arrived: unbounded loss; clamp to a small ratio so
			// the log stays finite (one phantom delivery).
			dr = 0.5 / float64(n)
		}
		if dr > 1 {
			dr = 1
		}
		est.rowStart = append(est.rowStart, int32(mark))
		est.b = append(est.b, -math.Log(dr))
		est.rowOrigin = append(est.rowOrigin, int32(origin))
		for _, li := range est.pathBuf[mark:] {
			if est.colOf[li] < 0 {
				est.colOf[li] = int32(len(est.cols))
				est.cols = append(est.cols, li)
			}
		}
	}
	est.rowStart = append(est.rowStart, int32(len(est.pathBuf)))

	est.out = resizeFloats(est.out, est.lt.Len())
	out := est.out
	for i := range out {
		out[i] = math.NaN()
	}
	rows := len(est.b)
	est.stats = Stats{Mode: "off", Rows: rows}
	if rows == 0 || len(est.cols) == 0 {
		// Nothing to cache or diff against: force a full solve next epoch.
		est.haveState = false
		return out
	}
	if cfg.DirtyThreshold <= 0 {
		// Historical from-scratch path, byte-for-byte.
		est.a.Reshape(rows, len(est.cols))
		a := &est.a
		for i := 0; i < rows; i++ {
			for _, li := range est.pathBuf[est.rowStart[i]:est.rowStart[i+1]] {
				a.Set(i, int(est.colOf[li]), 1)
			}
		}
		x := est.nnls.Solve(a, est.b, cfg.Iters, cfg.Tol)
		for j, li := range est.cols {
			drop := 1 - math.Exp(-x[j]) // per-hop post-ARQ drop probability
			out[li] = geomle.LossFromDrop(drop, cfg.MaxAttempts)
		}
		return out
	}
	est.estimateIncremental(e, out)
	return out
}

// sameCols reports whether two compact column orders are identical.
func sameCols(a, b []topo.LinkIdx) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// resizeFloats returns s with length n and every element zeroed, reusing
// the backing array when it is large enough.
func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		//dophy:allow hotpathalloc -- scratch grows to the epoch's high-water mark, then is reused
		return make([]float64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// estimateIncremental solves the already-gathered system, reusing the
// previous epoch's Gram matrix and solution when few enough rows changed.
// Rows are matched across epochs by origin; a matched row is dirty when
// the origin's delivery statistics or any parent on its path changed
// (epochobs.Epoch.PathDirty), and unmatched rows on either side are dirty
// by definition. Fallbacks — no prior state, a changed column order, or a
// dirty fraction above cfg.DirtyThreshold — run the from-scratch assembly,
// which is bitwise-identical to the historical solve.
//
//dophy:hotpath
func (est *Estimator) estimateIncremental(e *epochobs.Epoch, out []float64) {
	cfg := est.cfg
	rows := len(est.b)
	ncols := len(est.cols)

	dirtyRows := 0
	warm := est.haveState && sameCols(est.cols, est.prevCols)
	if warm {
		// Merge-walk current and previous rows; both are in ascending
		// origin order by construction. subSrc collects previous-row
		// indices whose old contents must leave the Gram matrix, addSrc
		// current-row indices whose new contents must enter it.
		est.subSrc = est.subSrc[:0]
		est.addSrc = est.addSrc[:0]
		i, j := 0, 0
		for i < rows || j < len(est.prevRowOrigin) {
			switch {
			case j >= len(est.prevRowOrigin) || (i < rows && est.rowOrigin[i] < est.prevRowOrigin[j]):
				est.addSrc = append(est.addSrc, int32(i)) // row added this epoch
				dirtyRows++
				i++
			case i >= rows || est.rowOrigin[i] > est.prevRowOrigin[j]:
				est.subSrc = append(est.subSrc, int32(j)) // row removed this epoch
				dirtyRows++
				j++
			default:
				if e.PathDirty(topo.NodeID(est.rowOrigin[i])) {
					est.subSrc = append(est.subSrc, int32(j))
					est.addSrc = append(est.addSrc, int32(i))
					dirtyRows++
				}
				i++
				j++
			}
		}
		if dirtyRows == 0 {
			// Identical system: the cached output is bitwise what a
			// re-solve would produce. All cached state stays valid.
			copy(out, est.outPrev)
			est.stats = Stats{Mode: "copy", Rows: rows}
			return
		}
		denom := rows
		if len(est.prevRowOrigin) > denom {
			denom = len(est.prevRowOrigin)
		}
		if float64(dirtyRows) > cfg.DirtyThreshold*float64(denom) {
			warm = false
		}
	}

	var x []float64
	if warm {
		// Rank-k Gram update: every entry of the 0/1 incidence system is
		// an exact small integer, so the updated Gram is bitwise the one
		// a full rebuild would produce.
		est.subRows.Reshape(len(est.subSrc), ncols)
		for r, j := range est.subSrc {
			for _, li := range est.prevPathBuf[est.prevRowStart[j]:est.prevRowStart[j+1]] {
				est.subRows.Set(r, int(est.colOf[li]), 1)
			}
		}
		est.addRows.Reshape(len(est.addSrc), ncols)
		for r, i := range est.addSrc {
			for _, li := range est.pathBuf[est.rowStart[i]:est.rowStart[i+1]] {
				est.addRows.Set(r, int(est.colOf[li]), 1)
			}
		}
		est.gram.GramUpdateRows(&est.subRows, &est.addRows)
		// A^T b rebuilt in full row order: each term multiplies a 0/1
		// incidence entry, so this sparse accumulation adds the exact
		// values TMulVecTo adds over the materialised matrix, in the same
		// order.
		est.atb = resizeFloats(est.atb, ncols)
		for i := 0; i < rows; i++ {
			bi := est.b[i]
			if bi == 0 {
				continue
			}
			for _, li := range est.pathBuf[est.rowStart[i]:est.rowStart[i+1]] {
				est.atb[est.colOf[li]] += bi
			}
		}
		x = est.nnls.SolveWarm(&est.gram, est.atb, est.xPrev, cfg.Iters, cfg.Tol)
		est.stats = Stats{Mode: "warm", DirtyRows: dirtyRows, Rows: rows}
	} else {
		// From scratch, assembled exactly as NNLSSolver.Solve assembles
		// internally — bitwise the historical result — but into the
		// estimator's own Gram/atb so the next epoch can update in place.
		est.a.Reshape(rows, ncols)
		a := &est.a
		for i := 0; i < rows; i++ {
			for _, li := range est.pathBuf[est.rowStart[i]:est.rowStart[i+1]] {
				a.Set(i, int(est.colOf[li]), 1)
			}
		}
		a.GramInto(&est.gram)
		est.atb = resizeFloats(est.atb, ncols)
		a.TMulVecTo(est.atb, est.b)
		x = est.nnls.SolveWarm(&est.gram, est.atb, nil, cfg.Iters, cfg.Tol)
		est.stats = Stats{Mode: "full", DirtyRows: dirtyRows, Rows: rows}
	}
	for j, li := range est.cols {
		drop := 1 - math.Exp(-x[j]) // per-hop post-ARQ drop probability
		out[li] = geomle.LossFromDrop(drop, cfg.MaxAttempts)
	}

	// Snapshot this epoch's rows and solution for the next diff.
	est.prevCols = append(est.prevCols[:0], est.cols...)
	est.prevPathBuf = append(est.prevPathBuf[:0], est.pathBuf...)
	est.prevRowStart = append(est.prevRowStart[:0], est.rowStart...)
	est.prevB = append(est.prevB[:0], est.b...)
	est.prevRowOrigin = append(est.prevRowOrigin[:0], est.rowOrigin...)
	est.xPrev = append(est.xPrev[:0], x...)
	est.outPrev = append(est.outPrev[:0], out...)
	est.haveState = true
}
