package lsq

import (
	"math"
	"testing"

	"dophy/internal/rng"
	"dophy/internal/tomo/epochobs"
	"dophy/internal/tomo/geomle"
	"dophy/internal/topo"
)

// driftPair builds two alternating epochs over the bench grid that differ
// in ceil(frac * origins) origins' delivered counts, with dirty masks
// filled the way a live Collector fills them. Alternating between the two
// models a steady state where the same dirty fraction recurs every epoch.
func driftPair(lt *topo.LinkTable, frac float64) (*epochobs.Epoch, *epochobs.Epoch) {
	ea := benchEpoch(lt)
	eb := &epochobs.Epoch{
		Delivered: append([]int64(nil), ea.Delivered...),
		Expected:  append([]int64(nil), ea.Expected...),
		Tree:      append([]topo.NodeID(nil), ea.Tree...),
	}
	n := lt.Nodes()
	k := int(math.Ceil(frac * float64(n-1)))
	for i, changed := 1, 0; i < n && changed < k; i++ {
		eb.Delivered[i] -= 3 // bench deliveries are >= 381, stays positive
		changed++
	}
	ea.DiffFrom(eb)
	eb.DiffFrom(ea)
	return ea, eb
}

// compareEstimates checks NaN-pattern equality and value agreement.
func compareEstimates(t *testing.T, got, want []float64, bitwise bool, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for i := range want {
		gn, wn := math.IsNaN(got[i]), math.IsNaN(want[i])
		if gn != wn {
			t.Fatalf("%s: link %d NaN mismatch (got %v, want %v)", label, i, got[i], want[i])
		}
		if wn {
			continue
		}
		if bitwise {
			if got[i] != want[i] {
				t.Fatalf("%s: link %d = %v, want bitwise %v", label, i, got[i], want[i])
			}
		} else if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Fatalf("%s: link %d = %v, want %v (|diff| %g > 1e-6)", label, i, got[i], want[i], math.Abs(got[i]-want[i]))
		}
	}
}

func TestIncrementalMatchesFromScratch(t *testing.T) {
	// A 100-node grid with an iteration budget the projected-gradient
	// solver can actually converge within: the warm start resumes at the
	// solver's fixed point, so equivalence with the from-scratch path is
	// only defined where the from-scratch path reaches that fixed point
	// too (at a truncating budget both are artifacts of the truncation).
	lt := topo.Grid(10, 10, 1.5, 14, rng.New(1)).LinkTable()
	origins := lt.Nodes() - 1
	for _, tc := range []struct {
		name     string
		frac     float64
		wantMode string
		bitwise  bool
	}{
		{"dirty0pct", 0, "copy", true},
		{"dirty2pct", 0.02, "warm", false},
		{"dirty20pct", 0.2, "warm", false},
		{"dirty100pct", 1, "full", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ea, eb := driftPair(lt, tc.frac)
			cfg := DefaultConfig()
			cfg.Iters = 300000
			cfg.DirtyThreshold = DefaultDirtyThreshold
			inc := NewEstimator(lt, cfg)
			refCfg := DefaultConfig()
			refCfg.Iters = 300000
			ref := NewEstimator(lt, refCfg)
			wantDirty := int(math.Ceil(tc.frac * float64(origins)))
			for k, e := range []*epochobs.Epoch{ea, eb, ea, eb} {
				got := inc.Estimate(e)
				want := ref.Estimate(e)
				st := inc.LastStats()
				if k == 0 {
					// No prior state yet: always a full solve, always bitwise.
					compareEstimates(t, got, want, true, "epoch 0")
					if st.Mode != "full" {
						t.Fatalf("epoch 0 mode = %q, want full", st.Mode)
					}
					continue
				}
				if st.Mode != tc.wantMode {
					t.Fatalf("epoch %d mode = %q, want %q (dirty %d/%d)", k, st.Mode, tc.wantMode, st.DirtyRows, st.Rows)
				}
				if st.Mode != "copy" && st.DirtyRows != wantDirty {
					t.Fatalf("epoch %d dirty rows = %d, want %d", k, st.DirtyRows, wantDirty)
				}
				compareEstimates(t, got, want, tc.bitwise, tc.name)
			}
		})
	}
}

// TestIncrementalRowChurn exercises rows leaving and re-entering the
// system (an origin dropping below MinExpected and recovering): whatever
// path the estimator picks, results must track the from-scratch solve.
func TestIncrementalRowChurn(t *testing.T) {
	lt := topo.Grid(14, 10, 1.5, 14, rng.New(1)).LinkTable()
	ea, _ := driftPair(lt, 0)
	// eb removes an interior origin's row entirely.
	eb := &epochobs.Epoch{
		Delivered: append([]int64(nil), ea.Delivered...),
		Expected:  append([]int64(nil), ea.Expected...),
		Tree:      append([]topo.NodeID(nil), ea.Tree...),
	}
	interior := topo.NodeID(-1)
	for v, p := range ea.Tree {
		if p > 0 { // p is somebody's parent and not the sink
			interior = p
			break
		}
		_ = v
	}
	if interior < 0 {
		t.Fatal("no interior node found")
	}
	eb.Delivered[interior], eb.Expected[interior] = 0, 0
	ea.DiffFrom(eb)
	eb.DiffFrom(ea)

	cfg := DefaultConfig()
	cfg.DirtyThreshold = DefaultDirtyThreshold
	inc := NewEstimator(lt, cfg)
	ref := NewEstimator(lt, DefaultConfig())
	for k, e := range []*epochobs.Epoch{ea, eb, ea, eb, ea} {
		got := inc.Estimate(e)
		want := ref.Estimate(e)
		bitwise := inc.LastStats().Mode == "full" || inc.LastStats().Mode == "copy"
		compareEstimates(t, got, want, bitwise, "churn epoch "+string(rune('0'+k)))
	}
}

// TestIncrementalWarmRowRemoval pins the rank-k row-removal path: an
// interior origin whose entire path is first-encountered by an earlier
// row can drop out without disturbing the column order, so its removal is
// handled by the Gram update rather than a full fallback.
func TestIncrementalWarmRowRemoval(t *testing.T) {
	// Fully-connected 2x2 grid; the voted tree routes 1 -> 2 -> 0, so
	// origin 1's row covers origin 2's whole path.
	lt := topo.Grid(2, 10, 0, 15, rng.New(1)).LinkTable()
	mk := func(deliv2 int64) *epochobs.Epoch {
		e := &epochobs.Epoch{
			Delivered: []int64{0, 90, deliv2, 95},
			Expected:  []int64{0, 100, 0, 100},
			Tree:      []topo.NodeID{-1, 2, 0, 0},
		}
		if deliv2 > 0 {
			e.Expected[2] = 100
		}
		return e
	}
	ea, eb := mk(80), mk(0) // eb removes origin 2's row
	ea.DiffFrom(eb)
	eb.DiffFrom(ea)

	// lsObjective recovers the solver-space x from the published loss
	// estimates and evaluates the least-squares objective over e's rows.
	lsObjective := func(e *epochobs.Epoch, out []float64) float64 {
		obj := 0.0
		for _, origin := range []topo.NodeID{1, 2, 3} {
			n := e.Expected[origin]
			if n < DefaultConfig().MinExpected {
				continue
			}
			b := -math.Log(float64(e.Delivered[origin]) / float64(n))
			sum := 0.0
			cur := origin
			for cur != topo.Sink {
				p := e.Tree[cur]
				li := lt.Index(topo.Link{From: cur, To: p})
				drop := geomle.DropProbability(out[li], DefaultConfig().MaxAttempts)
				sum += -math.Log(1 - drop)
				cur = p
			}
			obj += (sum - b) * (sum - b)
		}
		return obj
	}

	cfg := DefaultConfig()
	cfg.DirtyThreshold = 0.5 // 1 dirty row of 2-3 must stay below threshold
	inc := NewEstimator(lt, cfg)
	ref := NewEstimator(lt, DefaultConfig())
	for k, e := range []*epochobs.Epoch{ea, eb, ea} {
		got := inc.Estimate(e)
		want := ref.Estimate(e)
		if k > 0 {
			if st := inc.LastStats(); st.Mode != "warm" || st.DirtyRows != 1 {
				t.Fatalf("epoch %d stats = %+v, want warm with 1 dirty row", k, st)
			}
		}
		if k == 1 {
			// Removing the row leaves the system rank-deficient: the
			// optimum is a subspace, so the two paths may pick different
			// minimisers. Both must reach the same objective value.
			gobj, wobj := lsObjective(e, got), lsObjective(e, want)
			if math.Abs(gobj-wobj) > 1e-9 {
				t.Fatalf("objectives diverge: warm %g vs scratch %g", gobj, wobj)
			}
			continue
		}
		// Full-rank epochs have a unique optimum: vectors must agree.
		compareEstimates(t, got, want, k == 0, "row removal epoch")
	}
}

func benchIncremental(b *testing.B, frac, threshold float64) {
	lt := topo.Grid(14, 10, 1.5, 14, rng.New(1)).LinkTable()
	ea, eb := driftPair(lt, frac)
	cfg := DefaultConfig()
	cfg.DirtyThreshold = threshold
	est := NewEstimator(lt, cfg)
	est.Estimate(ea)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			est.Estimate(eb)
		} else {
			est.Estimate(ea)
		}
	}
}

// BenchmarkLsqIncremental measures steady-state estimation cost against
// drift sparsity on the 196-node grid; fullresolve is the
// DirtyThreshold=0 baseline over the same 2%-drift inputs.
func BenchmarkLsqIncremental(b *testing.B) {
	b.Run("fullresolve", func(b *testing.B) { benchIncremental(b, 0.02, 0) })
	b.Run("dirty100pct", func(b *testing.B) { benchIncremental(b, 1, DefaultDirtyThreshold) })
	b.Run("dirty20pct", func(b *testing.B) { benchIncremental(b, 0.2, DefaultDirtyThreshold) })
	b.Run("dirty2pct", func(b *testing.B) { benchIncremental(b, 0.02, DefaultDirtyThreshold) })
	b.Run("dirty0pct", func(b *testing.B) { benchIncremental(b, 0, DefaultDirtyThreshold) })
}
