package pathrecord

import (
	"math"
	"testing"

	"dophy/internal/collect"
	"dophy/internal/rng"
	"dophy/internal/topo"
)

func journey(path []topo.NodeID, observed []int) *collect.PacketJourney {
	j := &collect.PacketJourney{Origin: path[0], Delivered: true}
	for i := 0; i < len(path)-1; i++ {
		j.Hops = append(j.Hops, collect.Hop{
			Link:     topo.Link{From: path[i], To: path[i+1]},
			Attempts: observed[i],
			Observed: observed[i],
		})
	}
	return j
}

func TestRawOverheadIs24BitsPerHop(t *testing.T) {
	tp := topo.Chain(4, 10, 10.5)
	r := New(tp, DefaultConfig(Raw))
	r.OnJourney(journey([]topo.NodeID{3, 2, 1, 0}, []int{1, 1, 1}))
	rep := r.EndEpoch()
	if rep.Overhead.AnnotationBits != 3*24 {
		t.Fatalf("raw bits = %d, want 72", rep.Overhead.AnnotationBits)
	}
}

func TestCompactSmallerThanRaw(t *testing.T) {
	tp := topo.Chain(6, 10, 10.5)
	j := journey([]topo.NodeID{5, 4, 3, 2, 1, 0}, []int{1, 2, 1, 1, 3})
	raw := New(tp, DefaultConfig(Raw))
	compact := New(tp, DefaultConfig(Compact))
	raw.OnJourney(j)
	compact.OnJourney(j)
	rb := raw.EndEpoch().Overhead.AnnotationBits
	cb := compact.EndEpoch().Overhead.AnnotationBits
	if cb >= rb {
		t.Fatalf("compact (%d) not smaller than raw (%d)", cb, rb)
	}
}

func TestHuffmanSmallerThanCompactOnSkewedCounts(t *testing.T) {
	tp := topo.Chain(6, 10, 10.5)
	compact := New(tp, DefaultConfig(Compact))
	huff := New(tp, DefaultConfig(Huffman))
	// Train the Huffman code on one epoch of zero-heavy counts, then
	// compare the second epoch.
	feed := func(r *Recorder) int64 {
		for i := 0; i < 200; i++ {
			r.OnJourney(journey([]topo.NodeID{5, 4, 3, 2, 1, 0}, []int{1, 1, 1, 1, 1}))
		}
		return r.EndEpoch().Overhead.AnnotationBits
	}
	feed(huff) // training epoch
	feed(compact)
	hb := feed(huff)
	cb := feed(compact)
	if hb >= cb {
		t.Fatalf("huffman (%d) not smaller than compact (%d) on skewed counts", hb, cb)
	}
}

func TestEstimationMatchesGeomle(t *testing.T) {
	// Feed synthetic truncated-geometric observations and verify recovery —
	// all variants share the same estimator.
	tp := topo.Chain(3, 10, 10.5)
	r := New(tp, DefaultConfig(Compact))
	src := rng.New(7)
	const p = 0.7
	fed := 0
	for fed < 20000 {
		att := src.Geometric(p) + 1
		if att > 8 {
			continue
		}
		fed++
		r.OnJourney(journey([]topo.NodeID{1, 0}, []int{att}))
	}
	rep := r.EndEpoch()
	got, _ := rep.LossAt(topo.Link{From: 1, To: 0})
	if math.Abs(got-(1-p)) > 0.02 {
		t.Fatalf("estimated loss %v, want ~%v", got, 1-p)
	}
	if rep.SamplesAt(topo.Link{From: 1, To: 0}) != 20000 {
		t.Fatalf("samples = %d", rep.SamplesAt(topo.Link{From: 1, To: 0}))
	}
}

func TestDroppedIgnored(t *testing.T) {
	tp := topo.Chain(3, 10, 10.5)
	r := New(tp, DefaultConfig(Raw))
	j := journey([]topo.NodeID{2, 1, 0}, []int{1, 1})
	j.Delivered = false
	r.OnJourney(j)
	if rep := r.EndEpoch(); rep.Overhead.Packets != 0 {
		t.Fatal("dropped journey recorded")
	}
}

func TestMinSamples(t *testing.T) {
	tp := topo.Chain(3, 10, 10.5)
	cfg := DefaultConfig(Compact)
	cfg.MinSamples = 5
	r := New(tp, cfg)
	for i := 0; i < 4; i++ {
		r.OnJourney(journey([]topo.NodeID{1, 0}, []int{1}))
	}
	if rep := r.EndEpoch(); len(rep.EstimatedLinks()) != 0 {
		t.Fatal("under-sampled link reported")
	}
}

func TestEpochReset(t *testing.T) {
	tp := topo.Chain(3, 10, 10.5)
	r := New(tp, DefaultConfig(Compact))
	r.OnJourney(journey([]topo.NodeID{1, 0}, []int{1}))
	r.EndEpoch()
	rep := r.EndEpoch()
	if rep.Overhead.Packets != 0 || len(rep.EstimatedLinks()) != 0 || rep.Epoch != 2 {
		t.Fatalf("epoch state leaked: %+v", rep)
	}
}

func TestOutOfRangeCountCountsError(t *testing.T) {
	tp := topo.Chain(3, 10, 10.5)
	cfg := DefaultConfig(Raw)
	cfg.MaxAttempts = 2
	r := New(tp, cfg)
	r.OnJourney(journey([]topo.NodeID{1, 0}, []int{5})) // attempts beyond budget
	rep := r.EndEpoch()
	if rep.DecodeErrors != 1 {
		t.Fatalf("decode errors = %d", rep.DecodeErrors)
	}
}

func TestVariantString(t *testing.T) {
	if Raw.String() != "raw" || Compact.String() != "compact" || Huffman.String() != "huffman" {
		t.Fatal("variant names wrong")
	}
	if Variant(99).String() != "unknown" {
		t.Fatal("unknown variant name wrong")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MaxAttempts 0 accepted")
		}
	}()
	New(topo.Chain(2, 10, 10.5), Config{MaxAttempts: 0})
}
