//go:build !dophy_invariants

package pathrecord

// recInvariants is the no-op variant; see invariants_on.go.
type recInvariants struct{}

func (recInvariants) onHopRecorded()       {}
func (recInvariants) onEndEpoch(*Recorder) {}
func (recInvariants) onEpochReset()        {}
