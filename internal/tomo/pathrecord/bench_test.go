package pathrecord

import (
	"testing"

	"dophy/internal/collect"
	"dophy/internal/rng"
	"dophy/internal/topo"
)

// benchTree builds a BFS collection tree over the table's links, the shape
// a routed epoch would produce.
func benchTree(lt *topo.LinkTable) []topo.NodeID {
	n := lt.Nodes()
	tree := make([]topo.NodeID, n)
	for i := range tree {
		tree[i] = -1
	}
	visited := make([]bool, n)
	visited[topo.Sink] = true
	queue := []topo.NodeID{topo.Sink}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		lo, hi := lt.NodeSpan(u)
		for i := lo; i < hi; i++ {
			v := lt.Link(i).To
			if !visited[v] {
				visited[v] = true
				tree[v] = u
				queue = append(queue, v)
			}
		}
	}
	return tree
}

// BenchmarkEpochFinalise200Grid measures one full epoch cycle — recording a
// journey per node along a BFS tree of a 196-node grid, then finalising the
// per-link estimates — which is the recorder's hot loop in the harness.
func BenchmarkEpochFinalise200Grid(b *testing.B) {
	tp := topo.Grid(14, 10, 1.5, 14, rng.New(1))
	lt := tp.LinkTable()
	tree := benchTree(lt)
	cfg := DefaultConfig(Compact)
	cfg.MinSamples = 1
	rec := New(tp, cfg)
	var journeys []*collect.PacketJourney
	for v := 1; v < lt.Nodes(); v++ {
		if tree[topo.NodeID(v)] < 0 {
			continue
		}
		j := &collect.PacketJourney{Origin: topo.NodeID(v), Delivered: true}
		for u := topo.NodeID(v); u != topo.Sink; u = tree[u] {
			j.Hops = append(j.Hops, collect.Hop{
				Link:     topo.Link{From: u, To: tree[u]},
				Attempts: 2,
				Observed: 1 + v%2,
			})
		}
		journeys = append(journeys, j)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, j := range journeys {
			rec.OnJourney(j)
		}
		rec.EndEpoch()
	}
}
