//go:build dophy_invariants

package pathrecord

import (
	"fmt"
	"math"

	"dophy/internal/topo"
)

// recInvariants enforces per-hop conservation for the recording baselines:
// every successfully recorded hop adds exactly one observation to its
// link's accumulator, so the per-link totals must sum to the number of
// recorded hops at each epoch boundary. (Journeys rejected mid-packet for
// out-of-range counts contribute only their already-recorded prefix, which
// the counter tracks hop by hop.)
type recInvariants struct {
	recordedHops float64
}

func (iv *recInvariants) onHopRecorded() { iv.recordedHops++ }

func (iv *recInvariants) onEndEpoch(r *Recorder) {
	var total float64
	for i := topo.LinkIdx(0); i < r.lt.Count(); i++ {
		total += r.linkObs.At(i).Total()
	}
	if math.Abs(total-iv.recordedHops) > 1e-6*(1+iv.recordedHops) {
		panic(fmt.Sprintf("pathrecord: invariant violated: link observations sum to %g, %g hops were recorded this epoch",
			total, iv.recordedHops))
	}
}

func (iv *recInvariants) onEpochReset() { iv.recordedHops = 0 }
