// Package pathrecord implements the explicit in-packet recording baselines
// against which Dophy's encoding efficiency is measured. All variants carry
// the same information Dophy carries (hop identity + retransmission count
// per hop) and therefore achieve the same estimation accuracy (exact counts,
// no censoring); they differ only in how many bits the annotation costs:
//
//   - Raw: byte-aligned fields as a naive implementation would use —
//     16-bit node id + 8-bit count per hop.
//   - Compact: minimal fixed-width binary — ceil(log2 degree) bits for the
//     hop (neighbour index) and ceil(log2 maxAttempts) bits for the count.
//   - Huffman: Compact's hop field plus a canonical Huffman code for the
//     counts rebuilt each epoch from the observed distribution — the best a
//     prefix code can do, still >= 1 bit per count symbol.
//
// The ladder Raw > Compact > Huffman > Dophy is experiment T1.
package pathrecord

import (
	"fmt"
	"math"

	"dophy/internal/coding/bitio"
	"dophy/internal/coding/huffman"
	"dophy/internal/coding/model"
	"dophy/internal/collect"
	"dophy/internal/tomo/geomle"
	"dophy/internal/topo"
)

// Variant selects the encoding.
type Variant int

const (
	Raw Variant = iota
	Compact
	Huffman
)

func (v Variant) String() string {
	switch v {
	case Raw:
		return "raw"
	case Compact:
		return "compact"
	case Huffman:
		return "huffman"
	}
	return "unknown"
}

// Config parameterises the baseline.
type Config struct {
	Variant     Variant
	MaxAttempts int
	MinSamples  int64
	// SenderCounts records the sender's total transmission count instead of
	// the receiver-observed first-delivery attempt. The two coincide with
	// reliable ACKs; under ACK loss the sender's count is inflated by
	// duplicate retransmissions, biasing the estimator — the ablation
	// experiment T7 quantifies this.
	SenderCounts bool
}

// DefaultConfig matches Dophy's defaults for fair comparison.
func DefaultConfig(v Variant) Config {
	return Config{Variant: v, MaxAttempts: 8, MinSamples: 10}
}

// Overhead mirrors core.Overhead for the recording baselines.
type Overhead struct {
	Packets        int64
	Hops           int64
	AnnotationBits int64
	HeaderBits     int64
	// TransmittedBits counts annotation bits actually radiated: the prefix
	// carried into each hop times that hop's transmissions, plus the header
	// on every transmission (same accounting as core.Overhead).
	TransmittedBits int64
}

// BitsPerPacket returns mean annotation+header bits per packet.
func (o Overhead) BitsPerPacket() float64 {
	if o.Packets == 0 {
		return 0
	}
	return float64(o.AnnotationBits+o.HeaderBits) / float64(o.Packets)
}

// BytesPerPacket returns BitsPerPacket/8.
func (o Overhead) BytesPerPacket() float64 { return o.BitsPerPacket() / 8 }

// Recorder is the sink-side engine for one variant.
type Recorder struct {
	// inv carries the build-tag-gated conservation checks; a zero-size
	// no-op in the default build (see invariants_off.go).
	inv        recInvariants
	tp         *topo.Topology
	lt         *topo.LinkTable
	cfg        Config
	originBits int
	countBits  int
	hopBits    []int // per-node neighbour-index width

	code         *huffman.Code // Huffman variant only
	epochCounts  []uint64      // count histogram for next epoch's code
	linkObs      *geomle.Arena // per-link accumulators, indexed by lt
	w            *bitio.Writer // scratch annotation writer, reset per journey
	overhead     Overhead
	epoch        int
	decodeErrors int64
}

// EpochReport is the per-epoch output. Loss and Samples are dense, indexed
// by Table; NaN in Loss marks links without enough samples.
type EpochReport struct {
	Epoch        int
	Table        *topo.LinkTable
	Loss         []float64 // per-attempt loss, NaN = not estimated
	Samples      []int64
	Overhead     Overhead
	DecodeErrors int64
}

// LossAt returns the loss estimate for l and whether l was estimated.
func (r *EpochReport) LossAt(l topo.Link) (float64, bool) {
	i := r.Table.Index(l)
	if i < 0 || math.IsNaN(r.Loss[i]) {
		return 0, false
	}
	return r.Loss[i], true
}

// SamplesAt returns the sample count behind l's estimate (0 if not
// estimated).
func (r *EpochReport) SamplesAt(l topo.Link) int64 {
	if i := r.Table.Index(l); i >= 0 {
		return r.Samples[i]
	}
	return 0
}

// EstimatedLinks returns the links with estimates, in table order.
func (r *EpochReport) EstimatedLinks() []topo.Link {
	var out []topo.Link
	for i := topo.LinkIdx(0); i < r.Table.Count(); i++ {
		if !math.IsNaN(r.Loss[i]) {
			out = append(out, r.Table.Link(i))
		}
	}
	return out
}

// New builds a recorder.
func New(tp *topo.Topology, cfg Config) *Recorder {
	if cfg.MaxAttempts < 1 {
		panic("pathrecord: MaxAttempts must be >= 1")
	}
	lt := tp.LinkTable()
	r := &Recorder{
		tp:         tp,
		lt:         lt,
		cfg:        cfg,
		originBits: bitsFor(tp.N()),
		countBits:  bitsFor(cfg.MaxAttempts),
		hopBits:    make([]int, tp.N()),
		linkObs:    geomle.NewArena(lt.Len(), cfg.MaxAttempts),
		w:          bitio.NewWriter(),
	}
	for i := range r.hopBits {
		if deg := len(tp.Neighbors(topo.NodeID(i))); deg > 0 {
			r.hopBits[i] = bitsFor(deg)
		}
	}
	if cfg.Variant == Huffman {
		r.epochCounts = make([]uint64, cfg.MaxAttempts)
		// Initial code from the same geometric prior Dophy uses.
		r.code = huffman.Build(priorFreq(cfg.MaxAttempts))
	}
	return r
}

func priorFreq(n int) []uint32 {
	counts := make([]uint64, n)
	w := uint64(1) << uint(n)
	for i := range counts {
		counts[i] = w
		w = (w + 1) / 2
	}
	return model.Quantize(counts, 1<<12)
}

func bitsFor(n int) int {
	b := 1
	for (1 << uint(b)) < n {
		b++
	}
	return b
}

// OnJourney accounts and records one delivered packet, returning its
// annotation size in bits (0 when ignored).
//
//dophy:hotpath
func (r *Recorder) OnJourney(j *collect.PacketJourney) int {
	if !j.Delivered || len(j.Hops) == 0 {
		return 0
	}
	r.overhead.Packets++
	r.overhead.Hops += int64(len(j.Hops))
	r.overhead.HeaderBits += int64(r.originBits)
	w := r.w
	w.Reset()
	for _, h := range j.Hops {
		// The bits accumulated so far (plus the header) radiate on every
		// transmission of this hop.
		r.overhead.TransmittedBits += int64((w.Bits() + r.originBits) * h.Attempts)
		observed := h.Observed
		if r.cfg.SenderCounts {
			observed = h.Attempts
		}
		count := observed - 1 // retransmission count
		if count < 0 || count >= r.cfg.MaxAttempts {
			r.decodeErrors++
			return 0
		}
		li := r.lt.Index(h.Link)
		if li < 0 {
			panic(fmt.Sprintf("pathrecord: %v is not a link of the topology", h.Link))
		}
		switch r.cfg.Variant {
		case Raw:
			w.WriteBits(uint64(h.Link.To), 16)
			w.WriteBits(uint64(count), 8)
		case Compact:
			w.WriteBits(uint64(r.lt.NeighborIndex(h.Link)), r.hopBits[h.Link.From])
			w.WriteBits(uint64(count), r.countBits)
		case Huffman:
			w.WriteBits(uint64(r.lt.NeighborIndex(h.Link)), r.hopBits[h.Link.From])
			r.code.Encode(w, count)
			r.epochCounts[count]++
		}
		r.linkObs.At(li).AddAttempt(observed)
		r.inv.onHopRecorded()
	}
	r.overhead.AnnotationBits += int64(w.Bits())
	return w.Bits()
}

// EndEpoch returns the epoch's estimates and overhead and resets state.
// The Huffman variant rebuilds its code from the epoch's count histogram.
func (r *Recorder) EndEpoch() *EpochReport {
	r.epoch++
	r.inv.onEndEpoch(r)
	rep := &EpochReport{
		Epoch:        r.epoch,
		Table:        r.lt,
		Loss:         make([]float64, r.lt.Len()),
		Samples:      make([]int64, r.lt.Len()),
		Overhead:     r.overhead,
		DecodeErrors: r.decodeErrors,
	}
	for i := range rep.Loss {
		rep.Loss[i] = math.NaN()
	}
	for i := topo.LinkIdx(0); i < r.lt.Count(); i++ {
		obs := r.linkObs.At(i)
		total := obs.Total()
		if total == 0 || total < float64(r.cfg.MinSamples) {
			continue
		}
		loss, err := obs.EstimateLoss(r.cfg.MaxAttempts)
		if err != nil {
			continue
		}
		rep.Loss[i] = loss
		rep.Samples[i] = int64(total + 0.5)
	}
	if r.cfg.Variant == Huffman {
		total := uint64(0)
		for _, c := range r.epochCounts {
			total += c
		}
		if total > 0 {
			r.code = huffman.Build(model.Quantize(r.epochCounts, 1<<12))
			for i := range r.epochCounts {
				r.epochCounts[i] = 0
			}
		}
	}
	r.linkObs.Reset()
	r.inv.onEpochReset()
	r.overhead = Overhead{}
	r.decodeErrors = 0
	return rep
}
