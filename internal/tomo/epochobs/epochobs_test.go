package epochobs

import (
	"testing"

	"dophy/internal/collect"
	"dophy/internal/rng"
	"dophy/internal/topo"
)

// chainTable builds the link table of an n-node chain (i adjacent to i±1).
func chainTable(n int) *topo.LinkTable {
	return topo.Chain(n, 10, 10.5).LinkTable()
}

func delivered(origin topo.NodeID, seq int64, path []topo.NodeID) *collect.PacketJourney {
	j := &collect.PacketJourney{Origin: origin, Seq: seq, Delivered: true}
	for i := 0; i < len(path)-1; i++ {
		j.Hops = append(j.Hops, collect.Hop{Link: topo.Link{From: path[i], To: path[i+1]}, Attempts: 1, Observed: 1})
	}
	return j
}

func TestDeliveryAndExpectedCounts(t *testing.T) {
	c := New(chainTable(3))
	c.OnJourney(delivered(2, 1, []topo.NodeID{2, 1, 0}))
	c.OnJourney(delivered(2, 2, []topo.NodeID{2, 1, 0}))
	c.OnJourney(delivered(2, 5, []topo.NodeID{2, 1, 0})) // seqs 3,4 lost
	e := c.EndEpoch()
	if e.Delivered[2] != 3 {
		t.Fatalf("delivered = %d", e.Delivered[2])
	}
	if e.Expected[2] != 5 {
		t.Fatalf("expected = %d, want 5 (seq span)", e.Expected[2])
	}
}

func TestExpectedAcrossEpochs(t *testing.T) {
	c := New(chainTable(2))
	c.OnJourney(delivered(1, 10, []topo.NodeID{1, 0}))
	c.EndEpoch()
	c.OnJourney(delivered(1, 14, []topo.NodeID{1, 0}))
	e := c.EndEpoch()
	if e.Expected[1] != 4 {
		t.Fatalf("second epoch expected = %d, want 4", e.Expected[1])
	}
	if e.Delivered[1] != 1 {
		t.Fatalf("second epoch delivered = %d", e.Delivered[1])
	}
}

func TestDroppedJourneysIgnored(t *testing.T) {
	c := New(chainTable(2))
	j := delivered(1, 1, []topo.NodeID{1, 0})
	j.Delivered = false
	c.OnJourney(j)
	e := c.EndEpoch()
	if e.Delivered[1] != 0 || e.Expected[1] != 0 {
		t.Fatal("dropped journey counted")
	}
}

func TestDominantTree(t *testing.T) {
	// Diamond: 3 adjacent to 1 and 2; 1 and 2 adjacent to the sink.
	tp := topo.FromPoints([]topo.Point{{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 0, Y: 5}, {X: 5, Y: 5}}, 6)
	c := New(tp.LinkTable())
	// Node 3 forwards mostly via 1, occasionally via 2.
	for i := 0; i < 8; i++ {
		c.OnJourney(delivered(3, int64(i+1), []topo.NodeID{3, 1, 0}))
	}
	for i := 0; i < 3; i++ {
		c.OnJourney(delivered(3, int64(i+9), []topo.NodeID{3, 2, 0}))
	}
	e := c.EndEpoch()
	if e.Tree[3] != 1 {
		t.Fatalf("dominant parent of 3 = %d, want 1", e.Tree[3])
	}
	if e.Tree[1] != 0 || e.Tree[2] != 0 {
		t.Fatalf("tree = %v", e.Tree)
	}
	if e.Tree[0] != -1 {
		t.Fatalf("sink parent = %d", e.Tree[0])
	}
}

func TestPathToSink(t *testing.T) {
	e := &Epoch{Tree: []topo.NodeID{-1, 0, 1, 2}}
	links, ok := e.PathToSink(3)
	if !ok || len(links) != 3 {
		t.Fatalf("path = %v ok=%v", links, ok)
	}
	want := []topo.Link{{From: 3, To: 2}, {From: 2, To: 1}, {From: 1, To: 0}}
	for i := range want {
		if links[i] != want[i] {
			t.Fatalf("path = %v", links)
		}
	}
}

func TestPathToSinkNoRoute(t *testing.T) {
	e := &Epoch{Tree: []topo.NodeID{-1, -1, 1}}
	if _, ok := e.PathToSink(2); ok {
		t.Fatal("path through unrouted node accepted")
	}
}

func TestPathToSinkLoop(t *testing.T) {
	e := &Epoch{Tree: []topo.NodeID{-1, 2, 1}}
	if _, ok := e.PathToSink(1); ok {
		t.Fatal("looping tree path accepted")
	}
}

func TestAppendPathIndices(t *testing.T) {
	lt := chainTable(4)
	e := &Epoch{Tree: []topo.NodeID{-1, 0, 1, 2}}
	buf := []topo.LinkIdx{99} // pre-existing content must survive
	buf, ok := e.AppendPathIndices(lt, 3, buf)
	if !ok || len(buf) != 4 {
		t.Fatalf("indices = %v ok=%v", buf, ok)
	}
	want := []topo.Link{{From: 3, To: 2}, {From: 2, To: 1}, {From: 1, To: 0}}
	for i, l := range want {
		if got := lt.Link(buf[i+1]); got != l {
			t.Fatalf("index %d resolves to %v, want %v", buf[i+1], got, l)
		}
	}

	// Loop and no-route walks restore the buffer.
	loop := &Epoch{Tree: []topo.NodeID{-1, 2, 1, -1}}
	if out, ok := loop.AppendPathIndices(lt, 1, buf[:1]); ok || len(out) != 1 {
		t.Fatalf("loop walk: out=%v ok=%v", out, ok)
	}
	// A tree edge that is not a topology link is rejected.
	far := &Epoch{Tree: []topo.NodeID{-1, 0, 0, -1}} // 2->0 skips a hop
	if _, ok := far.AppendPathIndices(lt, 2, nil); ok {
		t.Fatal("non-link tree edge accepted")
	}
}

func TestEpochResets(t *testing.T) {
	c := New(chainTable(2))
	c.OnJourney(delivered(1, 3, []topo.NodeID{1, 0}))
	c.EndEpoch()
	e := c.EndEpoch()
	if e.Delivered[1] != 0 || e.Expected[1] != 0 || e.Tree[1] != -1 {
		t.Fatalf("state leaked across epochs: %+v", e)
	}
}

func TestClampExpectedToDelivered(t *testing.T) {
	c := New(chainTable(2))
	// Reordering: a packet with a lower seq than the previous epoch's max.
	c.OnJourney(delivered(1, 10, []topo.NodeID{1, 0}))
	c.EndEpoch()
	c.OnJourney(delivered(1, 9, []topo.NodeID{1, 0})) // late arrival
	e := c.EndEpoch()
	if e.Expected[1] < e.Delivered[1] {
		t.Fatalf("expected %d < delivered %d", e.Expected[1], e.Delivered[1])
	}
}

func TestDirtyMasksAcrossEpochs(t *testing.T) {
	c := New(chainTable(4))
	c.OnJourney(delivered(3, 1, []topo.NodeID{3, 2, 1, 0}))
	c.OnJourney(delivered(2, 1, []topo.NodeID{2, 1, 0}))
	e1 := c.EndEpoch()
	if e1.StatsDirty != nil || e1.ParentDirty != nil {
		t.Fatal("first epoch must be conservatively all-dirty (nil masks)")
	}
	if !e1.PathDirty(3) || !e1.PathDirty(1) {
		t.Fatal("first epoch PathDirty must report dirty everywhere")
	}

	// Second epoch repeats the first exactly (one packet per origin, same
	// routes): stats and parents unchanged.
	c.OnJourney(delivered(3, 2, []topo.NodeID{3, 2, 1, 0}))
	c.OnJourney(delivered(2, 2, []topo.NodeID{2, 1, 0}))
	e2 := c.EndEpoch()
	if e2.StatsDirty == nil || e2.ParentDirty == nil {
		t.Fatal("second epoch should carry dirty masks")
	}
	for i, d := range e2.StatsDirty {
		if d {
			t.Fatalf("origin %d stats dirty in identical epoch", i)
		}
	}
	for i, d := range e2.ParentDirty {
		if d {
			t.Fatalf("node %d parent dirty in identical epoch", i)
		}
	}
	if e2.PathDirty(3) || e2.PathDirty(2) {
		t.Fatal("identical epoch paths must be clean")
	}

	// Third epoch loses a packet from origin 3 and leaves origin 2 as-is.
	c.OnJourney(delivered(3, 4, []topo.NodeID{3, 2, 1, 0})) // seq 3 lost
	c.OnJourney(delivered(2, 3, []topo.NodeID{2, 1, 0}))
	e3 := c.EndEpoch()
	if !e3.StatsDirty[3] || e3.StatsDirty[2] {
		t.Fatalf("stats dirty = %v", e3.StatsDirty)
	}
	if !e3.PathDirty(3) {
		t.Fatal("origin 3 with changed stats must be path-dirty")
	}
	if e3.PathDirty(2) {
		t.Fatal("origin 2 unchanged but reported dirty")
	}
}

func TestParentChangeDirtiesDownstreamPaths(t *testing.T) {
	// 2x2 grid-ish: use a 4-node chain table but reroute node 2's parent is
	// impossible in a chain, so use a star-capable table via Grid.
	lt := topo.Grid(2, 10, 0, 15, rng.New(1)).LinkTable()
	c := New(lt)
	// Epoch 1: node 3 routes 3->1->0, node 2 routes 2->0.
	c.OnJourney(delivered(3, 1, []topo.NodeID{3, 1, 0}))
	c.OnJourney(delivered(2, 1, []topo.NodeID{2, 0}))
	c.EndEpoch()
	// Epoch 2: node 3 reroutes through 2; node 2 keeps its route and stats.
	c.OnJourney(delivered(3, 2, []topo.NodeID{3, 2, 0}))
	c.OnJourney(delivered(2, 2, []topo.NodeID{2, 0}))
	e := c.EndEpoch()
	if !e.ParentDirty[3] {
		t.Fatal("rerouted node 3 not parent-dirty")
	}
	if !e.PathDirty(3) {
		t.Fatal("rerouted origin 3 not path-dirty")
	}
	if e.PathDirty(2) {
		t.Fatal("origin 2 kept route and stats but reported dirty")
	}
}

func TestDiffFromShapeMismatchResetsMasks(t *testing.T) {
	e := &Epoch{
		Delivered:   []int64{1, 2},
		Expected:    []int64{1, 2},
		Tree:        []topo.NodeID{-1, 0},
		StatsDirty:  []bool{false, false},
		ParentDirty: []bool{false, false},
	}
	e.DiffFrom(&Epoch{Delivered: []int64{1}, Expected: []int64{1}, Tree: []topo.NodeID{-1}})
	if e.StatsDirty != nil || e.ParentDirty != nil {
		t.Fatal("shape mismatch must reset to all-dirty")
	}
	e.DiffFrom(nil)
	if e.StatsDirty != nil || e.ParentDirty != nil {
		t.Fatal("nil prev must reset to all-dirty")
	}
}
