// Package epochobs collects the sink-side observations that *traditional*
// loss tomography consumes: per-source end-to-end delivery statistics and a
// static routing-tree snapshot per epoch.
//
// Delivery statistics are inferred exactly as a real sink would: data
// packets carry (origin, sequence number), so the expected count per origin
// in an epoch is the sequence span and the delivered count is what arrived.
//
// The tree snapshot is the *dominant* parent of each node over the epoch,
// voted from the hops of delivered packets. Real deployments get this from
// periodic topology reports; deriving it from the actual journeys is
// strictly generous to the baselines (their snapshot is as fresh as
// possible), which makes Dophy's accuracy advantage conservative.
package epochobs

import (
	"dophy/internal/collect"
	"dophy/internal/topo"
)

// Epoch is one epoch's worth of baseline-visible observations.
//
// The dirty masks are meaningful only once DiffFrom has compared the epoch
// against its predecessor; incremental consumers consult PathDirty only
// after that hand-off.
//
//dophy:states raw: DiffFrom -> diffed; diffed: DiffFrom|PathDirty -> diffed
type Epoch struct {
	// Delivered[i] and Expected[i] are per-origin packet counts.
	Delivered []int64
	Expected  []int64
	// Tree[i] is node i's dominant parent, or -1 if never observed.
	Tree []topo.NodeID
	// StatsDirty[i] marks origins whose (Delivered, Expected) pair changed
	// relative to the previous epoch; ParentDirty[i] marks nodes whose
	// dominant parent changed. Both are nil when no previous epoch is
	// known, which consumers must read as "everything dirty". Filled by
	// DiffFrom, so hand-built epochs stay conservatively dirty.
	StatsDirty  []bool
	ParentDirty []bool
}

// DiffFrom fills the dirty masks by comparing e against the previous
// epoch's observations. A nil or shape-mismatched prev clears the masks
// back to the conservative all-dirty state.
func (e *Epoch) DiffFrom(prev *Epoch) {
	if prev == nil || len(prev.Delivered) != len(e.Delivered) || len(prev.Tree) != len(e.Tree) {
		e.StatsDirty, e.ParentDirty = nil, nil
		return
	}
	if len(e.StatsDirty) != len(e.Delivered) {
		e.StatsDirty = make([]bool, len(e.Delivered))
	}
	if len(e.ParentDirty) != len(e.Tree) {
		e.ParentDirty = make([]bool, len(e.Tree))
	}
	for i := range e.Delivered {
		e.StatsDirty[i] = e.Delivered[i] != prev.Delivered[i] || e.Expected[i] != prev.Expected[i]
	}
	for i := range e.Tree {
		e.ParentDirty[i] = e.Tree[i] != prev.Tree[i]
	}
}

// PathDirty reports whether origin's row of the tomography system could
// differ from the previous epoch: its delivery statistics changed, or the
// dominant parent of any node on its current path changed. Checking the
// current path suffices — old and new paths share a prefix up to the first
// node whose parent changed, so a rerouted path always carries at least
// one ParentDirty node. Without dirty masks everything is dirty.
//
//dophy:readonly recv -- the epoch is the estimators' shared input; queries must not mutate it
func (e *Epoch) PathDirty(origin topo.NodeID) bool {
	if e.StatsDirty == nil || e.ParentDirty == nil {
		return true
	}
	if e.StatsDirty[origin] {
		return true
	}
	cur := origin
	for steps := 0; cur != topo.Sink; steps++ {
		if steps >= len(e.Tree) {
			return true // looping walk: never treat as clean
		}
		if e.ParentDirty[cur] {
			return true
		}
		p := e.Tree[cur]
		if p < 0 {
			// Parentless now and (by ParentDirty) parentless before: the
			// row was absent in both epochs, so nothing changed.
			return false
		}
		cur = p
	}
	return false
}

// PathToSink walks the dominant tree from origin; ok is false when the walk
// hits a node without a parent or loops.
//
//dophy:readonly recv -- the epoch is the estimators' shared input; queries must not mutate it
func (e *Epoch) PathToSink(origin topo.NodeID) (links []topo.Link, ok bool) {
	cur := origin
	for cur != topo.Sink {
		// A loop-free walk visits each node at most once; more links than
		// nodes means the tree has a cycle.
		if len(links) >= len(e.Tree) {
			return nil, false
		}
		p := e.Tree[cur]
		if p < 0 {
			return nil, false
		}
		links = append(links, topo.Link{From: cur, To: p})
		cur = p
	}
	return links, true
}

// AppendPathIndices appends the table indices of origin's dominant-tree
// path (origin side first) to buf and returns the extended slice. ok is
// false — with buf restored to its original length — when the walk hits a
// node without a parent, loops, or crosses a pair that is not a topology
// link.
//
//dophy:readonly recv lt -- the epoch and table are shared estimator inputs; only buf's appended tail is written
func (e *Epoch) AppendPathIndices(lt *topo.LinkTable, origin topo.NodeID, buf []topo.LinkIdx) (_ []topo.LinkIdx, ok bool) {
	start := len(buf)
	cur := origin
	for cur != topo.Sink {
		if len(buf)-start >= len(e.Tree) {
			return buf[:start], false
		}
		p := e.Tree[cur]
		if p < 0 {
			return buf[:start], false
		}
		i := lt.Index(topo.Link{From: cur, To: p})
		if i == topo.NoLink {
			return buf[:start], false
		}
		buf = append(buf, i)
		cur = p
	}
	return buf, true
}

// Collector accumulates observations and cuts them into epochs.
type Collector struct {
	lt        *topo.LinkTable
	n         int
	delivered []int64
	maxSeq    []int64 // highest sequence seen this epoch (0 = none)
	lastSeq   []int64 // highest sequence seen in any previous epoch
	votes     []int64 // per-link parent votes, indexed by lt
	last      *Epoch  // previous EndEpoch result, diffed for the dirty masks
}

// New builds a collector over the given link table.
func New(lt *topo.LinkTable) *Collector {
	n := lt.Nodes()
	c := &Collector{
		lt:        lt,
		n:         n,
		delivered: make([]int64, n),
		maxSeq:    make([]int64, n),
		lastSeq:   make([]int64, n),
		votes:     make([]int64, lt.Len()),
	}
	return c
}

// OnJourney ingests one completed journey. Only delivered packets reach the
// sink; drops contribute through the sequence gaps they leave.
//
//dophy:hotpath
func (c *Collector) OnJourney(j *collect.PacketJourney) {
	if !j.Delivered {
		return
	}
	o := j.Origin
	c.delivered[o]++
	if j.Seq > c.maxSeq[o] {
		c.maxSeq[o] = j.Seq
	}
	for _, h := range j.Hops {
		c.votes[c.lt.Index(h.Link)]++
	}
}

// EndEpoch snapshots and resets the per-epoch state.
func (c *Collector) EndEpoch() *Epoch {
	e := &Epoch{
		Delivered: make([]int64, c.n),
		Expected:  make([]int64, c.n),
		Tree:      make([]topo.NodeID, c.n),
	}
	copy(e.Delivered, c.delivered)
	for i := 0; i < c.n; i++ {
		e.Tree[i] = -1
		if c.maxSeq[i] > 0 {
			e.Expected[i] = c.maxSeq[i] - c.lastSeq[i]
			c.lastSeq[i] = c.maxSeq[i]
		}
		if e.Expected[i] < e.Delivered[i] {
			// Reordering across the epoch boundary: clamp.
			e.Expected[i] = e.Delivered[i]
		}
		// The node span enumerates candidate parents in ascending To order,
		// so keeping the first maximum is the deterministic tie-break.
		best := int64(0)
		lo, hi := c.lt.NodeSpan(topo.NodeID(i))
		for j := lo; j < hi; j++ {
			if v := c.votes[j]; v > best {
				best = v
				e.Tree[i] = c.lt.Link(j).To
			}
		}
		c.delivered[i] = 0
		c.maxSeq[i] = 0
	}
	clear(c.votes)
	e.DiffFrom(c.last)
	c.last = e
	return e
}
