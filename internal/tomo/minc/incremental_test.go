package minc

import (
	"math"
	"testing"

	"dophy/internal/rng"
	"dophy/internal/tomo/epochobs"
	"dophy/internal/tomo/geomle"
	"dophy/internal/topo"
)

// driftPair builds two alternating epochs over the bench grid that differ
// in ceil(frac * origins) origins' delivered counts, with dirty masks
// filled the way a live Collector fills them. Alternating between the two
// models a steady state where the same dirty fraction recurs every epoch.
func driftPair(lt *topo.LinkTable, frac float64) (*epochobs.Epoch, *epochobs.Epoch) {
	ea := benchEpoch(lt)
	eb := &epochobs.Epoch{
		Delivered: append([]int64(nil), ea.Delivered...),
		Expected:  append([]int64(nil), ea.Expected...),
		Tree:      append([]topo.NodeID(nil), ea.Tree...),
	}
	n := lt.Nodes()
	k := int(math.Ceil(frac * float64(n-1)))
	for i, changed := 1, 0; i < n && changed < k; i++ {
		eb.Delivered[i] -= 3 // bench deliveries are >= 381, stays positive
		changed++
	}
	ea.DiffFrom(eb)
	eb.DiffFrom(ea)
	return ea, eb
}

// compareBitwise checks NaN-pattern and bitwise value equality.
func compareBitwise(t *testing.T, got, want []float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for i := range want {
		gn, wn := math.IsNaN(got[i]), math.IsNaN(want[i])
		if gn != wn {
			t.Fatalf("%s: link %d NaN mismatch (got %v, want %v)", label, i, got[i], want[i])
		}
		if !wn && got[i] != want[i] {
			t.Fatalf("%s: link %d = %v, want bitwise %v", label, i, got[i], want[i])
		}
	}
}

// logLikAndPaths evaluates the per-attempt model implied by an estimate
// vector against an epoch's counts: the binomial log-likelihood over
// usable origins and each origin's end-to-end delivery probability.
func logLikAndPaths(t *testing.T, lt *topo.LinkTable, e *epochobs.Epoch, out []float64, cfg Config) (float64, []float64) {
	t.Helper()
	ll := 0.0
	var paths []float64
	var idx []topo.LinkIdx
	for origin := range e.Delivered {
		id := topo.NodeID(origin)
		if id == topo.Sink || e.Expected[origin] < cfg.MinExpected {
			continue
		}
		var ok bool
		idx, ok = e.AppendPathIndices(lt, id, idx[:0])
		if !ok {
			continue
		}
		p := 1.0
		for _, li := range idx {
			p *= 1 - geomle.DropProbability(out[li], cfg.MaxAttempts)
		}
		d := float64(e.Delivered[origin])
		n := float64(e.Expected[origin])
		if p > 0 {
			ll += d * math.Log(p)
		}
		if p < 1 {
			ll += (n - d) * math.Log(1-p)
		}
		paths = append(paths, p)
	}
	return ll, paths
}

// compareModel asserts two estimate vectors describe the same fitted
// model: equal binomial log-likelihood and equal end-to-end delivery
// probability per origin. The EM's likelihood surface has near-flat
// ridges (serial links whose split is barely constrained), so warm and
// from-scratch sweeps may stall at different points on a ridge; the
// fitted model, not the per-link split, is what the stopping rule pins.
func compareModel(t *testing.T, lt *topo.LinkTable, e *epochobs.Epoch, got, want []float64, cfg Config, label string) {
	t.Helper()
	gll, gp := logLikAndPaths(t, lt, e, got, cfg)
	wll, wp := logLikAndPaths(t, lt, e, want, cfg)
	if rel := math.Abs(gll-wll) / math.Abs(wll); rel > 1e-10 {
		t.Fatalf("%s: log-likelihood %v vs %v (rel diff %g)", label, gll, wll, rel)
	}
	for i := range wp {
		if d := math.Abs(gp[i] - wp[i]); d > 1e-5 {
			t.Fatalf("%s: path %d delivery prob %v vs %v (|diff| %g)", label, i, gp[i], wp[i], d)
		}
	}
}

func TestIncrementalMatchesFromScratch(t *testing.T) {
	// Run the EM with an iteration budget that actually reaches the 1e-9
	// fixed-point tolerance: equivalence of warm and from-scratch sweeps
	// is only defined at the shared fixed point (at a truncating budget
	// both are artifacts of the truncation). Copy and full modes reuse
	// the exact from-scratch code paths and stay bitwise regardless.
	lt := topo.Grid(10, 10, 1.5, 14, rng.New(1)).LinkTable()
	origins := lt.Nodes() - 1
	for _, tc := range []struct {
		name     string
		frac     float64
		wantMode string
	}{
		{"dirty0pct", 0, "copy"},
		{"dirty2pct", 0.02, "warm"},
		{"dirty20pct", 0.2, "warm"},
		{"dirty100pct", 1, "full"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ea, eb := driftPair(lt, tc.frac)
			cfg := DefaultConfig()
			cfg.MaxIters = 50000
			cfg.DirtyThreshold = DefaultDirtyThreshold
			inc := NewEstimator(lt, cfg)
			refCfg := DefaultConfig()
			refCfg.MaxIters = 50000
			ref := NewEstimator(lt, refCfg)
			wantDirty := int(math.Ceil(tc.frac * float64(origins)))
			for k, e := range []*epochobs.Epoch{ea, eb, ea, eb} {
				got := inc.Estimate(e)
				want := ref.Estimate(e)
				st := inc.LastStats()
				if k == 0 {
					// No prior state yet: always a full EM, always bitwise.
					compareBitwise(t, got, want, "epoch 0")
					if st.Mode != "full" {
						t.Fatalf("epoch 0 mode = %q, want full", st.Mode)
					}
					continue
				}
				if st.Mode != tc.wantMode {
					t.Fatalf("epoch %d mode = %q, want %q (dirty %d/%d)", k, st.Mode, tc.wantMode, st.DirtyRows, st.Rows)
				}
				if st.Mode != "copy" && st.DirtyRows != wantDirty {
					t.Fatalf("epoch %d dirty rows = %d, want %d", k, st.DirtyRows, wantDirty)
				}
				if tc.wantMode == "warm" {
					compareModel(t, lt, e, got, want, cfg, tc.name)
				} else {
					// Copy and full modes reuse the from-scratch code paths
					// verbatim: bitwise equality holds.
					compareBitwise(t, got, want, tc.name)
				}
			}
		})
	}
}

// TestIncrementalRowChurn exercises rows leaving and re-entering the
// system (an origin dropping below MinExpected and recovering): whatever
// path the estimator picks, results must track the from-scratch EM.
func TestIncrementalRowChurn(t *testing.T) {
	lt := topo.Grid(14, 10, 1.5, 14, rng.New(1)).LinkTable()
	ea, _ := driftPair(lt, 0)
	// eb removes an interior origin's row entirely.
	eb := &epochobs.Epoch{
		Delivered: append([]int64(nil), ea.Delivered...),
		Expected:  append([]int64(nil), ea.Expected...),
		Tree:      append([]topo.NodeID(nil), ea.Tree...),
	}
	interior := topo.NodeID(-1)
	for _, p := range ea.Tree {
		if p > 0 { // p is somebody's parent and not the sink
			interior = p
			break
		}
	}
	if interior < 0 {
		t.Fatal("no interior node found")
	}
	eb.Delivered[interior], eb.Expected[interior] = 0, 0
	ea.DiffFrom(eb)
	eb.DiffFrom(ea)

	cfg := DefaultConfig()
	cfg.DirtyThreshold = DefaultDirtyThreshold
	inc := NewEstimator(lt, cfg)
	ref := NewEstimator(lt, DefaultConfig())
	for k, e := range []*epochobs.Epoch{ea, eb, ea, eb, ea} {
		got := inc.Estimate(e)
		want := ref.Estimate(e)
		label := "churn epoch " + string(rune('0'+k))
		if m := inc.LastStats().Mode; m == "full" || m == "copy" {
			compareBitwise(t, got, want, label)
		} else {
			compareModel(t, lt, e, got, want, DefaultConfig(), label)
		}
	}
}

func benchIncremental(b *testing.B, frac, threshold float64) {
	lt := topo.Grid(14, 10, 1.5, 14, rng.New(1)).LinkTable()
	ea, eb := driftPair(lt, frac)
	cfg := DefaultConfig()
	// Benchmark at a budget where the 1e-9 tolerance, not the iteration
	// cap, ends the sweep: the incremental win is converging from a warm
	// seed in far fewer sweeps, which the default cap would mask by
	// truncating the from-scratch baseline at the same 500 sweeps.
	cfg.MaxIters = 200000
	cfg.DirtyThreshold = threshold
	est := NewEstimator(lt, cfg)
	est.Estimate(ea)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			est.Estimate(eb)
		} else {
			est.Estimate(ea)
		}
	}
}

// BenchmarkMincIncremental measures steady-state EM cost against drift
// sparsity on the 196-node grid; fullresolve is the DirtyThreshold=0
// baseline over the same 2%-drift inputs.
func BenchmarkMincIncremental(b *testing.B) {
	b.Run("fullresolve", func(b *testing.B) { benchIncremental(b, 0.02, 0) })
	b.Run("dirty100pct", func(b *testing.B) { benchIncremental(b, 1, DefaultDirtyThreshold) })
	b.Run("dirty20pct", func(b *testing.B) { benchIncremental(b, 0.2, DefaultDirtyThreshold) })
	b.Run("dirty2pct", func(b *testing.B) { benchIncremental(b, 0.02, DefaultDirtyThreshold) })
	b.Run("dirty0pct", func(b *testing.B) { benchIncremental(b, 0, DefaultDirtyThreshold) })
}
