package minc

import (
	"testing"

	"dophy/internal/rng"
	"dophy/internal/tomo/epochobs"
	"dophy/internal/topo"
)

// benchTree builds a BFS collection tree over the table's links, the shape
// a routed epoch would produce.
func benchTree(lt *topo.LinkTable) []topo.NodeID {
	n := lt.Nodes()
	tree := make([]topo.NodeID, n)
	for i := range tree {
		tree[i] = -1
	}
	visited := make([]bool, n)
	visited[topo.Sink] = true
	queue := []topo.NodeID{topo.Sink}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		lo, hi := lt.NodeSpan(u)
		for i := lo; i < hi; i++ {
			v := lt.Link(i).To
			if !visited[v] {
				visited[v] = true
				tree[v] = u
				queue = append(queue, v)
			}
		}
	}
	return tree
}

// benchEpoch is one epoch of end-to-end counts over a 196-node grid.
func benchEpoch(lt *topo.LinkTable) *epochobs.Epoch {
	n := lt.Nodes()
	e := &epochobs.Epoch{
		Delivered: make([]int64, n),
		Expected:  make([]int64, n),
		Tree:      benchTree(lt),
	}
	for i := 1; i < n; i++ {
		e.Expected[i] = 500
		e.Delivered[i] = 500 - int64(i*7%120)
	}
	return e
}

func BenchmarkEstimate200Grid(b *testing.B) {
	lt := topo.Grid(14, 10, 1.5, 14, rng.New(1)).LinkTable()
	e := benchEpoch(lt)
	est := NewEstimator(lt, DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Estimate(e)
	}
}
