package minc

import (
	"math"
	"testing"

	"dophy/internal/tomo/epochobs"
	"dophy/internal/tomo/geomle"
	"dophy/internal/topo"
)

func chainEpoch(n int64, drops []float64) *epochobs.Epoch {
	nodes := len(drops) + 1
	e := &epochobs.Epoch{
		Delivered: make([]int64, nodes),
		Expected:  make([]int64, nodes),
		Tree:      make([]topo.NodeID, nodes),
	}
	e.Tree[0] = -1
	for i := 1; i < nodes; i++ {
		e.Tree[i] = topo.NodeID(i - 1)
		deliver := 1.0
		for j := 0; j < i; j++ {
			deliver *= 1 - drops[j]
		}
		e.Expected[i] = n
		e.Delivered[i] = int64(math.Round(float64(n) * deliver))
	}
	return e
}

func TestEMRecoversChainDrops(t *testing.T) {
	drops := []float64{0.03, 0.08, 0.15}
	e := chainEpoch(100000, drops)
	cfg := DefaultConfig()
	got := Estimate(e, cfg)
	if len(got) != 3 {
		t.Fatalf("estimated %d links: %v", len(got), got)
	}
	for i, d := range drops {
		l := topo.Link{From: topo.NodeID(i + 1), To: topo.NodeID(i)}
		want := geomle.LossFromDrop(d, cfg.MaxAttempts)
		if math.Abs(got[l]-want) > 0.03 {
			t.Fatalf("link %v loss = %v, want ~%v", l, got[l], want)
		}
	}
}

func TestEMBranchyTree(t *testing.T) {
	e := &epochobs.Epoch{
		Delivered: make([]int64, 4),
		Expected:  make([]int64, 4),
		Tree:      []topo.NodeID{-1, 0, 1, 1},
	}
	const n = 50000
	dTrunk, d2, d3 := 0.05, 0.12, 0.01
	e.Expected[1], e.Delivered[1] = n, int64(math.Round(n*(1-dTrunk)))
	e.Expected[2], e.Delivered[2] = n, int64(math.Round(n*(1-d2)*(1-dTrunk)))
	e.Expected[3], e.Delivered[3] = n, int64(math.Round(n*(1-d3)*(1-dTrunk)))
	cfg := DefaultConfig()
	got := Estimate(e, cfg)
	check := func(l topo.Link, drop float64) {
		want := geomle.LossFromDrop(drop, cfg.MaxAttempts)
		if math.Abs(got[l]-want) > 0.04 {
			t.Fatalf("link %v = %v, want ~%v (full: %v)", l, got[l], want, got)
		}
	}
	check(topo.Link{From: 1, To: 0}, dTrunk)
	check(topo.Link{From: 2, To: 1}, d2)
	check(topo.Link{From: 3, To: 1}, d3)
}

func TestPerfectDelivery(t *testing.T) {
	e := chainEpoch(1000, []float64{0, 0})
	got := Estimate(e, DefaultConfig())
	for l, loss := range got {
		if loss > 0.01 {
			t.Fatalf("lossless link %v = %v", l, loss)
		}
	}
}

func TestSkipsUnderSampled(t *testing.T) {
	e := chainEpoch(2, []float64{0.1})
	if got := Estimate(e, DefaultConfig()); len(got) != 0 {
		t.Fatalf("under-sampled epoch estimated: %v", got)
	}
}

func TestEmptyEpoch(t *testing.T) {
	e := &epochobs.Epoch{Delivered: make([]int64, 2), Expected: make([]int64, 2), Tree: []topo.NodeID{-1, -1}}
	if got := Estimate(e, DefaultConfig()); len(got) != 0 {
		t.Fatalf("empty epoch estimated: %v", got)
	}
}

func TestDeliveredClampedToExpected(t *testing.T) {
	e := chainEpoch(100, []float64{0.1})
	e.Delivered[1] = 150 // reordering artefact
	got := Estimate(e, DefaultConfig())
	l := topo.Link{From: 1, To: 0}
	if got[l] < 0 || got[l] > 1 || math.IsNaN(got[l]) {
		t.Fatalf("clamped estimate = %v", got[l])
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MaxAttempts 0 accepted")
		}
	}()
	Estimate(chainEpoch(10, []float64{0.1}), Config{MaxAttempts: 0})
}

func TestEMConvergesFromLossyStart(t *testing.T) {
	// All loss on the far link; EM must not smear it onto the trunk.
	e := chainEpoch(100000, []float64{0.0, 0.3})
	cfg := DefaultConfig()
	got := Estimate(e, cfg)
	trunk := got[topo.Link{From: 1, To: 0}]
	far := got[topo.Link{From: 2, To: 1}]
	if far < trunk {
		t.Fatalf("EM attributed loss to the wrong link: trunk=%v far=%v", trunk, far)
	}
	wantFar := geomle.LossFromDrop(0.3, cfg.MaxAttempts)
	if math.Abs(far-wantFar) > 0.05 {
		t.Fatalf("far link = %v, want ~%v", far, wantFar)
	}
}
