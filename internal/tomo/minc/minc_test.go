package minc

import (
	"math"
	"testing"

	"dophy/internal/tomo/epochobs"
	"dophy/internal/tomo/geomle"
	"dophy/internal/topo"
)

// chainTable is the link table of an n-node chain matching chainEpoch's
// tree.
func chainTable(nodes int) *topo.LinkTable {
	return topo.Chain(nodes, 10, 10.5).LinkTable()
}

// starTable covers the tree {-1,0,1,1}: 1 adjacent to the sink, 2 and 3
// adjacent to 1.
func starTable() *topo.LinkTable {
	return topo.FromPoints([]topo.Point{{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 5, Y: 5}, {X: 5, Y: -5}}, 5.5).LinkTable()
}

// toMap converts a dense estimate vector to the map shape the assertions
// index by, dropping NaN (not-estimated) entries.
func toMap(lt *topo.LinkTable, est []float64) map[topo.Link]float64 {
	out := map[topo.Link]float64{}
	for i, v := range est {
		if !math.IsNaN(v) {
			out[lt.Link(topo.LinkIdx(i))] = v
		}
	}
	return out
}

func chainEpoch(n int64, drops []float64) *epochobs.Epoch {
	nodes := len(drops) + 1
	e := &epochobs.Epoch{
		Delivered: make([]int64, nodes),
		Expected:  make([]int64, nodes),
		Tree:      make([]topo.NodeID, nodes),
	}
	e.Tree[0] = -1
	for i := 1; i < nodes; i++ {
		e.Tree[i] = topo.NodeID(i - 1)
		deliver := 1.0
		for j := 0; j < i; j++ {
			deliver *= 1 - drops[j]
		}
		e.Expected[i] = n
		e.Delivered[i] = int64(math.Round(float64(n) * deliver))
	}
	return e
}

func TestEMRecoversChainDrops(t *testing.T) {
	drops := []float64{0.03, 0.08, 0.15}
	e := chainEpoch(100000, drops)
	cfg := DefaultConfig()
	lt := chainTable(4)
	got := toMap(lt, NewEstimator(lt, cfg).Estimate(e))
	if len(got) != 3 {
		t.Fatalf("estimated %d links: %v", len(got), got)
	}
	for i, d := range drops {
		l := topo.Link{From: topo.NodeID(i + 1), To: topo.NodeID(i)}
		want := geomle.LossFromDrop(d, cfg.MaxAttempts)
		if math.Abs(got[l]-want) > 0.03 {
			t.Fatalf("link %v loss = %v, want ~%v", l, got[l], want)
		}
	}
}

func TestEMBranchyTree(t *testing.T) {
	e := &epochobs.Epoch{
		Delivered: make([]int64, 4),
		Expected:  make([]int64, 4),
		Tree:      []topo.NodeID{-1, 0, 1, 1},
	}
	const n = 50000
	dTrunk, d2, d3 := 0.05, 0.12, 0.01
	e.Expected[1], e.Delivered[1] = n, int64(math.Round(n*(1-dTrunk)))
	e.Expected[2], e.Delivered[2] = n, int64(math.Round(n*(1-d2)*(1-dTrunk)))
	e.Expected[3], e.Delivered[3] = n, int64(math.Round(n*(1-d3)*(1-dTrunk)))
	cfg := DefaultConfig()
	lt := starTable()
	got := toMap(lt, NewEstimator(lt, cfg).Estimate(e))
	check := func(l topo.Link, drop float64) {
		want := geomle.LossFromDrop(drop, cfg.MaxAttempts)
		if math.Abs(got[l]-want) > 0.04 {
			t.Fatalf("link %v = %v, want ~%v (full: %v)", l, got[l], want, got)
		}
	}
	check(topo.Link{From: 1, To: 0}, dTrunk)
	check(topo.Link{From: 2, To: 1}, d2)
	check(topo.Link{From: 3, To: 1}, d3)
}

func TestPerfectDelivery(t *testing.T) {
	e := chainEpoch(1000, []float64{0, 0})
	lt := chainTable(3)
	got := toMap(lt, NewEstimator(lt, DefaultConfig()).Estimate(e))
	for l, loss := range got {
		if loss > 0.01 {
			t.Fatalf("lossless link %v = %v", l, loss)
		}
	}
}

func TestSkipsUnderSampled(t *testing.T) {
	e := chainEpoch(2, []float64{0.1})
	lt := chainTable(2)
	if got := toMap(lt, NewEstimator(lt, DefaultConfig()).Estimate(e)); len(got) != 0 {
		t.Fatalf("under-sampled epoch estimated: %v", got)
	}
}

func TestEmptyEpoch(t *testing.T) {
	e := &epochobs.Epoch{Delivered: make([]int64, 2), Expected: make([]int64, 2), Tree: []topo.NodeID{-1, -1}}
	lt := chainTable(2)
	if got := toMap(lt, NewEstimator(lt, DefaultConfig()).Estimate(e)); len(got) != 0 {
		t.Fatalf("empty epoch estimated: %v", got)
	}
}

func TestDeliveredClampedToExpected(t *testing.T) {
	e := chainEpoch(100, []float64{0.1})
	e.Delivered[1] = 150 // reordering artefact
	lt := chainTable(2)
	got := toMap(lt, NewEstimator(lt, DefaultConfig()).Estimate(e))
	l := topo.Link{From: 1, To: 0}
	if got[l] < 0 || got[l] > 1 || math.IsNaN(got[l]) {
		t.Fatalf("clamped estimate = %v", got[l])
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MaxAttempts 0 accepted")
		}
	}()
	NewEstimator(chainTable(2), Config{MaxAttempts: 0})
}

func TestEstimatorReuseAcrossEpochs(t *testing.T) {
	// The same estimator must give identical answers on repeated epochs —
	// scratch reuse must not leak state across calls.
	lt := chainTable(3)
	est := NewEstimator(lt, DefaultConfig())
	// Estimate returns borrowed scratch: copy out before the next call.
	first := append([]float64(nil), est.Estimate(chainEpoch(100000, []float64{0.0, 0.3}))...)
	est.Estimate(chainEpoch(1000, []float64{0.2, 0.2})) // interleaved epoch
	again := est.Estimate(chainEpoch(100000, []float64{0.0, 0.3}))
	for i := range first {
		a, b := first[i], again[i]
		if math.IsNaN(a) != math.IsNaN(b) || (!math.IsNaN(a) && a != b) {
			t.Fatalf("link %v: %v then %v across reuse", lt.Link(topo.LinkIdx(i)), a, b)
		}
	}
}

func TestEMConvergesFromLossyStart(t *testing.T) {
	// All loss on the far link; EM must not smear it onto the trunk.
	e := chainEpoch(100000, []float64{0.0, 0.3})
	cfg := DefaultConfig()
	lt := chainTable(3)
	got := toMap(lt, NewEstimator(lt, cfg).Estimate(e))
	trunk := got[topo.Link{From: 1, To: 0}]
	far := got[topo.Link{From: 2, To: 1}]
	if far < trunk {
		t.Fatalf("EM attributed loss to the wrong link: trunk=%v far=%v", trunk, far)
	}
	wantFar := geomle.LossFromDrop(0.3, cfg.MaxAttempts)
	if math.Abs(far-wantFar) > 0.05 {
		t.Fatalf("far link = %v, want ~%v", far, wantFar)
	}
}
