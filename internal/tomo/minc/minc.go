// Package minc is the tree-structured maximum-likelihood loss-tomography
// baseline in the lineage of MINC (Cáceres, Duffield, Horowitz, Towsley):
// given a static routing tree and per-source end-to-end delivery counts, it
// estimates per-link (per-hop, post-ARQ) drop probabilities by
// expectation–maximisation, exploiting that sources sharing tree links share
// loss.
//
// E-step: a lost packet from source s died on exactly one link of s's path;
// the posterior probability it died on link l is the chance it survived all
// links before l times the drop probability of l, normalised over the path.
// M-step: each link's drop probability is its expected deaths over its
// expected traversals. This is the textbook EM for serial-link loss and
// converges monotonically in likelihood.
//
// Like the LSQ baseline it assumes the epoch's paths were static and sees
// only post-ARQ outcomes, so it inherits both weaknesses the paper targets.
package minc

import (
	"math"

	"dophy/internal/tomo/epochobs"
	"dophy/internal/tomo/geomle"
	"dophy/internal/topo"
)

// Config tunes the EM.
type Config struct {
	MaxAttempts int   // MAC budget, for per-attempt conversion
	MinExpected int64 // skip origins with fewer expected packets
	MaxIters    int
	Tol         float64 // max per-link change to declare convergence
	// DirtyThreshold enables incremental re-estimation when positive: an
	// epoch whose dirty-row fraction is at or below the threshold seeds
	// the EM sweep from the previous epoch's converged drops (so it
	// converges in a handful of iterations) instead of the global
	// aggregate; above it, or when the link set changed, the estimator
	// falls back to the bitwise-exact from-scratch EM. Zero (the default)
	// keeps the historical always-from-scratch behaviour.
	DirtyThreshold float64
}

// DefaultDirtyThreshold is the dirty-row fraction above which incremental
// mode falls back to the from-scratch EM.
const DefaultDirtyThreshold = 0.25

// DefaultConfig returns standard EM settings.
func DefaultConfig() Config {
	return Config{MaxAttempts: 8, MinExpected: 5, MaxIters: 500, Tol: 1e-9}
}

// Estimator runs tree EM for successive epochs of one topology, reusing
// its path and EM scratch — and the estimate vector itself — across calls:
// Estimate returns a borrowed view of estimator-owned scratch, rewritten by
// the next call.
//
//dophy:states new: Estimate -> estimated; estimated: Estimate|LastStats -> estimated
type Estimator struct {
	cfg Config
	lt  *topo.LinkTable

	// colOf maps table index -> compact EM slot (-1 = not on any usable
	// path this epoch); cols is the inverse, in first-encounter order over
	// origins — the slot order the EM sweep has always used.
	colOf    []int32        // indexed by topo.LinkIdx; holds compact slots
	cols     []topo.LinkIdx // compact slot -> table index
	idxBuf   []topo.LinkIdx // one source's table indices, reused per origin
	pathBuf  []int32        // all sources' compact slots, flattened
	srcStart []int32        // pathBuf offset per source, plus a final sentinel
	deliv    []float64
	lost     []float64

	drop       []float64
	deaths     []float64
	traversals []float64
	accel1     []float64 // previous EM iterate, for Aitken extrapolation
	accel2     []float64 // iterate before that

	rowOrigin []int32   // origin node per source row, for cross-epoch matching
	out       []float64 // the returned estimate: borrowed scratch, rewritten per call

	// Incremental state (maintained only when cfg.DirtyThreshold > 0):
	// the previous epoch's rows, converged drops and output, so a
	// mostly-clean epoch can warm-start the EM from where it converged.
	haveState     bool
	prevCols      []topo.LinkIdx
	prevRowOrigin []int32
	dropPrev      []float64
	outPrev       []float64
	stats         Stats
}

// Stats describes which path the last Estimate call took.
type Stats struct {
	// Mode is "off" (DirtyThreshold disabled), "full" (from-scratch EM),
	// "warm" (EM seeded from the previous epoch's converged drops) or
	// "copy" (zero dirty rows: previous output returned verbatim).
	Mode      string
	DirtyRows int
	Rows      int
	Iters     int // EM sweeps run (0 in copy mode)
}

// LastStats reports how the most recent Estimate call was solved.
func (est *Estimator) LastStats() Stats { return est.stats }

// NewEstimator validates the configuration and binds it to a link table.
//
//dophy:readonly lt -- the table is shared with every other estimator and the recorder
func NewEstimator(lt *topo.LinkTable, cfg Config) *Estimator {
	if cfg.MaxAttempts < 1 {
		panic("minc: MaxAttempts must be >= 1")
	}
	est := &Estimator{cfg: cfg, lt: lt, colOf: make([]int32, lt.Len())}
	for i := range est.colOf {
		//dophy:allow readonly -- colOf is fresh make scratch; the flow-insensitive lattice taints est with lt only because the literal above stores the pointer
		est.colOf[i] = -1
	}
	return est
}

// resize returns s with length n and every element zeroed, reusing the
// backing array when it is large enough.
func resize(s []float64, n int) []float64 {
	if cap(s) < n {
		//dophy:allow hotpathalloc -- scratch grows to the epoch's high-water mark, then is reused
		return make([]float64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// Estimate runs tree EM over one epoch. The result is dense, indexed by
// the link table; NaN marks links not on any usable path. The returned
// slice aliases the estimator's scratch and is valid until the next
// Estimate call; retaining it across epochs requires copying it out.
//
//dophy:returns borrowed(recv) -- the result aliases est.out until the next Estimate
//dophy:invalidates
//dophy:hotpath
//dophy:readonly e -- the epoch is the pipeline's shared input; estimators may only read it
//dophy:effects noglobals -- estimation runs concurrently with the simulator under RunPipelined
func (est *Estimator) Estimate(e *epochobs.Epoch) []float64 {
	cfg := est.cfg
	for _, c := range est.cols {
		est.colOf[c] = -1
	}
	est.cols = est.cols[:0]
	est.pathBuf = est.pathBuf[:0]
	est.srcStart = est.srcStart[:0]
	est.deliv = est.deliv[:0]
	est.lost = est.lost[:0]
	est.rowOrigin = est.rowOrigin[:0]

	for origin := range e.Delivered {
		id := topo.NodeID(origin)
		if id == topo.Sink {
			continue
		}
		n := e.Expected[origin]
		if n < cfg.MinExpected {
			continue
		}
		mark := len(est.pathBuf)
		buf, ok := e.AppendPathIndices(est.lt, id, est.idxBuf[:0])
		est.idxBuf = buf
		if !ok {
			continue
		}
		// Translate the table indices into compact EM slots, assigned in
		// first-encounter order. idxBuf holds LinkIdx values, pathBuf holds
		// slots: the two integer domains never share a buffer.
		for _, li := range est.idxBuf {
			if est.colOf[li] < 0 {
				est.colOf[li] = int32(len(est.cols))
				est.cols = append(est.cols, li)
			}
			est.pathBuf = append(est.pathBuf, est.colOf[li])
		}
		d := float64(e.Delivered[origin])
		if d > float64(n) {
			d = float64(n)
		}
		est.srcStart = append(est.srcStart, int32(mark))
		est.deliv = append(est.deliv, d)
		est.lost = append(est.lost, float64(n)-d)
		est.rowOrigin = append(est.rowOrigin, int32(origin))
	}
	est.srcStart = append(est.srcStart, int32(len(est.pathBuf)))

	est.out = resize(est.out, est.lt.Len())
	out := est.out
	for i := range out {
		out[i] = math.NaN()
	}
	nsrc := len(est.deliv)
	nlinks := len(est.cols)
	est.stats = Stats{Mode: "off", Rows: nsrc}
	if nsrc == 0 || nlinks == 0 {
		// Nothing to cache or diff against: force a full EM next epoch.
		est.haveState = false
		return out
	}

	dirtyRows := 0
	warm := false
	if cfg.DirtyThreshold > 0 && est.haveState && sameCols(est.cols, est.prevCols) {
		// Merge-walk current and previous rows (both in ascending origin
		// order): a matched row is dirty when its statistics or path
		// changed, unmatched rows on either side are dirty by definition.
		i, j := 0, 0
		for i < nsrc || j < len(est.prevRowOrigin) {
			switch {
			case j >= len(est.prevRowOrigin) || (i < nsrc && est.rowOrigin[i] < est.prevRowOrigin[j]):
				dirtyRows++
				i++
			case i >= nsrc || est.rowOrigin[i] > est.prevRowOrigin[j]:
				dirtyRows++
				j++
			default:
				if e.PathDirty(topo.NodeID(est.rowOrigin[i])) {
					dirtyRows++
				}
				i++
				j++
			}
		}
		if dirtyRows == 0 {
			// Identical inputs: the cached output is bitwise what a
			// re-run would produce. All cached state stays valid.
			copy(out, est.outPrev)
			est.stats = Stats{Mode: "copy", Rows: nsrc}
			return out
		}
		denom := nsrc
		if len(est.prevRowOrigin) > denom {
			denom = len(est.prevRowOrigin)
		}
		warm = float64(dirtyRows) <= cfg.DirtyThreshold*float64(denom)
	}

	est.drop = resize(est.drop, nlinks)
	est.deaths = resize(est.deaths, nlinks)
	est.traversals = resize(est.traversals, nlinks)
	drop, deaths, traversals := est.drop, est.deaths, est.traversals
	if warm {
		// Seed from the previous epoch's converged drops: with few dirty
		// rows the fixed point barely moves, so the sweep converges in a
		// handful of iterations instead of starting from the aggregate.
		copy(drop, est.dropPrev)
		// Boundary links decay geometrically toward zero and never stop;
		// chained warm epochs would carry them into denormal range, where
		// every arithmetic op slows by an order of magnitude. Zero is the
		// value they are converging to: flush them there.
		for i, d := range drop {
			if d < 1e-250 {
				drop[i] = 0
			}
		}
	} else {
		// Initialise drops uniformly from the aggregate loss rate.
		var totalExp, totalLost float64
		for s := 0; s < nsrc; s++ {
			totalExp += est.deliv[s] + est.lost[s]
			totalLost += est.lost[s]
		}
		init := totalLost / math.Max(totalExp, 1) / 2
		if init <= 0 {
			init = 1e-4
		}
		for i := range drop {
			drop[i] = init
		}
	}

	// In warm mode the sweep is Aitken-accelerated: EM converges linearly,
	// so per-coordinate errors decay geometrically and three consecutive
	// iterates determine the limit. Every aitkenPeriod sweeps the iterate
	// jumps to that extrapolated limit; the unchanged maxDelta < Tol check
	// still decides convergence, so the result is a genuine fixed point to
	// the same tolerance — the extrapolation only skips the slow tail. The
	// from-scratch path stays untouched (and bitwise-historical).
	const aitkenPeriod = 8
	var accel1, accel2 []float64
	if warm {
		est.accel1 = resize(est.accel1, nlinks)
		est.accel2 = resize(est.accel2, nlinks)
		accel1, accel2 = est.accel1, est.accel2
	}
	itersRun := 0
	for iter := 0; iter < cfg.MaxIters; iter++ {
		itersRun++
		if warm {
			copy(accel2, accel1)
			copy(accel1, drop)
		}
		for i := range deaths {
			deaths[i] = 0
			traversals[i] = 0
		}
		for s := 0; s < nsrc; s++ {
			path := est.pathBuf[est.srcStart[s]:est.srcStart[s+1]]
			// Path delivery probability S_k = prod(1 - d_j).
			pathDeliver := 1.0
			for _, li := range path {
				pathDeliver *= 1 - drop[li]
			}
			pathLoss := 1 - pathDeliver
			// Delivered packets were offered to every link on the path.
			if est.deliv[s] > 0 {
				for _, li := range path {
					traversals[li] += est.deliv[s]
				}
			}
			if est.lost[s] > 0 && pathLoss > 1e-15 {
				// surv tracks S_{i-1}, the probability of surviving all
				// links before the current one.
				surv := 1.0
				for _, li := range path {
					// P(died exactly at l_i | lost) = S_{i-1} d_i / L.
					deaths[li] += est.lost[s] * surv * drop[li] / pathLoss
					// P(offered to l_i | lost) = (S_{i-1} - S_k) / L:
					// the packet survived the prefix and died at or after
					// this link.
					traversals[li] += est.lost[s] * (surv - pathDeliver) / pathLoss
					surv *= 1 - drop[li]
				}
			}
		}
		maxDelta := 0.0
		for i := range drop {
			if traversals[i] <= 0 {
				continue
			}
			nd := deaths[i] / traversals[i]
			if nd < 0 {
				nd = 0
			}
			if nd > 1-1e-9 {
				nd = 1 - 1e-9
			}
			if d := math.Abs(nd - drop[i]); d > maxDelta {
				maxDelta = d
			}
			drop[i] = nd
		}
		if maxDelta < cfg.Tol {
			break
		}
		if warm && iter >= 2 && iter%aitkenPeriod == 0 {
			// drop = x_{k+1}, accel1 = x_k, accel2 = x_{k-1}: when a
			// coordinate's successive differences shrink geometrically
			// (0 < r < 1), jump it to the limit of the geometric series.
			for i := range drop {
				d1 := accel1[i] - accel2[i]
				d2 := drop[i] - accel1[i]
				if d1 == 0 {
					continue
				}
				r := d2 / d1
				if r <= 0 || r >= 0.9999 {
					continue
				}
				ex := drop[i] + d2*r/(1-r)
				if ex < 0 {
					ex = 0
				}
				if ex > 1-1e-9 {
					ex = 1 - 1e-9
				}
				drop[i] = ex
			}
		}
	}
	for j, li := range est.cols {
		out[li] = geomle.LossFromDrop(drop[j], cfg.MaxAttempts)
	}
	est.stats.Iters = itersRun
	if cfg.DirtyThreshold > 0 {
		if warm {
			est.stats = Stats{Mode: "warm", DirtyRows: dirtyRows, Rows: nsrc, Iters: itersRun}
		} else {
			est.stats = Stats{Mode: "full", DirtyRows: dirtyRows, Rows: nsrc, Iters: itersRun}
		}
		// Snapshot this epoch's rows and fixed point for the next diff.
		est.prevCols = append(est.prevCols[:0], est.cols...)
		est.prevRowOrigin = append(est.prevRowOrigin[:0], est.rowOrigin...)
		est.dropPrev = append(est.dropPrev[:0], drop...)
		est.outPrev = append(est.outPrev[:0], out...)
		est.haveState = true
	}
	return out
}

// sameCols reports whether two compact slot orders are identical.
func sameCols(a, b []topo.LinkIdx) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
