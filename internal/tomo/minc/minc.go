// Package minc is the tree-structured maximum-likelihood loss-tomography
// baseline in the lineage of MINC (Cáceres, Duffield, Horowitz, Towsley):
// given a static routing tree and per-source end-to-end delivery counts, it
// estimates per-link (per-hop, post-ARQ) drop probabilities by
// expectation–maximisation, exploiting that sources sharing tree links share
// loss.
//
// E-step: a lost packet from source s died on exactly one link of s's path;
// the posterior probability it died on link l is the chance it survived all
// links before l times the drop probability of l, normalised over the path.
// M-step: each link's drop probability is its expected deaths over its
// expected traversals. This is the textbook EM for serial-link loss and
// converges monotonically in likelihood.
//
// Like the LSQ baseline it assumes the epoch's paths were static and sees
// only post-ARQ outcomes, so it inherits both weaknesses the paper targets.
package minc

import (
	"math"

	"dophy/internal/tomo/epochobs"
	"dophy/internal/tomo/geomle"
	"dophy/internal/topo"
)

// Config tunes the EM.
type Config struct {
	MaxAttempts int   // MAC budget, for per-attempt conversion
	MinExpected int64 // skip origins with fewer expected packets
	MaxIters    int
	Tol         float64 // max per-link change to declare convergence
}

// DefaultConfig returns standard EM settings.
func DefaultConfig() Config {
	return Config{MaxAttempts: 8, MinExpected: 5, MaxIters: 500, Tol: 1e-9}
}

// Estimator runs tree EM for successive epochs of one topology, reusing
// its path and EM scratch across calls; only the returned estimate vector
// is allocated per epoch.
type Estimator struct {
	cfg Config
	lt  *topo.LinkTable

	// colOf maps table index -> compact EM slot (-1 = not on any usable
	// path this epoch); cols is the inverse, in first-encounter order over
	// origins — the slot order the EM sweep has always used.
	colOf    []int32        // indexed by topo.LinkIdx; holds compact slots
	cols     []topo.LinkIdx // compact slot -> table index
	idxBuf   []topo.LinkIdx // one source's table indices, reused per origin
	pathBuf  []int32        // all sources' compact slots, flattened
	srcStart []int32        // pathBuf offset per source, plus a final sentinel
	deliv    []float64
	lost     []float64

	drop       []float64
	deaths     []float64
	traversals []float64
}

// NewEstimator validates the configuration and binds it to a link table.
func NewEstimator(lt *topo.LinkTable, cfg Config) *Estimator {
	if cfg.MaxAttempts < 1 {
		panic("minc: MaxAttempts must be >= 1")
	}
	est := &Estimator{cfg: cfg, lt: lt, colOf: make([]int32, lt.Len())}
	for i := range est.colOf {
		est.colOf[i] = -1
	}
	return est
}

// resize returns s with length n and every element zeroed, reusing the
// backing array when it is large enough.
func resize(s []float64, n int) []float64 {
	if cap(s) < n {
		//dophy:allow hotpathalloc -- scratch grows to the epoch's high-water mark, then is reused
		return make([]float64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// Estimate runs tree EM over one epoch. The result is dense, indexed by
// the link table; NaN marks links not on any usable path. The caller owns
// the returned slice.
//
//dophy:hotpath
func (est *Estimator) Estimate(e *epochobs.Epoch) []float64 {
	cfg := est.cfg
	for _, c := range est.cols {
		est.colOf[c] = -1
	}
	est.cols = est.cols[:0]
	est.pathBuf = est.pathBuf[:0]
	est.srcStart = est.srcStart[:0]
	est.deliv = est.deliv[:0]
	est.lost = est.lost[:0]

	for origin := range e.Delivered {
		id := topo.NodeID(origin)
		if id == topo.Sink {
			continue
		}
		n := e.Expected[origin]
		if n < cfg.MinExpected {
			continue
		}
		mark := len(est.pathBuf)
		buf, ok := e.AppendPathIndices(est.lt, id, est.idxBuf[:0])
		est.idxBuf = buf
		if !ok {
			continue
		}
		// Translate the table indices into compact EM slots, assigned in
		// first-encounter order. idxBuf holds LinkIdx values, pathBuf holds
		// slots: the two integer domains never share a buffer.
		for _, li := range est.idxBuf {
			if est.colOf[li] < 0 {
				est.colOf[li] = int32(len(est.cols))
				est.cols = append(est.cols, li)
			}
			est.pathBuf = append(est.pathBuf, est.colOf[li])
		}
		d := float64(e.Delivered[origin])
		if d > float64(n) {
			d = float64(n)
		}
		est.srcStart = append(est.srcStart, int32(mark))
		est.deliv = append(est.deliv, d)
		est.lost = append(est.lost, float64(n)-d)
	}
	est.srcStart = append(est.srcStart, int32(len(est.pathBuf)))

	//dophy:allow hotpathalloc -- the dense estimate vector is the epoch's product; the caller owns it
	out := make([]float64, est.lt.Len())
	for i := range out {
		out[i] = math.NaN()
	}
	nsrc := len(est.deliv)
	nlinks := len(est.cols)
	if nsrc == 0 || nlinks == 0 {
		return out
	}

	// Initialise drops uniformly from the aggregate loss rate.
	var totalExp, totalLost float64
	for s := 0; s < nsrc; s++ {
		totalExp += est.deliv[s] + est.lost[s]
		totalLost += est.lost[s]
	}
	init := totalLost / math.Max(totalExp, 1) / 2
	if init <= 0 {
		init = 1e-4
	}
	est.drop = resize(est.drop, nlinks)
	est.deaths = resize(est.deaths, nlinks)
	est.traversals = resize(est.traversals, nlinks)
	drop, deaths, traversals := est.drop, est.deaths, est.traversals
	for i := range drop {
		drop[i] = init
	}

	for iter := 0; iter < cfg.MaxIters; iter++ {
		for i := range deaths {
			deaths[i] = 0
			traversals[i] = 0
		}
		for s := 0; s < nsrc; s++ {
			path := est.pathBuf[est.srcStart[s]:est.srcStart[s+1]]
			// Path delivery probability S_k = prod(1 - d_j).
			pathDeliver := 1.0
			for _, li := range path {
				pathDeliver *= 1 - drop[li]
			}
			pathLoss := 1 - pathDeliver
			// Delivered packets were offered to every link on the path.
			if est.deliv[s] > 0 {
				for _, li := range path {
					traversals[li] += est.deliv[s]
				}
			}
			if est.lost[s] > 0 && pathLoss > 1e-15 {
				// surv tracks S_{i-1}, the probability of surviving all
				// links before the current one.
				surv := 1.0
				for _, li := range path {
					// P(died exactly at l_i | lost) = S_{i-1} d_i / L.
					deaths[li] += est.lost[s] * surv * drop[li] / pathLoss
					// P(offered to l_i | lost) = (S_{i-1} - S_k) / L:
					// the packet survived the prefix and died at or after
					// this link.
					traversals[li] += est.lost[s] * (surv - pathDeliver) / pathLoss
					surv *= 1 - drop[li]
				}
			}
		}
		maxDelta := 0.0
		for i := range drop {
			if traversals[i] <= 0 {
				continue
			}
			nd := deaths[i] / traversals[i]
			if nd < 0 {
				nd = 0
			}
			if nd > 1-1e-9 {
				nd = 1 - 1e-9
			}
			if d := math.Abs(nd - drop[i]); d > maxDelta {
				maxDelta = d
			}
			drop[i] = nd
		}
		if maxDelta < cfg.Tol {
			break
		}
	}
	for j, li := range est.cols {
		out[li] = geomle.LossFromDrop(drop[j], cfg.MaxAttempts)
	}
	return out
}
