// Package minc is the tree-structured maximum-likelihood loss-tomography
// baseline in the lineage of MINC (Cáceres, Duffield, Horowitz, Towsley):
// given a static routing tree and per-source end-to-end delivery counts, it
// estimates per-link (per-hop, post-ARQ) drop probabilities by
// expectation–maximisation, exploiting that sources sharing tree links share
// loss.
//
// E-step: a lost packet from source s died on exactly one link of s's path;
// the posterior probability it died on link l is the chance it survived all
// links before l times the drop probability of l, normalised over the path.
// M-step: each link's drop probability is its expected deaths over its
// expected traversals. This is the textbook EM for serial-link loss and
// converges monotonically in likelihood.
//
// Like the LSQ baseline it assumes the epoch's paths were static and sees
// only post-ARQ outcomes, so it inherits both weaknesses the paper targets.
package minc

import (
	"math"

	"dophy/internal/tomo/epochobs"
	"dophy/internal/tomo/geomle"
	"dophy/internal/topo"
)

// Config tunes the EM.
type Config struct {
	MaxAttempts int   // MAC budget, for per-attempt conversion
	MinExpected int64 // skip origins with fewer expected packets
	MaxIters    int
	Tol         float64 // max per-link change to declare convergence
}

// DefaultConfig returns standard EM settings.
func DefaultConfig() Config {
	return Config{MaxAttempts: 8, MinExpected: 5, MaxIters: 500, Tol: 1e-9}
}

// Estimate runs tree EM over one epoch and returns per-link per-attempt
// loss estimates.
func Estimate(e *epochobs.Epoch, cfg Config) map[topo.Link]float64 {
	if cfg.MaxAttempts < 1 {
		panic("minc: MaxAttempts must be >= 1")
	}
	type source struct {
		path      []int // link indices, origin-side first
		delivered float64
		lost      float64
	}
	linkIdx := make(map[topo.Link]int)
	var links []topo.Link
	var sources []source
	for origin := range e.Delivered {
		id := topo.NodeID(origin)
		if id == topo.Sink {
			continue
		}
		n := e.Expected[origin]
		if n < cfg.MinExpected {
			continue
		}
		path, ok := e.PathToSink(id)
		if !ok {
			continue
		}
		idxPath := make([]int, len(path))
		for i, l := range path {
			j, seen := linkIdx[l]
			if !seen {
				j = len(links)
				linkIdx[l] = j
				links = append(links, l)
			}
			idxPath[i] = j
		}
		d := float64(e.Delivered[origin])
		if d > float64(n) {
			d = float64(n)
		}
		sources = append(sources, source{path: idxPath, delivered: d, lost: float64(n) - d})
	}
	if len(sources) == 0 || len(links) == 0 {
		return map[topo.Link]float64{}
	}

	// Initialise drops uniformly from the aggregate loss rate.
	var totalExp, totalLost float64
	for _, s := range sources {
		totalExp += s.delivered + s.lost
		totalLost += s.lost
	}
	init := totalLost / math.Max(totalExp, 1) / 2
	if init <= 0 {
		init = 1e-4
	}
	drop := make([]float64, len(links))
	for i := range drop {
		drop[i] = init
	}

	deaths := make([]float64, len(links))
	traversals := make([]float64, len(links))
	for iter := 0; iter < cfg.MaxIters; iter++ {
		for i := range deaths {
			deaths[i] = 0
			traversals[i] = 0
		}
		for _, s := range sources {
			// Path delivery probability S_k = prod(1 - d_j).
			pathDeliver := 1.0
			for _, li := range s.path {
				pathDeliver *= 1 - drop[li]
			}
			pathLoss := 1 - pathDeliver
			// Delivered packets were offered to every link on the path.
			if s.delivered > 0 {
				for _, li := range s.path {
					traversals[li] += s.delivered
				}
			}
			if s.lost > 0 && pathLoss > 1e-15 {
				// surv tracks S_{i-1}, the probability of surviving all
				// links before the current one.
				surv := 1.0
				for _, li := range s.path {
					// P(died exactly at l_i | lost) = S_{i-1} d_i / L.
					deaths[li] += s.lost * surv * drop[li] / pathLoss
					// P(offered to l_i | lost) = (S_{i-1} - S_k) / L:
					// the packet survived the prefix and died at or after
					// this link.
					traversals[li] += s.lost * (surv - pathDeliver) / pathLoss
					surv *= 1 - drop[li]
				}
			}
		}
		maxDelta := 0.0
		for i := range drop {
			if traversals[i] <= 0 {
				continue
			}
			nd := deaths[i] / traversals[i]
			if nd < 0 {
				nd = 0
			}
			if nd > 1-1e-9 {
				nd = 1 - 1e-9
			}
			if d := math.Abs(nd - drop[i]); d > maxDelta {
				maxDelta = d
			}
			drop[i] = nd
		}
		if maxDelta < cfg.Tol {
			break
		}
	}
	out := make(map[topo.Link]float64, len(links))
	for l, j := range linkIdx {
		out[l] = geomle.LossFromDrop(drop[j], cfg.MaxAttempts)
	}
	return out
}
