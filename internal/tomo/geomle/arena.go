package geomle

import "dophy/internal/topo"

// Arena is a dense pool of Obs accumulators indexed by an external link
// table (see topo.LinkTable). All Exact histograms share one flat backing
// array, so a whole epoch of per-link state is two allocations for the
// lifetime of an estimator instead of one map entry plus one slice per
// touched link per epoch. An Obs with Total() == 0 means "no observations
// on that link" — the dense replacement for a missing map key.
//
// A reused arena starts each epoch with Reset; accumulators are handed out
// only after that first wipe.
//
//dophy:states new: Reset -> ready; ready: At|Reset -> ready
type Arena struct {
	obs     []Obs
	backing []float64
}

// NewArena returns an arena of n observation accumulators with bins exact
// histogram slots each.
func NewArena(n, bins int) *Arena {
	a := &Arena{
		obs:     make([]Obs, n),
		backing: make([]float64, n*bins),
	}
	for i := range a.obs {
		a.obs[i].Exact = a.backing[i*bins : (i+1)*bins : (i+1)*bins]
	}
	return a
}

// Len returns the number of accumulators.
func (a *Arena) Len() int { return len(a.obs) }

// At returns the accumulator at link-table index i. The pointer aliases the
// arena's backing storage, but deliberately with no invalidation: the
// pointer stays valid across Reset (only the counts it sees are wiped).
//
//dophy:returns borrowed(recv) -- the accumulator lives in the arena's backing array
func (a *Arena) At(i topo.LinkIdx) *Obs { return &a.obs[i] }

// Reset zeroes every accumulator in place, keeping the backing storage.
func (a *Arena) Reset() {
	clear(a.backing)
	for i := range a.obs {
		a.obs[i].Censored = 0
	}
}

// Clear zeroes one accumulator in place — the dense equivalent of deleting
// a map entry (used when exponential forgetting evaporates a link's
// evidence entirely).
func (o *Obs) Clear() {
	clear(o.Exact)
	o.Censored = 0
}
