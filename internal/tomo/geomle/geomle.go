// Package geomle estimates per-attempt link loss from retransmission-count
// observations: the maximum-likelihood estimator for a geometric success
// process truncated by the ARQ retry budget and optionally right-censored by
// Dophy's symbol aggregation.
//
// Observation model. A link with per-attempt success probability p delivers
// a packet on attempt T, where P(T = t) = (1-p)^(t-1) p. The MAC allows at
// most M attempts, and only delivered packets are observed downstream, so an
// observed count follows the conditional law
//
//	P(T = t | delivered) = (1-p)^(t-1) p / (1 - (1-p)^M),  1 <= t <= M.
//
// With aggregation threshold A (retransmission counts >= A collapse into one
// tail symbol), a tail observation contributes the censored mass
//
//	P(A+1 <= T <= M | delivered) = ((1-p)^A - (1-p)^M) / (1 - (1-p)^M).
//
// The estimator maximises the resulting log-likelihood by golden-section
// search — the likelihood is unimodal in p — entirely with stdlib math, per
// this repo's hand-rolled-numerics rule.
package geomle

import (
	"fmt"
	"math"
)

// Obs aggregates the retransmission observations of one link. Counts are
// float64 so estimators can apply exponential forgetting (each old
// observation keeps a fractional weight); integer counting is the special
// case of weight-1 observations.
type Obs struct {
	// Exact[t-1] is the (possibly decayed) count of packets first delivered
	// on attempt t, for t = 1..len(Exact). With aggregation, len(Exact) ==
	// A; without, len(Exact) == M.
	Exact []float64
	// Censored is the count of tail observations (attempt > len(Exact)),
	// known only to lie in [len(Exact)+1, M].
	Censored float64
}

// Total returns the (effective) number of observations.
func (o Obs) Total() float64 {
	n := o.Censored
	for _, c := range o.Exact {
		n += c
	}
	return n
}

// Decay multiplies every accumulated count by factor, implementing
// exponential forgetting across estimation epochs.
func (o *Obs) Decay(factor float64) {
	if factor < 0 || factor > 1 {
		panic("geomle: decay factor outside [0,1]")
	}
	for i := range o.Exact {
		o.Exact[i] *= factor
	}
	o.Censored *= factor
}

// AddAttempt records an exact first-delivery attempt t (1-based).
func (o *Obs) AddAttempt(t int) {
	if t < 1 || t > len(o.Exact) {
		panic(fmt.Sprintf("geomle: attempt %d outside exact range [1,%d]", t, len(o.Exact)))
	}
	o.Exact[t-1]++
}

// logLikelihood evaluates the censored truncated-geometric log-likelihood
// at success probability p for max attempts m.
func (o Obs) logLikelihood(p float64, m int) float64 {
	q := 1 - p
	logQ := math.Log(q)
	logP := math.Log(p)
	qM := math.Pow(q, float64(m))
	logZ := math.Log(1 - qM)
	ll := 0.0
	var n float64
	for i, c := range o.Exact {
		if c == 0 {
			continue
		}
		t := float64(i + 1)
		ll += c * ((t-1)*logQ + logP)
		n += c
	}
	if o.Censored > 0 {
		a := float64(len(o.Exact))
		mass := math.Pow(q, a) - qM
		if mass <= 0 {
			return math.Inf(-1)
		}
		ll += o.Censored * math.Log(mass)
		n += o.Censored
	}
	ll -= n * logZ
	return ll
}

// EstimateP returns the MLE of the per-attempt success probability given
// max attempts m (the MAC budget). It returns an error when there are no
// observations or the configuration is inconsistent.
//
//dophy:readonly recv -- the Exact bins may be shared with a collector; estimation only reads them
//dophy:effects noglobals
func (o Obs) EstimateP(m int) (float64, error) {
	if m < 1 {
		return 0, fmt.Errorf("geomle: max attempts %d < 1", m)
	}
	if len(o.Exact) > m {
		return 0, fmt.Errorf("geomle: %d exact bins exceed max attempts %d", len(o.Exact), m)
	}
	if o.Censored > 0 && len(o.Exact) == m {
		return 0, fmt.Errorf("geomle: censored observations with no tail room")
	}
	n := o.Total()
	if n == 0 {
		return 0, fmt.Errorf("geomle: no observations")
	}
	// Degenerate fast path: everything delivered first try => p-hat = 1
	// under the truncated likelihood (supremum at p -> 1).
	if len(o.Exact) > 0 && o.Exact[0] == n {
		return 1, nil
	}
	const lo0, hi0 = 1e-9, 1 - 1e-9
	// Golden-section search for the maximum.
	const phi = 0.6180339887498949
	lo, hi := lo0, hi0
	x1 := hi - phi*(hi-lo)
	x2 := lo + phi*(hi-lo)
	f1 := o.logLikelihood(x1, m)
	f2 := o.logLikelihood(x2, m)
	for i := 0; i < 200 && hi-lo > 1e-12; i++ {
		if f1 < f2 {
			lo = x1
			x1, f1 = x2, f2
			x2 = lo + phi*(hi-lo)
			f2 = o.logLikelihood(x2, m)
		} else {
			hi = x2
			x2, f2 = x1, f1
			x1 = hi - phi*(hi-lo)
			f1 = o.logLikelihood(x1, m)
		}
	}
	return (lo + hi) / 2, nil
}

// EstimateLoss returns the MLE of the per-attempt loss ratio 1 - p.
//
//dophy:readonly recv -- the Exact bins may be shared with a collector; estimation only reads them
//dophy:effects noglobals
func (o Obs) EstimateLoss(m int) (float64, error) {
	p, err := o.EstimateP(m)
	if err != nil {
		return 0, err
	}
	return 1 - p, nil
}

// StdErr approximates the standard error of the loss estimate via the
// observed information (numerical second derivative at the MLE). It returns
// 0 when the curvature is degenerate (e.g. p-hat at the boundary).
//
//dophy:readonly recv -- the Exact bins may be shared with a collector; estimation only reads them
//dophy:effects noglobals
func (o Obs) StdErr(m int, pHat float64) float64 {
	if pHat <= 1e-6 || pHat >= 1-1e-6 {
		return 0
	}
	const h = 1e-5
	f0 := o.logLikelihood(pHat, m)
	fp := o.logLikelihood(pHat+h, m)
	fm := o.logLikelihood(pHat-h, m)
	d2 := (fp - 2*f0 + fm) / (h * h)
	if d2 >= 0 || math.IsNaN(d2) || math.IsInf(d2, 0) {
		return 0
	}
	return 1 / math.Sqrt(-d2)
}

// DropProbability returns the per-packet drop probability implied by
// per-attempt loss and the retry budget: (loss)^m.
func DropProbability(loss float64, m int) float64 {
	return math.Pow(loss, float64(m))
}

// LossFromDrop inverts DropProbability: the per-attempt loss consistent
// with an observed per-hop packet drop probability under m attempts. This
// is how delivery-ratio baselines are mapped onto the fine-grained metric.
func LossFromDrop(drop float64, m int) float64 {
	if drop <= 0 {
		return 0
	}
	if drop >= 1 {
		return 1
	}
	return math.Pow(drop, 1/float64(m))
}
