package geomle

import (
	"math"
	"testing"
	"testing/quick"

	"dophy/internal/rng"
)

// sample draws n delivered-packet attempt counts for success prob p and max
// attempts m, returning observations with optional aggregation threshold a
// (a == 0 disables aggregation).
func sample(r *rng.Source, p float64, m, a, n int) Obs {
	exactLen := m
	if a > 0 && a < m {
		exactLen = a
	}
	obs := Obs{Exact: make([]float64, exactLen)}
	for drawn := 0; drawn < n; {
		t := r.Geometric(p) + 1
		if t > m {
			continue // dropped packet: unobserved
		}
		drawn++
		if t <= exactLen {
			obs.Exact[t-1]++
		} else {
			obs.Censored++
		}
	}
	return obs
}

func TestRecoverKnownP(t *testing.T) {
	r := rng.New(1)
	for _, p := range []float64{0.95, 0.8, 0.6, 0.4} {
		obs := sample(r, p, 8, 0, 20000)
		got, err := obs.EstimateP(8)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-p) > 0.02 {
			t.Fatalf("p = %v: estimated %v", p, got)
		}
	}
}

func TestRecoverWithCensoring(t *testing.T) {
	r := rng.New(2)
	for _, p := range []float64{0.8, 0.5, 0.3} {
		obs := sample(r, p, 8, 3, 20000)
		got, err := obs.EstimateP(8)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-p) > 0.03 {
			t.Fatalf("p = %v with censoring: estimated %v", p, got)
		}
	}
}

func TestCensoringCostsLittleForGoodLinks(t *testing.T) {
	// For a good link, aggregation at 2 should barely move the estimate.
	r := rng.New(3)
	p := 0.9
	full := sample(r, p, 8, 0, 30000)
	agg := sample(rng.New(3), p, 8, 2, 30000)
	pf, _ := full.EstimateP(8)
	pa, _ := agg.EstimateP(8)
	if math.Abs(pf-pa) > 0.01 {
		t.Fatalf("aggregation moved estimate: %v vs %v", pf, pa)
	}
}

func TestPerfectLink(t *testing.T) {
	obs := Obs{Exact: []float64{1000, 0, 0, 0}}
	p, err := obs.EstimateP(4)
	if err != nil || p != 1 {
		t.Fatalf("perfect link p = %v, %v", p, err)
	}
	loss, _ := obs.EstimateLoss(4)
	if loss != 0 {
		t.Fatalf("perfect link loss = %v", loss)
	}
}

func TestTerribleLink(t *testing.T) {
	// All deliveries at the last attempt: p-hat must be small.
	obs := Obs{Exact: []float64{0, 0, 0, 0, 0, 0, 0, 500}}
	p, err := obs.EstimateP(8)
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.1 {
		t.Fatalf("all-last-attempt link p = %v, want small", p)
	}
}

func TestNoObservationsErrors(t *testing.T) {
	obs := Obs{Exact: make([]float64, 4)}
	if _, err := obs.EstimateP(4); err == nil {
		t.Fatal("no observations accepted")
	}
}

func TestConfigErrors(t *testing.T) {
	obs := Obs{Exact: []float64{1, 1, 1, 1, 1}}
	if _, err := obs.EstimateP(4); err == nil {
		t.Fatal("exact bins beyond max attempts accepted")
	}
	bad := Obs{Exact: []float64{1, 1}, Censored: 3}
	if _, err := bad.EstimateP(2); err == nil {
		t.Fatal("censored mass with no tail room accepted")
	}
	if _, err := (Obs{Exact: []float64{1}}).EstimateP(0); err == nil {
		t.Fatal("max attempts 0 accepted")
	}
}

func TestAddAttempt(t *testing.T) {
	obs := Obs{Exact: make([]float64, 3)}
	obs.AddAttempt(1)
	obs.AddAttempt(3)
	obs.AddAttempt(3)
	if obs.Exact[0] != 1 || obs.Exact[2] != 2 || obs.Total() != 3 {
		t.Fatalf("obs = %+v", obs)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range attempt accepted")
		}
	}()
	obs.AddAttempt(4)
}

func TestTruncationBiasHandled(t *testing.T) {
	// A naive method-of-moments on delivered packets underestimates loss
	// because heavy-loss packets vanish. Verify the MLE corrects this: at
	// p = 0.3, m = 4, the naive estimate from E[T|delivered] is far off.
	r := rng.New(4)
	p := 0.3
	obs := sample(r, p, 4, 0, 30000)
	got, err := obs.EstimateP(4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-p) > 0.02 {
		t.Fatalf("truncated MLE = %v, want ~%v", got, p)
	}
	// Naive: p-naive = 1/E[T] over delivered packets only.
	var sumT, n float64
	for i, c := range obs.Exact {
		sumT += float64(i+1) * float64(c)
		n += float64(c)
	}
	naive := n / sumT
	if math.Abs(naive-p) < math.Abs(got-p) {
		t.Fatalf("test premise broken: naive %v beats MLE %v", naive, got)
	}
}

func TestStdErrShrinksWithSamples(t *testing.T) {
	r := rng.New(5)
	small := sample(r, 0.7, 8, 0, 100)
	large := sample(r, 0.7, 8, 0, 10000)
	ps, _ := small.EstimateP(8)
	pl, _ := large.EstimateP(8)
	ses := small.StdErr(8, ps)
	sel := large.StdErr(8, pl)
	if ses == 0 || sel == 0 {
		t.Fatalf("degenerate std errs: %v %v", ses, sel)
	}
	if sel >= ses {
		t.Fatalf("std err did not shrink: %v -> %v", ses, sel)
	}
}

func TestStdErrBoundary(t *testing.T) {
	obs := Obs{Exact: []float64{100, 0, 0}}
	if se := obs.StdErr(3, 1); se != 0 {
		t.Fatalf("boundary std err = %v, want 0", se)
	}
}

func TestDropConversionRoundTrip(t *testing.T) {
	for _, loss := range []float64{0.05, 0.2, 0.5} {
		drop := DropProbability(loss, 8)
		back := LossFromDrop(drop, 8)
		if math.Abs(back-loss) > 1e-12 {
			t.Fatalf("roundtrip %v -> %v -> %v", loss, drop, back)
		}
	}
	if LossFromDrop(0, 8) != 0 || LossFromDrop(1, 8) != 1 {
		t.Fatal("degenerate conversions wrong")
	}
}

// Property: the estimate is always a valid probability and reproducible.
func TestQuickEstimateValid(t *testing.T) {
	f := func(seed uint64, pRaw uint8, aggRaw uint8) bool {
		p := 0.05 + float64(pRaw%90)/100
		a := int(aggRaw) % 9 // 0..8
		r := rng.New(seed)
		obs := sample(r, p, 8, a, 500)
		if obs.Total() == 0 {
			return true
		}
		got, err := obs.EstimateP(8)
		if err != nil {
			return false
		}
		if got < 0 || got > 1 || math.IsNaN(got) {
			return false
		}
		got2, _ := obs.EstimateP(8)
		return got == got2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEstimate(b *testing.B) {
	obs := sample(rng.New(1), 0.7, 8, 3, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := obs.EstimateP(8); err != nil {
			b.Fatal(err)
		}
	}
}
