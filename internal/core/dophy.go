// Package core implements Dophy, the paper's contribution: fine-grained
// loss tomography for dynamic sensor networks built on arithmetic-coded
// in-packet retransmission counts.
//
// Mechanism. Every link-layer frame carries its attempt number, so the
// receiver of a hop knows on which attempt the packet first arrived. The
// receiver appends two arithmetic-coded symbols to the packet's annotation
// field: its own identity (coded as an index into the sender's neighbour
// table — the sink knows the topology, so log2(degree) bits suffice) and the
// hop's retransmission count (coded against a probability model shared by
// all nodes and the sink). Because the vast majority of hops need zero
// retransmissions, the count symbol costs a fraction of a bit.
//
// Optimisation 1 — symbol aggregation: counts at or above a threshold A
// collapse into one tail symbol, shrinking the alphabet and bounding the
// annotation. The estimator treats tail observations as right-censored.
//
// Optimisation 2 — periodic model update: the sink re-estimates the global
// retransmission-count distribution and floods a quantised frequency table
// back into the network every UpdateEvery epochs; in-packet cost then tracks
// the cross-entropy of the true distribution under the shared model.
//
// Estimation: per-link censored truncated-geometric MLE (internal/tomo/geomle)
// over the decoded per-hop counts. Because counts are attributed to links —
// not to end-to-end paths — routing dynamics do not smear the estimates,
// which is the paper's core advantage over path-based tomography.
package core

import (
	"fmt"
	"math"

	"dophy/internal/coding/arith"
	"dophy/internal/coding/bitio"
	"dophy/internal/coding/model"
	"dophy/internal/collect"
	"dophy/internal/tomo/geomle"
	"dophy/internal/topo"
)

// Config parameterises Dophy.
type Config struct {
	// MaxAttempts is the MAC attempt budget per hop (retransmissions + 1).
	MaxAttempts int
	// AggThreshold is optimisation 1's threshold A on retransmission counts
	// (counts >= A share one tail symbol). 0 disables aggregation.
	AggThreshold int
	// ModelTotal is the total mass of the quantised shared count model.
	ModelTotal uint32
	// UpdateEvery is optimisation 2's period in epochs between model
	// updates (0 = never update; keep the initial prior forever).
	UpdateEvery int
	// MinSamples is the minimum per-link observations required to report an
	// estimate for that link in an epoch.
	MinSamples int64
	// HopModelUpdateEvery extends optimisation 2 to the hop-identity
	// symbols: every this-many epochs each node's observed next-hop
	// distribution replaces the uniform neighbour-index model, so a node
	// that forwards 85% of its traffic to one parent pays ~0.6 bits for
	// that hop instead of log2(degree). Each update costs a local broadcast
	// of the node's table plus a unicast to the sink (accounted in
	// DisseminationBits). 0 disables (uniform hop models, paper baseline).
	HopModelUpdateEvery int
	// HopModelTotal is the quantisation mass of disseminated hop tables.
	HopModelTotal uint32
	// ObsDecay selects the estimation window. 0 (default) resets per-link
	// observations at every epoch boundary (pure per-epoch windows, the
	// paper's behaviour). A value in (0,1] multiplies accumulated counts by
	// that factor at each boundary instead, giving an exponentially-
	// forgotten stream estimator: smoother on slow links, lagging on fast
	// changes (the F10 trade-off).
	ObsDecay float64
}

// DefaultConfig returns the settings used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		MaxAttempts:  8,
		AggThreshold: 3,
		ModelTotal:   1 << 12,
		UpdateEvery:  1,
		MinSamples:   10,
	}
}

func (c Config) validate() {
	if c.MaxAttempts < 1 {
		panic("core: MaxAttempts must be >= 1")
	}
	if c.AggThreshold < 0 || c.AggThreshold >= c.MaxAttempts {
		// Threshold == MaxAttempts-1 is the last meaningful split; anything
		// beyond disables aggregation, which callers express with 0.
		if c.AggThreshold != 0 {
			panic(fmt.Sprintf("core: AggThreshold %d outside [1,%d]", c.AggThreshold, c.MaxAttempts-1))
		}
	}
	if c.ModelTotal < 16 {
		panic("core: ModelTotal too small to quantise")
	}
	if c.UpdateEvery < 0 {
		panic("core: UpdateEvery must be >= 0")
	}
	if c.HopModelUpdateEvery < 0 {
		panic("core: HopModelUpdateEvery must be >= 0")
	}
	if c.HopModelUpdateEvery > 0 && c.HopModelTotal < 16 {
		panic("core: HopModelTotal too small to quantise")
	}
	if c.ObsDecay < 0 || c.ObsDecay > 1 {
		panic("core: ObsDecay must be in [0,1]")
	}
}

// Overhead accumulates Dophy's transmission costs for one epoch.
type Overhead struct {
	Packets int64 // delivered packets annotated
	Hops    int64 // hop records encoded
	// AnnotationBits is the sum of final (flushed) annotation sizes.
	AnnotationBits int64
	// HeaderBits is the fixed per-packet origin-identifier cost.
	HeaderBits int64
	// TransmittedBits counts annotation bits actually radiated: the prefix
	// carried into each hop times that hop's transmissions, plus the header
	// on every transmission. This is the energy-relevant figure.
	TransmittedBits int64
	// DisseminationBits is the model-update flood cost (optimisation 2).
	DisseminationBits int64
	// InFlightStateBits counts radiated coder-register bytes in the
	// distributed encoding path (zero for the sink-side path, which models
	// the same packets without carrying state).
	InFlightStateBits int64
}

// BitsPerPacket returns mean final annotation+header bits per packet.
func (o Overhead) BitsPerPacket() float64 {
	if o.Packets == 0 {
		return 0
	}
	return float64(o.AnnotationBits+o.HeaderBits) / float64(o.Packets)
}

// BytesPerPacket returns BitsPerPacket in bytes.
func (o Overhead) BytesPerPacket() float64 { return o.BitsPerPacket() / 8 }

// LinkEstimate is one link's per-epoch estimation result.
type LinkEstimate struct {
	Loss    float64 // estimated per-attempt loss ratio
	StdErr  float64 // observed-information standard error (0 if degenerate)
	Samples int64   // observations behind the estimate
}

// EpochReport is the output of one estimation epoch. Est is dense, indexed
// by Table; a NaN Loss marks links without an estimate this epoch
// (estimators never legitimately produce NaN).
type EpochReport struct {
	Epoch        int
	Table        *topo.LinkTable
	Est          []LinkEstimate
	Overhead     Overhead
	DecodeErrors int64
	ModelUpdated bool
	// ModelFreqs snapshots the shared count model in force during the epoch.
	ModelFreqs []uint32
}

// At returns l's estimate and whether l was estimated this epoch.
func (r *EpochReport) At(l topo.Link) (LinkEstimate, bool) {
	i := r.Table.Index(l)
	if i < 0 || math.IsNaN(r.Est[i].Loss) {
		return LinkEstimate{}, false
	}
	return r.Est[i], true
}

// NumEstimated counts links with an estimate this epoch.
func (r *EpochReport) NumEstimated() int {
	n := 0
	for i := range r.Est {
		if !math.IsNaN(r.Est[i].Loss) {
			n++
		}
	}
	return n
}

// SortedLinks returns the estimated links in deterministic (table) order.
func (r *EpochReport) SortedLinks() []topo.Link {
	var out []topo.Link
	for i := topo.LinkIdx(0); i < r.Table.Count(); i++ {
		if !math.IsNaN(r.Est[i].Loss) {
			out = append(out, r.Table.Link(i))
		}
	}
	return out
}

// Dophy is the sink-side engine plus the (simulated) in-network annotators.
type Dophy struct {
	// inv carries the build-tag-gated conservation checks; a zero-size
	// no-op in the default build (see invariants_off.go).
	inv coreInvariants
	tp  *topo.Topology
	lt  *topo.LinkTable
	cfg Config
	agg model.Aggregator

	countModel *model.Static
	hopModels  []*model.Static // neighbour-index model per sender node

	originBits int
	meanHops   float64 // topology mean hop depth, for dissemination costing

	epoch        int
	linkObs      *geomle.Arena // per-link accumulators, indexed by lt
	symbolWindow []uint64      // decoded count symbols since last model update
	hopWindow    [][]uint64    // decoded next-hop indices per sender node
	overhead     Overhead
	decodeErrors int64

	// Scratch state reused across encode/decode calls. A Dophy engine is
	// driven from a single sequential simulation loop (one journey at a
	// time), so reuse is safe and keeps the per-packet hot path free of
	// heap allocations. The slices returned by encode/decode alias these
	// buffers and are only valid until the next call.
	encWriter *bitio.Writer
	encCoder  *arith.Encoder
	decReader *bitio.Reader
	decCoder  *arith.Decoder
	prefixBuf []int
	dataBuf   []byte
	linkBuf   []topo.Link
	countBuf  []int
}

// New builds a Dophy engine over the given topology.
func New(tp *topo.Topology, cfg Config) *Dophy {
	cfg.validate()
	d := &Dophy{
		tp:  tp,
		lt:  tp.LinkTable(),
		cfg: cfg,
		agg: model.Aggregator{Threshold: cfg.AggThreshold, MaxCount: cfg.MaxAttempts - 1},
	}
	d.symbolWindow = make([]uint64, d.agg.NumSymbols())
	d.countModel = model.NewStatic(initialPrior(d.agg.NumSymbols(), cfg.ModelTotal))
	d.hopModels = make([]*model.Static, tp.N())
	d.hopWindow = make([][]uint64, tp.N())
	for i := 0; i < tp.N(); i++ {
		if deg := len(tp.Neighbors(topo.NodeID(i))); deg > 0 {
			d.hopModels[i] = model.Uniform(deg)
			d.hopWindow[i] = make([]uint64, deg)
		}
	}
	d.originBits = bitsFor(tp.N())
	hops := tp.HopCounts()
	sum, cnt := 0, 0
	for _, h := range hops {
		if h > 0 {
			sum += h
			cnt++
		}
	}
	if cnt > 0 {
		d.meanHops = float64(sum) / float64(cnt)
	}
	d.linkObs = geomle.NewArena(d.lt.Len(), d.exactLen())
	d.encWriter = bitio.NewWriter()
	d.encCoder = arith.NewEncoder(d.encWriter)
	d.decReader = bitio.NewReader(nil)
	d.decCoder = arith.NewDecoder(d.decReader)
	return d
}

// initialPrior is the deployment-time default model: geometric decay,
// reflecting that most links need few retransmissions.
func initialPrior(n int, total uint32) []uint32 {
	counts := make([]uint64, n)
	w := uint64(1) << uint(n)
	for i := range counts {
		counts[i] = w
		w = (w + 1) / 2
	}
	return model.Quantize(counts, total)
}

// bitsFor returns ceil(log2(n)) with a 1-bit floor.
func bitsFor(n int) int {
	b := 1
	for (1 << uint(b)) < n {
		b++
	}
	return b
}

// exactLen returns the number of exact attempt bins in link observations.
func (d *Dophy) exactLen() int {
	if d.cfg.AggThreshold > 0 {
		return d.cfg.AggThreshold
	}
	return d.cfg.MaxAttempts
}

// OnJourney processes one completed packet and returns the packet's final
// annotation size in bits (0 when ignored). Dropped packets carry no
// annotation to the sink and are ignored (their absence is what the
// delivery-ratio baselines consume instead).
func (d *Dophy) OnJourney(j *collect.PacketJourney) int {
	if !j.Delivered || len(j.Hops) == 0 {
		return 0
	}
	data, finalBits, prefixBits := d.encode(j)
	d.overhead.Packets++
	d.overhead.Hops += int64(len(j.Hops))
	d.overhead.AnnotationBits += int64(finalBits)
	d.overhead.HeaderBits += int64(d.originBits)
	// Transmitted bits: hop i radiates the annotation accumulated through
	// hop i-1 (receiver-side appends), plus the header, once per attempt.
	for i, h := range j.Hops {
		carried := d.originBits
		if i > 0 {
			carried += prefixBits[i-1]
		}
		d.overhead.TransmittedBits += int64(carried * h.Attempts)
	}

	hops, counts, err := d.decode(j.Origin, data, len(j.Hops))
	if err != nil {
		d.decodeErrors++
		return finalBits
	}
	// Cross-check against ground truth: any divergence is a codec bug.
	for i := range hops {
		if hops[i] != j.Hops[i].Link || counts[i] != d.agg.Map(j.Hops[i].Observed-1) {
			d.decodeErrors++
			return finalBits
		}
	}
	d.accumulate(hops, counts)
	return finalBits
}

// accumulate folds decoded hop records into the per-epoch observations.
func (d *Dophy) accumulate(hops []topo.Link, counts []int) {
	d.inv.onAccumulate(len(hops))
	for i, l := range hops {
		sym := counts[i]
		d.symbolWindow[sym]++
		if d.cfg.HopModelUpdateEvery > 0 {
			d.hopWindow[l.From][d.lt.NeighborIndex(l)]++
		}
		obs := d.linkObs.At(d.lt.Index(l))
		if d.agg.IsTail(sym) {
			obs.Censored++
		} else {
			obs.AddAttempt(sym + 1)
		}
	}
}

// encode produces the annotation bytes for a delivered journey, its final
// bit length, and the prefix bit lengths after each hop record (what the
// packet carried in flight). The returned slices alias the engine's scratch
// buffers and are only valid until the next encode call.
func (d *Dophy) encode(j *collect.PacketJourney) (data []byte, finalBits int, prefixBits []int) {
	w := d.encWriter
	w.Reset()
	e := d.encCoder
	e.Reset(w)
	prefixBits = d.prefixBuf[:0]
	for _, h := range j.Hops {
		hm := d.hopModels[h.Link.From]
		idx := neighborIndex(d.tp, h.Link.From, h.Link.To)
		e.Encode(hm, idx)
		e.Encode(d.countModel, d.agg.Map(h.Observed-1))
		prefixBits = append(prefixBits, w.Bits())
	}
	d.prefixBuf = prefixBits
	e.Finish()
	d.dataBuf = w.AppendBytes(d.dataBuf[:0])
	return d.dataBuf, w.Bits(), prefixBits
}

// decode reconstructs the hop links and count symbols from an annotation
// using the current models.
func (d *Dophy) decode(origin topo.NodeID, data []byte, nHops int) ([]topo.Link, []int, error) {
	return d.decodeWith(origin, data, nHops, d.countModel, d.hopModels)
}

// decodeWith decodes against an explicit model version (the one the packet
// was encoded under, for in-flight packets spanning a model update). The
// returned slices alias the engine's scratch buffers and are only valid
// until the next decode call.
func (d *Dophy) decodeWith(origin topo.NodeID, data []byte, nHops int, countModel *model.Static, hopModels []*model.Static) ([]topo.Link, []int, error) {
	d.decReader.Reset(data)
	dec := d.decCoder
	dec.Reset(d.decReader)
	cur := origin
	links := d.linkBuf[:0]
	counts := d.countBuf[:0]
	for cur != topo.Sink {
		if len(links) > nHops {
			//dophy:allow hotpathalloc -- cold corruption guard: runs only when a decode fails, never on the healthy path
			return nil, nil, fmt.Errorf("core: decode overran %d hops", nHops)
		}
		hm := hopModels[cur]
		if hm == nil {
			//dophy:allow hotpathalloc -- cold corruption guard: runs only when a decode fails, never on the healthy path
			return nil, nil, fmt.Errorf("core: node %d has no neighbours", cur)
		}
		idx, err := dec.Decode(hm)
		if err != nil {
			return nil, nil, err
		}
		next := d.tp.Neighbors(cur)[idx]
		sym, err := dec.Decode(countModel)
		if err != nil {
			return nil, nil, err
		}
		links = append(links, topo.Link{From: cur, To: next})
		counts = append(counts, sym)
		cur = next
	}
	d.linkBuf, d.countBuf = links, counts
	return links, counts, nil
}

// neighborIndex returns to's index in from's sorted neighbour list.
func neighborIndex(tp *topo.Topology, from, to topo.NodeID) int {
	i := tp.LinkTable().NeighborIndex(topo.Link{From: from, To: to})
	if i < 0 {
		panic(fmt.Sprintf("core: %d is not a neighbour of %d", to, from))
	}
	return i
}

// EndEpoch closes the current epoch: returns the per-link estimates and
// overhead, performs the periodic model update when due, and resets the
// per-epoch accumulators.
func (d *Dophy) EndEpoch() *EpochReport {
	d.epoch++
	d.inv.onEndEpoch(d)
	rep := &EpochReport{
		Epoch:        d.epoch,
		Table:        d.lt,
		Est:          make([]LinkEstimate, d.lt.Len()),
		Overhead:     d.overhead,
		DecodeErrors: d.decodeErrors,
		ModelFreqs:   d.countModel.Freqs(),
	}
	for i := range rep.Est {
		rep.Est[i].Loss = math.NaN()
	}
	for i := topo.LinkIdx(0); i < d.lt.Count(); i++ {
		obs := d.linkObs.At(i)
		total := obs.Total()
		if total == 0 || total < float64(d.cfg.MinSamples) {
			continue
		}
		p, err := obs.EstimateP(d.cfg.MaxAttempts)
		if err != nil {
			continue
		}
		rep.Est[i] = LinkEstimate{
			Loss:    1 - p,
			StdErr:  obs.StdErr(d.cfg.MaxAttempts, p),
			Samples: int64(total + 0.5),
		}
	}
	if d.cfg.UpdateEvery > 0 && d.epoch%d.cfg.UpdateEvery == 0 && windowTotal(d.symbolWindow) > 0 {
		freq := model.Quantize(d.symbolWindow, d.cfg.ModelTotal)
		d.countModel = model.NewStatic(freq)
		// Flood dissemination: every node rebroadcasts the table once.
		rep.Overhead.DisseminationBits += int64(model.TableBits(len(freq), d.cfg.ModelTotal) * d.tp.N())
		rep.ModelUpdated = true
		for i := range d.symbolWindow {
			d.symbolWindow[i] = 0
		}
		d.inv.onWindowReset()
	}
	if d.cfg.HopModelUpdateEvery > 0 && d.epoch%d.cfg.HopModelUpdateEvery == 0 {
		rep.Overhead.DisseminationBits += d.updateHopModels()
	}
	if d.cfg.ObsDecay > 0 {
		// Streaming estimator: forget exponentially instead of resetting.
		// Links whose evidence decays below half an observation are zeroed
		// outright — the dense equivalent of deleting the map entry.
		for i := topo.LinkIdx(0); i < d.lt.Count(); i++ {
			obs := d.linkObs.At(i)
			if obs.Total() == 0 {
				continue
			}
			//dophy:allow valrange -- Config.validate panics unless ObsDecay is in [0,1]
			obs.Decay(d.cfg.ObsDecay)
			if obs.Total() < 0.5 {
				obs.Clear()
			}
		}
	} else {
		d.linkObs.Reset()
	}
	d.inv.onEpochReset(d)
	d.overhead = Overhead{}
	d.decodeErrors = 0
	return rep
}

// updateHopModels replaces each active node's neighbour-index model with
// its observed next-hop distribution and returns the dissemination cost:
// the node broadcasts its own table once locally (its neighbours encode its
// records) and unicasts it to the sink (which decodes them), so each table
// is radiated ~(1 + meanHops) times.
func (d *Dophy) updateHopModels() int64 {
	var bits int64
	// Copy-on-write: in-flight packets hold the previous slice and keep
	// decoding against the models they were encoded under.
	d.hopModels = append([]*model.Static(nil), d.hopModels...)
	for n := range d.hopWindow {
		hist := d.hopWindow[n]
		if windowTotal(hist) == 0 {
			continue
		}
		freq := model.Quantize(hist, d.cfg.HopModelTotal)
		d.hopModels[n] = model.NewStatic(freq)
		tb := model.TableBits(len(freq), d.cfg.HopModelTotal)
		bits += int64(float64(tb) * (1 + d.meanHops))
		for i := range hist {
			hist[i] = 0
		}
	}
	return bits
}

func windowTotal(w []uint64) uint64 {
	var t uint64
	for _, c := range w {
		t += c
	}
	return t
}

// ExpectedBitsPerCount returns the asymptotic bits/symbol of the current
// model against an empirical distribution — the quantity optimisation 2
// drives toward the entropy.
func (d *Dophy) ExpectedBitsPerCount(empirical []uint64) float64 {
	return model.CrossEntropy(empirical, d.countModel.Freqs())
}

// CountSymbols returns the alphabet size after aggregation.
func (d *Dophy) CountSymbols() int { return d.agg.NumSymbols() }

// OriginBits returns the fixed per-packet header cost in bits.
func (d *Dophy) OriginBits() int { return d.originBits }
