//go:build dophy_invariants

package core

import (
	"fmt"
	"math"

	"dophy/internal/topo"
)

// coreInvariants enforces retransmission-count conservation at the sink:
// every hop record that survives decoding and cross-checking contributes
// exactly one observation, so at each epoch boundary the per-link
// observation totals and the shared-model symbol window must both sum to
// the number of accumulated hop records. A mismatch means decoded counts
// were dropped, duplicated, or misattributed between decode and estimate.
type coreInvariants struct {
	epochHops  float64 // hop records accumulated since the last epoch reset
	windowHops uint64  // hop records since the last model-update window reset
}

func (iv *coreInvariants) onAccumulate(nHops int) {
	iv.epochHops += float64(nHops)
	iv.windowHops += uint64(nHops)
}

func (iv *coreInvariants) onEndEpoch(d *Dophy) {
	if got := windowTotal(d.symbolWindow); got != iv.windowHops {
		panic(fmt.Sprintf("core: invariant violated: symbol window holds %d observations, %d hop records were decoded",
			got, iv.windowHops))
	}
	if d.cfg.ObsDecay != 0 {
		// Exponential forgetting carries fractional mass across epochs; the
		// per-epoch balance below is only closed-form for pure windows.
		return
	}
	var total float64
	for i := topo.LinkIdx(0); i < d.lt.Count(); i++ {
		total += d.linkObs.At(i).Total()
	}
	if math.Abs(total-iv.epochHops) > 1e-6*(1+iv.epochHops) {
		panic(fmt.Sprintf("core: invariant violated: link observations sum to %g, %g hop records were decoded this epoch",
			total, iv.epochHops))
	}
}

func (iv *coreInvariants) onWindowReset() { iv.windowHops = 0 }

func (iv *coreInvariants) onEpochReset(d *Dophy) {
	if d.cfg.ObsDecay == 0 {
		iv.epochHops = 0
		return
	}
	// Decayed estimators keep (decayed) history; just resynchronise the
	// counter with what actually survived the boundary.
	iv.epochHops = 0
	for i := topo.LinkIdx(0); i < d.lt.Count(); i++ {
		iv.epochHops += d.linkObs.At(i).Total()
	}
}
