package core

import (
	"testing"

	"dophy/internal/collect"
	"dophy/internal/mac"
	"dophy/internal/radio"
	"dophy/internal/rng"
	"dophy/internal/routing"
	"dophy/internal/sim"
	"dophy/internal/topo"
	"dophy/internal/trace"
)

// buildNetwork assembles a small live network for distributed-path tests.
func buildNetwork(t *testing.T, seed uint64) (*sim.Engine, *collect.Network, *topo.Topology) {
	t.Helper()
	tp := topo.Grid(4, 10, 1, 14, rng.New(seed))
	if !tp.Connected() {
		t.Fatal("test grid disconnected")
	}
	eng := sim.New()
	model := radio.NewStatic(tp, radio.DefaultBase(), seed)
	rec := trace.NewRecorder(tp.LinkTable())
	root := rng.New(seed + 1)
	arq := mac.New(mac.Config{MaxRetx: 7}, model, root.Split(), rec)
	proto := routing.New(routing.DefaultConfig(), eng, tp, model, root.Split(), rec)
	// Zero per-hop latency: journeys complete atomically, so no packet is
	// ever in flight across an epoch boundary and the central/distributed
	// comparison is exact (straddling packets legitimately differ when a
	// model update lands mid-flight).
	nw := collect.New(collect.Config{GenPeriod: 2, GenJitter: 0.2, TxTime: 0, HopDelay: 0, TTL: 64},
		eng, tp, arq, proto, root.Split(), rec)
	proto.Start()
	eng.Run(60)
	return eng, nw, tp
}

func TestDistributedMatchesCentral(t *testing.T) {
	// The same packets flow through (a) the sink-side convenience path and
	// (b) the hop-by-hop distributed path; every estimate and every
	// annotation bit must agree.
	eng, nw, tp := buildNetwork(t, 51)
	cfg := DefaultConfig()
	cfg.UpdateEvery = 1
	cfg.HopModelUpdateEvery = 2
	cfg.HopModelTotal = 256
	central := New(tp, cfg)
	distributed := New(tp, cfg)
	nw.Subscribe(func(j *collect.PacketJourney) { central.OnJourney(j) })
	nw.AttachAnnotator(distributed.NewAnnotator())
	nw.Start()
	for epoch := 1; epoch <= 3; epoch++ {
		eng.Run(60 + sim.Time(epoch)*300)
		cRep := central.EndEpoch()
		dRep := distributed.EndEpoch()
		if cRep.DecodeErrors != 0 || dRep.DecodeErrors != 0 {
			t.Fatalf("epoch %d decode errors: central=%d distributed=%d",
				epoch, cRep.DecodeErrors, dRep.DecodeErrors)
		}
		// In-flight packets at the epoch boundary make the two views differ
		// by at most the handful of packets completed after OnJourney's
		// epoch cut; with synchronous delivery both see identical sets.
		if cRep.Overhead.Packets != dRep.Overhead.Packets {
			t.Fatalf("epoch %d packet counts differ: %d vs %d",
				epoch, cRep.Overhead.Packets, dRep.Overhead.Packets)
		}
		if cRep.Overhead.AnnotationBits != dRep.Overhead.AnnotationBits {
			t.Fatalf("epoch %d annotation bits differ: %d vs %d",
				epoch, cRep.Overhead.AnnotationBits, dRep.Overhead.AnnotationBits)
		}
		cLinks, dLinks := cRep.SortedLinks(), dRep.SortedLinks()
		if len(cLinks) != len(dLinks) {
			t.Fatalf("epoch %d link sets differ: %d vs %d", epoch, len(cLinks), len(dLinks))
		}
		for _, l := range cLinks {
			ce, _ := cRep.At(l)
			de, ok := dRep.At(l)
			if !ok || ce.Loss != de.Loss || ce.Samples != de.Samples {
				t.Fatalf("epoch %d link %v estimates differ: %+v vs %+v", epoch, l, ce, de)
			}
		}
		if dRep.Overhead.InFlightStateBits == 0 && dRep.Overhead.Packets > 0 {
			t.Fatal("distributed path accounted no in-flight state")
		}
		if cRep.Overhead.InFlightStateBits != 0 {
			t.Fatal("central path accounted in-flight state")
		}
	}
}

func TestAnnotatorDropReclaimsState(t *testing.T) {
	tp := topo.Chain(3, 10, 10.5)
	d := New(tp, DefaultConfig())
	a := d.NewAnnotator()
	j := &collect.PacketJourney{Origin: 2, Seq: 1}
	a.OnGenerate(j)
	a.OnHop(j, collect.Hop{Link: topo.Link{From: 2, To: 1}, Attempts: 1, Observed: 1})
	if a.InFlight() != 1 {
		t.Fatalf("in-flight = %d", a.InFlight())
	}
	j.Drop = collect.DropRetries
	a.OnDrop(j)
	if a.InFlight() != 0 {
		t.Fatal("dropped packet state not reclaimed")
	}
	if d.overhead.Packets != 0 {
		t.Fatal("dropped packet accounted")
	}
}

func TestAnnotatorIgnoresForeignPackets(t *testing.T) {
	// Packets generated before the annotator attached have no state; hops
	// and delivery must be safely ignored.
	tp := topo.Chain(3, 10, 10.5)
	d := New(tp, DefaultConfig())
	a := d.NewAnnotator()
	j := &collect.PacketJourney{Origin: 2, Seq: 1, Delivered: true,
		Hops: []collect.Hop{{Link: topo.Link{From: 2, To: 1}, Attempts: 1, Observed: 1}}}
	a.OnHop(j, j.Hops[0])
	a.OnDeliver(j)
	if d.overhead.Packets != 0 {
		t.Fatal("foreign packet accounted")
	}
}

func TestAnnotatorSurvivesModelUpdateMidFlight(t *testing.T) {
	// A packet that started before a model update must decode correctly
	// against its captured model version.
	tp := topo.Chain(4, 10, 10.5)
	cfg := DefaultConfig()
	cfg.UpdateEvery = 1
	cfg.MinSamples = 1
	d := New(tp, cfg)
	a := d.NewAnnotator()

	// Start a journey, encode its first hop under model v0.
	inFlight := &collect.PacketJourney{Origin: 3, Seq: 999}
	a.OnGenerate(inFlight)
	a.OnHop(inFlight, collect.Hop{Link: topo.Link{From: 3, To: 2}, Attempts: 4, Observed: 4})

	// Meanwhile, plenty of traffic with a different count distribution
	// triggers a model update at the epoch boundary.
	for i := 0; i < 200; i++ {
		j := &collect.PacketJourney{Origin: 1, Seq: int64(i), Delivered: true,
			Hops: []collect.Hop{{Link: topo.Link{From: 1, To: 0}, Attempts: 1, Observed: 1}}}
		a.OnGenerate(j)
		a.OnHop(j, j.Hops[0])
		a.OnDeliver(j)
	}
	rep := d.EndEpoch()
	if !rep.ModelUpdated {
		t.Fatal("model did not update")
	}
	// Finish the old packet under the new regime.
	a.OnHop(inFlight, collect.Hop{Link: topo.Link{From: 2, To: 1}, Attempts: 2, Observed: 2})
	a.OnHop(inFlight, collect.Hop{Link: topo.Link{From: 1, To: 0}, Attempts: 1, Observed: 1})
	inFlight.Delivered = true
	inFlight.Hops = []collect.Hop{
		{Link: topo.Link{From: 3, To: 2}, Attempts: 4, Observed: 4},
		{Link: topo.Link{From: 2, To: 1}, Attempts: 2, Observed: 2},
		{Link: topo.Link{From: 1, To: 0}, Attempts: 1, Observed: 1},
	}
	a.OnDeliver(inFlight)
	rep2 := d.EndEpoch()
	if rep2.DecodeErrors != 0 {
		t.Fatalf("mid-flight model update corrupted decoding: %d errors", rep2.DecodeErrors)
	}
	if rep2.Overhead.Packets != 1 {
		t.Fatalf("old packet not accounted: %+v", rep2.Overhead)
	}
}
