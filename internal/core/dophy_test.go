package core

import (
	"math"
	"testing"

	"dophy/internal/collect"
	"dophy/internal/mac"
	"dophy/internal/radio"
	"dophy/internal/rng"
	"dophy/internal/routing"
	"dophy/internal/sim"
	"dophy/internal/topo"
	"dophy/internal/trace"
)

// journey fabricates a delivered packet along the given node path with the
// given observed attempt counts.
func journey(path []topo.NodeID, observed []int) *collect.PacketJourney {
	j := &collect.PacketJourney{Origin: path[0], Delivered: true, Drop: collect.NotDropped}
	for i := 0; i < len(path)-1; i++ {
		j.Hops = append(j.Hops, collect.Hop{
			Link:     topo.Link{From: path[i], To: path[i+1]},
			Attempts: observed[i],
			Observed: observed[i],
		})
	}
	return j
}

func TestRoundTripAnnotation(t *testing.T) {
	tp := topo.Chain(5, 10, 10.5)
	d := New(tp, DefaultConfig())
	j := journey([]topo.NodeID{4, 3, 2, 1, 0}, []int{1, 2, 1, 5})
	d.OnJourney(j)
	rep := d.EndEpoch()
	if rep.DecodeErrors != 0 {
		t.Fatalf("decode errors: %d", rep.DecodeErrors)
	}
	if rep.Overhead.Packets != 1 || rep.Overhead.Hops != 4 {
		t.Fatalf("overhead = %+v", rep.Overhead)
	}
	if rep.Overhead.AnnotationBits <= 0 {
		t.Fatal("no annotation bits accounted")
	}
}

func TestDroppedJourneysIgnored(t *testing.T) {
	tp := topo.Chain(3, 10, 10.5)
	d := New(tp, DefaultConfig())
	j := journey([]topo.NodeID{2, 1, 0}, []int{1, 1})
	j.Delivered = false
	j.Drop = collect.DropRetries
	d.OnJourney(j)
	rep := d.EndEpoch()
	if rep.Overhead.Packets != 0 || len(rep.SortedLinks()) != 0 {
		t.Fatal("dropped journey was processed")
	}
}

func TestEstimatesRecoverUniformLoss(t *testing.T) {
	// Drive a full simulated network with known uniform loss and verify the
	// per-link estimates.
	const loss = 0.2
	tp := topo.Chain(4, 10, 10.5)
	eng := sim.New()
	rm := radio.NewStaticUniformLoss(tp, loss)
	rec := trace.NewRecorder(tp.LinkTable())
	root := rng.New(42)
	arq := mac.New(mac.Config{MaxRetx: 7}, rm, root.Split(), rec)
	proto := routing.New(routing.DefaultConfig(), eng, tp, rm, root.Split(), rec)
	nw := collect.New(collect.Config{GenPeriod: 1, GenJitter: 0.2, TxTime: 0.001, HopDelay: 0.002, TTL: 32},
		eng, tp, arq, proto, root.Split(), rec)

	cfg := DefaultConfig()
	d := New(tp, cfg)
	nw.Subscribe(func(j *collect.PacketJourney) { d.OnJourney(j) })
	proto.Start()
	eng.Run(60)
	nw.Start()
	eng.Run(2000)
	rep := d.EndEpoch()
	if rep.DecodeErrors != 0 {
		t.Fatalf("decode errors: %d", rep.DecodeErrors)
	}
	estimated := rep.SortedLinks()
	if len(estimated) < 3 {
		t.Fatalf("only %d links estimated", len(estimated))
	}
	for _, l := range estimated {
		est, _ := rep.At(l)
		if math.Abs(est.Loss-loss) > 0.05 {
			t.Errorf("link %v loss = %.3f (n=%d), want ~%.2f", l, est.Loss, est.Samples, loss)
		}
	}
}

func TestAggregationReducesAlphabet(t *testing.T) {
	tp := topo.Chain(3, 10, 10.5)
	cfg := DefaultConfig()
	cfg.AggThreshold = 2
	d := New(tp, cfg)
	if d.CountSymbols() != 3 {
		t.Fatalf("symbols = %d, want 3", d.CountSymbols())
	}
	cfg.AggThreshold = 0
	d2 := New(tp, cfg)
	if d2.CountSymbols() != cfg.MaxAttempts {
		t.Fatalf("unaggregated symbols = %d", d2.CountSymbols())
	}
}

func TestAggregatedTailCensored(t *testing.T) {
	tp := topo.Chain(3, 10, 10.5)
	cfg := DefaultConfig()
	cfg.AggThreshold = 2
	cfg.MinSamples = 1
	d := New(tp, cfg)
	// Observed attempts 8 => count 7 => tail symbol (censored).
	for i := 0; i < 30; i++ {
		d.OnJourney(journey([]topo.NodeID{1, 0}, []int{8}))
		d.OnJourney(journey([]topo.NodeID{1, 0}, []int{1}))
	}
	rep := d.EndEpoch()
	if rep.DecodeErrors != 0 {
		t.Fatalf("decode errors: %d", rep.DecodeErrors)
	}
	est, ok := rep.At(topo.Link{From: 1, To: 0})
	if !ok {
		t.Fatal("link not estimated")
	}
	// Half the packets needed >= 2 retransmissions: loss must be large.
	if est.Loss < 0.3 {
		t.Fatalf("censored-heavy link loss = %v, want substantial", est.Loss)
	}
}

func TestModelUpdateReducesBits(t *testing.T) {
	// Feed a count distribution very different from the prior; after the
	// model update the same traffic must cost fewer bits per packet.
	tp := topo.Chain(3, 10, 10.5)
	cfg := DefaultConfig()
	cfg.AggThreshold = 0
	cfg.UpdateEvery = 1
	d := New(tp, cfg)
	feed := func() float64 {
		for i := 0; i < 500; i++ {
			// Attempts concentrated at 4: the prior considers this rare.
			d.OnJourney(journey([]topo.NodeID{2, 1, 0}, []int{4, 4}))
		}
		return float64(d.overhead.AnnotationBits) / float64(d.overhead.Packets)
	}
	before := feed()
	rep := d.EndEpoch()
	if !rep.ModelUpdated {
		t.Fatal("model not updated at epoch end")
	}
	if rep.Overhead.DisseminationBits == 0 {
		t.Fatal("dissemination cost not accounted")
	}
	after := feed()
	d.EndEpoch()
	if after >= before*0.7 {
		t.Fatalf("model update did not shrink annotation: %.2f -> %.2f bits/pkt", before, after)
	}
}

func TestNoUpdateWhenDisabled(t *testing.T) {
	tp := topo.Chain(3, 10, 10.5)
	cfg := DefaultConfig()
	cfg.UpdateEvery = 0
	d := New(tp, cfg)
	d.OnJourney(journey([]topo.NodeID{1, 0}, []int{1}))
	rep := d.EndEpoch()
	if rep.ModelUpdated || rep.Overhead.DisseminationBits != 0 {
		t.Fatal("model updated despite UpdateEvery=0")
	}
}

func TestEpochResets(t *testing.T) {
	tp := topo.Chain(3, 10, 10.5)
	cfg := DefaultConfig()
	cfg.MinSamples = 1
	d := New(tp, cfg)
	d.OnJourney(journey([]topo.NodeID{1, 0}, []int{1}))
	rep1 := d.EndEpoch()
	if rep1.Overhead.Packets != 1 {
		t.Fatalf("epoch 1 packets = %d", rep1.Overhead.Packets)
	}
	rep2 := d.EndEpoch()
	if rep2.Overhead.Packets != 0 || len(rep2.SortedLinks()) != 0 {
		t.Fatal("epoch accumulators not reset")
	}
	if rep2.Epoch != 2 {
		t.Fatalf("epoch counter = %d", rep2.Epoch)
	}
}

func TestMinSamplesFilters(t *testing.T) {
	tp := topo.Chain(3, 10, 10.5)
	cfg := DefaultConfig()
	cfg.MinSamples = 100
	d := New(tp, cfg)
	for i := 0; i < 99; i++ {
		d.OnJourney(journey([]topo.NodeID{1, 0}, []int{1}))
	}
	if rep := d.EndEpoch(); len(rep.SortedLinks()) != 0 {
		t.Fatal("under-sampled link reported")
	}
	for i := 0; i < 100; i++ {
		d.OnJourney(journey([]topo.NodeID{1, 0}, []int{1}))
	}
	if rep := d.EndEpoch(); len(rep.SortedLinks()) != 1 {
		t.Fatal("sufficiently-sampled link not reported")
	}
}

func TestOverheadScalesWithPathLength(t *testing.T) {
	tp := topo.Chain(9, 10, 10.5)
	cfg := DefaultConfig()
	d := New(tp, cfg)
	short := journey([]topo.NodeID{1, 0}, []int{1})
	d.OnJourney(short)
	shortBits := d.overhead.AnnotationBits
	d.EndEpoch()
	long := journey([]topo.NodeID{8, 7, 6, 5, 4, 3, 2, 1, 0}, []int{1, 1, 1, 1, 1, 1, 1, 1})
	d.OnJourney(long)
	longBits := d.overhead.AnnotationBits
	if longBits <= shortBits {
		t.Fatalf("8-hop annotation (%d bits) not larger than 1-hop (%d)", longBits, shortBits)
	}
	// But the per-hop cost must be small: chain nodes have degree <= 2 and
	// counts are overwhelmingly zero, so well under a byte per hop.
	perHop := float64(longBits) / 8
	if perHop > 8 {
		t.Fatalf("per-hop annotation = %.1f bits, want < 8", perHop)
	}
}

func TestTransmittedBitsAccounting(t *testing.T) {
	tp := topo.Chain(4, 10, 10.5)
	d := New(tp, DefaultConfig())
	j := journey([]topo.NodeID{3, 2, 1, 0}, []int{2, 1, 3})
	d.OnJourney(j)
	o := d.overhead
	// Header radiates on every attempt: (2+1+3) * originBits at minimum.
	minHeader := int64(6 * d.OriginBits())
	if o.TransmittedBits < minHeader {
		t.Fatalf("transmitted bits %d below header floor %d", o.TransmittedBits, minHeader)
	}
	if o.TransmittedBits <= o.AnnotationBits {
		// With retransmissions the radiated total must exceed the final size.
		t.Fatalf("transmitted %d <= final %d", o.TransmittedBits, o.AnnotationBits)
	}
}

func TestSortedLinksDeterministic(t *testing.T) {
	tp := topo.Chain(5, 10, 10.5)
	cfg := DefaultConfig()
	cfg.MinSamples = 1
	d := New(tp, cfg)
	for i := 0; i < 20; i++ {
		d.OnJourney(journey([]topo.NodeID{4, 3, 2, 1, 0}, []int{1, 1, 1, 1}))
	}
	rep := d.EndEpoch()
	links := rep.SortedLinks()
	if len(links) != 4 {
		t.Fatalf("links = %v", links)
	}
	for i := 1; i < len(links); i++ {
		if links[i].From <= links[i-1].From {
			t.Fatalf("unsorted: %v", links)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	tp := topo.Chain(2, 10, 10.5)
	for name, cfg := range map[string]Config{
		"zero attempts": {MaxAttempts: 0, ModelTotal: 64},
		"agg too big":   {MaxAttempts: 4, AggThreshold: 4, ModelTotal: 64},
		"agg negative":  {MaxAttempts: 4, AggThreshold: -1, ModelTotal: 64},
		"tiny total":    {MaxAttempts: 4, ModelTotal: 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			New(tp, cfg)
		}()
	}
}

func TestOriginBits(t *testing.T) {
	if d := New(topo.Chain(2, 10, 10.5), DefaultConfig()); d.OriginBits() != 1 {
		t.Fatalf("2-node origin bits = %d", d.OriginBits())
	}
	if d := New(topo.Chain(100, 10, 10.5), DefaultConfig()); d.OriginBits() != 7 {
		t.Fatalf("100-node origin bits = %d", d.OriginBits())
	}
}

func BenchmarkOnJourney(b *testing.B) {
	tp := topo.Chain(10, 10, 10.5)
	d := New(tp, DefaultConfig())
	j := journey([]topo.NodeID{9, 8, 7, 6, 5, 4, 3, 2, 1, 0},
		[]int{1, 1, 2, 1, 1, 3, 1, 1, 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.OnJourney(j)
	}
}

func TestHopModelUpdateShrinksPathBits(t *testing.T) {
	// A node that always forwards to the same parent should pay far less
	// than log2(degree) for its hop records once hop models update.
	tp := topo.Grid(3, 10, 0, 15, rng.New(21))
	cfg := DefaultConfig()
	cfg.HopModelUpdateEvery = 1
	cfg.HopModelTotal = 256
	d := New(tp, cfg)
	// Node 8 (corner) has neighbours {4,5,7}; always route via 5 then 2->...
	// Use a fixed 2-hop path 8 -> 5 -> 0? 5's neighbours include 0? Node 5
	// is at (2,1) in a 3x3 grid with diagonals, so 0 is not adjacent (dist
	// ~22). Use 8 -> 4 -> 0 (diagonals adjacent).
	path := []topo.NodeID{8, 4, 0}
	feed := func() float64 {
		for i := 0; i < 400; i++ {
			d.OnJourney(journey(path, []int{1, 1}))
		}
		return float64(d.overhead.AnnotationBits) / float64(d.overhead.Packets)
	}
	before := feed()
	rep := d.EndEpoch()
	if rep.Overhead.DisseminationBits == 0 {
		t.Fatal("hop-model dissemination not accounted")
	}
	after := feed()
	d.EndEpoch()
	if after >= before*0.7 {
		t.Fatalf("hop model update did not shrink annotation: %.2f -> %.2f bits/pkt", before, after)
	}
	if rep.DecodeErrors != 0 {
		t.Fatal("decode errors with hop models")
	}
}

func TestHopModelDisabledByDefault(t *testing.T) {
	tp := topo.Chain(3, 10, 10.5)
	d := New(tp, DefaultConfig())
	d.OnJourney(journey([]topo.NodeID{2, 1, 0}, []int{1, 1}))
	rep := d.EndEpoch()
	// Dissemination only from the count-model flood, none from hop tables:
	// with UpdateEvery=1 the count model updates; compare against a config
	// with hop updates enabled to see the difference.
	cfgOn := DefaultConfig()
	cfgOn.HopModelUpdateEvery = 1
	cfgOn.HopModelTotal = 256
	dOn := New(tp, cfgOn)
	dOn.OnJourney(journey([]topo.NodeID{2, 1, 0}, []int{1, 1}))
	repOn := dOn.EndEpoch()
	if repOn.Overhead.DisseminationBits <= rep.Overhead.DisseminationBits {
		t.Fatalf("hop tables added no dissemination: %d vs %d",
			repOn.Overhead.DisseminationBits, rep.Overhead.DisseminationBits)
	}
}

func TestHopModelConfigValidation(t *testing.T) {
	tp := topo.Chain(2, 10, 10.5)
	cfg := DefaultConfig()
	cfg.HopModelUpdateEvery = 1
	cfg.HopModelTotal = 2
	defer func() {
		if recover() == nil {
			t.Fatal("tiny HopModelTotal accepted")
		}
	}()
	New(tp, cfg)
}

func TestDecodeRobustOnGarbage(t *testing.T) {
	// The sink decoder must never panic on arbitrary annotation bytes: it
	// either terminates at the sink, errors, or is caught by the hop bound.
	tp := topo.Grid(4, 10, 1, 14, rng.New(61))
	d := New(tp, DefaultConfig())
	r := rng.New(62)
	for trial := 0; trial < 3000; trial++ {
		n := r.Intn(24)
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(r.Intn(256))
		}
		origin := topo.NodeID(r.Intn(tp.N()-1) + 1)
		nHops := r.Intn(12) + 1
		links, counts, err := d.decode(origin, data, nHops)
		if err != nil {
			continue
		}
		// A successful decode must be structurally valid.
		cur := origin
		for i, l := range links {
			if l.From != cur || !tp.Adjacent(l.From, l.To) {
				t.Fatalf("decode produced invalid hop %v from %d", l, cur)
			}
			if counts[i] < 0 || counts[i] >= d.CountSymbols() {
				t.Fatalf("decode produced invalid symbol %d", counts[i])
			}
			cur = l.To
		}
		if len(links) > 0 && cur != topo.Sink {
			t.Fatal("decode terminated away from the sink")
		}
	}
}

func TestObsDecayCarriesEvidence(t *testing.T) {
	tp := topo.Chain(3, 10, 10.5)
	cfg := DefaultConfig()
	cfg.ObsDecay = 0.5
	cfg.MinSamples = 5
	d := New(tp, cfg)
	for i := 0; i < 40; i++ {
		d.OnJourney(journey([]topo.NodeID{1, 0}, []int{2}))
	}
	rep1 := d.EndEpoch()
	if len(rep1.SortedLinks()) != 1 {
		t.Fatal("link not estimated in epoch 1")
	}
	// Epoch 2 has NO new traffic: the windowed estimator would report
	// nothing; the decayed estimator still has 20 effective samples.
	rep2 := d.EndEpoch()
	est, ok := rep2.At(topo.Link{From: 1, To: 0})
	if !ok {
		t.Fatal("decayed estimator forgot everything after one idle epoch")
	}
	if est.Samples < 15 || est.Samples > 25 {
		t.Fatalf("effective samples = %d, want ~20", est.Samples)
	}
	// Eventually the evidence decays below the floor and disappears.
	for i := 0; i < 8; i++ {
		d.EndEpoch()
	}
	repN := d.EndEpoch()
	if len(repN.SortedLinks()) != 0 {
		t.Fatal("stale evidence never evaporated")
	}
}

func TestObsDecayValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ObsDecay = 1.5
	defer func() {
		if recover() == nil {
			t.Fatal("ObsDecay 1.5 accepted")
		}
	}()
	New(topo.Chain(2, 10, 10.5), cfg)
}
