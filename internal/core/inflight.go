package core

import (
	"dophy/internal/coding/arith"
	"dophy/internal/coding/bitio"
	"dophy/internal/coding/model"
	"dophy/internal/collect"
)

// This file implements the *distributed* encoding path: the annotation is
// built hop by hop inside the packet, exactly as mote firmware would do it.
// Each in-flight packet carries its completed annotation bytes plus the
// suspended arithmetic-coder registers (arith.StateBytes of constant
// overhead); every receiver resumes the coder, appends its two symbols and
// suspends again; the sink finalises and decodes. The bitstream is provably
// identical to what the sink-side convenience path (OnJourney) produces —
// TestDistributedMatchesCentral holds the two against each other — so the
// evaluation can use whichever is convenient without changing results.
//
// Model-version safety: a packet in flight across a model update keeps
// coding against the models captured at its generation (the sink knows the
// version from the epoch the packet was sent in). Updates copy-on-write the
// model references, so capture is O(1) per packet.

// packetAnno is the in-packet annotation state carried hop by hop.
type packetAnno struct {
	completed  []byte
	state      arith.State
	hasState   bool
	prefixBits []int
	countModel *model.Static
	hopModels  []*model.Static
}

// Annotator is the distributed front-end of a Dophy engine. Attach it with
// collect.Network.AttachAnnotator. Use either the Annotator or OnJourney on
// a given engine, never both (estimates would double-count).
type Annotator struct {
	d      *Dophy
	flight map[*collect.PacketJourney]*packetAnno
}

// NewAnnotator returns the distributed annotator for d.
func (d *Dophy) NewAnnotator() *Annotator {
	return &Annotator{d: d, flight: make(map[*collect.PacketJourney]*packetAnno)}
}

// InFlight reports how many packets currently carry annotation state.
func (a *Annotator) InFlight() int { return len(a.flight) }

// OnGenerate implements collect.Annotator: capture the model version this
// packet will encode against.
func (a *Annotator) OnGenerate(j *collect.PacketJourney) {
	//dophy:allow hotpathalloc -- per-packet in-flight annotation state is the modeled artifact; it lives exactly as long as its packet
	a.flight[j] = &packetAnno{
		countModel: a.d.countModel,
		hopModels:  a.d.hopModels,
	}
}

// OnHop implements collect.Annotator: the receiver resumes the carried
// coder, appends its hop record and suspends again.
func (a *Annotator) OnHop(j *collect.PacketJourney, h collect.Hop) {
	pa := a.flight[j]
	if pa == nil {
		return // packet predates this annotator's attachment
	}
	var (
		e *arith.Encoder
		w *bitio.Writer
	)
	if pa.hasState {
		e, w = arith.Resume(pa.state, pa.completed)
	} else {
		w = bitio.NewWriter()
		e = arith.NewEncoder(w)
	}
	e.Encode(pa.hopModels[h.Link.From], neighborIndex(a.d.tp, h.Link.From, h.Link.To))
	e.Encode(pa.countModel, a.d.agg.Map(h.Observed-1))
	pa.state = e.Suspend(w)
	pa.completed = w.Completed()
	pa.hasState = true
	pa.prefixBits = append(pa.prefixBits, w.Bits())
}

// OnDeliver implements collect.Annotator: finalise, decode and accumulate.
func (a *Annotator) OnDeliver(j *collect.PacketJourney) {
	pa := a.flight[j]
	if pa == nil {
		return
	}
	delete(a.flight, j)
	if !pa.hasState || len(j.Hops) == 0 {
		return
	}
	e, w := arith.Resume(pa.state, pa.completed)
	e.Finish()
	data, finalBits := w.Bytes(), w.Bits()

	d := a.d
	d.overhead.Packets++
	d.overhead.Hops += int64(len(j.Hops))
	d.overhead.AnnotationBits += int64(finalBits)
	d.overhead.HeaderBits += int64(d.originBits)
	for i, h := range j.Hops {
		carried := d.originBits
		if i > 0 {
			carried += pa.prefixBits[i-1] + arith.StateBytes*8
			d.overhead.InFlightStateBits += int64(arith.StateBytes * 8 * h.Attempts)
		}
		d.overhead.TransmittedBits += int64(carried * h.Attempts)
	}

	hops, counts, err := d.decodeWith(j.Origin, data, len(j.Hops), pa.countModel, pa.hopModels)
	if err != nil {
		d.decodeErrors++
		return
	}
	for i := range hops {
		if hops[i] != j.Hops[i].Link || counts[i] != d.agg.Map(j.Hops[i].Observed-1) {
			d.decodeErrors++
			return
		}
	}
	d.accumulate(hops, counts)
}

// OnDrop implements collect.Annotator: reclaim in-flight state.
func (a *Annotator) OnDrop(j *collect.PacketJourney) {
	delete(a.flight, j)
}
