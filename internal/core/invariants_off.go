//go:build !dophy_invariants

package core

// coreInvariants is the no-op variant; see invariants_on.go for the
// conservation checks.
type coreInvariants struct{}

func (coreInvariants) onAccumulate(int)    {}
func (coreInvariants) onEndEpoch(*Dophy)   {}
func (coreInvariants) onWindowReset()      {}
func (coreInvariants) onEpochReset(*Dophy) {}
