// Package energy converts the simulator's transmission accounting into
// radio energy, using constants representative of CC2420-class 802.15.4
// transceivers (the hardware the paper's TinyOS implementation targets).
// It lets experiments express annotation overheads in the unit battery-
// powered deployments actually care about: microjoules per packet and
// millijoules per node per day.
package energy

// Params models a byte-oriented low-power radio.
type Params struct {
	// TxPerByteMicroJ is the marginal transmit energy per payload byte.
	TxPerByteMicroJ float64
	// RxPerByteMicroJ is the marginal receive energy per payload byte
	// (every unicast byte is also received once; overhearing is ignored).
	RxPerByteMicroJ float64
	// PacketOverheadBytes is the PHY preamble/SFD/header cost radiated per
	// frame regardless of payload.
	PacketOverheadBytes int
}

// DefaultParams approximates a CC2420 at 0 dBm, 250 kbps: ~17.4 mA TX and
// ~18.8 mA RX at 3 V, i.e. about 1.67/1.80 µJ per byte time (32 µs).
func DefaultParams() Params {
	return Params{
		TxPerByteMicroJ:     1.67,
		RxPerByteMicroJ:     1.80,
		PacketOverheadBytes: 11,
	}
}

// PerByteMicroJ is the combined TX+RX cost of moving one payload byte one
// hop.
func (p Params) PerByteMicroJ() float64 {
	return p.TxPerByteMicroJ + p.RxPerByteMicroJ
}

// FrameMicroJ returns the TX+RX energy of one frame carrying payloadBytes.
func (p Params) FrameMicroJ(payloadBytes float64) float64 {
	total := payloadBytes + float64(p.PacketOverheadBytes)
	return total * p.PerByteMicroJ()
}

// MarginalMicroJ returns the energy attributable to extraBytes of payload
// riding on frames that are transmitted anyway — the right cost model for
// in-packet annotations, which never add frames, only bytes.
func (p Params) MarginalMicroJ(extraBytes float64) float64 {
	return extraBytes * p.PerByteMicroJ()
}

// Report summarises a scheme's energy footprint for one run.
type Report struct {
	// AnnotationMicroJPerPacket is the marginal radio energy of carrying
	// the scheme's annotation across all of a packet's transmissions.
	AnnotationMicroJPerPacket float64
	// DisseminationMicroJPerPacket amortises model-update floods.
	DisseminationMicroJPerPacket float64
	// TotalMicroJPerPacket is the sum.
	TotalMicroJPerPacket float64
}

// Cost converts radiated bit counters into a Report. transmittedBits is the
// scheme's radiated annotation volume (prefix x attempts accounting),
// extraBits covers dissemination floods, packets normalises.
func Cost(p Params, transmittedBits, extraBits, packets int64) Report {
	if packets <= 0 {
		return Report{}
	}
	annot := p.MarginalMicroJ(float64(transmittedBits) / 8 / float64(packets))
	// Dissemination rides on dedicated frames: charge full frame cost.
	dissem := p.FrameMicroJ(float64(extraBits)/8) / float64(packets)
	return Report{
		AnnotationMicroJPerPacket:    annot,
		DisseminationMicroJPerPacket: dissem,
		TotalMicroJPerPacket:         annot + dissem,
	}
}
