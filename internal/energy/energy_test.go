package energy

import (
	"math"
	"testing"
)

func TestMarginalLinear(t *testing.T) {
	p := DefaultParams()
	one := p.MarginalMicroJ(1)
	ten := p.MarginalMicroJ(10)
	if math.Abs(ten-10*one) > 1e-12 {
		t.Fatalf("marginal cost not linear: %v vs %v", ten, 10*one)
	}
	if one != p.TxPerByteMicroJ+p.RxPerByteMicroJ {
		t.Fatalf("per-byte cost = %v", one)
	}
}

func TestFrameIncludesOverhead(t *testing.T) {
	p := DefaultParams()
	empty := p.FrameMicroJ(0)
	if empty <= 0 {
		t.Fatal("empty frame costs nothing")
	}
	want := float64(p.PacketOverheadBytes) * p.PerByteMicroJ()
	if math.Abs(empty-want) > 1e-12 {
		t.Fatalf("empty frame = %v, want %v", empty, want)
	}
	if p.FrameMicroJ(20) <= empty {
		t.Fatal("payload added no energy")
	}
}

func TestCostZeroPackets(t *testing.T) {
	if r := Cost(DefaultParams(), 1000, 1000, 0); r.TotalMicroJPerPacket != 0 {
		t.Fatalf("zero-packet cost = %+v", r)
	}
}

func TestCostDecomposition(t *testing.T) {
	p := DefaultParams()
	r := Cost(p, 8000, 800, 10) // 1000 annotation bytes, 100 dissem bytes, 10 pkts
	if r.TotalMicroJPerPacket != r.AnnotationMicroJPerPacket+r.DisseminationMicroJPerPacket {
		t.Fatalf("components do not sum: %+v", r)
	}
	wantAnnot := p.MarginalMicroJ(100) // 1000 bytes / 10 packets
	if math.Abs(r.AnnotationMicroJPerPacket-wantAnnot) > 1e-9 {
		t.Fatalf("annotation energy = %v, want %v", r.AnnotationMicroJPerPacket, wantAnnot)
	}
	if r.DisseminationMicroJPerPacket <= 0 {
		t.Fatal("dissemination energy missing")
	}
}

func TestCostMonotoneInBits(t *testing.T) {
	p := DefaultParams()
	small := Cost(p, 1000, 0, 10)
	large := Cost(p, 5000, 0, 10)
	if large.TotalMicroJPerPacket <= small.TotalMicroJPerPacket {
		t.Fatal("more radiated bits did not cost more")
	}
}
