package routing

import (
	"math"
	"testing"

	"dophy/internal/mac"
	"dophy/internal/radio"
	"dophy/internal/rng"
	"dophy/internal/sim"
	"dophy/internal/topo"
	"dophy/internal/trace"
)

// chainTopo builds a 1-D chain 0-1-2-...-(n-1) with spacing 10 and range
// 10.5, so each node can only talk to immediate neighbours.
func chainTopo(n int) *topo.Topology {
	return topo.Chain(n, 10, 10.5)
}

func bootstrapped(t *testing.T, n int, loss float64, seed uint64) (*Protocol, *sim.Engine, *topo.Topology) {
	t.Helper()
	tp := chainTopo(n)
	eng := sim.New()
	model := radio.NewStaticUniformLoss(tp, loss)
	rec := trace.NewRecorder(tp.LinkTable())
	p := New(DefaultConfig(), eng, tp, model, rng.New(seed), rec)
	p.Start()
	eng.Run(300)
	return p, eng, tp
}

func TestBootstrapChain(t *testing.T) {
	p, _, tp := bootstrapped(t, 5, 0, 1)
	if got := p.Routed(); got != tp.N()-1 {
		t.Fatalf("routed %d of %d nodes", got, tp.N()-1)
	}
	// On a lossless chain, parents must follow the gradient i -> i-1.
	for i := topo.NodeID(1); i < topo.NodeID(tp.N()); i++ {
		pa, ok := p.Parent(i)
		if !ok || pa != i-1 {
			t.Fatalf("node %d parent = %d (ok=%v), want %d", i, pa, ok, i-1)
		}
	}
}

func TestSinkHasNoParentAndZeroETX(t *testing.T) {
	p, _, _ := bootstrapped(t, 4, 0, 2)
	if _, ok := p.Parent(topo.Sink); ok {
		t.Fatal("sink acquired a parent")
	}
	if p.PathETX(topo.Sink) != 0 {
		t.Fatalf("sink path ETX = %v", p.PathETX(topo.Sink))
	}
}

func TestPathETXMonotoneTowardSink(t *testing.T) {
	p, _, tp := bootstrapped(t, 6, 0.1, 3)
	for i := topo.NodeID(1); i < topo.NodeID(tp.N()); i++ {
		pa, ok := p.Parent(i)
		if !ok {
			t.Fatalf("node %d unrouted", i)
		}
		if p.PathETX(i) <= p.PathETX(pa) {
			t.Fatalf("metric not decreasing: node %d etx %v, parent %d etx %v",
				i, p.PathETX(i), pa, p.PathETX(pa))
		}
	}
}

func TestDataFeedbackImprovesEstimates(t *testing.T) {
	p, _, _ := bootstrapped(t, 3, 0, 4)
	ns := p.nodes[1]
	before := ns.neighbors[0].linkETX
	// Report consistently expensive exchanges toward node 0.
	for i := 0; i < 50; i++ {
		p.OnDataResult(1, 0, mac.Result{Attempts: 8, Delivered: true, FirstDelivered: 8, AckedAttempt: 8})
	}
	after := ns.neighbors[0].linkETX
	if after <= before+1 {
		t.Fatalf("link ETX did not respond to data feedback: %v -> %v", before, after)
	}
}

func TestFailedDataGivesPenalty(t *testing.T) {
	p, _, _ := bootstrapped(t, 3, 0, 5)
	ns := p.nodes[2]
	for i := 0; i < 100; i++ {
		p.OnDataResult(2, 1, mac.Result{Attempts: 8, Delivered: false})
	}
	got := ns.neighbors[1].linkETX
	if got < DefaultConfig().MaxETXSample-1 {
		t.Fatalf("penalty sample not applied: link ETX = %v", got)
	}
}

func TestParentSwitchOnDegradedLink(t *testing.T) {
	// Grid with diagonal links: node can switch between two parents.
	tp := topo.Grid(3, 10, 0, 15, rng.New(6))
	eng := sim.New()
	model := radio.NewStaticUniformLoss(tp, 0)
	rec := trace.NewRecorder(tp.LinkTable())
	p := New(DefaultConfig(), eng, tp, model, rng.New(7), rec)
	p.Start()
	eng.Run(200)
	node := topo.NodeID(4) // center; neighbours include 0,1,3,...
	pa, ok := p.Parent(node)
	if !ok {
		t.Fatal("center unrouted")
	}
	// Degrade the current parent link heavily and keep reporting failures.
	for i := 0; i < 200; i++ {
		p.OnDataResult(node, pa, mac.Result{Attempts: 8, Delivered: false})
	}
	eng.Run(400)
	pa2, _ := p.Parent(node)
	if pa2 == pa {
		t.Fatalf("node %d never abandoned degraded parent %d", node, pa)
	}
	if rec.ParentChanges == 0 {
		t.Fatal("parent change not counted")
	}
}

func TestRandomizeParentForcesChurn(t *testing.T) {
	tp := topo.Grid(4, 10, 0, 15, rng.New(8))
	model := radio.NewStaticUniformLoss(tp, 0.05)

	run := func(prob float64) int64 {
		eng := sim.New()
		rec := trace.NewRecorder(tp.LinkTable())
		cfg := DefaultConfig()
		cfg.RandomizeParentProb = prob
		p := New(cfg, eng, tp, model, rng.New(9), rec)
		p.Start()
		eng.Run(150)
		rec.Cut()
		eng.Run(1000)
		return rec.Cut().ParentChanges
	}
	base := run(0)
	churned := run(0.5)
	if churned <= base+10 {
		t.Fatalf("randomize knob ineffective: base=%d churned=%d", base, churned)
	}
}

func TestBeaconsRecordedInTrace(t *testing.T) {
	tp := chainTopo(3)
	eng := sim.New()
	model := radio.NewStaticUniformLoss(tp, 0)
	rec := trace.NewRecorder(tp.LinkTable())
	p := New(DefaultConfig(), eng, tp, model, rng.New(10), rec)
	p.Start()
	eng.Run(100)
	if p.BeaconsSent == 0 {
		t.Fatal("no beacons sent")
	}
	c := rec.Link(topo.Link{From: 0, To: 1})
	if c.Attempts == 0 || c.Successes != c.Attempts {
		t.Fatalf("lossless beacon link counts = %+v", c)
	}
}

func TestCurrentTreeShape(t *testing.T) {
	p, _, tp := bootstrapped(t, 4, 0, 11)
	tree := p.CurrentTree()
	if len(tree) != tp.N() {
		t.Fatalf("tree size %d", len(tree))
	}
	if tree[0] != NoParent {
		t.Fatalf("sink parent = %d", tree[0])
	}
	for i := 1; i < len(tree); i++ {
		if tree[i] == NoParent {
			t.Fatalf("node %d unrouted in tree snapshot", i)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	tp := chainTopo(2)
	model := radio.NewStaticUniformLoss(tp, 0)
	for name, cfg := range map[string]Config{
		"zero period": {BeaconPeriod: 0, Window: 5},
		"zero window": {BeaconPeriod: 1, Window: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			New(cfg, sim.New(), tp, model, rng.New(1), nil)
		}()
	}
}

func TestStartTwicePanics(t *testing.T) {
	tp := chainTopo(2)
	model := radio.NewStaticUniformLoss(tp, 0)
	p := New(DefaultConfig(), sim.New(), tp, model, rng.New(1), nil)
	p.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("second Start did not panic")
		}
	}()
	p.Start()
}

func TestUnroutedBeforeStart(t *testing.T) {
	tp := chainTopo(3)
	model := radio.NewStaticUniformLoss(tp, 0)
	p := New(DefaultConfig(), sim.New(), tp, model, rng.New(1), nil)
	if p.Routed() != 0 {
		t.Fatal("nodes routed before any beacons")
	}
	if !math.IsInf(p.PathETX(2), 1) {
		t.Fatalf("pre-bootstrap path ETX = %v", p.PathETX(2))
	}
}

func TestAdaptiveBeaconReducesOverhead(t *testing.T) {
	tp := topo.Grid(4, 10, 0, 15, rng.New(41))
	model := radio.NewStaticUniformLoss(tp, 0.05)
	run := func(adaptive bool) int64 {
		eng := sim.New()
		cfg := DefaultConfig()
		if adaptive {
			cfg.AdaptiveBeacon = true
			cfg.BeaconMin = cfg.BeaconPeriod
			cfg.BeaconMax = cfg.BeaconPeriod * 16
			cfg.TrickleReset = 1
		}
		p := New(cfg, eng, tp, model, rng.New(42), trace.NewRecorder(tp.LinkTable()))
		p.Start()
		eng.Run(2000)
		return p.BeaconsSent
	}
	fixed := run(false)
	adaptive := run(true)
	if adaptive >= fixed/2 {
		t.Fatalf("trickle did not reduce beacons: fixed=%d adaptive=%d", fixed, adaptive)
	}
}

func TestAdaptiveBeaconStillBootstraps(t *testing.T) {
	tp := chainTopo(6)
	eng := sim.New()
	model := radio.NewStaticUniformLoss(tp, 0)
	cfg := DefaultConfig()
	cfg.AdaptiveBeacon = true
	cfg.BeaconMin = 2
	cfg.BeaconMax = 64
	cfg.TrickleReset = 0.5
	p := New(cfg, eng, tp, model, rng.New(43), trace.NewRecorder(tp.LinkTable()))
	p.Start()
	eng.Run(300)
	if got := p.Routed(); got != tp.N()-1 {
		t.Fatalf("routed %d of %d under adaptive beaconing", got, tp.N()-1)
	}
}

func TestAdaptiveBeaconResetOnChange(t *testing.T) {
	// After a long stable period, degrading the current parent should snap
	// the node back to fast beaconing (observable as a beacon-rate burst).
	tp := topo.Grid(3, 10, 0, 15, rng.New(44))
	eng := sim.New()
	model := radio.NewStaticUniformLoss(tp, 0)
	cfg := DefaultConfig()
	cfg.AdaptiveBeacon = true
	cfg.BeaconMin = 2
	cfg.BeaconMax = 128
	cfg.TrickleReset = 0.5
	rec := trace.NewRecorder(tp.LinkTable())
	p := New(cfg, eng, tp, model, rng.New(45), rec)
	p.Start()
	eng.Run(1500) // intervals saturate at BeaconMax
	before := p.BeaconsSent
	eng.Run(1756) // 256s at max interval: ~2 beacons/node expected
	quiet := p.BeaconsSent - before
	// Force a parent change at node 4.
	pa, _ := p.Parent(4)
	for i := 0; i < 300; i++ {
		p.OnDataResult(4, pa, mac.Result{Attempts: 8, Delivered: false})
	}
	before = p.BeaconsSent
	eng.Run(2012) // same window length after the reset
	busy := p.BeaconsSent - before
	if busy <= quiet {
		t.Fatalf("no beacon burst after parent change: quiet=%d busy=%d", quiet, busy)
	}
}

func TestAdaptiveBeaconValidation(t *testing.T) {
	tp := chainTopo(2)
	model := radio.NewStaticUniformLoss(tp, 0)
	cfg := DefaultConfig()
	cfg.AdaptiveBeacon = true
	cfg.BeaconMin = 0
	defer func() {
		if recover() == nil {
			t.Fatal("BeaconMin 0 accepted")
		}
	}()
	New(cfg, sim.New(), tp, model, rng.New(1), nil)
}
