// Package routing implements a CTP-like dynamic collection protocol: every
// node continuously selects a forwarding parent towards the sink by
// minimising path ETX (expected transmissions), re-evaluating as link
// estimates and neighbour advertisements change. This is the "dynamic WSN"
// substrate the paper targets — forwarding paths shift over time, which is
// precisely what breaks static-path loss tomography.
//
// Mechanisms, mirroring TinyOS CTP at the level that matters here:
//
//   - Periodic jittered beacons carry the sender's advertised path ETX.
//   - Receivers estimate in-bound beacon reception ratios over a sequence
//     window and seed link-ETX estimates from them.
//   - Data transmissions feed back precise out-bound ETX samples (attempt
//     counts from the ARQ layer), blended by EWMA; failed exchanges
//     contribute a penalty sample.
//   - Parent selection minimises advertised ETX + link ETX with switching
//     hysteresis; data-plane TTL catches transient loops from stale state.
//
// An optional RandomizeParentProb knob re-picks a random admissible parent
// at beacon time, giving experiments a direct, radio-independent control
// over path dynamics (the F3 axis in DESIGN.md).
package routing

import (
	"math"

	"dophy/internal/mac"
	"dophy/internal/radio"
	"dophy/internal/rng"
	"dophy/internal/sim"
	"dophy/internal/topo"
	"dophy/internal/trace"
)

// NoParent marks a node that has not yet acquired a route.
const NoParent topo.NodeID = -1

// Config tunes the protocol.
type Config struct {
	BeaconPeriod sim.Time // mean interval between beacons per node
	BeaconJitter float64  // uniform +/- fraction of the period
	Window       int      // expected beacons per reception-ratio sample
	AlphaBeacon  float64  // EWMA weight of beacon-derived ETX samples
	AlphaData    float64  // EWMA weight of data-derived ETX samples
	Hysteresis   float64  // ETX improvement required to switch parent
	MaxETXSample float64  // cap for penalty / low-ratio samples
	// RandomizeParentProb is the probability, evaluated at each beacon a
	// node sends, that it re-selects a parent uniformly among admissible
	// candidates instead of the best one. 0 disables forced churn.
	RandomizeParentProb float64
	// AdaptiveBeacon enables Trickle-style beacon pacing: each node's
	// interval starts at BeaconMin, doubles while its route is stable (up
	// to BeaconMax) and resets to BeaconMin when its parent changes or its
	// path metric moves by more than TrickleReset. Cuts control overhead
	// dramatically in stable networks while staying responsive to change.
	AdaptiveBeacon bool
	BeaconMin      sim.Time
	BeaconMax      sim.Time
	TrickleReset   float64 // path-ETX delta that resets the interval
}

// DefaultConfig returns settings that behave like a well-tuned collection
// protocol at simulation time scales.
func DefaultConfig() Config {
	return Config{
		BeaconPeriod: 10,
		BeaconJitter: 0.25,
		Window:       5,
		AlphaBeacon:  0.3,
		AlphaData:    0.25,
		Hysteresis:   0.5,
		MaxETXSample: 16,
	}
}

// neighborInfo is what a node knows about one neighbour.
type neighborInfo struct {
	advertisedETX float64 // path ETX from the neighbour's last beacon
	heard         bool    // at least one beacon received
	linkETX       float64 // EWMA out-bound ETX estimate
	hasLinkETX    bool
	lastSeq       int64 // last beacon sequence received
	expected      int   // beacons expected since window start
	received      int   // beacons received since window start
}

// nodeState is the per-node protocol state.
type nodeState struct {
	id        topo.NodeID
	parent    topo.NodeID
	pathETX   float64 // own advertised metric
	beaconSeq int64
	neighbors map[topo.NodeID]*neighborInfo
	// Trickle state (AdaptiveBeacon only).
	interval   sim.Time
	lastAdvETX float64 // advertised metric at the last beacon
	trickleHot bool    // reset requested since last beacon
}

// Fabric transports beacons between nodes that may live on different
// shards. When set, a received beacon is handed to the fabric instead of
// being applied synchronously; the fabric must invoke ReceiveBeacon on the
// destination's owning Protocol instance after its cross-shard latency.
type Fabric interface {
	DeliverBeacon(from, to topo.NodeID, seq int64, advertisedETX float64)
}

// ShardHooks configures a Protocol instance for the sharded engine. All
// fields may be zero for a plain sequential instance.
type ShardHooks struct {
	// Owned marks the nodes this instance owns; state exists and beacon
	// processes run only for them. nil means all nodes.
	Owned []bool
	// PerNode gives every node its own RNG stream (indexed by NodeID), so
	// draw sequences are independent of cross-node event interleaving.
	PerNode []*rng.Source
	// Fabric carries beacons across the shard boundary.
	Fabric Fabric
}

// Protocol runs collection routing for one network.
type Protocol struct {
	cfg     Config
	eng     *sim.Engine
	tp      *topo.Topology
	model   radio.Model
	r       *rng.Source
	perNode []*rng.Source
	owned   []bool
	fab     Fabric
	rec     *trace.Recorder
	nodes   []*nodeState
	started bool
	// pendingBeacon marks nodes with an extra beacon queued by scheduleNow.
	// Deliberately a flag and not the *sim.Event itself: events are pooled
	// and recycle the moment they fire, so retaining one here would be a
	// use-after-recycle hazard (dophy-lint rule poolescape).
	pendingBeacon []bool
	// beaconFns holds one prebuilt beacon handler per node, so periodic
	// rescheduling does not allocate a fresh closure every beacon.
	beaconFns []sim.Handler
	// beaconNowFns are the prebuilt immediate-beacon handlers used by
	// scheduleNow, for the same reason: data-path trouble triggers one per
	// failed ARQ exchange, squarely on the packet hot path.
	beaconNowFns []sim.Handler
	// candBuf/metricBuf are randomizeParent's candidate scratch, reused
	// across calls so forced churn does not allocate per beacon.
	candBuf   []topo.NodeID
	metricBuf []float64

	BeaconsSent int64 // total beacon transmissions (protocol overhead)
}

// New builds the protocol. rec may be nil.
func New(cfg Config, eng *sim.Engine, tp *topo.Topology, model radio.Model, r *rng.Source, rec *trace.Recorder) *Protocol {
	return NewSharded(cfg, eng, tp, model, r, rec, ShardHooks{})
}

// NewSharded builds a protocol instance for one shard of a partitioned
// simulation: node state is allocated only for owned nodes (a 100k-node
// topology split K ways would otherwise cost K full state tables), draws
// come from per-node streams, and beacons cross the boundary through the
// fabric. With zero hooks it is exactly New.
func NewSharded(cfg Config, eng *sim.Engine, tp *topo.Topology, model radio.Model, r *rng.Source, rec *trace.Recorder, hooks ShardHooks) *Protocol {
	if cfg.BeaconPeriod <= 0 {
		panic("routing: beacon period must be positive")
	}
	if cfg.Window < 1 {
		panic("routing: window must be >= 1")
	}
	if cfg.RandomizeParentProb < 0 || cfg.RandomizeParentProb > 1 {
		panic("routing: RandomizeParentProb must be in [0,1]")
	}
	if cfg.AdaptiveBeacon {
		if cfg.BeaconMin <= 0 || cfg.BeaconMax < cfg.BeaconMin {
			panic("routing: adaptive beacon needs 0 < BeaconMin <= BeaconMax")
		}
	}
	p := &Protocol{cfg: cfg, eng: eng, tp: tp, model: model, r: r, rec: rec,
		perNode: hooks.PerNode, owned: hooks.Owned, fab: hooks.Fabric,
		pendingBeacon: make([]bool, tp.N())}
	p.nodes = make([]*nodeState, tp.N())
	for i := range p.nodes {
		if !p.owns(topo.NodeID(i)) {
			continue
		}
		ns := &nodeState{
			id:         topo.NodeID(i),
			parent:     NoParent,
			pathETX:    math.Inf(1),
			lastAdvETX: math.Inf(1),
			neighbors:  make(map[topo.NodeID]*neighborInfo),
		}
		for _, nb := range tp.Neighbors(topo.NodeID(i)) {
			ns.neighbors[nb] = &neighborInfo{}
		}
		p.nodes[i] = ns
	}
	if p.owns(topo.Sink) {
		p.nodes[topo.Sink].pathETX = 0
	}
	return p
}

// owns reports whether this instance holds id's protocol state.
func (p *Protocol) owns(id topo.NodeID) bool { return p.owned == nil || p.owned[id] }

// rng returns the stream id's draws come from: the node's own stream in
// sharded mode, the shared protocol stream otherwise.
//
//dophy:hotpath
func (p *Protocol) rng(id topo.NodeID) *rng.Source {
	if p.perNode != nil {
		return p.perNode[id]
	}
	return p.r
}

// Start schedules the per-node beacon processes. Call once.
func (p *Protocol) Start() {
	if p.started {
		panic("routing: Start called twice")
	}
	p.started = true
	p.beaconFns = make([]sim.Handler, len(p.nodes))
	p.beaconNowFns = make([]sim.Handler, len(p.nodes))
	for i := range p.nodes {
		id := topo.NodeID(i)
		if !p.owns(id) {
			continue
		}
		p.beaconFns[i] = func() { p.beacon(id) }
		p.beaconNowFns[i] = func() {
			p.pendingBeacon[id] = false
			p.beaconOnce(id)
		}
		firstPeriod := p.cfg.BeaconPeriod
		if p.cfg.AdaptiveBeacon {
			p.nodes[i].interval = p.cfg.BeaconMin
			firstPeriod = p.cfg.BeaconMin
		}
		// Desynchronise first beacons across the period.
		first := sim.Time(p.rng(id).Float64()) * firstPeriod
		p.eng.Schedule(p.eng.Now()+first, p.beaconFns[i])
	}
}

// jitteredPeriod returns the next beacon delay for ns, advancing its
// Trickle interval when adaptive beaconing is on.
func (p *Protocol) jitteredPeriod(ns *nodeState) sim.Time {
	j := p.cfg.BeaconJitter
	base := p.cfg.BeaconPeriod
	if p.cfg.AdaptiveBeacon {
		if ns.trickleHot {
			ns.interval = p.cfg.BeaconMin
			ns.trickleHot = false
		} else {
			ns.interval *= 2
			if ns.interval > p.cfg.BeaconMax {
				ns.interval = p.cfg.BeaconMax
			}
		}
		base = ns.interval
	}
	return base * sim.Time(1+p.rng(ns.id).Range(-j, j))
}

// trickleReset asks for ns's beacon interval to snap back to BeaconMin at
// its next scheduling decision (route state changed).
func (p *Protocol) trickleReset(ns *nodeState) {
	if p.cfg.AdaptiveBeacon {
		ns.trickleHot = true
	}
}

// beacon transmits one beacon from id and reschedules.
//
//dophy:hotpath
func (p *Protocol) beacon(id topo.NodeID) {
	ns := p.nodes[id]
	p.beaconOnce(id)
	// Forced churn knob: occasionally re-pick among admissible parents.
	//dophy:allow valrange -- New panics unless RandomizeParentProb is in [0,1]
	if p.cfg.RandomizeParentProb > 0 && id != topo.Sink && p.rng(id).Bool(p.cfg.RandomizeParentProb) {
		p.randomizeParent(id)
	}
	// Trickle: a metric that moved since the last beacon re-arms fast
	// beaconing so neighbours learn promptly.
	if p.cfg.AdaptiveBeacon {
		delta := ns.pathETX - ns.lastAdvETX
		if delta < 0 {
			delta = -delta
		}
		if delta > p.cfg.TrickleReset && !math.IsInf(ns.lastAdvETX, 1) {
			ns.trickleHot = true
		}
		ns.lastAdvETX = ns.pathETX
	}
	p.eng.After(p.jitteredPeriod(ns), p.beaconFns[id])
}

// receiveBeacon processes a beacon from neighbour 'from' at node 'at'.
//
//dophy:hotpath
func (p *Protocol) receiveBeacon(at, from topo.NodeID, seq int64, advertisedETX float64) {
	ns := p.nodes[at]
	info := ns.neighbors[from]
	if info == nil {
		return // not a neighbour per topology (cannot happen via beacon())
	}
	info.advertisedETX = advertisedETX
	info.heard = true
	if info.lastSeq == 0 {
		info.expected++
	} else {
		gap := int(seq - info.lastSeq)
		if gap < 1 {
			gap = 1
		}
		info.expected += gap
	}
	info.lastSeq = seq
	info.received++
	if info.expected >= p.cfg.Window {
		ratio := float64(info.received) / float64(info.expected)
		sample := p.cfg.MaxETXSample
		if ratio > 0 {
			sample = math.Min(1/ratio, p.cfg.MaxETXSample)
		}
		p.updateLinkETX(info, sample, p.cfg.AlphaBeacon)
		info.expected, info.received = 0, 0
	}
	if at != topo.Sink {
		p.selectParent(at)
	}
}

func (p *Protocol) updateLinkETX(info *neighborInfo, sample, alpha float64) {
	if !info.hasLinkETX {
		info.linkETX = sample
		info.hasLinkETX = true
		return
	}
	info.linkETX = (1-alpha)*info.linkETX + alpha*sample
}

// OnDataResult feeds an ARQ outcome back into the sender's link estimator.
//
//dophy:hotpath
func (p *Protocol) OnDataResult(from, to topo.NodeID, res mac.Result) {
	ns := p.nodes[from]
	info := ns.neighbors[to]
	if info == nil {
		return
	}
	sample := float64(res.Attempts)
	if !res.Delivered {
		sample = p.cfg.MaxETXSample
		// Data-path trouble: re-arm fast beaconing (CTP's pull behaviour)
		// so the neighbourhood resynchronises its advertisements quickly.
		p.trickleReset(ns)
		if !p.pendingBeacon[from] {
			p.scheduleNow(from)
		}
	}
	p.updateLinkETX(info, sample, p.cfg.AlphaData)
	if from != topo.Sink {
		p.selectParent(from)
	}
}

// scheduleNow queues an immediate extra beacon for id (at most one pending
// at a time) so route changes propagate without waiting a full interval.
//
//dophy:hotpath
func (p *Protocol) scheduleNow(id topo.NodeID) {
	if !p.cfg.AdaptiveBeacon || !p.started {
		return
	}
	p.eng.After(p.cfg.BeaconMin*sim.Time(0.25*(1+p.rng(id).Float64())), p.beaconNowFns[id])
	p.pendingBeacon[id] = true
}

// beaconOnce transmits a beacon without touching the periodic schedule.
//
//dophy:hotpath
func (p *Protocol) beaconOnce(id topo.NodeID) {
	ns := p.nodes[id]
	ns.beaconSeq++
	p.BeaconsSent++
	now := p.eng.Now()
	adv := ns.pathETX
	r := p.rng(id)
	for _, nb := range p.tp.Neighbors(id) {
		l := topo.Link{From: id, To: nb}
		received := r.Bool(p.model.PRR(l, now))
		if p.rec != nil {
			p.rec.Beacon(l, received)
		}
		if received {
			if p.fab != nil {
				p.fab.DeliverBeacon(id, nb, ns.beaconSeq, adv)
			} else {
				p.receiveBeacon(nb, id, ns.beaconSeq, adv)
			}
		}
	}
}

// ReceiveBeacon applies a beacon that arrived over the fabric at node 'at'.
// It must run on the engine owning 'at', at the beacon's arrival time.
//
//dophy:hotpath
func (p *Protocol) ReceiveBeacon(at, from topo.NodeID, seq int64, advertisedETX float64) {
	p.receiveBeacon(at, from, seq, advertisedETX)
}

// metric returns the routing metric of candidate nb as seen from ns, and
// whether nb is admissible.
func (p *Protocol) metric(ns *nodeState, nb topo.NodeID, info *neighborInfo) (float64, bool) {
	if !info.heard {
		return 0, false
	}
	if math.IsInf(info.advertisedETX, 1) {
		return 0, false // neighbour has no route itself
	}
	link := info.linkETX
	if !info.hasLinkETX {
		// No estimate yet: optimistic default so bootstrap can proceed.
		link = 1
	}
	return info.advertisedETX + link, true
}

// selectParent re-evaluates ns's parent with hysteresis.
func (p *Protocol) selectParent(id topo.NodeID) {
	ns := p.nodes[id]
	bestID := NoParent
	best := math.Inf(1)
	for nb, info := range ns.neighbors {
		m, ok := p.metric(ns, nb, info)
		if !ok {
			continue
		}
		// Gradient constraint: never choose a parent whose own advertised
		// metric is not strictly below ours would deadlock bootstrap (our
		// metric starts at +inf), so constrain against the candidate metric
		// instead: the chosen path metric must improve on the neighbour's
		// advertisement by at least the link cost, which holds by
		// construction; stale-state loops are caught by the data-plane TTL.
		if m < best || (m == best && (bestID == NoParent || nb < bestID)) {
			best = m
			bestID = nb
		}
	}
	if bestID == NoParent {
		return
	}
	cur := ns.parent
	if cur != NoParent {
		curInfo := ns.neighbors[cur]
		if curM, ok := p.metric(ns, cur, curInfo); ok {
			// Keep the current parent unless the best is clearly better.
			if bestID != cur && best > curM-p.cfg.Hysteresis {
				bestID = cur
				best = curM
			}
		}
	}
	p.adoptParent(ns, bestID, best)
}

// randomizeParent picks a uniformly random admissible candidate.
func (p *Protocol) randomizeParent(id topo.NodeID) {
	ns := p.nodes[id]
	cands := p.candBuf[:0]
	metrics := p.metricBuf[:0]
	// The topology's neighbour lists are sorted by node id, so candidates
	// come out in deterministic ascending order with no post-sort.
	for _, nb := range p.tp.Neighbors(id) {
		info := ns.neighbors[nb]
		if m, ok := p.metric(ns, nb, info); ok && m < p.cfg.MaxETXSample*4 {
			cands = append(cands, nb)
			metrics = append(metrics, m)
		}
	}
	p.candBuf, p.metricBuf = cands, metrics
	if len(cands) == 0 {
		return
	}
	k := p.rng(id).Intn(len(cands))
	p.adoptParent(ns, cands[k], metrics[k])
}

func (p *Protocol) adoptParent(ns *nodeState, parent topo.NodeID, metric float64) {
	if ns.parent != parent {
		if ns.parent != NoParent && p.rec != nil {
			p.rec.ParentChanges++
		}
		ns.parent = parent
		p.trickleReset(ns)
	}
	ns.pathETX = metric
}

// Parent returns id's current forwarding parent.
func (p *Protocol) Parent(id topo.NodeID) (topo.NodeID, bool) {
	pa := p.nodes[id].parent
	return pa, pa != NoParent
}

// PathETX returns id's advertised path metric (inf before bootstrap).
func (p *Protocol) PathETX(id topo.NodeID) float64 { return p.nodes[id].pathETX }

// CurrentTree snapshots every node's parent (NoParent where unset). Index 0
// is the sink. Static-tree tomography baselines consume this.
func (p *Protocol) CurrentTree() []topo.NodeID {
	out := make([]topo.NodeID, len(p.nodes))
	for i, ns := range p.nodes {
		if ns == nil {
			out[i] = NoParent // owned by another shard
			continue
		}
		out[i] = ns.parent
	}
	return out
}

// Routed reports how many owned nodes (excluding the sink) currently have
// parents. On a sharded instance this counts only the shard's own nodes;
// sum across shards for the network-wide figure.
func (p *Protocol) Routed() int {
	n := 0
	for i, ns := range p.nodes {
		if ns != nil && i != int(topo.Sink) && ns.parent != NoParent {
			n++
		}
	}
	return n
}
