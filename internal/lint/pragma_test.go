package lint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// pragmaSrc covers the parsing corners: several rules on one line, a
// missing "--" justification, a near-miss prefix, a nameless waiver, and an
// unknown rule name.
const pragmaSrc = `package p

//dophy:allow hotpathalloc determflow -- both flagged for the same reason
var a int

//dophy:allow maprange
var b int

//dophy:allowx maprange -- not a pragma
var c int

//dophy:allow -- nameless
var d int

//dophy:allow nosuchrule -- unknown
var e int
`

func parsePragmaFixture(t *testing.T) (*token.FileSet, []*pragma) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "pragma_fixture.go", pragmaSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, parsePragmas(fset, f)
}

func fixtureIndex(t *testing.T) *pragmaIndex {
	t.Helper()
	fset, ps := parsePragmaFixture(t)
	idx := &pragmaIndex{
		fset:  fset,
		all:   ps,
		byLoc: map[allowKey]*pragma{},
		unknown: map[string]bool{
			"hotpathalloc": true, "determflow": true, "maprange": true,
			pragmaRuleName: true,
		},
	}
	for _, p := range ps {
		for _, r := range p.rules {
			idx.byLoc[allowKey{p.file, p.line, r}] = p
		}
	}
	return idx
}

// TestParsePragmas checks the raw parse: the near-miss //dophy:allowx is
// skipped, several rules on one line are all collected, and a pragma with
// no "--" gets an empty reason rather than swallowing trailing words.
func TestParsePragmas(t *testing.T) {
	_, ps := parsePragmaFixture(t)
	if len(ps) != 4 {
		t.Fatalf("parsed %d pragmas, want 4 (the //dophy:allowx near-miss must be skipped)", len(ps))
	}
	multi := ps[0]
	if len(multi.rules) != 2 || multi.rules[0] != "hotpathalloc" || multi.rules[1] != "determflow" {
		t.Errorf("multi-rule pragma parsed rules %v, want [hotpathalloc determflow]", multi.rules)
	}
	if multi.reason != "both flagged for the same reason" {
		t.Errorf("multi-rule pragma reason = %q", multi.reason)
	}
	noReason := ps[1]
	if len(noReason.rules) != 1 || noReason.rules[0] != "maprange" {
		t.Errorf("reasonless pragma parsed rules %v, want [maprange]", noReason.rules)
	}
	if noReason.reason != "" {
		t.Errorf("pragma without -- should have empty reason, got %q", noReason.reason)
	}
	if nameless := ps[2]; len(nameless.rules) != 0 {
		t.Errorf("nameless pragma parsed rules %v, want none", nameless.rules)
	}
}

// TestPragmaWaiverPlacement checks the two legal placements: a pragma
// waives its own line (trailing form) and the line directly below (above
// form) — and nothing else. Both rules of a multi-rule pragma waive.
func TestPragmaWaiverPlacement(t *testing.T) {
	idx := fixtureIndex(t)
	const file = "pragma_fixture.go"
	const pragmaLine = 3 // the hotpathalloc+determflow pragma

	for _, rule := range []string{"hotpathalloc", "determflow"} {
		if !idx.allowedLine(rule, file, pragmaLine) {
			t.Errorf("%s not waived on the pragma's own line (trailing form)", rule)
		}
		if !idx.allowedLine(rule, file, pragmaLine+1) {
			t.Errorf("%s not waived on the line below the pragma (above form)", rule)
		}
	}
	if idx.allowedLine("hotpathalloc", file, pragmaLine-1) {
		t.Errorf("waiver leaked to the line above the pragma")
	}
	if idx.allowedLine("hotpathalloc", file, pragmaLine+2) {
		t.Errorf("waiver leaked two lines below the pragma")
	}
	if idx.allowedLine("maprange", file, pragmaLine) {
		t.Errorf("rule not named by the pragma was waived")
	}
}

// TestMalformedPragmaDiags checks the three malformation reports: no rules
// named, unknown rule name, and missing justification.
func TestMalformedPragmaDiags(t *testing.T) {
	idx := fixtureIndex(t)
	diags := idx.malformedPragmaDiags()
	wants := []string{
		"waiver names no rules",
		`waiver names unknown rule "nosuchrule"`,
		"waiver has no justification",
	}
	for _, w := range wants {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Msg, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no malformed-pragma diagnostic containing %q; got %v", w, diags)
		}
	}
	if len(diags) != len(wants) {
		t.Errorf("got %d malformed diagnostics, want %d: %v", len(diags), len(wants), diags)
	}
}

// TestStalePragmaDiags checks usage tracking: a rule that suppressed a
// diagnostic is live, a sibling rule on the same pragma that suppressed
// nothing is stale per rule, and unknown rules are excluded (they already
// have a malformed report).
func TestStalePragmaDiags(t *testing.T) {
	idx := fixtureIndex(t)
	// Simulate the engine suppressing one hotpathalloc diagnostic under the
	// multi-rule pragma; determflow on the same line stays unused.
	if !idx.allowedLine("hotpathalloc", "pragma_fixture.go", 4) {
		t.Fatal("setup: hotpathalloc should be waived at line 4")
	}
	stale := idx.staleDiags()
	byMsg := map[string]bool{}
	for _, d := range stale {
		byMsg[d.Msg] = true
	}
	if byMsg["stale waiver: //dophy:allow hotpathalloc suppresses nothing here; delete it"] {
		t.Errorf("used rule reported stale")
	}
	for _, r := range []string{"determflow", "maprange"} {
		if !byMsg["stale waiver: //dophy:allow "+r+" suppresses nothing here; delete it"] {
			t.Errorf("unused rule %s not reported stale; got %v", r, stale)
		}
	}
	for _, d := range stale {
		if strings.Contains(d.Msg, "nosuchrule") {
			t.Errorf("unknown rule reported stale instead of malformed: %s", d)
		}
	}
}
