// Package solver mirrors internal/mat's reusable NNLS solver: a
// //dophy:states lifecycle contract on the solve order (a warm start is
// only legal after a full solve) and //dophy:returns borrowed(recv)
// results that alias the solver's scratch until the next solve.
package solver

// solver owns reusable scratch; Solve must run before SolveWarm.
//
//dophy:states new: Solve -> solved; solved: Solve|SolveWarm -> solved
type solver struct {
	x []float64
}

// Solve factors from scratch. The result aliases s.x.
//
//dophy:returns borrowed(recv) -- the result aliases s.x until the next solve
//dophy:invalidates
func (s *solver) Solve(b []float64) []float64 {
	if len(s.x) < len(b) {
		s.x = make([]float64, len(b))
	}
	for i := range b {
		s.x[i] = b[i]
	}
	return s.x
}

// SolveWarm refines the previous solution in place.
//
//dophy:returns borrowed(recv) -- the result aliases s.x until the next solve
//dophy:invalidates
func (s *solver) SolveWarm(b []float64) []float64 {
	for i := range b {
		s.x[i] += b[i]
	}
	return s.x
}

// refine warms the solver in place; its summary is the straight-line
// sequence [SolveWarm], so callers' states are checked at the call site.
func refine(s *solver, b []float64) {
	s.SolveWarm(b)
}

// coldStart warms a solver that has never solved: a lifecycle violation.
func coldStart(b []float64) float64 {
	var s solver
	x := s.SolveWarm(b) // want "SolveWarm called in state"
	return x[0]
}

// summaryViolation escapes a fresh solver into refine, whose summary
// applies SolveWarm — illegal from the initial state.
func summaryViolation(b []float64) {
	var s solver
	refine(&s, b) // want "call to refine drives s"
}

// warmPath is the clean shape: full solve, copy out, then refine.
func warmPath(b []float64) []float64 {
	var s solver
	out := append([]float64(nil), s.Solve(b)...)
	refine(&s, b)
	return out
}

// staleRead keeps the first borrow across the second solve: by the time x
// is read the scratch has been rewritten.
func staleRead(b []float64) float64 {
	var s solver
	x := s.Solve(b)
	y := s.Solve(b)
	return x[0] + y[0] // want "x was borrowed from s's scratch"
}

// cache retains estimate vectors across calls.
type cache struct {
	last []float64
}

// remember stores the borrow itself: the field now aliases solver scratch.
func (c *cache) remember(s *solver, b []float64) {
	x := s.Solve(b)
	c.last = x // want "retaining the alias"
}

// rememberCopy is the sanctioned shape: one explicit copy at the
// retention boundary.
func (c *cache) rememberCopy(s *solver, b []float64) {
	c.last = append(c.last[:0], s.Solve(b)...)
}

// leak returns a borrow from a function that does not declare itself
// borrowing, so its caller cannot know the result is scratch.
func leak(s *solver, b []float64) []float64 {
	return s.Solve(b) // want "is returned from leak"
}

// handOff re-borrows legally: a returns-borrowed wrapper may forward the
// receiver's own borrow.
//
//dophy:returns borrowed(recv) -- forwards Solve's borrow of the same receiver
func (s *solver) handOff(b []float64) []float64 {
	return s.Solve(b)
}
