// Package hotpath exercises the inter-procedural hotpathalloc rule: the
// annotated roots below reach allocation sites directly, one call deep, and
// through unresolvable indirection.
package hotpath

type point struct{ x, y int }

var sink any

var keep *point

// Dispatch is an annotated hot root with direct violations.
//
//dophy:hotpath
func Dispatch(vals []int) {
	for _, v := range vals {
		record(v)
	}
	buf := make([]int, len(vals)) // want "make allocates per call"
	_ = buf
	fn := func() {} // want "closure allocates per call"
	_ = fn
	var fresh []int
	fresh = append(fresh, 1) // want "append grows fresh local slice"
	_ = fresh
	keep = &point{1, 2} // want "&composite literal escapes to the heap"
}

// record is not annotated itself: it is reachable from Dispatch, so the
// boxing below is flagged one call deep with the full chain.
func record(v int) {
	box(v) // want "argument boxes int into interface any [hot path: internal/hotpath.Dispatch -> internal/hotpath.record]"
}

func box(x any) { sink = x }

// handlers is a dispatch table whose function values the static engine
// cannot resolve (nothing in the module is address-taken with this
// signature).
var handlers struct{ fire func(int) }

// FireIndirect shows the unresolvable-callee report; the determflow
// pseudo-source at the same site is waived so only hotpathalloc fires.
//
//dophy:hotpath
func FireIndirect(v int) {
	//dophy:allow determflow -- fixture: the table is filled with deterministic handlers at init
	handlers.fire(v) // want "indirect call on hot path (internal/hotpath.FireIndirect)"
}

// FireWaived demonstrates one pragma waiving several rules at once.
//
//dophy:hotpath
func FireWaived(v int) {
	//dophy:allow hotpathalloc determflow -- fixture: handlers registered at init are deterministic and allocation-free
	handlers.fire(v)
}

// WarmUp demonstrates a justified hotpathalloc waiver on the flagged line.
//
//dophy:hotpath
func WarmUp(n int) []byte {
	//dophy:allow hotpathalloc -- fixture: one-time warm-up allocation amortised over the run
	return make([]byte, n)
}

//dophy:allow hotpathalloc -- fixture: suppresses nothing on purpose // want "stale waiver"
func cold() {}

var _ = cold
