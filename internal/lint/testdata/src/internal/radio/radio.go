// Package radio is a stand-in for the real radio models; the uniform-loss
// constructor carries a valrange contract on its loss argument.
package radio

// NewStaticUniformLoss builds a model where every link drops with
// probability loss; loss must lie in [0, 1].
func NewStaticUniformLoss(nodes int, loss float64) float64 {
	return loss * float64(nodes)
}
