// Package goroutine violates the nogo rule.
package goroutine

// Spawn launches work concurrently outside the sweep engine.
func Spawn(f func()) {
	go f() // want "goroutine outside"
}
