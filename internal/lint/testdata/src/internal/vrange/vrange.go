// Package vrange exercises the valrange rule: contract arguments must be
// provably in range when they come from a trust boundary, and never
// provably out of range.
package vrange

import (
	"fixture/internal/radio"
	"fixture/internal/rng"
	"fixture/internal/tomo/geomle"
)

// Config mirrors a scenario boundary: its fields arrive unvalidated.
type Config struct {
	Loss  float64
	Decay float64
}

// Definite passes constants the analysis can prove wrong outright.
func Definite(r *rng.Source) float64 {
	r.Bool(1.5)                          // want "provably outside"
	return geomle.LossFromDrop(-0.25, 8) // want "provably outside"
}

// Unvalidated forwards boundary inputs straight into contracts.
func Unvalidated(cfg Config, r *rng.Source) float64 {
	r.Bool(cfg.Loss)                               // want "not validated against"
	return radio.NewStaticUniformLoss(4, cfg.Loss) // want "not validated against"
}

// Validated shows the three clean patterns: a guard that panics out of
// range, a clamp, and an in-range constant.
func Validated(cfg Config, r *rng.Source, o *geomle.Obs) {
	if cfg.Loss < 0 || cfg.Loss > 1 {
		panic("loss out of range")
	}
	r.Bool(cfg.Loss)

	p := cfg.Decay
	if p > 1 {
		p = 1
	}
	if p < 0 {
		p = 0
	}
	o.Decay(p)

	o.AddAttempt(1)
}

// Waived documents bounds the analysis cannot see locally.
func Waived(cfg Config, o *geomle.Obs) {
	//dophy:allow valrange -- the fixture constructor clamps Decay at build time
	o.Decay(cfg.Decay)
}
