// Package geomle is a stand-in for the real per-attempt estimator whose
// accumulator methods carry valrange contracts.
package geomle

// Obs accumulates per-attempt delivery counts.
type Obs struct{ Exact []float64 }

// AddAttempt records a delivery on 1-based attempt t.
func (o *Obs) AddAttempt(t int) { o.Exact[t-1]++ }

// Decay ages the accumulator; factor must lie in [0, 1].
func (o *Obs) Decay(factor float64) {
	for i := range o.Exact {
		o.Exact[i] *= factor
	}
}

// LossFromDrop converts a per-hop drop probability in [0, 1] into a
// per-attempt loss estimate.
func LossFromDrop(drop float64, m int) float64 {
	if m < 1 {
		return drop
	}
	return drop / float64(m)
}
