// Package flow exercises determflow's pseudo-sources and its
// inter-procedural extension of the map-order rule.
package flow

import "fmt"

// clock is a function-valued package variable nothing in the module
// assigns; the engine must assume the worst about whatever ends up there.
var clock func() int64

// Sample reads the unresolvable clock.
func Sample() int64 {
	return clock() // want "indirect call has no statically known callee"
}

// Dump leaks map iteration order through a helper, which the older
// intra-procedural maprange rule cannot see.
func Dump(m map[string]int) {
	for k := range m {
		show(k) // want "map iteration order leaks through call to internal/flow.show"
	}
}

func show(s string) { fmt.Println(s) }
