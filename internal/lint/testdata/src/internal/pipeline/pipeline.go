// Package pipeline mirrors the real internal/experiment epoch pipeline: a
// single-producer single-consumer channel hand-off inside a concurrency
// boundary. The spawn helper's go statement is sanctioned by the file
// pragma; //dophy:transfers on the channel send makes any later touch of
// the sent cut a sendown violation, and the consumer may not reach the
// coordinator's engine-owned accounting.
//
//dophy:concurrency-boundary -- fixture two-stage pipeline; cuts cross the channel once and the bank belongs to the consumer goroutine
package pipeline

// cut is one epoch's harvest, immutable once constructed.
type cut struct {
	vals []float64 //dophy:owner immutable
}

// newCut is the cut's constructor: the only place vals may be written.
func newCut(v float64) *cut {
	return &cut{vals: []float64{v}}
}

// bank is the consumer stage's state: the estimator pointer never changes
// after construction (its internal scratch mutates only under consume),
// and total is the coordinator's accounting.
type bank struct {
	est   *estimator //dophy:owner immutable
	total float64    //dophy:owner engine
}

type estimator struct {
	sum float64
	out []float64
}

func (e *estimator) accumulate(vals []float64) float64 {
	for _, v := range vals {
		e.sum += v
	}
	return e.sum
}

// estimate mirrors the real estimators' borrowed-scratch contract: the
// returned slice aliases e.out and is rewritten by the next estimate.
//
//dophy:returns borrowed(recv) -- the result aliases e.out until the next estimate
//dophy:invalidates
func (e *estimator) estimate(vals []float64) []float64 {
	if len(e.out) < len(vals) {
		e.out = make([]float64, len(vals))
	}
	o := e.out[:len(vals)]
	for i, v := range vals {
		o[i] = v
	}
	return o
}

func newBank() *bank { return &bank{est: &estimator{}} }

// spawn starts the consumer stage; sanctioned by the boundary pragma.
func spawn(b *bank, cuts <-chan *cut, outs chan<- float64) {
	go consume(b, cuts, outs)
}

// consume drains cuts in order. Working through the immutable estimator
// pointer is the clean shape; folding into the coordinator's engine-owned
// total from the consumer goroutine is the violation.
//
//dophy:window
func consume(b *bank, cuts <-chan *cut, outs chan<- float64) {
	for c := range cuts {
		v := b.est.accumulate(c.vals)
		b.total += v // want "window code touches engine-owned field total"
		outs <- v
	}
	close(outs)
}

// produce sends each cut downstream and then — the violation — reads the
// cut it no longer owns (the consumer may already be recycling it).
func produce(cuts chan<- *cut, n int) {
	var sent float64
	for i := 0; i < n; i++ {
		c := newCut(float64(i))
		//dophy:transfers -- the cut belongs to the consumer once sent
		cuts <- c
		sent += c.vals[0] // want "used after its ownership was transferred away"
	}
	_ = sent
	close(cuts)
}

// keepRaw retains epoch k's borrowed estimate past epoch k+1's estimate
// call — by the second read the estimator scratch has been rewritten.
func keepRaw(b *bank, c1, c2 *cut) float64 {
	e1 := b.est.estimate(c1.vals)
	e2 := b.est.estimate(c2.vals)
	return e1[0] + e2[0] // want "e1 was borrowed from b.est's scratch"
}

// keepCopy is the shape the real estBank uses: one explicit copy at the
// retention boundary, then the scratch may be rewritten freely.
func keepCopy(b *bank, c1, c2 *cut) float64 {
	loss := append([]float64(nil), b.est.estimate(c1.vals)...)
	e2 := b.est.estimate(c2.vals)
	return loss[0] + e2[0]
}

// publishRaw sends the borrow itself across the stage boundary: the
// consumer would race the next estimate's rewrite of the scratch.
func publishRaw(b *bank, c *cut, outs chan<- []float64) {
	outs <- b.est.estimate(c.vals) // want "sent over a channel"
}

// publishCopy hands off an owned copy instead.
func publishCopy(b *bank, c *cut, outs chan<- []float64) {
	outs <- append([]float64(nil), b.est.estimate(c.vals)...)
}

// session mirrors experiment.Session: subscriptions attach only before the
// first epoch runs.
//
//dophy:states fresh: Subscribe -> fresh, RunEpoch -> running; running: RunEpoch -> running
type session struct {
	n int
}

func newSession() *session { return &session{} }

// Subscribe registers a consumer; legal only before the first RunEpoch.
func (s *session) Subscribe() { s.n++ }

// RunEpoch advances the pipeline one epoch.
func (s *session) RunEpoch() { s.n++ }

// lateSubscribe attaches a consumer after the pipeline started: the epoch
// it missed can never be replayed.
func lateSubscribe() {
	s := newSession()
	s.RunEpoch()
	s.Subscribe() // want "Subscribe called in state"
}

// fullSession is the clean order.
func fullSession() int {
	s := newSession()
	s.Subscribe()
	s.RunEpoch()
	s.RunEpoch()
	return s.n
}

// Run wires the stages together the way RunPipelined does.
func Run(n int) float64 {
	b := newBank()
	cuts := make(chan *cut, 1)
	outs := make(chan float64, 1)
	spawn(b, cuts, outs)
	go produce(cuts, n)
	var sum float64
	for v := range outs {
		sum += v
	}
	return sum
}
