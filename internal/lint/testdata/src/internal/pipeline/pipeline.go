// Package pipeline mirrors the real internal/experiment epoch pipeline: a
// single-producer single-consumer channel hand-off inside a concurrency
// boundary. The spawn helper's go statement is sanctioned by the file
// pragma; //dophy:transfers on the channel send makes any later touch of
// the sent cut a sendown violation, and the consumer may not reach the
// coordinator's engine-owned accounting.
//
//dophy:concurrency-boundary -- fixture two-stage pipeline; cuts cross the channel once and the bank belongs to the consumer goroutine
package pipeline

// cut is one epoch's harvest, immutable once constructed.
type cut struct {
	vals []float64 //dophy:owner immutable
}

// newCut is the cut's constructor: the only place vals may be written.
func newCut(v float64) *cut {
	return &cut{vals: []float64{v}}
}

// bank is the consumer stage's state: the estimator pointer never changes
// after construction (its internal scratch mutates only under consume),
// and total is the coordinator's accounting.
type bank struct {
	est   *estimator //dophy:owner immutable
	total float64    //dophy:owner engine
}

type estimator struct {
	sum float64
}

func (e *estimator) accumulate(vals []float64) float64 {
	for _, v := range vals {
		e.sum += v
	}
	return e.sum
}

func newBank() *bank { return &bank{est: &estimator{}} }

// spawn starts the consumer stage; sanctioned by the boundary pragma.
func spawn(b *bank, cuts <-chan *cut, outs chan<- float64) {
	go consume(b, cuts, outs)
}

// consume drains cuts in order. Working through the immutable estimator
// pointer is the clean shape; folding into the coordinator's engine-owned
// total from the consumer goroutine is the violation.
//
//dophy:window
func consume(b *bank, cuts <-chan *cut, outs chan<- float64) {
	for c := range cuts {
		v := b.est.accumulate(c.vals)
		b.total += v // want "window code touches engine-owned field total"
		outs <- v
	}
	close(outs)
}

// produce sends each cut downstream and then — the violation — reads the
// cut it no longer owns (the consumer may already be recycling it).
func produce(cuts chan<- *cut, n int) {
	var sent float64
	for i := 0; i < n; i++ {
		c := newCut(float64(i))
		//dophy:transfers -- the cut belongs to the consumer once sent
		cuts <- c
		sent += c.vals[0] // want "used after its ownership was transferred away"
	}
	_ = sent
	close(cuts)
}

// Run wires the stages together the way RunPipelined does.
func Run(n int) float64 {
	b := newBank()
	cuts := make(chan *cut, 1)
	outs := make(chan float64, 1)
	spawn(b, cuts, outs)
	go produce(cuts, n)
	var sum float64
	for v := range outs {
		sum += v
	}
	return sum
}
