// Package idxflow exercises the idxdomain rule: link-table indices, node
// ids, neighbor offsets and epoch counters are distinct integer domains
// that must not cross without a waiver.
package idxflow

import "fixture/internal/topo"

// CrossConvert re-types a node id as a link index: the classic off-by-a-
// domain bug a plain int32 would never catch.
func CrossConvert(lt *topo.LinkTable, id topo.NodeID) topo.Link {
	return lt.Link(topo.LinkIdx(id)) // want "crosses integer domains: node-id -> link-index"
}

// MixedArithmetic launders both sides through int, which keeps the taint,
// then adds them: still a cross-domain combination.
func MixedArithmetic(li topo.LinkIdx, id topo.NodeID) int {
	return int(li) + int(id) // want "mixes integer domains link-index and node-id"
}

// OffsetAsIndex promotes a neighbor offset (NeighborIndex's int result) to
// a table index without re-deriving it.
func OffsetAsIndex(lt *topo.LinkTable, l topo.Link) topo.LinkIdx {
	off := lt.NeighborIndex(l)
	return topo.LinkIdx(off) // want "crosses integer domains: neighbor-offset -> link-index"
}

// EpochAsNode treats an epoch counter as a node id.
func EpochAsNode(epoch int) topo.NodeID {
	return topo.NodeID(epoch) // want "crosses integer domains: epoch -> node-id"
}

// TypedLoop is the idiomatic clean pattern: indices born in their own
// domain, compared and advanced only against that domain.
func TypedLoop(lt *topo.LinkTable) int {
	total := 0
	for i := topo.LinkIdx(0); i < lt.Count(); i++ {
		total += lt.Link(i).From
	}
	return total
}

// Rederived goes back through the domain's own constructor: offset-derived
// data is used to look up a Link, and the index comes from Index.
func Rederived(lt *topo.LinkTable, l topo.Link) topo.LinkIdx {
	if lt.NeighborIndex(l) < 0 {
		return topo.NoLink
	}
	return lt.Index(l)
}

// Waived documents a deliberate identity mapping.
func Waived(id topo.NodeID) topo.LinkIdx {
	//dophy:allow idxdomain -- synthetic identity topology: node i owns link i
	return topo.LinkIdx(id)
}
