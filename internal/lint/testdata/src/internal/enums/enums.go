// Package enums exercises the exhaustive rule: switches over module enums
// must name every member or carry a waived default.
package enums

// Mode is an integer enum with three members.
type Mode int

const (
	ModeOff Mode = iota
	ModeOn
	ModeAuto
)

// Level is a string enum with two members.
type Level string

const (
	LevelLow  Level = "low"
	LevelHigh Level = "high"
)

// Partial misses a member and has no default.
func Partial(m Mode) string {
	switch m { // want "misses ModeAuto"
	case ModeOff:
		return "off"
	case ModeOn:
		return "on"
	}
	return "?"
}

// SilentDefault hides missing members behind an unjustified default.
func SilentDefault(m Mode) string {
	switch m {
	case ModeOff:
		return "off"
	default: // want "misses ModeOn, ModeAuto"
		return "?"
	}
}

// Full names every member (grouping is fine).
func Full(m Mode) string {
	switch m {
	case ModeOff, ModeOn:
		return "binary"
	case ModeAuto:
		return "auto"
	}
	return "?"
}

// FullWithDefault names every member and keeps a defensive default.
func FullWithDefault(l Level) string {
	switch l {
	case LevelLow:
		return "low"
	case LevelHigh:
		return "high"
	default:
		return "corrupt"
	}
}

// WaivedDefault justifies its catch-all.
func WaivedDefault(l Level) string {
	switch l {
	case LevelLow:
		return "low"
	//dophy:allow exhaustive -- every non-low level renders as high here
	default:
		return "high"
	}
}

// Dynamic has a non-constant case, which can cover anything: exempt.
func Dynamic(m, other Mode) string {
	switch m {
	case other:
		return "same"
	}
	return "diff"
}
