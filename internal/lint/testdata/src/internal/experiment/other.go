package experiment

// Detach is a stray goroutine outside sweep.go in the same package.
func Detach(f func()) {
	go f() // want "goroutine outside"
}
