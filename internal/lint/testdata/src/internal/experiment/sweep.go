// Package experiment mirrors the real internal/experiment: goroutines
// are legal only in files that declare a concurrency boundary — this
// one. other.go has no pragma, so its stray go statement still trips
// nogo even though the package as a whole is sanctioned.
//
//dophy:concurrency-boundary -- fan-out over independent closures; joined before return
package experiment

// RunAll fans work out across workers; this file is the boundary.
func RunAll(fs []func()) {
	done := make(chan struct{})
	for _, f := range fs {
		f := f
		go func() {
			f()
			done <- struct{}{}
		}()
	}
	for range fs {
		<-done
	}
}
