// Package experiment mirrors the real internal/experiment: goroutines are
// legal only in sweep.go.
package experiment

// RunAll fans work out across workers; this file is the exemption.
func RunAll(fs []func()) {
	done := make(chan struct{})
	for _, f := range fs {
		f := f
		go func() {
			f()
			done <- struct{}{}
		}()
	}
	for range fs {
		<-done
	}
}
