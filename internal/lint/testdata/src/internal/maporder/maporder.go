// Package maporder exercises the maprange rule: ordered output from map
// iteration is flagged; the sorted-keys idiom is exempt.
package maporder

import (
	"bytes"
	"fmt"
	"io"
	"sort"
)

// Good is the canonical sorted-keys idiom: collect, sort, then emit.
func Good(m map[int]string) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

// GoodSlice sorts the accumulated values afterwards via sort.Slice.
func GoodSlice(m map[string]int) []string {
	names := []string{}
	for name := range m {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	return names
}

// GoodSum is commutative accumulation: no order leak.
func GoodSum(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}

// Print emits directly in map order.
func Print(m map[int]string) {
	for k, v := range m { // want "fmt.Println inside range over map"
		fmt.Println(k, v)
	}
}

// Values accumulates map-ordered values into a result slice.
func Values(m map[int]string) []string {
	var out []string
	for _, v := range m { // want "appending map-ordered values"
		out = append(out, v)
	}
	return out
}

// Unsorted collects keys but never sorts them.
func Unsorted(m map[int]string) []int {
	keys := []int{}
	for k := range m { // want "never sorted afterwards"
		keys = append(keys, k)
	}
	return keys
}

// Dump writes in map order through an io.Writer.
func Dump(w io.Writer, m map[string]int) {
	for k := range m { // want "Write call inside range over map"
		w.Write([]byte(k))
	}
}

// Buffered writes in map order into a bytes.Buffer.
func Buffered(m map[string]int) string {
	var buf bytes.Buffer
	for k := range m { // want "WriteString call inside range over map"
		buf.WriteString(k)
	}
	return buf.String()
}
