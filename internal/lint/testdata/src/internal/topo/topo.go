// Package topo is a stand-in for the real topology package, providing the
// Link type the densebound rule keys on and the typed-index surface the
// idxdomain rule keys on.
package topo

// Link is a directed link between adjacent nodes.
type Link struct{ From, To int }

// NodeID identifies a node; LinkIdx is a position in a LinkTable. These are
// the distinct integer domains idxdomain keeps apart.
type NodeID int32

type LinkIdx int32

// ShardID identifies a partition of the node set — the typed element
// index the ownercross rule accepts for shard-owned state.
type ShardID int32

// NoLink is the not-found sentinel of Index.
const NoLink LinkIdx = -1

// Sink is the collection root.
const Sink NodeID = 0

// LinkTable mirrors the real dense link table's lookup surface.
type LinkTable struct{ n int }

// Count is the exclusive upper bound for index loops.
func (t *LinkTable) Count() LinkIdx { return LinkIdx(t.n) }

// Link returns the link at table index i.
func (t *LinkTable) Link(i LinkIdx) Link { return Link{} }

// Index returns l's table index, or NoLink.
func (t *LinkTable) Index(l Link) LinkIdx { return NoLink }

// NeighborIndex returns l's position among From's neighbors — the
// neighbor-offset domain — or -1.
func (t *LinkTable) NeighborIndex(l Link) int { return -1 }
