// Package topo is a stand-in for the real topology package, providing the
// Link type the densebound rule keys on.
package topo

// Link is a directed link between adjacent nodes.
type Link struct{ From, To int }
