// Package sim mirrors the real internal/sim: wall clocks are banned.
package sim

import "time"

// Stamp reads the wall clock inside simulation code.
func Stamp() int64 {
	return time.Now().UnixNano() // want "wall-clock time.Now"
}

// Age measures elapsed wall time.
func Age(t time.Time) time.Duration {
	return time.Since(t) // want "wall-clock time.Since"
}
