// Package shard mirrors the real internal/sim/shard: the one non-cmd
// package sanctioned to spawn goroutines (the conservative-lookahead
// worker-per-shard engine). nogo and the determflow goroutine taint must
// stay silent here — but pooled-object hygiene still applies: shard-owned
// state may not retain another package's pooled objects across windows.
package shard

import "fixture/internal/pool"

// Engine runs one worker goroutine per shard beyond the first.
type Engine struct {
	start []chan float64
	done  chan struct{}
}

// Run spawns the sanctioned workers: no nogo/determflow diagnostic.
func (e *Engine) Run(shards int) {
	for i := 1; i < shards; i++ {
		go e.worker(i)
	}
}

func (e *Engine) worker(i int) {
	for range e.start[i] {
		e.done <- struct{}{}
	}
}

// Outbox leaks a pooled object across the shard boundary: sanctioning the
// goroutine does NOT sanction retaining recycled objects past a window.
type Outbox struct {
	last *pool.Obj // want "retains pooled pool.Obj"
}
