// Package shard mirrors the real internal/sim/shard: the file-scoped
// concurrency-boundary pragma sanctions the conservative-lookahead
// worker goroutines (nogo and the determflow goroutine taint stay
// silent), and in exchange the whole package opts into the ownership
// contract rules — ownercross, sendown and barrierorder. Pooled-object
// hygiene still applies: shard-owned state may not retain another
// package's pooled objects across windows.
//
//dophy:concurrency-boundary -- fixture worker-per-shard engine; state crosses only at barrier functions
package shard

import (
	"fixture/internal/pool"
	"fixture/internal/topo"
)

// Engine runs one worker goroutine per shard beyond the first.
type Engine struct {
	lookahead float64        //dophy:owner immutable
	start     []chan float64 //dophy:owner shard
	outbox    [][]float64    //dophy:owner shard
	merged    uint64         //dophy:owner engine
	windowEnd float64        //dophy:owner window
	done      chan struct{}
}

// New builds an engine; construction (New*/init) may write any domain.
func New(shards int, lookahead float64) *Engine {
	e := &Engine{done: make(chan struct{})}
	e.lookahead = lookahead
	e.start = make([]chan float64, shards)
	e.outbox = make([][]float64, shards)
	return e
}

// Run spawns the sanctioned workers: no nogo/determflow diagnostic.
func (e *Engine) Run(shards int) {
	for i := 1; i < shards; i++ {
		go e.worker(topo.ShardID(i))
	}
}

// worker is window code (it is a goroutine target). Its typed-index
// access to e.start is the sanctioned projection; the coordinator-state
// touches below are the two canonical window-phase violations.
func (e *Engine) worker(i topo.ShardID) {
	for range e.start[i] {
		e.merged++      // want "window code touches engine-owned field merged"
		e.windowEnd = 0 // want "window code writes window-frozen field windowEnd"
		e.done <- struct{}{}
	}
}

// head projects a shard-owned slice through a plain int: the owning
// shard of element k is not provable from the type.
//
//dophy:window
func (e *Engine) head(k int) float64 {
	return e.outbox[k][0] // want "indexed by untyped int"
}

// all hands the whole per-shard slice to window code: no element
// projection at all.
//
//dophy:window
func (e *Engine) all() [][]float64 {
	return e.outbox // want "must be accessed through a typed element index"
}

// Pending is coordinator code (no annotation): touching shard-owned
// state here needs a //dophy:barrier happens-before point.
func (e *Engine) Pending(k topo.ShardID) int {
	return len(e.start[k]) // want "accessed outside window code"
}

// Reset writes an immutable field after construction.
func (e *Engine) Reset(d float64) {
	e.lookahead = d // want "may only be written during construction"
}

// Merged is a sanctioned coordinator accessor: barrier functions may
// touch any domain.
//
//dophy:barrier
func (e *Engine) Merged() uint64 { return e.merged }

// carrier is a pooled continuation, recycled through fabric's free list.
type carrier struct {
	val float64
}

type fabric struct {
	free []*carrier
}

// release returns a carrier to the pool — an ownership transfer: the
// next taker owns it, so the post-append write below is a use-after-send.
//
//dophy:window
func (f *fabric) release(c *carrier) {
	//dophy:transfers -- c belongs to the next taker from the free list
	f.free = append(f.free, c)
	c.val = 0 // want "used after its ownership was transferred away"
}

// Outbox leaks a pooled object across the shard boundary: sanctioning the
// goroutine does NOT sanction retaining recycled objects past a window.
type Outbox struct {
	last *pool.Obj // want "retains pooled pool.Obj"
}
