package sim

import "fixture/helpers"

var last int64

// Tick is a simulated event handler: the helper call launders time.Now
// through two frames, which only the inter-procedural taint analysis sees.
func Tick() {
	last = helpers.Stamp() // want "call into helpers.Stamp carries nondeterminism from time.Now (chain: helpers.Stamp -> helpers.now -> time.Now)"
}
