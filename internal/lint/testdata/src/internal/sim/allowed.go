package sim

import "time"

// A justified waiver suppresses the diagnostic on the next line.
//
//dophy:allow nowalltime -- wall-clock is the quantity under test here
var now = time.Now
