package rng

// Source mirrors the real module's deterministic generator surface that the
// valrange contracts name.
type Source struct{ s uint64 }

// Bool returns true with probability p; p must lie in [0, 1].
func (r *Source) Bool(p float64) bool {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return float64(r.s>>11) < p*(1<<53)
}

// Geometric samples a geometric distribution; p must lie in [0, 1].
func (r *Source) Geometric(p float64) int {
	n := 1
	for !r.Bool(p) && n < 1<<20 {
		n++
	}
	return n
}
