// Package rng is the one place math/rand may appear (mirrors the real
// module's internal/rng exemption).
package rng

import "math/rand"

// New returns a seeded source; legal here and only here.
func New(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
