// The channel side of the blind spot: slabs cross a single-producer
// single-consumer hand-off once. The receive side freezes what it got; the
// send side publishes and then writes through an alias taken before the
// send — the shape sendown cannot see because the sent identifier itself
// is never touched again.
//
//dophy:concurrency-boundary -- fixture hand-off; slabs cross the channel once and are frozen on the consumer side
package sharedbuf

// slab is the hand-off unit; its payload is sealed at construction.
type slab struct {
	vals []float64 //dophy:owner immutable -- filled by the producer before the send
	// The result slot travels with the slab: once it crosses the channel
	// the consumer owns it, so writing through it is the one sanctioned
	// post-receive write.
	//
	//dophy:transfers -- ownership of the result slot moves with the slab to the consumer
	out []float64
}

// spawnDrain starts the consumer stage; sanctioned by the boundary pragma.
func spawnDrain(in <-chan *slab, outs chan<- float64) {
	go drainSlabs(in, outs)
}

// drainSlabs folds each slab and — the violation — caches the total back
// into the received payload it does not own, through an alias the
// ownercross field check cannot see.
func drainSlabs(in <-chan *slab, outs chan<- float64) {
	for s := range in {
		buf := s.vals
		tot := 0.0
		for _, v := range buf {
			tot += v
		}
		s.out[0] = tot // sanctioned: ownership of out travelled with the slab
		buf[0] = tot   // want "received values are frozen"
		outs <- tot
	}
	close(outs)
}

// publish sends each slab downstream and then rewrites the published
// payload through tail, an alias taken before the send.
func publish(out chan<- *slab, n int) {
	for i := 0; i < n; i++ {
		s := &slab{vals: make([]float64, 1), out: make([]float64, 1)}
		tail := s.vals
		//dophy:transfers -- the slab belongs to the consumer once sent
		out <- s
		tail[0] = float64(i) // want "after its //dophy:transfers send on line"
	}
	close(out)
}

// RunSlabs wires the two stages together.
func RunSlabs(n int) float64 {
	in := make(chan *slab, 1)
	outs := make(chan float64, 1)
	spawnDrain(in, outs)
	go publish(in, n)
	var sum float64
	for v := range outs {
		sum += v
	}
	return sum
}
