// Package sharedbuf pins the write-effect prover's coverage of the alias
// blind spot: a shared-slice mutation routed through an alias two calls
// deep. No channel send and no borrow is involved, so the sendown and
// borrowspan rules both pass this package — only the inter-procedural
// effect analysis attributes the leaf write back to the annotated root.
// The malformed-annotation hygiene shapes live here too.
package sharedbuf

// Smooth promises its callers the history buffer survives the call, then
// hands it down an alias chain that rewrites it two calls deep.
//
//dophy:readonly vals -- callers reuse the history buffer across epochs
func Smooth(vals []float64) float64 {
	mid(vals)
	return vals[0]
}

// mid only forwards: the alias hop that hides the write from any
// single-function check.
func mid(v []float64) { leafScale(v) }

// leafScale is the leaf mutation the prover must attribute to Smooth's
// parameter through two substitutions.
func leafScale(v []float64) {
	for i := range v {
		v[i] *= 0.5 // want "annotated //dophy:readonly (write chain: internal/sharedbuf.Smooth -> internal/sharedbuf.mid -> internal/sharedbuf.leafScale)"
	}
}

// hist is estimator-like state: a method chain that mutates the receiver
// under a readonly promise.
type hist struct{ bins []float64 }

// Snapshot claims to be a pure read but normalises the bins in place one
// call down.
//
//dophy:readonly recv -- snapshots must leave the accumulating bins intact
func (h *hist) Snapshot() []float64 {
	h.norm()
	return h.bins
}

func (h *hist) norm() {
	for i := range h.bins {
		h.bins[i] /= 2 // want "annotated //dophy:readonly (write chain: internal/sharedbuf.(*hist).Snapshot -> internal/sharedbuf.(*hist).norm)"
	}
}

// Drain promises sink stays un-written but passes it to an unresolvable
// func value: the analysis must assume the callee writes it.
//
//dophy:readonly sink -- the sink buffer is shared with the producer
func Drain(sink []float64, f func([]float64)) {
	f(sink) // want "which the effect analysis must assume writes it"
}

// hits is package-level state a noglobals path may not touch.
var hits int64

func bump() { hits++ } // want "write to hits on a //dophy:effects noglobals path (call chain: internal/sharedbuf.Tally -> internal/sharedbuf.bump)"

// Tally runs concurrently with the producer, so it must not write package
// state — but its counter helper does.
//
//dophy:effects noglobals -- runs on the estimation goroutine
func Tally(vals []float64) float64 {
	bump()
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum
}

// hook is a package-level extension point; calling it is unresolvable.
var hook func()

// RunHook sits on a noglobals path but dispatches through a func value the
// call graph cannot resolve.
//
//dophy:effects noglobals -- runs on the estimation goroutine
func RunHook() {
	if hook != nil {
		hook() // want "indirect call on a //dophy:effects noglobals path (internal/sharedbuf.RunHook)"
	}
}

// The hygiene shapes: each pragma below is malformed in exactly one way.

// badEmpty names nothing.
//
//dophy:readonly -- names nothing // want "malformed //dophy:readonly: name the receiver (recv) or the parameters"
func badEmpty(v []float64) float64 { return v[0] }

// badTwice repeats a name.
//
//dophy:readonly v v -- repeated name // want "names v twice"
func badTwice(v []float64) float64 { return v[0] }

// badRecv asks for a receiver on a plain function.
//
//dophy:readonly recv -- no receiver here // want "which has no receiver"
func badRecv(v []float64) float64 { return v[0] }

// tick is scalar-only: a readonly receiver protects nothing.
type tick struct{ n int }

// Total has nothing shared to keep un-written.
//
//dophy:readonly recv -- scalar receiver // want "no reference-typed storage; //dophy:readonly recv is vacuous"
func (t tick) Total() int { return t.n }

// badName names a parameter that does not exist.
//
//dophy:readonly bogus -- no such parameter // want "which is not a parameter of badName"
func badName(v []float64) float64 { return v[0] }

// badScalar names a scalar parameter.
//
//dophy:readonly n -- scalar parameter // want "no reference-typed storage; //dophy:readonly is vacuous"
func badScalar(v []float64, n int) float64 { return v[n] }

// badEffects asks for an unknown effect class.
//
//dophy:effects nukeglobals -- unknown class // want "malformed //dophy:effects: want 'noglobals'"
func badEffects(v []float64) float64 { return v[0] }

// inner exists to be embedded.
type inner struct{ p *float64 }

// wrapper pins the field-pragma hygiene: ownership cannot travel with an
// unnamed field, and a scalar field has nothing to hand over.
type wrapper struct {
	//dophy:transfers -- embedded // want "on embedded fields is not supported"
	inner
	//dophy:transfers -- scalar // want "has no reference-typed storage; nothing changes ownership"
	count int
}

// use keeps the hygiene-only decls referenced.
func use(w *wrapper, t tick) float64 {
	vals := []float64{1, 2}
	_ = badEmpty(vals)
	_ = badTwice(vals)
	_ = badRecv(vals)
	_ = badName(vals)
	_ = badScalar(vals, 0)
	_ = badEffects(vals)
	return float64(t.Total()+w.count) + *w.p
}
