// Package pool owns a free-listed (pooled) type, mirroring sim.Event.
package pool

// Obj is recycled through Pool's free list.
type Obj struct {
	ID   int
	next *Obj // same-package reference: fine
}

// Pool recycles Objs; the free field marks Obj as pooled.
type Pool struct {
	free []*Obj
	live int
}

// Get hands out a live Obj.
func (p *Pool) Get() *Obj {
	if n := len(p.free); n > 0 {
		o := p.free[n-1]
		p.free = p.free[:n-1]
		p.live++
		return o
	}
	p.live++
	return &Obj{}
}

// Put recycles an Obj; the caller's pointer is dead afterwards.
func (p *Pool) Put(o *Obj) {
	p.live--
	p.free = append(p.free, o)
}
