// Package trace violates the dense-indexing contract: per-link state in the
// restricted packages lives in flat vectors indexed by the link table, not
// in maps keyed by topo.Link.
package trace

import "fixture/internal/topo"

// Recorder keys hot-path counters by link.
type Recorder struct {
	counts map[topo.Link]int64 // want "keyed by topo.Link"
}

// Nested hides the link-keyed map one container deep.
type Nested struct {
	byEpoch []map[topo.Link]float64 // want "keyed by topo.Link"
}

// Boundary is a deliberate map-shaped export, waived with a justification.
type Boundary struct {
	//dophy:allow densebound -- public boundary keeps the map shape for callers
	Links map[topo.Link]float64
}

// Dense is the approved shape: flat state plus the table that indexes it.
type Dense struct {
	counts []int64
}

// ByName maps on a non-Link key, which is fine.
type ByName struct {
	schemes map[string]int
}
