// Package poolesc violates pooled-object hygiene by retaining pool.Obj
// pointers in long-lived state outside the owning package.
package poolesc

import "fixture/internal/pool"

// Holder keeps a raw pooled pointer across calls.
type Holder struct {
	last *pool.Obj // want "retains pooled pool.Obj"
}

// Table hides the pooled pointer inside a map value.
type Table struct {
	byID map[int]*pool.Obj // want "retains pooled pool.Obj"
}

// Owner holds the pool itself, which is fine: only the pooled elements
// are ownership-restricted.
type Owner struct {
	p *pool.Pool
}

// Use may touch an Obj transiently (locals are out of scope for the rule).
func (o *Owner) Use() int {
	obj := o.p.Get()
	defer o.p.Put(obj)
	return obj.ID
}
