// Package badrand violates the norand rule.
package badrand

import "math/rand"

// Roll draws from the shared global stream: nondeterministic.
func Roll() int {
	return rand.Intn(6) // want "use of math/rand.Intn"
}

// Fresh builds a private source, still outside internal/rng.
func Fresh(seed int64) *rand.Rand { // want "use of math/rand.Rand"
	src := rand.NewSource(seed) // want "use of math/rand.NewSource"
	return rand.New(src)        // want "use of math/rand.New"
}
