package badrand

import _ "math/rand" // want "import of math/rand is forbidden"
