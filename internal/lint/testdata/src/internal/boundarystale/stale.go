// This file declares a boundary but spawns nothing: the pragma is dead
// weight and must be deleted, like any stale waiver.
//
//dophy:concurrency-boundary -- exercises the stale-boundary diagnostic // want "spawns no goroutines"
package boundarystale

// Sequential has no go statement.
func Sequential(f func()) {
	f()
}
