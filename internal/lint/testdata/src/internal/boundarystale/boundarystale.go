// Package boundarystale exercises the boundary pragma's own hygiene:
// a boundary needs a justification.
//
//dophy:concurrency-boundary // want "has no justification"
package boundarystale

// Spawn is sanctioned by the (malformed) boundary pragma above, so the
// only diagnostic in this file is the missing justification.
func Spawn(f func()) {
	go f()
}
