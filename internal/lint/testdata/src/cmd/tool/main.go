// Command tool opts into goroutines the same way every package does now:
// a file-scoped //dophy:concurrency-boundary pragma (cmd/ keeps only its
// nowalltime exemption for free).
//
//dophy:concurrency-boundary -- CLI-side fan-out; the goroutine is joined before exit
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	fmt.Println(time.Since(start))
}
