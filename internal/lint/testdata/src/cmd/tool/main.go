// Command tool shows that cmd/ is exempt from nogo and nowalltime.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	fmt.Println(time.Since(start))
}
