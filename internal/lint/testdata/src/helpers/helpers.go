// Package helpers sits outside the deterministic core (not under
// internal/), so its wall-clock use is legal locally — but sink-scope code
// calling into it must be flagged at the boundary.
package helpers

import "time"

// Stamp returns a wall-clock tag, two calls away from time.Now as seen
// from any caller.
func Stamp() int64 { return now() }

func now() int64 { return time.Now().UnixNano() }
