// Package cgfix exercises call-graph construction corners: method values,
// deferred and go calls, and calls through function-typed struct fields.
package cgfix

// Worker carries a function-typed field that is called indirectly. The
// parameter name matters: signature matching canonicalises via
// types.TypeString, so "func(x int)" here lines up with the bound method
// value's receiverless signature.
type Worker struct {
	Hook func(x int)
}

// Method is the target reached through a bound method value.
func (w Worker) Method(x int) {}

func target(x int) {}

// UseMethodValue binds a method value into a local and calls through it.
func UseMethodValue(w Worker) {
	mv := w.Method
	mv(1)
}

// UseDefer defers a direct call and a method call.
func UseDefer(w Worker) {
	defer target(0)
	defer w.Method(3)
}

// UseField calls through a function-typed struct field: a mutable dispatch
// point, so the edge must not be marked Local.
func UseField(w Worker) {
	w.Hook(2)
}

// UseGo spawns a goroutine running a direct callee.
func UseGo() {
	go target(1)
}
