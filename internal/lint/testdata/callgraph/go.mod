module cgfix

go 1.21
