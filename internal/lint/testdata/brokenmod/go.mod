module brokenfix

go 1.21
