// Package ok is well-formed but imports a module-local package that does
// not exist, which must fail the whole load rather than silently lint an
// incomplete module.
package ok

import "brokenfix/missing"

var _ = missing.Value
