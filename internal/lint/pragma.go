package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// A pragma is one parsed //dophy:allow waiver comment:
//
//	//dophy:allow <rule> [<rule>...] -- <justification>
//
// It waives the named rules on its own line and on the line directly
// below it (so it can trail the offending statement or sit above it).
// Several rules may be waived at once when distinct analyses flag the
// same site for the same underlying reason.
type pragma struct {
	pos    token.Pos
	file   string
	line   int
	rules  []string
	reason string
	// used marks rules that actually suppressed a diagnostic (or cut a
	// taint chain) during the current Run; a rule that stays unused is a
	// stale waiver and a diagnostic itself.
	used map[string]bool
}

// parsePragmas scans a file's comments for waiver pragmas.
func parsePragmas(fset *token.FileSet, f *ast.File) []*pragma {
	var out []*pragma
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, PragmaPrefix)
			if !ok {
				continue
			}
			// Reject "//dophy:allowx"-style near-misses: the prefix must be
			// followed by whitespace (or nothing, which is a malformed
			// pragma reported below).
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue
			}
			spec, reason, hasReason := strings.Cut(rest, "--")
			p := &pragma{
				pos:   c.Pos(),
				rules: strings.Fields(spec),
				used:  map[string]bool{},
			}
			if hasReason {
				p.reason = strings.TrimSpace(reason)
			}
			position := fset.Position(c.Pos())
			p.file, p.line = position.Filename, position.Line
			out = append(out, p)
		}
	}
	return out
}

// pragmaIndex resolves waiver lookups for one Run and tracks usage.
type pragmaIndex struct {
	fset    *token.FileSet
	all     []*pragma
	byLoc   map[allowKey]*pragma // (file, line, rule) -> pragma
	unknown map[string]bool      // rule names that exist in this engine
}

// newPragmaIndex collects every pragma in the module and indexes the
// waived (file, line, rule) sites.
func (m *Module) newPragmaIndex(rules []Rule) *pragmaIndex {
	idx := &pragmaIndex{
		fset:    m.Fset,
		byLoc:   map[allowKey]*pragma{},
		unknown: map[string]bool{},
	}
	for _, r := range rules {
		idx.unknown[r.Name()] = true
	}
	// Rules enforced by the engine itself rather than the catalogue.
	idx.unknown[pragmaRuleName] = true
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			ps := parsePragmas(m.Fset, f.AST)
			idx.all = append(idx.all, ps...)
			for _, p := range ps {
				for _, rule := range p.rules {
					idx.byLoc[allowKey{p.file, p.line, rule}] = p
				}
			}
		}
	}
	return idx
}

// allowedAt reports whether rule is waived at the given position — by a
// pragma on the same line or on the line directly above — and marks the
// pragma used.
func (idx *pragmaIndex) allowedAt(rule string, pos token.Pos) bool {
	p := idx.fset.Position(pos)
	return idx.allowedLine(rule, p.Filename, p.Line)
}

func (idx *pragmaIndex) allowedLine(rule, file string, line int) bool {
	for _, l := range [2]int{line, line - 1} {
		if pr := idx.byLoc[allowKey{file, l, rule}]; pr != nil {
			pr.used[rule] = true
			return true
		}
	}
	return false
}

// pragmaRuleName is the rule identifier for diagnostics about the waiver
// pragmas themselves (malformed, unknown rule, stale).
const pragmaRuleName = "pragma"

// malformedPragmaDiags reports structurally broken pragmas: no rules
// named, a rule name the engine does not know, or a missing justification.
// These do not depend on which diagnostics fired, so they are stable
// across tag sets.
func (idx *pragmaIndex) malformedPragmaDiags() []Diagnostic {
	var out []Diagnostic
	report := func(p *pragma, msg string) {
		out = append(out, Diagnostic{
			Pos:  token.Position{Filename: p.file, Line: p.line, Column: 1},
			Rule: pragmaRuleName,
			Msg:  msg,
		})
	}
	for _, p := range idx.all {
		if len(p.rules) == 0 {
			report(p, "waiver names no rules; write //dophy:allow <rule> -- <justification>")
			continue
		}
		for _, r := range p.rules {
			if !idx.unknown[r] {
				report(p, "waiver names unknown rule \""+r+"\"")
			}
		}
		if p.reason == "" {
			report(p, "waiver has no justification; append ' -- <why this site is exempt>'")
		}
	}
	return out
}

// staleDiags reports pragmas that suppressed nothing during the Run: a
// waiver that no longer matches any diagnostic is dead weight that hides
// future regressions, so it must be deleted (or the code re-broken). A
// pragma waiving several rules is stale per rule. Stale results are
// tag-set dependent (a waiver may only bite under dophy_invariants), so
// callers linting several tag sets must intersect them.
func (idx *pragmaIndex) staleDiags() []Diagnostic {
	var out []Diagnostic
	for _, p := range idx.all {
		for _, r := range p.rules {
			if !idx.unknown[r] || p.used[r] {
				continue
			}
			out = append(out, Diagnostic{
				Pos:  token.Position{Filename: p.file, Line: p.line, Column: 1},
				Rule: pragmaRuleName,
				Msg:  "stale waiver: //dophy:allow " + r + " suppresses nothing here; delete it",
			})
		}
	}
	return out
}
