package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"regexp"
	"strings"
	"testing"
)

// TestOwnershipProseMatchesAnnotations reconciles the human-readable
// ownership comments on the borrowing surfaces with the machine-checked
// //dophy:returns annotations: a doc comment that promises scratch-aliasing
// ("aliases ...", "valid until the next ...", "pointer stays valid") must
// carry the annotation the borrowspan rule enforces, and a doc comment that
// promises caller ownership must not. Prose and contract drifting apart is
// exactly the bug class the typestate/borrow layer exists to close.
func TestOwnershipProseMatchesAnnotations(t *testing.T) {
	files := []string{
		"../mat/mat.go",
		"../tomo/lsq/lsq.go",
		"../tomo/minc/minc.go",
		"../tomo/geomle/arena.go",
		"../trace/trace.go",
	}
	borrowProse := regexp.MustCompile(
		`aliases the \w+'s (scratch|backing)|aliases (s\.x|est\.out|e\.out|r\.counts)|valid until the next|pointer stays valid`)
	callerOwns := regexp.MustCompile(`caller owns the returned`)

	borrowed, owned := 0, 0
	fset := token.NewFileSet()
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			doc := fd.Doc.Text()
			annotated := false
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(c.Text, ReturnsPragma) {
					annotated = true
				}
			}
			name := fd.Name.Name
			if borrowProse.MatchString(doc) {
				borrowed++
				if !annotated {
					t.Errorf("%s: %s's doc promises a borrowed result but the declaration lacks %s borrowed(recv)",
						path, name, ReturnsPragma)
				}
			}
			if callerOwns.MatchString(doc) {
				owned++
				if annotated {
					t.Errorf("%s: %s's doc promises caller ownership but the declaration is annotated %s",
						path, name, ReturnsPragma)
				}
			}
		}
	}
	// The patterns must keep biting: these floors track the surfaces the
	// borrow layer annotates today, so a reworded comment that slips out of
	// the reconciliation shows up as a count drop, not silent success.
	if borrowed < 7 {
		t.Errorf("borrow-prose pattern matched %d functions, want >= 7 (did a doc comment drift?)", borrowed)
	}
	if owned < 1 {
		t.Errorf("caller-owns pattern matched %d functions, want >= 1 (did NNLS's doc drift?)", owned)
	}
}
