package lint

import (
	"strings"
	"testing"
)

// TestParseStateDFAValid checks the happy path: clauses parse into the
// expected transition table and the printer emits the canonical form.
func TestParseStateDFAValid(t *testing.T) {
	spec := "new: Solve -> solved; solved: Solve|SolveWarm -> solved"
	d, err := parseStateDFA(spec)
	if err != nil {
		t.Fatalf("parseStateDFA(%q): %v", spec, err)
	}
	if got := d.initial(); got != "new" {
		t.Errorf("initial() = %q, want new", got)
	}
	steps := []struct {
		from, method, to string
		ok               bool
	}{
		{"new", "Solve", "solved", true},
		{"new", "SolveWarm", "", false},
		{"solved", "Solve", "solved", true},
		{"solved", "SolveWarm", "solved", true},
		{"solved", "Reset", "", false},
	}
	for _, s := range steps {
		to, ok := d.step(s.from, s.method)
		if ok != s.ok || (ok && to != s.to) {
			t.Errorf("step(%q, %q) = %q, %v; want %q, %v", s.from, s.method, to, ok, s.to, s.ok)
		}
	}
	if !d.tracked["Solve"] || !d.tracked["SolveWarm"] {
		t.Errorf("tracked = %v, want Solve and SolveWarm", d.tracked)
	}
	if got := d.String(); got != spec {
		t.Errorf("String() = %q, want %q", got, spec)
	}
}

// TestParseStateDFAErrors checks that malformed specs are rejected with a
// message naming the problem and a byte offset inside the offending part,
// so addSpec can point the diagnostic at the exact column of the pragma.
func TestParseStateDFAErrors(t *testing.T) {
	cases := []struct {
		name, spec, wantMsg string
		wantOff             int
	}{
		{"empty", "   ", "empty spec", 0},
		{"empty clause", "a: X -> b;; b: X -> b", "empty clause", 10},
		{"no colon", "new Solve -> solved", "has no ':'", 0},
		{"no arrow", "idle: Run done", "has no '->'", 5},
		{"duplicate clause", "a: X -> b; a: Y -> b", "duplicate clause for state \"a\"", 10},
		{"duplicate method", "a: X -> b, X -> a", "two transitions for method X", 10},
		{"bad state name", "9a: X -> b", "not a valid state or method name", 0},
		{"bad method name", "a: 9x -> b", "not a valid state or method name", 3},
		{"bad target name", "a: X -> 9b", "not a valid state or method name", 8},
		{"unreachable", "a: X -> b; c: X -> a", "state \"c\" is unreachable from the initial state \"a\"", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := parseStateDFA(tc.spec)
			if err == nil {
				t.Fatalf("parseStateDFA(%q) = %s, want error containing %q", tc.spec, d.String(), tc.wantMsg)
			}
			se, ok := err.(*specError)
			if !ok {
				t.Fatalf("parseStateDFA(%q) error type %T, want *specError", tc.spec, err)
			}
			if !strings.Contains(se.msg, tc.wantMsg) {
				t.Errorf("parseStateDFA(%q) error %q, want substring %q", tc.spec, se.msg, tc.wantMsg)
			}
			if se.off != tc.wantOff {
				t.Errorf("parseStateDFA(%q) offset %d, want %d", tc.spec, se.off, tc.wantOff)
			}
		})
	}
}

// FuzzStateDFA checks that the printer and parser are inverse on every
// accepted spec: parse -> String -> parse must succeed and be a fixpoint.
func FuzzStateDFA(f *testing.F) {
	f.Add("new: Solve -> solved; solved: Solve|SolveWarm -> solved")
	f.Add("fresh: Subscribe -> fresh, RunEpoch -> running; running: RunEpoch -> running")
	f.Add("raw: DiffFrom -> diffed; diffed: DiffFrom|PathDirty -> diffed")
	f.Add("live: At|Cancelled -> live")
	f.Add("a: X -> b")
	f.Add("a:X->a;;")
	f.Add("a: X -> b; b: -> a")
	f.Fuzz(func(t *testing.T, spec string) {
		d, err := parseStateDFA(spec)
		if err != nil {
			return
		}
		printed := d.String()
		d2, err := parseStateDFA(printed)
		if err != nil {
			t.Fatalf("round-trip parse of %q (from %q) failed: %v", printed, spec, err)
		}
		if again := d2.String(); again != printed {
			t.Fatalf("String not a fixpoint: %q -> %q (from %q)", printed, again, spec)
		}
	})
}
