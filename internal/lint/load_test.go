package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadFailsOnBrokenSubdirectory guards the fatality of module-local
// load failures: a package that cannot be loaded means other packages were
// type-checked against a hole, so Load must error out instead of returning
// a module whose diagnostics would be silently incomplete (and letting
// dophy-lint exit 0 over unlinted code).
func TestLoadFailsOnBrokenSubdirectory(t *testing.T) {
	mod, err := Load("testdata/brokenmod", LoadConfig{})
	if err == nil {
		t.Fatal("Load returned nil error for a module with an unresolvable local import; load failures must be fatal")
	}
	if mod != nil {
		t.Errorf("Load returned a non-nil module alongside the error")
	}
	if !strings.Contains(err.Error(), "brokenfix/missing") {
		t.Errorf("load error should name the unresolvable import brokenfix/missing, got: %v", err)
	}
}

// TestLoadHealthyFixture pins the complementary happy path on the same
// loader: the main fixture module loads without error.
func TestLoadHealthyFixture(t *testing.T) {
	mod, err := Load("testdata/src", LoadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(mod.Packages) == 0 {
		t.Fatal("fixture module loaded zero packages")
	}
}

// writeTree materialises a map of relative path -> contents under a fresh
// temp directory and returns the root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestLoadMalformedRoots table-drives the loader's fatal paths through
// synthetic module roots — the errors dophy-lint turns into exit 2. Each
// failure must be an error from Load, never a half-loaded module.
func TestLoadMalformedRoots(t *testing.T) {
	cases := []struct {
		name    string
		files   map[string]string
		wantErr string
	}{
		{
			name:    "missing go.mod",
			files:   map[string]string{"a.go": "package a\n"},
			wantErr: "go.mod",
		},
		{
			name: "empty module directive",
			files: map[string]string{
				"go.mod": "module\n\ngo 1.21\n",
				"a.go":   "package a\n",
			},
			wantErr: "no module directive",
		},
		{
			name: "unparsable source",
			files: map[string]string{
				"go.mod": "module broken\n\ngo 1.21\n",
				"a.go":   "package a\n\nfunc {\n",
			},
			wantErr: "a.go",
		},
		{
			name: "import of missing sibling package",
			files: map[string]string{
				"go.mod": "module broken\n\ngo 1.21\n",
				"a.go":   "package a\n\nimport _ \"broken/missing\"\n",
			},
			wantErr: "broken/missing",
		},
		{
			name: "all files excluded by build tags",
			files: map[string]string{
				"go.mod": "module broken\n\ngo 1.21\n",
				"a.go":   "//go:build some_tag_never_set\n\npackage a\n",
			},
			wantErr: "no buildable Go files",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			root := writeTree(t, tc.files)
			mod, err := Load(root, LoadConfig{})
			if err == nil {
				t.Fatalf("Load succeeded on a malformed root; want error containing %q", tc.wantErr)
			}
			if mod != nil {
				t.Error("Load returned a non-nil module alongside the error")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("Load error = %v; want it to contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestLoadBuildTagVariants pins the tag semantics the two-pass lint run
// relies on: a //go:build dophy_invariants file is in scope exactly when
// the tag is configured, host-platform and go1.x tags are always
// satisfied, and foreign-platform files stay excluded under every set.
func TestLoadBuildTagVariants(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":   "module tagged\n\ngo 1.21\n",
		"base.go":  "package a\n\nconst Base = 1\n",
		"gated.go": "//go:build dophy_invariants\n\npackage a\n\nconst Gated = 2\n",
		"plat.go":  "//go:build linux || darwin\n\npackage a\n\nconst Plat = 3\n",
		"ver.go":   "//go:build go1.21\n\npackage a\n\nconst Ver = 4\n",
		"other.go": "//go:build windows\n\npackage a\n\nconst Other = 5\n",
	})
	fileSet := func(tags []string) map[string]bool {
		t.Helper()
		mod, err := Load(root, LoadConfig{Tags: tags})
		if err != nil {
			t.Fatalf("Load(tags=%v): %v", tags, err)
		}
		if len(mod.Packages) != 1 {
			t.Fatalf("Load(tags=%v): %d packages, want 1", tags, len(mod.Packages))
		}
		names := map[string]bool{}
		for _, f := range mod.Packages[0].Files {
			names[f.Name] = true
		}
		return names
	}
	cases := []struct {
		tags []string
		want map[string]bool
	}{
		{nil, map[string]bool{"base.go": true, "plat.go": true, "ver.go": true}},
		{[]string{"dophy_invariants"}, map[string]bool{"base.go": true, "gated.go": true, "plat.go": true, "ver.go": true}},
	}
	for _, tc := range cases {
		got := fileSet(tc.tags)
		for name := range tc.want {
			if !got[name] {
				t.Errorf("tags=%v: %s excluded, want included", tc.tags, name)
			}
		}
		for name := range got {
			if !tc.want[name] {
				t.Errorf("tags=%v: %s included, want excluded", tc.tags, name)
			}
		}
	}
}
