package lint

import (
	"strings"
	"testing"
)

// TestLoadFailsOnBrokenSubdirectory guards the fatality of module-local
// load failures: a package that cannot be loaded means other packages were
// type-checked against a hole, so Load must error out instead of returning
// a module whose diagnostics would be silently incomplete (and letting
// dophy-lint exit 0 over unlinted code).
func TestLoadFailsOnBrokenSubdirectory(t *testing.T) {
	mod, err := Load("testdata/brokenmod", LoadConfig{})
	if err == nil {
		t.Fatal("Load returned nil error for a module with an unresolvable local import; load failures must be fatal")
	}
	if mod != nil {
		t.Errorf("Load returned a non-nil module alongside the error")
	}
	if !strings.Contains(err.Error(), "brokenfix/missing") {
		t.Errorf("load error should name the unresolvable import brokenfix/missing, got: %v", err)
	}
}

// TestLoadHealthyFixture pins the complementary happy path on the same
// loader: the main fixture module loads without error.
func TestLoadHealthyFixture(t *testing.T) {
	mod, err := Load("testdata/src", LoadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(mod.Packages) == 0 {
		t.Fatal("fixture module loaded zero packages")
	}
}
