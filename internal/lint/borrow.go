package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the borrow layer: annotations for methods whose results
// alias receiver-owned scratch, and the borrowspan rule that checks the two
// ways such a result can outlive its validity.
//
// Annotation grammar (in a method's doc comment):
//
//	//dophy:returns borrowed(recv) [-- <reason>]
//	    The method's reference-typed results alias storage owned by the
//	    receiver. The caller gets a borrow, not a value: it may read it,
//	    pass it down a call, or copy it out — but not retain it.
//	//dophy:invalidates [-- <reason>]
//	    Calling the method revokes every borrow previously handed out by
//	    the same receiver (typically the scratch is about to be rewritten).
//
// The borrowspan rule reports, per function body and lexically (the same
// discipline as the sendown post-transfer scan):
//
//  1. reads of a borrowed value after a later invalidating call on the
//     same receiver path (e.g. x := s.Solve(...); s.Solve(...); use(x));
//  2. stores that let the alias escape the frame: assignment into a struct
//     field or element, composite-literal fields, channel sends (unless
//     sanctioned by //dophy:transfers), and appends that keep the alias
//     (append(dst, x) — while append(dst, x...) of a scalar-element slice
//     is an explicit copy and is clean);
//  3. returning a borrowed value from a function that is not itself
//     annotated //dophy:returns borrowed(recv).
//
// Honest limits: borrows are tracked per lexical binding, so loop-carried
// reads (borrow in iteration i, invalidate in i+1) and aliases made by
// plain `y := x` copies are out of scope; passing a borrow to a callee is
// treated as a read, trusting the callee not to retain it.

const (
	// ReturnsPragma declares what a method's results are borrowed from.
	ReturnsPragma = "//dophy:returns"
	// InvalidatesPragma marks a method call as revoking the receiver's
	// outstanding borrows.
	InvalidatesPragma = "//dophy:invalidates"
)

// borrowInfo is the module's parsed borrow annotation set.
type borrowInfo struct {
	returns     map[*types.Func]token.Pos
	invalidates map[*types.Func]token.Pos
	annDiags    []contractDiag
}

// borrowInfoOf parses (once) every borrow annotation in the module.
func (m *Module) borrowInfoOf() *borrowInfo {
	if m.bwInfo != nil {
		return m.bwInfo
	}
	bi := &borrowInfo{returns: map[*types.Func]token.Pos{}, invalidates: map[*types.Func]token.Pos{}}
	m.bwInfo = bi
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			bi.collectFile(pkg, file)
		}
	}
	return bi
}

func (bi *borrowInfo) collectFile(pkg *Package, file *File) {
	bad := func(pos token.Pos, format string, args ...any) {
		bi.annDiags = append(bi.annDiags, contractDiag{rule: "borrowspan", pkg: pkg, pos: pos,
			msg: fmt.Sprintf(format, args...)})
	}
	for _, decl := range file.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
		for _, cm := range fd.Doc.List {
			if arg, ok := directiveArg(cm.Text, ReturnsPragma); ok {
				spec, _, _ := strings.Cut(arg, "--")
				if strings.TrimSpace(spec) != "borrowed(recv)" {
					bad(cm.Pos(), "malformed //dophy:returns: want 'borrowed(recv)', got %q", strings.TrimSpace(spec))
					continue
				}
				if fd.Recv == nil {
					bad(cm.Pos(), "//dophy:returns borrowed(recv) on %s, which has no receiver to borrow from", fd.Name.Name)
					continue
				}
				if fn == nil {
					continue
				}
				sig := fn.Type().(*types.Signature)
				hasRef := false
				for i := 0; i < sig.Results().Len(); i++ {
					if isRefType(sig.Results().At(i).Type()) {
						hasRef = true
					}
				}
				if !hasRef {
					bad(cm.Pos(), "//dophy:returns borrowed(recv) on %s, but no result is reference-typed; nothing can alias the receiver", fd.Name.Name)
					continue
				}
				bi.returns[fn] = cm.Pos()
			}
			if _, ok := directiveArg(cm.Text, InvalidatesPragma); ok {
				if fd.Recv == nil {
					bad(cm.Pos(), "//dophy:invalidates on %s, which has no receiver whose borrows it could revoke", fd.Name.Name)
					continue
				}
				if fn != nil {
					bi.invalidates[fn] = cm.Pos()
				}
			}
		}
	}
}

// borrowDiags runs (once) the whole-module borrow analysis and caches the
// diagnostics for per-package replay by the borrowspan rule.
func (m *Module) borrowDiags() []contractDiag {
	if m.bwDone {
		return m.bwDiags
	}
	m.bwDone = true
	bi := m.borrowInfoOf()
	diags := append([]contractDiag{}, bi.annDiags...)
	if len(bi.returns) > 0 || len(bi.invalidates) > 0 {
		cg := m.CallGraph()
		ci := m.contractInfo()
		for _, n := range cg.order {
			if n.Decl.Body == nil {
				continue
			}
			bw := &bwChecker{mod: m, info: bi, con: ci, node: n}
			bw.check()
			diags = append(diags, bw.diags...)
		}
	}
	m.bwDiags = diags
	return diags
}

// bwCreate is one borrow creation: a call to a returns-borrowed method.
type bwCreate struct {
	call     *ast.CallExpr
	sel      *ast.SelectorExpr
	pos      token.Pos
	recvPath string
	callee   *types.Func
}

// bwInval is one invalidating call on a resolvable receiver path.
type bwInval struct {
	pos      token.Pos
	recvPath string
	name     string
	line     int
}

// bwBindEvent is one binding of a variable: either a borrow creation or a
// plain reassignment that replaces the borrow with an unrelated value.
type bwBindEvent struct {
	pos    token.Pos
	create *bwCreate // nil for a plain rebind
}

// bwChecker scans one function body.
type bwChecker struct {
	mod  *Module
	info *borrowInfo
	con  *contractInfo
	node *FuncNode

	creates  []*bwCreate
	invals   []bwInval
	binds    map[types.Object][]bwBindEvent
	bindPos  map[token.Pos]bool // ident positions that ARE bindings, not reads
	uses     map[types.Object][]token.Pos
	enclosed bool // the enclosing function is itself returns-borrowed
	diags    []contractDiag
}

func (bw *bwChecker) report(pos token.Pos, format string, args ...any) {
	bw.diags = append(bw.diags, contractDiag{rule: "borrowspan", pkg: bw.node.Pkg, pos: pos,
		msg: fmt.Sprintf(format, args...)})
}

// bwPath renders a receiver expression as a root-object + field chain key
// ("s", "est.nnls"), or "" when the receiver is not a simple chain.
func bwPath(info *types.Info, e ast.Expr) string {
	e = ast.Unparen(e)
	switch v := e.(type) {
	case *ast.Ident:
		if obj := objectOf(info, v); obj != nil {
			return fmt.Sprintf("%p", obj)
		}
	case *ast.SelectorExpr:
		if s := info.Selections[v]; s != nil && s.Kind() != types.FieldVal {
			return ""
		}
		if base := bwPath(info, v.X); base != "" {
			return base + "." + v.Sel.Name
		}
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return bwPath(info, v.X)
		}
	}
	return ""
}

// bwPathName is the human-readable form of the same chain, for messages.
func bwPathName(e ast.Expr) string {
	e = ast.Unparen(e)
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		if base := bwPathName(v.X); base != "" {
			return base + "." + v.Sel.Name
		}
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return bwPathName(v.X)
		}
	}
	return "?"
}

func (bw *bwChecker) check() {
	info := bw.node.Pkg.Info
	if fn, ok := info.Defs[bw.node.Decl.Name].(*types.Func); ok {
		_, bw.enclosed = bw.info.returns[fn]
	}
	bw.binds = map[types.Object][]bwBindEvent{}
	bw.bindPos = map[token.Pos]bool{}
	bw.uses = map[types.Object][]token.Pos{}

	// pendingBind defers creation resolution to after the walk: the AST
	// visits Lhs idents before the Rhs calls that create the borrows.
	type pendingBind struct {
		obj    types.Object
		pos    token.Pos
		call   *ast.CallExpr
		result int
	}
	var pending []pendingBind
	createByCall := map[*ast.CallExpr]*bwCreate{}
	var stack []ast.Node
	ast.Inspect(bw.node.Decl.Body, func(x ast.Node) bool {
		if x == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, x)
		switch v := x.(type) {
		case *ast.CallExpr:
			sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := info.Selections[sel]
			if s == nil || s.Kind() != types.MethodVal {
				return true
			}
			callee, _ := s.Obj().(*types.Func)
			if callee == nil {
				return true
			}
			path := bwPath(info, sel.X)
			if _, isCreate := bw.info.returns[callee]; isCreate {
				c := &bwCreate{call: v, sel: sel, pos: v.Pos(), recvPath: path, callee: callee}
				bw.creates = append(bw.creates, c)
				createByCall[v] = c
				bw.checkStoreContext(v, stack, c, nil)
			}
			if _, isInval := bw.info.invalidates[callee]; isInval && path != "" {
				bw.invals = append(bw.invals, bwInval{pos: v.Pos(), recvPath: path, name: callee.Name(),
					line: bw.mod.Fset.Position(v.Pos()).Line})
			}
		case *ast.Ident:
			obj, _ := objectOf(info, v).(*types.Var)
			if obj == nil {
				return true
			}
			// Is this ident a binding target (Lhs of an assignment)?
			if as, i := bw.lhsOf(stack); as != nil {
				pb := pendingBind{obj: obj, pos: v.Pos()}
				if len(as.Rhs) == len(as.Lhs) {
					pb.call, _ = ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
				} else if len(as.Rhs) == 1 {
					pb.call, _ = ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
					pb.result = i
				}
				pending = append(pending, pb)
				bw.bindPos[v.Pos()] = true
				return true
			}
			bw.uses[obj] = append(bw.uses[obj], v.Pos())
		}
		return true
	})
	for _, pb := range pending {
		var create *bwCreate
		if pb.call != nil {
			create = bw.resolveCreate(createByCall, pb.call, pb.result, info)
		}
		bw.binds[pb.obj] = append(bw.binds[pb.obj], bwBindEvent{pos: pb.pos, create: create})
	}

	bw.checkBoundBorrows()
}

// lhsOf reports whether the innermost statement context makes the current
// ident (top of stack) an assignment target, and at which Lhs index.
func (bw *bwChecker) lhsOf(stack []ast.Node) (*ast.AssignStmt, int) {
	id := stack[len(stack)-1]
	for pi := len(stack) - 2; pi >= 0; pi-- {
		switch p := stack[pi].(type) {
		case *ast.ParenExpr:
			id = p
			continue
		case *ast.AssignStmt:
			for i, lhs := range p.Lhs {
				if lhs == id {
					return p, i
				}
			}
			return nil, 0
		default:
			return nil, 0
		}
	}
	return nil, 0
}

// resolveCreate maps an RHS call to a creation if its result-th result is
// reference-typed (only those bind borrows; an error result does not).
func (bw *bwChecker) resolveCreate(byCall map[*ast.CallExpr]*bwCreate, call *ast.CallExpr, result int, info *types.Info) *bwCreate {
	c := byCall[call]
	if c == nil {
		return nil
	}
	sig, ok := c.callee.Type().(*types.Signature)
	if !ok || result >= sig.Results().Len() {
		return nil
	}
	if !isRefType(sig.Results().At(result).Type()) {
		return nil
	}
	return c
}

// transferSanctioned reports whether the statement at pos carries (or
// follows) a //dophy:transfers pragma, which hands the borrow off wholesale.
func (bw *bwChecker) transferSanctioned(stack []ast.Node) bool {
	var stmt ast.Stmt
	for pi := len(stack) - 1; pi >= 0; pi-- {
		if s, ok := stack[pi].(ast.Stmt); ok {
			stmt = s
			break
		}
	}
	if stmt == nil {
		return false
	}
	p := bw.mod.Fset.Position(stmt.Pos())
	for _, ta := range bw.con.transfers {
		if ta.pkg == bw.node.Pkg && ta.file == p.Filename && (ta.line == p.Line || ta.line == p.Line-1) {
			return true
		}
	}
	return false
}

// checkStoreContext flags contexts that retain an alias to a borrowed
// value. node is either the creation call itself (direct use) or an ident
// bound to a borrow; c describes the borrow.
func (bw *bwChecker) checkStoreContext(node ast.Expr, stack []ast.Node, c *bwCreate, obj types.Object) {
	info := bw.node.Pkg.Info
	what := fmt.Sprintf("the result of %s (borrowed from %s's scratch)", c.callee.Name(), bwPathName(c.sel.X))
	if obj != nil {
		what = fmt.Sprintf("%s (borrowed from %s's scratch by %s)", obj.Name(), bwPathName(c.sel.X), c.callee.Name())
	}
	// Find the effective parent, skipping parens.
	n := ast.Node(node)
	pi := len(stack) - 2
	for pi >= 0 {
		if pe, ok := stack[pi].(*ast.ParenExpr); ok {
			n, pi = pe, pi-1
			continue
		}
		break
	}
	if pi < 0 {
		return
	}
	switch p := stack[pi].(type) {
	case *ast.AssignStmt:
		if len(p.Lhs) != len(p.Rhs) {
			return
		}
		for i, rhs := range p.Rhs {
			if rhs != n {
				continue
			}
			if _, isIdent := ast.Unparen(p.Lhs[i]).(*ast.Ident); isIdent {
				continue // plain rebinding; tracked as a borrow binding
			}
			if bw.transferSanctioned(stack) {
				continue
			}
			bw.report(node.Pos(), "%s is stored into %s, retaining the alias; copy it out (or annotate the hand-off //dophy:transfers)",
				what, bwPathName(p.Lhs[i]))
		}
	case *ast.KeyValueExpr:
		if p.Value != n {
			return
		}
		if pi-1 >= 0 {
			if _, isLit := stack[pi-1].(*ast.CompositeLit); isLit && !bw.transferSanctioned(stack) {
				bw.report(node.Pos(), "%s is stored into a composite literal, retaining the alias past the receiver's next reuse; copy it out", what)
			}
		}
	case *ast.CompositeLit:
		if !bw.transferSanctioned(stack) {
			bw.report(node.Pos(), "%s is stored into a composite literal, retaining the alias past the receiver's next reuse; copy it out", what)
		}
	case *ast.SendStmt:
		if p.Value == n && !bw.transferSanctioned(stack) {
			bw.report(node.Pos(), "%s is sent over a channel, handing the alias to another goroutine; copy it out (or annotate the send //dophy:transfers)", what)
		}
	case *ast.CallExpr:
		id, ok := ast.Unparen(p.Fun).(*ast.Ident)
		if !ok || id.Name != "append" || !isBuiltin(info.Uses[id]) {
			return // ordinary call argument: a read, the callee must not retain it
		}
		for i, arg := range p.Args {
			if arg != n || i == 0 {
				continue
			}
			if p.Ellipsis.IsValid() && i == len(p.Args)-1 {
				// append(dst, x...): element-wise copy. Only flag when the
				// elements themselves are references (copying []T of
				// pointers still retains aliases).
				if tv, ok := info.Types[node]; ok {
					if sl, ok := tv.Type.Underlying().(*types.Slice); ok && !isRefType(sl.Elem()) {
						continue
					}
				}
				bw.report(node.Pos(), "%s is spread into an append, but its elements are references: the aliases survive the copy", what)
				continue
			}
			if !bw.transferSanctioned(stack) {
				bw.report(node.Pos(), "%s is appended (aliased, not copied) into a longer-lived slice; append a copy instead", what)
			}
		}
	case *ast.ReturnStmt:
		if !bw.enclosed {
			bw.report(node.Pos(), "%s is returned from %s, which is not annotated //dophy:returns borrowed(recv); the caller cannot know the value is scratch",
				what, bw.node.Fn.Name())
		}
	}
}

// checkBoundBorrows resolves, per use of a borrow-bound variable, whether
// the latest binding is a live borrow, then applies the read-after-
// invalidate and store checks.
func (bw *bwChecker) checkBoundBorrows() {
	info := bw.node.Pkg.Info
	for obj, events := range bw.binds {
		hasBorrow := false
		for _, ev := range events {
			if ev.create != nil {
				hasBorrow = true
			}
		}
		if !hasBorrow {
			continue
		}
		sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
		uses := bw.uses[obj]
		sort.Slice(uses, func(i, j int) bool { return uses[i] < uses[j] })
		for _, use := range uses {
			// Latest binding at or before this use.
			var cur *bwBindEvent
			for i := range events {
				if events[i].pos <= use {
					cur = &events[i]
				}
			}
			if cur == nil || cur.create == nil || cur.create.recvPath == "" {
				continue
			}
			c := cur.create
			for _, inv := range bw.invals {
				if inv.recvPath != c.recvPath || inv.pos <= c.pos || inv.pos >= use {
					continue
				}
				bw.report(use, "%s was borrowed from %s's scratch (line %d) but %s was called on line %d, invalidating it; read it before the next %s or copy it out",
					obj.Name(), bwPathName(c.sel.X),
					bw.mod.Fset.Position(c.pos).Line, inv.name, inv.line, inv.name)
				break
			}
		}
	}
	// Store checks for bound borrows need the parent context, which the
	// first pass recorded positionally; re-walk with the binding map known.
	var stack []ast.Node
	ast.Inspect(bw.node.Decl.Body, func(x ast.Node) bool {
		if x == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, x)
		id, ok := x.(*ast.Ident)
		if !ok || bw.bindPos[id.Pos()] {
			return true
		}
		obj, _ := objectOf(info, id).(*types.Var)
		if obj == nil {
			return true
		}
		events := bw.binds[obj]
		var cur *bwBindEvent
		for i := range events {
			if events[i].pos <= id.Pos() {
				cur = &events[i]
			}
		}
		if cur == nil || cur.create == nil {
			return true
		}
		bw.checkStoreContext(id, stack, cur.create, obj)
		return true
	})
}

// ---------------------------------------------------------------------------
// Rule borrowspan: borrowed scratch never outlives its validity.
//
// //dophy:returns borrowed(recv) methods hand out aliases of receiver-owned
// scratch; //dophy:invalidates methods revoke them. The rule catches reads
// after revocation and stores that retain the alias — the generalisation of
// poolescape/sendown from pooled events to every scratch-reusing API.
// ---------------------------------------------------------------------------

type ruleBorrowSpan struct{}

func (ruleBorrowSpan) Name() string { return "borrowspan" }

func (ruleBorrowSpan) Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	for _, d := range m.borrowDiags() {
		if d.pkg == pkg && d.rule == "borrowspan" {
			report(d.pos, "%s", d.msg)
		}
	}
}
