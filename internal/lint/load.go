// Package lint is dophy-lint's rule engine: a whole-module static analysis
// built on nothing but the standard library's go/ast, go/parser and
// go/types, so it runs offline in any environment that can build the repo.
//
// The engine loads every package in the module (respecting //go:build
// constraints for a configurable tag set), type-checks them against each
// other with a module-local importer, and applies one Rule per
// determinism/ownership invariant. See rules.go for the rule catalogue and
// DESIGN.md ("Determinism & invariants") for the contract being enforced.
//
// Diagnostics can be waived in place with a pragma comment on the offending
// line or the line directly above:
//
//	//dophy:allow <rule> -- <justification>
//
// Waivers are deliberate, reviewable exceptions (e.g. the single wall-clock
// shim behind experiment T4's throughput row).
package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// File is one parsed, lintable source file.
type File struct {
	Name string // path relative to the module root
	AST  *ast.File
}

// Package is one loaded module package with best-effort type information.
type Package struct {
	// Path is the full import path (module path + "/" + RelPath).
	Path string
	// RelPath is the module-relative directory ("" for the root package).
	RelPath string
	Files   []*File
	Types   *types.Package
	Info    *types.Info
	// TypeErrors collects type-checker complaints. The engine tolerates
	// them (rules work on whatever resolved), but the runner can surface
	// them in verbose mode.
	TypeErrors []error
}

// Module is a fully loaded module ready for rule application.
type Module struct {
	Path     string // module path from go.mod
	Root     string // absolute filesystem root
	Fset     *token.FileSet
	Packages []*Package // sorted by RelPath

	// pooled lazily caches the module-wide pooled-type registry used by
	// the poolescape rule (see rules.go).
	pooled map[types.Object]bool
	// cg, implCache and named lazily cache the whole-module call graph
	// and its class-hierarchy support data (see callgraph.go).
	cg        *CallGraph
	implCache map[*types.Interface][]types.Type
	named     []types.Type
	// hotDiags caches the hotpathalloc analysis (hotpath.go), which is
	// whole-module: computed on first Check, replayed per package.
	hotDiags *[]hotDiag
	// pidx is the pragma index of the Run in flight. The determflow rule
	// consults it so a waiver at a taint source or propagation edge kills
	// the chain there (and counts as usage) instead of requiring a waiver
	// at every downstream sink. taintDiags caches that analysis per index.
	pidx       *pragmaIndex
	taintFor   *pragmaIndex
	taintDiags []hotDiag
	// dfSums/dfDiags/dfDone cache the abstract-interpretation layer shared
	// by the idxdomain and valrange rules (dataflow.go): function return
	// summaries and the whole-module diagnostic set, both pragma-independent.
	dfSums  map[*types.Func]absVal
	dfDiags []dfDiag
	dfDone  bool
	// enums caches the per-named-type member sets the exhaustive rule
	// derives from package scopes (domain_rules.go).
	enums map[*types.Named][]enumMember
	// conInfo/conDiags/conDone cache the concurrency-contract layer
	// (contracts.go): parsed annotations and the whole-module diagnostics of
	// the ownercross/sendown/barrierorder rules, both pragma-independent.
	conInfo  *contractInfo
	conDiags []contractDiag
	conDone  bool
	// tsInfo/tsDiags/tsDone cache the typestate layer (typestate.go):
	// parsed //dophy:states DFAs and the lifecycle rule's whole-module
	// diagnostics.
	tsInfo  *typestateInfo
	tsDiags []contractDiag
	tsDone  bool
	// bwInfo/bwDiags/bwDone cache the borrow layer (borrow.go): parsed
	// //dophy:returns / //dophy:invalidates annotations and the borrowspan
	// rule's whole-module diagnostics.
	bwInfo  *borrowInfo
	bwDiags []contractDiag
	bwDone  bool
	// effInfo/effSums/effFacts/effDiags/effDone cache the write-effect layer
	// (effects.go): parsed //dophy:readonly / //dophy:effects annotations,
	// per-function write-effect summaries and per-node violation facts, and
	// the readonly/effects rules' whole-module diagnostics.
	effInfo  *effectsInfo
	effSums  map[*FuncNode]*effectSummary
	effFacts map[*FuncNode]*effFacts
	effDiags []contractDiag
	effDone  bool
}

// LoadConfig parameterises module loading.
type LoadConfig struct {
	// Tags are the build tags considered satisfied (beyond the implicit
	// GOOS/GOARCH/go1.x tags). The default build has none; pass
	// "dophy_invariants" to lint the invariant-checked variant.
	Tags []string
	// IncludeTests loads _test.go files too. Off by default: the
	// determinism contract governs production code, and test files use
	// map-keyed subtests and goroutines legitimately.
	IncludeTests bool
}

// Load discovers, parses and type-checks every package under root.
// Directories named testdata or vendor, and those starting with "." or "_",
// are skipped, mirroring the go tool.
func Load(root string, cfg LoadConfig) (*Module, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(absRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := &loader{
		mod: &Module{Path: modPath, Root: absRoot, Fset: token.NewFileSet()},
		cfg: cfg,
		tc:  map[string]*Package{},
	}
	l.std = importer.ForCompiler(l.mod.Fset, "source", nil)
	rels, err := packageDirs(absRoot)
	if err != nil {
		return nil, err
	}
	for _, rel := range rels {
		if _, err := l.load(rel); err != nil {
			return nil, fmt.Errorf("lint: loading %s: %w", rel, err)
		}
	}
	// A module-local import that failed to load (missing directory, parse
	// error, ...) means whole packages were type-checked against a hole:
	// their diagnostics would be silently incomplete, so a clean exit would
	// lie. Load failures are fatal, not best-effort (unlike ordinary type
	// errors, which analysis tolerates).
	if len(l.loadErrs) > 0 {
		return nil, fmt.Errorf("lint: %w", errorsJoin(l.loadErrs))
	}
	sort.Slice(l.mod.Packages, func(i, j int) bool {
		return l.mod.Packages[i].RelPath < l.mod.Packages[j].RelPath
	})
	return l.mod, nil
}

// errorsJoin is errors.Join constrained to the non-empty case.
func errorsJoin(errs []error) error {
	if len(errs) == 1 {
		return errs[0]
	}
	msgs := make([]string, len(errs))
	for i, e := range errs {
		msgs[i] = e.Error()
	}
	return fmt.Errorf("%s", strings.Join(msgs, "; "))
}

// modulePath extracts the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			name := strings.TrimSpace(rest)
			name = strings.Trim(name, `"`)
			if name != "" {
				return name, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// packageDirs returns the module-relative directories containing .go files.
func packageDirs(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				if rel == "." {
					rel = ""
				}
				out = append(out, rel)
				break
			}
		}
		return nil
	})
	return out, err
}

// loader resolves and caches package loads, acting as the types.Importer
// for module-local import paths and delegating the rest to the stdlib
// source importer.
type loader struct {
	mod *Module
	cfg LoadConfig
	std types.Importer
	tc  map[string]*Package // keyed by RelPath
	// loadErrs collects module-local import failures encountered while
	// type-checking. They are fatal at the end of Load: see Load.
	loadErrs []error
}

// load parses and type-checks the package in module-relative directory rel.
func (l *loader) load(rel string) (*Package, error) {
	if p, ok := l.tc[rel]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through %q", rel)
		}
		return p, nil
	}
	l.tc[rel] = nil // cycle marker; cleared again on every error path
	fail := func(err error) (*Package, error) {
		// Leave no stale cycle marker behind: a later load of the same
		// directory must report the real error, not a phantom cycle.
		delete(l.tc, rel)
		return nil, err
	}
	dir := filepath.Join(l.mod.Root, rel)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fail(err)
	}
	pkg := &Package{RelPath: rel, Path: l.mod.Path}
	if rel != "" {
		pkg.Path = l.mod.Path + "/" + filepath.ToSlash(rel)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !l.cfg.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return fail(err)
		}
		if !l.buildOK(src) {
			continue
		}
		f, err := parser.ParseFile(l.mod.Fset, filepath.Join(dir, name), src, parser.ParseComments)
		if err != nil {
			return fail(err)
		}
		relName := name
		if rel != "" {
			relName = filepath.ToSlash(filepath.Join(rel, name))
		}
		pkg.Files = append(pkg.Files, &File{Name: relName, AST: f})
		files = append(files, f)
	}
	if len(files) == 0 {
		return fail(fmt.Errorf("no buildable Go files in %s", dir))
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer:    importerFunc(l.importPath),
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		FakeImportC: true,
	}
	// Check never returns a usable error here: Error is set, so all
	// problems land in TypeErrors and checking continues best-effort.
	pkg.Types, _ = conf.Check(pkg.Path, l.mod.Fset, files, pkg.Info)
	l.tc[rel] = pkg
	l.mod.Packages = append(l.mod.Packages, pkg)
	return pkg, nil
}

// importPath resolves an import encountered while type-checking: module
// packages recurse through the loader; everything else goes to the stdlib
// source importer, degrading to an empty placeholder package on failure so
// analysis of the rest of the file continues.
func (l *loader) importPath(path string) (*types.Package, error) {
	if path == l.mod.Path {
		return l.loadImport("")
	}
	if rest, ok := strings.CutPrefix(path, l.mod.Path+"/"); ok {
		return l.loadImport(rest)
	}
	p, err := l.std.Import(path)
	if err != nil {
		// Missing or cgo-bound stdlib package: synthesise a placeholder so
		// the checker records the import and moves on.
		fake := types.NewPackage(path, path[strings.LastIndex(path, "/")+1:])
		fake.MarkComplete()
		return fake, nil
	}
	return p, nil
}

func (l *loader) loadImport(rel string) (*types.Package, error) {
	p, err := l.load(filepath.FromSlash(rel))
	if err != nil {
		// The type-checker swallows importer errors into per-package
		// TypeErrors, which are advisory; a module-local package that
		// cannot load at all must fail the whole run instead (see Load).
		l.loadErrs = append(l.loadErrs, fmt.Errorf("loading %s: %w", l.mod.Path+"/"+rel, err))
		return nil, err
	}
	return p.Types, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// buildOK evaluates the file's //go:build constraint (if any) against the
// configured tag set. Legacy // +build lines are ignored: this repo never
// uses them, and go vet enforces that the two forms agree anyway.
func (l *loader) buildOK(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "//") {
			if !constraint.IsGoBuild(trimmed) {
				continue
			}
			expr, err := constraint.Parse(trimmed)
			if err != nil {
				return true
			}
			return expr.Eval(l.tagOK)
		}
		// First non-blank, non-comment line: constraints must precede it.
		return true
	}
	return true
}

// tagOK reports whether a single build tag is satisfied.
func (l *loader) tagOK(tag string) bool {
	for _, t := range l.cfg.Tags {
		if tag == t {
			return true
		}
	}
	// Satisfy the host platform and all go1.x version tags so ordinary
	// files are always in scope; this module is platform-independent.
	if strings.HasPrefix(tag, "go1") {
		return true
	}
	switch tag {
	case "linux", "darwin", "amd64", "arm64", "unix":
		return true
	}
	return false
}
