package lint

import (
	"os"
	"sort"
	"strings"
	"testing"
)

// TestHotPathInventoryGolden pins the committed hot-path annotation
// inventory: adding or removing a //dophy:hotpath annotation must show up
// in review as a diff to hotpath-inventory.txt, not slip through silently.
// The inventory is the union over build-tag variants, matching what
// `dophy-lint -hotpaths` prints.
func TestHotPathInventoryGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load is slow under -short")
	}
	seen := map[string]bool{}
	var lines []string
	for _, tags := range [][]string{nil, {"dophy_invariants"}} {
		mod, err := Load("../..", LoadConfig{Tags: tags})
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range Inventory(mod) {
			if !seen[l] {
				seen[l] = true
				lines = append(lines, l)
			}
		}
	}
	sort.Strings(lines)
	got := strings.Join(lines, "\n") + "\n"

	wantBytes, err := os.ReadFile("../../hotpath-inventory.txt")
	if err != nil {
		t.Fatalf("missing golden (regenerate with `go run ./cmd/dophy-lint -hotpaths > hotpath-inventory.txt`): %v", err)
	}
	if got != string(wantBytes) {
		t.Errorf("hot-path inventory drifted from the committed golden;\n"+
			"regenerate with: go run ./cmd/dophy-lint -hotpaths > hotpath-inventory.txt\n"+
			"--- current annotations ---\n%s--- golden ---\n%s", got, wantBytes)
	}
}
