// domain_rules.go holds the three dataflow-powered domain-safety rules:
//
//   - idxdomain: link-table indices, node ids, neighbor offsets and epoch
//     counters are distinct integer domains; values must not cross between
//     them (by conversion or arithmetic) without a pragma-visible waiver.
//   - valrange: probability- and count-valued arguments to the registered
//     contract functions must be provably inside their documented range
//     when they originate at a trust boundary (config/spec fields, flags),
//     and must never be provably outside it.
//   - exhaustive: a switch over a module-declared enum (a defined integer
//     or string type with >= 2 package-level constants) must name every
//     member, or carry a //dophy:allow exhaustive waiver on its default.
//
// idxdomain and valrange replay the cached whole-module analysis from
// dataflow.go; exhaustive is a self-contained syntactic pass.
package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ---------- valrange contracts ----------

// valContract documents the legal range of one numeric parameter. Callees
// are named by module-relative package path and "Func" or "Recv.Method",
// so the registry applies equally to the real module and the test fixture
// module (which mirrors the package layout).
type valContract struct {
	relPath string
	fn      string
	arg     int
	lo, hi  float64
	what    string
}

var valContracts = []valContract{
	{"internal/radio", "NewStaticUniformLoss", 1, 0, 1, "uniform loss probability"},
	{"internal/rng", "Source.Bool", 0, 0, 1, "event probability"},
	{"internal/rng", "Source.Geometric", 0, 0, 1, "success probability"},
	{"internal/tomo/geomle", "Obs.AddAttempt", 0, 1, math.Inf(1), "1-based attempt number"},
	{"internal/tomo/geomle", "Obs.Decay", 0, 0, 1, "decay factor"},
	{"internal/tomo/geomle", "LossFromDrop", 0, 0, 1, "per-hop drop probability"},
	{"internal/coding/model", "Aggregator.Map", 0, 0, math.Inf(1), "retransmission count"},
}

// contractName renders fn in the registry's "Func" / "Recv.Method" form,
// or "" when fn is not a module function.
func (m *Module) contractName(fn *types.Func) (relPath, name string) {
	p := fn.Pkg()
	if p == nil {
		return "", ""
	}
	switch {
	case p.Path() == m.Path:
		relPath = ""
	case strings.HasPrefix(p.Path(), m.Path+"/"):
		relPath = strings.TrimPrefix(p.Path(), m.Path+"/")
	default:
		return "", ""
	}
	name = fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if n, isNamed := t.(*types.Named); isNamed {
			name = n.Obj().Name() + "." + name
		}
	}
	return relPath, name
}

// checkContracts is the valrange hook: called from evalCall with the
// abstract argument values of every statically resolved call.
func (a *dfAnalysis) checkContracts(call *ast.CallExpr, fn *types.Func, args []absVal) {
	if a.rep == nil || a.quiet > 0 {
		return
	}
	relPath, name := a.m.contractName(fn)
	if name == "" {
		return
	}
	for _, c := range valContracts {
		if c.relPath != relPath || c.fn != name || c.arg >= len(args) {
			continue
		}
		v := args[c.arg]
		bounds := rangeStr(c.lo, c.hi)
		switch {
		case v.iv.disjoint(c.lo, c.hi):
			a.report("valrange", call.Args[c.arg].Pos(),
				"%s passed to %s is provably outside %s (value in %s)",
				c.what, name, bounds, rangeStr(v.iv.lo, v.iv.hi))
		case v.src && !v.iv.within(c.lo, c.hi):
			a.report("valrange", call.Args[c.arg].Pos(),
				"%s passed to %s is a boundary input (config/flag) not validated against %s; add a range check or clamp on the path here",
				c.what, name, bounds)
		}
	}
}

// ---------- rule: idxdomain ----------

type ruleIdxDomain struct{}

func (ruleIdxDomain) Name() string { return "idxdomain" }

func (ruleIdxDomain) Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	for _, d := range m.dataflowDiags() {
		if d.rule == "idxdomain" && d.pkg == pkg {
			report(d.pos, "%s", d.msg)
		}
	}
}

// ---------- rule: valrange ----------

type ruleValRange struct{}

func (ruleValRange) Name() string { return "valrange" }

func (ruleValRange) Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	for _, d := range m.dataflowDiags() {
		if d.rule == "valrange" && d.pkg == pkg {
			report(d.pos, "%s", d.msg)
		}
	}
}

// ---------- rule: exhaustive ----------

type ruleExhaustive struct{}

func (ruleExhaustive) Name() string { return "exhaustive" }

// enumMember is one distinct constant value of an enum-style type; name is
// the lexically first constant carrying that value (iota aliases collapse).
type enumMember struct {
	isInt bool
	ival  int64
	sval  string
	name  string
}

// memberFor classifies one constant value; ok is false for kinds the rule
// does not model (floats, bools, complex).
func memberFor(name string, v constant.Value) (enumMember, bool) {
	switch v.Kind() {
	case constant.Int:
		if iv, exact := constant.Int64Val(v); exact {
			return enumMember{isInt: true, ival: iv, name: name}, true
		}
	case constant.String:
		return enumMember{sval: constant.StringVal(v), name: name}, true
	}
	return enumMember{}, false
}

func (e enumMember) key() string {
	if e.isInt {
		return "i" + strconv.FormatInt(e.ival, 10)
	}
	return "s" + e.sval
}

// enumMembers returns the member set of t when t is an enum-style type
// declared in this module: a defined integer or string type with at least
// two package-level constants. The display name and members are cached.
func (m *Module) enumMembers(t types.Type) (string, []enumMember) {
	n, ok := t.(*types.Named)
	if !ok {
		return "", nil
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return "", nil
	}
	if p := obj.Pkg().Path(); p != m.Path && !strings.HasPrefix(p, m.Path+"/") {
		return "", nil
	}
	b, ok := n.Underlying().(*types.Basic)
	if !ok || b.Info()&(types.IsInteger|types.IsString) == 0 {
		return "", nil
	}
	if m.enums == nil {
		m.enums = map[*types.Named][]enumMember{}
	}
	display := obj.Pkg().Name() + "." + obj.Name()
	if mm, cached := m.enums[n]; cached {
		return display, mm
	}
	scope := obj.Pkg().Scope()
	seen := map[string]bool{}
	var members []enumMember
	for _, name := range scope.Names() { // sorted: deterministic alias pick
		c, isConst := scope.Lookup(name).(*types.Const)
		if !isConst || !types.Identical(c.Type(), n) {
			continue
		}
		em, ok := memberFor(name, c.Val())
		if !ok {
			continue
		}
		if seen[em.key()] {
			continue
		}
		seen[em.key()] = true
		members = append(members, em)
	}
	if len(members) < 2 {
		members = nil
	}
	sort.Slice(members, func(i, j int) bool {
		a, b := members[i], members[j]
		if a.isInt != b.isInt {
			return a.isInt
		}
		if a.isInt {
			return a.ival < b.ival
		}
		return a.sval < b.sval
	})
	m.enums[n] = members
	return display, members
}

func (ruleExhaustive) Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	for _, file := range pkg.Files {
		ast.Inspect(file.AST, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pkg.Info.Types[sw.Tag]
			if !ok || tv.Type == nil {
				return true
			}
			display, members := m.enumMembers(tv.Type)
			if len(members) == 0 {
				return true
			}
			covered := map[string]bool{}
			var defaultClause *ast.CaseClause
			for _, c := range sw.Body.List {
				cc, isCase := c.(*ast.CaseClause)
				if !isCase {
					continue
				}
				if cc.List == nil {
					defaultClause = cc
					continue
				}
				for _, ce := range cc.List {
					cv, hasTV := pkg.Info.Types[ce]
					if !hasTV || cv.Value == nil {
						// A dynamic case can cover anything: stay silent.
						return true
					}
					if em, okM := memberFor("", cv.Value); okM {
						covered[em.key()] = true
					}
				}
			}
			var missing []string
			for _, em := range members {
				if !covered[em.key()] {
					missing = append(missing, em.name)
				}
			}
			if len(missing) == 0 {
				return true
			}
			pos := sw.Pos()
			if defaultClause != nil {
				pos = defaultClause.Pos()
			}
			report(pos, "switch over %s misses %s; name every member or waive the default with //dophy:allow exhaustive",
				display, strings.Join(missing, ", "))
			return true
		})
	}
}
