package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ---------------------------------------------------------------------------
// Rule hotpathalloc: annotated hot paths stay allocation-free, transitively.
//
// A function whose declaration carries //dophy:hotpath — and every function
// it statically reaches through the call graph — must avoid constructs that
// allocate per call: make/new, escaping or map/slice composite literals,
// appends that grow fresh local slices, closures, string concatenation,
// fmt-style formatting, []byte/string conversions, and boxing a non-pointer
// value into an interface. Amortised growth of receiver-owned scratch
// (append to fields and parameters, re-sliced [:0] buffers) passes: that is
// the idiom the zero-alloc refactors established. Indirect calls whose
// callees cannot be proven are reported too — soundness over silence — and
// are waived where the dispatch point's handlers are themselves annotated.
//
// The runtime bench gate (dophy-bench -compare) catches allocation
// regressions after the fact; this rule catches them at review time, with
// the full call chain from the annotated root in the diagnostic.
// ---------------------------------------------------------------------------

type ruleHotPathAlloc struct{}

func (ruleHotPathAlloc) Name() string { return "hotpathalloc" }

// hotDiag is one pending diagnostic, attributed to the package it lives in
// so the per-package Check can emit it through that package's reporter.
type hotDiag struct {
	pkg    *Package
	pos    token.Pos
	format string
	args   []any
}

func (ruleHotPathAlloc) Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	for _, d := range m.hotPathDiags() {
		if d.pkg == pkg {
			report(d.pos, d.format, d.args...)
		}
	}
}

// hotPathDiags computes (once per Module) every hotpathalloc diagnostic.
func (m *Module) hotPathDiags() []hotDiag {
	if m.hotDiags != nil {
		return *m.hotDiags
	}
	var diags []hotDiag
	m.hotDiags = &diags

	cg := m.CallGraph()
	roots := cg.HotFuncs()
	if len(roots) == 0 {
		return diags
	}

	// BFS from all hot roots at once over verifiable edges, so each node's
	// recorded chain is a shortest path from the nearest annotation.
	type visit struct {
		node *FuncNode
		via  *visit // caller's visit record
		pos  token.Pos
	}
	visited := map[*FuncNode]*visit{}
	var queue []*visit
	for _, r := range roots {
		v := &visit{node: r}
		visited[r] = v
		queue = append(queue, v)
	}
	chainOf := func(v *visit) string {
		var parts []string
		for cur := v; cur != nil; cur = cur.via {
			parts = append(parts, cur.node.Name())
		}
		for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
			parts[i], parts[j] = parts[j], parts[i]
		}
		return strings.Join(parts, " -> ")
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		node := v.node
		chain := chainOf(v)

		scanHotBody(node, chain, &diags)

		// Call sites inside panic arguments are crash paths, not hot paths.
		cold := panicArgRanges(node)
		// Function-value call sites: positions with candidates, and positions
		// whose candidate set is unproven (an EdgeUnresolved sibling).
		hasUnres := map[token.Pos]bool{}
		for i := range node.Calls {
			if node.Calls[i].Kind == EdgeUnresolved {
				hasUnres[node.Calls[i].Pos] = true
			}
		}
		reported := map[token.Pos]bool{}
		descend := func(e *Edge) {
			if e.Callee == nil || visited[e.Callee] != nil {
				return
			}
			next := &visit{node: e.Callee, via: v, pos: e.Pos}
			visited[e.Callee] = next
			queue = append(queue, next)
		}
		for i := range node.Calls {
			e := &node.Calls[i]
			if cold.contains(e.Pos) {
				continue
			}
			switch e.Kind {
			case EdgeDirect, EdgeInterface:
				descend(e)
			case EdgeFuncValue:
				// Candidates are traversed only when the set is provably
				// complete; otherwise the site itself is reported (once)
				// through its EdgeUnresolved sibling below.
				if !hasUnres[e.Pos] {
					descend(e)
				}
			case EdgeUnresolved:
				if reported[e.Pos] {
					continue
				}
				reported[e.Pos] = true
				diags = append(diags, hotDiag{
					pkg: node.Pkg, pos: e.Pos,
					format: "indirect call on hot path (%s): callees cannot be statically verified allocation-free",
					args:   []any{chain},
				})
			case EdgeExternal:
				if reason := allocExternal(e.Ext); reason != "" {
					diags = append(diags, hotDiag{
						pkg: node.Pkg, pos: e.Pos,
						format: "call to %s on hot path (%s): %s",
						args:   []any{extName(e.Ext), chain, reason},
					})
				}
			}
		}
	}

	sort.SliceStable(diags, func(i, j int) bool { return diags[i].pos < diags[j].pos })
	return diags
}

// posRange is a half-open source span [lo, hi).
type posRange struct{ lo, hi token.Pos }

type posRanges []posRange

func (r posRanges) contains(p token.Pos) bool {
	for _, iv := range r {
		if p >= iv.lo && p < iv.hi {
			return true
		}
	}
	return false
}

// panicArgRanges returns the spans of all panic(...) arguments in node's
// body: constructing a panic message is a crash path, exempt from the
// allocation discipline.
func panicArgRanges(n *FuncNode) posRanges {
	var out posRanges
	if n.Decl.Body == nil {
		return out
	}
	info := n.Pkg.Info
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if b, isB := info.Uses[id].(*types.Builtin); !isB || b.Name() != "panic" {
			return true
		}
		for _, arg := range call.Args {
			out = append(out, posRange{arg.Pos(), arg.End()})
		}
		return true
	})
	return out
}

func extName(fn *types.Func) string {
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// allocExternal reports why a call to an out-of-module function allocates
// on every call ("" = not a known allocator). The list is deliberately
// small and certain: formatting and error construction.
func allocExternal(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "fmt":
		return "fmt formatting allocates (and boxes every operand)"
	case "errors":
		if fn.Name() == "New" {
			return "errors.New allocates a fresh error value"
		}
	case "strconv":
		switch {
		case strings.HasPrefix(fn.Name(), "Format"),
			strings.HasPrefix(fn.Name(), "Quote"),
			fn.Name() == "Itoa":
			return "strconv string construction allocates; use an Append* variant into owned scratch"
		}
	}
	return ""
}

// scanHotBody reports the allocation-inducing constructs in one reachable
// function body. chain is the call path from the nearest hot annotation.
func scanHotBody(node *FuncNode, chain string, diags *[]hotDiag) {
	body := node.Decl.Body
	if body == nil {
		return
	}
	pkg := node.Pkg
	info := pkg.Info

	emit := func(pos token.Pos, format string, args ...any) {
		args = append(args, chain)
		*diags = append(*diags, hotDiag{pkg: pkg, pos: pos, format: format + " [hot path: %s]", args: args})
	}

	// Locals declared empty ("var x []T" / "x := []T(nil)"): appending to
	// them grows a fresh slice every call — the opposite of the reusable
	// scratch idiom.
	freshLocals := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.DeclStmt:
			gd, ok := v.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) > 0 {
					continue
				}
				for _, name := range vs.Names {
					obj := info.Defs[name]
					if obj == nil {
						continue
					}
					if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
						freshLocals[obj] = true
					}
				}
			}
		}
		return true
	})

	// Track panic-argument subtrees: constructing the panic message is a
	// crash path, not a hot path.
	var panicDepth int
	var funcSigs []*types.Signature // enclosing function/literal results, innermost last
	if sig, ok := node.Fn.Type().(*types.Signature); ok {
		funcSigs = append(funcSigs, sig)
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil {
			return true
		}
		switch v := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok {
				if b, isB := info.Uses[id].(*types.Builtin); isB {
					switch b.Name() {
					case "panic":
						panicDepth++
						for _, arg := range v.Args {
							ast.Inspect(arg, walk)
						}
						panicDepth--
						return false
					case "make":
						if panicDepth == 0 {
							emit(v.Pos(), "make allocates per call")
						}
						return true
					case "new":
						if panicDepth == 0 {
							emit(v.Pos(), "new allocates per call")
						}
						return true
					case "append":
						if panicDepth == 0 {
							checkHotAppend(pkg, v, freshLocals, emit)
						}
						return true
					}
				}
			}
			if panicDepth == 0 {
				checkConversionAlloc(pkg, v, emit)
				checkCallBoxing(pkg, v, emit)
			}
		case *ast.CompositeLit:
			if panicDepth > 0 {
				return true
			}
			tv, ok := info.Types[v]
			if !ok || tv.Type == nil {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				emit(v.Pos(), "map literal allocates per call")
			case *types.Slice:
				emit(v.Pos(), "slice literal allocates per call")
			}
		case *ast.UnaryExpr:
			if panicDepth > 0 {
				return true
			}
			if v.Op == token.AND {
				if _, isLit := ast.Unparen(v.X).(*ast.CompositeLit); isLit {
					emit(v.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.FuncLit:
			if panicDepth == 0 {
				emit(v.Pos(), "closure allocates per call (capture environment)")
			}
			if tv, ok := info.Types[v]; ok {
				if sig, ok := tv.Type.(*types.Signature); ok {
					funcSigs = append(funcSigs, sig)
					ast.Inspect(v.Body, walk)
					funcSigs = funcSigs[:len(funcSigs)-1]
					return false
				}
			}
		case *ast.BinaryExpr:
			if panicDepth == 0 && v.Op == token.ADD && isNonConstString(info, v) {
				emit(v.Pos(), "string concatenation allocates per call")
			}
		case *ast.AssignStmt:
			if panicDepth == 0 && v.Tok == token.ADD_ASSIGN && len(v.Lhs) == 1 && isStringType(info, v.Lhs[0]) {
				emit(v.Pos(), "string += allocates per call")
			}
			if panicDepth == 0 {
				checkAssignBoxing(pkg, v, emit)
			}
		case *ast.ValueSpec:
			if panicDepth == 0 {
				checkSpecBoxing(pkg, v, emit)
			}
		case *ast.ReturnStmt:
			if panicDepth == 0 && len(funcSigs) > 0 {
				checkReturnBoxing(pkg, v, funcSigs[len(funcSigs)-1], emit)
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// checkHotAppend flags appends that grow a slice declared empty in the
// same function — a per-call allocation. Appends to parameters, fields and
// re-sliced scratch pass (amortised growth of owned storage).
func checkHotAppend(pkg *Package, call *ast.CallExpr, freshLocals map[types.Object]bool, emit func(pos token.Pos, format string, args ...any)) {
	if len(call.Args) == 0 {
		return
	}
	base, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	if obj := objectOf(pkg.Info, base); obj != nil && freshLocals[obj] {
		emit(call.Pos(), "append grows fresh local slice %q per call; reuse owned scratch or pre-size", base.Name)
	}
}

// checkConversionAlloc flags string<->[]byte/[]rune conversions, which
// copy their operand.
func checkConversionAlloc(pkg *Package, call *ast.CallExpr, emit func(pos token.Pos, format string, args ...any)) {
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	to := tv.Type.Underlying()
	argTV, ok := pkg.Info.Types[call.Args[0]]
	if !ok || argTV.Type == nil {
		return
	}
	from := argTV.Type.Underlying()
	_, toSlice := to.(*types.Slice)
	_, fromSlice := from.(*types.Slice)
	if (isStringBasic(to) && fromSlice) || (toSlice && isStringBasic(from)) {
		emit(call.Pos(), "string/slice conversion copies per call")
	}
}

func isStringBasic(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// boxes reports whether assigning a value of type from to a variable of
// type to stores a concrete value in an interface, which allocates unless
// the value is pointer-shaped (the pointer itself is stored inline).
func boxes(from, to types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	if _, ok := to.Underlying().(*types.Interface); !ok {
		return false
	}
	if _, ok := from.Underlying().(*types.Interface); ok {
		return false // interface-to-interface copies the existing box
	}
	if b, ok := from.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	switch from.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: stored inline in the interface word
	}
	return true
}

func checkCallBoxing(pkg *Package, call *ast.CallExpr, emit func(pos token.Pos, format string, args ...any)) {
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || tv.Type == nil || tv.IsType() {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				paramType = sig.Params().At(np - 1).Type() // []T passed whole
			} else if slice, ok := sig.Params().At(np - 1).Type().(*types.Slice); ok {
				paramType = slice.Elem()
			}
		case i < np:
			paramType = sig.Params().At(i).Type()
		}
		argTV, ok := pkg.Info.Types[arg]
		if !ok {
			continue
		}
		if boxes(argTV.Type, paramType) {
			emit(arg.Pos(), "argument boxes %s into interface %s", typeStr(argTV.Type), typeStr(paramType))
		}
	}
}

func checkAssignBoxing(pkg *Package, as *ast.AssignStmt, emit func(pos token.Pos, format string, args ...any)) {
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		lhsTV, ok1 := pkg.Info.Types[as.Lhs[i]]
		rhsTV, ok2 := pkg.Info.Types[as.Rhs[i]]
		if !ok1 || !ok2 {
			continue
		}
		if boxes(rhsTV.Type, lhsTV.Type) {
			emit(as.Rhs[i].Pos(), "assignment boxes %s into interface %s", typeStr(rhsTV.Type), typeStr(lhsTV.Type))
		}
	}
}

func checkSpecBoxing(pkg *Package, vs *ast.ValueSpec, emit func(pos token.Pos, format string, args ...any)) {
	if vs.Type == nil {
		return
	}
	declTV, ok := pkg.Info.Types[vs.Type]
	if !ok || declTV.Type == nil {
		return
	}
	for _, val := range vs.Values {
		valTV, ok := pkg.Info.Types[val]
		if !ok {
			continue
		}
		if boxes(valTV.Type, declTV.Type) {
			emit(val.Pos(), "declaration boxes %s into interface %s", typeStr(valTV.Type), typeStr(declTV.Type))
		}
	}
}

func checkReturnBoxing(pkg *Package, ret *ast.ReturnStmt, sig *types.Signature, emit func(pos token.Pos, format string, args ...any)) {
	if sig == nil || len(ret.Results) != sig.Results().Len() {
		return
	}
	for i, res := range ret.Results {
		resTV, ok := pkg.Info.Types[res]
		if !ok {
			continue
		}
		if boxes(resTV.Type, sig.Results().At(i).Type()) {
			emit(res.Pos(), "return boxes %s into interface %s", typeStr(resTV.Type), typeStr(sig.Results().At(i).Type()))
		}
	}
}

func typeStr(t types.Type) string {
	if t == nil {
		return "<unknown>"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

func isNonConstString(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	return ok && tv.Type != nil && isStringBasic(tv.Type.Underlying()) && tv.Value == nil
}

func isStringType(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	return ok && tv.Type != nil && isStringBasic(tv.Type.Underlying())
}
