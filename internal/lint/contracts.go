package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the concurrency-contract prover: a declarative annotation
// layer plus the three rules (ownercross, sendown, barrierorder) that check
// it. Together with nogo it replaces the old hand-listed package sanction:
// a package may spawn goroutines only from a file that declares
//
//	//dophy:concurrency-boundary -- <why this boundary preserves determinism>
//
// and declaring the boundary opts the whole package into contract checking.
//
// Annotation grammar:
//
//	//dophy:owner shard|engine|window|immutable   on struct fields (doc or
//	    trailing comment) and — shard only — on type declarations.
//	//dophy:window    in a func doc comment: the function runs inside a
//	    parallel window (handler/callback context a goroutine reaches).
//	//dophy:barrier   in a func doc comment: the function runs on the
//	    coordinator with every worker parked (a happens-before point).
//	//dophy:transfers on (or directly above) a channel send, an append, or a
//	    call: ownership of the reference-typed values moves with the
//	    statement and the sender must not touch them afterwards.
//
// Ownership domains:
//
//   - shard: confined to one shard. Window code may only touch such a field
//     through an element index of static type topo.ShardID or topo.NodeID
//     (the owned-node masks of topo.Partition make those projections
//     per-shard disjoint); coordinator code may touch it only inside a
//     //dophy:barrier (or New*/init) function.
//   - engine: coordinator-local. Window code may not touch it at all.
//   - window: frozen while a window runs. Window code may read it; only
//     barrier (or New*/init) functions may write it.
//   - immutable: written only during construction (New*/init), readable
//     anywhere without synchronisation.
//
// The window-phase set W of a boundary package is computed from the PR 4
// call graph: targets of go statements, functions containing goroutine
// literals, and //dophy:window-annotated functions, closed under
// same-package direct and interface call edges. Dynamic dispatch into
// window context (sim.Handler values) is invisible to that closure and must
// be annotated //dophy:window explicitly.
const (
	// BoundaryPragma sanctions goroutines in the file that carries it and
	// requires the package to pass the contract rules.
	BoundaryPragma = "//dophy:concurrency-boundary"
	// OwnerPragma assigns an ownership domain to a field or type.
	OwnerPragma = "//dophy:owner"
	// TransferPragma marks a statement that moves ownership of its
	// reference-typed operands to another goroutine (or a pool).
	TransferPragma = "//dophy:transfers"
	// WindowPragma marks a function as window-phase code.
	WindowPragma = "//dophy:window"
	// BarrierPragma marks a function as a coordinator-side barrier.
	BarrierPragma = "//dophy:barrier"
)

// ownerDomain is one ownership class of the contract lattice.
type ownerDomain uint8

const (
	ownNone ownerDomain = iota
	ownShard
	ownEngine
	ownWindow
	ownImmutable
)

var ownerNames = [...]string{"", "shard", "engine", "window", "immutable"}

func (d ownerDomain) String() string { return ownerNames[d] }

func parseOwnerDomain(s string) ownerDomain {
	for d, name := range ownerNames {
		if d != 0 && name == s {
			return ownerDomain(d)
		}
	}
	return ownNone
}

// directiveArg matches text against a //dophy: directive prefix and returns
// the trimmed remainder. The prefix must be followed by whitespace or
// nothing, so near-misses like //dophy:ownerx do not match.
func directiveArg(text, prefix string) (string, bool) {
	rest, ok := strings.CutPrefix(text, prefix)
	if !ok {
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// boundaryFile is one file carrying a //dophy:concurrency-boundary pragma.
type boundaryFile struct {
	pkg     *Package
	pos     token.Pos
	reason  string
	goStmts int // go statements in the file; zero means the pragma is stale
}

// ownerAnn is one parsed //dophy:owner annotation.
type ownerAnn struct {
	dom ownerDomain
	pos token.Pos
}

// annotatedField keeps field annotations in deterministic source order for
// the clash check (maps alone would make diagnostics order-unstable).
type annotatedField struct {
	obj *types.Var
	dom ownerDomain
	pos token.Pos
	pkg *Package
}

// transferAnn is one //dophy:transfers pragma awaiting statement attachment.
type transferAnn struct {
	pkg     *Package
	pos     token.Pos
	file    string // position filename, for line matching
	line    int
	matched bool
}

// contractDiag is one precomputed contract diagnostic, replayed per package
// (and per Run, so waiver pragmas apply) by the owning rule.
type contractDiag struct {
	rule string
	pkg  *Package
	pos  token.Pos
	msg  string
}

// contractInfo is the module's parsed annotation set. It is independent of
// the call graph and cheap to build, so nogo and determflow can consult the
// boundary map without forcing the full analysis.
type contractInfo struct {
	boundary    map[*File]*boundaryFile
	boundaryPkg map[*Package]bool
	fieldOwner  map[*types.Var]ownerAnn
	typeOwner   map[*types.TypeName]ownerAnn
	fieldAnns   []annotatedField
	transfers   []*transferAnn
	// annDiags are malformed-annotation and boundary hygiene diagnostics,
	// produced during collection.
	annDiags []contractDiag
}

// contractInfo parses (once) every contract annotation in the module.
func (m *Module) contractInfo() *contractInfo {
	if m.conInfo != nil {
		return m.conInfo
	}
	c := &contractInfo{
		boundary:    map[*File]*boundaryFile{},
		boundaryPkg: map[*Package]bool{},
		fieldOwner:  map[*types.Var]ownerAnn{},
		typeOwner:   map[*types.TypeName]ownerAnn{},
	}
	m.conInfo = c
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			c.collectFile(m, pkg, file)
		}
	}
	// Boundary hygiene: a boundary needs a justification, and a boundary
	// that spawns nothing protects nothing.
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			bf := c.boundary[file]
			if bf == nil {
				continue
			}
			if bf.reason == "" {
				c.annDiags = append(c.annDiags, contractDiag{rule: "nogo", pkg: pkg, pos: bf.pos,
					msg: "concurrency-boundary pragma has no justification; append ' -- <why this boundary preserves determinism>'"})
			}
			if bf.goStmts == 0 {
				c.annDiags = append(c.annDiags, contractDiag{rule: "nogo", pkg: pkg, pos: bf.pos,
					msg: "file declares a concurrency boundary but spawns no goroutines; delete the pragma"})
			}
		}
	}
	return c
}

// collectFile gathers one file's boundary pragma, owner annotations and
// transfer pragmas.
func (c *contractInfo) collectFile(m *Module, pkg *Package, file *File) {
	f := file.AST
	// Boundary and transfer pragmas can sit in any comment group — except
	// that a //dophy:transfers attached to a struct field is the effect
	// layer's field-level form (effects.go), not a statement annotation.
	fieldComments := structFieldTransferComments(f)
	for _, cg := range f.Comments {
		for _, cm := range cg.List {
			if fieldComments[cm] {
				continue
			}
			if arg, ok := directiveArg(cm.Text, BoundaryPragma); ok {
				if c.boundary[file] == nil {
					_, reason, _ := strings.Cut(arg, "--")
					bf := &boundaryFile{pkg: pkg, pos: cm.Pos(), reason: strings.TrimSpace(reason)}
					ast.Inspect(f, func(n ast.Node) bool {
						if _, isGo := n.(*ast.GoStmt); isGo {
							bf.goStmts++
						}
						return true
					})
					c.boundary[file] = bf
					c.boundaryPkg[pkg] = true
				}
				continue
			}
			if _, ok := directiveArg(cm.Text, TransferPragma); ok {
				p := m.Fset.Position(cm.Pos())
				c.transfers = append(c.transfers, &transferAnn{pkg: pkg, pos: cm.Pos(), file: p.Filename, line: p.Line})
			}
		}
	}
	// Owner annotations on type declarations.
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			docs := []*ast.CommentGroup{ts.Doc, ts.Comment}
			if len(gd.Specs) == 1 {
				docs = append(docs, gd.Doc)
			}
			for _, doc := range docs {
				dom, pos, bad := ownerFromDoc(doc)
				if bad != "" {
					c.annDiags = append(c.annDiags, contractDiag{rule: "ownercross", pkg: pkg, pos: pos, msg: bad})
					continue
				}
				if dom == ownNone {
					continue
				}
				if dom != ownShard {
					c.annDiags = append(c.annDiags, contractDiag{rule: "ownercross", pkg: pkg, pos: pos,
						msg: fmt.Sprintf("//dophy:owner %s does not apply to type declarations; only shard confinement is type-level", dom)})
					continue
				}
				if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
					c.typeOwner[tn] = ownerAnn{dom: dom, pos: pos}
				}
			}
		}
	}
	// Owner annotations on struct fields.
	ast.Inspect(f, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		for _, field := range st.Fields.List {
			for _, doc := range []*ast.CommentGroup{field.Doc, field.Comment} {
				dom, pos, bad := ownerFromDoc(doc)
				if bad != "" {
					c.annDiags = append(c.annDiags, contractDiag{rule: "ownercross", pkg: pkg, pos: pos, msg: bad})
					continue
				}
				if dom == ownNone {
					continue
				}
				if len(field.Names) == 0 {
					c.annDiags = append(c.annDiags, contractDiag{rule: "ownercross", pkg: pkg, pos: pos,
						msg: "//dophy:owner on embedded fields is not supported; name the field"})
					continue
				}
				for _, name := range field.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						c.fieldOwner[v] = ownerAnn{dom: dom, pos: pos}
						c.fieldAnns = append(c.fieldAnns, annotatedField{obj: v, dom: dom, pos: field.Pos(), pkg: pkg})
					}
				}
			}
		}
		return true
	})
}

// ownerFromDoc extracts at most one owner annotation from a comment group.
func ownerFromDoc(doc *ast.CommentGroup) (dom ownerDomain, pos token.Pos, malformed string) {
	if doc == nil {
		return ownNone, token.NoPos, ""
	}
	for _, cm := range doc.List {
		arg, ok := directiveArg(cm.Text, OwnerPragma)
		if !ok {
			continue
		}
		spec, _, _ := strings.Cut(arg, "--")
		fields := strings.Fields(spec)
		if len(fields) != 1 {
			return ownNone, cm.Pos(), "malformed //dophy:owner: want exactly one domain (shard, engine, window or immutable)"
		}
		d := parseOwnerDomain(fields[0])
		if d == ownNone {
			return ownNone, cm.Pos(), fmt.Sprintf("malformed //dophy:owner: unknown domain %q (want shard, engine, window or immutable)", fields[0])
		}
		return d, cm.Pos(), ""
	}
	return ownNone, token.NoPos, ""
}

// fnCtx classifies a function for contract checking.
type fnCtx uint8

const (
	ctxOther   fnCtx = iota // coordinator code between windows, unannotated
	ctxWindow               // in the window-phase set W
	ctxBarrier              // //dophy:barrier
	ctxInit                 // New*/new*/init: construction, pre-concurrency
)

func isInitLike(name string) bool {
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") || name == "init"
}

// contractDiags runs (once) the whole-module contract analysis and caches
// the diagnostics; the three rules replay them per package so per-Run
// waiver filtering applies — the same pattern hotpathalloc uses.
func (m *Module) contractDiags() []contractDiag {
	if m.conDone {
		return m.conDiags
	}
	m.conDone = true
	c := m.contractInfo()
	cg := m.CallGraph()
	diags := append([]contractDiag{}, c.annDiags...)
	add := func(rule string, pkg *Package, pos token.Pos, format string, args ...any) {
		diags = append(diags, contractDiag{rule: rule, pkg: pkg, pos: pos, msg: fmt.Sprintf(format, args...)})
	}

	// Window-phase set W: goroutine targets, goroutine-literal spawners and
	// //dophy:window functions of boundary packages, closed under
	// same-package direct/interface call edges.
	inW := map[*FuncNode]bool{}
	var queue []*FuncNode
	addW := func(n *FuncNode) {
		if n != nil && !inW[n] {
			inW[n] = true
			queue = append(queue, n)
		}
	}
	for _, n := range cg.order {
		if (n.Window || n.Barrier) && !c.boundaryPkg[n.Pkg] {
			which := "window"
			pos := n.WindowPos
			if n.Barrier {
				which, pos = "barrier", n.BarrierPos
			}
			add("barrierorder", n.Pkg, pos,
				"//dophy:%s annotation outside a //dophy:concurrency-boundary package has no effect", which)
			continue
		}
		if !c.boundaryPkg[n.Pkg] {
			continue
		}
		if n.Window {
			addW(n)
		}
		if n.Decl.Body == nil {
			continue
		}
		for _, e := range n.Calls {
			if e.Go && e.Callee != nil && e.Callee.Pkg == n.Pkg {
				addW(e.Callee)
			}
		}
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			g, ok := x.(*ast.GoStmt)
			if !ok {
				return true
			}
			if _, isLit := ast.Unparen(g.Call.Fun).(*ast.FuncLit); isLit {
				// The literal's body is attributed to the encloser, so the
				// whole function is treated as window code.
				addW(n)
			}
			return true
		})
	}
	for qi := 0; qi < len(queue); qi++ {
		n := queue[qi]
		for _, e := range n.Calls {
			if e.Callee != nil && e.Callee.Pkg == n.Pkg && (e.Kind == EdgeDirect || e.Kind == EdgeInterface) {
				addW(e.Callee)
			}
		}
	}

	// Barrier sanity: a barrier cannot run inside the window it closes.
	for _, n := range cg.order {
		if !n.Barrier || !c.boundaryPkg[n.Pkg] {
			continue
		}
		if n.Window {
			add("barrierorder", n.Pkg, n.BarrierPos, "%s is annotated both //dophy:window and //dophy:barrier", n.Fn.Name())
		} else if inW[n] {
			add("barrierorder", n.Pkg, n.BarrierPos,
				"//dophy:barrier function %s is reachable from window code: a barrier cannot run inside the window it closes", n.Fn.Name())
		}
	}

	// Owner-clash: a coordinator-side or immutable field must not smuggle a
	// shard-confined type across the boundary.
	for _, fa := range c.fieldAnns {
		if fa.dom == ownShard {
			continue
		}
		if tn := containsShardConfined(fa.obj.Type(), c, 0); tn != nil {
			add("ownercross", fa.pkg, fa.pos,
				"field %s is //dophy:owner %s but holds shard-confined type %s", fa.obj.Name(), fa.dom, tn.Name())
		}
	}

	// Per-function field-access checks.
	for _, n := range cg.order {
		if n.Decl.Body == nil {
			continue
		}
		ctx := ctxOther
		switch {
		case inW[n]:
			ctx = ctxWindow
		case n.Barrier:
			ctx = ctxBarrier
		case isInitLike(n.Fn.Name()):
			ctx = ctxInit
		}
		m.checkFieldAccesses(n, ctx, c, add)
	}

	// Transfer pragmas and post-transfer uses (sendown).
	for _, n := range cg.order {
		if n.Decl.Body == nil {
			continue
		}
		m.checkTransfers(n, c, add)
	}
	for _, ta := range c.transfers {
		if !ta.matched {
			add("sendown", ta.pkg, ta.pos,
				"//dophy:transfers attaches to no statement; place it on (or directly above) a send, append or call")
		}
	}

	m.conDiags = diags
	return diags
}

// containsShardConfined walks a type structure (without descending into
// other named types' underlyings, mirroring containsPooled's discipline)
// looking for a //dophy:owner shard type.
func containsShardConfined(t types.Type, c *contractInfo, depth int) *types.TypeName {
	if depth > 8 {
		return nil
	}
	switch v := t.(type) {
	case *types.Named:
		if ann, ok := c.typeOwner[v.Obj()]; ok && ann.dom == ownShard {
			return v.Obj()
		}
		return nil
	case *types.Pointer:
		return containsShardConfined(v.Elem(), c, depth+1)
	case *types.Slice:
		return containsShardConfined(v.Elem(), c, depth+1)
	case *types.Array:
		return containsShardConfined(v.Elem(), c, depth+1)
	case *types.Map:
		if tn := containsShardConfined(v.Key(), c, depth+1); tn != nil {
			return tn
		}
		return containsShardConfined(v.Elem(), c, depth+1)
	case *types.Chan:
		return containsShardConfined(v.Elem(), c, depth+1)
	case *types.Struct:
		for i := 0; i < v.NumFields(); i++ {
			if tn := containsShardConfined(v.Field(i).Type(), c, depth+1); tn != nil {
				return tn
			}
		}
	}
	return nil
}

// indexable reports whether an element-wise projection of t is possible.
func indexable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Map:
		return true
	}
	return false
}

// checkFieldAccesses applies the ownership table to every annotated-field
// access in n's body (closures included: they execute in their encloser's
// context).
func (m *Module) checkFieldAccesses(n *FuncNode, ctx fnCtx, c *contractInfo, add func(rule string, pkg *Package, pos token.Pos, format string, args ...any)) {
	info := n.Pkg.Info
	var stack []ast.Node
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		if x == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, x)
		sel, ok := x.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		obj, _ := s.Obj().(*types.Var)
		ann, annotated := c.fieldOwner[obj]
		if !annotated {
			return true
		}
		name := obj.Name()

		// Climb to the effective access: an element access through an index
		// directly on the field is the projected form shard fields require.
		target := ast.Node(sel)
		pi := len(stack) - 2
		indexed := false
		var idx ast.Expr
		if pi >= 0 {
			if ie, ok := stack[pi].(*ast.IndexExpr); ok && ie.X == sel {
				indexed, idx, target = true, ie.Index, ie
				pi--
			}
		}
		write := false
		if pi >= 0 {
			switch p := stack[pi].(type) {
			case *ast.AssignStmt:
				for _, lhs := range p.Lhs {
					if lhs == target {
						write = true
					}
				}
			case *ast.IncDecStmt:
				if p.X == target {
					write = true
				}
			case *ast.UnaryExpr:
				if p.Op == token.AND && p.X == target {
					write = true
				}
			}
		}

		switch ann.dom {
		case ownNone:
			// fieldOwner never stores ownNone; named for exhaustiveness.
		case ownShard:
			switch ctx {
			case ctxWindow:
				if !indexed || !indexable(obj.Type()) {
					add("ownercross", n.Pkg, sel.Sel.Pos(),
						"shard-owned field %s must be accessed through a typed element index (topo.ShardID or topo.NodeID) in window code", name)
					break
				}
				var it types.Type
				if tv, ok := info.Types[idx]; ok {
					it = tv.Type
				}
				if d := m.typeDomain(it); d != DomShard && d != DomNodeID {
					add("ownercross", n.Pkg, idx.Pos(),
						"shard-owned field %s is indexed by untyped %s in window code; project through topo.ShardID or topo.NodeID so the owning shard is provable", name, types.TypeString(it, nil))
				}
			case ctxBarrier, ctxInit:
				// Coordinator at a happens-before point, or construction.
			case ctxOther:
				add("barrierorder", n.Pkg, sel.Sel.Pos(),
					"shard-owned field %s accessed outside window code without a //dophy:barrier annotation on the happens-before path", name)
			}
		case ownEngine:
			if ctx == ctxWindow {
				add("ownercross", n.Pkg, sel.Sel.Pos(),
					"window code touches engine-owned field %s: coordinator state may only be accessed between windows", name)
			}
		case ownWindow:
			if !write {
				break
			}
			switch ctx {
			case ctxWindow:
				add("ownercross", n.Pkg, sel.Sel.Pos(),
					"window code writes window-frozen field %s: //dophy:owner window fields are read-only inside a window", name)
			case ctxBarrier, ctxInit:
			case ctxOther:
				add("barrierorder", n.Pkg, sel.Sel.Pos(),
					"window-frozen field %s written outside a //dophy:barrier function: horizon state may only advance between windows", name)
			}
		case ownImmutable:
			if write && ctx != ctxInit {
				add("ownercross", n.Pkg, sel.Sel.Pos(),
					"field %s is //dophy:owner immutable and may only be written during construction (New*/init)", name)
			}
		}
		return true
	})
}

// checkTransfers attaches this function's //dophy:transfers pragmas to
// their statements and reports uses of a transferred value in the rest of
// the enclosing block. The check is lexical and block-scoped: a hand-off is
// expected to be the tail of its block, which is exactly the shape the
// pooled-carrier and outbox hand-offs have. Loop-carried reuse (transfer in
// iteration i, use in i+1) is out of scope.
func (m *Module) checkTransfers(n *FuncNode, c *contractInfo, add func(rule string, pkg *Package, pos token.Pos, format string, args ...any)) {
	body := n.Decl.Body
	filePos := m.Fset.Position(body.Pos())
	var anns []*transferAnn
	for _, ta := range c.transfers {
		if ta.pkg == n.Pkg && ta.file == filePos.Filename {
			anns = append(anns, ta)
		}
	}
	if len(anns) == 0 {
		return
	}
	info := n.Pkg.Info
	ast.Inspect(body, func(x ast.Node) bool {
		stmt, ok := x.(ast.Stmt)
		if !ok {
			return true
		}
		if _, isBlock := stmt.(*ast.BlockStmt); isBlock {
			return true
		}
		line := m.Fset.Position(stmt.Pos()).Line
		var ann *transferAnn
		for _, ta := range anns {
			if ta.line == line || ta.line == line-1 {
				ann = ta
				break
			}
		}
		if ann == nil {
			return true
		}
		ann.matched = true
		moved := transferredObjects(info, stmt)
		if moved == nil {
			add("sendown", n.Pkg, ann.pos,
				"//dophy:transfers must annotate a channel send, an append, or a call that hands the value off")
			return true
		}
		if len(moved) == 0 {
			add("sendown", n.Pkg, ann.pos,
				"//dophy:transfers marks no reference-typed values; nothing changes ownership here")
			return true
		}
		m.reportPostTransferUses(n, stmt, moved, add)
		return true
	})
}

// transferredObjects extracts the objects whose ownership a statement moves:
// the sent value of a channel send, the appended values of x = append(x,
// ...), or the arguments of a call (closure captures included). Identifiers
// in function position are the mechanism of the hand-off, not its payload,
// and are excluded. A nil return means the statement shape is not a
// hand-off at all.
func transferredObjects(info *types.Info, stmt ast.Stmt) map[types.Object]bool {
	var exprs []ast.Expr
	switch v := stmt.(type) {
	case *ast.SendStmt:
		exprs = []ast.Expr{v.Value}
	case *ast.AssignStmt:
		for _, rhs := range v.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && isBuiltin(info.Uses[id]) {
				// The first argument is the destination the result is
				// assigned back to, not a moved value.
				if len(call.Args) > 1 {
					exprs = append(exprs, call.Args[1:]...)
				}
				continue
			}
			exprs = append(exprs, call.Args...)
		}
	case *ast.ExprStmt:
		call, ok := ast.Unparen(v.X).(*ast.CallExpr)
		if !ok {
			return nil
		}
		exprs = call.Args
	case *ast.GoStmt:
		exprs = v.Call.Args
	case *ast.DeferStmt:
		exprs = v.Call.Args
	default:
		return nil
	}
	if exprs == nil {
		return nil
	}
	moved := map[types.Object]bool{}
	for _, e := range exprs {
		// Identifiers under a nested call's Fun are excluded: f in
		// f.carrier(to, j).fn is plumbing, while to and j are payload.
		skip := map[ast.Node]bool{}
		ast.Inspect(e, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				skip[call.Fun] = true
			}
			return true
		})
		ast.Inspect(e, func(x ast.Node) bool {
			if skip[x] {
				return false
			}
			id, ok := x.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := info.Uses[id].(*types.Var)
			if !ok || !isRefType(obj.Type()) {
				return true
			}
			moved[obj] = true
			return true
		})
	}
	return moved
}

// isBuiltin reports whether obj is a predeclared builtin (or unresolved,
// which for "append" in call position means the same thing).
func isBuiltin(obj types.Object) bool {
	if obj == nil {
		return true
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// isRefType reports whether values of t share underlying storage when
// copied — the types for which a hand-off is an aliasing concern.
func isRefType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// reportPostTransferUses flags uses of moved objects between the transfer
// statement and the end of its innermost enclosing block. A whole-variable
// reassignment rebinds the name to a fresh value and stops the scan for
// that object.
func (m *Module) reportPostTransferUses(n *FuncNode, stmt ast.Stmt, moved map[types.Object]bool, add func(rule string, pkg *Package, pos token.Pos, format string, args ...any)) {
	info := n.Pkg.Info
	block := enclosingBlockEnd(n.Decl.Body, stmt)
	transferLine := m.Fset.Position(stmt.Pos()).Line

	// Rebind positions per object: the earliest whole-variable reassignment
	// after the transfer kills tracking from there on.
	rebind := map[types.Object]token.Pos{}
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		as, ok := x.(*ast.AssignStmt)
		if !ok || as.Pos() <= stmt.End() || as.End() > block {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := objectOf(info, id)
			if obj == nil || !moved[obj] {
				continue
			}
			if cur, seen := rebind[obj]; !seen || id.Pos() < cur {
				rebind[obj] = id.Pos()
			}
		}
		return true
	})

	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok || id.Pos() <= stmt.End() || id.End() > block {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || !moved[obj] {
			return true
		}
		if rb, seen := rebind[obj]; seen && id.Pos() >= rb {
			return true
		}
		add("sendown", n.Pkg, id.Pos(),
			"%s is used after its ownership was transferred away (//dophy:transfers on line %d): the sender must not touch a sent value", id.Name, transferLine)
		return true
	})
}

// enclosingBlockEnd finds the End of the innermost block-like node
// containing stmt.
func enclosingBlockEnd(body *ast.BlockStmt, stmt ast.Stmt) token.Pos {
	end := body.End()
	ast.Inspect(body, func(x ast.Node) bool {
		if x == nil {
			return true
		}
		switch x.(type) {
		case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
		default:
			return true
		}
		if x.Pos() <= stmt.Pos() && stmt.End() <= x.End() && x.End() <= end {
			end = x.End()
		}
		return true
	})
	return end
}

// replayContractDiags filters the cached whole-module contract diagnostics
// down to one rule and package, re-entering the per-Run report path so
// waivers apply.
func (m *Module) replayContractDiags(rule string, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	for _, d := range m.contractDiags() {
		if d.pkg == pkg && d.rule == rule {
			report(d.pos, "%s", d.msg)
		}
	}
}

// ---------------------------------------------------------------------------
// Rule ownercross: window code respects the ownership domains.
//
// Inside a boundary package's window-phase set W, engine-owned state is
// off-limits, window-frozen state is read-only, immutable state is
// read-only everywhere after construction, and shard-owned state is only
// reachable through a typed per-shard projection (a topo.ShardID or
// topo.NodeID element index), so two shards provably never alias it.
// ---------------------------------------------------------------------------

type ruleOwnerCross struct{}

func (ruleOwnerCross) Name() string { return "ownercross" }

func (ruleOwnerCross) Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	m.replayContractDiags("ownercross", pkg, report)
}

// ---------------------------------------------------------------------------
// Rule sendown: a sent value is gone.
//
// //dophy:transfers marks the statement where ownership of a value crosses
// the boundary (an outbox append, a pool return, a channel send, a closure
// handed to another shard's engine). Touching the value afterwards is a
// use-after-send — the racy sibling of poolescape's use-after-recycle.
// ---------------------------------------------------------------------------

type ruleSendOwn struct{}

func (ruleSendOwn) Name() string { return "sendown" }

func (ruleSendOwn) Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	m.replayContractDiags("sendown", pkg, report)
}

// ---------------------------------------------------------------------------
// Rule barrierorder: cross-shard-visible state only moves at barriers.
//
// Coordinator code that touches shard-owned or window-frozen state must be
// annotated //dophy:barrier — the annotation is the claim that every worker
// is parked (happens-before established) when the function runs — and a
// barrier function must not be reachable from window code.
// ---------------------------------------------------------------------------

type ruleBarrierOrder struct{}

func (ruleBarrierOrder) Name() string { return "barrierorder" }

func (ruleBarrierOrder) Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	m.replayContractDiags("barrierorder", pkg, report)
}
