package lint

import (
	"fmt"
	"regexp"
	"testing"
)

// wantRe matches an expected-diagnostic comment: // want "substring"
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// TestFixtures lints the fixture module under testdata/src and checks the
// produced diagnostics against the // want annotations: every annotation
// must be hit and no unannotated diagnostic may appear.
func TestFixtures(t *testing.T) {
	mod, err := Load("testdata/src", LoadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	diags := mod.Run(AllRules())

	type want struct {
		substr  string
		matched bool
	}
	wants := map[string][]*want{} // "file:line" -> expectations
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.AST.Comments {
				for _, c := range cg.List {
					sub := wantRe.FindStringSubmatch(c.Text)
					if sub == nil {
						continue
					}
					pos := mod.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					wants[key] = append(wants[key], &want{substr: sub[1]})
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatal("no // want annotations found in fixtures")
	}

	rulesFired := map[string]bool{}
	for _, d := range diags {
		rulesFired[d.Rule] = true
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && regexp.MustCompile(regexp.QuoteMeta(w.substr)).MatchString(d.Msg) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic containing %q, got none", key, w.substr)
			}
		}
	}
	for _, r := range AllRules() {
		if !rulesFired[r.Name()] {
			t.Errorf("rule %s fired no fixture diagnostics; broken fixture coverage", r.Name())
		}
	}
}

// TestRepoIsClean lints the real module (both tag sets) and requires zero
// diagnostics: the tree must satisfy its own determinism contract.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint is slow under -short")
	}
	for _, tags := range [][]string{nil, {"dophy_invariants"}} {
		mod, err := Load("../..", LoadConfig{Tags: tags})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range mod.Run(AllRules()) {
			t.Errorf("tags=%v: %s", tags, d)
		}
	}
}
