package lint

import (
	"fmt"
	"regexp"
	"testing"
)

// wantRe matches an expected-diagnostic comment: // want "substring"
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// TestFixtures lints the fixture module under testdata/src and checks the
// produced diagnostics against the // want annotations: every annotation
// must be hit and no unannotated diagnostic may appear.
func TestFixtures(t *testing.T) {
	mod, err := Load("testdata/src", LoadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	diags, stale := mod.RunDetail(AllRules())
	// Stale-waiver diagnostics take part in the // want matching like any
	// other: the fixture module is linted under a single tag set, so no
	// cross-tag intersection applies here.
	diags = append(diags, stale...)

	type want struct {
		substr  string
		matched bool
	}
	wants := map[string][]*want{} // "file:line" -> expectations
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.AST.Comments {
				for _, c := range cg.List {
					sub := wantRe.FindStringSubmatch(c.Text)
					if sub == nil {
						continue
					}
					pos := mod.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					wants[key] = append(wants[key], &want{substr: sub[1]})
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatal("no // want annotations found in fixtures")
	}

	rulesFired := map[string]bool{}
	for _, d := range diags {
		rulesFired[d.Rule] = true
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && regexp.MustCompile(regexp.QuoteMeta(w.substr)).MatchString(d.Msg) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic containing %q, got none", key, w.substr)
			}
		}
	}
	for _, r := range AllRules() {
		if !rulesFired[r.Name()] {
			t.Errorf("rule %s fired no fixture diagnostics; broken fixture coverage", r.Name())
		}
	}
}

// TestRepoIsClean lints the real module (both tag sets) and requires zero
// diagnostics: the tree must satisfy its own determinism contract. Stale
// waivers are intersected across the tag sets — a pragma is only dead if it
// suppresses nothing under every build variant.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint is slow under -short")
	}
	var staleSets [][]Diagnostic
	for _, tags := range [][]string{nil, {"dophy_invariants"}} {
		mod, err := Load("../..", LoadConfig{Tags: tags})
		if err != nil {
			t.Fatal(err)
		}
		diags, stale := mod.RunDetail(AllRules())
		for _, d := range diags {
			t.Errorf("tags=%v: %s", tags, d)
		}
		staleSets = append(staleSets, stale)
	}
	inLater := map[string]bool{}
	for _, d := range staleSets[1] {
		inLater[d.String()] = true
	}
	for _, d := range staleSets[0] {
		if inLater[d.String()] {
			t.Errorf("stale under every tag set: %s", d)
		}
	}
}
