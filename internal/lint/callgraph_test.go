package lint

import "testing"

// loadCallGraphFixture loads the dedicated call-graph fixture module and
// returns its graph.
func loadCallGraphFixture(t *testing.T) *CallGraph {
	t.Helper()
	mod, err := Load("testdata/callgraph", LoadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return mod.CallGraph()
}

// node finds a function by its stable Name, failing the test if absent.
func node(t *testing.T, cg *CallGraph, name string) *FuncNode {
	t.Helper()
	for _, n := range cg.Funcs() {
		if n.Name() == name {
			return n
		}
	}
	t.Fatalf("call graph has no node %q", name)
	return nil
}

// TestCallGraphMethodValue checks that binding a method value into a local
// and calling through it yields a signature-matched EdgeFuncValue candidate
// pointing at the method, marked Local (the value's origin is visible at
// this call's caller).
func TestCallGraphMethodValue(t *testing.T) {
	cg := loadCallGraphFixture(t)
	n := node(t, cg, "UseMethodValue")
	var hit bool
	for _, e := range n.Calls {
		if e.Kind == EdgeFuncValue && e.Callee != nil && e.Callee.Name() == "(Worker).Method" {
			hit = true
			if !e.Local {
				t.Errorf("method-value call through a local should be Local")
			}
		}
		if e.Kind == EdgeUnresolved {
			t.Errorf("method-value call left an unresolved edge: the bound method is the only matching address-taken function")
		}
	}
	if !hit {
		t.Errorf("no EdgeFuncValue to (Worker).Method in UseMethodValue; edges: %v", kinds(n))
	}
}

// TestCallGraphDeferredCalls checks defer of both a package function and a
// concrete method: direct edges with the Deferred flag set.
func TestCallGraphDeferredCalls(t *testing.T) {
	cg := loadCallGraphFixture(t)
	n := node(t, cg, "UseDefer")
	want := map[string]bool{"target": false, "(Worker).Method": false}
	for _, e := range n.Calls {
		if e.Kind != EdgeDirect || e.Callee == nil {
			continue
		}
		name := e.Callee.Name()
		if _, ok := want[name]; !ok {
			continue
		}
		if !e.Deferred {
			t.Errorf("deferred call to %s lost its Deferred flag", name)
		}
		want[name] = true
	}
	for name, seen := range map[string]bool{"target": want["target"], "(Worker).Method": want["(Worker).Method"]} {
		if !seen {
			t.Errorf("no direct deferred edge to %s in UseDefer; edges: %v", name, kinds(n))
		}
	}
}

// TestCallGraphFuncField checks a call through a function-typed struct
// field: signature-matched candidates, and crucially NOT Local — a struct
// field is a mutable dispatch point, unlike a parameter.
func TestCallGraphFuncField(t *testing.T) {
	cg := loadCallGraphFixture(t)
	n := node(t, cg, "UseField")
	var hit bool
	for _, e := range n.Calls {
		if e.Kind != EdgeFuncValue {
			continue
		}
		hit = true
		if e.Local {
			t.Errorf("call through struct field must not be Local")
		}
	}
	if !hit {
		t.Errorf("no EdgeFuncValue for the struct-field call in UseField; edges: %v", kinds(n))
	}
}

// TestCallGraphGoStatement checks that go statements keep their direct
// resolution and carry the Go flag.
func TestCallGraphGoStatement(t *testing.T) {
	cg := loadCallGraphFixture(t)
	n := node(t, cg, "UseGo")
	var hit bool
	for _, e := range n.Calls {
		if e.Kind == EdgeDirect && e.Callee != nil && e.Callee.Name() == "target" {
			hit = true
			if !e.Go {
				t.Errorf("go statement edge lost its Go flag")
			}
		}
	}
	if !hit {
		t.Errorf("no direct edge to target in UseGo; edges: %v", kinds(n))
	}
}

// kinds renders a node's edges for failure messages.
func kinds(n *FuncNode) []string {
	var out []string
	for _, e := range n.Calls {
		s := e.Kind.String()
		if e.Callee != nil {
			s += ":" + e.Callee.Name()
		}
		out = append(out, s)
	}
	return out
}
