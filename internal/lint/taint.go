package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ---------------------------------------------------------------------------
// Rule determflow: nondeterminism must not flow into sim-visible state.
//
// The intra-procedural rules (nowalltime, norand, nogo, maprange) catch a
// source used directly; a source laundered through one helper function
// escapes all of them. determflow closes that hole with taint propagation
// over the whole-module call graph:
//
//   - Sources: wall-clock reads (time.Now and friends), math/rand use
//     outside internal/rng, goroutine spawns outside the sweep engine, and
//     indirect calls whose callee set cannot be resolved at all (assumed
//     nondeterministic — soundness over silence).
//   - Sinks: everything the simulation or estimation pipeline can observe,
//     i.e. all module code under internal/ plus the root package — except
//     internal/rng (the sanctioned seeded stream; deterministic by
//     contract) and internal/lint (tooling). cmd/ and examples/ may time
//     and parallelise things for humans.
//
// Reports fire at exactly one place per leak, not along the whole chain:
// at the source itself when it sits inside sink scope (complementing the
// package lists of the older rules), and at the first call edge where sink
// code reaches a tainted function outside sink scope — with the full call
// chain down to the source in the message. A //dophy:allow determflow
// waiver on a source or on a call edge kills propagation there, so one
// reviewed waiver at the sanctioned spot (e.g. the T4 wall-clock shim)
// covers every downstream consumer.
//
// determflow also extends maprange inter-procedurally: ranging over a map
// while calling a module function that transitively writes ordered output
// (fmt.Print/Fprint family or io.Writer-style methods) leaks iteration
// order just as surely as printing inline.
// ---------------------------------------------------------------------------

const determRuleName = "determflow"

type ruleDetermFlow struct{}

func (ruleDetermFlow) Name() string { return determRuleName }

func (ruleDetermFlow) Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	for _, d := range m.determDiags() {
		if d.pkg == pkg {
			report(d.pos, d.format, d.args...)
		}
	}
}

// taintInfo records why a function is tainted: the originating source and
// the next hop on the call path toward it (nil when the source is local).
type taintInfo struct {
	desc string
	pos  token.Pos
	next *FuncNode
}

// taintChain renders the call path from n down to its source.
func taintChain(n *FuncNode, taint map[*FuncNode]*taintInfo) string {
	var parts []string
	for cur := n; cur != nil; {
		parts = append(parts, cur.Name())
		ti := taint[cur]
		if ti == nil {
			break
		}
		if ti.next == nil {
			parts = append(parts, ti.desc)
			break
		}
		cur = ti.next
	}
	return strings.Join(parts, " -> ")
}

// sinkScope reports whether a package's state is simulation-visible: the
// module root and internal/*, minus the tooling (internal/lint) and the
// sanctioned randomness source (internal/rng).
func sinkScope(rel string) bool {
	for _, exempt := range []string{"internal/lint", "internal/rng"} {
		if rel == exempt || strings.HasPrefix(rel, exempt+"/") {
			return false
		}
	}
	return rel == "" || rel == "internal" || strings.HasPrefix(rel, "internal/")
}

func wallTimeRestrictedPkg(rel string) bool {
	for _, p := range wallTimeRestricted {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// determDiags computes (once per pragma index) every determflow diagnostic.
// It consults the active Run's pragma index during propagation so a waiver
// at a source or call edge kills the chain there — and counts as usage.
func (m *Module) determDiags() []hotDiag {
	idx := m.pidx
	if idx == nil {
		idx = m.newPragmaIndex(AllRules())
	}
	if m.taintFor != nil && m.taintFor == idx {
		return m.taintDiags
	}
	cg := m.CallGraph()
	var diags []hotDiag
	allowed := func(pos token.Pos) bool { return idx.allowedAt(determRuleName, pos) }
	inRNG := func(rel string) bool { return rel == "internal/rng" || strings.HasPrefix(rel, "internal/rng/") }

	// Deterministic node order for stable diagnostics and taint chains.
	nodes := cg.Funcs()

	taint := map[*FuncNode]*taintInfo{}
	var queue []*FuncNode
	mark := func(n *FuncNode, ti *taintInfo) {
		// internal/rng is a taint barrier: deterministic by contract.
		if taint[n] != nil || inRNG(n.Pkg.RelPath) {
			return
		}
		taint[n] = ti
		queue = append(queue, n)
	}

	// Pass 1: direct sources, with in-scope source-site reports.
	for _, n := range nodes {
		if inRNG(n.Pkg.RelPath) {
			continue
		}
		sink := sinkScope(n.Pkg.RelPath)
		hasCand := map[token.Pos]bool{}
		for i := range n.Calls {
			if n.Calls[i].Kind == EdgeFuncValue {
				hasCand[n.Calls[i].Pos] = true
			}
		}
		for i := range n.Calls {
			e := &n.Calls[i]
			switch e.Kind {
			case EdgeExternal:
				if e.Ext == nil || e.Ext.Pkg() == nil {
					continue
				}
				switch path := e.Ext.Pkg().Path(); {
				case path == "time" && wallTimeFuncs[e.Ext.Name()]:
					if allowed(e.Pos) {
						continue
					}
					mark(n, &taintInfo{desc: "time." + e.Ext.Name(), pos: e.Pos})
					// nowalltime covers its restricted package list; report
					// here only the sink-scope packages outside it, so each
					// source is flagged exactly once.
					if sink && !wallTimeRestrictedPkg(n.Pkg.RelPath) {
						diags = append(diags, hotDiag{pkg: n.Pkg, pos: e.Pos,
							format: "wall-clock time.%s feeds simulation-visible state in %s; use sim.Engine virtual time",
							args:   []any{e.Ext.Name(), n.Pkg.RelPath}})
					}
				case path == "math/rand" || path == "math/rand/v2":
					// norand reports the call site itself, module-wide; here
					// it only seeds the taint flow.
					if allowed(e.Pos) {
						continue
					}
					mark(n, &taintInfo{desc: path + "." + e.Ext.Name(), pos: e.Pos})
				}
			case EdgeUnresolved:
				// A call with no statically known callees at all. Interface
				// misses resolve outside the module (stdlib values) and are
				// out of scope; calls through parameters/locals are callback
				// plumbing whose values are analysed where they are created;
				// what remains — package-level function vars and struct
				// fields with zero candidates — must be assumed
				// nondeterministic.
				if e.IfaceMiss || e.Local || hasCand[e.Pos] || allowed(e.Pos) {
					continue
				}
				mark(n, &taintInfo{desc: "unresolvable indirect call", pos: e.Pos})
				if sink {
					diags = append(diags, hotDiag{pkg: n.Pkg, pos: e.Pos,
						format: "indirect call has no statically known callee; determflow must assume it is nondeterministic"})
				}
			case EdgeDirect, EdgeInterface, EdgeFuncValue:
				// Resolved in-module edges seed nothing here; pass 2
				// propagates taint across them once sources are known.
			}
		}
		// Goroutine spawns reorder observable events — except inside a
		// declared //dophy:concurrency-boundary file, whose sharing
		// discipline the contract rules (ownercross/sendown/barrierorder)
		// prove separately: the sweep pool merges deterministically, and the
		// shard engine's window workers exchange state only at barriers with
		// a shard-count-invariant merge order.
		if n.Decl.Body != nil && m.contractInfo().boundary[n.File] == nil {
			ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
				if g, ok := x.(*ast.GoStmt); ok && !allowed(g.Pos()) {
					mark(n, &taintInfo{desc: "go statement", pos: g.Pos()})
				}
				return true
			})
		}
	}

	// Pass 2: propagate taint to callers through resolved edges.
	for qi := 0; qi < len(queue); qi++ {
		g := queue[qi]
		ti := taint[g]
		for _, ref := range g.callers {
			switch ref.edge.Kind {
			case EdgeDirect, EdgeInterface, EdgeFuncValue:
			case EdgeUnresolved, EdgeExternal:
				continue
			}
			if taint[ref.node] != nil || allowed(ref.edge.Pos) {
				continue
			}
			mark(ref.node, &taintInfo{desc: ti.desc, pos: ti.pos, next: g})
		}
	}

	// Pass 3: boundary reports — sink code reaching a tainted function
	// outside sink scope. Edges between two sink-scope functions stay
	// silent (the source site already reported, and cascades would bury it).
	type bkey struct {
		pos token.Pos
		g   *FuncNode
	}
	seen := map[bkey]bool{}
	for _, f := range nodes {
		if !sinkScope(f.Pkg.RelPath) {
			continue
		}
		for i := range f.Calls {
			e := &f.Calls[i]
			switch e.Kind {
			case EdgeDirect, EdgeInterface, EdgeFuncValue:
			case EdgeUnresolved, EdgeExternal:
				continue
			}
			g := e.Callee
			if g == nil || sinkScope(g.Pkg.RelPath) || taint[g] == nil {
				continue
			}
			if seen[bkey{e.Pos, g}] {
				continue
			}
			seen[bkey{e.Pos, g}] = true
			if allowed(e.Pos) {
				continue
			}
			diags = append(diags, hotDiag{pkg: f.Pkg, pos: e.Pos,
				format: "call into %s carries nondeterminism from %s (chain: %s)",
				args:   []any{g.Name(), taint[g].desc, taintChain(g, taint)}})
		}
	}

	// Pass 4: inter-procedural map-order leaks — a range over a map whose
	// body calls a module function that transitively writes ordered output.
	ordered := map[*FuncNode]bool{}
	var oq []*FuncNode
	for _, n := range nodes {
		if directOrderedOutput(n) {
			ordered[n] = true
			oq = append(oq, n)
		}
	}
	for qi := 0; qi < len(oq); qi++ {
		g := oq[qi]
		for _, ref := range g.callers {
			// Direct and interface edges only: function-value candidate
			// sets are signature-matched and would over-approximate here.
			switch ref.edge.Kind {
			case EdgeDirect, EdgeInterface:
			case EdgeFuncValue, EdgeUnresolved, EdgeExternal:
				continue
			}
			if !ordered[ref.node] {
				ordered[ref.node] = true
				oq = append(oq, ref.node)
			}
		}
	}
	for _, f := range nodes {
		if !sinkScope(f.Pkg.RelPath) || f.Decl.Body == nil {
			continue
		}
		f := f
		ast.Inspect(f.Decl.Body, func(x ast.Node) bool {
			rs, ok := x.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := f.Pkg.Info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			seenPos := map[token.Pos]bool{}
			for i := range f.Calls {
				e := &f.Calls[i]
				if e.Pos < rs.Body.Pos() || e.Pos >= rs.Body.End() {
					continue
				}
				switch e.Kind {
				case EdgeDirect, EdgeInterface:
				case EdgeFuncValue, EdgeUnresolved, EdgeExternal:
					continue
				}
				if e.Callee == nil || !ordered[e.Callee] || seenPos[e.Pos] {
					continue
				}
				seenPos[e.Pos] = true
				if allowed(e.Pos) {
					continue
				}
				diags = append(diags, hotDiag{pkg: f.Pkg, pos: e.Pos,
					format: "map iteration order leaks through call to %s, which transitively writes ordered output; iterate sorted keys instead",
					args:   []any{e.Callee.Name()}})
			}
			return true
		})
	}

	sort.SliceStable(diags, func(i, j int) bool { return diags[i].pos < diags[j].pos })
	m.taintFor, m.taintDiags = idx, diags
	return diags
}

// orderedFmt are the fmt functions whose output order is observable.
// Sprint-family calls build values rather than emit them, so they are left
// to the flow analysis of whoever writes the result.
var orderedFmt = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// directOrderedOutput reports whether n's own body emits ordered output.
func directOrderedOutput(n *FuncNode) bool {
	if n.Decl.Body == nil {
		return false
	}
	fmtNames := importNames(n.File.AST, "fmt")
	found := false
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		if found {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := isPkgSelector(call.Fun, fmtNames); ok && orderedFmt[sel.Sel.Name] && resolvesToPackage(n.Pkg.Info, sel) {
			found = true
			return false
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && writerMethods[sel.Sel.Name] {
			if s := n.Pkg.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
