package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ---------------------------------------------------------------------------
// Rule norand: the only permitted randomness source is internal/rng.
//
// A stray math/rand call is the classic determinism leak: it draws from a
// global, cross-goroutine-shared stream, so results depend on scheduling and
// on every other consumer. All randomness must flow from the scenario seed
// through rng.Source.
// ---------------------------------------------------------------------------

type ruleRand struct{}

func (ruleRand) Name() string { return "norand" }

func (ruleRand) Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	if pkg.RelPath == "internal/rng" {
		return
	}
	for _, file := range pkg.Files {
		for _, path := range []string{"math/rand", "math/rand/v2"} {
			names := importNames(file.AST, path)
			specs := importSpecs(file.AST, path)
			if len(specs) == 0 {
				continue
			}
			uses := 0
			ast.Inspect(file.AST, func(n ast.Node) bool {
				sel, ok := isPkgSelector(n, names)
				if !ok {
					return true
				}
				if !resolvesToPackage(pkg.Info, sel) {
					return true
				}
				uses++
				report(sel.Pos(), "use of %s.%s: all randomness must come from %s/internal/rng (seeded, splittable)",
					path, sel.Sel.Name, m.Path)
				return true
			})
			if uses == 0 {
				report(specs[0].Pos(), "import of %s is forbidden outside internal/rng; use %s/internal/rng", path, m.Path)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Rule nowalltime: simulation/estimation packages run on virtual time only.
//
// Wall-clock reads make outputs depend on host speed and scheduling; inside
// the listed packages the only clock is sim.Engine.Now. cmd/ and examples/
// may time things (they report wall-clock to humans).
// ---------------------------------------------------------------------------

type ruleWallTime struct{}

func (ruleWallTime) Name() string { return "nowalltime" }

// wallTimeRestricted are the module-relative package prefixes where wall
// clocks are banned.
var wallTimeRestricted = []string{
	"internal/sim", "internal/collect", "internal/routing", "internal/tomo", "internal/experiment",
}

// wallTimeFuncs are the time package functions that read or schedule on the
// wall clock.
var wallTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

func (ruleWallTime) Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	restricted := false
	for _, p := range wallTimeRestricted {
		if pkg.RelPath == p || strings.HasPrefix(pkg.RelPath, p+"/") {
			restricted = true
			break
		}
	}
	if !restricted {
		return
	}
	for _, file := range pkg.Files {
		names := importNames(file.AST, "time")
		if len(names) == 0 {
			continue
		}
		ast.Inspect(file.AST, func(n ast.Node) bool {
			sel, ok := isPkgSelector(n, names)
			if !ok || !wallTimeFuncs[sel.Sel.Name] {
				return true
			}
			if !resolvesToPackage(pkg.Info, sel) {
				return true
			}
			report(sel.Pos(), "wall-clock time.%s in %s: simulation code runs on sim.Engine virtual time only",
				sel.Sel.Name, pkg.RelPath)
			return true
		})
	}
}

// ---------------------------------------------------------------------------
// Rule maprange: no output-order dependence on map iteration.
//
// Ranging over a map is fine for commutative accumulation (building another
// map, summing). It is a determinism bug as soon as the body emits anything
// ordered: printing, writing to an io.Writer, or appending to a result
// slice. The one exempt shape is the sorted-keys idiom — a loop that only
// collects the keys into a slice that a later sort.* / slices.* call orders.
// ---------------------------------------------------------------------------

type ruleMapRange struct{}

func (ruleMapRange) Name() string { return "maprange" }

// printLike are the fmt functions that produce ordered output.
var printLike = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
}

// writerMethods are method names treated as io.Writer-style ordered sinks.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func (ruleMapRange) Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	for _, file := range pkg.Files {
		fmtNames := importNames(file.AST, "fmt")
		ioNames := importNames(file.AST, "io")
		sortNames := append(importNames(file.AST, "sort"), importNames(file.AST, "slices")...)
		var stack []ast.Node
		ast.Inspect(file.AST, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if rs, ok := n.(*ast.RangeStmt); ok {
				checkMapRange(pkg, rs, enclosingFuncBody(stack), fmtNames, ioNames, sortNames, report)
			}
			return true
		})
	}
}

// enclosingFuncBody returns the body of the innermost function on the stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

func checkMapRange(pkg *Package, rs *ast.RangeStmt, fnBody *ast.BlockStmt,
	fmtNames, ioNames, sortNames []string, report func(pos token.Pos, format string, args ...any)) {
	tv, ok := pkg.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	var keyObj types.Object
	if id, ok := rs.Key.(*ast.Ident); ok && id.Name != "_" {
		keyObj = objectOf(pkg.Info, id)
	}

	// Taint scan of the loop body.
	var keyTargets []types.Object // slices receiving only the range key
	tainted := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if tainted {
			return false
		}
		switch v := n.(type) {
		case *ast.CallExpr:
			if sel, ok := isPkgSelector(v.Fun, fmtNames); ok && printLike[sel.Sel.Name] && resolvesToPackage(pkg.Info, sel) {
				tainted = true
				report(rs.Pos(), "map iteration order leaks into output: fmt.%s inside range over map; iterate sorted keys instead", sel.Sel.Name)
				return false
			}
			if sel, ok := isPkgSelector(v.Fun, ioNames); ok && sel.Sel.Name == "WriteString" && resolvesToPackage(pkg.Info, sel) {
				tainted = true
				report(rs.Pos(), "map iteration order leaks into output: io.WriteString inside range over map; iterate sorted keys instead")
				return false
			}
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok && writerMethods[sel.Sel.Name] {
				if s := pkg.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
					tainted = true
					report(rs.Pos(), "map iteration order leaks into output: %s call inside range over map; iterate sorted keys instead", sel.Sel.Name)
					return false
				}
			}
		case *ast.AssignStmt:
			if v.Tok != token.ASSIGN {
				return true
			}
			for i, lhs := range v.Lhs {
				if i >= len(v.Rhs) {
					break
				}
				target, appended, ok := appendSelf(pkg, lhs, v.Rhs[i])
				if !ok || target == nil {
					continue
				}
				// Only accumulation into slices that outlive the loop counts.
				if target.Pos() >= rs.Pos() && target.Pos() < rs.End() {
					continue
				}
				if keyObj != nil && len(appended) == 1 {
					if id, ok := appended[0].(*ast.Ident); ok && objectOf(pkg.Info, id) == keyObj {
						keyTargets = append(keyTargets, target)
						continue
					}
				}
				tainted = true
				report(rs.Pos(), "appending map-ordered values to %q inside range over map; iterate sorted keys instead", target.Name())
				return false
			}
		}
		return true
	})
	if tainted {
		return
	}
	// Sorted-keys idiom: the collected key slices must actually be sorted
	// after the loop.
	for _, target := range keyTargets {
		if !sortedAfter(pkg, fnBody, rs.End(), target, sortNames) {
			report(rs.Pos(), "map keys collected into %q but never sorted afterwards; sort before consuming", target.Name())
		}
	}
}

// appendSelf matches the accumulation form `x = append(x, args...)` and
// returns x's object plus the appended argument expressions.
func appendSelf(pkg *Package, lhs ast.Expr, rhs ast.Expr) (types.Object, []ast.Expr, bool) {
	lid, ok := lhs.(*ast.Ident)
	if !ok {
		return nil, nil, false
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return nil, nil, false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return nil, nil, false
	}
	arg0, ok := call.Args[0].(*ast.Ident)
	if !ok || arg0.Name != lid.Name {
		return nil, nil, false
	}
	return objectOf(pkg.Info, lid), call.Args[1:], true
}

// sortedAfter reports whether a sort./slices. call mentioning target appears
// after pos within the function body.
func sortedAfter(pkg *Package, fnBody *ast.BlockStmt, pos token.Pos, target types.Object, sortNames []string) bool {
	if fnBody == nil || len(sortNames) == 0 {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		if _, ok := isPkgSelector(call.Fun, sortNames); !ok {
			return true
		}
		ast.Inspect(call, func(inner ast.Node) bool {
			if id, ok := inner.(*ast.Ident); ok && objectOf(pkg.Info, id) == target {
				found = true
				return false
			}
			return true
		})
		return !found
	})
	return found
}

// ---------------------------------------------------------------------------
// Rule nogo: goroutines live only in declared concurrency boundaries.
//
// A single sim.Engine run is strictly sequential by design. A file may opt
// into spawning goroutines by declaring a //dophy:concurrency-boundary
// pragma (contracts.go) — which simultaneously opts the whole package into
// the ownercross/sendown/barrierorder contract rules, so "goroutines
// allowed" always means "sharing discipline proven". A goroutine anywhere
// else either races the simulation or makes event order
// scheduling-dependent. The rule also polices boundary hygiene: a pragma
// without a justification, or in a file that spawns nothing, is itself a
// diagnostic.
// ---------------------------------------------------------------------------

type ruleGoStmt struct{}

func (ruleGoStmt) Name() string { return "nogo" }

func (ruleGoStmt) Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	c := m.contractInfo()
	for _, file := range pkg.Files {
		if c.boundary[file] != nil {
			continue // sanctioned; the contract rules take over from here
		}
		ast.Inspect(file.AST, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				report(g.Pos(), "goroutine outside a //dophy:concurrency-boundary file: simulations are single-threaded by construction")
			}
			return true
		})
	}
	m.replayContractDiags("nogo", pkg, report)
}

// ---------------------------------------------------------------------------
// Rule poolescape: pooled objects must not be retained across packages.
//
// A type fed by a free list (e.g. sim.Event) is recycled: the pointer is
// only valid while the object is live, and the owning package may hand the
// same memory to an unrelated caller later. Storing such a pointer in a
// struct field outside the owning package is a use-after-recycle (or
// cancel-the-wrong-event) bug waiting to happen.
// ---------------------------------------------------------------------------

type rulePoolEscape struct{}

func (rulePoolEscape) Name() string { return "poolescape" }

func (rulePoolEscape) Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	pooled := m.pooledTypes()
	if len(pooled) == 0 {
		return
	}
	for _, file := range pkg.Files {
		ast.Inspect(file.AST, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				tv, ok := pkg.Info.Types[field.Type]
				if !ok || tv.Type == nil {
					continue
				}
				obj := containsPooled(tv.Type, pooled, 0)
				if obj == nil || obj.Pkg() == pkg.Types {
					continue
				}
				report(field.Pos(), "struct field retains pooled %s.%s: pooled objects are recycled by their owning package and must not outlive their handler/Cancel window",
					obj.Pkg().Name(), obj.Name())
			}
			return true
		})
	}
}

// pooledTypes returns the module's pooled types: named types T for which
// some struct in T's own package keeps a free list — a field of type []T or
// []*T whose name contains "free" or "pool".
func (m *Module) pooledTypes() map[types.Object]bool {
	if m.pooled != nil {
		return m.pooled
	}
	m.pooled = map[types.Object]bool{}
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file.AST, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok || st.Fields == nil {
					return true
				}
				for _, field := range st.Fields.List {
					if !freeListName(field.Names) {
						continue
					}
					tv, ok := pkg.Info.Types[field.Type]
					if !ok || tv.Type == nil {
						continue
					}
					slice, ok := tv.Type.Underlying().(*types.Slice)
					if !ok {
						continue
					}
					elem := slice.Elem()
					if ptr, ok := elem.(*types.Pointer); ok {
						elem = ptr.Elem()
					}
					named, ok := elem.(*types.Named)
					if !ok || named.Obj().Pkg() != pkg.Types {
						continue
					}
					m.pooled[named.Obj()] = true
				}
				return true
			})
		}
	}
	return m.pooled
}

// freeListName reports whether any field name marks a free list / pool.
func freeListName(names []*ast.Ident) bool {
	for _, n := range names {
		lower := strings.ToLower(n.Name)
		if strings.Contains(lower, "free") || strings.Contains(lower, "pool") {
			return true
		}
	}
	return false
}

// containsPooled walks a type's unnamed structure looking for a pooled
// named type. It deliberately does not descend into named types' underlying
// structure: holding a *sim.Engine (which owns a free list) is fine; holding
// a *sim.Event (which is on one) is not.
func containsPooled(t types.Type, pooled map[types.Object]bool, depth int) types.Object {
	if depth > 8 {
		return nil
	}
	switch v := t.(type) {
	case *types.Named:
		if pooled[v.Obj()] {
			return v.Obj()
		}
	case *types.Pointer:
		return containsPooled(v.Elem(), pooled, depth+1)
	case *types.Slice:
		return containsPooled(v.Elem(), pooled, depth+1)
	case *types.Array:
		return containsPooled(v.Elem(), pooled, depth+1)
	case *types.Map:
		if obj := containsPooled(v.Key(), pooled, depth+1); obj != nil {
			return obj
		}
		return containsPooled(v.Elem(), pooled, depth+1)
	case *types.Chan:
		return containsPooled(v.Elem(), pooled, depth+1)
	case *types.Struct:
		for i := 0; i < v.NumFields(); i++ {
			if obj := containsPooled(v.Field(i).Type(), pooled, depth+1); obj != nil {
				return obj
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Rule densebound: estimation-pipeline state is indexed by topo.LinkTable.
//
// The estimation pipeline keeps per-link state in flat vectors indexed by
// the topology's immutable link table; a map[topo.Link] struct field in
// these packages reintroduces the per-epoch hashing and allocation churn the
// dense refactor removed (DESIGN.md "Dense link indexing"). Deliberate
// boundary shapes can carry a //dophy:allow densebound waiver.
// ---------------------------------------------------------------------------

type ruleDenseBound struct{}

func (ruleDenseBound) Name() string { return "densebound" }

// denseBoundRestricted are the module-relative package prefixes whose
// per-link state must be dense.
var denseBoundRestricted = []string{"internal/tomo", "internal/trace", "internal/experiment"}

func (ruleDenseBound) Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	restricted := false
	for _, p := range denseBoundRestricted {
		if pkg.RelPath == p || strings.HasPrefix(pkg.RelPath, p+"/") {
			restricted = true
			break
		}
	}
	if !restricted {
		return
	}
	for _, file := range pkg.Files {
		ast.Inspect(file.AST, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				tv, ok := pkg.Info.Types[field.Type]
				if !ok || tv.Type == nil {
					continue
				}
				if obj := linkKeyedMap(m, tv.Type, 0); obj != nil {
					report(field.Pos(), "struct field keyed by %s.Link: per-link state in %s is dense, indexed by topo.LinkTable",
						obj.Pkg().Name(), pkg.RelPath)
				}
			}
			return true
		})
	}
}

// linkKeyedMap walks a type's unnamed structure looking for a map keyed by
// the topology package's Link type. Like containsPooled it does not descend
// into named types: a field of a named type is that type's own business.
func linkKeyedMap(m *Module, t types.Type, depth int) types.Object {
	if depth > 8 {
		return nil
	}
	switch v := t.(type) {
	case *types.Map:
		if named, ok := v.Key().(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "Link" && obj.Pkg() != nil && obj.Pkg().Path() == m.Path+"/internal/topo" {
				return obj
			}
		}
		return linkKeyedMap(m, v.Elem(), depth+1)
	case *types.Pointer:
		return linkKeyedMap(m, v.Elem(), depth+1)
	case *types.Slice:
		return linkKeyedMap(m, v.Elem(), depth+1)
	case *types.Array:
		return linkKeyedMap(m, v.Elem(), depth+1)
	case *types.Chan:
		return linkKeyedMap(m, v.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < v.NumFields(); i++ {
			if obj := linkKeyedMap(m, v.Field(i).Type(), depth+1); obj != nil {
				return obj
			}
		}
	}
	return nil
}

// importSpecs returns the import specs for the given path in the file.
func importSpecs(f *ast.File, path string) []*ast.ImportSpec {
	var out []*ast.ImportSpec
	for _, spec := range f.Imports {
		if strings.Trim(spec.Path.Value, `"`) == path {
			out = append(out, spec)
		}
	}
	return out
}

// resolvesToPackage confirms (when type information is available) that the
// selector's base identifier really is a package name and not a shadowing
// local variable. With no resolution recorded it errs on the side of
// reporting.
func resolvesToPackage(info *types.Info, sel *ast.SelectorExpr) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if obj := info.Uses[id]; obj != nil {
		_, isPkg := obj.(*types.PkgName)
		return isPkg
	}
	return true
}
