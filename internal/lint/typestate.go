package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"maps"
	"strings"
)

// This file is the typestate layer: a declarative lifecycle contract on
// types whose methods are only legal in certain orders, checked
// flow-sensitively per function by the lifecycle rule.
//
// Annotation grammar (in a type declaration's doc comment):
//
//	//dophy:states <spec> [-- <reason>]
//
//	spec   := clause { ";" clause }
//	clause := state ":" trans { "," trans }
//	trans  := method { "|" method } "->" state
//
// The first clause's state is the initial state a freshly constructed value
// is in. Every method named anywhere in the spec is "tracked": calling a
// tracked method in a state with no transition for it is a lifecycle
// violation. Methods the spec never mentions are state-neutral and may be
// called in any state. A state that appears only as a transition target is
// a terminal state: tracked methods cannot be called on the value again.
//
// The checker is deliberately first-order about where values come from: a
// local enters the initial state only when it is visibly constructed — a
// composite literal, new(T), a plain `var x T` declaration, or a call to a
// New*/new* constructor returning T or *T. Values from struct fields,
// parameters and other calls are in an unknown state and never diagnosed.
// Escapes (address-of into a call, stores into fields or containers,
// closure captures, channel sends) drop tracking. When a tracked local is
// passed to (or is the receiver of) another module function, the checker
// consults a call-graph summary: if the callee applies a straight-line
// sequence of tracked methods to that parameter, the sequence is stepped
// through the DFA at the call site; any other callee shape conservatively
// drops tracking.

// StatesPragma declares a method-call-order DFA on a type.
const StatesPragma = "//dophy:states"

// dfaTrans is one "methods -> target" group inside a clause.
type dfaTrans struct {
	methods []string
	target  string
}

// dfaClause is one "state: transitions" clause.
type dfaClause struct {
	state string
	rules []dfaTrans
}

// dfaSpec is a parsed, validated //dophy:states specification.
type dfaSpec struct {
	clauses []dfaClause
	// states lists every state (clause heads first, in declaration order,
	// then target-only terminal states in first-reference order).
	states []string
	// trans maps state -> tracked method -> target state.
	trans map[string]map[string]string
	// tracked is the set of methods named anywhere in the spec.
	tracked map[string]bool
}

// initial returns the DFA's start state.
func (d *dfaSpec) initial() string { return d.clauses[0].state }

// step applies one tracked method; ok is false when the state has no
// transition for it.
func (d *dfaSpec) step(state, method string) (string, bool) {
	t, ok := d.trans[state][method]
	return t, ok
}

// legalFrom lists the tracked methods callable in a state, for diagnostics.
func (d *dfaSpec) legalFrom(state string) string {
	for _, c := range d.clauses {
		if c.state != state {
			continue
		}
		var ms []string
		for _, r := range c.rules {
			ms = append(ms, r.methods...)
		}
		return strings.Join(ms, ", ")
	}
	return "none (terminal state)"
}

// String prints the spec in canonical form. Parsing the result yields a
// structurally identical spec (the FuzzStateDFA round-trip property).
func (d *dfaSpec) String() string {
	var sb strings.Builder
	for i, c := range d.clauses {
		if i > 0 {
			sb.WriteString("; ")
		}
		sb.WriteString(c.state)
		sb.WriteString(": ")
		for j, r := range c.rules {
			if j > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(strings.Join(r.methods, "|"))
			sb.WriteString(" -> ")
			sb.WriteString(r.target)
		}
	}
	return sb.String()
}

// specError is a parse/validation failure with a byte offset into the spec
// text, so diagnostics can point at the offending token.
type specError struct {
	off int
	msg string
}

func (e *specError) Error() string { return e.msg }

// parseStateDFA parses and validates a //dophy:states specification (the
// part after the directive, reason suffix already stripped).
func parseStateDFA(spec string) (*dfaSpec, error) {
	d := &dfaSpec{trans: map[string]map[string]string{}, tracked: map[string]bool{}}
	if strings.TrimSpace(spec) == "" {
		return nil, &specError{0, "empty spec: want 'state: Method -> state, ...; ...'"}
	}
	seen := map[string]bool{}
	off := 0
	for _, clause := range splitKeepOffsets(spec, ';') {
		off = clause.off
		text := clause.text
		if strings.TrimSpace(text) == "" {
			return nil, &specError{off, "empty clause: want 'state: Method -> state'"}
		}
		head, rest, found := strings.Cut(text, ":")
		if !found {
			return nil, &specError{off, fmt.Sprintf("clause %q has no ':' separating the state from its transitions", strings.TrimSpace(text))}
		}
		state, err := identAt(head, off)
		if err != nil {
			return nil, err
		}
		if seen[state] {
			return nil, &specError{off, fmt.Sprintf("duplicate clause for state %q", state)}
		}
		seen[state] = true
		c := dfaClause{state: state}
		d.trans[state] = map[string]string{}
		restOff := off + len(head) + 1
		for _, tr := range splitKeepOffsets(rest, ',') {
			lhs, target, found := strings.Cut(tr.text, "->")
			if !found {
				return nil, &specError{restOff + tr.off, fmt.Sprintf("transition %q has no '->'", strings.TrimSpace(tr.text))}
			}
			tgt, err := identAt(target, restOff+tr.off+len(lhs)+2)
			if err != nil {
				return nil, err
			}
			var t dfaTrans
			t.target = tgt
			for _, me := range splitKeepOffsets(lhs, '|') {
				method, err := identAt(me.text, restOff+tr.off+me.off)
				if err != nil {
					return nil, err
				}
				if _, dup := d.trans[state][method]; dup {
					return nil, &specError{restOff + tr.off + me.off, fmt.Sprintf("state %q declares two transitions for method %s", state, method)}
				}
				d.trans[state][method] = tgt
				d.tracked[method] = true
				t.methods = append(t.methods, method)
			}
			c.rules = append(c.rules, t)
		}
		d.clauses = append(d.clauses, c)
		d.states = append(d.states, state)
	}
	// Target-only states are terminal; record them after the clause heads.
	for _, c := range d.clauses {
		for _, r := range c.rules {
			if !seen[r.target] {
				seen[r.target] = true
				d.states = append(d.states, r.target)
			}
		}
	}
	// Every state must be reachable from the initial state.
	reach := map[string]bool{d.initial(): true}
	for changed := true; changed; {
		changed = false
		for state, ts := range d.trans {
			if !reach[state] {
				continue
			}
			for _, tgt := range ts {
				if !reach[tgt] {
					reach[tgt] = true
					changed = true
				}
			}
		}
	}
	for _, s := range d.states {
		if !reach[s] {
			return nil, &specError{0, fmt.Sprintf("state %q is unreachable from the initial state %q", s, d.initial())}
		}
	}
	return d, nil
}

// offsetPart is one separator-delimited piece of a spec with its offset.
type offsetPart struct {
	off  int
	text string
}

func splitKeepOffsets(s string, sep byte) []offsetPart {
	var out []offsetPart
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == sep {
			out = append(out, offsetPart{off: start, text: s[start:i]})
			start = i + 1
		}
	}
	return out
}

// identAt trims s and requires a single Go-identifier-shaped token,
// reporting errors at base plus the token's offset within s.
func identAt(s string, base int) (string, error) {
	lead := len(s) - len(strings.TrimLeft(s, " \t"))
	tok := strings.TrimSpace(s)
	if tok == "" {
		return "", &specError{base + lead, "missing name"}
	}
	for i, r := range tok {
		alpha := r == '_' || ('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z')
		if !alpha && !(i > 0 && '0' <= r && r <= '9') {
			return "", &specError{base + lead, fmt.Sprintf("%q is not a valid state or method name", tok)}
		}
	}
	return tok, nil
}

// stateDFA binds a parsed spec to the annotated type.
type stateDFA struct {
	tn   *types.TypeName
	spec *dfaSpec
	pos  token.Pos
}

// typestateInfo is the module's parsed //dophy:states annotation set.
type typestateInfo struct {
	dfas     map[*types.TypeName]*stateDFA
	annDiags []contractDiag
}

// typestateInfoOf parses (once) every states annotation in the module.
func (m *Module) typestateInfoOf() *typestateInfo {
	if m.tsInfo != nil {
		return m.tsInfo
	}
	ti := &typestateInfo{dfas: map[*types.TypeName]*stateDFA{}}
	m.tsInfo = ti
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			ti.collectFile(pkg, file)
		}
	}
	return ti
}

func (ti *typestateInfo) collectFile(pkg *Package, file *File) {
	for _, decl := range file.AST.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			docs := []*ast.CommentGroup{ts.Doc, ts.Comment}
			if len(gd.Specs) == 1 {
				docs = append(docs, gd.Doc)
			}
			for _, doc := range docs {
				if doc == nil {
					continue
				}
				for _, cm := range doc.List {
					arg, ok := directiveArg(cm.Text, StatesPragma)
					if !ok {
						continue
					}
					ti.addSpec(pkg, ts, cm, arg)
				}
			}
		}
	}
}

// addSpec parses one states annotation and registers (or rejects) it.
func (ti *typestateInfo) addSpec(pkg *Package, ts *ast.TypeSpec, cm *ast.Comment, arg string) {
	bad := func(pos token.Pos, format string, args ...any) {
		ti.annDiags = append(ti.annDiags, contractDiag{rule: "lifecycle", pkg: pkg, pos: pos,
			msg: fmt.Sprintf(format, args...)})
	}
	specText, _, _ := strings.Cut(arg, "--")
	// Byte offset of the spec within the comment text, for positioned
	// parse errors.
	specBase := cm.Pos() + token.Pos(strings.Index(cm.Text, arg))
	d, err := parseStateDFA(strings.TrimSpace(specText))
	if err != nil {
		pos := cm.Pos()
		if se, ok := err.(*specError); ok {
			pos = specBase + token.Pos(se.off)
		}
		bad(pos, "malformed //dophy:states: %s", err)
		return
	}
	tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	if _, dup := ti.dfas[tn]; dup {
		bad(cm.Pos(), "type %s already has a //dophy:states contract; merge the specs", tn.Name())
		return
	}
	// Every tracked method must actually exist on T or *T, so the contract
	// cannot silently drift from the type's method set.
	mset := types.NewMethodSet(types.NewPointer(tn.Type()))
	for method := range d.tracked {
		found := false
		for i := 0; i < mset.Len(); i++ {
			if mset.At(i).Obj().Name() == method {
				found = true
				break
			}
		}
		if !found {
			bad(cm.Pos(), "//dophy:states names method %s, but %s has no such method", method, tn.Name())
			return
		}
	}
	ti.dfas[tn] = &stateDFA{tn: tn, spec: d, pos: cm.Pos()}
}

// dfaFor returns the DFA governing type t (through pointers), if any.
func (ti *typestateInfo) dfaFor(t types.Type) *stateDFA {
	if pt, ok := t.(*types.Pointer); ok {
		t = pt.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return ti.dfas[named.Obj()]
}

// typestateDiags runs (once) the whole-module lifecycle analysis and caches
// the diagnostics; the lifecycle rule replays them per package so waiver
// pragmas apply — the same pattern the contract rules use.
func (m *Module) typestateDiags() []contractDiag {
	if m.tsDone {
		return m.tsDiags
	}
	m.tsDone = true
	ti := m.typestateInfoOf()
	diags := append([]contractDiag{}, ti.annDiags...)
	if len(ti.dfas) > 0 {
		tc := &tsChecker{mod: m, info: ti, cg: m.CallGraph(), summaries: map[summaryKey]*tsSummary{}}
		for _, n := range tc.cg.order {
			if n.Decl.Body == nil {
				continue
			}
			tc.node = n
			tc.execStmts(n.Decl.Body.List, tsEnv{})
		}
		diags = append(diags, tc.diags...)
	}
	m.tsDiags = diags
	return diags
}

// tsVal is a tracked local's current DFA state.
type tsVal struct {
	dfa   *stateDFA
	state string
}

// tsEnv maps tracked locals to their known states. Absence means unknown:
// no transitions are checked and no diagnostics are possible.
type tsEnv map[types.Object]tsVal

// tsChecker is the per-module lifecycle walker.
type tsChecker struct {
	mod  *Module
	info *typestateInfo
	cg   *CallGraph
	node *FuncNode

	summaries map[summaryKey]*tsSummary
	diags     []contractDiag
}

func (tc *tsChecker) report(pos token.Pos, format string, args ...any) {
	tc.diags = append(tc.diags, contractDiag{rule: "lifecycle", pkg: tc.node.Pkg, pos: pos,
		msg: fmt.Sprintf(format, args...)})
}

func (tc *tsChecker) execStmts(stmts []ast.Stmt, env tsEnv) {
	for _, s := range stmts {
		tc.execStmt(s, env)
	}
}

// execStmt interprets one statement over env: creations enter the initial
// state, tracked method calls step the DFA, escapes drop tracking, and
// branch joins keep only states agreed on by every path.
func (tc *tsChecker) execStmt(s ast.Stmt, env tsEnv) {
	switch v := s.(type) {
	case *ast.DeclStmt:
		gd, ok := v.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, val := range vs.Values {
				tc.execExpr(val, env)
			}
			if len(vs.Values) == 0 && vs.Type != nil {
				// `var x T`: the zero value of an annotated value type is a
				// fresh construction.
				if tv, ok := tc.node.Pkg.Info.Types[vs.Type]; ok {
					if dfa := tc.info.dfaFor(tv.Type); dfa != nil {
						if _, isPtr := tv.Type.(*types.Pointer); !isPtr {
							for _, name := range vs.Names {
								if obj := tc.node.Pkg.Info.Defs[name]; obj != nil {
									env[obj] = tsVal{dfa: dfa, state: dfa.spec.initial()}
								}
							}
						}
					}
				}
				continue
			}
			tc.bind(vs.Names, vs.Values, env)
		}
	case *ast.AssignStmt:
		for _, rhs := range v.Rhs {
			tc.execExpr(rhs, env)
		}
		var names []*ast.Ident
		lhsOK := true
		for _, lhs := range v.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				lhsOK = false
				tc.execExpr(lhs, env)
				continue
			}
			names = append(names, id)
		}
		if lhsOK && len(v.Lhs) == len(v.Rhs) {
			tc.bind(names, v.Rhs, env)
			return
		}
		// Tuple or partially non-ident assignment: every ident target is
		// rebound to an unknown-state value.
		for _, id := range names {
			if obj := objectOf(tc.node.Pkg.Info, id); obj != nil {
				delete(env, obj)
			}
		}
	case *ast.ExprStmt:
		tc.execExpr(v.X, env)
	case *ast.IfStmt:
		if v.Init != nil {
			tc.execStmt(v.Init, env)
		}
		tc.execExpr(v.Cond, env)
		thenEnv := maps.Clone(env)
		tc.execStmt(v.Body, thenEnv)
		elseEnv := maps.Clone(env)
		if v.Else != nil {
			tc.execStmt(v.Else, elseEnv)
		}
		joinInto(env, thenEnv, elseEnv)
	case *ast.BlockStmt:
		tc.execStmts(v.List, env)
	case *ast.ForStmt:
		if v.Init != nil {
			tc.execStmt(v.Init, env)
		}
		if v.Cond != nil {
			tc.execExpr(v.Cond, env)
		}
		tc.havocLoop(v.Body, v.Post, env)
	case *ast.RangeStmt:
		tc.execExpr(v.X, env)
		for _, e := range []ast.Expr{v.Key, v.Value} {
			if id, ok := e.(*ast.Ident); ok && e != nil {
				if obj := objectOf(tc.node.Pkg.Info, id); obj != nil {
					delete(env, obj)
				}
			}
		}
		tc.havocLoop(v.Body, nil, env)
	case *ast.SwitchStmt:
		if v.Init != nil {
			tc.execStmt(v.Init, env)
		}
		if v.Tag != nil {
			tc.execExpr(v.Tag, env)
		}
		tc.execClauses(v.Body, env)
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			tc.execStmt(v.Init, env)
		}
		tc.execStmt(v.Assign, env)
		tc.execClauses(v.Body, env)
	case *ast.SelectStmt:
		tc.execClauses(v.Body, env)
	case *ast.ReturnStmt:
		for _, e := range v.Results {
			tc.execExpr(e, env)
		}
	case *ast.SendStmt:
		tc.execExpr(v.Chan, env)
		tc.execExpr(v.Value, env)
	case *ast.GoStmt:
		// The call runs concurrently: everything it can reach leaves the
		// current flow's control.
		tc.dropIdents(v.Call, env)
	case *ast.DeferStmt:
		tc.dropIdents(v.Call, env)
	case *ast.IncDecStmt:
		tc.execExpr(v.X, env)
	case *ast.LabeledStmt:
		tc.execStmt(v.Stmt, env)
	}
}

// execClauses runs each case/comm clause of a switch-like body on its own
// clone and joins the results (the no-match path keeps env as-is).
func (tc *tsChecker) execClauses(body *ast.BlockStmt, env tsEnv) {
	outs := []tsEnv{maps.Clone(env)}
	for _, cl := range body.List {
		e := maps.Clone(env)
		switch c := cl.(type) {
		case *ast.CaseClause:
			for _, x := range c.List {
				tc.execExpr(x, e)
			}
			tc.execStmts(c.Body, e)
		case *ast.CommClause:
			if c.Comm != nil {
				tc.execStmt(c.Comm, e)
			}
			tc.execStmts(c.Body, e)
		}
		outs = append(outs, e)
	}
	joinInto(env, outs...)
}

// havocLoop drops every tracked local the loop body (or post statement)
// might touch, then interprets the body once so values constructed inside
// the loop are still checked. The body may run zero or many times; only
// facts that survive both are kept.
func (tc *tsChecker) havocLoop(body *ast.BlockStmt, post ast.Stmt, env tsEnv) {
	info := tc.node.Pkg.Info
	scan := func(n ast.Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			id, ok := x.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := objectOf(info, id); obj != nil {
				delete(env, obj)
			}
			return true
		})
	}
	scan(body)
	if post != nil {
		scan(post)
	}
	inner := maps.Clone(env)
	tc.execStmts(body.List, inner)
	if post != nil {
		tc.execStmt(post, inner)
	}
}

// joinInto replaces env with the agreement of the given branch outcomes.
func joinInto(env tsEnv, branches ...tsEnv) {
	first := branches[0]
	for obj := range env {
		delete(env, obj)
	}
	for obj, v := range first {
		agreed := true
		for _, b := range branches[1:] {
			if bv, ok := b[obj]; !ok || bv != v {
				agreed = false
				break
			}
		}
		if agreed {
			env[obj] = v
		}
	}
}

// bind processes pairwise `lhs[i] = rhs[i]` bindings: a visible
// construction enters the initial state, anything else clears tracking.
func (tc *tsChecker) bind(names []*ast.Ident, values []ast.Expr, env tsEnv) {
	info := tc.node.Pkg.Info
	for i, id := range names {
		obj := objectOf(info, id)
		if obj == nil {
			continue
		}
		delete(env, obj)
		if i >= len(values) {
			continue
		}
		if dfa := tc.initExprDFA(values[i]); dfa != nil {
			env[obj] = tsVal{dfa: dfa, state: dfa.spec.initial()}
		}
	}
}

// initExprDFA reports the DFA whose initial state e visibly constructs:
// composite literals, new(T), and New*/new* constructor calls.
func (tc *tsChecker) initExprDFA(e ast.Expr) *stateDFA {
	info := tc.node.Pkg.Info
	e = ast.Unparen(e)
	tv, ok := info.Types[e]
	if !ok {
		return nil
	}
	dfa := tc.info.dfaFor(tv.Type)
	if dfa == nil {
		return nil
	}
	switch v := e.(type) {
	case *ast.CompositeLit:
		return dfa
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			if _, isLit := ast.Unparen(v.X).(*ast.CompositeLit); isLit {
				return dfa
			}
		}
	case *ast.CallExpr:
		switch fun := ast.Unparen(v.Fun).(type) {
		case *ast.Ident:
			if fun.Name == "new" && isBuiltin(info.Uses[fun]) {
				return dfa
			}
			if isInitLike(fun.Name) {
				return dfa
			}
		case *ast.SelectorExpr:
			if isInitLike(fun.Sel.Name) {
				return dfa
			}
		}
	}
	return nil
}

// execExpr interprets an expression: nested calls run in evaluation order,
// tracked locals step their DFA at method calls, and any use the checker
// cannot prove state-neutral drops tracking.
func (tc *tsChecker) execExpr(e ast.Expr, env tsEnv) {
	if e == nil {
		return
	}
	info := tc.node.Pkg.Info
	switch v := e.(type) {
	case *ast.Ident:
		// A bare use in a context no other case sanctioned: the value may
		// alias away, so its state is no longer known.
		if obj := info.Uses[v]; obj != nil {
			delete(env, obj)
		}
	case *ast.ParenExpr:
		tc.execExpr(v.X, env)
	case *ast.SelectorExpr:
		// Field reads (and reads through package selectors) are
		// state-neutral; method values taken without a call are an escape
		// of the receiver.
		if sel := info.Selections[v]; sel != nil && sel.Kind() != types.FieldVal {
			tc.execExpr(v.X, env)
			return
		}
		if _, isIdent := ast.Unparen(v.X).(*ast.Ident); isIdent {
			return // base of a field chain: state-neutral
		}
		tc.execExpr(v.X, env)
	case *ast.CallExpr:
		tc.execCall(v, env)
	case *ast.StarExpr:
		tc.execExpr(v.X, env)
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			// &x on its own is an alias; the sanctioned &x-as-argument form
			// is intercepted by execCall before recursion reaches here.
			tc.execExpr(v.X, env)
			return
		}
		tc.execExpr(v.X, env)
	case *ast.BinaryExpr:
		tc.execExpr(v.X, env)
		tc.execExpr(v.Y, env)
	case *ast.IndexExpr:
		tc.execExpr(v.X, env)
		tc.execExpr(v.Index, env)
	case *ast.IndexListExpr:
		tc.execExpr(v.X, env)
		for _, ix := range v.Indices {
			tc.execExpr(ix, env)
		}
	case *ast.SliceExpr:
		tc.execExpr(v.X, env)
		tc.execExpr(v.Low, env)
		tc.execExpr(v.High, env)
		tc.execExpr(v.Max, env)
	case *ast.TypeAssertExpr:
		tc.execExpr(v.X, env)
	case *ast.CompositeLit:
		for _, elt := range v.Elts {
			tc.execExpr(elt, env)
		}
	case *ast.KeyValueExpr:
		tc.execExpr(v.Key, env)
		tc.execExpr(v.Value, env)
	case *ast.FuncLit:
		// The closure may run at any time: captures leave this flow.
		tc.dropIdents(v.Body, env)
	}
}

// execCall applies one call's effect: receiver transitions for tracked
// methods, callee summaries for tracked arguments, escapes for everything
// the summary machinery cannot prove.
func (tc *tsChecker) execCall(call *ast.CallExpr, env tsEnv) {
	info := tc.node.Pkg.Info
	fun := ast.Unparen(call.Fun)

	// Receiver side.
	var callee *types.Func
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			callee, _ = s.Obj().(*types.Func)
			recv := ast.Unparen(sel.X)
			if id, ok := recv.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					if v, tracked := env[obj]; tracked {
						tc.applyMethod(call, obj, v, callee, env)
					}
				}
			} else {
				tc.execExpr(sel.X, env)
			}
		} else {
			// Package-qualified function or field-typed callee.
			tc.execExpr(sel.X, env)
			if obj, ok := info.Uses[sel.Sel].(*types.Func); ok {
				callee = obj
			}
		}
	} else if id, ok := fun.(*ast.Ident); ok {
		if obj, ok := info.Uses[id].(*types.Func); ok {
			callee = obj
		}
	} else {
		tc.execExpr(fun, env)
	}

	// Argument side: a tracked local passed by value or address goes
	// through the callee's parameter summary; other arguments are ordinary
	// expressions.
	for i, arg := range call.Args {
		a := ast.Unparen(arg)
		if ue, ok := a.(*ast.UnaryExpr); ok && ue.Op == token.AND {
			a = ast.Unparen(ue.X)
		}
		id, ok := a.(*ast.Ident)
		if !ok {
			tc.execExpr(arg, env)
			continue
		}
		obj := info.Uses[id]
		if obj == nil {
			continue
		}
		v, tracked := env[obj]
		if !tracked {
			continue
		}
		tc.applyArgSummary(call, obj, v, callee, i, env)
	}
}

// applyMethod steps a tracked receiver through one method call.
func (tc *tsChecker) applyMethod(call *ast.CallExpr, obj types.Object, v tsVal, callee *types.Func, env tsEnv) {
	if callee == nil {
		delete(env, obj)
		return
	}
	name := callee.Name()
	if v.dfa.spec.tracked[name] {
		next, ok := v.dfa.spec.step(v.state, name)
		if !ok {
			tc.report(call.Pos(), "%s.%s called in state %q; the //dophy:states contract of %s allows here: %s",
				obj.Name(), name, v.state, v.dfa.tn.Name(), v.dfa.spec.legalFrom(v.state))
			delete(env, obj)
			return
		}
		env[obj] = tsVal{dfa: v.dfa, state: next}
		return
	}
	// Untracked method: its summary tells us which tracked methods it
	// applies to the receiver, if that effect is a straight line.
	tc.applySummary(call, obj, v, callee, -1, env)
}

// applyArgSummary steps a tracked argument through the callee's parameter
// summary (dropping tracking when no summary is computable).
func (tc *tsChecker) applyArgSummary(call *ast.CallExpr, obj types.Object, v tsVal, callee *types.Func, argIdx int, env tsEnv) {
	if callee == nil {
		delete(env, obj)
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || (sig.Variadic() && argIdx >= sig.Params().Len()-1) {
		delete(env, obj)
		return
	}
	if argIdx >= sig.Params().Len() {
		delete(env, obj)
		return
	}
	tc.applySummary(call, obj, v, callee, argIdx, env)
}

// applySummary runs one callee summary over a tracked value's state.
func (tc *tsChecker) applySummary(call *ast.CallExpr, obj types.Object, v tsVal, callee *types.Func, param int, env tsEnv) {
	sum := tc.summary(callee, param)
	if sum == nil || !sum.ok || sum.dfa != v.dfa {
		delete(env, obj)
		return
	}
	state := v.state
	for _, method := range sum.seq {
		next, ok := v.dfa.spec.step(state, method)
		if !ok {
			tc.report(call.Pos(), "call to %s drives %s (state %q) through %s.%s, which state %q does not allow; legal here: %s",
				callee.Name(), obj.Name(), v.state, v.dfa.tn.Name(), method, state, v.dfa.spec.legalFrom(state))
			delete(env, obj)
			return
		}
		state = next
	}
	env[obj] = tsVal{dfa: v.dfa, state: state}
}

// dropIdents clears tracking for every local referenced under n.
func (tc *tsChecker) dropIdents(n ast.Node, env tsEnv) {
	info := tc.node.Pkg.Info
	ast.Inspect(n, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := info.Uses[id]; obj != nil {
			delete(env, obj)
		}
		return true
	})
}

// summaryKey identifies one (callee, parameter) summary; param -1 is the
// receiver.
type summaryKey struct {
	fn    *types.Func
	param int
}

// tsSummary is the net DFA effect a callee applies to one parameter: a
// straight-line sequence of tracked methods (ok), or no usable summary.
type tsSummary struct {
	dfa *stateDFA
	seq []string
	ok  bool
}

var summaryTop = &tsSummary{}

// summary computes (memoized) the DFA effect of fn on its param-th
// parameter. The effect is usable only when every use of the parameter in
// the body is a field read or an unconditional top-level method call —
// branches, loops, escapes and recursion all collapse to "unknown".
func (tc *tsChecker) summary(fn *types.Func, param int) *tsSummary {
	key := summaryKey{fn: fn, param: param}
	if s, ok := tc.summaries[key]; ok {
		if s == nil { // recursion in progress
			return summaryTop
		}
		return s
	}
	tc.summaries[key] = nil
	s := tc.computeSummary(fn, param)
	tc.summaries[key] = s
	return s
}

func (tc *tsChecker) computeSummary(fn *types.Func, param int) *tsSummary {
	node := tc.cg.Nodes[fn]
	if node == nil || node.Decl.Body == nil {
		return summaryTop
	}
	var obj types.Object
	if param == -1 {
		if node.Decl.Recv == nil || len(node.Decl.Recv.List) == 0 || len(node.Decl.Recv.List[0].Names) == 0 {
			// Unnamed receiver: the body cannot touch it.
			sig := fn.Type().(*types.Signature)
			if sig.Recv() == nil {
				return summaryTop
			}
			return &tsSummary{dfa: tc.info.dfaFor(sig.Recv().Type()), ok: true}
		}
		obj = node.Pkg.Info.Defs[node.Decl.Recv.List[0].Names[0]]
	} else {
		idx := 0
		for _, field := range node.Decl.Type.Params.List {
			if len(field.Names) == 0 {
				idx++
				continue
			}
			for _, name := range field.Names {
				if idx == param {
					obj = node.Pkg.Info.Defs[name]
				}
				idx++
			}
		}
	}
	if obj == nil {
		return summaryTop
	}
	dfa := tc.info.dfaFor(obj.Type())
	if dfa == nil {
		return summaryTop
	}
	sum := &tsSummary{dfa: dfa, ok: true}
	// Pass 1: every use of obj must be a field read or the receiver of a
	// top-level method call; anything else voids the summary.
	info := node.Pkg.Info
	topCalls := map[*ast.CallExpr]bool{}
	for _, stmt := range node.Decl.Body.List {
		var call *ast.CallExpr
		switch st := stmt.(type) {
		case *ast.ExprStmt:
			call, _ = ast.Unparen(st.X).(*ast.CallExpr)
		case *ast.AssignStmt:
			if len(st.Rhs) == 1 {
				call, _ = ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
			}
		case *ast.ReturnStmt:
			if len(st.Results) == 1 {
				call, _ = ast.Unparen(st.Results[0]).(*ast.CallExpr)
			}
		}
		if call != nil {
			topCalls[call] = true
		}
	}
	type recvCall struct {
		call   *ast.CallExpr
		callee *types.Func
	}
	var calls []recvCall
	valid := true
	var stack []ast.Node
	ast.Inspect(node.Decl.Body, func(x ast.Node) bool {
		if x == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, x)
		id, ok := x.(*ast.Ident)
		if !ok || info.Uses[id] != obj {
			return true
		}
		// Climb: ident (possibly under & or parens) must sit as sel.X of a
		// selector.
		pi := len(stack) - 2
		n := ast.Node(id)
		if pi >= 0 {
			if ue, ok := stack[pi].(*ast.UnaryExpr); ok && ue.Op == token.AND {
				n, pi = ue, pi-1
			}
		}
		if pi >= 0 {
			if pe, ok := stack[pi].(*ast.ParenExpr); ok {
				n, pi = pe, pi-1
			}
		}
		if pi < 0 {
			valid = false
			return true
		}
		sel, ok := stack[pi].(*ast.SelectorExpr)
		if !ok || (sel.X != n && ast.Unparen(sel.X) != n) {
			valid = false
			return true
		}
		s := info.Selections[sel]
		if s == nil {
			valid = false
			return true
		}
		if s.Kind() == types.FieldVal {
			return true // field reads are state-neutral anywhere
		}
		var call *ast.CallExpr
		if pi-1 >= 0 {
			if c, ok := stack[pi-1].(*ast.CallExpr); ok && c.Fun == sel {
				call = c
			}
		}
		if call == nil || !topCalls[call] {
			valid = false
			return true
		}
		callee, _ := s.Obj().(*types.Func)
		if callee == nil {
			valid = false
			return true
		}
		calls = append(calls, recvCall{call: call, callee: callee})
		return true
	})
	if !valid {
		return summaryTop
	}
	// Pass 2: splice the sequence in source order, recursing through
	// untracked helper methods.
	for _, rc := range calls {
		name := rc.callee.Name()
		if dfa.spec.tracked[name] {
			sum.seq = append(sum.seq, name)
			continue
		}
		inner := tc.summary(rc.callee, -1)
		if inner == nil || !inner.ok || (inner.dfa != nil && inner.dfa != dfa) {
			return summaryTop
		}
		sum.seq = append(sum.seq, inner.seq...)
	}
	return sum
}

// ---------------------------------------------------------------------------
// Rule lifecycle: method-call orders declared by //dophy:states hold.
//
// A type's DFA is its reuse contract — Solve before SolveWarm, Reset before
// At, subscriptions before the first RunEpoch. The checker proves every
// visibly constructed local obeys it, using callee summaries where a value
// escapes into another module function.
// ---------------------------------------------------------------------------

type ruleLifecycle struct{}

func (ruleLifecycle) Name() string { return "lifecycle" }

func (ruleLifecycle) Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	for _, d := range m.typestateDiags() {
		if d.pkg == pkg && d.rule == "lifecycle" {
			report(d.pos, "%s", d.msg)
		}
	}
}
