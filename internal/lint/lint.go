package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one rule violation.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Rule is one determinism/ownership invariant check.
type Rule interface {
	// Name is the rule's identifier, used in diagnostics and pragmas.
	Name() string
	// Check reports violations in pkg via report.
	Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any))
}

// AllRules returns the full rule catalogue.
func AllRules() []Rule {
	return []Rule{
		ruleRand{}, ruleWallTime{}, ruleMapRange{}, ruleGoStmt{}, rulePoolEscape{}, ruleDenseBound{},
		ruleHotPathAlloc{}, ruleDetermFlow{}, ruleIdxDomain{}, ruleValRange{}, ruleExhaustive{},
		ruleOwnerCross{}, ruleSendOwn{}, ruleBarrierOrder{}, ruleLifecycle{}, ruleBorrowSpan{},
		ruleReadOnly{}, ruleEffects{},
	}
}

// PragmaPrefix introduces an in-source waiver comment:
//
//	//dophy:allow <rule> -- <justification>
//
// placed on the offending line or the line directly above it.
const PragmaPrefix = "//dophy:allow"

// allowKey identifies one waived (file, line, rule) site.
type allowKey struct {
	file string
	line int
	rule string
}

// Run applies the rules to every package and returns the surviving
// diagnostics sorted by position. Pragma-waived diagnostics are dropped.
// Stale-waiver diagnostics are NOT included — they depend on the tag set
// being linted, so callers that lint several tag sets must use RunDetail
// and intersect the stale sets.
func (m *Module) Run(rules []Rule) []Diagnostic {
	diags, _ := m.RunDetail(rules)
	return diags
}

// RunDetail applies the rules and returns two diagnostic sets:
//
//   - diags: rule violations surviving waivers, plus structurally broken
//     pragmas (no rules, unknown rule, missing justification). These are
//     definitive for the tag set linted.
//   - stale: waivers that suppressed nothing during this run. A waiver may
//     legitimately bite only under another tag set (e.g. dophy_invariants
//     builds), so staleness is only actionable once intersected across
//     every tag set the caller lints.
func (m *Module) RunDetail(rules []Rule) (diags, stale []Diagnostic) {
	idx := m.newPragmaIndex(rules)
	m.pidx = idx
	defer func() { m.pidx = nil }()
	for _, pkg := range m.Packages {
		for _, r := range rules {
			rule := r
			report := func(pos token.Pos, format string, args ...any) {
				if idx.allowedAt(rule.Name(), pos) {
					return
				}
				p := m.Fset.Position(pos)
				diags = append(diags, Diagnostic{Pos: p, Rule: rule.Name(), Msg: fmt.Sprintf(format, args...)})
			}
			rule.Check(m, pkg, report)
		}
	}
	diags = append(diags, idx.malformedPragmaDiags()...)
	sortDiags(diags)
	stale = idx.staleDiags()
	sortDiags(stale)
	return diags, stale
}

// SortDiagnostics orders diags by position then rule — the canonical output
// order, exposed for drivers that merge diagnostics from several passes.
func SortDiagnostics(diags []Diagnostic) { sortDiags(diags) }

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}

// importNames returns the local identifier(s) a file binds to the given
// import path (handles renamed imports; "_" and "." imports yield none).
func importNames(f *ast.File, path string) []string {
	var out []string
	for _, spec := range f.Imports {
		p := strings.Trim(spec.Path.Value, `"`)
		if p != path {
			continue
		}
		name := p[strings.LastIndex(p, "/")+1:]
		if spec.Name != nil {
			name = spec.Name.Name
		}
		if name != "_" && name != "." {
			out = append(out, name)
		}
	}
	return out
}

// isPkgSelector reports whether expr is a selector on one of the given
// local package names (e.g. time.Now with names == ["time"]).
func isPkgSelector(expr ast.Node, names []string) (sel *ast.SelectorExpr, ok bool) {
	s, isSel := expr.(*ast.SelectorExpr)
	if !isSel {
		return nil, false
	}
	id, isIdent := s.X.(*ast.Ident)
	if !isIdent {
		return nil, false
	}
	for _, n := range names {
		if id.Name == n {
			return s, true
		}
	}
	return nil, false
}

// objectOf resolves an identifier through Defs then Uses.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}
