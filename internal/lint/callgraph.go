package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotPragma annotates a function declaration (in its doc comment) as a
// proven-hot surface: the hotpathalloc rule requires it and everything it
// transitively calls to stay free of per-call heap allocation.
const HotPragma = "//dophy:hotpath"

// EdgeKind classifies how a call edge was resolved.
type EdgeKind int

const (
	// EdgeDirect is a statically resolved call: a package-level function
	// or a method on a concrete receiver type.
	EdgeDirect EdgeKind = iota
	// EdgeInterface is a class-hierarchy candidate: a concrete method of a
	// module type that implements the interface being called through.
	EdgeInterface
	// EdgeFuncValue is a signature-matched candidate for a call through a
	// function value (variable, parameter, struct field, method value).
	EdgeFuncValue
	// EdgeUnresolved marks an indirect call whose callee set could not be
	// proven complete (no candidates, or function literals of matching
	// signature exist somewhere in the module). Sound analyses must assume
	// the worst of it.
	EdgeUnresolved
	// EdgeExternal is a call that leaves the module (stdlib or faked
	// import); Ext identifies the callee, whose body is not analysable.
	EdgeExternal
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeDirect:
		return "direct"
	case EdgeInterface:
		return "interface"
	case EdgeFuncValue:
		return "funcvalue"
	case EdgeUnresolved:
		return "unresolved"
	case EdgeExternal:
		return "external"
	}
	return "unknown"
}

// Edge is one call site -> callee relation.
type Edge struct {
	Pos  token.Pos
	Kind EdgeKind
	// Callee is the module-local target (nil for EdgeUnresolved and
	// EdgeExternal).
	Callee *FuncNode
	// Ext is the out-of-module callee for EdgeExternal.
	Ext *types.Func
	// Deferred and Go mark defer/go call sites.
	Deferred bool
	Go       bool
	// IfaceMiss marks an EdgeUnresolved that came from an interface call
	// with no module implementers: the callee necessarily lives outside the
	// module (a stdlib error value, an injected io.Writer, ...), which the
	// determinism analysis treats as out of scope.
	IfaceMiss bool
	// Local marks a call through a function-typed parameter or local
	// variable — higher-order plumbing whose possible values are created
	// (and analysed) at the caller's caller. Package-level function vars
	// and struct fields are NOT Local: they are mutable dispatch points.
	Local bool
}

// FuncNode is one declared function or method of the module.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	File *File
	Pkg  *Package
	// Hot is set when the declaration carries a //dophy:hotpath annotation.
	Hot    bool
	HotPos token.Pos
	// Window and Barrier capture the //dophy:window / //dophy:barrier
	// concurrency-contract annotations (contracts.go).
	Window     bool
	WindowPos  token.Pos
	Barrier    bool
	BarrierPos token.Pos
	Calls      []Edge
	// callers is the reverse adjacency, filled after all edges exist.
	callers []callerRef
}

type callerRef struct {
	node *FuncNode
	edge *Edge
}

// Name returns a stable human-readable identifier: the package-relative
// path plus the types.Func name (which includes the receiver for methods).
func (n *FuncNode) Name() string {
	name := n.Fn.Name()
	if sig, ok := n.Fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		name = "(" + types.TypeString(recv, func(p *types.Package) string { return "" }) + ")." + name
	}
	if n.Pkg.RelPath == "" {
		return name
	}
	return n.Pkg.RelPath + "." + name
}

// CallGraph is the module-wide static call graph: one node per declared
// function/method, with call edges resolved as far as a flow-insensitive
// analysis can. Interface calls are expanded by class-hierarchy analysis
// over the module's named types; calls through function values are matched
// against the address-taken functions of identical signature. Both are
// approximations: candidate sets outside the module are invisible, and a
// matching function literal anywhere makes a function-value call
// EdgeUnresolved so sound clients assume the worst. Function literals
// themselves are attributed to their enclosing declaration — a closure's
// body is scanned as part of its encloser.
type CallGraph struct {
	mod   *Module
	Nodes map[*types.Func]*FuncNode
	// order holds the nodes in deterministic construction order (packages
	// sorted by path, files and declarations in source order). Analyses
	// iterate it — never the Nodes map — so diagnostics, taint chains and
	// caller lists come out identical on every run.
	order []*FuncNode
}

// CallGraph builds (once) and returns the module's call graph.
func (m *Module) CallGraph() *CallGraph {
	if m.cg != nil {
		return m.cg
	}
	cg := &CallGraph{mod: m, Nodes: map[*types.Func]*FuncNode{}}
	m.cg = cg

	// Pass 1: one node per declaration; hot annotations from doc comments.
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				node := &FuncNode{Fn: obj, Decl: fd, File: file, Pkg: pkg}
				if fd.Doc != nil {
					for _, c := range fd.Doc.List {
						if isHotPragma(c.Text) {
							node.Hot = true
							node.HotPos = c.Pos()
						}
						if _, ok := directiveArg(c.Text, WindowPragma); ok {
							node.Window = true
							node.WindowPos = c.Pos()
						}
						if _, ok := directiveArg(c.Text, BarrierPragma); ok {
							node.Barrier = true
							node.BarrierPos = c.Pos()
						}
					}
				}
				cg.Nodes[obj] = node
				cg.order = append(cg.order, node)
			}
		}
	}

	// Pass 2: address-taken functions and function-literal signatures, for
	// function-value call resolution. A function referenced anywhere
	// outside call position may flow into any compatible function value.
	addrTaken := map[string][]*FuncNode{} // canonical signature -> candidates
	litSigs := map[string]bool{}          // signatures of func literals
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			// skip holds nodes that are the Fun of a call (not value uses)
			// and the Sel idents of selectors (handled via the selector).
			skip := map[ast.Node]bool{}
			ast.Inspect(file.AST, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.CallExpr:
					skip[ast.Unparen(v.Fun)] = true
				case *ast.FuncLit:
					if tv, ok := pkg.Info.Types[v]; ok && tv.Type != nil {
						litSigs[sigKey(tv.Type)] = true
					}
				case *ast.SelectorExpr:
					skip[v.Sel] = true
					if !skip[v] {
						cg.collectAddrTakenLeaf(pkg, v, addrTaken)
					}
				case *ast.Ident:
					if !skip[v] {
						cg.collectAddrTakenLeaf(pkg, v, addrTaken)
					}
				}
				return true
			})
		}
	}

	// Pass 3: call edges.
	for _, node := range cg.order {
		body := node.Decl.Body
		if body == nil {
			continue
		}
		node.Calls = cg.scanCalls(node.Pkg, body, addrTaken, litSigs)
	}

	// Reverse adjacency, in deterministic order: taint chains follow the
	// first caller found, so caller lists must be reproducible.
	for _, node := range cg.order {
		for i := range node.Calls {
			e := &node.Calls[i]
			if e.Callee != nil {
				e.Callee.callers = append(e.Callee.callers, callerRef{node: node, edge: e})
			}
		}
	}
	return cg
}

func isHotPragma(text string) bool {
	rest, ok := strings.CutPrefix(text, HotPragma)
	return ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t')
}

// collectAddrTakenLeaf registers one identifier or selector as an
// address-taken function reference if it resolves to a module function.
func (cg *CallGraph) collectAddrTakenLeaf(pkg *Package, n ast.Node, into map[string][]*FuncNode) {
	var obj types.Object
	switch v := n.(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[v]
	case *ast.SelectorExpr:
		if sel := pkg.Info.Selections[v]; sel != nil && sel.Kind() == types.MethodVal {
			obj = sel.Obj()
		} else {
			obj = pkg.Info.Uses[v.Sel]
		}
	default:
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	node := cg.Nodes[fn]
	if node == nil {
		return
	}
	key := sigKey(fn.Type())
	for _, existing := range into[key] {
		if existing == node {
			return
		}
	}
	into[key] = append(into[key], node)
}

// sigKey canonicalises a signature for function-value matching. The
// receiver (if any) is dropped: a method value has the receiver already
// bound, so its value-type is the receiverless signature.
func sigKey(t types.Type) string {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return ""
	}
	if sig.Recv() != nil {
		sig = types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	}
	return types.TypeString(sig, func(p *types.Package) string { return p.Path() })
}

// scanCalls finds and resolves every call site in body (including bodies
// of nested function literals, attributed to the same node).
func (cg *CallGraph) scanCalls(pkg *Package, body *ast.BlockStmt, addrTaken map[string][]*FuncNode, litSigs map[string]bool) []Edge {
	var edges []Edge
	var walk func(n ast.Node, deferred, goStmt bool)
	walk = func(root ast.Node, deferred, goStmt bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.DeferStmt:
				walk(v.Call, true, false)
				return false
			case *ast.GoStmt:
				walk(v.Call, false, true)
				return false
			case *ast.CallExpr:
				edges = append(edges, cg.resolveCall(pkg, v, addrTaken, litSigs, deferred, goStmt)...)
				// Arguments and the Fun expression may contain further
				// calls; those are ordinary (not deferred) calls.
				walk(v.Fun, false, false)
				for _, arg := range v.Args {
					walk(arg, false, false)
				}
				return false
			}
			return true
		})
	}
	walk(body, false, false)
	return edges
}

// resolveCall classifies one call expression into zero or more edges.
func (cg *CallGraph) resolveCall(pkg *Package, call *ast.CallExpr, addrTaken map[string][]*FuncNode, litSigs map[string]bool, deferred, goStmt bool) []Edge {
	fun := ast.Unparen(call.Fun)
	mk := func(kind EdgeKind, callee *FuncNode, ext *types.Func) Edge {
		return Edge{Pos: call.Pos(), Kind: kind, Callee: callee, Ext: ext, Deferred: deferred, Go: goStmt}
	}

	// Type conversions are not calls.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return nil
	}

	switch v := fun.(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[v].(type) {
		case *types.Func:
			if node := cg.Nodes[obj]; node != nil {
				return []Edge{mk(EdgeDirect, node, nil)}
			}
			return []Edge{mk(EdgeExternal, nil, obj)}
		case *types.Builtin, nil:
			return nil
		default:
			// Function-typed variable or parameter.
			return cg.resolveFuncValue(obj.Type(), call, addrTaken, litSigs, deferred, goStmt, isLocalVar(obj))
		}
	case *ast.SelectorExpr:
		if sel := pkg.Info.Selections[v]; sel != nil {
			switch sel.Kind() {
			case types.MethodVal:
				recv := sel.Recv()
				if iface, ok := recv.Underlying().(*types.Interface); ok {
					return cg.resolveInterfaceCall(iface, v.Sel.Name, call, deferred, goStmt)
				}
				if fn, ok := sel.Obj().(*types.Func); ok {
					// A concrete method: resolve through the receiver's
					// named type to the module declaration.
					if node := cg.lookupMethod(fn); node != nil {
						return []Edge{mk(EdgeDirect, node, nil)}
					}
					return []Edge{mk(EdgeExternal, nil, fn)}
				}
			case types.FieldVal:
				// Calling a function-typed struct field.
				return cg.resolveFuncValue(sel.Type(), call, addrTaken, litSigs, deferred, goStmt, false)
			}
			return []Edge{mk(EdgeUnresolved, nil, nil)}
		}
		// Package-qualified identifier: pkg.Fn or pkg.Var.
		switch obj := pkg.Info.Uses[v.Sel].(type) {
		case *types.Func:
			if node := cg.Nodes[obj]; node != nil {
				return []Edge{mk(EdgeDirect, node, nil)}
			}
			return []Edge{mk(EdgeExternal, nil, obj)}
		case *types.Var:
			// Package-level function-typed variable.
			return cg.resolveFuncValue(obj.Type(), call, addrTaken, litSigs, deferred, goStmt, false)
		}
		return []Edge{mk(EdgeUnresolved, nil, nil)}
	case *ast.FuncLit:
		// Immediately-invoked literal: its body is already attributed to
		// the enclosing declaration by scanCalls.
		return nil
	}
	// Anything else (index expressions into function slices, results of
	// calls, ...) is an indirect call through a value.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.Type != nil {
		return cg.resolveFuncValue(tv.Type, call, addrTaken, litSigs, deferred, goStmt, false)
	}
	return []Edge{mk(EdgeUnresolved, nil, nil)}
}

// isLocalVar reports whether obj is a function-scoped variable or
// parameter (as opposed to a package-level variable or a struct field).
func isLocalVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return v.Pkg() == nil || v.Parent() == nil || v.Parent() != v.Pkg().Scope()
}

// resolveFuncValue matches an indirect call against the address-taken
// functions of identical signature. The edge set additionally carries an
// EdgeUnresolved marker when it cannot be proven complete: when function
// literals of the same signature exist anywhere in the module, or when no
// candidate matched at all.
func (cg *CallGraph) resolveFuncValue(t types.Type, call *ast.CallExpr, addrTaken map[string][]*FuncNode, litSigs map[string]bool, deferred, goStmt, local bool) []Edge {
	key := sigKey(t)
	var edges []Edge
	for _, cand := range addrTaken[key] {
		edges = append(edges, Edge{Pos: call.Pos(), Kind: EdgeFuncValue, Callee: cand, Deferred: deferred, Go: goStmt, Local: local})
	}
	if len(edges) == 0 || litSigs[key] {
		edges = append(edges, Edge{Pos: call.Pos(), Kind: EdgeUnresolved, Deferred: deferred, Go: goStmt, Local: local})
	}
	return edges
}

// resolveInterfaceCall expands a call through an interface by class
// hierarchy analysis: every named module type whose method set satisfies
// the interface contributes its method as a candidate. With no module
// candidates the call is unresolved (the implementation lives outside the
// module or is constructed dynamically).
func (cg *CallGraph) resolveInterfaceCall(iface *types.Interface, method string, call *ast.CallExpr, deferred, goStmt bool) []Edge {
	var edges []Edge
	for _, impl := range cg.mod.implementers(iface) {
		fn := implMethod(impl, method)
		if fn == nil {
			continue
		}
		if node := cg.lookupMethod(fn); node != nil {
			edges = append(edges, Edge{Pos: call.Pos(), Kind: EdgeInterface, Callee: node, Deferred: deferred, Go: goStmt})
		}
	}
	if len(edges) == 0 {
		edges = append(edges, Edge{Pos: call.Pos(), Kind: EdgeUnresolved, IfaceMiss: true, Deferred: deferred, Go: goStmt})
	}
	return edges
}

// lookupMethod maps a *types.Func (possibly an instantiated or embedded
// view of a method) back to the module's declared node.
func (cg *CallGraph) lookupMethod(fn *types.Func) *FuncNode {
	if node := cg.Nodes[fn]; node != nil {
		return node
	}
	if orig := fn.Origin(); orig != nil {
		return cg.Nodes[orig]
	}
	return nil
}

// implMethod finds the method with the given name in T's method set
// (value and pointer receivers both count: a caller holding an interface
// necessarily holds an addressable value).
func implMethod(t types.Type, name string) *types.Func {
	ms := types.NewMethodSet(types.NewPointer(t))
	for i := 0; i < ms.Len(); i++ {
		if fn, ok := ms.At(i).Obj().(*types.Func); ok && fn.Name() == name {
			return fn
		}
	}
	return nil
}

// implementers returns the module's named non-interface types that
// implement iface (directly or through a pointer receiver), cached per
// interface identity.
func (m *Module) implementers(iface *types.Interface) []types.Type {
	if m.implCache == nil {
		m.implCache = map[*types.Interface][]types.Type{}
	}
	if impls, ok := m.implCache[iface]; ok {
		return impls
	}
	var impls []types.Type
	for _, t := range m.namedTypes() {
		if _, isIface := t.Underlying().(*types.Interface); isIface {
			continue
		}
		if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
			impls = append(impls, t)
		}
	}
	m.implCache[iface] = impls
	return impls
}

// namedTypes enumerates (once) every named type declared in the module.
func (m *Module) namedTypes() []types.Type {
	if m.named != nil {
		return m.named
	}
	for _, pkg := range m.Packages {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			m.named = append(m.named, tn.Type())
		}
	}
	return m.named
}

// Funcs returns every declared function in deterministic order.
func (cg *CallGraph) Funcs() []*FuncNode { return cg.order }

// HotFuncs returns the //dophy:hotpath-annotated functions sorted by name.
func (cg *CallGraph) HotFuncs() []*FuncNode {
	var out []*FuncNode
	for _, n := range cg.order {
		if n.Hot {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Inventory renders the module's hot-path annotation inventory, one
// function per line ("<pkg-relative-path> <func>"), sorted — the golden
// format committed as hotpath-inventory.txt.
func Inventory(m *Module) []string {
	var out []string
	for _, n := range m.CallGraph().HotFuncs() {
		rel := n.Pkg.RelPath
		if rel == "" {
			rel = "."
		}
		name := n.Fn.Name()
		if sig, ok := n.Fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			name = "(" + types.TypeString(sig.Recv().Type(), func(p *types.Package) string { return "" }) + ")." + name
		}
		out = append(out, rel+" "+name)
	}
	sort.Strings(out)
	return out
}
