package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the write-effect layer: a whole-module, inter-procedural
// inference of what every function writes through pointers, slices, maps and
// fields, plus the two rules that consume the summaries.
//
// Every write is attributed to a *root*: the receiver, a parameter, a
// package-level variable, or fresh function-local storage. Roots flow
// through a flow-insensitive alias environment (x := e.Counts makes x an
// alias of the receiver's storage), and summaries propagate bottom-up
// through call-graph SCCs, so a helper three calls deep that scribbles on a
// shared []float64 is charged to the parameter it arrived through.
//
// Annotation grammar:
//
//	//dophy:readonly <name>... [-- <reason>]   in a func doc comment: the
//	    named receiver ("recv") and/or parameters must be transitively
//	    un-written — by this function and everything it calls.
//	//dophy:effects noglobals [-- <reason>]    in a func doc comment: no
//	    function reachable from here may write package-level state.
//	//dophy:transfers   on a struct field of a top-level named struct type:
//	    ownership of the pointee moves with the struct (the pipeline's
//	    epochCut hands its scratch observation to the estimator goroutine),
//	    so reads through the field yield fresh storage, not the base's.
//
// The rules:
//
//   - readonly: a //dophy:readonly root whose summary bit is set is a
//     violation, reported at the deep write with the full call chain (the
//     same shape as hotpathalloc's chains).
//   - effects: //dophy:effects noglobals reachability (global writes and
//     unprovable indirect calls on the path are both violations), plus two
//     channel-boundary checks that close the alias gap sendown leaves:
//     values received from a channel whose element carries //dophy:owner
//     immutable fields are frozen (no writes through any alias), and values
//     published with //dophy:transfers must not be written after the send —
//     inter-procedurally, through any alias.
//
// Honest limits (see DESIGN.md): aliasing is flow-insensitive (one alias
// set per binding for the whole body), unresolved call edges degrade to
// "writes every reference-typed argument" (⊤), method-value receivers are
// untracked, append never counts as writing its first argument (the result
// rebind is the idiom), and package-level variables of *imported* packages
// (os.Stdout handed to an external call) count as global writes.
const (
	// ReadonlyPragma declares receiver/parameters that must stay un-written.
	ReadonlyPragma = "//dophy:readonly"
	// EffectsPragma declares an effect contract on everything reachable.
	EffectsPragma = "//dophy:effects"
)

// roAnn is one parsed //dophy:readonly annotation.
type roAnn struct {
	pos      token.Pos
	recv     bool
	recvName string
	params   []int          // annotated parameter indices, in annotation order
	names    map[int]string // parameter index -> source name
}

// effectsInfo is the module's parsed write-effect annotation set.
type effectsInfo struct {
	readonly  map[*types.Func]*roAnn
	noGlobals map[*types.Func]token.Pos
	// transferFields are struct fields carrying //dophy:transfers: reading
	// through them yields fresh storage (ownership travels with the struct).
	transferFields map[*types.Var]token.Pos
	// inventory lines ("rel (T).M readonly(e, lt)"), built during collection
	// in deterministic file order; EffectsInventory sorts them.
	inv []string
	// annDiags are malformed-annotation hygiene diagnostics.
	annDiags []contractDiag
}

// effectsInfoOf parses (once) every write-effect annotation in the module.
func (m *Module) effectsInfoOf() *effectsInfo {
	if m.effInfo != nil {
		return m.effInfo
	}
	ei := &effectsInfo{
		readonly:       map[*types.Func]*roAnn{},
		noGlobals:      map[*types.Func]token.Pos{},
		transferFields: map[*types.Var]token.Pos{},
	}
	m.effInfo = ei
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			ei.collectFile(pkg, file)
		}
	}
	return ei
}

func (ei *effectsInfo) collectFile(pkg *Package, file *File) {
	rel := pkg.RelPath
	if rel == "" {
		rel = "."
	}
	bad := func(rule string, pos token.Pos, format string, args ...any) {
		ei.annDiags = append(ei.annDiags, contractDiag{rule: rule, pkg: pkg, pos: pos,
			msg: fmt.Sprintf(format, args...)})
	}
	for _, decl := range file.AST.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Doc != nil {
				ei.collectFuncDoc(pkg, rel, d, bad)
			}
		case *ast.GenDecl:
			if d.Tok == token.TYPE {
				ei.collectTypeFields(pkg, rel, d, bad)
			}
		}
	}
}

// collectFuncDoc parses //dophy:readonly and //dophy:effects from one
// function's doc comment.
func (ei *effectsInfo) collectFuncDoc(pkg *Package, rel string, fd *ast.FuncDecl, bad func(rule string, pos token.Pos, format string, args ...any)) {
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	for _, cm := range fd.Doc.List {
		if arg, ok := directiveArg(cm.Text, ReadonlyPragma); ok {
			spec, _, _ := strings.Cut(arg, "--")
			names := strings.Fields(spec)
			if len(names) == 0 {
				bad("readonly", cm.Pos(), "malformed //dophy:readonly: name the receiver (recv) or the parameters that must stay un-written")
				continue
			}
			if fn == nil {
				continue
			}
			sig := fn.Type().(*types.Signature)
			ann := &roAnn{pos: cm.Pos(), names: map[int]string{}}
			// Parameter name -> index, from the declaration (the type
			// signature loses grouped-parameter names).
			paramIdx := map[string]int{}
			idx := 0
			if fd.Type.Params != nil {
				for _, f := range fd.Type.Params.List {
					if len(f.Names) == 0 {
						idx++
						continue
					}
					for _, nm := range f.Names {
						paramIdx[nm.Name] = idx
						idx++
					}
				}
			}
			ok := true
			seen := map[string]bool{}
			for _, name := range names {
				if seen[name] {
					bad("readonly", cm.Pos(), "//dophy:readonly names %s twice", name)
					ok = false
					break
				}
				seen[name] = true
				if name == "recv" {
					if fd.Recv == nil {
						bad("readonly", cm.Pos(), "//dophy:readonly recv on %s, which has no receiver", fd.Name.Name)
						ok = false
						break
					}
					if !hasRefType(sig.Recv().Type()) {
						bad("readonly", cm.Pos(), "receiver of %s has no reference-typed storage; //dophy:readonly recv is vacuous", fd.Name.Name)
						ok = false
						break
					}
					ann.recv = true
					if len(fd.Recv.List[0].Names) > 0 {
						ann.recvName = fd.Recv.List[0].Names[0].Name
					}
					continue
				}
				i, known := paramIdx[name]
				if !known {
					bad("readonly", cm.Pos(), "//dophy:readonly names %q, which is not a parameter of %s (use recv for the receiver)", name, fd.Name.Name)
					ok = false
					break
				}
				if !hasRefType(sig.Params().At(i).Type()) {
					bad("readonly", cm.Pos(), "parameter %q of %s has no reference-typed storage; //dophy:readonly is vacuous", name, fd.Name.Name)
					ok = false
					break
				}
				ann.params = append(ann.params, i)
				ann.names[i] = name
			}
			if !ok {
				continue
			}
			ei.readonly[fn] = ann
			ei.inv = append(ei.inv, rel+" "+funcDisplay(fn)+" readonly("+strings.Join(names, ", ")+")")
		}
		if arg, ok := directiveArg(cm.Text, EffectsPragma); ok {
			spec, _, _ := strings.Cut(arg, "--")
			if strings.TrimSpace(spec) != "noglobals" {
				bad("effects", cm.Pos(), "malformed //dophy:effects: want 'noglobals', got %q", strings.TrimSpace(spec))
				continue
			}
			if fn == nil {
				continue
			}
			ei.noGlobals[fn] = cm.Pos()
			ei.inv = append(ei.inv, rel+" "+funcDisplay(fn)+" effects(noglobals)")
		}
	}
}

// collectTypeFields parses field-level //dophy:transfers on the fields of
// top-level named struct types: ownership of the pointee travels with the
// struct, so effect analysis treats reads through the field as fresh.
func (ei *effectsInfo) collectTypeFields(pkg *Package, rel string, gd *ast.GenDecl, bad func(rule string, pos token.Pos, format string, args ...any)) {
	for _, spec := range gd.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok || st.Fields == nil {
			continue
		}
		for _, field := range st.Fields.List {
			for _, doc := range []*ast.CommentGroup{field.Doc, field.Comment} {
				if doc == nil {
					continue
				}
				for _, cm := range doc.List {
					if _, ok := directiveArg(cm.Text, TransferPragma); !ok {
						continue
					}
					if len(field.Names) == 0 {
						bad("effects", cm.Pos(), "//dophy:transfers on embedded fields is not supported; name the field")
						continue
					}
					for _, name := range field.Names {
						v, ok := pkg.Info.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						if !hasRefType(v.Type()) {
							bad("effects", cm.Pos(), "field %s carries //dophy:transfers but has no reference-typed storage; nothing changes ownership", v.Name())
							continue
						}
						ei.transferFields[v] = cm.Pos()
						ei.inv = append(ei.inv, rel+" "+ts.Name.Name+"."+v.Name()+" transfers(field)")
					}
				}
			}
		}
	}
}

// structFieldTransferComments returns the comments attached (as Doc or
// trailing Comment) to struct fields of top-level named types in f. The
// contract layer skips these when collecting statement-level
// //dophy:transfers pragmas: a field-level transfer belongs to the effect
// layer, not to a statement.
func structFieldTransferComments(f *ast.File) map[*ast.Comment]bool {
	skip := map[*ast.Comment]bool{}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok || st.Fields == nil {
				continue
			}
			for _, field := range st.Fields.List {
				for _, doc := range []*ast.CommentGroup{field.Doc, field.Comment} {
					if doc == nil {
						continue
					}
					for _, cm := range doc.List {
						skip[cm] = true
					}
				}
			}
		}
	}
	return skip
}

// funcDisplay renders a function the way Inventory does: the bare name, or
// "(T).name" for methods.
func funcDisplay(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		name = "(" + types.TypeString(sig.Recv().Type(), func(p *types.Package) string { return "" }) + ")." + name
	}
	return name
}

// EffectsInventory renders the module's write-effect annotation inventory,
// one annotation per line, sorted — the -effects inspection output.
func EffectsInventory(m *Module) []string {
	ei := m.effectsInfoOf()
	out := append([]string(nil), ei.inv...)
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Roots, summaries and facts.
// ---------------------------------------------------------------------------

// effRootKind classifies a write-effect root.
type effRootKind uint8

const (
	effRecv effRootKind = iota
	effParam
	effGlobal
)

// effRoot identifies one root a write was attributed to.
type effRoot struct {
	kind   effRootKind
	param  int
	global *types.Var
}

// effWitness records where (and through what) a root was first written, so
// diagnostics can replay the full call chain to the deep write.
type effWitness struct {
	pos  token.Pos
	desc string // rendered source text of the written lvalue or argument
	pkg  *Package
	// callee is non-nil when the write happens inside a callee: via names
	// the callee root the caller's storage flowed into, and the chase
	// continues from the callee's own witness for that root.
	callee *FuncNode
	via    effRoot
	// ext, when non-empty, is the reason the write is assumed rather than
	// seen: an external or unresolvable call the storage escaped into.
	ext string
}

// rootSet is the alias lattice element: which roots an expression's storage
// may belong to. locals track function-local roots (frozen and published
// bindings) and never leave the function; summaries strip them.
type rootSet struct {
	recv    bool
	params  uint64
	globals map[*types.Var]bool
	locals  map[types.Object]bool
}

func (rs *rootSet) isEmpty() bool {
	return rs == nil || (!rs.recv && rs.params == 0 && len(rs.globals) == 0 && len(rs.locals) == 0)
}

func (rs *rootSet) addGlobal(v *types.Var) {
	if rs.globals == nil {
		rs.globals = map[*types.Var]bool{}
	}
	rs.globals[v] = true
}

func (rs *rootSet) addLocal(obj types.Object) {
	if rs.locals == nil {
		rs.locals = map[types.Object]bool{}
	}
	rs.locals[obj] = true
}

// union merges other into rs and reports whether rs grew.
func (rs *rootSet) union(other *rootSet) bool {
	if other == nil {
		return false
	}
	changed := false
	if other.recv && !rs.recv {
		rs.recv, changed = true, true
	}
	if other.params&^rs.params != 0 {
		rs.params |= other.params
		changed = true
	}
	for g := range other.globals {
		if !rs.globals[g] {
			rs.addGlobal(g)
			changed = true
		}
	}
	for o := range other.locals {
		if !rs.locals[o] {
			rs.addLocal(o)
			changed = true
		}
	}
	return changed
}

// cloneNoLocals copies rs without its function-local roots — the form that
// may be stored in a cross-function summary.
func (rs *rootSet) cloneNoLocals() *rootSet {
	out := &rootSet{recv: rs.recv, params: rs.params}
	for g := range rs.globals {
		out.addGlobal(g)
	}
	return out
}

// effectSummary is one function's inferred write effect: which of its
// receiver/parameters it (transitively) writes, and which roots each result
// aliases. Global writes are per-node facts, not summary entries — the
// noglobals check walks the call graph itself, so propagating them here
// would double-report.
type effectSummary struct {
	writesRecv bool
	wRecv      *effWitness
	params     uint64
	wParams    map[int]*effWitness
	results    []*rootSet
}

// effSiteViol is one per-node violation fact (global write, frozen write,
// post-publish write), carrying enough witness state to chase call chains.
type effSiteViol struct {
	pos    token.Pos
	desc   string
	name   string // the frozen/published binding's name
	line   int    // the publish line (published violations)
	callee *FuncNode
	via    effRoot
	ext    string
}

// effFacts are one node's per-pass facts. They are rebuilt from scratch on
// every analysis pass (summaries are monotonic, facts are not), so only the
// final fixpoint pass's facts stand.
type effFacts struct {
	globals    []effSiteViol
	unresolved []token.Pos
	frozen     []effSiteViol
	published  []effSiteViol
}

// ---------------------------------------------------------------------------
// Per-function analysis.
// ---------------------------------------------------------------------------

// effScope is the per-function analysis state for one pass over one body.
type effScope struct {
	m     *Module
	n     *FuncNode
	info  *types.Info
	ei    *effectsInfo
	sums  map[*FuncNode]*effectSummary
	sum   *effectSummary
	facts *effFacts

	recvObj      types.Object
	paramIdx     map[types.Object]int
	namedResults map[types.Object]int
	// env accumulates extra aliases per binding: x := e.Counts gives x the
	// receiver's roots. Flow-insensitive — one set per binding, unioned over
	// every assignment in the body.
	env     map[types.Object]*rootSet
	edgesAt map[token.Pos][]*Edge
	// frozen: bindings received from a channel whose element carries
	// //dophy:owner immutable fields. published: bindings sent with
	// //dophy:transfers, mapped to the send position.
	frozen    map[types.Object]token.Pos
	published map[types.Object]token.Pos
	pubLine   map[types.Object]int

	changed   bool
	seenUnres map[token.Pos]bool
	seenGlob  map[globKey]bool
	seenLocal map[localKey]bool
}

type globKey struct {
	v   *types.Var
	pos token.Pos
}

type localKey struct {
	obj types.Object
	pos token.Pos
}

// effAnalyzeNode runs one pass over n's body, updating its summary and
// rebuilding its facts. It reports whether the summary changed (the SCC
// fixpoint driver loops until no summary in the component moves).
func (m *Module) effAnalyzeNode(n *FuncNode, sums map[*FuncNode]*effectSummary, facts map[*FuncNode]*effFacts, ei *effectsInfo, ci *contractInfo) bool {
	s := &effScope{
		m: m, n: n, info: n.Pkg.Info, ei: ei, sums: sums,
		sum:          sums[n],
		facts:        &effFacts{},
		paramIdx:     map[types.Object]int{},
		namedResults: map[types.Object]int{},
		env:          map[types.Object]*rootSet{},
		edgesAt:      map[token.Pos][]*Edge{},
		frozen:       map[types.Object]token.Pos{},
		published:    map[types.Object]token.Pos{},
		pubLine:      map[types.Object]int{},
		seenUnres:    map[token.Pos]bool{},
		seenGlob:     map[globKey]bool{},
		seenLocal:    map[localKey]bool{},
	}
	facts[n] = s.facts
	if n.Decl.Recv != nil && len(n.Decl.Recv.List) > 0 && len(n.Decl.Recv.List[0].Names) > 0 {
		s.recvObj = objectOf(s.info, n.Decl.Recv.List[0].Names[0])
	}
	idx := 0
	if n.Decl.Type.Params != nil {
		for _, f := range n.Decl.Type.Params.List {
			if len(f.Names) == 0 {
				idx++
				continue
			}
			for _, nm := range f.Names {
				if obj := objectOf(s.info, nm); obj != nil && idx < 64 {
					s.paramIdx[obj] = idx
				}
				idx++
			}
		}
	}
	if n.Decl.Type.Results != nil {
		ri := 0
		for _, f := range n.Decl.Type.Results.List {
			if len(f.Names) == 0 {
				ri++
				continue
			}
			for _, nm := range f.Names {
				if obj := objectOf(s.info, nm); obj != nil {
					s.namedResults[obj] = ri
				}
				ri++
			}
		}
	}
	for i := range n.Calls {
		e := &n.Calls[i]
		s.edgesAt[e.Pos] = append(s.edgesAt[e.Pos], e)
	}
	if ci.boundary[n.File] != nil {
		s.collectBoundaryBindings(ci)
	}
	// Alias environment to a fixpoint: later bindings feed earlier ones in
	// loops, so one walk is not enough.
	for iter := 0; iter < 64; iter++ {
		if !s.applyBindings() {
			break
		}
	}
	s.walkWrites()
	return s.changed
}

// collectBoundaryBindings finds the frozen (channel-received) and published
// (transfers-sent) bindings of a //dophy:concurrency-boundary file.
func (s *effScope) collectBoundaryBindings(ci *contractInfo) {
	body := s.n.Decl.Body
	filePos := s.m.Fset.Position(body.Pos())
	freeze := func(id *ast.Ident, pos token.Pos) {
		if obj := objectOf(s.info, id); obj != nil {
			if _, have := s.frozen[obj]; !have {
				s.frozen[obj] = pos
			}
		}
	}
	ast.Inspect(body, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.AssignStmt:
			if len(v.Rhs) != 1 {
				return true
			}
			ue, ok := ast.Unparen(v.Rhs[0]).(*ast.UnaryExpr)
			if !ok || ue.Op != token.ARROW {
				return true
			}
			if tv, ok := s.info.Types[ue.X]; ok && frozenElem(tv.Type, ci) {
				if id, ok := ast.Unparen(v.Lhs[0]).(*ast.Ident); ok {
					freeze(id, v.Pos())
				}
			}
		case *ast.RangeStmt:
			tv, ok := s.info.Types[v.X]
			if !ok || !frozenElem(tv.Type, ci) {
				return true
			}
			if id, ok := v.Key.(*ast.Ident); ok && v.Value == nil {
				freeze(id, v.Pos())
			}
		case *ast.SendStmt:
			line := s.m.Fset.Position(v.Pos()).Line
			matched := false
			for _, ta := range ci.transfers {
				if ta.pkg == s.n.Pkg && ta.file == filePos.Filename && (ta.line == line || ta.line == line-1) {
					matched = true
					break
				}
			}
			if !matched {
				return true
			}
			id, ok := ast.Unparen(v.Value).(*ast.Ident)
			if !ok {
				return true
			}
			obj, _ := objectOf(s.info, id).(*types.Var)
			if obj == nil || !hasRefType(obj.Type()) {
				return true
			}
			if _, have := s.published[obj]; !have {
				s.published[obj] = v.Pos()
				s.pubLine[obj] = line
			}
		}
		return true
	})
}

// frozenElem reports whether t is a channel whose element (struct, possibly
// behind a pointer) carries at least one //dophy:owner immutable field —
// the opt-in that makes receives freezing.
func frozenElem(t types.Type, ci *contractInfo) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	elem := ch.Elem()
	if p, ok := elem.Underlying().(*types.Pointer); ok {
		elem = p.Elem()
	}
	st, ok := elem.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if ann, ok := ci.fieldOwner[st.Field(i)]; ok && ann.dom == ownImmutable {
			return true
		}
	}
	return false
}

// applyBindings walks the body once, growing the alias environment, and
// reports whether anything changed.
func (s *effScope) applyBindings() bool {
	changed := false
	grow := func(obj types.Object, rs *rootSet) {
		if obj == nil || rs.isEmpty() {
			return
		}
		cur := s.env[obj]
		if cur == nil {
			cur = &rootSet{}
			s.env[obj] = cur
		}
		if cur.union(rs) {
			changed = true
		}
	}
	// bind attaches the RHS roots to an LHS expression: identifiers gain the
	// aliases directly; selector/index chains on a *value*-typed local chain
	// back to the base binding (x.s = shared; x.s[0] = 1 must see the alias
	// through x), while chains through pointers/slices are writes, handled
	// by walkWrites, not bindings.
	bind := func(lhs ast.Expr, rs *rootSet) {
		if rs.isEmpty() {
			return
		}
		lhs = ast.Unparen(lhs)
		for {
			switch v := lhs.(type) {
			case *ast.Ident:
				if v.Name == "_" {
					return
				}
				obj := objectOf(s.info, v)
				if obj == nil {
					return
				}
				if _, isVar := obj.(*types.Var); !isVar {
					return
				}
				if pkgLevelVar(obj) != nil {
					return // writes to globals are facts, not bindings
				}
				if tv, ok := obj.(*types.Var); ok && !hasRefType(tv.Type()) {
					// A value copy of a ref-free type shares no storage; the
					// chained-base case still needs the alias, so only bare
					// ident bindings are filtered.
					if _, isChain := lhs.(*ast.Ident); isChain && lhs == v {
						return
					}
				}
				grow(obj, rs)
				return
			case *ast.SelectorExpr:
				lhs = ast.Unparen(v.X)
			case *ast.IndexExpr:
				lhs = ast.Unparen(v.X)
			case *ast.StarExpr:
				return // write through a pointer: not a rebind
			default:
				return
			}
		}
	}
	ast.Inspect(s.n.Decl.Body, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.AssignStmt:
			if v.Tok != token.ASSIGN && v.Tok != token.DEFINE {
				return true
			}
			s.bindAssign(v.Lhs, v.Rhs, bind)
		case *ast.GenDecl:
			if v.Tok != token.VAR {
				return true
			}
			for _, spec := range v.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, nm := range vs.Names {
					lhs[i] = nm
				}
				s.bindAssign(lhs, vs.Values, bind)
			}
		case *ast.RangeStmt:
			tv, ok := s.info.Types[v.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return true // receive: fresh (frozen handled separately)
			}
			rs := s.rootsOf(v.X, 0)
			if v.Key != nil {
				bind(v.Key, rs)
			}
			if v.Value != nil {
				bind(v.Value, rs)
			}
		case *ast.TypeSwitchStmt:
			// switch y := x.(type): each clause's implicit binding aliases x.
			var operand ast.Expr
			if as, ok := v.Assign.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
				if ta, ok := ast.Unparen(as.Rhs[0]).(*ast.TypeAssertExpr); ok {
					operand = ta.X
				}
			}
			if operand == nil {
				return true
			}
			rs := s.rootsOf(operand, 0)
			if rs.isEmpty() {
				return true
			}
			for _, stmt := range v.Body.List {
				if cc, ok := stmt.(*ast.CaseClause); ok {
					if obj := s.info.Implicits[cc]; obj != nil {
						grow(obj, rs)
					}
				}
			}
		}
		return true
	})
	return changed
}

// bindAssign distributes RHS roots over LHS expressions, handling the
// multi-value forms (call, type assertion, map index, receive).
func (s *effScope) bindAssign(lhs, rhs []ast.Expr, bind func(ast.Expr, *rootSet)) {
	if len(rhs) == 1 && len(lhs) > 1 {
		r := ast.Unparen(rhs[0])
		if call, ok := r.(*ast.CallExpr); ok {
			for i, l := range lhs {
				bind(l, s.callResultRoots(call, i, 0))
			}
			return
		}
		// v, ok := x.(T) / m[k] / <-ch: index 0 carries the value.
		var rs *rootSet
		switch v := r.(type) {
		case *ast.TypeAssertExpr:
			rs = s.rootsOf(v.X, 0)
		case *ast.IndexExpr:
			rs = s.rootsOf(v.X, 0)
		case *ast.UnaryExpr:
			rs = &rootSet{} // receive: fresh
		default:
			rs = s.rootsOf(r, 0)
		}
		bind(lhs[0], rs)
		return
	}
	for i, l := range lhs {
		if i < len(rhs) {
			bind(l, s.rootsOf(rhs[i], 0))
		}
	}
}

// rootsOf computes the alias roots of an expression's storage.
func (s *effScope) rootsOf(e ast.Expr, depth int) *rootSet {
	if depth > 32 {
		// Pathological nesting: give up soundly (everything).
		rs := &rootSet{recv: s.recvObj != nil, params: ^uint64(0)}
		return rs
	}
	e = ast.Unparen(e)
	switch v := e.(type) {
	case *ast.Ident:
		obj := objectOf(s.info, v)
		if obj == nil {
			return &rootSet{}
		}
		rs := &rootSet{}
		if obj == s.recvObj {
			rs.recv = true
		} else if i, ok := s.paramIdx[obj]; ok {
			rs.params = 1 << i
		} else if g := pkgLevelVar(obj); g != nil {
			rs.addGlobal(g)
		}
		if _, ok := s.frozen[obj]; ok {
			rs.addLocal(obj)
		}
		if _, ok := s.published[obj]; ok {
			rs.addLocal(obj)
		}
		if extra := s.env[obj]; extra != nil {
			rs.union(extra)
		}
		return rs
	case *ast.SelectorExpr:
		sel := s.info.Selections[v]
		if sel == nil {
			// Package-qualified reference.
			if g := pkgLevelVar(s.info.Uses[v.Sel]); g != nil {
				rs := &rootSet{}
				rs.addGlobal(g)
				return rs
			}
			return &rootSet{}
		}
		if sel.Kind() != types.FieldVal {
			return &rootSet{} // method value: receiver untracked (see limits)
		}
		if fv, ok := sel.Obj().(*types.Var); ok {
			if _, transfers := s.ei.transferFields[fv]; transfers {
				return &rootSet{} // ownership travelled with the struct
			}
		}
		return s.rootsOf(v.X, depth+1)
	case *ast.IndexExpr:
		return s.rootsOf(v.X, depth+1)
	case *ast.IndexListExpr:
		return s.rootsOf(v.X, depth+1)
	case *ast.SliceExpr:
		return s.rootsOf(v.X, depth+1)
	case *ast.StarExpr:
		return s.rootsOf(v.X, depth+1)
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return s.rootsOf(v.X, depth+1)
		}
		return &rootSet{} // <-ch and scalar ops: fresh
	case *ast.CompositeLit:
		rs := &rootSet{}
		for _, elt := range v.Elts {
			val := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				val = kv.Value
			}
			if tv, ok := s.info.Types[val]; ok && tv.Type != nil && !hasRefType(tv.Type) {
				continue
			}
			rs.union(s.rootsOf(val, depth+1))
		}
		return rs
	case *ast.TypeAssertExpr:
		return s.rootsOf(v.X, depth+1)
	case *ast.CallExpr:
		return s.callResultRoots(v, 0, depth+1)
	}
	return &rootSet{}
}

// callResultRoots computes the roots of a call's k-th result by
// substituting argument roots into the callees' result summaries. Unknown
// callees degrade to the union of every storage-sharing argument.
func (s *effScope) callResultRoots(call *ast.CallExpr, k, depth int) *rootSet {
	if depth > 32 {
		return &rootSet{recv: s.recvObj != nil, params: ^uint64(0)}
	}
	// Conversions alias their operand.
	if tv, ok := s.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return s.rootsOf(call.Args[0], depth+1)
		}
		return &rootSet{}
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && isBuiltin(s.info.Uses[id]) {
		switch id.Name {
		case "append":
			rs := &rootSet{}
			if len(call.Args) == 0 {
				return rs
			}
			rs.union(s.rootsOf(call.Args[0], depth+1))
			for _, arg := range call.Args[1:] {
				if call.Ellipsis.IsValid() && arg == call.Args[len(call.Args)-1] {
					// append(dst, src...): the spread copies elements, so the
					// result aliases src's backing only when the elements
					// themselves carry references.
					if tv, ok := s.info.Types[arg]; ok && tv.Type != nil {
						if sl, ok := tv.Type.Underlying().(*types.Slice); ok && !hasRefType(sl.Elem()) {
							continue
						}
					}
				}
				if tv, ok := s.info.Types[arg]; ok && tv.Type != nil && !hasRefType(tv.Type) {
					continue
				}
				rs.union(s.rootsOf(arg, depth+1))
			}
			return rs
		default:
			return &rootSet{}
		}
	}
	edges := s.edgesAt[call.Pos()]
	rs := &rootSet{}
	conservative := len(edges) == 0
	for _, e := range edges {
		switch {
		case e.Callee != nil:
			csum := s.sums[e.Callee]
			if csum == nil || k >= len(csum.results) {
				continue
			}
			rs.union(s.substitute(csum.results[k], call, e.Callee))
		default:
			conservative = true
		}
	}
	if conservative {
		for _, arg := range call.Args {
			if tv, ok := s.info.Types[arg]; ok && tv.Type != nil && !hasRefType(tv.Type) {
				continue
			}
			rs.union(s.rootsOf(arg, depth+1))
		}
		if recv := s.methodRecvExpr(call); recv != nil {
			rs.union(s.rootsOf(recv, depth+1))
		}
	}
	return rs
}

// methodRecvExpr returns the receiver expression of a method call, or nil.
func (s *effScope) methodRecvExpr(call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if sl := s.info.Selections[sel]; sl != nil && sl.Kind() == types.MethodVal {
		return sel.X
	}
	return nil
}

// substitute maps a callee result's roots into the caller's frame: the
// callee's receiver becomes the call's receiver expression roots, parameter
// bits become argument roots, globals pass through.
func (s *effScope) substitute(rs0 *rootSet, call *ast.CallExpr, callee *FuncNode) *rootSet {
	out := &rootSet{}
	if rs0 == nil {
		return out
	}
	if rs0.recv {
		if recv := s.methodRecvExpr(call); recv != nil {
			out.union(s.rootsOf(recv, 0))
		}
	}
	if rs0.params != 0 {
		sig, _ := callee.Fn.Type().(*types.Signature)
		for i := 0; i < 64; i++ {
			if rs0.params&(1<<i) == 0 {
				continue
			}
			for _, arg := range s.argsForParam(call, sig, i) {
				out.union(s.rootsOf(arg, 0))
			}
		}
	}
	for g := range rs0.globals {
		out.addGlobal(g)
	}
	return out
}

// argsForParam maps callee parameter index i to the caller argument
// expressions that flow into it (several, for a variadic tail).
func (s *effScope) argsForParam(call *ast.CallExpr, sig *types.Signature, i int) []ast.Expr {
	if sig == nil {
		if i < len(call.Args) {
			return call.Args[i : i+1]
		}
		return nil
	}
	np := sig.Params().Len()
	if sig.Variadic() && i == np-1 && !call.Ellipsis.IsValid() {
		if np-1 <= len(call.Args) {
			return call.Args[np-1:]
		}
		return nil
	}
	if i < len(call.Args) {
		return call.Args[i : i+1]
	}
	return nil
}

// ---------------------------------------------------------------------------
// The writes walk: direct writes, builtin writes, call-propagated writes,
// and return-value roots.
// ---------------------------------------------------------------------------

// walkWrites scans the (env-stable) body for every write and return.
func (s *effScope) walkWrites() {
	ast.Inspect(s.n.Decl.Body, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				s.writeTarget(lhs)
			}
		case *ast.IncDecStmt:
			s.writeTarget(v.X)
		case *ast.CallExpr:
			s.callEffects(v)
		case *ast.ReturnStmt:
			s.recordReturn(v)
		}
		return true
	})
}

// writeTarget attributes one assignment target to its roots. Value-typed
// chains recurse toward the base (a field write on a value-typed local
// stays local); pointer derefs, slice/map elements and package-level
// variables are shared-storage writes.
func (s *effScope) writeTarget(e ast.Expr) {
	e = ast.Unparen(e)
	switch v := e.(type) {
	case *ast.Ident:
		if v.Name == "_" {
			return
		}
		obj := objectOf(s.info, v)
		if g := pkgLevelVar(obj); g != nil {
			s.recordWrite(&rootSet{globals: map[*types.Var]bool{g: true}}, v.Pos(), exprText(e), nil, effRoot{}, "")
		}
		// A plain local/param rebind replaces the binding, it writes nothing.
	case *ast.SelectorExpr:
		sel := s.info.Selections[v]
		if sel == nil {
			if g := pkgLevelVar(s.info.Uses[v.Sel]); g != nil {
				s.recordWrite(&rootSet{globals: map[*types.Var]bool{g: true}}, v.Pos(), exprText(e), nil, effRoot{}, "")
			}
			return
		}
		if sel.Kind() != types.FieldVal {
			return
		}
		baseIsPtr := false
		if tv, ok := s.info.Types[v.X]; ok && tv.Type != nil {
			_, baseIsPtr = tv.Type.Underlying().(*types.Pointer)
		}
		if sel.Indirect() || baseIsPtr {
			s.recordWrite(s.rootsOf(v.X, 0), v.Pos(), exprText(e), nil, effRoot{}, "")
			return
		}
		s.writeTarget(v.X) // field write on a value: charge the base binding
	case *ast.IndexExpr:
		if tv, ok := s.info.Types[v.X]; ok && tv.Type != nil {
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Map, *types.Pointer:
				s.recordWrite(s.rootsOf(v.X, 0), v.Pos(), exprText(e), nil, effRoot{}, "")
				return
			}
		}
		s.writeTarget(v.X) // array element on a value chains to the base
	case *ast.StarExpr:
		s.recordWrite(s.rootsOf(v.X, 0), v.Pos(), exprText(e), nil, effRoot{}, "")
	}
}

// callEffects applies callee summaries (and conservative fallbacks) at one
// call site.
func (s *effScope) callEffects(call *ast.CallExpr) {
	// Builtin writers.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && isBuiltin(s.info.Uses[id]) {
		switch id.Name {
		case "copy", "clear", "delete":
			if len(call.Args) > 0 {
				s.recordWrite(s.rootsOf(call.Args[0], 0), call.Pos(), exprText(call.Args[0]), nil, effRoot{}, "")
			}
		}
		return
	}
	edges := s.edgesAt[call.Pos()]
	for _, e := range edges {
		switch {
		case e.Callee != nil:
			csum := s.sums[e.Callee]
			if csum == nil {
				continue
			}
			if csum.writesRecv {
				if recv := s.methodRecvExpr(call); recv != nil {
					s.recordWrite(s.rootsOf(recv, 0), call.Pos(), exprText(recv), e.Callee, effRoot{kind: effRecv}, "")
				}
			}
			if csum.params != 0 {
				sig, _ := e.Callee.Fn.Type().(*types.Signature)
				for i := 0; i < 64; i++ {
					if csum.params&(1<<i) == 0 {
						continue
					}
					for _, arg := range s.argsForParam(call, sig, i) {
						s.recordWrite(s.rootsOf(arg, 0), call.Pos(), exprText(arg), e.Callee, effRoot{kind: effParam, param: i}, "")
					}
				}
			}
		case e.Kind == EdgeExternal:
			s.conservativeCallWrites(call, "external call "+extName(e.Ext))
		case e.Kind == EdgeUnresolved:
			reason := "an unresolvable indirect call"
			if e.IfaceMiss {
				// The callee necessarily lives outside the module: treated
				// like an external call, not an unprovable dispatch point.
				reason = "an interface call with no module implementation"
			} else if !s.seenUnres[call.Pos()] {
				s.seenUnres[call.Pos()] = true
				s.facts.unresolved = append(s.facts.unresolved, call.Pos())
			}
			s.conservativeCallWrites(call, reason)
		}
	}
}

// conservativeCallWrites is the ⊤ fallback: every storage-sharing argument
// (and the receiver) of an unanalyzable call must be assumed written.
func (s *effScope) conservativeCallWrites(call *ast.CallExpr, reason string) {
	for _, arg := range call.Args {
		if tv, ok := s.info.Types[arg]; ok && tv.Type != nil && !hasRefType(tv.Type) {
			continue
		}
		s.recordWrite(s.rootsOf(arg, 0), call.Pos(), exprText(arg), nil, effRoot{}, reason)
	}
	if recv := s.methodRecvExpr(call); recv != nil {
		s.recordWrite(s.rootsOf(recv, 0), call.Pos(), exprText(recv), nil, effRoot{}, reason)
	}
}

// recordWrite dispatches a write to the given roots: receiver/parameter
// writes update the summary (set-once witnesses keep chains acyclic),
// global and frozen/published-local writes become per-node facts.
func (s *effScope) recordWrite(rs *rootSet, pos token.Pos, desc string, callee *FuncNode, via effRoot, ext string) {
	if rs.isEmpty() {
		return
	}
	mkWitness := func() *effWitness {
		return &effWitness{pos: pos, desc: desc, pkg: s.n.Pkg, callee: callee, via: via, ext: ext}
	}
	if rs.recv && !s.sum.writesRecv {
		s.sum.writesRecv = true
		s.sum.wRecv = mkWitness()
		s.changed = true
	}
	if bits := rs.params &^ s.sum.params; bits != 0 {
		s.sum.params |= bits
		if s.sum.wParams == nil {
			s.sum.wParams = map[int]*effWitness{}
		}
		for i := 0; i < 64; i++ {
			if bits&(1<<i) != 0 {
				s.sum.wParams[i] = mkWitness()
			}
		}
		s.changed = true
	}
	for g := range rs.globals {
		k := globKey{g, pos}
		if s.seenGlob[k] {
			continue
		}
		s.seenGlob[k] = true
		s.facts.globals = append(s.facts.globals, effSiteViol{pos: pos, desc: desc, name: g.Name(), callee: callee, via: via, ext: ext})
	}
	for obj := range rs.locals {
		k := localKey{obj, pos}
		if s.seenLocal[k] {
			continue
		}
		s.seenLocal[k] = true
		if _, frozen := s.frozen[obj]; frozen {
			s.facts.frozen = append(s.facts.frozen, effSiteViol{pos: pos, desc: desc, name: obj.Name(), callee: callee, via: via, ext: ext})
		}
		if pubPos, published := s.published[obj]; published && pos > pubPos {
			s.facts.published = append(s.facts.published, effSiteViol{pos: pos, desc: desc, name: obj.Name(), line: s.pubLine[obj], callee: callee, via: via, ext: ext})
		}
	}
	// Deterministic fact order regardless of map iteration: globals and
	// locals are sorted at diagnostic time by position (already stable) —
	// position dedup above keeps one entry per site.
}

// recordReturn merges the returned expressions' roots into the result
// summaries (locals stripped: they are meaningless across the call).
func (s *effScope) recordReturn(ret *ast.ReturnStmt) {
	nres := len(s.sum.results)
	if nres == 0 {
		return
	}
	sig, _ := s.n.Fn.Type().(*types.Signature)
	mergeAt := func(k int, rs *rootSet) {
		if k >= nres || rs == nil {
			return
		}
		if sig != nil && k < sig.Results().Len() && !hasRefType(sig.Results().At(k).Type()) {
			return
		}
		if s.sum.results[k].union(rs.cloneNoLocals()) {
			s.changed = true
		}
	}
	if len(ret.Results) == 0 {
		// Bare return: named results carry whatever they were bound to.
		for obj, k := range s.namedResults {
			mergeAt(k, s.env[obj])
		}
		return
	}
	if len(ret.Results) == 1 && nres > 1 {
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
			for k := 0; k < nres; k++ {
				mergeAt(k, s.callResultRoots(call, k, 0))
			}
		}
		return
	}
	for k, r := range ret.Results {
		mergeAt(k, s.rootsOf(r, 0))
	}
}

// ---------------------------------------------------------------------------
// SCC driver.
// ---------------------------------------------------------------------------

// sccs returns the call graph's strongly connected components in reverse
// topological order (callees before callers), via Tarjan's algorithm over
// the module-local edges.
func (cg *CallGraph) sccs() [][]*FuncNode {
	index := map[*FuncNode]int{}
	low := map[*FuncNode]int{}
	onStack := map[*FuncNode]bool{}
	var stack []*FuncNode
	var out [][]*FuncNode
	next := 0
	var strongconnect func(n *FuncNode)
	strongconnect = func(n *FuncNode) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for i := range n.Calls {
			c := n.Calls[i].Callee
			if c == nil {
				continue
			}
			if _, seen := index[c]; !seen {
				strongconnect(c)
				if low[c] < low[n] {
					low[n] = low[c]
				}
			} else if onStack[c] && index[c] < low[n] {
				low[n] = index[c]
			}
		}
		if low[n] == index[n] {
			var scc []*FuncNode
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				scc = append(scc, top)
				if top == n {
					break
				}
			}
			out = append(out, scc)
		}
	}
	for _, n := range cg.order {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return out
}

// newEffectSummary builds the starting summary for a node: empty for bodied
// functions, conservative (writes everything reference-typed it was handed)
// for bodyless declarations.
func newEffectSummary(n *FuncNode) *effectSummary {
	sig, _ := n.Fn.Type().(*types.Signature)
	sum := &effectSummary{}
	if sig != nil {
		sum.results = make([]*rootSet, sig.Results().Len())
		for i := range sum.results {
			sum.results[i] = &rootSet{}
		}
	}
	if n.Decl.Body != nil || sig == nil {
		return sum
	}
	ext := n.Fn.Name() + " is declared without a body; the analysis must assume it writes its arguments"
	resRoots := &rootSet{}
	if sig.Recv() != nil && hasRefType(sig.Recv().Type()) {
		sum.writesRecv = true
		sum.wRecv = &effWitness{pos: n.Decl.Pos(), desc: "receiver", pkg: n.Pkg, ext: ext}
		resRoots.recv = true
	}
	sum.wParams = map[int]*effWitness{}
	for i := 0; i < sig.Params().Len() && i < 64; i++ {
		if !hasRefType(sig.Params().At(i).Type()) {
			continue
		}
		sum.params |= 1 << i
		sum.wParams[i] = &effWitness{pos: n.Decl.Pos(), desc: sig.Params().At(i).Name(), pkg: n.Pkg, ext: ext}
		resRoots.params |= 1 << i
	}
	for i := range sum.results {
		if hasRefType(sig.Results().At(i).Type()) {
			sum.results[i].union(resRoots)
		}
	}
	return sum
}

// effectsAnalysis runs (once) the whole-module bottom-up summary inference.
func (m *Module) effectsAnalysis() (map[*FuncNode]*effectSummary, map[*FuncNode]*effFacts) {
	if m.effSums != nil {
		return m.effSums, m.effFacts
	}
	ei := m.effectsInfoOf()
	ci := m.contractInfo()
	cg := m.CallGraph()
	sums := map[*FuncNode]*effectSummary{}
	facts := map[*FuncNode]*effFacts{}
	for _, n := range cg.order {
		sums[n] = newEffectSummary(n)
		facts[n] = &effFacts{}
	}
	m.effSums, m.effFacts = sums, facts
	for _, scc := range cg.sccs() {
		for iter := 0; iter < 64; iter++ {
			changed := false
			for _, n := range scc {
				if n.Decl.Body == nil {
					continue
				}
				if m.effAnalyzeNode(n, sums, facts, ei, ci) {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	return sums, facts
}

// ---------------------------------------------------------------------------
// Diagnostics.
// ---------------------------------------------------------------------------

// chaseWitness follows a witness through callee summaries to the deepest
// write, returning the function chain (caller first), the node the write
// lives in, and the final witness.
func chaseWitness(n *FuncNode, w *effWitness, sums map[*FuncNode]*effectSummary) (chain string, last *FuncNode, final *effWitness) {
	parts := []string{n.Name()}
	last, final = n, w
	for depth := 0; depth < 64 && final != nil && final.callee != nil; depth++ {
		next := final.callee
		parts = append(parts, next.Name())
		csum := sums[next]
		var nw *effWitness
		if csum != nil {
			switch final.via.kind {
			case effRecv:
				nw = csum.wRecv
			case effParam:
				nw = csum.wParams[final.via.param]
			case effGlobal:
				// Globals are per-node facts with callee == nil; a chase
				// never routes through one.
			}
		}
		last = next
		if nw == nil {
			final = &effWitness{pos: next.Decl.Pos(), desc: "value", pkg: next.Pkg}
			break
		}
		final = nw
	}
	return strings.Join(parts, " -> "), last, final
}

// effectDiags runs (once) the whole-module write-effect analysis and caches
// the readonly/effects diagnostics for per-package replay.
func (m *Module) effectDiags() []contractDiag {
	if m.effDone {
		return m.effDiags
	}
	m.effDone = true
	ei := m.effectsInfoOf()
	diags := append([]contractDiag{}, ei.annDiags...)
	sums, facts := m.effectsAnalysis()
	cg := m.CallGraph()

	report := func(rule string, start *FuncNode, w *effWitness, format func(chain string, fin *effWitness) string) {
		chain, last, fin := chaseWitness(start, w, sums)
		diags = append(diags, contractDiag{rule: rule, pkg: last.Pkg, pos: fin.pos, msg: format(chain, fin)})
	}

	// readonly: annotated roots with a set summary bit.
	for _, n := range cg.order {
		ann := ei.readonly[n.Fn]
		if ann == nil {
			continue
		}
		sum := sums[n]
		viol := func(kind, name string, w *effWitness) {
			report("readonly", n, w, func(chain string, fin *effWitness) string {
				if fin.ext != "" {
					return fmt.Sprintf("%s aliases %s %q of %s (//dophy:readonly) and reaches %s, which the effect analysis must assume writes it (write chain: %s)",
						fin.desc, kind, name, n.Name(), fin.ext, chain)
				}
				return fmt.Sprintf("write to %s mutates %s %q of %s, annotated //dophy:readonly (write chain: %s)",
					fin.desc, kind, name, n.Name(), chain)
			})
		}
		if ann.recv && sum.writesRecv && sum.wRecv != nil {
			name := ann.recvName
			if name == "" {
				name = "recv"
			}
			viol("receiver", name, sum.wRecv)
		}
		for _, pi := range ann.params {
			if sum.params&(1<<pi) != 0 && sum.wParams[pi] != nil {
				viol("parameter", ann.names[pi], sum.wParams[pi])
			}
		}
	}

	// frozen / published channel-boundary facts.
	for _, n := range cg.order {
		f := facts[n]
		for i := range f.frozen {
			v := &f.frozen[i]
			w := &effWitness{pos: v.pos, desc: v.desc, pkg: n.Pkg, callee: v.callee, via: v.via, ext: v.ext}
			name := v.name
			report("effects", n, w, func(chain string, fin *effWitness) string {
				if fin.ext != "" {
					return fmt.Sprintf("%s aliases %s, received from a channel whose element carries //dophy:owner immutable fields, and reaches %s, which the effect analysis must assume writes it (write chain: %s)",
						fin.desc, name, fin.ext, chain)
				}
				return fmt.Sprintf("write to %s mutates %s, received from a channel whose element carries //dophy:owner immutable fields; received values are frozen (write chain: %s)",
					fin.desc, name, chain)
			})
		}
		for i := range f.published {
			v := &f.published[i]
			w := &effWitness{pos: v.pos, desc: v.desc, pkg: n.Pkg, callee: v.callee, via: v.via, ext: v.ext}
			name, line := v.name, v.line
			report("effects", n, w, func(chain string, fin *effWitness) string {
				if fin.ext != "" {
					return fmt.Sprintf("%s aliases %s, published on line %d (//dophy:transfers), and reaches %s after the send, which the effect analysis must assume writes it (write chain: %s)",
						fin.desc, name, line, fin.ext, chain)
				}
				return fmt.Sprintf("write to %s mutates %s after its //dophy:transfers send on line %d: the effect analysis proves the write reaches the published value (write chain: %s)",
					fin.desc, name, line, chain)
			})
		}
	}

	// noglobals: BFS from every //dophy:effects noglobals root over provable
	// edges — the same traversal discipline as hotpathalloc.
	type visit struct {
		node *FuncNode
		via  *visit
	}
	var roots []*FuncNode
	for _, n := range cg.order {
		if _, ok := ei.noGlobals[n.Fn]; ok {
			roots = append(roots, n)
		}
	}
	visited := map[*FuncNode]*visit{}
	var queue []*visit
	for _, r := range roots {
		v := &visit{node: r}
		visited[r] = v
		queue = append(queue, v)
	}
	chainOf := func(v *visit) string {
		var parts []string
		for cur := v; cur != nil; cur = cur.via {
			parts = append(parts, cur.node.Name())
		}
		for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
			parts[i], parts[j] = parts[j], parts[i]
		}
		return strings.Join(parts, " -> ")
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		node := v.node
		chain := chainOf(v)
		f := facts[node]
		for i := range f.globals {
			g := &f.globals[i]
			diags = append(diags, contractDiag{rule: "effects", pkg: node.Pkg, pos: g.pos,
				msg: fmt.Sprintf("write to %s on a //dophy:effects noglobals path (call chain: %s)", g.desc, chain)})
		}
		for _, pos := range f.unresolved {
			diags = append(diags, contractDiag{rule: "effects", pkg: node.Pkg, pos: pos,
				msg: fmt.Sprintf("indirect call on a //dophy:effects noglobals path (%s): callees cannot be proven to leave package-level state alone", chain)})
		}
		hasUnres := map[token.Pos]bool{}
		for i := range node.Calls {
			if node.Calls[i].Kind == EdgeUnresolved {
				hasUnres[node.Calls[i].Pos] = true
			}
		}
		descend := func(e *Edge) {
			if e.Callee == nil || visited[e.Callee] != nil {
				return
			}
			next := &visit{node: e.Callee, via: v}
			visited[e.Callee] = next
			queue = append(queue, next)
		}
		for i := range node.Calls {
			e := &node.Calls[i]
			switch e.Kind {
			case EdgeDirect, EdgeInterface:
				descend(e)
			case EdgeFuncValue:
				if !hasUnres[e.Pos] {
					descend(e)
				}
			case EdgeUnresolved, EdgeExternal:
				// Reported through the node's facts (unresolved sites) or out
				// of scope (external bodies); nothing to descend into.
			}
		}
	}

	sortContractDiags(m, diags)
	m.effDiags = diags
	return diags
}

// sortContractDiags orders whole-module diagnostics by position so replay
// order is deterministic regardless of traversal order.
func sortContractDiags(m *Module, diags []contractDiag) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := m.Fset.Position(diags[i].pos), m.Fset.Position(diags[j].pos)
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].msg < diags[j].msg
	})
}

// replayEffectDiags filters the cached write-effect diagnostics down to one
// rule and package, re-entering the per-Run report path so waivers apply.
func (m *Module) replayEffectDiags(rule string, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	for _, d := range m.effectDiags() {
		if d.pkg == pkg && d.rule == rule {
			report(d.pos, "%s", d.msg)
		}
	}
}

// ---------------------------------------------------------------------------
// Rule readonly: //dophy:readonly roots are transitively un-written.
// ---------------------------------------------------------------------------

type ruleReadOnly struct{}

func (ruleReadOnly) Name() string { return "readonly" }

func (ruleReadOnly) Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	m.replayEffectDiags("readonly", pkg, report)
}

// ---------------------------------------------------------------------------
// Rule effects: no global writes reachable from //dophy:effects noglobals
// roots, and channel-crossing values are frozen after the hand-off.
// ---------------------------------------------------------------------------

type ruleEffects struct{}

func (ruleEffects) Name() string { return "effects" }

func (ruleEffects) Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	m.replayEffectDiags("effects", pkg, report)
}

// ---------------------------------------------------------------------------
// Shared helpers.
// ---------------------------------------------------------------------------

// hasRefType reports whether values of t can share storage: it is isRefType
// extended through struct fields and array elements, because a struct value
// holding a slice still aliases the slice's backing array when copied.
func hasRefType(t types.Type) bool { return hasRefs(t, 0) }

func hasRefs(t types.Type, depth int) bool {
	if t == nil || depth > 8 {
		return true // unknown or too deep: assume shareable (sound)
	}
	switch v := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < v.NumFields(); i++ {
			if hasRefs(v.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	case *types.Array:
		return hasRefs(v.Elem(), depth+1)
	}
	return false
}

// pkgLevelVar returns obj as a package-level variable, or nil. Variables of
// imported packages (os.Stdout) count too: writing them is still writing
// global state.
func pkgLevelVar(obj types.Object) *types.Var {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Pkg() == nil || v.Parent() == nil {
		return nil
	}
	if v.Parent() == v.Pkg().Scope() {
		return v
	}
	return nil
}

// exprText renders an expression compactly for diagnostics.
func exprText(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprText(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return exprText(v.X) + "[...]"
	case *ast.IndexListExpr:
		return exprText(v.X) + "[...]"
	case *ast.SliceExpr:
		return exprText(v.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprText(v.X)
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return "&" + exprText(v.X)
		}
		return "value"
	case *ast.CallExpr:
		return exprText(v.Fun) + "(...)"
	case *ast.ParenExpr:
		return exprText(v.X)
	case *ast.TypeAssertExpr:
		return exprText(v.X)
	}
	return "value"
}
