// dataflow.go is the abstract-interpretation layer behind the idxdomain and
// valrange rules: a per-function forward analysis over go/ast + go/types
// that tracks, for every reachable local value, which integer *domain* it
// belongs to (link-table index, node id, neighbor offset, epoch counter) and
// a numeric interval bounding it. Branch conditions refine intervals at
// control-flow splits, joins widen them back, and loop bodies are analysed
// once over a havocked environment, so the result is a sound (if coarse)
// over-approximation without a fixpoint per loop.
//
// The analysis is whole-module and pragma-independent, so its diagnostics
// are computed once per Module and replayed per package by the rules (the
// same caching discipline hotpathalloc uses). A light inter-procedural
// bridge rides on the PR-4 call graph: every function with a basic numeric
// first result gets a return-value summary, iterated twice in call-graph
// order so chains like LossFromDrop -> caller resolve without a full
// context-sensitive analysis.
package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
	"strconv"
	"strings"
)

// Domain classifies the integer quantities the simulator keeps distinct.
// DomNone is "untracked" (bottom); DomMixed is the error state a value
// enters once two real domains have been combined (top), kept so one bad
// expression does not cascade into a report at every downstream use.
type Domain uint8

const (
	DomNone Domain = iota
	DomLinkIdx
	DomNodeID
	DomNbrOff
	DomEpoch
	DomShard
	DomMixed
)

var domainNames = [...]string{"untracked", "link-index", "node-id", "neighbor-offset", "epoch", "shard-id", "mixed"}

func (d Domain) String() string { return domainNames[d] }

func joinDom(a, b Domain) Domain {
	switch {
	case a == b:
		return a
	case a == DomNone:
		return b
	case b == DomNone:
		return a
	default:
		return DomMixed
	}
}

// interval is a closed numeric range with infinite endpoints allowed.
type interval struct{ lo, hi float64 }

func fullIv() interval           { return interval{math.Inf(-1), math.Inf(1)} }
func pointIv(v float64) interval { return interval{v, v} }

func (iv interval) join(o interval) interval {
	return interval{math.Min(iv.lo, o.lo), math.Max(iv.hi, o.hi)}
}

func (iv interval) meet(o interval) interval {
	return interval{math.Max(iv.lo, o.lo), math.Min(iv.hi, o.hi)}
}

func (iv interval) within(lo, hi float64) bool   { return iv.lo >= lo && iv.hi <= hi }
func (iv interval) disjoint(lo, hi float64) bool { return iv.hi < lo || iv.lo > hi }

func (iv interval) add(o interval) interval {
	lo, hi := iv.lo+o.lo, iv.hi+o.hi
	// +inf + -inf has no information; widen that endpoint.
	if math.IsNaN(lo) {
		lo = math.Inf(-1)
	}
	if math.IsNaN(hi) {
		hi = math.Inf(1)
	}
	return interval{lo, hi}
}

func (iv interval) sub(o interval) interval { return iv.add(interval{-o.hi, -o.lo}) }
func (iv interval) neg() interval           { return interval{-iv.hi, -iv.lo} }

func (iv interval) mul(o interval) interval {
	if math.IsInf(iv.lo, 0) || math.IsInf(iv.hi, 0) || math.IsInf(o.lo, 0) || math.IsInf(o.hi, 0) {
		return fullIv()
	}
	p := [4]float64{iv.lo * o.lo, iv.lo * o.hi, iv.hi * o.lo, iv.hi * o.hi}
	lo, hi := p[0], p[0]
	for _, v := range p[1:] {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return interval{lo, hi}
}

func ivEnd(v float64) string {
	if math.IsInf(v, -1) {
		return "-inf"
	}
	if math.IsInf(v, 1) {
		return "+inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func rangeStr(lo, hi float64) string { return "[" + ivEnd(lo) + ", " + ivEnd(hi) + "]" }

// absVal is the abstract value of one expression: its domain, an interval
// bound, and a boundary-origin bit. src marks values that entered through a
// trust boundary — scenario/config struct fields or the flag package — and
// gates valrange's "unproven" reports so internal arithmetic the analysis
// cannot bound does not drown the signal.
type absVal struct {
	dom Domain
	iv  interval
	src bool
}

func (v absVal) join(o absVal) absVal {
	return absVal{joinDom(v.dom, o.dom), v.iv.join(o.iv), v.src || o.src}
}

// typeDomain maps the module's defined index types onto domains.
func (m *Module) typeDomain(t types.Type) Domain {
	n, ok := t.(*types.Named)
	if !ok {
		return DomNone
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != m.Path+"/internal/topo" {
		return DomNone
	}
	switch obj.Name() {
	case "LinkIdx":
		return DomLinkIdx
	case "NodeID":
		return DomNodeID
	case "ShardID":
		return DomShard
	}
	return DomNone
}

// isNeighborIndexFn spots topo's NeighborIndex, whose plain-int result is
// the neighbor-offset domain by contract rather than by type.
func (m *Module) isNeighborIndexFn(fn *types.Func) bool {
	return fn.Name() == "NeighborIndex" && fn.Pkg() != nil &&
		fn.Pkg().Path() == m.Path+"/internal/topo"
}

func ivForType(t types.Type) interval {
	if t == nil {
		return fullIv()
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsUnsigned != 0 {
		return interval{0, math.Inf(1)}
	}
	return fullIv()
}

func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isNumericType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

func isEpochName(name string) bool {
	return strings.EqualFold(name, "epoch") || strings.EqualFold(name, "epochs")
}

func constIv(v constant.Value) interval {
	switch v.Kind() {
	case constant.Int, constant.Float:
		f, _ := constant.Float64Val(constant.ToFloat(v))
		return pointIv(f)
	}
	return fullIv()
}

func deparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// dfDiag is one cached dataflow diagnostic, replayed per package by the
// idxdomain and valrange rules so pragma filtering happens per Run.
type dfDiag struct {
	rule string
	pkg  *Package
	pos  token.Pos
	msg  string
}

// dfAnalysis walks one function body. env maps identity keys — %p of the
// *types.Var for locals, dotted field paths rooted at one for selector
// chains — to abstract values; lookups that miss fall back to type-derived
// defaults, so an absent key is always the sound top for its type.
type dfAnalysis struct {
	m    *Module
	pkg  *Package
	sums map[*types.Func]absVal
	// rep receives diagnostics; nil while computing summaries.
	rep   func(rule string, pos token.Pos, msg string)
	env   map[string]absVal
	quiet int // >0 while re-evaluating for refinement: hooks muted
	depth int // FuncLit nesting guard
	ret   absVal
	retOK bool
}

func (a *dfAnalysis) runDecl(fd *ast.FuncDecl) {
	a.env = make(map[string]absVal)
	a.execBlock(fd.Body.List)
}

func (a *dfAnalysis) report(rule string, pos token.Pos, format string, args ...any) {
	if a.rep == nil || a.quiet > 0 {
		return
	}
	a.rep(rule, pos, fmt.Sprintf(format, args...))
}

// ---------- environment ----------

func (a *dfAnalysis) key(e ast.Expr) (string, bool) {
	switch v := deparen(e).(type) {
	case *ast.Ident:
		obj := objectOf(a.pkg.Info, v)
		if _, ok := obj.(*types.Var); ok && obj.Name() != "_" {
			return fmt.Sprintf("v%p", obj), true
		}
	case *ast.SelectorExpr:
		if sel := a.pkg.Info.Selections[v]; sel != nil {
			if sel.Kind() != types.FieldVal {
				return "", false
			}
			base, ok := a.key(v.X)
			if !ok {
				return "", false
			}
			return base + "." + v.Sel.Name, true
		}
		// Package-qualified variable.
		if obj, ok := a.pkg.Info.Uses[v.Sel].(*types.Var); ok {
			return fmt.Sprintf("v%p", obj), true
		}
	}
	return "", false
}

func (a *dfAnalysis) typeOfExpr(e ast.Expr) types.Type {
	if tv, ok := a.pkg.Info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := deparen(e).(*ast.Ident); ok {
		if obj := objectOf(a.pkg.Info, id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

func (a *dfAnalysis) defaultVal(t types.Type, name string) absVal {
	if t == nil {
		return absVal{iv: fullIv()}
	}
	if _, ok := t.(*types.Tuple); ok {
		return absVal{iv: fullIv()}
	}
	v := absVal{dom: a.m.typeDomain(t), iv: ivForType(t)}
	if v.dom == DomNone && isEpochName(name) && isIntegerType(t) {
		v.dom = DomEpoch
	}
	return v
}

// isBoundaryField reports whether sel reads a field of a *Config, *Options
// or *Spec struct — the unvalidated entry points valrange polices.
func (a *dfAnalysis) isBoundaryField(sel *ast.SelectorExpr) bool {
	s := a.pkg.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return false
	}
	t := s.Recv()
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := n.Obj().Name()
	return strings.HasSuffix(name, "Config") || strings.HasSuffix(name, "Options") ||
		strings.HasSuffix(name, "Spec")
}

func cloneEnv(env map[string]absVal) map[string]absVal {
	out := make(map[string]absVal, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

// joinEnv keeps only keys bound on both paths; a key missing from one side
// reverts to its type default on lookup, which subsumes any join result.
func joinEnv(x, y map[string]absVal) map[string]absVal {
	out := make(map[string]absVal)
	for k, xv := range x {
		if yv, ok := y[k]; ok {
			out[k] = xv.join(yv)
		}
	}
	return out
}

func (a *dfAnalysis) assign(lhs ast.Expr, val absVal) {
	lhs = deparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	if k, ok := a.key(lhs); ok {
		a.dropChildren(k)
		a.env[k] = val
		return
	}
	// Unkeyable target (slice element, deref, map entry): evaluate the
	// sub-expressions so their own conversions/mixes are still seen.
	switch t := lhs.(type) {
	case *ast.IndexExpr:
		a.eval(t.X)
		a.eval(t.Index)
	case *ast.StarExpr:
		a.eval(t.X)
	case *ast.SelectorExpr:
		a.eval(t.X)
	}
}

// dropChildren invalidates field paths rooted at k when k is rebound.
func (a *dfAnalysis) dropChildren(k string) {
	pref := k + "."
	for ek := range a.env {
		if strings.HasPrefix(ek, pref) {
			delete(a.env, ek)
		}
	}
}

func (a *dfAnalysis) assignDefault(lhs ast.Expr) {
	name := ""
	if id, ok := deparen(lhs).(*ast.Ident); ok {
		name = id.Name
	}
	a.assign(lhs, a.defaultVal(a.typeOfExpr(lhs), name))
}

// ---------- expression evaluation ----------

func (a *dfAnalysis) quietEval(e ast.Expr) absVal {
	a.quiet++
	v := a.eval(e)
	a.quiet--
	return v
}

func (a *dfAnalysis) eval(e ast.Expr) absVal {
	if e == nil {
		return absVal{iv: fullIv()}
	}
	info := a.pkg.Info
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return absVal{dom: a.m.typeDomain(tv.Type), iv: constIv(tv.Value)}
	}
	switch v := e.(type) {
	case *ast.ParenExpr:
		return a.eval(v.X)
	case *ast.Ident:
		if k, ok := a.key(v); ok {
			if val, hit := a.env[k]; hit {
				return val
			}
		}
		return a.defaultVal(a.typeOfExpr(v), v.Name)
	case *ast.SelectorExpr:
		if k, ok := a.key(v); ok {
			if val, hit := a.env[k]; hit {
				return val
			}
		}
		out := a.defaultVal(a.typeOfExpr(v), v.Sel.Name)
		if a.isBoundaryField(v) {
			out.src = true
		}
		return out
	case *ast.StarExpr:
		in := a.eval(v.X)
		out := a.defaultVal(a.typeOfExpr(e), "")
		out.src = out.src || in.src
		return out
	case *ast.UnaryExpr:
		in := a.eval(v.X)
		switch v.Op {
		case token.SUB:
			return absVal{dom: in.dom, iv: in.iv.neg(), src: in.src}
		case token.ADD:
			return in
		default:
			return absVal{iv: fullIv(), src: in.src}
		}
	case *ast.BinaryExpr:
		if v.Op == token.LAND || v.Op == token.LOR {
			x := a.eval(v.X)
			saved := cloneEnv(a.env)
			a.applyCond(v.X, v.Op == token.LAND)
			y := a.eval(v.Y)
			a.env = saved
			return absVal{iv: fullIv(), src: x.src || y.src}
		}
		x := a.eval(v.X)
		y := a.eval(v.Y)
		return a.binop(v.OpPos, v.Op, x, y)
	case *ast.CallExpr:
		return a.evalCall(v)
	case *ast.IndexExpr:
		a.eval(v.X)
		a.eval(v.Index)
		return a.defaultVal(a.typeOfExpr(e), "")
	case *ast.IndexListExpr:
		a.eval(v.X)
		for _, ix := range v.Indices {
			a.eval(ix)
		}
		return a.defaultVal(a.typeOfExpr(e), "")
	case *ast.SliceExpr:
		a.eval(v.X)
		a.eval(v.Low)
		a.eval(v.High)
		a.eval(v.Max)
		return a.defaultVal(a.typeOfExpr(e), "")
	case *ast.TypeAssertExpr:
		a.eval(v.X)
		return a.defaultVal(a.typeOfExpr(e), "")
	case *ast.CompositeLit:
		for _, el := range v.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				a.eval(kv.Value)
			} else {
				a.eval(el)
			}
		}
		return a.defaultVal(a.typeOfExpr(e), "")
	case *ast.FuncLit:
		a.evalFuncLit(v)
		return absVal{iv: fullIv()}
	}
	return absVal{iv: fullIv()}
}

func (a *dfAnalysis) binop(pos token.Pos, op token.Token, x, y absVal) absVal {
	src := x.src || y.src
	mixed := x.dom != DomNone && y.dom != DomNone && x.dom != y.dom &&
		x.dom != DomMixed && y.dom != DomMixed
	if mixed {
		a.report("idxdomain", pos,
			"expression mixes integer domains %s and %s; values must not cross domains without an explicit re-derivation", x.dom, y.dom)
	}
	crossed := func() Domain {
		if mixed {
			return DomMixed
		}
		return DomNone
	}
	switch op {
	case token.ADD:
		dom := joinDom(x.dom, y.dom)
		if mixed {
			dom = DomMixed
		}
		return absVal{dom: dom, iv: x.iv.add(y.iv), src: src}
	case token.SUB:
		// The difference of two same-domain values is an offset, not a
		// member of the domain; shifting by an untracked delta stays in it.
		dom := crossed()
		if !mixed && x.dom != y.dom {
			dom = joinDom(x.dom, y.dom)
		}
		return absVal{dom: dom, iv: x.iv.sub(y.iv), src: src}
	case token.MUL:
		return absVal{dom: crossed(), iv: x.iv.mul(y.iv), src: src}
	case token.QUO, token.REM:
		return absVal{dom: crossed(), iv: fullIv(), src: src}
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return absVal{iv: fullIv(), src: src}
	default:
		return absVal{dom: crossed(), iv: fullIv(), src: src}
	}
}

func (a *dfAnalysis) staticCallee(call *ast.CallExpr) *types.Func {
	switch f := deparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := objectOf(a.pkg.Info, f).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel := a.pkg.Info.Selections[f]; sel != nil {
			if sel.Kind() == types.MethodVal {
				fn, _ := sel.Obj().(*types.Func)
				return fn
			}
			return nil
		}
		fn, _ := a.pkg.Info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

func (a *dfAnalysis) evalCall(call *ast.CallExpr) absVal {
	info := a.pkg.Info
	// Explicit type conversion: the one legal way to move a value between
	// integer domains — and therefore the place idxdomain inspects.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		in := a.eval(call.Args[0])
		to := tv.Type
		out := absVal{dom: a.m.typeDomain(to), iv: in.iv, src: in.src}
		if out.dom != DomNone {
			if in.dom != DomNone && in.dom != out.dom && in.dom != DomMixed {
				a.report("idxdomain", call.Pos(),
					"conversion crosses integer domains: %s -> %s; re-derive the value or waive with //dophy:allow idxdomain", in.dom, out.dom)
			}
		} else if isIntegerType(to) {
			// Laundering an index through int keeps its domain taint.
			out.dom = in.dom
		}
		if !isNumericType(to) {
			return absVal{iv: fullIv(), src: in.src}
		}
		return out
	}
	if id, ok := deparen(call.Fun).(*ast.Ident); ok {
		if b, isB := objectOf(info, id).(*types.Builtin); isB {
			for _, arg := range call.Args {
				a.eval(arg)
			}
			switch b.Name() {
			case "len", "cap":
				return absVal{iv: interval{0, math.Inf(1)}}
			}
			return a.defaultVal(a.typeOfExpr(call), "")
		}
	}
	switch f := deparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		a.eval(f.X)
	case *ast.FuncLit:
		a.evalFuncLit(f)
	}
	args := make([]absVal, len(call.Args))
	for i := range call.Args {
		args[i] = a.eval(call.Args[i])
	}
	fn := a.staticCallee(call)
	if fn != nil {
		a.checkContracts(call, fn, args)
	}
	out := a.defaultVal(a.typeOfExpr(call), "")
	if fn != nil {
		if a.m.isNeighborIndexFn(fn) {
			return absVal{dom: DomNbrOff, iv: interval{-1, math.Inf(1)}}
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "flag" {
			out.src = true
		}
		if s, ok := a.sums[fn]; ok {
			if s.dom != DomNone {
				out.dom = s.dom
			}
			out.iv = s.iv
		}
	}
	return out
}

func (a *dfAnalysis) evalFuncLit(fl *ast.FuncLit) {
	if a.depth >= 4 || fl.Body == nil {
		return
	}
	a.depth++
	savedEnv := a.env
	savedRet, savedOK := a.ret, a.retOK
	a.env = cloneEnv(savedEnv)
	a.execBlock(fl.Body.List)
	a.env = savedEnv
	a.ret, a.retOK = savedRet, savedOK
	a.depth--
}

// ---------- statements ----------

// execBlock runs stmts in order; true means every path through the block
// diverts (return, panic, os.Exit, break/continue) before falling through.
func (a *dfAnalysis) execBlock(stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if a.execStmt(s) {
			return true
		}
	}
	return false
}

func (a *dfAnalysis) execStmt(s ast.Stmt) bool {
	switch v := s.(type) {
	case *ast.BlockStmt:
		return a.execBlock(v.List)
	case *ast.ExprStmt:
		a.eval(v.X)
		return a.isTerminalCall(v.X)
	case *ast.AssignStmt:
		a.execAssign(v)
	case *ast.DeclStmt:
		a.execDecl(v)
	case *ast.IncDecStmt:
		cur := a.quietEval(v.X)
		if v.Tok == token.INC {
			cur.iv = cur.iv.add(pointIv(1))
		} else {
			cur.iv = cur.iv.sub(pointIv(1))
		}
		a.assign(v.X, cur)
	case *ast.ReturnStmt:
		for i, r := range v.Results {
			val := a.eval(r)
			if i == 0 {
				if a.retOK {
					a.ret = a.ret.join(val)
				} else {
					a.ret, a.retOK = val, true
				}
			}
		}
		return true
	case *ast.BranchStmt:
		return v.Tok != token.FALLTHROUGH
	case *ast.IfStmt:
		return a.execIf(v)
	case *ast.ForStmt:
		a.execFor(v)
	case *ast.RangeStmt:
		a.execRange(v)
	case *ast.SwitchStmt:
		a.execSwitch(v)
	case *ast.TypeSwitchStmt:
		a.execTypeSwitch(v)
	case *ast.SelectStmt:
		a.execSelect(v)
	case *ast.LabeledStmt:
		return a.execStmt(v.Stmt)
	case *ast.GoStmt:
		a.eval(v.Call)
	case *ast.DeferStmt:
		a.eval(v.Call)
	case *ast.SendStmt:
		a.eval(v.Chan)
		a.eval(v.Value)
	}
	return false
}

func assignOp(tok token.Token) (token.Token, bool) {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD, true
	case token.SUB_ASSIGN:
		return token.SUB, true
	case token.MUL_ASSIGN:
		return token.MUL, true
	case token.QUO_ASSIGN:
		return token.QUO, true
	case token.REM_ASSIGN:
		return token.REM, true
	}
	return tok, false
}

func (a *dfAnalysis) execAssign(v *ast.AssignStmt) {
	if len(v.Lhs) == len(v.Rhs) {
		vals := make([]absVal, len(v.Rhs))
		for i := range v.Rhs {
			vals[i] = a.eval(v.Rhs[i])
		}
		for i := range v.Lhs {
			val := vals[i]
			if op, isOp := assignOp(v.Tok); isOp {
				cur := a.quietEval(v.Lhs[i])
				val = a.binop(v.TokPos, op, cur, val)
			} else if v.Tok != token.ASSIGN && v.Tok != token.DEFINE {
				val = absVal{iv: fullIv(), src: val.src}
			}
			a.assign(v.Lhs[i], val)
		}
		return
	}
	// Tuple form: x, y := f() / v, ok := m[k] — fall back to type defaults.
	for _, r := range v.Rhs {
		a.eval(r)
	}
	for _, l := range v.Lhs {
		a.assignDefault(l)
	}
}

func (a *dfAnalysis) execDecl(v *ast.DeclStmt) {
	gd, ok := v.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		switch {
		case len(vs.Values) == len(vs.Names):
			for i, name := range vs.Names {
				a.assign(name, a.eval(vs.Values[i]))
			}
		case len(vs.Values) > 0:
			for _, val := range vs.Values {
				a.eval(val)
			}
			for _, name := range vs.Names {
				a.assignDefault(name)
			}
		default:
			// var x T — zero value.
			for _, name := range vs.Names {
				val := a.defaultVal(a.typeOfExpr(name), name.Name)
				if isNumericType(a.typeOfExpr(name)) {
					val.iv = pointIv(0)
				}
				a.assign(name, val)
			}
		}
	}
}

func (a *dfAnalysis) execIf(v *ast.IfStmt) bool {
	if v.Init != nil {
		a.execStmt(v.Init)
	}
	a.eval(v.Cond)
	saved := cloneEnv(a.env)
	a.applyCond(v.Cond, true)
	termThen := a.execBlock(v.Body.List)
	thenEnv := a.env
	a.env = cloneEnv(saved)
	a.applyCond(v.Cond, false)
	termElse := false
	if v.Else != nil {
		termElse = a.execStmt(v.Else)
	}
	elseEnv := a.env
	switch {
	case termThen && termElse:
		a.env = saved
		return true
	case termThen:
		// Only the else path continues — the early-return/panic refinement.
		a.env = elseEnv
	case termElse:
		a.env = thenEnv
	default:
		a.env = joinEnv(thenEnv, elseEnv)
	}
	return false
}

func (a *dfAnalysis) execFor(v *ast.ForStmt) {
	if v.Init != nil {
		a.execStmt(v.Init)
	}
	a.havocBody(v.Body, v.Post)
	if v.Cond != nil {
		a.eval(v.Cond)
		a.applyCond(v.Cond, true)
	}
	a.execBlock(v.Body.List)
	if v.Post != nil {
		a.execStmt(v.Post)
	}
	a.havocBody(v.Body, v.Post)
	if v.Cond != nil {
		a.applyCond(v.Cond, false)
	}
}

func (a *dfAnalysis) execRange(v *ast.RangeStmt) {
	a.eval(v.X)
	a.havocBody(v.Body, nil)
	if v.Key != nil {
		val := a.defaultVal(a.typeOfExpr(v.Key), "")
		if t := a.typeOfExpr(v.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); !isMap && isIntegerType(a.typeOfExpr(v.Key)) {
				val.iv = interval{0, math.Inf(1)}
			}
		}
		a.assign(v.Key, val)
	}
	if v.Value != nil {
		a.assignDefault(v.Value)
	}
	a.execBlock(v.Body.List)
	a.havocBody(v.Body, nil)
}

func (a *dfAnalysis) execSwitch(v *ast.SwitchStmt) {
	if v.Init != nil {
		a.execStmt(v.Init)
	}
	if v.Tag != nil {
		a.eval(v.Tag)
	}
	saved := cloneEnv(a.env)
	var outs []map[string]absVal
	hasDefault := false
	for _, c := range v.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		a.env = cloneEnv(saved)
		if cc.List == nil {
			hasDefault = true
		}
		for _, ce := range cc.List {
			a.eval(ce)
		}
		if len(cc.List) == 1 {
			if v.Tag != nil {
				a.refineCmp(v.Tag, token.EQL, cc.List[0])
			} else {
				a.applyCond(cc.List[0], true)
			}
		}
		if !a.execBlock(cc.Body) {
			outs = append(outs, a.env)
		}
	}
	a.env = cloneEnv(saved)
	if len(outs) > 0 {
		acc := outs[0]
		for _, o := range outs[1:] {
			acc = joinEnv(acc, o)
		}
		if hasDefault {
			a.env = acc
		} else {
			a.env = joinEnv(acc, saved)
		}
	}
}

func (a *dfAnalysis) execTypeSwitch(v *ast.TypeSwitchStmt) {
	if v.Init != nil {
		a.execStmt(v.Init)
	}
	a.execStmt(v.Assign)
	saved := cloneEnv(a.env)
	acc := cloneEnv(saved)
	for _, c := range v.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		a.env = cloneEnv(saved)
		if !a.execBlock(cc.Body) {
			acc = joinEnv(acc, a.env)
		}
	}
	a.env = acc
}

func (a *dfAnalysis) execSelect(v *ast.SelectStmt) {
	saved := cloneEnv(a.env)
	acc := cloneEnv(saved)
	for _, c := range v.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		a.env = cloneEnv(saved)
		if cc.Comm != nil {
			a.execStmt(cc.Comm)
		}
		if !a.execBlock(cc.Body) {
			acc = joinEnv(acc, a.env)
		}
	}
	a.env = acc
}

// havocBody widens every variable the loop body (or post statement) can
// write back to its type default, so the single symbolic pass over the body
// sees a state that covers every iteration.
func (a *dfAnalysis) havocBody(body *ast.BlockStmt, post ast.Stmt) {
	widen := func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for _, l := range s.Lhs {
					a.havocExpr(l)
				}
			case *ast.IncDecStmt:
				a.havocExpr(s.X)
			case *ast.RangeStmt:
				if s.Key != nil {
					a.havocExpr(s.Key)
				}
				if s.Value != nil {
					a.havocExpr(s.Value)
				}
			case *ast.UnaryExpr:
				if s.Op == token.AND {
					a.havocExpr(s.X)
				}
			}
			return true
		})
	}
	if body != nil {
		widen(body)
	}
	if post != nil {
		widen(post)
	}
}

func (a *dfAnalysis) havocExpr(e ast.Expr) {
	k, ok := a.key(e)
	if !ok {
		return
	}
	a.dropChildren(k)
	name := ""
	if id, isID := deparen(e).(*ast.Ident); isID {
		name = id.Name
	}
	if t := a.typeOfExpr(e); t != nil {
		a.env[k] = a.defaultVal(t, name)
	} else {
		delete(a.env, k)
	}
}

// ---------- branch refinement ----------

func negCmp(op token.Token) token.Token {
	switch op {
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	}
	return op
}

func flipCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op
}

func (a *dfAnalysis) applyCond(cond ast.Expr, truth bool) {
	switch v := deparen(cond).(type) {
	case *ast.UnaryExpr:
		if v.Op == token.NOT {
			a.applyCond(v.X, !truth)
		}
	case *ast.BinaryExpr:
		switch v.Op {
		case token.LAND:
			if truth {
				a.applyCond(v.X, true)
				a.applyCond(v.Y, true)
			}
		case token.LOR:
			if !truth {
				a.applyCond(v.X, false)
				a.applyCond(v.Y, false)
			}
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			op := v.Op
			if !truth {
				op = negCmp(op)
			}
			a.refineCmp(v.X, op, v.Y)
		}
	}
}

func (a *dfAnalysis) refineCmp(x ast.Expr, op token.Token, y ast.Expr) {
	a.refineSide(x, op, y)
	a.refineSide(y, flipCmp(op), x)
}

// refineSide narrows x's interval using `x op other`. Strict comparisons
// are treated as their inclusive counterparts — sound for the at-most /
// at-least facts the contracts need.
func (a *dfAnalysis) refineSide(x ast.Expr, op token.Token, other ast.Expr) {
	k, ok := a.key(x)
	if !ok {
		return
	}
	o := a.quietEval(other)
	cur, hit := a.env[k]
	if !hit {
		cur = a.quietEval(x)
	}
	switch op {
	case token.LSS, token.LEQ:
		cur.iv.hi = math.Min(cur.iv.hi, o.iv.hi)
	case token.GTR, token.GEQ:
		cur.iv.lo = math.Max(cur.iv.lo, o.iv.lo)
	case token.EQL:
		cur.iv = cur.iv.meet(o.iv)
		cur.dom = joinDom(cur.dom, o.dom)
	default:
		return
	}
	a.env[k] = cur
}

func (a *dfAnalysis) isTerminalCall(e ast.Expr) bool {
	call, ok := deparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch f := deparen(call.Fun).(type) {
	case *ast.Ident:
		b, isB := objectOf(a.pkg.Info, f).(*types.Builtin)
		return isB && b.Name() == "panic"
	case *ast.SelectorExpr:
		fn, _ := a.pkg.Info.Uses[f.Sel].(*types.Func)
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "os":
			return fn.Name() == "Exit"
		case "log":
			return strings.HasPrefix(fn.Name(), "Fatal") || strings.HasPrefix(fn.Name(), "Panic")
		case "runtime":
			return fn.Name() == "Goexit"
		}
	}
	return false
}

// ---------- module-level driver & summaries ----------

// dfSummaries computes a return-value summary (domain + interval of the
// first result) for every module function with a basic numeric first
// result. Two rounds over the call graph's deterministic order let
// summaries flow through one level of indirection each round.
func (m *Module) dfSummaries() map[*types.Func]absVal {
	if m.dfSums != nil {
		return m.dfSums
	}
	sums := map[*types.Func]absVal{}
	cg := m.CallGraph()
	for round := 0; round < 2; round++ {
		for _, n := range cg.Funcs() {
			if n.Decl == nil || n.Decl.Body == nil {
				continue
			}
			sig, ok := n.Fn.Type().(*types.Signature)
			if !ok || sig.Results().Len() == 0 {
				continue
			}
			if !isNumericType(sig.Results().At(0).Type()) {
				continue
			}
			a := &dfAnalysis{m: m, pkg: n.Pkg, sums: sums}
			a.runDecl(n.Decl)
			if a.retOK {
				// Summaries never carry the boundary bit: what a function
				// returns is its own computation, not a raw config read.
				a.ret.src = false
				sums[n.Fn] = a.ret
			}
		}
	}
	m.dfSums = sums
	return sums
}

// dataflowDiags runs the analysis once over the whole module and caches the
// idxdomain/valrange diagnostics; the rules replay them per package so the
// per-Run pragma filter applies as usual.
func (m *Module) dataflowDiags() []dfDiag {
	if m.dfDone {
		return m.dfDiags
	}
	sums := m.dfSummaries()
	seen := map[dfDiag]bool{}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				a := &dfAnalysis{m: m, pkg: pkg, sums: sums}
				p := pkg
				a.rep = func(rule string, pos token.Pos, msg string) {
					d := dfDiag{rule: rule, pkg: p, pos: pos, msg: msg}
					if !seen[d] {
						seen[d] = true
						m.dfDiags = append(m.dfDiags, d)
					}
				}
				a.runDecl(fd)
			}
		}
	}
	m.dfDone = true
	return m.dfDiags
}
