// Package rng provides a deterministic, splittable pseudo-random number
// generator and the distributions needed by the simulator and the
// tomography estimators.
//
// Everything in this repository that consumes randomness takes a *Source
// explicitly; no package-level global generator exists. That makes every
// simulation scenario reproducible bit-for-bit from a single seed, which the
// experiment harness relies on when comparing tomography schemes on
// identical packet-loss realisations.
//
// The core generator is xoshiro256** (Blackman & Vigna), chosen because it
// is tiny, fast, passes BigCrush, and supports cheap deterministic
// "splitting" via its jump polynomial so that independent subsystems (radio,
// MAC, routing jitter, workload) can draw from decorrelated streams derived
// from one scenario seed.
package rng

import "math"

// Source is a xoshiro256** generator. The zero value is invalid; construct
// with New or Split.
//
// A Source is single-consumer state: every draw mutates it, so under the
// sharded engine each stream is confined to the shard that owns its node
// (rng.Derive hands out disjoint per-node streams). The annotation lets the
// contract rules flag any coordinator-side field that would smuggle a
// stream across the shard boundary.
//
//dophy:owner shard
type Source struct {
	s [4]uint64
}

// splitMix64 is used to seed the state from a single word, per the xoshiro
// authors' recommendation, so that similar seeds yield unrelated states.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given seed. Two Sources built from
// the same seed produce identical streams.
func New(seed uint64) *Source {
	sm := seed
	var s Source
	for i := range s.s {
		s.s[i] = splitMix64(&sm)
	}
	// A pathological all-zero state would lock the generator at zero;
	// splitMix64 cannot produce four zero words from any input, but guard
	// anyway so the invariant is local and obvious.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 1
	}
	return &s
}

// Derive returns the idx-th member of a family of decorrelated streams keyed
// by seed. Unlike Split it needs no shared parent state, so callers can
// derive stream idx directly — the sharded simulation uses this to give every
// node its own stream from (scenario seed, node id), making each node's draw
// sequence independent of how events from different nodes interleave.
func Derive(seed, idx uint64) *Source {
	// Feed both words through the splitMix64 finalizer so that adjacent
	// indices land on unrelated states (same construction New uses for
	// adjacent seeds).
	sm := seed ^ (idx+0x6a09e667f3bcc909)*0x9e3779b97f4a7c15
	var s Source
	for i := range s.s {
		s.s[i] = splitMix64(&sm)
	}
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 1
	}
	return &s
}

// NewStreams returns n streams Derive(seed, 0..n-1), allocated in one block.
func NewStreams(seed uint64, n int) []*Source {
	out := make([]*Source, n)
	for i := range out {
		out[i] = Derive(seed, uint64(i))
	}
	return out
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// jump is the xoshiro256 jump polynomial; applying it advances the stream by
// 2^128 steps, yielding a non-overlapping subsequence.
var jump = [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}

// Split returns a new Source whose stream is guaranteed not to overlap with
// the receiver's next 2^128 outputs, and advances the receiver past the
// split point. Use it to derive independent streams for subsystems.
func (r *Source) Split() *Source {
	child := *r
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				s0 ^= r.s[0]
				s1 ^= r.s[1]
				s2 ^= r.s[2]
				s3 ^= r.s[3]
			}
			r.Uint64()
		}
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
	return &child
}

// Float64 returns a uniform value in [0, 1) with 53 random bits.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's nearly-divisionless bounded technique avoids modulo bias.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	carry := t >> 32
	t = aHi*bLo + carry
	mid := t & mask
	hiPart := t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi = aHi*bHi + hiPart + (t >> 32)
	return hi, lo
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Range returns a uniform value in [lo, hi).
func (r *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal returns a draw from N(mean, stddev^2) using the Box-Muller
// transform. stddev must be non-negative.
func (r *Source) Normal(mean, stddev float64) float64 {
	// Box-Muller needs u1 in (0,1]; Float64 returns [0,1).
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Exp returns a draw from the exponential distribution with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	return -math.Log(1-r.Float64()) / rate
}

// Geometric returns the number of Bernoulli(p) failures before the first
// success, i.e. a draw from Geom(p) supported on {0, 1, 2, ...}. It panics
// unless 0 < p <= 1.
func (r *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric needs 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	// Inverse CDF: floor(log(U) / log(1-p)).
	u := 1 - r.Float64()
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Perm returns a random permutation of [0, n) via Fisher-Yates.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly reorders the first n elements using swap, mirroring the
// contract of math/rand.Shuffle.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
