package rng

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child must reproduce what the parent would have produced pre-jump.
	ref := New(7)
	for i := 0; i < 100; i++ {
		if child.Uint64() != ref.Uint64() {
			t.Fatalf("child stream differs from pre-split parent at %d", i)
		}
	}
	// Parent post-split must not equal the reference stream.
	p, r := parent.Uint64(), ref.Uint64()
	if p == r {
		t.Fatalf("parent did not jump: %d == %d", p, r)
	}
}

func TestSplitSiblingsDiffer(t *testing.T) {
	root := New(9)
	a := root.Split()
	b := root.Split()
	collisions := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("sibling streams collided %d/1000 times", collisions)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(6)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBoolProbability(t *testing.T) {
	r := New(8)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate = %v", got)
	}
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Normal(2, 3)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("Normal mean = %v, want ~2", mean)
	}
	if math.Abs(variance-9) > 0.3 {
		t.Fatalf("Normal variance = %v, want ~9", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := New(12)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(2)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(13)
	const n, p = 200000, 0.25
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / n
	want := (1 - p) / p // 3
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("Geometric(%v) mean = %v, want ~%v", p, mean, want)
	}
	if g := r.Geometric(1); g != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", g)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(14)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(15)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("shuffle duplicated values: %v", xs)
		}
		seen[v] = true
	}
}

// Property: Intn output always within bounds, any seed, any positive n.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw)%1000 + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: two sources from the same seed agree on every distribution call.
func TestQuickDeterministicAcrossDistributions(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 20; i++ {
			if a.Float64() != b.Float64() ||
				a.Normal(0, 1) != b.Normal(0, 1) ||
				a.Geometric(0.5) != b.Geometric(0.5) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Float64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(1000)
	}
	_ = sink
}

func TestDeriveDeterministic(t *testing.T) {
	a := Derive(42, 7)
	b := Derive(42, 7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Derive(42,7) diverged at draw %d", i)
		}
	}
}

func TestDeriveStreamsDecorrelated(t *testing.T) {
	// Distinct indices (including adjacent ones) and distinct seeds must not
	// collide on their opening draws.
	seen := make(map[uint64]string)
	for _, seed := range []uint64{0, 1, 42} {
		for idx := uint64(0); idx < 64; idx++ {
			v := Derive(seed, idx).Uint64()
			key := fmt.Sprintf("seed=%d idx=%d", seed, idx)
			if prev, dup := seen[v]; dup {
				t.Fatalf("first draw collision between %s and %s", prev, key)
			}
			seen[v] = key
		}
	}
}

func TestNewStreams(t *testing.T) {
	streams := NewStreams(9, 16)
	if len(streams) != 16 {
		t.Fatalf("NewStreams returned %d streams, want 16", len(streams))
	}
	for i, s := range streams {
		want := Derive(9, uint64(i)).Uint64()
		if got := s.Uint64(); got != want {
			t.Fatalf("stream %d first draw = %d, want Derive value %d", i, got, want)
		}
	}
}
