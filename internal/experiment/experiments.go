package experiment

import (
	"fmt"
	"sort"
	"strings"

	"dophy/internal/sim"
	"dophy/internal/stats"
)

// Table is one experiment's printable result (a paper table or the data
// series behind a figure).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	// SimEvents / Runs / EstSeconds meter the work behind the table (summed
	// over its scenario runs). They never appear in Format/CSV output —
	// cmd/dophy-bench -json reads them for throughput reporting. EstSeconds
	// isolates the estimation-stage wall time (MINC + LSQ inference) from
	// the simulation, so estimator regressions are visible even when the
	// simulation dominates the end-to-end time.
	SimEvents  uint64
	Runs       int
	EstSeconds float64
}

// recordRuns folds run-level metering into the table.
func (t *Table) recordRuns(results ...*RunResult) {
	for _, r := range results {
		t.SimEvents += r.Events
		t.EstSeconds += r.EstSeconds
		t.Runs++
	}
}

// recordSession folds a session-driven experiment's metering into the table.
func (t *Table) recordSession(events uint64, estSeconds float64) {
	t.SimEvents += events
	t.EstSeconds += estSeconds
	t.Runs++
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func f(v float64) string  { return fmt.Sprintf("%.4f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// overheadSchemes is the T1/F1 comparison set, best-first.
var overheadSchemes = []string{SchemeDophy, SchemeDophyNA, SchemeHuffman, SchemeCompact, SchemeRaw}

// accuracySchemes is the F2-F5 comparison set.
var accuracySchemes = []string{SchemeDophy, SchemeMINC, SchemeLSQ}

// T1 measures encoding overhead (bytes/packet) versus network size.
func T1(seed uint64) *Table {
	t := &Table{
		ID:      "T1",
		Title:   "Encoding overhead (bytes/packet) vs network size",
		Columns: append([]string{"nodes", "avg-hops"}, overheadSchemes...),
		Notes: []string{
			"bytes/packet = (annotation + origin header) / delivered packets",
			"claim: arithmetic coding (dophy) < huffman < compact < raw at every size",
		},
	}
	sides := []int{7, 10, 15, 20}
	scs := make([]Scenario, len(sides))
	for i, side := range sides {
		sc := DefaultScenario()
		sc.Name = fmt.Sprintf("t1-%d", side*side)
		sc.Seed = seed + uint64(side)
		sc.Topo = GridSpec(side)
		sc.Epochs = 2
		sc.EpochLen = 200
		scs[i] = sc
	}
	for i, res := range RunAll(scs) {
		row := []string{
			fmt.Sprintf("%d", sides[i]*sides[i]),
			f2(res.Topology.Summary().AvgHops),
		}
		for _, s := range overheadSchemes {
			row = append(row, f2(res.MeanBitsPerPacket(s)/8))
		}
		t.Rows = append(t.Rows, row)
		t.recordRuns(res)
	}
	return t
}

// F1 measures per-packet encoding overhead versus path length.
func F1(seed uint64) *Table {
	t := &Table{
		ID:      "F1",
		Title:   "Dophy annotation size (bytes) vs path length",
		Columns: []string{"hops", "packets", "dophy-bytes", "compact-bytes", "raw-bytes"},
		Notes: []string{
			"dophy column is measured per packet; compact/raw are their fixed per-hop costs",
			"claim: dophy grows by well under a byte per hop",
		},
	}
	sc := DefaultScenario()
	sc.Name = "f1"
	sc.Seed = seed
	sc.Topo = GridSpec(12) // deep network for long paths
	sc.Epochs = 2
	sc.EpochLen = 250
	res := Run(sc)
	t.recordRuns(res)
	// Bucket Dophy's per-packet bits by hop count.
	byHops := map[int][]float64{}
	for _, eo := range res.Epochs {
		for _, ps := range eo.PerPacket {
			byHops[ps.Hops] = append(byHops[ps.Hops], float64(ps.DophyBits))
		}
	}
	var hops []int
	for h := range byHops {
		hops = append(hops, h)
	}
	sort.Ints(hops)
	// Per-hop fixed widths for compact on this topology: varies per node;
	// report the measured mean instead.
	compactPerHop := meanBitsPerHop(res, SchemeCompact)
	rawPerHop := meanBitsPerHop(res, SchemeRaw)
	for _, h := range hops {
		samples := byHops[h]
		if len(samples) < 10 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", h),
			fmt.Sprintf("%d", len(samples)),
			f2(stats.Mean(samples) / 8),
			f2(compactPerHop * float64(h) / 8),
			f2(rawPerHop * float64(h) / 8),
		})
	}
	return t
}

func meanBitsPerHop(res *RunResult, scheme string) float64 {
	var bits, hops int64
	for _, eo := range res.Epochs {
		if se, ok := eo.Schemes[scheme]; ok {
			bits += se.AnnotationBits
			hops += se.Hops
		}
	}
	if hops == 0 {
		return 0
	}
	return float64(bits) / float64(hops)
}

// F2 measures estimation accuracy versus traffic volume per epoch.
func F2(seed uint64) *Table {
	t := &Table{
		ID:      "F2",
		Title:   "Per-link loss MAE vs packets received per epoch",
		Columns: append([]string{"epoch-len(s)", "pkts/epoch"}, accuracySchemes...),
		Notes: []string{
			"claim: dophy converges quickly with traffic; delivery-ratio baselines stay coarse",
		},
	}
	lens := []float64{60, 150, 300, 600, 1200}
	scs := make([]Scenario, len(lens))
	for i, el := range lens {
		sc := DefaultScenario()
		sc.Name = fmt.Sprintf("f2-%.0f", el)
		sc.Seed = seed + uint64(el)
		sc.EpochLen = sim.Time(el)
		sc.Epochs = 3
		scs[i] = sc
	}
	for i, res := range RunAll(scs) {
		row := []string{f1(lens[i]), f1(res.MeanPacketsPerEpoch)}
		for _, s := range accuracySchemes {
			row = append(row, f(res.MeanAccuracy(s).MAE))
		}
		t.Rows = append(t.Rows, row)
		t.recordRuns(res)
	}
	return t
}

// F3 measures accuracy versus routing dynamics (forced parent churn).
func F3(seed uint64) *Table {
	t := &Table{
		ID:      "F3",
		Title:   "Per-link loss MAE vs routing dynamics",
		Columns: append([]string{"churn-prob", "parent-chg/node/epoch"}, accuracySchemes...),
		Notes: []string{
			"churn-prob: probability per beacon of re-picking a random admissible parent",
			"claim: dophy is insensitive to path dynamics; static-path baselines degrade",
		},
	}
	t.Notes = append(t.Notes,
		"MaxRetx=1 here so end-to-end delivery carries signal: at zero churn the",
		"static-path baselines are at their best, isolating the dynamics effect")
	churns := []float64{0, 0.05, 0.15, 0.3, 0.5}
	scs := make([]Scenario, len(churns))
	for i, churn := range churns {
		sc := DefaultScenario()
		sc.Name = fmt.Sprintf("f3-%.2f", churn)
		sc.Seed = seed // identical network across rows; only churn varies
		sc.Routing.RandomizeParentProb = churn
		// Give the baselines their best case: a small retry budget makes
		// end-to-end loss observable, a long epoch gives them samples, and
		// strong hysteresis quiets natural churn so the knob controls the
		// x-axis.
		sc.Mac.MaxRetx = 1
		sc.Routing.Hysteresis = 3
		sc.Routing.AlphaData = 0.05 // smooth estimator: quasi-static at churn 0
		sc.Routing.AlphaBeacon = 0.1
		sc.EpochLen = 600
		sc.Epochs = 3
		scs[i] = sc
	}
	for i, res := range RunAll(scs) {
		row := []string{f2(churns[i]), f2(res.ParentChangesPerNodePerEpoch)}
		for _, s := range accuracySchemes {
			row = append(row, f(res.MeanAccuracy(s).MAE))
		}
		t.Rows = append(t.Rows, row)
		t.recordRuns(res)
	}
	return t
}

// F4 measures accuracy versus the overall link-loss level.
func F4(seed uint64) *Table {
	t := &Table{
		ID:      "F4",
		Title:   "Per-link loss MAE vs mean link loss",
		Columns: append([]string{"true-loss"}, accuracySchemes...),
		Notes: []string{
			"uniform per-link loss so the x-axis is exact",
			"claim: dophy stays accurate across loss regimes",
		},
	}
	losses := []float64{0.05, 0.1, 0.2, 0.3}
	scs := make([]Scenario, len(losses))
	for i, loss := range losses {
		sc := DefaultScenario()
		sc.Name = fmt.Sprintf("f4-%.2f", loss)
		sc.Seed = seed + uint64(loss*100)
		sc.Radio = RadioSpec{Kind: RadioUniformLoss, UniformLoss: loss}
		sc.Epochs = 3
		scs[i] = sc
	}
	for i, res := range RunAll(scs) {
		row := []string{f2(losses[i])}
		for _, s := range accuracySchemes {
			row = append(row, f(res.MeanAccuracy(s).MAE))
		}
		t.Rows = append(t.Rows, row)
		t.recordRuns(res)
	}
	return t
}

// F5 produces the CDF of absolute per-link error for each scheme.
func F5(seed uint64) *Table {
	t := &Table{
		ID:      "F5",
		Title:   "CDF of absolute per-link loss error",
		Columns: append([]string{"percentile"}, accuracySchemes...),
		Notes: []string{
			"error value at each percentile of the per-link |error| distribution",
		},
	}
	sc := DefaultScenario()
	sc.Name = "f5"
	sc.Seed = seed
	sc.Epochs = 4
	res := Run(sc)
	t.recordRuns(res)
	errsBy := map[string][]float64{}
	for _, eo := range res.Epochs {
		for _, s := range accuracySchemes {
			acc := Score(eo.Schemes[s], eo.Truth, sc.MinTruthAttempts)
			errsBy[s] = append(errsBy[s], acc.Errors...)
		}
	}
	for _, s := range accuracySchemes {
		sort.Float64s(errsBy[s])
	}
	for _, pct := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
		row := []string{f2(pct)}
		for _, s := range accuracySchemes {
			if len(errsBy[s]) == 0 {
				row = append(row, "n/a")
				continue
			}
			row = append(row, f(stats.Quantile(errsBy[s], pct)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// T2 sweeps the symbol-aggregation threshold (optimisation 1).
func T2(seed uint64) *Table {
	t := &Table{
		ID:      "T2",
		Title:   "Aggregation threshold: overhead vs accuracy (optimisation 1)",
		Columns: []string{"threshold", "symbols", "bytes/pkt", "MAE", "coverage"},
		Notes: []string{
			"threshold 0 = no aggregation (full alphabet)",
			"claim: aggregation trims overhead with negligible accuracy cost",
		},
	}
	thresholds := []int{0, 2, 3, 4, 6}
	scs := make([]Scenario, len(thresholds))
	for i, thr := range thresholds {
		sc := DefaultScenario()
		sc.Name = fmt.Sprintf("t2-%d", thr)
		sc.Seed = seed // identical realisation across thresholds
		sc.Dophy.AggThreshold = thr
		sc.Epochs = 3
		scs[i] = sc
	}
	for i, res := range RunAll(scs) {
		thr := thresholds[i]
		acc := res.MeanAccuracy(SchemeDophy)
		symbols := scs[i].Mac.MaxRetx + 1
		if thr > 0 {
			symbols = thr + 1
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", thr),
			fmt.Sprintf("%d", symbols),
			f2(res.MeanBitsPerPacket(SchemeDophy) / 8),
			f(acc.MAE),
			f2(acc.Coverage),
		})
		t.recordRuns(res)
	}
	return t
}

// T3 sweeps the model-update period (optimisation 2) under drifting links.
func T3(seed uint64) *Table {
	t := &Table{
		ID:      "T3",
		Title:   "Model update period: total overhead under link drift (optimisation 2)",
		Columns: []string{"update-every", "annot-bytes/pkt", "dissem-bytes/pkt", "total-bytes/pkt", "MAE"},
		Notes: []string{
			"update-every in epochs; 0 = never update (stale prior forever)",
			"links drift (random walk), so the count distribution moves away from any stale model",
			"claim: periodic updates minimise total (in-packet + dissemination) overhead",
		},
	}
	periods := []int{0, 1, 2, 4, 8}
	scs := make([]Scenario, len(periods))
	for i, ue := range periods {
		sc := DefaultScenario()
		sc.Name = fmt.Sprintf("t3-%d", ue)
		sc.Seed = seed
		sc.Radio = RadioSpec{Kind: RadioRandomWalk, WalkStep: 0.35, WalkEvery: 5}
		sc.Dophy.UpdateEvery = ue
		sc.Epochs = 8
		sc.EpochLen = 200
		scs[i] = sc
	}
	for i, res := range RunAll(scs) {
		annot := res.MeanBitsPerPacket(SchemeDophy) / 8
		total := res.TotalBitsPerPacket(SchemeDophy) / 8
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", periods[i]),
			f2(annot),
			f2(total - annot),
			f2(total),
			f(res.MeanAccuracy(SchemeDophy).MAE),
		})
		t.recordRuns(res)
	}
	return t
}

// F6 validates the simulator against analytic ARQ formulas.
func F6(seed uint64) *Table {
	t := &Table{
		ID:      "F6",
		Title:   "Simulator validation: measured vs analytic ARQ behaviour",
		Columns: []string{"loss", "deliv-meas", "deliv-analytic", "meanT-meas", "meanT-analytic"},
		Notes: []string{
			"single-hop chain, uniform loss; delivery = 1-loss^M, meanT = truncated-geometric mean",
		},
	}
	losses := []float64{0.1, 0.3, 0.5, 0.7}
	scs := make([]Scenario, len(losses))
	for i, loss := range losses {
		sc := DefaultScenario()
		sc.Name = fmt.Sprintf("f6-%.1f", loss)
		sc.Seed = seed + uint64(loss*10)
		sc.Topo = TopoSpec{Kind: TopoChain, N: 2, Spacing: 10, Range: 11}
		sc.Radio = RadioSpec{Kind: RadioUniformLoss, UniformLoss: loss}
		sc.Collect.GenPeriod = 0.5
		sc.Epochs = 1
		sc.EpochLen = 3000
		scs[i] = sc
	}
	for i, res := range RunAll(scs) {
		loss := losses[i]
		t.recordRuns(res)
		truth := res.Epochs[0].Truth
		measuredDeliv := truth.DeliveryRatio()
		m := scs[i].Mac.MaxRetx + 1
		analyticDeliv := 1 - pow(loss, m)
		// Analytic truncated-geometric mean attempts for delivered packets.
		p := 1 - loss
		var num, den float64
		for k := 1; k <= m; k++ {
			pk := pow(loss, k-1) * p
			num += float64(k) * pk
			den += pk
		}
		analyticMean := num / den
		// Measured mean from ground truth: on a single-hop chain every data
		// attempt belongs to the one link, dropped packets burned exactly m
		// attempts each, so delivered packets used the remainder.
		var sumT, nT float64
		for _, c := range truth.Counts {
			if c.DataAttempts > 0 && truth.Delivered > 0 {
				sumT = float64(c.DataAttempts) - float64(truth.Dropped)*float64(m)
				nT = float64(truth.Delivered)
			}
		}
		measuredMean := sumT / nT
		t.Rows = append(t.Rows, []string{
			f2(loss), f(measuredDeliv), f(analyticDeliv), f2(measuredMean), f2(analyticMean),
		})
	}
	return t
}

func pow(x float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= x
	}
	return out
}

// T4 measures implementation throughput: coder speed, simulation event
// rate, and end-to-end journey processing rate.
func T4(seed uint64) *Table {
	t := &Table{
		ID:      "T4",
		Title:   "Implementation throughput",
		Columns: []string{"metric", "value", "unit"},
	}
	// Simulation event rate: run a mid-size scenario and time it.
	sc := DefaultScenario()
	sc.Name = "t4"
	sc.Seed = seed
	sc.Topo = GridSpec(10)
	sc.Epochs = 2
	sc.EpochLen = 200
	start := nowNanos()
	res := Run(sc)
	elapsed := float64(nowNanos()-start) / 1e9
	t.recordRuns(res)
	var pkts int64
	for _, eo := range res.Epochs {
		pkts += eo.Truth.Delivered
	}
	simSeconds := float64(sc.Warmup) + float64(sc.EpochLen)*float64(sc.Epochs)
	t.Rows = append(t.Rows,
		[]string{"sim-speedup", f1(simSeconds / elapsed), "virtual-s per wall-s"},
		[]string{"packets-processed", fmt.Sprintf("%d", pkts), "per run"},
		[]string{"wall-time", f2(elapsed), "s"},
		[]string{"nodes", fmt.Sprintf("%d", res.Topology.N()), "-"},
	)
	t.Notes = append(t.Notes,
		"see `go test -bench=.` for per-operation microbenchmarks",
		"run dophy-bench with -parallel 1 for undistorted wall-clock numbers")
	return t
}

// nowNanos is a tiny wall-clock shim (the only wall-clock use in the repo).
//
//dophy:allow determflow effects -- timeNow is the stamping shim for report metadata, pinned by the nowalltime waiver at its declaration; it only ever holds time.Now (or a test stub), neither of which reads simulation state or writes package state
func nowNanos() int64 { return timeNow().UnixNano() }

// Runner is one experiment entry in the registry.
type Runner struct {
	ID    string
	Title string
	Run   func(seed uint64) *Table
}

// All returns the experiment registry in presentation order.
func All() []Runner {
	return []Runner{
		{"T1", "encoding overhead vs network size", T1},
		{"F1", "overhead vs path length", F1},
		{"F2", "accuracy vs traffic volume", F2},
		{"F3", "accuracy vs routing dynamics", F3},
		{"F4", "accuracy vs loss level", F4},
		{"F5", "error CDF", F5},
		{"T2", "aggregation threshold sweep", T2},
		{"T3", "model update period sweep", T3},
		{"F6", "simulator validation", F6},
		{"T4", "throughput", T4},
		{"T5", "hop-identity model ablation (extension)", T5},
		{"T6", "retry-budget visibility sweep (extension)", T6},
		{"F7", "node failures (extension)", F7},
		{"F8", "bursty losses (extension)", F8},
		{"F9", "congestion / queue drops (extension)", F9},
		{"T7", "annotation source under ACK loss (extension)", T7},
		{"T8", "estimator calibration (extension)", T8},
		{"T9", "beacon pacing: fixed vs Trickle (extension)", T9},
		{"T10", "distributed encoding path cost (extension)", T10},
		{"T11", "energy cost of annotations (extension)", T11},
		{"F10", "estimation window: reset vs forgetting (extension)", F10},
	}
}
