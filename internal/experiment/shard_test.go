package experiment

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"dophy/internal/topo"
)

// renderRun serialises everything a sharded run produced — per-link ground
// truth, every scheme's full estimate vectors and bit accounting, per-packet
// samples and run-level counters — so byte-comparing two renderings proves
// the runs were observably identical.
func renderRun(res *RunResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "events=%d beacons=%d packets=%v changes=%v\n",
		res.Events, res.BeaconsSent, res.MeanPacketsPerEpoch, res.ParentChangesPerNodePerEpoch)
	for _, eo := range res.Epochs {
		fmt.Fprintf(&b, "epoch %d: gen=%d del=%d drop=%d pchanges=%d qdrops=%d\n",
			eo.Epoch, eo.Truth.Generated, eo.Truth.Delivered, eo.Truth.Dropped,
			eo.Truth.ParentChanges, eo.QueueDrops)
		for i, c := range eo.Truth.Counts {
			if c.Attempts != 0 || c.Successes != 0 || c.DataAttempts != 0 {
				l := eo.Truth.Table.Link(topo.LinkIdx(i))
				fmt.Fprintf(&b, "  truth %d->%d a=%d s=%d d=%d\n", l.From, l.To, c.Attempts, c.Successes, c.DataAttempts)
			}
		}
		names := make([]string, 0, len(eo.Schemes))
		for name := range eo.Schemes {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			se := eo.Schemes[name]
			fmt.Fprintf(&b, "  scheme %s ann=%d hdr=%d extra=%d tx=%d pkts=%d hops=%d decerr=%d\n",
				name, se.AnnotationBits, se.HeaderBits, se.ExtraBits,
				se.TransmittedBits, se.Packets, se.Hops, se.DecodeErrors)
			for i := range se.Loss {
				var s int64
				if se.Samples != nil {
					s = se.Samples[i]
				}
				var e float64
				if se.StdErr != nil {
					e = se.StdErr[i]
				}
				fmt.Fprintf(&b, "   %d %v %d %v\n", i, se.Loss[i], s, e)
			}
		}
		for _, ps := range eo.PerPacket {
			fmt.Fprintf(&b, "  pkt hops=%d bits=%d\n", ps.Hops, ps.DophyBits)
		}
	}
	return b.String()
}

// shardTestScenario is a ~200-node grid with every shardable dynamic knob
// exercised (random-walk radio, forced parent churn, Trickle beaconing) so
// that any draw attributed to the wrong stream, any mis-ordered cross-shard
// message and any mis-merged counter shows up as a byte difference.
func shardTestScenario() Scenario {
	sc := DefaultScenario()
	sc.Name = "shard-determinism"
	sc.Seed = 977
	sc.Topo = GridSpec(14) // 196 nodes
	sc.Radio = RadioSpec{Kind: RadioRandomWalk, WalkEvery: 5, WalkStep: 0.08}
	sc.Routing.RandomizeParentProb = 0.05
	sc.Routing.AdaptiveBeacon = true
	sc.Routing.BeaconMin = 0.5
	sc.Routing.BeaconMax = 30
	sc.Routing.TrickleReset = 0.5
	sc.Warmup = 60
	sc.EpochLen = 120
	sc.Epochs = 2
	return sc
}

// TestShardedByteDeterminism is the tentpole's correctness gate: the full
// epoch reports of a sharded run must be byte-identical at 1, 2, 4 and 8
// shards. K=1 executes on a single engine with zero goroutines, so this
// pins every parallel execution to the sequential reference.
func TestShardedByteDeterminism(t *testing.T) {
	sc := shardTestScenario()
	var ref string
	for _, k := range []int{1, 2, 4, 8} {
		sp := DefaultShardSpec(k)
		sp.FullSchemes = true
		got := renderRun(RunSharded(sc, sp))
		if k == 1 {
			ref = got
			if len(ref) < 10000 {
				t.Fatalf("reference report suspiciously small (%d bytes) — workload too light to trust", len(ref))
			}
			continue
		}
		if got != ref {
			t.Errorf("shards=%d diverges from shards=1:\n%s", k, firstDiff(ref, got))
		}
	}
}

// TestShardedRejectsUnshardable locks in the validation: radio/mac modes
// whose state has no single owning shard must refuse to run sharded.
func TestShardedRejectsUnshardable(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("ack-over-reverse-link", func() {
		sc := DefaultScenario()
		sc.Mac.AckOverReverseLink = true
		NewShardedSession(sc, DefaultShardSpec(2))
	})
	expectPanic("node-failures", func() {
		sc := DefaultScenario()
		sc.Radio.FailMTBF = 500
		sc.Radio.FailMTTR = 50
		NewShardedSession(sc, DefaultShardSpec(2))
	})
	expectPanic("bounded-queues", func() {
		sc := DefaultScenario()
		sc.Collect.QueueCap = 4
		NewShardedSession(sc, DefaultShardSpec(2))
	})
	expectPanic("zero-beacon-latency", func() {
		NewShardedSession(DefaultScenario(), ShardSpec{Shards: 2})
	})
}

// TestScaleTierSmoke runs the S0 registry tier at two shards and checks the
// run actually converged and moved traffic — the same configuration CI's
// bench smoke exercises.
func TestScaleTierSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scale tier smoke is seconds of work")
	}
	prev := SetShards(2)
	defer SetShards(prev)
	tab := S0(7)
	vals := map[string]string{}
	for _, row := range tab.Rows {
		vals[row[0]] = row[1]
	}
	if vals["nodes"] != "2500" {
		t.Fatalf("nodes = %s, want 2500", vals["nodes"])
	}
	if vals["shards"] != "2" {
		t.Fatalf("shards = %s, want 2", vals["shards"])
	}
	var routed, delivered, windows int
	fmt.Sscanf(vals["routed-nodes"], "%d", &routed)
	fmt.Sscanf(vals["delivered"], "%d", &delivered)
	fmt.Sscanf(vals["windows"], "%d", &windows)
	if routed < 2300 {
		t.Errorf("routed-nodes = %d, want >= 2300 of 2499 (routing failed to converge)", routed)
	}
	if delivered < 1000 {
		t.Errorf("delivered = %d, want >= 1000", delivered)
	}
	if windows < 1000 {
		t.Errorf("windows = %d, want >= 1000 (lookahead windows did not engage)", windows)
	}
	if tab.SimEvents == 0 || tab.Runs != 1 {
		t.Errorf("metering not recorded: events=%d runs=%d", tab.SimEvents, tab.Runs)
	}
}

// firstDiff locates the first differing line of two renderings.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  ref: %s\n  got: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}
