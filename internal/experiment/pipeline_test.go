package experiment

import (
	"math"
	"reflect"
	"testing"
)

// normalize prepares a RunResult for reflect.DeepEqual: wall-clock fields
// are real elapsed time and differ run to run, and the NaN markers in
// scheme estimates (NaN != NaN) are replaced by a sentinel.
func normalize(r *RunResult) {
	r.EstSeconds = 0
	for _, eo := range r.Epochs {
		eo.EstSeconds = 0
		for _, se := range eo.Schemes {
			for _, v := range [][]float64{se.Loss, se.StdErr} {
				for i := range v {
					if math.IsNaN(v[i]) {
						v[i] = -424242
					}
				}
			}
		}
	}
}

// TestRunPipelinedMatchesRun pins the pipeline's contract: overlapping
// simulation with estimation changes wall time only. Every epoch outcome —
// truth, schemes, estimates, report bits — must be identical to the
// sequential loop's, in both from-scratch and incremental estimator modes
// (incremental matters because the warm-started estimators carry state
// across epochs, so outcome k depends on the whole cut order).
func TestRunPipelinedMatchesRun(t *testing.T) {
	for _, inc := range []bool{false, true} {
		name := "fromscratch"
		if inc {
			name = "incremental"
		}
		t.Run(name, func(t *testing.T) {
			prev := SetIncremental(inc)
			defer SetIncremental(prev)
			sc := smallScenario(17)
			sc.Epochs = 4
			seq := Run(sc)
			pip := RunPipelined(sc)
			normalize(seq)
			normalize(pip)
			if !reflect.DeepEqual(seq, pip) {
				t.Fatalf("pipelined run diverged from sequential run:\nseq: %+v\npip: %+v", seq, pip)
			}
		})
	}
}

// TestPipelinedToggleRoutesRun checks that the package toggle makes plain
// Run take the pipelined path, and that the toggle round-trips.
func TestPipelinedToggleRoutesRun(t *testing.T) {
	prev := SetPipelined(true)
	defer SetPipelined(prev)
	if !Pipelined() {
		t.Fatal("SetPipelined(true) did not stick")
	}
	sc := smallScenario(19)
	via := Run(sc)
	SetPipelined(false)
	seq := Run(sc)
	normalize(via)
	normalize(seq)
	if !reflect.DeepEqual(seq, via) {
		t.Fatal("Run under the pipelined toggle diverged from sequential Run")
	}
	SetPipelined(true)
}

func TestRunPipelinedZeroEpochs(t *testing.T) {
	sc := smallScenario(23)
	sc.Epochs = 0
	res := RunPipelined(sc)
	if len(res.Epochs) != 0 {
		t.Fatalf("zero-epoch run produced %d epochs", len(res.Epochs))
	}
}
