package experiment

import (
	"fmt"
	"math"

	"dophy/internal/collect"
	"dophy/internal/core"
	"dophy/internal/mac"
	"dophy/internal/rng"
	"dophy/internal/routing"
	"dophy/internal/sim"
	"dophy/internal/sim/shard"
	"dophy/internal/tomo/epochobs"
	"dophy/internal/tomo/pathrecord"
	"dophy/internal/topo"
	"dophy/internal/trace"
)

// ShardSpec parameterises a sharded run of a Scenario.
//
// A sharded run is not the same simulation as experiment.Run: beacons and
// data hops travel with explicit latency (the fabric) instead of being
// applied synchronously, so cross-shard messages always arrive at least one
// lookahead window in the future. What IS guaranteed is that the run is
// byte-identical at every shard count, including Shards == 1 — that case
// executes the very same event sequence on a single engine with zero
// goroutines and serves as the sequential reference.
type ShardSpec struct {
	// Shards is the number of spatial partitions (= worker cores).
	Shards int
	// BeaconLatency is the propagation delay of a beacon from transmitter
	// to receiver. Must be positive: together with the data-plane floor
	// HopDelay+TxTime it bounds the conservative lookahead window.
	BeaconLatency sim.Time
	// FullSchemes attaches the complete estimator set (dophy, dophy-noagg,
	// raw/compact/huffman path records, MINC, LSQ) exactly as
	// experiment.Run does. When false only dophy runs — the configuration
	// the large scale tiers use, where the sequential sink-side decode of
	// seven schemes would dwarf the parallel simulation itself.
	FullSchemes bool
}

// DefaultShardSpec returns a spec with the beacon latency matched to the
// default collect config's data-plane latency floor (HopDelay+TxTime), so
// both cross-shard latency bounds coincide and the lookahead window — and
// with it the barrier interval — is as large as the scenario permits.
func DefaultShardSpec(shards int) ShardSpec {
	c := DefaultScenario().Collect
	return ShardSpec{Shards: shards, BeaconLatency: c.HopDelay + c.TxTime}
}

// ShardStats reports how the partitioned run executed.
type ShardStats struct {
	Shards    int
	Lookahead sim.Time
	CutLinks  int    // directed links crossing a shard boundary
	Links     int    // total directed links
	Windows   uint64 // parallel windows executed
	Exchanged uint64 // cross-shard messages delivered at barriers
}

// shardFabric carries beacons and data packets between nodes for one
// source shard. It implements routing.Fabric and collect.Fabric. Each
// shard gets its own instance so the hop-carrier pool below is
// single-writer.
//
//dophy:owner shard
type shardFabric struct {
	s    *ShardedSession
	src  topo.ShardID
	free []*hopCarrier
}

// hopCarrier is a pooled continuation for same-shard packet arrivals — the
// sharded counterpart of collect's hopCont. Cross-shard arrivals allocate a
// closure instead: they are the cut fraction, and pooling across shards
// would make the free lists multi-writer. The pool hand-off in run is a
// //dophy:transfers point: once a carrier is back on the free list the
// sendown rule forbids touching it, which is what makes the pooled
// recycling provably safe inside the concurrency boundary.
//
//dophy:owner shard
type hopCarrier struct {
	f  *shardFabric
	to topo.NodeID
	j  *collect.PacketJourney
	fn sim.Handler
}

// run is the carrier's continuation: it reads its payload into locals,
// returns itself to the pool, and only then delivers — the canonical
// hand-off shape the sendown rule enforces (no field of c may be touched
// after the pool append).
//
//dophy:hotpath
//dophy:window
func (c *hopCarrier) run() {
	f, to, j := c.f, c.to, c.j
	c.j = nil
	//dophy:transfers -- c is back on the free list; the next carrier() owns it
	f.free = append(f.free, c)
	f.s.nws[f.src].Arrive(to, j)
}

//dophy:hotpath
func (f *shardFabric) carrier(to topo.NodeID, j *collect.PacketJourney) *hopCarrier {
	if n := len(f.free); n > 0 {
		c := f.free[n-1]
		f.free[n-1] = nil
		f.free = f.free[:n-1]
		c.to, c.j = to, j
		return c
	}
	//dophy:allow hotpathalloc -- carrier-pool miss path: allocates only until the pool warms up
	c := &hopCarrier{f: f, to: to}
	c.j = j
	c.fn = c.run
	return c
}

// DeliverData lands j on its next hop's owning shard at absolute time at.
// transmit guarantees at is at least HopDelay+TxTime in the future, which
// the session's lookahead never exceeds, so cross-shard sends always clear
// the current window.
//
//dophy:hotpath
//dophy:window
func (f *shardFabric) DeliverData(from, to topo.NodeID, at sim.Time, j *collect.PacketJourney) {
	s := f.s
	dst := s.owner[to]
	if dst == f.src {
		//dophy:transfers -- the pooled carrier now owns j until it lands
		s.eng.Sub(f.src).Schedule(at, f.carrier(to, j).fn)
		return
	}
	nw := s.nws[dst]
	//dophy:allow hotpathalloc -- cross-shard forward: the closure carries the journey over the barrier; cut traffic only
	s.eng.Send(f.src, at, from, dst, func() { nw.Arrive(to, j) }) //dophy:transfers -- j rides the outbox to shard dst; this shard may not touch it again
}

// DeliverBeacon applies a received beacon on the receiver's owning shard
// after the configured beacon latency.
//
//dophy:hotpath
//dophy:window
func (f *shardFabric) DeliverBeacon(from, to topo.NodeID, seq int64, advertisedETX float64) {
	s := f.s
	dst := s.owner[to]
	at := s.eng.Sub(f.src).Now() + s.sp.BeaconLatency
	p := s.protos[dst]
	//dophy:allow hotpathalloc -- beacon receipt: low-rate control plane; the closure carries the payload to the receiver's shard
	s.eng.Send(f.src, at, from, dst, func() { p.ReceiveBeacon(to, from, seq, advertisedETX) })
}

// ShardedSession is the partitioned counterpart of Session: one complete
// deployment split across sp.Shards engines, with every scheme fed the
// exact same journey sequence regardless of the shard count.
//
// Per-shard instances of the mac/routing/collect stack own disjoint node
// sets; all their RNG draws come from per-node streams (rng.Derive), so no
// draw order depends on how nodes interleave across shards. Journeys
// completed inside a window are parked in per-shard buffers and flushed at
// the window barrier in (Completed, Origin, Seq) order — a key shard
// numbering never enters — then fed sequentially to the estimators on the
// coordinator. Windows partition virtual time, so the concatenation of
// per-window flushes is itself globally sorted and identical at any K.
type ShardedSession struct {
	sc        Scenario        //dophy:owner immutable
	sp        ShardSpec       //dophy:owner immutable
	lookahead sim.Time        //dophy:owner immutable
	tp        *topo.Topology  //dophy:owner immutable
	lt        *topo.LinkTable //dophy:owner immutable
	eng       *shard.Engine   //dophy:owner immutable -- the coordinator handle; windowing happens inside it
	owner     []topo.ShardID  //dophy:owner immutable -- topo.Partition's node->shard map
	cutLinks  int             //dophy:owner immutable
	// Per-shard stacks: window code reaches them only through a typed
	// ShardID index, so shards provably never alias each other's state.
	recs   []*trace.Recorder          //dophy:owner shard
	protos []*routing.Protocol        //dophy:owner shard
	nws    []*collect.Network         //dophy:owner shard
	fabs   []*shardFabric             //dophy:owner shard
	bufs   [][]*collect.PacketJourney //dophy:owner shard -- journeys completed since the last flush, per shard
	fmerge []*collect.PacketJourney   //dophy:owner engine -- flush merge scratch

	// The estimator bank runs on the coordinator only, fed sequentially at
	// window barriers.
	dophyEng *core.Dophy          //dophy:owner engine
	dophyNA  *core.Dophy          //dophy:owner engine
	raw      *pathrecord.Recorder //dophy:owner engine
	compact  *pathrecord.Recorder //dophy:owner engine
	huff     *pathrecord.Recorder //dophy:owner engine
	obsCol   *epochobs.Collector  //dophy:owner engine
	bank     estBank              //dophy:owner engine

	perPacket      []PacketSample //dophy:owner engine
	epoch          int            //dophy:owner engine
	lastQueueDrops int64          //dophy:owner engine
}

// NewShardedSession partitions the scenario's topology, builds one
// mac/routing/collect stack per shard, attaches the schemes, runs the
// routing warmup and starts data generation — the sharded mirror of
// NewSession.
func NewShardedSession(sc Scenario, sp ShardSpec) *ShardedSession {
	if sp.Shards < 1 {
		panic(fmt.Sprintf("experiment: %d shards", sp.Shards))
	}
	if !(sp.BeaconLatency > 0) {
		panic(fmt.Sprintf("experiment: beacon latency %v must be positive", sp.BeaconLatency))
	}
	if sc.Mac.AckOverReverseLink {
		// The ACK draw queries the reverse link's radio state, which the
		// receiver's shard owns — it cannot run under the sender's window.
		panic("experiment: AckOverReverseLink is incompatible with sharded runs")
	}
	if sc.Radio.FailMTBF > 0 {
		// Node-failure processes mutate both endpoints' radio state on
		// every query; they have no single owning shard.
		panic("experiment: node failures (FailMTBF) are incompatible with sharded runs")
	}
	if sc.Collect.QueueCap > 0 {
		// Contention queues chain transmissions back to back, so a node's
		// release and an incoming arrival systematically land on the same
		// timestamp — and at a full queue their order decides a drop. That
		// order depends on the shard layout; only the zero-contention
		// abstraction (QueueCap 0) is shard-invariant.
		panic("experiment: bounded forwarding queues (QueueCap > 0) are incompatible with sharded runs")
	}
	dataFloor := sc.Collect.HopDelay + sc.Collect.TxTime
	if !(dataFloor > 0) {
		panic(fmt.Sprintf("experiment: HopDelay+TxTime %v must be positive for sharded runs", dataFloor))
	}
	lookahead := sp.BeaconLatency
	if dataFloor < lookahead {
		lookahead = dataFloor
	}

	root := rng.New(sc.Seed)
	tp := sc.Topo.Build(root.Split())
	model := sc.Radio.Build(tp, sc.Seed^0x9e3779b97f4a7c15)
	lt := tp.LinkTable()
	// One stream per node, derived before any per-shard construction so the
	// streams are identical at every shard count.
	streams := rng.NewStreams(root.Uint64(), tp.N())

	owner := tp.Partition(sp.Shards)
	_, cut := lt.CrossShard(owner)

	s := &ShardedSession{
		sc: sc, sp: sp, lookahead: lookahead,
		tp: tp, lt: lt, owner: owner, cutLinks: cut,
		eng:    shard.New(shard.Config{Shards: sp.Shards, Lookahead: lookahead, Nodes: tp.N()}),
		recs:   make([]*trace.Recorder, sp.Shards),
		protos: make([]*routing.Protocol, sp.Shards),
		nws:    make([]*collect.Network, sp.Shards),
		fabs:   make([]*shardFabric, sp.Shards),
		bufs:   make([][]*collect.PacketJourney, sp.Shards),
	}
	for k := 0; k < sp.Shards; k++ {
		owned := make([]bool, tp.N())
		for i := range owned {
			owned[i] = owner[i] == topo.ShardID(k)
		}
		fab := &shardFabric{s: s, src: topo.ShardID(k)}
		sub := s.eng.Sub(topo.ShardID(k))
		rec := trace.NewRecorder(lt)
		arq := mac.New(sc.Mac, model, root.Split(), rec)
		arq.UsePerNodeRNG(streams)
		proto := routing.NewSharded(sc.Routing, sub, tp, model, root.Split(), rec,
			routing.ShardHooks{Owned: owned, PerNode: streams, Fabric: fab})
		nw := collect.NewSharded(sc.Collect, sub, tp, arq, proto, root.Split(), rec,
			collect.ShardHooks{Owned: owned, PerNode: streams, Fabric: fab})
		shardIdx := topo.ShardID(k)
		nw.Subscribe(func(j *collect.PacketJourney) { s.bufferJourney(shardIdx, j) })
		s.recs[k], s.protos[k], s.nws[k], s.fabs[k] = rec, proto, nw, fab
	}

	dcfg := sc.Dophy
	dcfg.MaxAttempts = sc.Mac.MaxRetx + 1
	if dcfg.AggThreshold >= dcfg.MaxAttempts {
		dcfg.AggThreshold = 0
	}
	s.dophyEng = core.New(tp, dcfg)
	if sp.FullSchemes {
		naCfg := dcfg
		naCfg.AggThreshold = 0
		s.dophyNA = core.New(tp, naCfg)
		prCfg := func(v pathrecord.Variant) pathrecord.Config {
			c := pathrecord.DefaultConfig(v)
			c.MaxAttempts = dcfg.MaxAttempts
			c.MinSamples = dcfg.MinSamples
			return c
		}
		s.raw = pathrecord.New(tp, prCfg(pathrecord.Raw))
		s.compact = pathrecord.New(tp, prCfg(pathrecord.Compact))
		s.huff = pathrecord.New(tp, prCfg(pathrecord.Huffman))
		s.obsCol = epochobs.New(lt)
		s.bank = newEstBank(lt, dcfg.MaxAttempts)
	}
	// Feeding the estimators at every barrier (rather than at epoch ends)
	// bounds journey buffering to one window's worth of completions.
	s.eng.OnBarrier(s.flush)

	for _, p := range s.protos {
		p.Start()
	}
	s.eng.Run(sc.Warmup)
	s.flush()               // warmup produces no journeys, but keep the accounting exact
	trace.CutMerged(s.recs) // discard warmup ground truth
	for _, nw := range s.nws {
		nw.Start()
	}
	return s
}

// bufferJourney parks a journey completed by shard k until the next flush.
// It runs as collect's completion subscriber inside k's window, which the
// annotation declares — subscriber dispatch is a function value the call
// graph cannot see through.
//
//dophy:window
func (s *ShardedSession) bufferJourney(k topo.ShardID, j *collect.PacketJourney) {
	//dophy:transfers -- j is parked for the coordinator; the shard is done with it
	s.bufs[k] = append(s.bufs[k], j)
}

// flush drains every shard's completed-journey buffer in (Completed,
// Origin, Seq) order — a pure function of simulation behaviour, so the
// global feed sequence is identical at every shard count — and feeds the
// estimators. Runs on the coordinator: at window barriers for K > 1, after
// Run returns for K == 1.
//
//dophy:barrier
func (s *ShardedSession) flush() {
	m := s.fmerge[:0]
	for k := range s.bufs {
		b := s.bufs[k]
		m = append(m, b...)
		for i := range b {
			b[i] = nil
		}
		s.bufs[k] = b[:0]
	}
	if len(m) > 1 {
		sortJourneys(m)
	}
	for i, j := range m {
		s.feed(j)
		m[i] = nil
	}
	s.fmerge = m[:0]
}

func sortJourneys(m []*collect.PacketJourney) {
	// Insertion sort: windows are short, so m is tiny and almost sorted
	// (per-shard buffers are already completion-ordered).
	for i := 1; i < len(m); i++ {
		j := m[i]
		k := i - 1
		for k >= 0 && journeyAfter(m[k], j) {
			m[k+1] = m[k]
			k--
		}
		m[k+1] = j
	}
}

func journeyAfter(a, b *collect.PacketJourney) bool {
	if a.Completed != b.Completed {
		return a.Completed > b.Completed
	}
	if a.Origin != b.Origin {
		return a.Origin > b.Origin
	}
	return a.Seq > b.Seq
}

// feed applies one journey to every attached scheme — the sharded
// counterpart of NewSession's subscriber.
func (s *ShardedSession) feed(j *collect.PacketJourney) {
	bits := s.dophyEng.OnJourney(j)
	if s.sp.FullSchemes {
		s.dophyNA.OnJourney(j)
		s.raw.OnJourney(j)
		s.compact.OnJourney(j)
		s.huff.OnJourney(j)
		s.obsCol.OnJourney(j)
	}
	if j.Delivered {
		s.perPacket = append(s.perPacket, PacketSample{Hops: len(j.Hops), DophyBits: bits})
	}
}

// Topology returns the built topology.
func (s *ShardedSession) Topology() *topo.Topology { return s.tp }

// BeaconsSent sums the control-plane cost over all shards. Like every
// cross-shard reader below, it must only run with the workers parked.
//
//dophy:barrier
func (s *ShardedSession) BeaconsSent() int64 {
	var total int64
	for _, p := range s.protos {
		total += p.BeaconsSent
	}
	return total
}

// Events sums the simulator events executed by all shards.
func (s *ShardedSession) Events() uint64 { return s.eng.Processed() }

// Routed counts nodes (excluding the sink) that currently have a parent.
//
//dophy:barrier
func (s *ShardedSession) Routed() int {
	n := 0
	for _, p := range s.protos {
		n += p.Routed()
	}
	return n
}

// Stats reports the partitioning and window accounting so far.
func (s *ShardedSession) Stats() ShardStats {
	return ShardStats{
		Shards:    s.sp.Shards,
		Lookahead: s.lookahead,
		CutLinks:  s.cutLinks,
		Links:     s.lt.Len(),
		Windows:   s.eng.Windows(),
		Exchanged: s.eng.Exchanged(),
	}
}

// queueDrops sums congestion losses over all shards.
//
//dophy:barrier
func (s *ShardedSession) queueDrops() int64 {
	var total int64
	for _, nw := range s.nws {
		total += nw.QueueDrops
	}
	return total
}

// RunEpoch advances the simulation one epoch and harvests every attached
// scheme, mirroring Session.RunEpoch. It drains per-shard recorders, so it
// runs strictly between Run windows.
//
//dophy:barrier
func (s *ShardedSession) RunEpoch() *EpochOutcome {
	s.epoch++
	s.eng.Run(s.sc.Warmup + sim.Time(s.epoch)*s.sc.EpochLen)
	s.flush() // single-shard runs have no barriers; drain the epoch's tail
	truth := trace.CutMerged(s.recs)
	eo := &EpochOutcome{Epoch: s.epoch, Truth: truth, Schemes: map[string]*SchemeEpoch{}}
	eo.DirtyLinks = truth.DirtyCount()
	eo.Schemes[SchemeDophy] = fromDophy(SchemeDophy, s.dophyEng.EndEpoch())
	if s.sp.FullSchemes {
		eo.Schemes[SchemeDophyNA] = fromDophy(SchemeDophyNA, s.dophyNA.EndEpoch())
		eo.Schemes[SchemeRaw] = fromPathRecord(SchemeRaw, s.raw.EndEpoch())
		eo.Schemes[SchemeCompact] = fromPathRecord(SchemeCompact, s.compact.EndEpoch())
		eo.Schemes[SchemeHuffman] = fromPathRecord(SchemeHuffman, s.huff.EndEpoch())
		s.bank.estimate(&epochCut{out: eo, obs: s.obsCol.EndEpoch()})
	}
	eo.PerPacket = s.perPacket
	s.perPacket = nil
	drops := s.queueDrops()
	eo.QueueDrops = drops - s.lastQueueDrops
	s.lastQueueDrops = drops
	return eo
}

// Close stops the shard workers. The session must not be run afterwards.
func (s *ShardedSession) Close() { s.eng.Close() }

// RunSharded executes the scenario under the sharded engine — the
// partitioned mirror of Run. The result is byte-identical for every value
// of sp.Shards (see ShardSpec); it is NOT comparable to Run's, which
// applies beacons and hand-offs with zero latency.
func RunSharded(sc Scenario, sp ShardSpec) *RunResult {
	s := NewShardedSession(sc, sp)
	defer s.Close()
	res := &RunResult{Scenario: sc, Topology: s.tp}
	var totalPackets, totalChanges int64
	for e := 0; e < sc.Epochs; e++ {
		eo := s.RunEpoch()
		res.Epochs = append(res.Epochs, eo)
		totalPackets += eo.Truth.Delivered
		totalChanges += eo.Truth.ParentChanges
		res.EstSeconds += eo.EstSeconds
	}
	if sc.Epochs > 0 {
		res.MeanPacketsPerEpoch = float64(totalPackets) / float64(sc.Epochs)
		res.ParentChangesPerNodePerEpoch =
			float64(totalChanges) / float64(sc.Epochs) / math.Max(1, float64(s.tp.N()-1))
	}
	res.BeaconsSent = s.BeaconsSent()
	res.Events = s.Events()
	return res
}
