package experiment

import (
	"fmt"
	"math"

	"dophy/internal/collect"
	"dophy/internal/core"
	"dophy/internal/energy"
	"dophy/internal/stats"
	"dophy/internal/tomo/pathrecord"
	"dophy/internal/topo"
)

// The experiments in this file go beyond the paper's abstract: they probe
// extensions and robustness axes a production deployment of Dophy would
// care about. DESIGN.md lists them in the experiment index as T5/T6/F7/F8.

// T5 ablates the conditional hop-identity model extension: disseminating
// per-node next-hop distributions lets the coder beat log2(degree) on the
// path symbols, at extra dissemination cost.
func T5(seed uint64) *Table {
	t := &Table{
		ID:      "T5",
		Title:   "Hop-identity model updates: annotation vs dissemination (extension)",
		Columns: []string{"hop-update-every", "annot-bytes/pkt", "dissem-bytes/pkt", "total-bytes/pkt", "MAE"},
		Notes: []string{
			"0 = uniform neighbour-index models (the paper's baseline behaviour)",
			"a node forwarding most traffic to one parent pays < log2(degree) bits per hop id",
		},
	}
	periods := []int{0, 1, 2, 4}
	scs := make([]Scenario, len(periods))
	for i, ue := range periods {
		sc := DefaultScenario()
		sc.Name = fmt.Sprintf("t5-%d", ue)
		sc.Seed = seed
		sc.Dophy.HopModelUpdateEvery = ue
		sc.Dophy.HopModelTotal = 256
		sc.Epochs = 6
		sc.EpochLen = 250
		scs[i] = sc
	}
	for i, res := range RunAll(scs) {
		annot := res.MeanBitsPerPacket(SchemeDophy) / 8
		total := res.TotalBitsPerPacket(SchemeDophy) / 8
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", periods[i]),
			f2(annot),
			f2(total - annot),
			f2(total),
			f(res.MeanAccuracy(SchemeDophy).MAE),
		})
		t.recordRuns(res)
	}
	return t
}

// T6 sweeps the MAC retry budget: as ARQ gets stronger, end-to-end delivery
// stops carrying loss information and the traditional baselines go blind,
// while Dophy's per-attempt observations get richer.
func T6(seed uint64) *Table {
	t := &Table{
		ID:      "T6",
		Title:   "Retry budget vs estimator visibility (why 'fine-grained' matters)",
		Columns: []string{"max-retx", "delivery", "dophy-MAE", "minc-MAE", "lsq-MAE"},
		Notes: []string{
			"stronger ARQ pushes delivery toward 1, starving delivery-ratio tomography",
			"of signal; retransmission counts keep their full information content",
		},
	}
	budgets := []int{0, 1, 3, 7}
	scs := make([]Scenario, len(budgets))
	for i, retx := range budgets {
		sc := DefaultScenario()
		sc.Name = fmt.Sprintf("t6-%d", retx)
		sc.Seed = seed
		sc.Mac.MaxRetx = retx
		sc.EpochLen = 400
		sc.Epochs = 3
		scs[i] = sc
	}
	for i, res := range RunAll(scs) {
		var delivery float64
		for _, eo := range res.Epochs {
			delivery += eo.Truth.DeliveryRatio() / float64(len(res.Epochs))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", budgets[i]),
			f(delivery),
			f(res.MeanAccuracy(SchemeDophy).MAE),
			f(res.MeanAccuracy(SchemeMINC).MAE),
			f(res.MeanAccuracy(SchemeLSQ).MAE),
		})
		t.recordRuns(res)
	}
	return t
}

// F7 overlays node crash/recover dynamics: the strongest routing dynamics,
// where whole subtrees must re-home around dead forwarders.
func F7(seed uint64) *Table {
	t := &Table{
		ID:      "F7",
		Title:   "Accuracy and delivery under node failures (extension)",
		Columns: []string{"mtbf(s)", "delivery", "parent-chg/node/ep", "dophy-MAE", "minc-MAE", "lsq-MAE"},
		Notes: []string{
			"nodes crash (radio silent) and recover; MTTR fixed at 60s; sink never fails",
			"routing discovers failures via lost beacons/ACKs and re-routes",
		},
	}
	mtbfs := []float64{0, 2400, 1200, 600, 300}
	scs := make([]Scenario, len(mtbfs))
	for i, mtbf := range mtbfs {
		sc := DefaultScenario()
		sc.Name = fmt.Sprintf("f7-%.0f", mtbf)
		sc.Seed = seed
		if mtbf > 0 {
			sc.Radio.FailMTBF = timeT(mtbf)
			sc.Radio.FailMTTR = 60
		}
		sc.EpochLen = 400
		sc.Epochs = 3
		scs[i] = sc
	}
	for i, res := range RunAll(scs) {
		mtbf := mtbfs[i]
		t.recordRuns(res)
		var delivery, churn float64
		for _, eo := range res.Epochs {
			delivery += eo.Truth.DeliveryRatio() / float64(len(res.Epochs))
			churn += float64(eo.Truth.ParentChanges) / float64(len(res.Epochs))
		}
		churn /= float64(res.Topology.N() - 1)
		label := "none"
		if mtbf > 0 {
			label = fmt.Sprintf("%.0f", mtbf)
		}
		t.Rows = append(t.Rows, []string{
			label,
			f(delivery),
			f2(churn),
			f(res.MeanAccuracy(SchemeDophy).MAE),
			f(res.MeanAccuracy(SchemeMINC).MAE),
			f(res.MeanAccuracy(SchemeLSQ).MAE),
		})
	}
	return t
}

// F8 measures accuracy under bursty (Gilbert-Elliott) losses, where the
// per-attempt loss a link exhibits is itself time-varying within an epoch.
func F8(seed uint64) *Table {
	t := &Table{
		ID:      "F8",
		Title:   "Accuracy under bursty (Gilbert-Elliott) losses (extension)",
		Columns: []string{"mean-bad-dwell(s)", "dophy-MAE", "dophy-p90-err", "minc-MAE", "lsq-MAE"},
		Notes: []string{
			"burst dwells shorten left to right at ~17% bad-state occupancy",
			"truth is the epoch's empirical per-attempt loss per link",
		},
	}
	dwells := []float64{120, 60, 30, 10}
	scs := make([]Scenario, len(dwells))
	for i, bad := range dwells {
		sc := DefaultScenario()
		sc.Name = fmt.Sprintf("f8-%.0f", bad)
		sc.Seed = seed
		sc.Radio = RadioSpec{
			Kind:      RadioGilbertElliott,
			MeanGood:  timeT(bad * 5),
			MeanBad:   timeT(bad),
			BadFactor: 0.25,
		}
		sc.EpochLen = 400
		sc.Epochs = 3
		scs[i] = sc
	}
	for i, res := range RunAll(scs) {
		bad := dwells[i]
		t.recordRuns(res)
		// p90 of Dophy's absolute per-link error across epochs.
		var errs []float64
		for _, eo := range res.Epochs {
			acc := Score(eo.Schemes[SchemeDophy], eo.Truth, scs[i].MinTruthAttempts)
			errs = append(errs, acc.Errors...)
		}
		p90 := 0.0
		if len(errs) > 0 {
			p90 = stats.Summarize(errs).P90
		}
		t.Rows = append(t.Rows, []string{
			f1(bad),
			f(res.MeanAccuracy(SchemeDophy).MAE),
			f(p90),
			f(res.MeanAccuracy(SchemeMINC).MAE),
			f(res.MeanAccuracy(SchemeLSQ).MAE),
		})
	}
	return t
}

// timeT converts to sim.Time without shadowing package names at call sites.
func timeT(v float64) (out simTimeAlias) { return simTimeAlias(v) }

// F9 overloads the network so relays drop packets from full queues:
// congestion loss that has nothing to do with link quality. Delivery-ratio
// tomography cannot tell the two apart; Dophy's per-attempt observations
// are untouched by queue drops.
func F9(seed uint64) *Table {
	t := &Table{
		ID:      "F9",
		Title:   "Accuracy under congestion (queue drops) (extension)",
		Columns: []string{"gen-period(s)", "delivery", "queue-drop%", "dophy-MAE", "minc-MAE", "lsq-MAE"},
		Notes: []string{
			"QueueCap=4, TxTime=50ms: shrinking the generation period overloads relays",
			"queue drops corrupt delivery ratios but not retransmission counts",
		},
	}
	periods := []float64{5, 2, 1, 0.5}
	scs := make([]Scenario, len(periods))
	for i, gp := range periods {
		sc := DefaultScenario()
		sc.Name = fmt.Sprintf("f9-%.1f", gp)
		sc.Seed = seed
		sc.Collect.GenPeriod = timeT(gp)
		sc.Collect.TxTime = 0.05
		sc.Collect.QueueCap = 4
		sc.EpochLen = 300
		sc.Epochs = 3
		scs[i] = sc
	}
	for i, res := range RunAll(scs) {
		gp := periods[i]
		t.recordRuns(res)
		var delivery, qdrops, generated float64
		for _, eo := range res.Epochs {
			delivery += eo.Truth.DeliveryRatio() / float64(len(res.Epochs))
			qdrops += float64(eo.QueueDrops)
			generated += float64(eo.Truth.Generated)
		}
		qPct := 0.0
		if generated > 0 {
			qPct = 100 * qdrops / generated
		}
		t.Rows = append(t.Rows, []string{
			f2(gp),
			f(delivery),
			f2(qPct),
			f(res.MeanAccuracy(SchemeDophy).MAE),
			f(res.MeanAccuracy(SchemeMINC).MAE),
			f(res.MeanAccuracy(SchemeLSQ).MAE),
		})
	}
	return t
}

// T7 ablates the annotation source under ACK loss: receiver-observed
// first-delivery attempts (what Dophy records) versus sender-side total
// transmission counts (what a naive implementation would log).
func T7(seed uint64) *Table {
	t := &Table{
		ID:      "T7",
		Title:   "Annotation source under ACK loss: receiver vs sender counts (extension)",
		Columns: []string{"ack-loss", "receiver-MAE", "sender-MAE"},
		Notes: []string{
			"lost ACKs trigger duplicate retransmissions the sender counts but the",
			"receiver's first-delivery observation ignores; sender counts inflate loss",
		},
	}
	acks := []float64{0, 0.1, 0.2, 0.4}
	type point struct {
		row    []string
		events uint64
		estS   float64
	}
	for _, p := range Sweep(len(acks), func(i int) point {
		al := acks[i]
		sc := DefaultScenario()
		sc.Name = fmt.Sprintf("t7-%.1f", al)
		sc.Seed = seed
		sc.Mac.AckLoss = al
		sc.Epochs = 3
		sess := NewSession(sc)
		mkCfg := func(sender bool) pathrecord.Config {
			c := pathrecord.DefaultConfig(pathrecord.Compact)
			c.MaxAttempts = sc.Mac.MaxRetx + 1
			c.MinSamples = sc.Dophy.MinSamples
			c.SenderCounts = sender
			return c
		}
		recv := pathrecord.New(sess.Topology(), mkCfg(false))
		send := pathrecord.New(sess.Topology(), mkCfg(true))
		sess.SubscribeJourneys(func(j *collect.PacketJourney) {
			recv.OnJourney(j)
			send.OnJourney(j)
		})
		var recvMAE, sendMAE []float64
		var estS float64
		for e := 0; e < sc.Epochs; e++ {
			eo := sess.RunEpoch()
			estS += eo.EstSeconds
			rRep := recv.EndEpoch()
			sRep := send.EndEpoch()
			rAcc := Score(&SchemeEpoch{Name: "recv", Table: rRep.Table, Loss: rRep.Loss}, eo.Truth, sc.MinTruthAttempts)
			sAcc := Score(&SchemeEpoch{Name: "send", Table: sRep.Table, Loss: sRep.Loss}, eo.Truth, sc.MinTruthAttempts)
			if !math.IsNaN(rAcc.MAE) {
				recvMAE = append(recvMAE, rAcc.MAE)
			}
			if !math.IsNaN(sAcc.MAE) {
				sendMAE = append(sendMAE, sAcc.MAE)
			}
		}
		return point{
			row: []string{
				f2(al),
				f(stats.Mean(recvMAE)),
				f(stats.Mean(sendMAE)),
			},
			events: sess.Events(),
			estS:   estS,
		}
	}) {
		t.Rows = append(t.Rows, p.row)
		t.recordSession(p.events, p.estS)
	}
	return t
}

// T8 checks estimator calibration: how often the truth falls inside the
// MLE's 95% observed-information interval, by sample-size bucket.
func T8(seed uint64) *Table {
	t := &Table{
		ID:      "T8",
		Title:   "Estimator calibration: 95% interval coverage (extension)",
		Columns: []string{"samples-bucket", "links", "covered", "coverage"},
		Notes: []string{
			"interval: estimate +/- 1.96 x observed-information stderr",
			"truth itself is an empirical ratio, so coverage above ~90% is healthy",
		},
	}
	sc := DefaultScenario()
	sc.Name = "t8"
	sc.Seed = seed
	sc.Epochs = 6
	sc.EpochLen = 300
	res := Run(sc)
	t.recordRuns(res)
	type bucket struct{ links, covered int }
	buckets := map[string]*bucket{}
	bucketOf := func(n int64) string {
		switch {
		case n < 30:
			return "10-29"
		case n < 100:
			return "30-99"
		case n < 300:
			return "100-299"
		}
		return "300+"
	}
	for _, eo := range res.Epochs {
		se := eo.Schemes[SchemeDophy]
		for i := topo.LinkIdx(0); i < se.Table.Count(); i++ {
			est := se.Loss[i]
			if math.IsNaN(est) {
				continue
			}
			truth, ok := eo.Truth.Link(se.Table.Link(i)).Loss(sc.MinTruthAttempts)
			if !ok {
				continue
			}
			stderr := se.StdErr[i]
			if stderr <= 0 {
				continue
			}
			bk := buckets[bucketOf(se.Samples[i])]
			if bk == nil {
				bk = &bucket{}
				buckets[bucketOf(se.Samples[i])] = bk
			}
			bk.links++
			if est-1.96*stderr <= truth && truth <= est+1.96*stderr {
				bk.covered++
			}
		}
	}
	for _, name := range []string{"10-29", "30-99", "100-299", "300+"} {
		bk := buckets[name]
		if bk == nil || bk.links == 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", bk.links),
			fmt.Sprintf("%d", bk.covered),
			f2(float64(bk.covered) / float64(bk.links)),
		})
	}
	return t
}

// T9 compares fixed-period and Trickle-paced beaconing: control overhead
// versus estimation accuracy and routing responsiveness.
func T9(seed uint64) *Table {
	t := &Table{
		ID:      "T9",
		Title:   "Beacon pacing: fixed vs Trickle (extension)",
		Columns: []string{"pacing", "radio-env", "beacons/node/ep", "delivery", "dophy-MAE"},
		Notes: []string{
			"Trickle: interval doubles from 4s to 80s while stable; resets on route",
			"change or data-path failure (pull). Well-damped routing config so",
			"pacing, not estimator noise, drives the comparison.",
		},
	}
	type combo struct {
		env      string
		adaptive bool
	}
	combos := []combo{
		{"static", false}, {"static", true},
		{"drift", false}, {"drift", true},
	}
	scs := make([]Scenario, len(combos))
	for i, c := range combos {
		sc := DefaultScenario()
		sc.Name = fmt.Sprintf("t9-%s-%v", c.env, c.adaptive)
		sc.Seed = seed
		sc.Routing.Hysteresis = 3
		sc.Routing.AlphaData = 0.05
		sc.Routing.AlphaBeacon = 0.1
		if c.env == "drift" {
			sc.Radio = RadioSpec{Kind: RadioRandomWalk, WalkStep: 0.2, WalkEvery: 10}
		}
		if c.adaptive {
			sc.Routing.AdaptiveBeacon = true
			sc.Routing.BeaconMin = 4
			sc.Routing.BeaconMax = 80
			sc.Routing.TrickleReset = 1
		}
		sc.Epochs = 3
		sc.EpochLen = 400
		scs[i] = sc
	}
	for i, res := range RunAll(scs) {
		t.recordRuns(res)
		label := "fixed-10s"
		if combos[i].adaptive {
			label = "trickle"
		}
		var delivery float64
		for _, eo := range res.Epochs {
			delivery += eo.Truth.DeliveryRatio() / float64(len(res.Epochs))
		}
		perNode := float64(res.BeaconsSent) / float64(res.Topology.N()) / float64(scs[i].Epochs)
		t.Rows = append(t.Rows, []string{
			label,
			combos[i].env,
			f1(perNode),
			f(delivery),
			f(res.MeanAccuracy(SchemeDophy).MAE),
		})
	}
	return t
}

// T10 runs Dophy's true distributed encoding path (packets carry suspended
// coder state hop by hop) alongside the sink-side convenience path and
// reports the extra radiated cost of carrying the coder registers.
func T10(seed uint64) *Table {
	t := &Table{
		ID:      "T10",
		Title:   "Distributed encoding path: in-flight coder-state cost (extension)",
		Columns: []string{"grid", "annot-bytes/pkt", "state-bytes/tx", "radiated-annot-KB/ep", "radiated-state-KB/ep", "estimates-identical"},
		Notes: []string{
			"each in-flight packet carries 12 bytes of suspended coder registers from hop 2 onward",
			"the distributed bitstream is bit-identical to the sink-side path (verified per run)",
		},
	}
	sides := []int{5, 7, 10}
	type point struct {
		row    []string
		events uint64
		estS   float64
	}
	for _, p := range Sweep(len(sides), func(i int) point {
		side := sides[i]
		sc := DefaultScenario()
		sc.Name = fmt.Sprintf("t10-%d", side)
		sc.Seed = seed
		sc.Topo = GridSpec(side)
		sc.Epochs = 2
		sc.EpochLen = 250
		// Zero-latency forwarding keeps both paths on identical packet sets.
		sc.Collect.TxTime = 0
		sc.Collect.HopDelay = 0
		sess := NewSession(sc)
		dcfg := sc.Dophy
		dcfg.MaxAttempts = sc.Mac.MaxRetx + 1
		dist := core.New(sess.Topology(), dcfg)
		sess.AttachAnnotator(dist.NewAnnotator())
		identical := true
		var annotBits, stateBits, packets int64
		var estS float64
		for e := 0; e < sc.Epochs; e++ {
			eo := sess.RunEpoch()
			estS += eo.EstSeconds
			dRep := dist.EndEpoch()
			cSe := eo.Schemes[SchemeDophy]
			if dRep.Overhead.AnnotationBits != cSe.AnnotationBits ||
				dRep.DecodeErrors != 0 || dRep.NumEstimated() != cSe.NumEstimated() {
				identical = false
			}
			annotBits += dRep.Overhead.AnnotationBits
			stateBits += dRep.Overhead.InFlightStateBits
			packets += dRep.Overhead.Packets
		}
		bytesPerPkt := 0.0
		if packets > 0 {
			bytesPerPkt = float64(annotBits) / 8 / float64(packets)
		}
		return point{
			row: []string{
				fmt.Sprintf("%dx%d", side, side),
				f2(bytesPerPkt),
				fmt.Sprintf("%d", 12),
				f1(float64(annotBits) / 8 / 1024 / float64(sc.Epochs)),
				f1(float64(stateBits) / 8 / 1024 / float64(sc.Epochs)),
				fmt.Sprintf("%v", identical),
			},
			events: sess.Events(),
			estS:   estS,
		}
	}) {
		t.Rows = append(t.Rows, p.row)
		t.recordSession(p.events, p.estS)
	}
	return t
}

// T11 prices each recording scheme's annotation in radio energy — the unit
// battery deployments budget in — using CC2420-class constants.
func T11(seed uint64) *Table {
	t := &Table{
		ID:      "T11",
		Title:   "Energy cost of in-packet annotations (extension)",
		Columns: []string{"scheme", "radiated-bytes/pkt", "uJ/pkt", "mJ/node/day"},
		Notes: []string{
			"marginal TX+RX energy of the annotation bytes riding on data frames",
			"per-day figure assumes each node sources one packet per 5s, CC2420 at 0dBm",
		},
	}
	sc := DefaultScenario()
	sc.Name = "t11"
	sc.Seed = seed
	sc.Epochs = 3
	res := Run(sc)
	t.recordRuns(res)
	p := energy.DefaultParams()
	for _, scheme := range overheadSchemes {
		var txBits, extraBits, packets int64
		for _, eo := range res.Epochs {
			se := eo.Schemes[scheme]
			txBits += se.TransmittedBits
			extraBits += se.ExtraBits
			packets += se.Packets
		}
		rep := energy.Cost(p, txBits, extraBits, packets)
		// Packets per node per day at the scenario's generation period.
		pktsPerDay := 86400 / float64(sc.Collect.GenPeriod)
		mJPerDay := rep.TotalMicroJPerPacket * pktsPerDay / 1000
		t.Rows = append(t.Rows, []string{
			scheme,
			f2(float64(txBits) / 8 / float64(packets)),
			f2(rep.TotalMicroJPerPacket),
			f2(mJPerDay),
		})
	}
	return t
}

// F10 compares the per-epoch windowed estimator with exponentially-
// forgotten streaming estimators under drifting links and sparse traffic:
// short epochs starve the window while decay accumulates evidence — at the
// price of lag when the link actually moves.
func F10(seed uint64) *Table {
	t := &Table{
		ID:      "F10",
		Title:   "Estimation window: per-epoch reset vs exponential forgetting (extension)",
		Columns: []string{"obs-decay", "MAE", "coverage", "links/epoch"},
		Notes: []string{
			"60s epochs, drifting links, 1 packet/10s per node",
			"measured trade-off: forgetting widens coverage (stale links stay reportable)",
			"but lags the drift, so tracking error grows with the decay factor",
		},
	}
	decays := []float64{0, 0.3, 0.6, 0.9}
	scs := make([]Scenario, len(decays))
	for i, decay := range decays {
		sc := DefaultScenario()
		sc.Name = fmt.Sprintf("f10-%.1f", decay)
		sc.Seed = seed
		sc.Radio = RadioSpec{Kind: RadioRandomWalk, WalkStep: 0.15, WalkEvery: 10}
		sc.Collect.GenPeriod = 10
		sc.EpochLen = 60
		sc.Epochs = 10
		sc.Dophy.ObsDecay = decay
		scs[i] = sc
	}
	for i, res := range RunAll(scs) {
		t.recordRuns(res)
		acc := res.MeanAccuracy(SchemeDophy)
		t.Rows = append(t.Rows, []string{
			f2(decays[i]),
			f(acc.MAE),
			f2(acc.Coverage),
			f1(float64(acc.Links) / float64(scs[i].Epochs)),
		})
	}
	return t
}
