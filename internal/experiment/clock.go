package experiment

import (
	"time"

	"dophy/internal/sim"
)

// timeNow is indirected for tests. This is the module's single sanctioned
// wall-clock read inside the simulation tree: experiment T4 reports
// sim-seconds-per-wall-second, so the wall clock is the quantity being
// measured, not an input to any simulated outcome.
//
//dophy:allow nowalltime -- T4 measures wall-clock throughput; never feeds sim state
var timeNow = time.Now

// simTimeAlias lets extension experiments write durations without importing
// the sim package name into expression-heavy code.
type simTimeAlias = sim.Time

// Duration is the exported name for simulated seconds, for callers outside
// the internal tree's sim package (examples, tools).
type Duration = sim.Time
