package experiment

import (
	"time"

	"dophy/internal/sim"
)

// timeNow is indirected for tests.
var timeNow = time.Now

// simTimeAlias lets extension experiments write durations without importing
// the sim package name into expression-heavy code.
type simTimeAlias = sim.Time

// Duration is the exported name for simulated seconds, for callers outside
// the internal tree's sim package (examples, tools).
type Duration = sim.Time
