// This file is the parallel sweep engine. Every table/figure runner is a
// sweep over independent scenario points, and each point is one strictly
// single-threaded sim.Engine run (races impossible by construction), so
// parallelism lands purely at the scenario level: points fan out across a
// bounded worker pool and results land in input order, which keeps every
// table byte-identical to a sequential execution for the same seed.
//
//dophy:concurrency-boundary -- scenario-level fan-out over independent runs; results land in input order and workers share only atomics
package experiment

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// sweepWorkers caps scenario-level parallelism; 0 means runtime.NumCPU().
var sweepWorkers atomic.Int32

// SetWorkers sets the sweep pool size (clamped to >= 1; n < 1 restores the
// runtime.NumCPU() default) and returns the previous effective value. The
// pool is package-global: concurrent sweeps share the same budget, so
// cmd/dophy-bench running experiments in parallel does not multiply
// goroutines beyond experiments x workers.
func SetWorkers(n int) int {
	prev := Workers()
	if n < 1 {
		n = 0
	}
	sweepWorkers.Store(int32(n))
	return prev
}

// Workers returns the current sweep pool size.
func Workers() int {
	if n := int(sweepWorkers.Load()); n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// Sweep evaluates fn(0..n-1) on up to Workers() goroutines and returns the
// results in index order. fn must be safe to call concurrently with itself
// — which every scenario-point function is, because each point builds its
// own topology, RNG stream and simulation engine from its scenario alone.
func Sweep[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// RunAll executes the scenarios through the sweep pool and returns their
// results in input order.
func RunAll(scs []Scenario) []*RunResult {
	return Sweep(len(scs), func(i int) *RunResult { return Run(scs[i]) })
}

// Seeds derives n deterministic, well-separated replicate seeds from base.
func Seeds(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		// SplitMix64-style increment keeps replicate streams far apart even
		// for adjacent bases.
		out[i] = base + uint64(i)*0x9e3779b97f4a7c15
	}
	return out
}

// Replicates is a multi-seed repetition of one scenario: the same deployment
// question asked across independent random realisations, with mean/CI
// aggregation over any per-run metric.
type Replicates struct {
	Scenario Scenario
	Seeds    []uint64
	Results  []*RunResult
}

// RunReplicates runs sc once per seed (overriding sc.Seed) through the
// sweep pool.
func RunReplicates(sc Scenario, seeds []uint64) *Replicates {
	results := Sweep(len(seeds), func(i int) *RunResult {
		p := sc
		p.Seed = seeds[i]
		return Run(p)
	})
	return &Replicates{Scenario: sc, Seeds: append([]uint64(nil), seeds...), Results: results}
}

// Metric aggregates fn over the replicates and returns the sample mean and
// the 95% confidence half-width (normal approximation, sample standard
// deviation). Replicates where fn returns NaN are skipped; with fewer than
// two usable replicates the half-width is 0.
func (r *Replicates) Metric(fn func(*RunResult) float64) (mean, ci95 float64) {
	var xs []float64
	for _, res := range r.Results {
		if v := fn(res); !math.IsNaN(v) {
			xs = append(xs, v)
		}
	}
	n := float64(len(xs))
	if n == 0 {
		return math.NaN(), 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean = sum / n
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, 1.96 * math.Sqrt(ss/(n-1)) / math.Sqrt(n)
}

// MeanAccuracyCI aggregates a scheme's run-level MAE across replicates.
func (r *Replicates) MeanAccuracyCI(scheme string) (mean, ci95 float64) {
	return r.Metric(func(res *RunResult) float64 { return res.MeanAccuracy(scheme).MAE })
}

// MeanBitsPerPacketCI aggregates a scheme's in-packet cost across replicates.
func (r *Replicates) MeanBitsPerPacketCI(scheme string) (mean, ci95 float64) {
	return r.Metric(func(res *RunResult) float64 { return res.MeanBitsPerPacket(scheme) })
}
