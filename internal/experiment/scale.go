package experiment

import (
	"fmt"
	"sync/atomic"
)

// This file is the scale-tier registry: experiments sized to exercise the
// sharded engine (internal/sim/shard) rather than to reproduce a paper
// table. They are deliberately kept out of All() — goldens and the seed-7
// bench CSV iterate over All(), and scale tiers are minutes of work meant
// to be opted into explicitly (dophy-bench -exp S0 / -exp S1).

// shardCount is the shard count scale tiers run with; 0/1 means unsharded.
var shardCount atomic.Int32

// SetShards sets the shard count used by the scale-tier runners (clamped
// to >= 1) and returns the previous value. Like SetWorkers it is package-
// global: cmd/dophy-bench threads its -shards flag through here.
func SetShards(n int) int {
	prev := Shards()
	if n < 1 {
		n = 1
	}
	shardCount.Store(int32(n))
	return prev
}

// Shards returns the current scale-tier shard count.
func Shards() int {
	if n := int(shardCount.Load()); n > 0 {
		return n
	}
	return 1
}

// Scale returns the scale-tier runners. Disjoint from All(): these honour
// SetShards and report partitioned-engine telemetry instead of scheme
// comparisons.
func Scale() []Runner {
	return []Runner{
		{"S0", "sharded engine smoke (2.5k-node grid)", S0},
		{"S1", "sharded engine at scale (100k-node grid)", S1},
	}
}

// scaleScenario returns the common scale-tier configuration: a large
// jittered grid with Trickle beaconing (plain periodic beacons would need
// one period per hop of tree depth to converge — hundreds of periods at
// these diameters) and a generation period slow enough to bound in-flight
// packets while still producing tens of packet events per node per epoch.
func scaleScenario(name string, seed uint64, side int) Scenario {
	sc := DefaultScenario()
	sc.Name = name
	sc.Seed = seed
	sc.Topo = GridSpec(side)
	// BeaconMax caps idle back-off at 2s: a node that routes for the first
	// time has its next beacon at most one capped interval away, so the
	// route wave sweeps the grid at roughly a hop per second instead of
	// stalling behind fully backed-off timers.
	sc.Routing.AdaptiveBeacon = true
	sc.Routing.BeaconMin = 0.5
	sc.Routing.BeaconMax = 2
	sc.Routing.TrickleReset = 0.5
	sc.Collect.GenPeriod = 60
	sc.Collect.GenJitter = 0.25
	// Paths grow with the grid diameter; leave generous TTL headroom for
	// detours during convergence so long journeys are not cut short.
	sc.Collect.TTL = 8 * side
	sc.Epochs = 1
	return sc
}

// runScaleTier runs sc under the sharded engine at the registry shard
// count and renders the telemetry table shared by S0 and S1.
func runScaleTier(id, title string, sc Scenario) *Table {
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"metric", "value"},
		Notes: []string{
			"sharded run: byte-identical at every -shards value; see DESIGN.md",
			fmt.Sprintf("shards=%d (dophy-bench -shards)", Shards()),
		},
	}
	s := NewShardedSession(sc, DefaultShardSpec(Shards()))
	defer s.Close()
	var eo *EpochOutcome
	var estSeconds float64
	for e := 0; e < sc.Epochs; e++ {
		eo = s.RunEpoch()
		estSeconds += eo.EstSeconds
	}
	st := s.Stats()
	events := s.Events()
	dophy := eo.Schemes[SchemeDophy]
	row := func(metric, value string) { t.Rows = append(t.Rows, []string{metric, value}) }
	row("nodes", fmt.Sprintf("%d", s.Topology().N()))
	row("links", fmt.Sprintf("%d", st.Links))
	row("shards", fmt.Sprintf("%d", st.Shards))
	row("cut-links", fmt.Sprintf("%d", st.CutLinks))
	row("lookahead-s", fmt.Sprintf("%g", float64(st.Lookahead)))
	row("windows", fmt.Sprintf("%d", st.Windows))
	row("exchanged", fmt.Sprintf("%d", st.Exchanged))
	// Wall-clock (and so events/sec) is deliberately absent: simulation code
	// never reads wall time. dophy-bench times each experiment and derives
	// sim_events_per_second in its -json report from the events count here.
	row("events", fmt.Sprintf("%d", events))
	row("routed-nodes", fmt.Sprintf("%d", s.Routed()))
	row("delivered", fmt.Sprintf("%d", eo.Truth.Delivered))
	row("generated", fmt.Sprintf("%d", eo.Truth.Generated))
	row("beacons", fmt.Sprintf("%d", s.BeaconsSent()))
	row("dophy-bits-per-packet", f2(dophy.BitsPerPacket()))
	t.recordSession(events, estSeconds)
	return t
}

// S0 is the CI-sized scale tier: large enough that a 2-shard run executes
// thousands of windows, small enough to finish in seconds. The CI bench
// smoke runs it at -shards 1 and -shards 2 and gates on events/sec.
func S0(seed uint64) *Table {
	sc := scaleScenario("s0-scale-smoke", seed, 50)
	sc.Warmup = 180
	sc.EpochLen = 60
	sc.Collect.GenPeriod = 30
	return runScaleTier("S0", "sharded engine smoke (2.5k-node grid)", sc)
}

// S1 is the headline scale tier: a ~100k-node grid (316x316) that a flat
// per-epoch map pipeline could not hold. Expect minutes at one shard and
// near-linear speedup with -shards up to the machine's cores.
func S1(seed uint64) *Table {
	sc := scaleScenario("s1-scale-100k", seed, 316)
	sc.Warmup = 700
	sc.EpochLen = 120
	sc.Collect.GenPeriod = 120
	return runScaleTier("S1", "sharded engine at scale (100k-node grid)", sc)
}
