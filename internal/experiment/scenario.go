// Package experiment is the evaluation harness: it assembles complete
// simulated deployments from declarative scenarios, runs all tomography
// schemes against the same packet realisations, scores them against ground
// truth, and regenerates every table and figure in DESIGN.md's experiment
// index. cmd/dophy-bench and the repository's bench_test.go are thin
// wrappers over this package.
package experiment

import (
	"fmt"
	"math"
	"sort"

	"dophy/internal/collect"
	"dophy/internal/core"
	"dophy/internal/mac"
	"dophy/internal/radio"
	"dophy/internal/rng"
	"dophy/internal/routing"
	"dophy/internal/sim"
	"dophy/internal/stats"
	"dophy/internal/tomo/epochobs"
	"dophy/internal/tomo/pathrecord"
	"dophy/internal/topo"
	"dophy/internal/trace"
)

// TopoKind selects a topology generator.
type TopoKind int

const (
	TopoGrid TopoKind = iota
	TopoUniform
	TopoCorridor
	TopoChain
)

// TopoSpec declares a topology.
type TopoSpec struct {
	Kind    TopoKind
	Side    int     // grid: side length
	N       int     // uniform/corridor/chain: node count
	Spacing float64 // grid/chain spacing
	Jitter  float64 // grid placement jitter
	Width   float64 // uniform/corridor field dimensions
	Height  float64
	Range   float64 // communication range
}

// Build instantiates the topology.
func (ts TopoSpec) Build(r *rng.Source) *topo.Topology {
	switch ts.Kind {
	case TopoGrid:
		return topo.Grid(ts.Side, ts.Spacing, ts.Jitter, ts.Range, r)
	case TopoUniform:
		return topo.Uniform(ts.N, ts.Width, ts.Height, ts.Range, r)
	case TopoCorridor:
		return topo.Corridor(ts.N, ts.Width, ts.Height, ts.Range, r)
	case TopoChain:
		return topo.Chain(ts.N, ts.Spacing, ts.Range)
	}
	panic(fmt.Sprintf("experiment: unknown topology kind %d", ts.Kind))
}

// GridSpec is the standard dense testbed layout used across experiments.
func GridSpec(side int) TopoSpec {
	return TopoSpec{Kind: TopoGrid, Side: side, Spacing: 10, Jitter: 1.5, Range: 14}
}

// RadioKind selects a link-quality model.
type RadioKind int

const (
	RadioStatic RadioKind = iota
	RadioUniformLoss
	RadioRandomWalk
	RadioGilbertElliott
)

// RadioSpec declares link-quality behaviour.
type RadioSpec struct {
	Kind        RadioKind
	UniformLoss float64  // RadioUniformLoss: identical loss on all links
	WalkStep    float64  // RadioRandomWalk: logit step std
	WalkEvery   sim.Time // RadioRandomWalk: step period
	MeanGood    sim.Time // Gilbert-Elliott dwell
	MeanBad     sim.Time
	BadFactor   float64
	// FailMTBF/FailMTTR > 0 overlay node crash/recover dynamics on any
	// base kind (experiment F7).
	FailMTBF sim.Time
	FailMTTR sim.Time
}

// Build instantiates the radio model.
//
//dophy:readonly t -- every model shares the one topology; construction must not rewrite it
func (rs RadioSpec) Build(t *topo.Topology, seed uint64) radio.Model {
	bp := radio.DefaultBase()
	var m radio.Model
	switch rs.Kind {
	case RadioStatic:
		m = radio.NewStatic(t, bp, seed)
	case RadioUniformLoss:
		if rs.UniformLoss < 0 || rs.UniformLoss > 1 {
			panic(fmt.Sprintf("experiment: UniformLoss %v outside [0, 1]", rs.UniformLoss))
		}
		m = radio.NewStaticUniformLoss(t, rs.UniformLoss)
	case RadioRandomWalk:
		every := rs.WalkEvery
		if every <= 0 {
			every = 5
		}
		m = radio.NewRandomWalk(t, bp, every, rs.WalkStep, seed)
	case RadioGilbertElliott:
		m = radio.NewGilbertElliott(t, bp, rs.MeanGood, rs.MeanBad, rs.BadFactor, seed)
	default:
		panic(fmt.Sprintf("experiment: unknown radio kind %d", rs.Kind))
	}
	if rs.FailMTBF > 0 && rs.FailMTTR > 0 {
		m = radio.NewNodeFailures(m, t.N(), rs.FailMTBF, rs.FailMTTR, seed^0xabcdef12345)
	}
	return m
}

// Scenario declares one complete simulation setup.
type Scenario struct {
	Name     string
	Seed     uint64
	Topo     TopoSpec
	Radio    RadioSpec
	Mac      mac.Config
	Routing  routing.Config
	Collect  collect.Config
	Dophy    core.Config
	Warmup   sim.Time // routing bootstrap before data starts
	EpochLen sim.Time
	Epochs   int
	// MinTruthAttempts: links need this many ground-truth attempts in an
	// epoch to participate in accuracy scoring.
	MinTruthAttempts int64
}

// DefaultScenario is the baseline configuration shared by experiments.
func DefaultScenario() Scenario {
	return Scenario{
		Name:             "default",
		Seed:             1,
		Topo:             GridSpec(7),
		Radio:            RadioSpec{Kind: RadioStatic},
		Mac:              mac.Config{MaxRetx: 7},
		Routing:          routing.DefaultConfig(),
		Collect:          collect.Config{GenPeriod: 5, GenJitter: 0.25, TxTime: 0.005, HopDelay: 0.01, TTL: 64},
		Dophy:            core.DefaultConfig(),
		Warmup:           80,
		EpochLen:         300,
		Epochs:           3,
		MinTruthAttempts: 20,
	}
}

// SchemeEpoch is one scheme's normalised per-epoch output. Per-link values
// are dense vectors indexed by Table; NaN in Loss marks links the scheme did
// not estimate.
type SchemeEpoch struct {
	Name string
	// Table indexes Loss/Samples/StdErr. Nil when the scheme reported
	// nothing this epoch.
	Table *topo.LinkTable
	// Loss holds per-attempt loss per table index (NaN = not estimated).
	Loss []float64
	// Samples holds per-link observation counts (annotation schemes only).
	Samples []int64
	// StdErr holds per-link standard errors where the scheme provides them.
	StdErr []float64
	// AnnotationBits / HeaderBits / ExtraBits decompose the epoch overhead
	// (ExtraBits covers model dissemination).
	AnnotationBits int64
	HeaderBits     int64
	ExtraBits      int64
	// TransmittedBits is the radiated annotation volume (prefix bits times
	// per-hop transmissions, plus headers).
	TransmittedBits int64
	Packets         int64
	Hops            int64
	DecodeErrors    int64
	// EstMode / DirtyRows describe how an incremental estimator solved the
	// epoch ("off", "full", "warm" or "copy" with the dirty-row count, see
	// lsq.Stats / minc.Stats). Empty for schemes without an incremental
	// path. Diagnostic only: never rendered into tables.
	EstMode   string
	DirtyRows int
}

// LossAt returns the scheme's estimate for one link.
//
//dophy:readonly recv -- scheme epochs are results; readers must not rewrite them
//dophy:effects noglobals
func (s *SchemeEpoch) LossAt(l topo.Link) (float64, bool) {
	if s.Table == nil {
		return 0, false
	}
	i := s.Table.Index(l)
	if i < 0 || math.IsNaN(s.Loss[i]) {
		return 0, false
	}
	return s.Loss[i], true
}

// NumEstimated counts links the scheme estimated this epoch.
//
//dophy:readonly recv -- scheme epochs are results; readers must not rewrite them
//dophy:effects noglobals
func (s *SchemeEpoch) NumEstimated() int {
	n := 0
	for _, v := range s.Loss {
		if !math.IsNaN(v) {
			n++
		}
	}
	return n
}

// BitsPerPacket is the mean in-packet cost.
//
//dophy:readonly recv -- scheme epochs are results; readers must not rewrite them
//dophy:effects noglobals
func (s *SchemeEpoch) BitsPerPacket() float64 {
	if s.Packets == 0 {
		return 0
	}
	return float64(s.AnnotationBits+s.HeaderBits) / float64(s.Packets)
}

// BitsPerHop is the mean per-hop annotation cost.
//
//dophy:readonly recv -- scheme epochs are results; readers must not rewrite them
//dophy:effects noglobals
func (s *SchemeEpoch) BitsPerHop() float64 {
	if s.Hops == 0 {
		return 0
	}
	return float64(s.AnnotationBits) / float64(s.Hops)
}

// Accuracy scores one scheme against epoch ground truth, on the links the
// scheme reported that also carried enough traffic.
type Accuracy struct {
	MAE      float64
	RMSE     float64
	MaxErr   float64
	Links    int     // links scored
	Coverage float64 // fraction of truth-active links the scheme reported
	Errors   []float64
}

// Score computes Accuracy for a scheme epoch against the trace epoch.
//
//dophy:readonly se truth -- scoring compares two finished artefacts; it owns neither
//dophy:effects noglobals
func Score(se *SchemeEpoch, truth *trace.Epoch, minAttempts int64) Accuracy {
	active := truth.ActiveLinkCount(minAttempts)
	// Table order is ascending (From, To), so the float summations below
	// visit links deterministically without any sort.
	var est, tru []float64
	for i := topo.LinkIdx(0); se.Table != nil && i < se.Table.Count(); i++ {
		loss := se.Loss[i]
		if math.IsNaN(loss) {
			continue
		}
		c := truth.Link(se.Table.Link(i))
		if c.DataAttempts < minAttempts || c.Attempts == 0 {
			continue
		}
		lossTrue, _ := c.Loss(minAttempts)
		est = append(est, loss)
		tru = append(tru, lossTrue)
	}
	acc := Accuracy{Links: len(est)}
	if active > 0 {
		acc.Coverage = float64(len(est)) / float64(active)
	}
	if len(est) == 0 {
		acc.MAE = math.NaN()
		acc.RMSE = math.NaN()
		return acc
	}
	acc.MAE = stats.MAE(est, tru)
	acc.RMSE = stats.RMSE(est, tru)
	acc.MaxErr = stats.MaxAbsErr(est, tru)
	acc.Errors = make([]float64, len(est))
	for i := range est {
		acc.Errors[i] = math.Abs(est[i] - tru[i])
	}
	sort.Float64s(acc.Errors)
	return acc
}

// EpochOutcome bundles everything observed in one epoch.
type EpochOutcome struct {
	Epoch   int
	Truth   *trace.Epoch
	Schemes map[string]*SchemeEpoch
	// QueueDrops counts congestion losses this epoch (QueueCap scenarios).
	QueueDrops int64
	// PerPacket holds (hops, dophyBits) samples for overhead-vs-path-length
	// analysis.
	PerPacket []PacketSample
	// DirtyLinks counts ground-truth links whose counts changed since the
	// previous epoch (trace.Epoch.DirtyCount) — the drift sparsity the
	// incremental estimators exploit. Diagnostic only: never rendered.
	DirtyLinks int
	// EstSeconds is the wall-clock time the estimation stage (MINC + LSQ)
	// spent on this epoch. Like T4's throughput row it measures the
	// implementation, so it never feeds simulation state and is excluded
	// from golden comparisons.
	EstSeconds float64
}

// PacketSample is one delivered packet's (path length, annotation bits).
type PacketSample struct {
	Hops      int
	DophyBits int
}

// RunResult is a full scenario run.
type RunResult struct {
	Scenario Scenario
	Topology *topo.Topology
	Epochs   []*EpochOutcome
	// Events is the simulator event count for the whole run (warmup
	// included) — the denominator for events/sec throughput reporting.
	Events uint64
	// EstSeconds is the total estimation-stage wall time across epochs
	// (see EpochOutcome.EstSeconds).
	EstSeconds float64
	// MeanPacketsPerEpoch is the mean delivered packets per epoch.
	MeanPacketsPerEpoch float64
	// ParentChangesPerNodePerEpoch measures routing dynamics.
	ParentChangesPerNodePerEpoch float64
	// BeaconsSent is the routing protocol's total control-plane cost.
	BeaconsSent int64
}

// Scheme names used across experiments.
const (
	SchemeDophy   = "dophy"
	SchemeDophyNA = "dophy-noagg" // ablation: aggregation disabled
	SchemeRaw     = "raw"
	SchemeCompact = "compact"
	SchemeHuffman = "huffman"
	SchemeMINC    = "minc"
	SchemeLSQ     = "lsq"
)

// Session is an assembled deployment with all schemes attached; epochs are
// stepped on demand. experiment.Run and the public dophy facade share it.
//
// Consumers and annotators attach only before the first epoch runs — an
// epoch they missed can never be replayed.
//
//dophy:states fresh: SubscribeJourneys|AttachAnnotator -> fresh, RunEpoch -> running; running: RunEpoch -> running
type Session struct {
	sc       Scenario
	tp       *topo.Topology
	lt       *topo.LinkTable
	eng      *sim.Engine
	rec      *trace.Recorder
	nw       *collect.Network
	proto    *routing.Protocol
	dophyEng *core.Dophy
	dophyNA  *core.Dophy
	raw      *pathrecord.Recorder
	compact  *pathrecord.Recorder
	huff     *pathrecord.Recorder
	obsCol   *epochobs.Collector
	bank     estBank

	perPacket      []PacketSample
	epoch          int
	lastQueueDrops int64
}

// NewSession builds the network, attaches every scheme, runs the routing
// warmup and starts data generation.
func NewSession(sc Scenario) *Session {
	root := rng.New(sc.Seed)
	tp := sc.Topo.Build(root.Split())
	model := sc.Radio.Build(tp, sc.Seed^0x9e3779b97f4a7c15)
	eng := sim.New()
	lt := tp.LinkTable()
	rec := trace.NewRecorder(lt)
	arq := mac.New(sc.Mac, model, root.Split(), rec)
	proto := routing.New(sc.Routing, eng, tp, model, root.Split(), rec)
	nw := collect.New(sc.Collect, eng, tp, arq, proto, root.Split(), rec)

	dcfg := sc.Dophy
	dcfg.MaxAttempts = sc.Mac.MaxRetx + 1
	if dcfg.AggThreshold >= dcfg.MaxAttempts {
		dcfg.AggThreshold = 0 // aggregation meaningless for tiny budgets
	}
	s := &Session{sc: sc, tp: tp, lt: lt, eng: eng, rec: rec, nw: nw, proto: proto}
	s.dophyEng = core.New(tp, dcfg)
	naCfg := dcfg
	naCfg.AggThreshold = 0
	s.dophyNA = core.New(tp, naCfg)

	prCfg := func(v pathrecord.Variant) pathrecord.Config {
		c := pathrecord.DefaultConfig(v)
		c.MaxAttempts = dcfg.MaxAttempts
		c.MinSamples = dcfg.MinSamples
		return c
	}
	s.raw = pathrecord.New(tp, prCfg(pathrecord.Raw))
	s.compact = pathrecord.New(tp, prCfg(pathrecord.Compact))
	s.huff = pathrecord.New(tp, prCfg(pathrecord.Huffman))
	s.obsCol = epochobs.New(lt)
	s.bank = newEstBank(lt, dcfg.MaxAttempts)

	nw.Subscribe(func(j *collect.PacketJourney) {
		bits := s.dophyEng.OnJourney(j)
		s.dophyNA.OnJourney(j)
		s.raw.OnJourney(j)
		s.compact.OnJourney(j)
		s.huff.OnJourney(j)
		s.obsCol.OnJourney(j)
		if j.Delivered {
			s.perPacket = append(s.perPacket, PacketSample{Hops: len(j.Hops), DophyBits: bits})
		}
	})

	proto.Start()
	eng.Run(sc.Warmup)
	rec.Cut() // discard warmup ground truth
	nw.Start()
	return s
}

// Topology exposes the built topology.
func (s *Session) Topology() *topo.Topology { return s.tp }

// SubscribeJourneys registers an extra consumer of every completed journey
// (e.g. the trace exporter). Call before the first RunEpoch.
func (s *Session) SubscribeJourneys(fn collect.JourneyFunc) { s.nw.Subscribe(fn) }

// AttachAnnotator registers a hop-by-hop annotator (the distributed
// encoding path). Call before the first RunEpoch.
func (s *Session) AttachAnnotator(a collect.Annotator) { s.nw.AttachAnnotator(a) }

// BeaconsSent exposes the routing protocol's control-plane transmissions.
func (s *Session) BeaconsSent() int64 { return s.proto.BeaconsSent }

// Events exposes the simulator's processed-event count so far.
func (s *Session) Events() uint64 { return s.eng.Processed() }

// cutEpoch advances the simulation one epoch and harvests everything the
// sink observes: ground truth, annotation-scheme epoch reports and the
// observation epoch the inference estimators consume. It is the first
// stage of RunEpoch; the returned cut is immutable and ready to hand to
// the estimation stage (estBank.estimate), on this goroutine or another.
func (s *Session) cutEpoch() *epochCut {
	s.epoch++
	s.eng.Run(s.sc.Warmup + sim.Time(s.epoch)*s.sc.EpochLen)
	truth := s.rec.Cut()
	// Seven schemes land in the map every epoch: size it once up front.
	eo := &EpochOutcome{Epoch: s.epoch, Truth: truth, Schemes: make(map[string]*SchemeEpoch, 8)}
	eo.DirtyLinks = truth.DirtyCount()
	eo.Schemes[SchemeDophy] = fromDophy(SchemeDophy, s.dophyEng.EndEpoch())
	eo.Schemes[SchemeDophyNA] = fromDophy(SchemeDophyNA, s.dophyNA.EndEpoch())
	eo.Schemes[SchemeRaw] = fromPathRecord(SchemeRaw, s.raw.EndEpoch())
	eo.Schemes[SchemeCompact] = fromPathRecord(SchemeCompact, s.compact.EndEpoch())
	eo.Schemes[SchemeHuffman] = fromPathRecord(SchemeHuffman, s.huff.EndEpoch())
	obsEpoch := s.obsCol.EndEpoch()
	eo.PerPacket = s.perPacket
	s.perPacket = nil
	eo.QueueDrops = s.nw.QueueDrops - s.lastQueueDrops
	s.lastQueueDrops = s.nw.QueueDrops
	return &epochCut{out: eo, obs: obsEpoch}
}

// RunEpoch advances the simulation one epoch and harvests every scheme.
func (s *Session) RunEpoch() *EpochOutcome {
	return s.bank.estimate(s.cutEpoch())
}

// Run executes the scenario with every scheme attached. With the
// package-level pipeline toggle on (SetPipelined) the epochs execute
// through the two-stage pipeline; the results are identical either way.
func Run(sc Scenario) *RunResult {
	if Pipelined() {
		return RunPipelined(sc)
	}
	s := NewSession(sc)
	res := &RunResult{Scenario: sc, Topology: s.tp}
	var totalPackets, totalChanges int64
	for e := 0; e < sc.Epochs; e++ {
		eo := s.RunEpoch()
		res.Epochs = append(res.Epochs, eo)
		totalPackets += eo.Truth.Delivered
		totalChanges += eo.Truth.ParentChanges
		res.EstSeconds += eo.EstSeconds
	}
	if sc.Epochs > 0 {
		res.MeanPacketsPerEpoch = float64(totalPackets) / float64(sc.Epochs)
		res.ParentChangesPerNodePerEpoch =
			float64(totalChanges) / float64(sc.Epochs) / math.Max(1, float64(s.tp.N()-1))
	}
	res.BeaconsSent = s.BeaconsSent()
	res.Events = s.Events()
	return res
}

func fromDophy(name string, rep *core.EpochReport) *SchemeEpoch {
	se := &SchemeEpoch{
		Name:            name,
		Table:           rep.Table,
		Loss:            make([]float64, len(rep.Est)),
		Samples:         make([]int64, len(rep.Est)),
		StdErr:          make([]float64, len(rep.Est)),
		AnnotationBits:  rep.Overhead.AnnotationBits,
		HeaderBits:      rep.Overhead.HeaderBits,
		ExtraBits:       rep.Overhead.DisseminationBits,
		TransmittedBits: rep.Overhead.TransmittedBits,
		Packets:         rep.Overhead.Packets,
		Hops:            rep.Overhead.Hops,
		DecodeErrors:    rep.DecodeErrors,
	}
	for i, est := range rep.Est {
		se.Loss[i] = est.Loss // NaN marks not-estimated, as in the report
		se.Samples[i] = est.Samples
		se.StdErr[i] = est.StdErr
	}
	return se
}

func fromPathRecord(name string, rep *pathrecord.EpochReport) *SchemeEpoch {
	return &SchemeEpoch{
		Name:            name,
		Table:           rep.Table,
		Loss:            rep.Loss,
		Samples:         rep.Samples,
		AnnotationBits:  rep.Overhead.AnnotationBits,
		HeaderBits:      rep.Overhead.HeaderBits,
		TransmittedBits: rep.Overhead.TransmittedBits,
		Packets:         rep.Overhead.Packets,
		Hops:            rep.Overhead.Hops,
		DecodeErrors:    rep.DecodeErrors,
	}
}

// MeanAccuracy averages a scheme's per-epoch accuracy across a run,
// skipping epochs where the scheme produced nothing.
func (r *RunResult) MeanAccuracy(scheme string) Accuracy {
	var maes, rmses, covs, maxes []float64
	links := 0
	for _, eo := range r.Epochs {
		se, ok := eo.Schemes[scheme]
		if !ok {
			continue
		}
		acc := Score(se, eo.Truth, r.Scenario.MinTruthAttempts)
		if math.IsNaN(acc.MAE) {
			continue
		}
		maes = append(maes, acc.MAE)
		rmses = append(rmses, acc.RMSE)
		covs = append(covs, acc.Coverage)
		maxes = append(maxes, acc.MaxErr)
		links += acc.Links
	}
	if len(maes) == 0 {
		return Accuracy{MAE: math.NaN(), RMSE: math.NaN()}
	}
	return Accuracy{
		MAE:      stats.Mean(maes),
		RMSE:     stats.Mean(rmses),
		MaxErr:   stats.Mean(maxes),
		Coverage: stats.Mean(covs),
		Links:    links,
	}
}

// MeanBitsPerPacket averages a scheme's in-packet cost across epochs.
func (r *RunResult) MeanBitsPerPacket(scheme string) float64 {
	var totalBits, totalPkts int64
	for _, eo := range r.Epochs {
		if se, ok := eo.Schemes[scheme]; ok {
			totalBits += se.AnnotationBits + se.HeaderBits
			totalPkts += se.Packets
		}
	}
	if totalPkts == 0 {
		return 0
	}
	return float64(totalBits) / float64(totalPkts)
}

// TotalBitsPerPacket includes dissemination (ExtraBits) amortised over
// packets — the figure optimisation 2 trades off.
func (r *RunResult) TotalBitsPerPacket(scheme string) float64 {
	var totalBits, totalPkts int64
	for _, eo := range r.Epochs {
		if se, ok := eo.Schemes[scheme]; ok {
			totalBits += se.AnnotationBits + se.HeaderBits + se.ExtraBits
			totalPkts += se.Packets
		}
	}
	if totalPkts == 0 {
		return 0
	}
	return float64(totalBits) / float64(totalPkts)
}

// DecodeErrorTotal sums decode errors across epochs for a scheme.
func (r *RunResult) DecodeErrorTotal(scheme string) int64 {
	var n int64
	for _, eo := range r.Epochs {
		if se, ok := eo.Schemes[scheme]; ok {
			n += se.DecodeErrors
		}
	}
	return n
}
