// This file is the epoch pipeline: a two-stage overlap of simulation and
// estimation. Session.cutEpoch harvests everything the sink observed in an
// epoch into an immutable epochCut; the estimation stage (estBank) turns a
// cut into the finished EpochOutcome. Sequential Run composes the stages
// on one goroutine; RunPipelined sends cuts over a channel to a single
// estimation goroutine so epoch k's (often expensive) inference runs while
// the simulator is already producing epoch k+1. There is exactly one
// sender and one receiver, every cut crosses the channel exactly once, and
// the estimator bank's scratch is touched only by the estimation
// goroutine, so the outcome stream is identical — same values, same order
// — to the sequential composition for the same scenario.
//
//dophy:concurrency-boundary -- single-producer single-consumer epoch hand-off; cuts are immutable after construction and the bank is owned by the estimation goroutine
package experiment

import (
	"math"
	"sync/atomic"

	"dophy/internal/tomo/epochobs"
	"dophy/internal/tomo/lsq"
	"dophy/internal/tomo/minc"
	"dophy/internal/topo"
)

// pipelined toggles the two-stage epoch pipeline inside Run.
var pipelined atomic.Bool

// SetPipelined switches Run between the sequential epoch loop and the
// two-stage pipeline, returning the previous setting. Like SetWorkers the
// toggle is package-global so cmd/dophy-bench applies it once for every
// experiment. The produced tables are identical either way; only wall
// time changes.
func SetPipelined(on bool) bool { return pipelined.Swap(on) }

// Pipelined reports whether Run executes epochs through the pipeline.
func Pipelined() bool { return pipelined.Load() }

// incremental toggles dirty-link incremental re-estimation in the
// MINC/LSQ estimator bank.
var incremental atomic.Bool

// SetIncremental switches new sessions' MINC/LSQ estimators between
// from-scratch (the historical default) and incremental re-estimation
// seeded by dirty-link tracking, returning the previous setting. Applies
// to sessions built after the call.
func SetIncremental(on bool) bool { return incremental.Swap(on) }

// Incremental reports whether new sessions use incremental estimators.
func Incremental() bool { return incremental.Load() }

// epochCut is one epoch's complete sink-side harvest, produced by
// Session.cutEpoch and consumed exactly once by estBank.estimate. Sending
// a cut transfers ownership: the simulation side never touches one again,
// which is what makes the estimate stage's writes to out race-free.
type epochCut struct {
	// The outcome travels with the cut: once the cut is sent, the estimation
	// stage owns it and finishes it (the one sanctioned write through a cut).
	//
	//dophy:transfers -- ownership of the outcome moves with the cut to the estimation stage
	out *EpochOutcome   //dophy:owner immutable -- built by cutEpoch; the estimation stage finishes and returns it
	obs *epochobs.Epoch //dophy:owner immutable -- the estimators' input; next epoch's DiffFrom only reads it
}

// estBank is the estimation stage's state: the inference estimators whose
// scratch persists across epochs (for reuse, and in incremental mode for
// warm starts). Only the stage that owns the bank — the main goroutine
// under sequential Run, the single estimation goroutine under
// RunPipelined — may call estimate.
type estBank struct {
	lt      *topo.LinkTable //dophy:owner immutable
	mincEst *minc.Estimator //dophy:owner immutable -- the pointer; the estimator's own scratch mutates only under estimate
	lsqEst  *lsq.Estimator  //dophy:owner immutable -- the pointer; the estimator's own scratch mutates only under estimate
}

// newEstBank builds the MINC/LSQ estimator pair, enabling incremental
// re-estimation when the package toggle is on.
func newEstBank(lt *topo.LinkTable, maxAttempts int) estBank {
	mcfg := minc.DefaultConfig()
	mcfg.MaxAttempts = maxAttempts
	lcfg := lsq.DefaultConfig()
	lcfg.MaxAttempts = maxAttempts
	if Incremental() {
		mcfg.DirtyThreshold = minc.DefaultDirtyThreshold
		lcfg.DirtyThreshold = lsq.DefaultDirtyThreshold
	}
	return estBank{lt: lt, mincEst: minc.NewEstimator(lt, mcfg), lsqEst: lsq.NewEstimator(lt, lcfg)}
}

// estimate runs the inference estimators over one cut and completes its
// EpochOutcome. Called once per cut, in epoch order.
//
//dophy:window
//dophy:readonly c -- the cut is shared with the simulation side's run totals; only the transferred outcome may be written
//dophy:effects noglobals -- estimation must not touch package state: the pipeline runs it concurrently with the simulator
func (b *estBank) estimate(c *epochCut) *EpochOutcome {
	eo := c.out
	start := nowNanos()
	// Estimate returns borrowed estimator scratch, rewritten next epoch; the
	// SchemeEpoch outlives the epoch, so this is the one copy-out boundary.
	mSe := &SchemeEpoch{Name: SchemeMINC, Table: b.lt, Loss: append([]float64(nil), b.mincEst.Estimate(c.obs)...)}
	mSt := b.mincEst.LastStats()
	mSe.EstMode, mSe.DirtyRows = mSt.Mode, mSt.DirtyRows
	lSe := &SchemeEpoch{Name: SchemeLSQ, Table: b.lt, Loss: append([]float64(nil), b.lsqEst.Estimate(c.obs)...)}
	lSt := b.lsqEst.LastStats()
	lSe.EstMode, lSe.DirtyRows = lSt.Mode, lSt.DirtyRows
	eo.Schemes[SchemeMINC] = mSe
	eo.Schemes[SchemeLSQ] = lSe
	eo.EstSeconds = float64(nowNanos()-start) / 1e9
	return eo
}

// spawnEst starts the estimation stage. It exists so the hand-off is a
// single annotated statement: after the go statement the caller owns
// nothing it passed — the bank and both channel ends belong to the
// estimation goroutine until outs is closed.
func spawnEst(b *estBank, cuts <-chan *epochCut, outs chan<- *EpochOutcome) {
	//dophy:transfers -- the bank and channels belong to the estimation goroutine until outs closes
	go estLoop(b, cuts, outs)
}

// estLoop drains cuts in order, estimating each and forwarding the
// finished outcome. It closes outs when cuts closes, which is the
// pipeline's termination signal.
//
//dophy:window
func estLoop(b *estBank, cuts <-chan *epochCut, outs chan<- *EpochOutcome) {
	for c := range cuts {
		outs <- b.estimate(c)
	}
	close(outs)
}

// RunPipelined executes the scenario with epoch simulation and estimation
// overlapped: while the estimation goroutine fits epoch k, the main
// goroutine simulates epoch k+1. Output is identical to Run — the bank
// sees the same cuts in the same order — so the pipeline is purely a
// wall-clock optimisation, worth roughly min(sim, estimation) time per
// epoch when the two stages are balanced.
func RunPipelined(sc Scenario) *RunResult {
	s := NewSession(sc)
	res := &RunResult{Scenario: sc, Topology: s.tp}
	// Buffer one cut so the simulator can run a full epoch ahead while the
	// previous epoch is still being estimated.
	cuts := make(chan *epochCut, 1)
	outs := make(chan *EpochOutcome, 1)
	spawnEst(&s.bank, cuts, outs)
	var totalPackets, totalChanges int64
	for e := 0; e < sc.Epochs; e++ {
		c := s.cutEpoch()
		// Truth is complete at cut time; accumulate run totals here so the
		// receive side below only collects finished outcomes.
		totalPackets += c.out.Truth.Delivered
		totalChanges += c.out.Truth.ParentChanges
		//dophy:transfers -- the cut belongs to the estimation goroutine once sent
		cuts <- c
		if e >= 1 {
			eo := <-outs
			res.Epochs = append(res.Epochs, eo)
			res.EstSeconds += eo.EstSeconds
		}
	}
	close(cuts)
	if sc.Epochs > 0 {
		eo := <-outs
		res.Epochs = append(res.Epochs, eo)
		res.EstSeconds += eo.EstSeconds
	}
	if sc.Epochs > 0 {
		res.MeanPacketsPerEpoch = float64(totalPackets) / float64(sc.Epochs)
		res.ParentChangesPerNodePerEpoch =
			float64(totalChanges) / float64(sc.Epochs) / math.Max(1, float64(s.tp.N()-1))
	}
	res.BeaconsSent = s.BeaconsSent()
	res.Events = s.Events()
	return res
}
