package experiment

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestSweepOrderAndCoverage(t *testing.T) {
	for _, w := range []int{1, 2, 4, 16} {
		prev := SetWorkers(w)
		var calls atomic.Int64
		out := Sweep(100, func(i int) int {
			calls.Add(1)
			return i * i
		})
		SetWorkers(prev)
		if calls.Load() != 100 {
			t.Fatalf("workers=%d: fn called %d times, want 100", w, calls.Load())
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

func TestSweepZeroPoints(t *testing.T) {
	if out := Sweep(0, func(i int) int { return i }); len(out) != 0 {
		t.Fatalf("Sweep(0) returned %d results", len(out))
	}
}

func TestSetWorkers(t *testing.T) {
	orig := Workers()
	defer SetWorkers(orig)
	if prev := SetWorkers(3); prev != orig {
		t.Fatalf("SetWorkers returned %d, want previous value %d", prev, orig)
	}
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(0) // restore the NumCPU default
	if Workers() < 1 {
		t.Fatalf("Workers() = %d with default, want >= 1", Workers())
	}
}

// sweepTestScenario is a deliberately small run so the determinism tests
// stay fast even under -race.
func sweepTestScenario(seed uint64) Scenario {
	sc := DefaultScenario()
	sc.Seed = seed
	sc.Topo = GridSpec(4)
	sc.Epochs = 1
	sc.EpochLen = 60
	return sc
}

// TestRunAllDeterministicAcrossWorkerCounts is the core parallel-sweep
// guarantee: fanning scenario points across N workers must produce results
// byte-identical to a sequential execution, because each point is an
// independent single-threaded simulation and output lands in input order.
func TestRunAllDeterministicAcrossWorkerCounts(t *testing.T) {
	scs := make([]Scenario, 5)
	for i := range scs {
		sc := sweepTestScenario(uint64(100 + i))
		sc.Radio = RadioSpec{Kind: RadioUniformLoss, UniformLoss: 0.05 * float64(i)}
		scs[i] = sc
	}

	summarize := func(res []*RunResult) [][3]float64 {
		out := make([][3]float64, len(res))
		for i, r := range res {
			out[i] = [3]float64{
				r.MeanBitsPerPacket(SchemeDophy),
				r.MeanAccuracy(SchemeDophy).MAE,
				float64(r.Events),
			}
		}
		return out
	}

	prev := SetWorkers(1)
	defer SetWorkers(prev)
	seq := summarize(RunAll(scs))

	for _, w := range []int{2, 4, 8} {
		SetWorkers(w)
		par := summarize(RunAll(scs))
		for i := range seq {
			for k := range seq[i] {
				sv, pv := seq[i][k], par[i][k]
				if sv != pv && !(math.IsNaN(sv) && math.IsNaN(pv)) {
					t.Fatalf("workers=%d point %d metric %d: parallel %v != sequential %v",
						w, i, k, pv, sv)
				}
			}
		}
	}
}

// TestRunnerTableDeterministic runs a full registry experiment at 1 and 4
// workers and requires the formatted table — the user-visible artifact — to
// be byte-identical.
func TestRunnerTableDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment runner; skipped in -short")
	}
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	seq := F4(7).Format()
	SetWorkers(4)
	par := F4(7).Format()
	if seq != par {
		t.Fatalf("F4 table differs between 1 and 4 workers:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}

func TestSeeds(t *testing.T) {
	seeds := Seeds(7, 5)
	if len(seeds) != 5 {
		t.Fatalf("len = %d", len(seeds))
	}
	if seeds[0] != 7 {
		t.Fatalf("seeds[0] = %d, want the base seed", seeds[0])
	}
	seen := map[uint64]bool{}
	for _, s := range seeds {
		if seen[s] {
			t.Fatalf("duplicate seed %d", s)
		}
		seen[s] = true
	}
}

func TestReplicatesMetric(t *testing.T) {
	// Synthetic results distinguished via the Events field; fn maps Events 0
	// to NaN to exercise the skip path.
	mk := func(events ...uint64) *Replicates {
		r := &Replicates{}
		for _, e := range events {
			r.Results = append(r.Results, &RunResult{Events: e})
		}
		return r
	}
	fn := func(res *RunResult) float64 {
		if res.Events == 0 {
			return math.NaN()
		}
		return float64(res.Events)
	}

	mean, ci := mk(1, 2, 3, 4).Metric(fn)
	if mean != 2.5 {
		t.Fatalf("mean = %v, want 2.5", mean)
	}
	wantCI := 1.96 * math.Sqrt(5.0/3.0) / 2
	if math.Abs(ci-wantCI) > 1e-12 {
		t.Fatalf("ci = %v, want %v", ci, wantCI)
	}

	// NaN replicates are skipped entirely.
	mean2, ci2 := mk(0, 1, 2, 3, 4, 0).Metric(fn)
	if mean2 != 2.5 || math.Abs(ci2-wantCI) > 1e-12 {
		t.Fatalf("with NaNs: mean = %v ci = %v, want 2.5 / %v", mean2, ci2, wantCI)
	}

	// Degenerate sizes.
	if m, c := mk(5).Metric(fn); m != 5 || c != 0 {
		t.Fatalf("single replicate: mean = %v ci = %v", m, c)
	}
	if m, c := mk().Metric(fn); !math.IsNaN(m) || c != 0 {
		t.Fatalf("no replicates: mean = %v ci = %v", m, c)
	}
}

func TestRunReplicates(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)

	sc := sweepTestScenario(1)
	seeds := Seeds(1, 3)
	rep := RunReplicates(sc, seeds)
	if len(rep.Results) != len(seeds) {
		t.Fatalf("got %d results for %d seeds", len(rep.Results), len(seeds))
	}
	mean, ci := rep.MeanAccuracyCI(SchemeDophy)
	if math.IsNaN(mean) || mean <= 0 {
		t.Fatalf("mean MAE = %v, want a positive value", mean)
	}
	if ci < 0 {
		t.Fatalf("ci = %v, want >= 0", ci)
	}

	// Replicates are deterministic: the same seeds reproduce the same
	// aggregate regardless of scheduling.
	SetWorkers(1)
	rep2 := RunReplicates(sc, seeds)
	mean2, ci2 := rep2.MeanAccuracyCI(SchemeDophy)
	if mean2 != mean || ci2 != ci {
		t.Fatalf("replicates not deterministic: (%v, %v) != (%v, %v)", mean2, ci2, mean, ci)
	}

	// Different seed streams should actually vary (else the CI is a lie).
	if ci == 0 {
		t.Fatalf("ci = 0 across distinct seeds; replicate seeds not independent?")
	}
}
