package experiment

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dophy/internal/rng"
)

// smallScenario keeps tests fast.
func smallScenario(seed uint64) Scenario {
	sc := DefaultScenario()
	sc.Seed = seed
	sc.Topo = GridSpec(5)
	sc.Epochs = 2
	sc.EpochLen = 200
	return sc
}

func TestRunProducesAllSchemes(t *testing.T) {
	res := Run(smallScenario(1))
	if len(res.Epochs) != 2 {
		t.Fatalf("epochs = %d", len(res.Epochs))
	}
	want := []string{SchemeDophy, SchemeDophyNA, SchemeRaw, SchemeCompact, SchemeHuffman, SchemeMINC, SchemeLSQ}
	for _, eo := range res.Epochs {
		for _, s := range want {
			if _, ok := eo.Schemes[s]; !ok {
				t.Fatalf("epoch %d missing scheme %s", eo.Epoch, s)
			}
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a := Run(smallScenario(3))
	b := Run(smallScenario(3))
	if a.MeanPacketsPerEpoch != b.MeanPacketsPerEpoch {
		t.Fatal("packet counts differ across identical runs")
	}
	accA := a.MeanAccuracy(SchemeDophy)
	accB := b.MeanAccuracy(SchemeDophy)
	if accA.MAE != accB.MAE {
		t.Fatalf("MAE differs: %v vs %v", accA.MAE, accB.MAE)
	}
	if a.MeanBitsPerPacket(SchemeDophy) != b.MeanBitsPerPacket(SchemeDophy) {
		t.Fatal("overhead differs across identical runs")
	}
}

func TestNoDecodeErrors(t *testing.T) {
	res := Run(smallScenario(5))
	for _, s := range []string{SchemeDophy, SchemeDophyNA, SchemeRaw, SchemeCompact, SchemeHuffman} {
		if n := res.DecodeErrorTotal(s); n != 0 {
			t.Fatalf("%s decode errors: %d", s, n)
		}
	}
}

func TestHeadlineClaims(t *testing.T) {
	// The paper's two headline results must hold on a default scenario:
	// (1) Dophy beats the traditional baselines on accuracy by a wide
	// margin, (2) arithmetic coding beats Huffman beats fixed-width.
	sc := DefaultScenario()
	sc.Seed = 11
	sc.Epochs = 2
	res := Run(sc)
	dophy := res.MeanAccuracy(SchemeDophy).MAE
	minc := res.MeanAccuracy(SchemeMINC).MAE
	lsq := res.MeanAccuracy(SchemeLSQ).MAE
	if !(dophy < minc/2 && dophy < lsq/2) {
		t.Fatalf("accuracy claim failed: dophy=%.4f minc=%.4f lsq=%.4f", dophy, minc, lsq)
	}
	d := res.MeanBitsPerPacket(SchemeDophy)
	h := res.MeanBitsPerPacket(SchemeHuffman)
	c := res.MeanBitsPerPacket(SchemeCompact)
	r := res.MeanBitsPerPacket(SchemeRaw)
	if !(d < h && h < c && c < r) {
		t.Fatalf("overhead ladder failed: dophy=%.1f huffman=%.1f compact=%.1f raw=%.1f", d, h, c, r)
	}
}

func TestAggregationSavesBits(t *testing.T) {
	res := Run(smallScenario(7))
	agg := res.MeanBitsPerPacket(SchemeDophy)
	noagg := res.MeanBitsPerPacket(SchemeDophyNA)
	if agg >= noagg {
		t.Fatalf("aggregation did not save bits: %.2f vs %.2f", agg, noagg)
	}
}

func TestScoreAgainstTruth(t *testing.T) {
	res := Run(smallScenario(9))
	eo := res.Epochs[0]
	acc := Score(eo.Schemes[SchemeDophy], eo.Truth, res.Scenario.MinTruthAttempts)
	if acc.Links == 0 {
		t.Fatal("nothing scored")
	}
	if acc.MAE < 0 || acc.MAE > 1 || math.IsNaN(acc.MAE) {
		t.Fatalf("MAE = %v", acc.MAE)
	}
	if acc.Coverage <= 0 || acc.Coverage > 1 {
		t.Fatalf("coverage = %v", acc.Coverage)
	}
	if len(acc.Errors) != acc.Links {
		t.Fatalf("errors len %d != links %d", len(acc.Errors), acc.Links)
	}
}

func TestScoreEmptyScheme(t *testing.T) {
	res := Run(smallScenario(13))
	empty := &SchemeEpoch{Name: "none"}
	acc := Score(empty, res.Epochs[0].Truth, 10)
	if !math.IsNaN(acc.MAE) || acc.Links != 0 {
		t.Fatalf("empty scheme score = %+v", acc)
	}
}

func TestTableFormat(t *testing.T) {
	tab := &Table{
		ID:      "X",
		Title:   "test",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"note"},
	}
	out := tab.Format()
	if !strings.Contains(out, "== X: test ==") || !strings.Contains(out, "333") || !strings.Contains(out, "# note") {
		t.Fatalf("format output:\n%s", out)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,bb\n1,2\n") {
		t.Fatalf("csv output:\n%s", csv)
	}
}

func TestTopoSpecBuilders(t *testing.T) {
	specs := []TopoSpec{
		GridSpec(4),
		{Kind: TopoUniform, N: 20, Width: 60, Height: 60, Range: 25},
		{Kind: TopoCorridor, N: 20, Width: 100, Height: 10, Range: 25},
		{Kind: TopoChain, N: 5, Spacing: 10, Range: 11},
	}
	wantN := []int{16, 20, 20, 5}
	for i, ts := range specs {
		tp := ts.Build(rng.New(uint64(20 + i)))
		if tp.N() != wantN[i] {
			t.Fatalf("spec %d built %d nodes, want %d", i, tp.N(), wantN[i])
		}
	}
}

func TestRegistryRunsDistinctIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range All() {
		if seen[r.ID] {
			t.Fatalf("duplicate experiment id %s", r.ID)
		}
		seen[r.ID] = true
		if r.Run == nil || r.Title == "" {
			t.Fatalf("incomplete registry entry %+v", r.ID)
		}
	}
	if len(seen) != 21 {
		t.Fatalf("registry has %d entries, want 21", len(seen))
	}
}

func TestF6ValidationHolds(t *testing.T) {
	// The simulator-validation experiment must agree with the analytic
	// formulas to within sampling noise.
	tab := F6(31)
	for _, row := range tab.Rows {
		var meas, ana float64
		if _, err := sscan(row[1], &meas); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(row[2], &ana); err != nil {
			t.Fatal(err)
		}
		if math.Abs(meas-ana) > 0.02 {
			t.Fatalf("delivery mismatch: %v vs %v", meas, ana)
		}
		if _, err := sscan(row[3], &meas); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(row[4], &ana); err != nil {
			t.Fatal(err)
		}
		if math.Abs(meas-ana) > 0.1 {
			t.Fatalf("mean attempts mismatch: %v vs %v", meas, ana)
		}
	}
}

func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

// TestAllExperimentsProduceSaneTables runs the entire registry end to end
// (the same code paths as cmd/dophy-bench) and sanity-checks every table.
// It is the heavyweight integration test of the repository (~15s); skip it
// with -short.
func TestAllExperimentsProduceSaneTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			tab := r.Run(97)
			if tab.ID != r.ID {
				t.Fatalf("table id %q != registry id %q", tab.ID, r.ID)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			if len(tab.Columns) == 0 {
				t.Fatal("experiment produced no columns")
			}
			for i, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Fatalf("row %d has %d cells for %d columns", i, len(row), len(tab.Columns))
				}
				for j, cell := range row {
					if cell == "" || strings.Contains(cell, "NaN") {
						t.Fatalf("row %d col %s is %q", i, tab.Columns[j], cell)
					}
				}
			}
			// Formatting must not lose content.
			out := tab.Format()
			if !strings.Contains(out, tab.ID) {
				t.Fatal("format lost the table id")
			}
		})
	}
}

// Golden regression: every experiment's full output is pinned. Because the
// whole stack is deterministic, any diff means behaviour changed — rerun
// with -update-golden to accept intentional changes.
var updateGolden = flag.Bool("update-golden", false, "rewrite experiment golden files")

func TestExperimentGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep skipped in -short mode")
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			if r.ID == "T4" {
				t.Skip("T4 reports wall-clock timings; not reproducible")
			}
			got := r.Run(97).Format()
			path := filepath.Join("testdata", "golden", r.ID+".txt")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Fatalf("output drifted from golden %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}
