package mac

import (
	"math"
	"testing"

	"dophy/internal/radio"
	"dophy/internal/rng"
	"dophy/internal/topo"
	"dophy/internal/trace"
)

func chainTopo() *topo.Topology {
	return topo.Grid(2, 10, 0, 11, rng.New(1))
}

var link = topo.Link{From: 1, To: 0}

func newARQ(prr float64, cfg Config, rec *trace.Recorder) *ARQ {
	tp := chainTopo()
	m := radio.NewStaticUniformLoss(tp, 1-prr)
	return New(cfg, m, rng.New(99), rec)
}

func TestPerfectLinkOneAttempt(t *testing.T) {
	a := newARQ(1.0, DefaultConfig(), nil)
	for i := 0; i < 100; i++ {
		res := a.Send(link, 0)
		if !res.Delivered || res.Attempts != 1 || res.AckedAttempt != 1 {
			t.Fatalf("perfect link result = %+v", res)
		}
	}
}

func TestDeadLinkDrops(t *testing.T) {
	a := newARQ(0.0, Config{MaxRetx: 3}, nil)
	res := a.Send(link, 0)
	if res.Delivered || res.Attempts != 4 || res.AckedAttempt != 0 {
		t.Fatalf("dead link result = %+v", res)
	}
}

func TestAttemptsWithinBudget(t *testing.T) {
	a := newARQ(0.3, Config{MaxRetx: 5}, nil)
	for i := 0; i < 2000; i++ {
		res := a.Send(link, 0)
		if res.Attempts < 1 || res.Attempts > 6 {
			t.Fatalf("attempts out of budget: %+v", res)
		}
		if res.Delivered && res.AckedAttempt > res.Attempts {
			t.Fatalf("acked attempt beyond attempts: %+v", res)
		}
	}
}

func TestAttemptsGeometric(t *testing.T) {
	// With PRR p and no ack loss, mean attempts for delivered packets should
	// match the truncated geometric mean.
	const p = 0.5
	cfg := Config{MaxRetx: 7}
	a := newARQ(p, cfg, nil)
	const n = 200000
	sum, delivered := 0.0, 0
	for i := 0; i < n; i++ {
		res := a.Send(link, 0)
		if res.Delivered {
			sum += float64(res.Attempts)
			delivered++
		}
	}
	mean := sum / float64(delivered)
	// E[T | T <= R+1] for geometric(p) truncated at R+1 attempts.
	R := cfg.MaxRetx
	num, den := 0.0, 0.0
	for k := 1; k <= R+1; k++ {
		pk := math.Pow(1-p, float64(k-1)) * p
		num += float64(k) * pk
		den += pk
	}
	want := num / den
	if math.Abs(mean-want) > 0.02 {
		t.Fatalf("mean attempts = %v, want ~%v", mean, want)
	}
}

func TestDeliveryRateMatchesAnalytic(t *testing.T) {
	const p = 0.3
	cfg := Config{MaxRetx: 3}
	a := newARQ(p, cfg, nil)
	const n = 100000
	delivered := 0
	for i := 0; i < n; i++ {
		if a.Send(link, 0).Delivered {
			delivered++
		}
	}
	got := float64(delivered) / n
	want := 1 - math.Pow(1-p, float64(cfg.MaxRetx+1))
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("delivery rate = %v, want ~%v", got, want)
	}
}

func TestAckLossInflatesAttempts(t *testing.T) {
	const p = 0.9
	noAck := newARQ(p, Config{MaxRetx: 7, AckLoss: 0}, nil)
	lossy := newARQ(p, Config{MaxRetx: 7, AckLoss: 0.5}, nil)
	const n = 50000
	sumA, sumB := 0.0, 0.0
	for i := 0; i < n; i++ {
		sumA += float64(noAck.Send(link, 0).Attempts)
		sumB += float64(lossy.Send(link, 0).Attempts)
	}
	if sumB <= sumA*1.2 {
		t.Fatalf("ack loss did not inflate attempts: %v vs %v", sumB/n, sumA/n)
	}
}

func TestAckLossStillDelivers(t *testing.T) {
	// Even with every-other ACK lost, delivery should track the data PRR.
	a := newARQ(1.0, Config{MaxRetx: 2, AckLoss: 0.9}, nil)
	for i := 0; i < 100; i++ {
		if !a.Send(link, 0).Delivered {
			t.Fatal("packet with perfect data link not delivered under ack loss")
		}
	}
}

func TestTraceRecording(t *testing.T) {
	rec := trace.NewRecorder(chainTopo().LinkTable())
	a := newARQ(0.5, Config{MaxRetx: 7}, rec)
	totalAttempts := 0
	for i := 0; i < 1000; i++ {
		totalAttempts += a.Send(link, 0).Attempts
	}
	c := rec.Link(link)
	if c.Attempts != int64(totalAttempts) {
		t.Fatalf("trace attempts = %d, result sum = %d", c.Attempts, totalAttempts)
	}
	loss, ok := c.Loss(1)
	if !ok || math.Abs(loss-0.5) > 0.05 {
		t.Fatalf("empirical loss = %v, want ~0.5", loss)
	}
}

func TestConfigValidation(t *testing.T) {
	tp := chainTopo()
	m := radio.NewStaticUniformLoss(tp, 0)
	for name, cfg := range map[string]Config{
		"negative retx": {MaxRetx: -1},
		"ack loss 1":    {MaxRetx: 1, AckLoss: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			New(cfg, m, rng.New(1), nil)
		}()
	}
}

func TestMaxAttempts(t *testing.T) {
	a := newARQ(1, Config{MaxRetx: 4}, nil)
	if a.MaxAttempts() != 5 {
		t.Fatalf("MaxAttempts = %d", a.MaxAttempts())
	}
}

func BenchmarkSend(b *testing.B) {
	a := newARQ(0.8, DefaultConfig(), nil)
	for i := 0; i < b.N; i++ {
		a.Send(link, 0)
	}
}

func TestFirstDeliveredSemantics(t *testing.T) {
	// Without ack loss, FirstDelivered always equals Attempts and AckedAttempt.
	a := newARQ(0.4, Config{MaxRetx: 7}, nil)
	for i := 0; i < 5000; i++ {
		res := a.Send(link, 0)
		if res.Delivered {
			if res.FirstDelivered != res.Attempts || res.AckedAttempt != res.Attempts {
				t.Fatalf("no-ack-loss invariant broken: %+v", res)
			}
		} else if res.FirstDelivered != 0 {
			t.Fatalf("undelivered packet has FirstDelivered: %+v", res)
		}
	}
	// With ack loss, FirstDelivered <= Attempts always.
	b := newARQ(0.6, Config{MaxRetx: 7, AckLoss: 0.4}, nil)
	sawGap := false
	for i := 0; i < 5000; i++ {
		res := b.Send(link, 0)
		if res.Delivered && res.FirstDelivered > res.Attempts {
			t.Fatalf("FirstDelivered beyond attempts: %+v", res)
		}
		if res.Delivered && res.FirstDelivered < res.Attempts {
			sawGap = true
		}
	}
	if !sawGap {
		t.Fatal("ack loss never produced duplicate retransmissions")
	}
}

func TestAckOverReverseLink(t *testing.T) {
	// Perfect forward link, dead reverse link: every packet delivers on the
	// first attempt but no ACK ever arrives, so the sender burns its whole
	// budget.
	tp := chainTopo()
	m := radio.NewStaticUniformLoss(tp, 0)
	m.SetPRR(topo.Link{From: 0, To: 1}, 0) // reverse of 1->0
	a := New(Config{MaxRetx: 3, AckOverReverseLink: true}, m, rng.New(5), nil)
	for i := 0; i < 50; i++ {
		res := a.Send(link, 0)
		if !res.Delivered || res.FirstDelivered != 1 {
			t.Fatalf("forward delivery broken: %+v", res)
		}
		if res.Attempts != 4 || res.AckedAttempt != 0 {
			t.Fatalf("dead ACK channel did not exhaust budget: %+v", res)
		}
	}
	// Healthy reverse link: single attempts again.
	m.SetPRR(topo.Link{From: 0, To: 1}, 1)
	res := a.Send(link, 0)
	if res.Attempts != 1 || res.AckedAttempt != 1 {
		t.Fatalf("healthy ACK channel result: %+v", res)
	}
}
